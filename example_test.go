package mobius_test

import (
	"fmt"

	"mobius"
)

// The quickstart: simulate one Mobius fine-tuning step of a Table 3
// model on the paper's "Topo 2+2" commodity server.
func Example() {
	topo := mobius.Commodity(mobius.RTX3090Ti, 2, 2)
	report, err := mobius.Run(mobius.SystemMobius, mobius.Options{
		Model:    mobius.GPT15B,
		Topology: topo,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("OOM=%v stages=%d\n", report.OOM, report.Plan.Partition.NumStages())
}

// Planning without simulating: inspect the MIP partition and the cross
// mapping Mobius would use.
func ExamplePlanMobius() {
	plan, err := mobius.PlanMobius(mobius.Options{
		Model:    mobius.GPT8B,
		Topology: mobius.Commodity(mobius.RTX3090Ti, 1, 3),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Partition.NumStages(), plan.Mapping.Scheme)
}

// Comparing systems: the OOM behaviour of Figure 5.
func ExampleRun_baselines() {
	topo := mobius.Commodity(mobius.RTX3090Ti, 4)
	for _, sys := range mobius.Systems() {
		r, err := mobius.Run(sys, mobius.Options{Model: mobius.GPT51B, Topology: topo})
		if err != nil {
			panic(err)
		}
		fmt.Println(sys, r.OOM)
	}
}

// Pricing a fine-tuning job on different hardware.
func ExamplePricePerStep() {
	commodity := mobius.Commodity(mobius.RTX3090Ti, 2, 2)
	dc := mobius.DataCenter(mobius.V100, 4, 300*mobius.GB)
	fmt.Printf("commodity $%.2f/h, data center $%.2f/h\n",
		mobius.HourlyPrice(commodity), mobius.HourlyPrice(dc))
}
