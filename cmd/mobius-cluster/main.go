// Command mobius-cluster simulates a fleet of Mobius servers serving a
// multi-tenant stream of fine-tuning jobs, and prints the drained fleet
// report: per-class admission / backpressure / shed / completion
// counters, queueing-delay distributions, the Jain fairness index, and
// the dispatch/recovery counters.
//
// Usage:
//
//	mobius-cluster                                # 3-class default workload, 2 servers
//	mobius-cluster -servers 4 -horizon 900
//	mobius-cluster -load 4                        # 4x offered load, budgets fixed
//	mobius-cluster -fail 1@300 -fail 2@450        # server losses (id@seconds)
//	mobius-cluster -restart 0@200                 # server bounce: down, then warm rejoin
//	mobius-cluster -restart 0@200 -restart-cold   # rejoin with a cold plan cache
//	mobius-cluster -cache-dir /tmp/fleet-plans    # per-server persistent plan stores
//	mobius-cluster -dispatch-fail-prob 0.2        # transient dispatch failures
//	mobius-cluster -no-admission                  # drop the token budgets
//	mobius-cluster -jobs                          # append the per-job audit trail
//
// The default workload is the overload experiment's: gold (SLO 0,
// token-budgeted), silver (SLO 1, budgeted, degrades to the greedy
// floor past its queue patience) and best-effort (SLO 2, unbudgeted,
// deadline-shed). Every run is deterministic in -seed and ends with the
// conservation check: Submitted = Completed + Rejected + Shed + Failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mobius/internal/cluster"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// failList collects repeated -fail server@seconds flags.
type failList []fault.ServerFailFault

func (f *failList) String() string { return fmt.Sprintf("%v", []fault.ServerFailFault(*f)) }

func (f *failList) Set(v string) error {
	var srv int
	var at float64
	if _, err := fmt.Sscanf(v, "%d@%f", &srv, &at); err != nil {
		return fmt.Errorf("want server@seconds (e.g. 1@300), got %q", v)
	}
	*f = append(*f, fault.ServerFailFault{Server: srv, At: at})
	return nil
}

// restartList collects repeated -restart server@seconds flags.
type restartList []fault.ServerRestartFault

func (f *restartList) String() string { return fmt.Sprintf("%v", []fault.ServerRestartFault(*f)) }

func (f *restartList) Set(v string) error {
	var srv int
	var at float64
	if _, err := fmt.Sscanf(v, "%d@%f", &srv, &at); err != nil {
		return fmt.Errorf("want server@seconds (e.g. 0@200), got %q", v)
	}
	*f = append(*f, fault.ServerRestartFault{Server: srv, At: at})
	return nil
}

func main() {
	servers := flag.Int("servers", 2, "number of Mobius servers in the fleet")
	topoSpec := flag.String("topo", "2+2", "per-server topology: GPUs per root complex (e.g. 4, 2+2)")
	horizon := flag.Float64("horizon", 600, "arrival horizon in seconds (the run drains past it)")
	seed := flag.Int64("seed", 42, "workload seed; replays are bitwise identical")
	load := flag.Float64("load", 1, "offered-load multiplier over the default class rates")
	modelName := flag.String("model", "3B", "job model: 3B, 8B, 15B, 51B")
	queueCap := flag.Int("queue-cap", 6, "per-server bounded queue capacity")
	noAdmission := flag.Bool("no-admission", false, "drop the token budgets (admit everything)")
	dispatchFailProb := flag.Float64("dispatch-fail-prob", 0, "transient dispatch failure probability [0,1)")
	prewarm := flag.Bool("prewarm", true, "prewarm every server's plan cache before arrivals")
	jobs := flag.Bool("jobs", false, "append the per-job audit trail")
	cacheDir := flag.String("cache-dir", "", "root directory for per-server persistent plan stores (warm restarts reload from disk)")
	restartCold := flag.Bool("restart-cold", false, "restarted servers rejoin with a cold plan cache")
	restartLatency := flag.Float64("restart-latency", 0, "default downtime of a -restart bounce in seconds (0 = built-in default)")
	var fails failList
	flag.Var(&fails, "fail", "server loss as server@seconds (repeatable)")
	var restarts restartList
	flag.Var(&restarts, "restart", "server bounce as server@seconds (repeatable); the server rejoins after -restart-latency")
	flag.Parse()

	var m model.Config
	found := false
	for _, c := range model.Table3() {
		if c.Name == *modelName {
			m, found = c, true
		}
	}
	if !found {
		fail("unknown model %q", *modelName)
	}
	topo, err := hw.ParseSpec(*topoSpec)
	if err != nil {
		fail("%v", err)
	}

	const (
		baseGold = 0.030
		baseSilv = 0.030
		baseBE   = 0.040
	)
	mk := func(name string, slo int, rate float64) cluster.Class {
		return cluster.Class{
			Name:            name,
			SLO:             slo,
			RatePerS:        rate * *load,
			Model:           m,
			PartitionAlgo:   partition.AlgoBalanced,
			BalancedStages:  4,
			StepsMin:        2,
			StepsMax:        3,
			CheckpointEvery: 2,
		}
	}
	gold := mk("gold", 0, baseGold)
	silver := mk("silver", 1, baseSilv)
	be := mk("best-effort", 2, baseBE)
	if !*noAdmission {
		gold.TokenRatePerS, gold.TokenBurst = baseGold*1.2, 3
		silver.TokenRatePerS, silver.TokenBurst = baseSilv*1.2, 3
	}
	silver.DegradeAfterS = 45
	be.DeadlineS = 40

	cfg := cluster.Config{
		Servers:          *servers,
		Topology:         topo,
		Classes:          []cluster.Class{gold, silver, be},
		HorizonS:         *horizon,
		Seed:             *seed,
		QueueCap:         *queueCap,
		DispatchFailProb: *dispatchFailProb,
		Prewarm:          *prewarm,
		StoreRoot:        *cacheDir,
		RestartLatencyS:  *restartLatency,
	}
	if len(fails) > 0 || len(restarts) > 0 {
		if *restartCold {
			for i := range restarts {
				restarts[i].Cold = true
			}
		}
		cfg.Faults = &fault.Spec{ServerFails: fails, ServerRestarts: restarts}
	}

	rep, err := cluster.Run(cfg)
	if err != nil {
		fail("%v", err)
	}
	fmt.Print(rep)
	if err := rep.Conservation(); err != nil {
		fail("%v", err)
	}
	fmt.Printf("  conservation: ok; fingerprint %s\n", rep.Fingerprint())

	if *jobs {
		fmt.Println("\nper-job audit trail:")
		for _, j := range rep.Jobs {
			var extra []string
			if j.Degraded {
				extra = append(extra, "degraded")
			}
			if j.Relands > 0 {
				extra = append(extra, fmt.Sprintf("re-landed from step %d", j.ResumeStep))
			}
			suffix := ""
			if len(extra) > 0 {
				suffix = " (" + strings.Join(extra, ", ") + ")"
			}
			fmt.Printf("  job %4d %-12s arrive %7.1fs %d steps -> %-9s server %2d%s\n",
				j.ID, j.Class, j.Arrival, j.Steps, j.Outcome, j.Server, suffix)
		}
	}
}
