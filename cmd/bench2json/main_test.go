package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: mobius/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimContention/flows=1024/construct-8     	     600	   2000000 ns/op	  900000 B/op	    9000 allocs/op
BenchmarkSimContention/flows=1024/incremental-8   	     100	  10000000 ns/op	 1000000 B/op	   10000 allocs/op
BenchmarkSimContention/flows=1024/steady-8        	     200	   6000000 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimContention/flows=1024/parallel=4-8    	     250	   5000000 ns/op	     212 B/op	       6 allocs/op
BenchmarkNoFamily-8                               	    1000	   1000000 ns/op
PASS
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", doc.Goos, doc.Goarch)
	}
	if len(doc.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(doc.Benchmarks))
	}
	inc := doc.Benchmarks[1]
	if inc.Name != "BenchmarkSimContention/flows=1024/incremental" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", inc.Name)
	}
	if inc.NsPerOp != 10000000 || inc.AllocsPerOp != 10000 || inc.Iterations != 100 {
		t.Errorf("incremental parsed as %+v", inc)
	}
	if pkg := inc.Package; pkg != "mobius/internal/sim" {
		t.Errorf("package = %q", pkg)
	}
}

func TestDeriveSpeedups(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"construct":  5,
		"steady":     1.667,
		"parallel=4": 2,
	}
	if len(doc.Speedups) != len(want) {
		t.Fatalf("got %d speedups (%+v), want %d", len(doc.Speedups), doc.Speedups, len(want))
	}
	for _, sp := range doc.Speedups {
		if sp.Name != "BenchmarkSimContention/flows=1024" {
			t.Errorf("family = %q", sp.Name)
		}
		if sp.Baseline != "incremental" {
			t.Errorf("baseline = %q", sp.Baseline)
		}
		w, ok := want[sp.Mode]
		if !ok {
			t.Errorf("unexpected mode %q (incremental must not compare to itself)", sp.Mode)
			continue
		}
		if sp.Ratio != w {
			t.Errorf("mode %q ratio = %v, want %v", sp.Mode, sp.Ratio, w)
		}
	}
}

func TestDeriveSpeedupsNoBaseline(t *testing.T) {
	sps := deriveSpeedups([]Result{
		{Name: "BenchmarkX/steady", NsPerOp: 10},
		{Name: "BenchmarkFlat", NsPerOp: 20},
	})
	if len(sps) != 0 {
		t.Fatalf("speedups without a baseline sibling: %+v", sps)
	}
}
