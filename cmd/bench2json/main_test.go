package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: mobius/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimContention/flows=1024/construct-8     	     600	   2000000 ns/op	  900000 B/op	    9000 allocs/op
BenchmarkSimContention/flows=1024/incremental-8   	     100	  10000000 ns/op	 1000000 B/op	   10000 allocs/op
BenchmarkSimContention/flows=1024/steady-8        	     200	   6000000 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimContention/flows=1024/parallel=4-8    	     250	   5000000 ns/op	     212 B/op	       6 allocs/op
BenchmarkNoFamily-8                               	    1000	   1000000 ns/op
PASS
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", doc.Goos, doc.Goarch)
	}
	if len(doc.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(doc.Benchmarks))
	}
	inc := doc.Benchmarks[1]
	if inc.Name != "BenchmarkSimContention/flows=1024/incremental" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", inc.Name)
	}
	if inc.NsPerOp != 10000000 || inc.AllocsPerOp != 10000 || inc.Iterations != 100 {
		t.Errorf("incremental parsed as %+v", inc)
	}
	if pkg := inc.Package; pkg != "mobius/internal/sim" {
		t.Errorf("package = %q", pkg)
	}
}

func TestDeriveSpeedups(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"construct":  5,
		"steady":     1.667,
		"parallel=4": 2,
	}
	if len(doc.Speedups) != len(want) {
		t.Fatalf("got %d speedups (%+v), want %d", len(doc.Speedups), doc.Speedups, len(want))
	}
	for _, sp := range doc.Speedups {
		if sp.Name != "BenchmarkSimContention/flows=1024" {
			t.Errorf("family = %q", sp.Name)
		}
		if sp.Baseline != "incremental" {
			t.Errorf("baseline = %q", sp.Baseline)
		}
		w, ok := want[sp.Mode]
		if !ok {
			t.Errorf("unexpected mode %q (incremental must not compare to itself)", sp.Mode)
			continue
		}
		if sp.Ratio != w {
			t.Errorf("mode %q ratio = %v, want %v", sp.Mode, sp.Ratio, w)
		}
	}
}

const scaleOutput = `goos: linux
goarch: amd64
pkg: mobius/internal/sim
BenchmarkSimScale/flows=100000/construct-8 	      24	  46700000 ns/op	 8000000 B/op	   13481 allocs/op
BenchmarkSimScale/flows=10000/construct-8  	     270	   4350000 ns/op	 4600000 B/op	    1402 allocs/op
BenchmarkSimScale/flows=10000/run-8        	      80	  13600000 ns/op	 5000000 B/op	    1500 allocs/op
BenchmarkSimScale/flows=100000/run-8       	       8	 148000000 ns/op	50000000 B/op	   48201 allocs/op
BenchmarkSimContention/flows=1024/incremental-8 	100	  10000000 ns/op
PASS
`

func TestDeriveScaling(t *testing.T) {
	doc, err := parse(strings.NewReader(scaleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Scaling) != 2 {
		t.Fatalf("got %d scaling series (%+v), want 2", len(doc.Scaling), doc.Scaling)
	}
	construct := doc.Scaling[0]
	if construct.Name != "BenchmarkSimScale/construct" || construct.Param != "flows" {
		t.Errorf("series 0 = %q param %q", construct.Name, construct.Param)
	}
	if len(construct.Points) != 2 || construct.Points[0].N != 10000 || construct.Points[1].N != 100000 {
		t.Fatalf("construct points not sorted ascending by n: %+v", construct.Points)
	}
	if p := construct.Points[0]; p.NsPerOp != 4350000 || p.AllocsPerOp != 1402 || p.BytesPerOp != 4600000 {
		t.Errorf("construct point at n=10000 parsed as %+v", p)
	}
	if run := doc.Scaling[1]; run.Name != "BenchmarkSimScale/run" || len(run.Points) != 2 {
		t.Errorf("series 1 = %+v", run)
	}
}

func TestDeriveScalingSkipsSingletons(t *testing.T) {
	sps := deriveScaling([]Result{
		{Name: "BenchmarkSimScale/flows=1024/parallel", NsPerOp: 10},
		{Name: "BenchmarkFlat", NsPerOp: 20},
		{Name: "BenchmarkX/notasize/steady", NsPerOp: 30},
	})
	if len(sps) != 0 {
		t.Fatalf("singleton or unparameterized series must be dropped: %+v", sps)
	}
}

func TestDeriveScalingDedupes(t *testing.T) {
	sps := deriveScaling([]Result{
		{Name: "BenchmarkSimScale/flows=10/run", NsPerOp: 10},
		{Name: "BenchmarkSimScale/flows=10/run", NsPerOp: 99},
		{Name: "BenchmarkSimScale/flows=20/run", NsPerOp: 25},
	})
	if len(sps) != 1 || len(sps[0].Points) != 2 {
		t.Fatalf("duplicate sizes must keep the first sample: %+v", sps)
	}
	if sps[0].Points[0].NsPerOp != 10 {
		t.Errorf("first sample not kept: %+v", sps[0].Points[0])
	}
}

func TestDeriveSpeedupsNoBaseline(t *testing.T) {
	sps := deriveSpeedups([]Result{
		{Name: "BenchmarkX/steady", NsPerOp: 10},
		{Name: "BenchmarkFlat", NsPerOp: 20},
	})
	if len(sps) != 0 {
		t.Fatalf("speedups without a baseline sibling: %+v", sps)
	}
}
