// Command bench2json converts `go test -bench` output on stdin into a
// stable JSON document. `make bench-json` pipes the scheduler and
// planning benchmarks through it to regenerate BENCH_sim.json, so perf
// results live in the repo in a diffable, machine-readable form.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Speedup is a derived ratio between two sub-benchmarks of the same
// family: how much faster Mode ran than the family's incremental
// (serial event-loop) baseline. Emitting these alongside the raw lines
// keeps the headline claims (e.g. parallel vs serial) directly
// readable from the JSON instead of needing a calculator.
type Speedup struct {
	Name     string  `json:"name"`     // family, i.e. benchmark name up to the last '/'
	Baseline string  `json:"baseline"` // sub-benchmark used as the denominator
	Mode     string  `json:"mode"`     // sub-benchmark being compared
	Ratio    float64 `json:"ratio"`    // baseline ns/op divided by mode ns/op
}

// ScalePoint is one size sample of a scaling series: the parsed
// parameter value and the per-op costs measured at it.
type ScalePoint struct {
	N           int64   `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Scaling is a derived how-does-it-grow series: all sub-benchmarks of
// one family and mode that differ only in a size parameter
// (`BenchmarkSimScale/flows=10000/construct` and its 50k/100k siblings),
// with points sorted by size. Reading whether construction stays linear
// at 100k flows then takes a glance at the JSON, not a calculator.
type Scaling struct {
	Name   string       `json:"name"`  // family + mode, e.g. "BenchmarkSimScale/construct"
	Param  string       `json:"param"` // size-parameter name, e.g. "flows"
	Points []ScalePoint `json:"points"`
}

// Document is the emitted JSON shape.
type Document struct {
	Goos       string    `json:"goos,omitempty"`
	Goarch     string    `json:"goarch,omitempty"`
	CPU        string    `json:"cpu,omitempty"`
	Benchmarks []Result  `json:"benchmarks"`
	Speedups   []Speedup `json:"speedups,omitempty"`
	Scaling    []Scaling `json:"scaling,omitempty"`
}

// speedupBaseline is the sub-benchmark name every family is compared
// against. Families without such a sibling get no speedup entries.
const speedupBaseline = "incremental"

// deriveSpeedups groups sub-benchmarks by family (the name up to the
// last '/') and, for families that include the incremental baseline,
// emits one ratio per sibling mode, preserving input order.
func deriveSpeedups(benchmarks []Result) []Speedup {
	baselines := make(map[string]float64)
	for _, b := range benchmarks {
		i := strings.LastIndex(b.Name, "/")
		if i < 0 {
			continue
		}
		if b.Name[i+1:] == speedupBaseline && b.NsPerOp > 0 {
			baselines[b.Name[:i]] = b.NsPerOp
		}
	}
	var out []Speedup
	for _, b := range benchmarks {
		i := strings.LastIndex(b.Name, "/")
		if i < 0 {
			continue
		}
		family, mode := b.Name[:i], b.Name[i+1:]
		base, ok := baselines[family]
		if !ok || mode == speedupBaseline || b.NsPerOp <= 0 {
			continue
		}
		out = append(out, Speedup{
			Name:     family,
			Baseline: speedupBaseline,
			Mode:     mode,
			Ratio:    math.Round(base/b.NsPerOp*1000) / 1000,
		})
	}
	return out
}

// scaleName matches a three-part benchmark name whose middle component
// is a size parameter: root/param=N/mode.
var scaleName = regexp.MustCompile(`^(Benchmark[^/]+)/([A-Za-z]+)=(\d+)/([^/]+)$`)

// deriveScaling groups size-parameterized sub-benchmarks into series —
// one per (root, param, mode) triple with at least two distinct sizes —
// with points sorted ascending by size. Series order follows first
// appearance in the input; a duplicated size keeps the first sample.
func deriveScaling(benchmarks []Result) []Scaling {
	type key struct{ root, param, mode string }
	idx := make(map[key]int)
	var out []Scaling
	for _, b := range benchmarks {
		m := scaleName.FindStringSubmatch(b.Name)
		if m == nil || b.NsPerOp <= 0 {
			continue
		}
		n, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			continue
		}
		k := key{m[1], m[2], m[4]}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, Scaling{Name: k.root + "/" + k.mode, Param: k.param})
		}
		dup := false
		for _, p := range out[i].Points {
			if p.N == n {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out[i].Points = append(out[i].Points, ScalePoint{
			N: n, NsPerOp: b.NsPerOp, BytesPerOp: b.BytesPerOp, AllocsPerOp: b.AllocsPerOp,
		})
	}
	kept := out[:0]
	for _, s := range out {
		if len(s.Points) < 2 {
			continue
		}
		sort.Slice(s.Points, func(a, b int) bool { return s.Points[a].N < s.Points[b].N })
		kept = append(kept, s)
	}
	return kept
}

// benchLine matches e.g.
//
//	BenchmarkSimContention/flows=256/incremental-8  472  2541625 ns/op  701360 B/op  7603 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) (Document, error) {
	var doc Document
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		res := Result{Name: m[1], Package: pkg, Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
	}
	doc.Speedups = deriveSpeedups(doc.Benchmarks)
	doc.Scaling = deriveScaling(doc.Benchmarks)
	return doc, sc.Err()
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}
