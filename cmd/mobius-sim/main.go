// Command mobius-sim simulates one training step of any evaluated system
// and prints the measured metrics plus an ASCII timeline.
//
// Usage:
//
//	mobius-sim -model 15B -topo 2+2 -system mobius
//	mobius-sim -model 8B -topo 4 -system ds-hetero
//	mobius-sim -model 8B -topo 4+4 -faults degraded.json
//	mobius-sim -model 51B -topo 4+4 -plan-deadline 1ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func main() {
	modelName := flag.String("model", "15B", "model: 3B, 8B, 15B, 51B")
	topoSpec := flag.String("topo", "2+2", "GPUs per root complex (e.g. 4, 2+2, 1+3) or 'dc'")
	topoFile := flag.String("topo-file", "", "JSON topology description (overrides -topo)")
	system := flag.String("system", "mobius", "system: mobius, gpipe, ds-pipeline, ds-hetero, zero-offload, zero-nvme")
	width := flag.Int("width", 100, "timeline width in characters")
	csvPath := flag.String("csv", "", "write the full event trace as CSV to this path")
	faultsPath := flag.String("faults", "", "JSON fault spec injected into the simulated hardware (mobius/gpipe only)")
	planDeadline := flag.Duration("plan-deadline", 0, "planning deadline; on expiry the Mobius plan degrades to the greedy fallback (0 = none)")
	flag.Parse()

	var m model.Config
	found := false
	for _, c := range model.Table3() {
		if c.Name == *modelName {
			m, found = c, true
		}
	}
	if !found {
		fail("unknown model %q", *modelName)
	}

	var topo *hw.Topology
	var err error
	if *topoFile != "" {
		data, rerr := os.ReadFile(*topoFile)
		if rerr != nil {
			fail("%v", rerr)
		}
		topo, err = hw.ParseJSON(data)
	} else {
		topo, err = hw.ParseSpec(*topoSpec)
	}
	if err != nil {
		fail("%v", err)
	}

	var spec *fault.Spec
	if *faultsPath != "" {
		data, rerr := os.ReadFile(*faultsPath)
		if rerr != nil {
			fail("%v", rerr)
		}
		spec, err = fault.ParseJSON(data)
		if err != nil {
			fail("%v", err)
		}
	}

	sys := map[string]core.System{
		"mobius":       core.SystemMobius,
		"gpipe":        core.SystemGPipe,
		"ds-pipeline":  core.SystemDSPipeline,
		"ds-hetero":    core.SystemDSHetero,
		"zero-offload": core.SystemZeROOffload,
		"zero-nvme":    core.SystemZeRONVMe,
	}[*system]
	if sys == "" {
		fail("unknown system %q", *system)
	}

	ctx := context.Background()
	if *planDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *planDeadline)
		defer cancel()
	}

	report, err := core.RunCtx(ctx, sys, core.Options{Model: m, Topology: topo, Faults: spec})
	if err != nil {
		fail("simulation failed: %v", err)
	}
	if report.Plan != nil && report.Plan.Fallback {
		fmt.Printf("planning deadline expired (%s); using the greedy fallback plan\n", report.Plan.FallbackReason)
	}
	fmt.Println(report)
	if report.FaultInjection != nil {
		fmt.Println(report.FaultInjection)
	}
	if report.OOM {
		if report.OOMCause != "" {
			fmt.Printf("OOM cause: %s\n", report.OOMCause)
		}
		return
	}
	fmt.Printf("\nbandwidth CDF (all transfers):\n%s\n", report.BandwidthCDF.Render(13.1e9, 60))
	if report.Server != nil {
		fmt.Println("root complex utilization over the step:")
		for i, rc := range report.Server.RootComplexes {
			fmt.Printf("  rc%d: %5.1f%%  (%.1f GB carried)\n", i,
				rc.Utilization(report.StepTime)*100, rc.Carried()/1e9)
		}
		fmt.Println()
	}
	fmt.Printf("timeline:\n%s", report.Recorder.RenderGantt(topo.NumGPUs(), report.StepTime, *width))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail("csv: %v", err)
		}
		defer f.Close()
		if err := report.Recorder.WriteCSV(f); err != nil {
			fail("csv: %v", err)
		}
		fmt.Printf("\ntrace written to %s (%d flows, %d computes)\n", *csvPath,
			len(report.Recorder.Flows), len(report.Recorder.Computes))
	}
}
