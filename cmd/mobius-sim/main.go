// Command mobius-sim simulates one training step of any evaluated system
// and prints the measured metrics plus an ASCII timeline.
//
// Usage:
//
//	mobius-sim -model 15B -topo 2+2 -system mobius
//	mobius-sim -model 8B -topo 4 -system ds-hetero
//	mobius-sim -model 8B -topo 4+4 -faults degraded.json
//	mobius-sim -model 51B -topo 4+4 -plan-deadline 1ms
//
// A fault spec with a permanent failure (gpu_fail/link_fail), or -steps
// > 1, or -checkpoint-every > 0 switches to the multi-step elastic path
// (Mobius only): the run checkpoints periodically, detects the failure,
// re-plans on the surviving topology per -policy and prints the
// RecoveryReport:
//
//	mobius-sim -model 3B -topo 2+2 -steps 8 -checkpoint-every 2 -faults gpufail.json
//	mobius-sim -model 3B -topo 2+2 -steps 8 -checkpoint-every 2 -checkpoint-dest ssd -policy resume -faults gpufail.json
//
// Integrity knobs: -corruptions injects silent data corruption on every
// transfer, -checksums turns on end-to-end detection (per-byte cost,
// bounded retransmits, structured halt on exhaustion), and -rollback N
// prices a numeric-guard rollback of step N on the elastic path:
//
//	mobius-sim -model 15B -topo 2+2 -corruptions 0.05
//	mobius-sim -model 15B -topo 2+2 -corruptions 0.05 -checksums
//	mobius-sim -model 3B -topo 2+2 -steps 8 -checkpoint-every 2 -rollback 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"mobius/internal/core"
	"mobius/internal/elastic"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/sim"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// runSynthetic is the -synthetic-flows path: a pure scale exercise of
// the simulator core (streaming construction, sharded execution, work
// stealing) with no model or hardware topology involved. It prints the
// build and run costs the scale benchmarks track, so the CLI reproduces
// BENCH_sim.json's scaling numbers on any checkout.
func runSynthetic(flows int, skew float64, parallelism int) {
	if skew < 0 || skew >= 1 {
		fail("-synthetic-skew must be in [0,1)")
	}
	s := sim.New()
	s.Parallelism = parallelism
	start := time.Now()
	n := sim.BuildSynthetic(s, sim.SyntheticSpec{Flows: flows, SkewFrac: skew})
	buildTime := time.Since(start)
	start = time.Now()
	makespan, err := s.Run()
	runTime := time.Since(start)
	if err != nil {
		fail("synthetic run failed: %v", err)
	}
	fmt.Printf("synthetic topology: %d flows (%d tasks), skew %.2f\n", n, s.NumTasks(), skew)
	if parallelism > 0 {
		fmt.Printf("scheduler: %d workers over %d shards, %d chunks stolen\n", parallelism, s.ShardCount(), s.Steals())
	} else {
		fmt.Println("scheduler: serial")
	}
	fmt.Printf("construct %v, run %v, simulated makespan %.3fs\n", buildTime, runTime, float64(makespan))
}

func main() {
	modelName := flag.String("model", "15B", "model: 3B, 8B, 15B, 51B")
	topoSpec := flag.String("topo", "2+2", "GPUs per root complex (e.g. 4, 2+2, 1+3) or 'dc'")
	topoFile := flag.String("topo-file", "", "JSON topology description (overrides -topo)")
	system := flag.String("system", "mobius", "system: mobius, gpipe, ds-pipeline, ds-hetero, zero-offload, zero-nvme")
	width := flag.Int("width", 100, "timeline width in characters")
	csvPath := flag.String("csv", "", "write the full event trace as CSV to this path")
	faultsPath := flag.String("faults", "", "JSON fault spec injected into the simulated hardware (mobius/gpipe only)")
	planDeadline := flag.Duration("plan-deadline", 0, "planning deadline; on expiry the Mobius plan degrades to the greedy fallback (0 = none)")
	steps := flag.Int("steps", 1, "training steps; >1 simulates a multi-step run with elastic recovery (mobius only)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint the model states every k steps (0 = never; mobius only)")
	ckptDest := flag.String("checkpoint-dest", "dram", "checkpoint destination: dram or ssd")
	policy := flag.String("policy", "replan", "recovery policy after a permanent failure: replan, resume, restart")
	corruptProb := flag.Float64("corruptions", 0, "corrupt every transfer with this per-attempt probability [0,1); merges a wildcard rule into -faults")
	checksums := flag.Bool("checksums", false, "end-to-end transfer checksums: per-byte detection cost, bounded retransmits, structured halt (mobius/gpipe only)")
	rollback := flag.Int("rollback", 0, "simulate a numeric-guard rollback: the 1-based step whose result is rejected (selects the rollback recovery policy; mobius multi-step runs only)")
	synFlows := flag.Int("synthetic-flows", 0, "scale exercise: build and run a synthetic topology with this many transfer flows instead of a model (see internal/sim.BuildSynthetic)")
	synSkew := flag.Float64("synthetic-skew", 0, "synthetic topology skew in [0,1): fraction of flows concentrated in one giant island")
	parallelism := flag.Int("parallel", 0, "scheduler workers for -synthetic-flows (0 = serial)")
	flag.Parse()

	if *synFlows > 0 {
		runSynthetic(*synFlows, *synSkew, *parallelism)
		return
	}

	var m model.Config
	found := false
	for _, c := range model.Table3() {
		if c.Name == *modelName {
			m, found = c, true
		}
	}
	if !found {
		fail("unknown model %q", *modelName)
	}

	var topo *hw.Topology
	var err error
	if *topoFile != "" {
		data, rerr := os.ReadFile(*topoFile)
		if rerr != nil {
			fail("%v", rerr)
		}
		topo, err = hw.ParseJSON(data)
	} else {
		topo, err = hw.ParseSpec(*topoSpec)
	}
	if err != nil {
		fail("%v", err)
	}

	var spec *fault.Spec
	if *faultsPath != "" {
		data, rerr := os.ReadFile(*faultsPath)
		if rerr != nil {
			fail("%v", rerr)
		}
		spec, err = fault.ParseJSON(data)
		if err != nil {
			fail("%v", err)
		}
	}
	if *corruptProb != 0 {
		if spec == nil {
			spec = &fault.Spec{}
		}
		spec.Corruptions = append(spec.Corruptions, fault.CorruptionFault{Match: "*", Probability: *corruptProb})
		if err := spec.Validate(); err != nil {
			fail("%v", err)
		}
	}

	sys := map[string]core.System{
		"mobius":       core.SystemMobius,
		"gpipe":        core.SystemGPipe,
		"ds-pipeline":  core.SystemDSPipeline,
		"ds-hetero":    core.SystemDSHetero,
		"zero-offload": core.SystemZeROOffload,
		"zero-nvme":    core.SystemZeRONVMe,
	}[*system]
	if sys == "" {
		fail("unknown system %q", *system)
	}

	// The elastic path: multi-step runs, checkpointing, and recovery from
	// permanent failures. A non-Mobius system with a permanent fault falls
	// through to the single-step path, which reports the halt.
	if *steps > 1 || *ckptEvery > 0 || *rollback > 0 {
		if sys != core.SystemMobius {
			fail("elastic recovery (-steps/-checkpoint-every/-rollback) requires -system mobius")
		}
	}
	if sys == core.SystemMobius && (*steps > 1 || *ckptEvery > 0 || *rollback > 0 || spec.HasPermanent()) {
		if *checksums {
			fail("-checksums applies to single-step runs; the elastic path prices steps without per-transfer detection")
		}
		pol := elastic.Policy(*policy)
		if *rollback > 0 {
			pol = elastic.PolicyRollback
		}
		rep, err := elastic.Run(elastic.Config{
			Model:           m,
			Topology:        topo,
			Steps:           *steps,
			CheckpointEvery: *ckptEvery,
			CheckpointDest:  elastic.Dest(*ckptDest),
			Faults:          spec,
			Policy:          pol,
			AnomalyStep:     *rollback,
			PlanDeadline:    *planDeadline,
		})
		if err != nil {
			fail("recovery simulation failed: %v", err)
		}
		fmt.Println(rep)
		return
	}

	ctx := context.Background()
	if *planDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *planDeadline)
		defer cancel()
	}

	report, err := core.RunCtx(ctx, sys, core.Options{Model: m, Topology: topo, Faults: spec,
		Checksums: sim.ChecksumConfig{Enabled: *checksums}})
	if err != nil {
		fail("simulation failed: %v", err)
	}
	if report.ResourceLost != nil {
		fmt.Println(report)
		fmt.Printf("%v\nrerun with -steps/-checkpoint-every to simulate elastic recovery\n", report.ResourceLost)
		return
	}
	if report.Corruption != nil {
		fmt.Println(report)
		fmt.Printf("%v\nraise -checksums retransmit budget tolerance by lowering -corruptions, or accept the halt\n", report.Corruption)
		return
	}
	if report.Plan != nil && report.Plan.Fallback {
		fmt.Printf("planning deadline expired (%s); using the greedy fallback plan\n", report.Plan.FallbackReason)
	}
	fmt.Println(report)
	if report.FaultInjection != nil {
		fmt.Println(report.FaultInjection)
	}
	if st := report.Integrity; st.CorruptedAttempts > 0 || st.ChecksumCost > 0 {
		fmt.Printf("integrity: %d corrupted deliveries, %d retransmits (%.4fs backoff), checksum cost %.4fs, %d silent, %d tainted tasks\n",
			st.CorruptedAttempts, st.Retransmits, float64(st.RetransmitWait), float64(st.ChecksumCost),
			st.SilentCorruptions, st.TaintedTasks)
	}
	if report.OOM {
		if report.OOMCause != "" {
			fmt.Printf("OOM cause: %s\n", report.OOMCause)
		}
		return
	}
	fmt.Printf("\nbandwidth CDF (all transfers):\n%s\n", report.BandwidthCDF.Render(13.1e9, 60))
	if report.Server != nil {
		fmt.Println("root complex utilization over the step:")
		for i, rc := range report.Server.RootComplexes {
			fmt.Printf("  rc%d: %5.1f%%  (%.1f GB carried)\n", i,
				rc.Utilization(report.StepTime)*100, rc.Carried()/1e9)
		}
		fmt.Println()
	}
	fmt.Printf("timeline:\n%s", report.Recorder.RenderGantt(topo.NumGPUs(), report.StepTime, *width))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail("csv: %v", err)
		}
		defer f.Close()
		if err := report.Recorder.WriteCSV(f); err != nil {
			fail("csv: %v", err)
		}
		fmt.Printf("\ntrace written to %s (%d flows, %d computes)\n", *csvPath,
			len(report.Recorder.Flows), len(report.Recorder.Computes))
	}
}
