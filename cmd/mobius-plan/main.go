// Command mobius-plan prints the Mobius execution plan — profile
// summary, MIP partition and cross mapping — for a model on a topology.
//
// Usage:
//
//	mobius-plan -model 15B -topo 2+2
//	mobius-plan -model 51B -topo 4+4 -algo min-stage -mapping sequential
//	mobius-plan -model 15B -topo 2+2 -prewarm -cache-stats
//	mobius-plan -model 15B -topo 2+2 -cache-dir /var/lib/mobius/plans
//
// Planning goes through the hardened plan service (internal/plansvc):
// cached, single-flighted, and degrading to the greedy floor rather
// than failing when a -deadline expires. -prewarm additionally plans
// every single-GPU-loss survivor topology so a subsequent elastic
// re-plan is a cache lookup; -prewarm-depth 2 extends that to every
// GPU-pair loss. -cache-dir persists the cache across invocations
// (crash-safe, checksummed records; damaged records quarantine and the
// plan re-solves): a second run on the same directory serves from disk
// without a solve.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/mapping"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/planstore"
	"mobius/internal/plansvc"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func parseModel(name string) model.Config {
	for _, m := range model.Table3() {
		if m.Name == name {
			return m
		}
	}
	fail("unknown model %q (want 3B, 8B, 15B or 51B)", name)
	return model.Config{}
}

func parseTopo(spec string) *hw.Topology {
	topo, err := hw.ParseSpec(spec)
	if err != nil {
		fail("%v", err)
	}
	return topo
}

func main() {
	modelName := flag.String("model", "15B", "model: 3B, 8B, 15B, 51B")
	topoSpec := flag.String("topo", "2+2", "GPUs per root complex (e.g. 4, 2+2, 1+3) or 'dc'")
	algo := flag.String("algo", partition.AlgoMIP, "partition algorithm: mip, max-stage, min-stage")
	scheme := flag.String("mapping", mapping.SchemeCross, "mapping scheme: cross, sequential")
	mbs := flag.Int("mbs", 0, "microbatch size override (0 = Table 3 default)")
	asJSON := flag.Bool("json", false, "emit the plan as JSON instead of text")
	deadline := flag.Duration("deadline", 0, "planning deadline; on expiry the plan degrades to the greedy fallback (0 = none)")
	prewarm := flag.Bool("prewarm", false, "also pre-plan every single-GPU-loss survivor topology (elastic recovery becomes a cache lookup)")
	prewarmDepth := flag.Int("prewarm-depth", 1, "survivor enumeration depth for -prewarm: 1 = single losses, 2 = also GPU-pair losses")
	cacheStats := flag.Bool("cache-stats", false, "print plan service counters after planning")
	cacheDir := flag.String("cache-dir", "", "persist the plan cache in this directory (warm-started on launch)")
	flag.Parse()

	m := parseModel(*modelName)
	if *mbs > 0 {
		m = m.WithMicrobatch(*mbs)
	}
	topo := parseTopo(*topoSpec)

	opts := core.Options{
		Model:         m,
		Topology:      topo,
		PartitionAlgo: *algo,
		MappingScheme: *scheme,
	}
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	var svcCfg plansvc.Config
	var store *planstore.Store
	if *cacheDir != "" {
		var err error
		store, err = planstore.Open(planstore.Config{Dir: *cacheDir})
		if err != nil {
			fail("cache dir: %v", err)
		}
		defer store.Close() // drain the write-behind queue before exit
		svcCfg.Store = store
	}
	svc := plansvc.New(svcCfg)
	plan, err := svc.PlanMobius(ctx, opts)
	if err != nil {
		fail("planning failed: %v", err)
	}
	if plan.Fallback {
		fmt.Printf("note: deadline expired (%s); this is the greedy fallback plan\n", plan.FallbackReason)
	}
	if err := plan.Validate(topo); err != nil {
		fail("plan failed validation: %v", err)
	}

	// Side reports go to stderr so -json keeps stdout machine-readable.
	if *prewarm {
		rep, err := svc.PrewarmDepth(ctx, opts, *prewarmDepth)
		if err != nil {
			fail("prewarm: %v", err)
		}
		fmt.Fprintf(os.Stderr, "%s\n", rep)
	}
	if *cacheStats {
		if store != nil {
			store.Flush() // settle the write-behind queue so the counters are final
		}
		ms := svc.Metrics()
		fmt.Fprintf(os.Stderr, "plansvc:   %d requests, %d hits, %d solves, %d warm starts, %d cached plans, breaker %s\n",
			ms.Requests, ms.Hits, ms.Solves, ms.WarmStarts, ms.CacheEntries, svc.BreakerState())
		if sm := svc.StoreMetrics(); sm != nil {
			fmt.Fprintf(os.Stderr, "planstore: %d adopted at start (%d hits served warm), %d persisted, %d deleted, %d queued",
				ms.WarmStartEntries, ms.WarmHits, sm.Persisted, sm.Deletes, sm.QueueDepth)
			if sm.QuarantinedRecords > 0 {
				fmt.Fprintf(os.Stderr, ", %d quarantined (%d stale, %d invalid)",
					sm.QuarantinedRecords, sm.StaleRecords, sm.InvalidRecords)
			}
			if sm.WriteDrops > 0 || sm.IOErrors > 0 {
				fmt.Fprintf(os.Stderr, ", %d dropped writes, %d I/O errors", sm.WriteDrops, sm.IOErrors)
			}
			fmt.Fprintln(os.Stderr)
		}
	}

	if *asJSON {
		data, err := core.MarshalPlan(plan, opts)
		if err != nil {
			fail("serialize: %v", err)
		}
		fmt.Println(string(data))
		return
	}

	fmt.Printf("model:     %s\n", m)
	fmt.Printf("topology:  %s\n", topo)
	fmt.Printf("profile:   %d layers, %d similarity groups, cost %.2fs\n",
		plan.Profile.NumLayers(), plan.Profile.GroupsProfiled, plan.Profile.Cost)
	if plan.MIPStats != nil {
		fmt.Printf("MIP:       tried S=%v, %d nodes, %v solve time\n",
			plan.MIPStats.TriedStageCounts, plan.MIPStats.Nodes, plan.MIPStats.SolveTime.Round(1e6))
	}
	fmt.Printf("partition: %d stages (%s)\n", plan.Partition.NumStages(), plan.Partition.Algorithm)
	for j, s := range plan.Partition.Stages {
		fmt.Printf("  stage %2d -> gpu %d  layers [%2d..%2d]  params %6.2f GB  fwd %6.3fs  bwd %6.3fs\n",
			j, plan.Mapping.GPUOf(j), s.First, s.Last, s.ParamBytes/1e9, s.FwdTime, s.BwdTime)
	}
	fmt.Printf("mapping:   %s\n", plan.Mapping)
	fmt.Printf("predicted: %.3f s/step\n", plan.PredictedStep)
}
