// Command mobius-train runs the convergence experiment (Figure 13) on
// the real pure-Go GPT substrate: the same model fine-tuned under the
// GPipe execution order and the Mobius execution order (stage swapping
// through simulated DRAM, checkpoint recomputation, gradient flush).
//
// Usage:
//
//	mobius-train -steps 200
//
// With -ckpt the command switches to a single resumable training loop
// that checkpoints every -save-every steps. Batches are a pure function
// of the global step, so a run killed mid-way (simulate with -fail-at)
// and resumed with -resume produces bitwise-identical losses to one that
// never stopped — even with a different -stages split, the elastic
// re-plan case:
//
//	mobius-train -ckpt ck.gob -steps 40 -save-every 10 -fail-at 23; \
//	mobius-train -ckpt ck.gob -steps 40 -save-every 10 -resume -stages 4
//
// With -guard every step is scanned by the numeric anomaly guard
// (non-finite weights, loss and gradient-norm spikes); a rejected step
// rolls the trainer back to the last checkpoint and replays. -corrupt-at
// injects a weight corruption to watch the detection + rollback happen:
//
//	mobius-train -ckpt ck.gob -steps 40 -save-every 10 -guard -corrupt-at 23
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mobius/internal/experiments"
	"mobius/internal/nn"
	"mobius/internal/textgen"
	"mobius/internal/train"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mobius-train: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	steps := flag.Int("steps", 150, "training steps")
	ckpt := flag.String("ckpt", "", "checkpoint file; enables the resumable training loop")
	saveEvery := flag.Int("save-every", 10, "checkpoint every k steps (with -ckpt)")
	resume := flag.Bool("resume", false, "restore from -ckpt and continue training")
	mode := flag.String("mode", "mobius", "execution order: mobius or gpipe")
	stages := flag.Int("stages", 3, "pipeline stages")
	failAt := flag.Int("fail-at", -1, "crash (exit 1, no save) after completing this step, to exercise -resume")
	guard := flag.Bool("guard", false, "scan every step with the numeric anomaly guard; a rejected step rolls back to the last checkpoint (with -ckpt)")
	corruptAt := flag.Int("corrupt-at", -1, "poison one weight after this step completes — with -guard the run detects it and rolls back")
	flag.Parse()

	if *ckpt == "" {
		tab, err := experiments.Figure13(*steps)
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(tab.String())
		return
	}

	var md train.Mode
	switch *mode {
	case "mobius":
		md = train.ModeMobius
	case "gpipe":
		md = train.ModeGPipe
	default:
		fail("unknown mode %q (want mobius or gpipe)", *mode)
	}
	if *saveEvery <= 0 {
		fail("-save-every must be positive")
	}

	// The Figure 13 recipe; the corpus and batches depend only on the
	// global step so a resumed run replays the identical data order.
	cfg := nn.Config{Vocab: 64, Seq: 16, Dim: 32, Heads: 4, Layers: 4, Seed: 7}
	corpus, err := textgen.Generate(cfg.Vocab, 30000, 13)
	if err != nil {
		fail("%v", err)
	}
	m, err := nn.NewGPT(cfg)
	if err != nil {
		fail("%v", err)
	}
	tr, err := train.New(m, *stages, 3e-3, md)
	if err != nil {
		fail("%v", err)
	}

	start := 0
	if *resume {
		f, err := os.Open(*ckpt)
		if err != nil {
			fail("resume: %v", err)
		}
		start, err = tr.RestoreCheckpoint(f)
		f.Close()
		if err != nil {
			fail("resume: %v", err)
		}
		fmt.Printf("resumed from %s at step %d (%s, %d stages)\n", *ckpt, start, md, tr.NumStages())
	}

	save := func(next int) {
		tmp := *ckpt + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			fail("checkpoint: %v", err)
		}
		if err := tr.SaveCheckpoint(f, next); err != nil {
			f.Close()
			fail("checkpoint: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("checkpoint: %v", err)
		}
		if err := os.Rename(tmp, *ckpt); err != nil {
			fail("checkpoint: %v", err)
		}
	}

	g := train.NewGuard()
	corrupted := false
	for step := start; step < *steps; {
		var batches []nn.Batch
		for i := 0; i < 4; i++ {
			batches = append(batches, corpus.Batch(cfg.Seq, 2, step, i))
		}
		loss := tr.Step(batches)
		if step == *corruptAt && !corrupted {
			// A silent corruption landing between the step and its scan.
			tr.Model.Params()[0].W.D[0] = math.Inf(1)
			corrupted = true
		}
		if *guard {
			if err := g.Check(step, loss, tr.Model.Params()); err != nil {
				fmt.Printf("step %4d  rejected: %v\n", step, err)
				f, oerr := os.Open(*ckpt)
				if oerr != nil {
					fail("rollback: no checkpoint to restore: %v", oerr)
				}
				resumeStep, rerr := tr.RestoreCheckpoint(f)
				f.Close()
				if rerr != nil {
					fail("rollback: %v", rerr)
				}
				fmt.Printf("rolled back to step %d\n", resumeStep)
				step = resumeStep
				continue
			}
		}
		fmt.Printf("step %4d  loss %.6f\n", step, loss)
		if (step+1)%*saveEvery == 0 || step == *steps-1 {
			save(step + 1)
		}
		if step == *failAt {
			fail("injected failure after step %d (last checkpoint: step %d)", step, ((step+1)/(*saveEvery))*(*saveEvery))
		}
		step++
	}
	fmt.Printf("done: %d steps, checkpoint %s\n", *steps, *ckpt)
}
