// Command mobius-train runs the convergence experiment (Figure 13) on
// the real pure-Go GPT substrate: the same model fine-tuned under the
// GPipe execution order and the Mobius execution order (stage swapping
// through simulated DRAM, checkpoint recomputation, gradient flush).
//
// Usage:
//
//	mobius-train -steps 200
package main

import (
	"flag"
	"fmt"
	"os"

	"mobius/internal/experiments"
)

func main() {
	steps := flag.Int("steps", 150, "training steps")
	flag.Parse()
	tab, err := experiments.Figure13(*steps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobius-train: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(tab.String())
}
