// Command mobius-advisor ranks hardware options for fine-tuning a model:
// the question the paper's introduction opens with. For each candidate
// server it simulates the best available system (Mobius on commodity
// boxes, DeepSpeed on NVLink fabrics) and ranks by throughput per dollar.
//
// Usage:
//
//	mobius-advisor -model 15B
//	mobius-advisor -model 51B -steps 20000
package main

import (
	"flag"
	"fmt"
	"os"

	"mobius/internal/advisor"
	"mobius/internal/model"
)

func main() {
	modelName := flag.String("model", "15B", "model: 3B, 8B, 15B, 51B")
	steps := flag.Int("steps", 20000, "fine-tuning job length for the cost projection")
	flag.Parse()

	var m model.Config
	found := false
	for _, c := range model.Table3() {
		if c.Name == *modelName {
			m, found = c, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *modelName)
		os.Exit(2)
	}

	fmt.Printf("hardware advisor for %s (job: %d steps)\n\n", m, *steps)
	recs, err := advisor.Advise(m, advisor.DefaultOptions())
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	for i, r := range recs {
		fmt.Printf("%d. %s\n", i+1, r)
		if !r.OOM {
			fmt.Printf("     job: %.1f h, $%.0f total\n",
				r.StepTime*float64(*steps)/3600, r.PricePerStep*float64(*steps))
		}
	}
	if f := advisor.Fastest(recs); f != nil {
		fmt.Printf("\nfastest: %s (%s)\ncheapest per sample: %s (%s)\n",
			f.Label(), f.System, recs[0].Label(), recs[0].System)
	}
}
