// Command mobius-advisor ranks hardware options for fine-tuning a model:
// the question the paper's introduction opens with. For each candidate
// server it simulates the best available system (Mobius on commodity
// boxes, DeepSpeed on NVLink fabrics) and ranks by throughput per dollar.
//
// Usage:
//
//	mobius-advisor -model 15B
//	mobius-advisor -model 51B -steps 20000
//	mobius-advisor -model 15B -cache-stats
//	mobius-advisor -serve 127.0.0.1:8080
//
// All planning flows through one hardened plan service
// (internal/plansvc), so the menu's repeated shapes are solved once and
// reused. -serve skips the ranking and instead exposes the service over
// HTTP: POST /v1/plan plans (cached, single-flighted, degradation
// ladder) and GET /v1/metrics reports the counters.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"mobius/internal/advisor"
	"mobius/internal/model"
	"mobius/internal/plansvc"
)

func main() {
	modelName := flag.String("model", "15B", "model: 3B, 8B, 15B, 51B")
	steps := flag.Int("steps", 20000, "fine-tuning job length for the cost projection")
	cacheStats := flag.Bool("cache-stats", false, "print plan service counters after advising")
	serve := flag.String("serve", "", "run as a planning service on this address instead of advising (e.g. 127.0.0.1:8080)")
	flag.Parse()

	svc := plansvc.New(plansvc.Config{})

	if *serve != "" {
		fmt.Printf("plan service listening on %s (POST /v1/plan, GET /v1/metrics)\n", *serve)
		if err := http.ListenAndServe(*serve, svc.Handler()); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		return
	}

	var m model.Config
	found := false
	for _, c := range model.Table3() {
		if c.Name == *modelName {
			m, found = c, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *modelName)
		os.Exit(2)
	}

	fmt.Printf("hardware advisor for %s (job: %d steps)\n\n", m, *steps)
	recs, err := advisor.AdviseWith(m, advisor.DefaultOptions(), svc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	for i, r := range recs {
		fmt.Printf("%d. %s\n", i+1, r)
		if !r.OOM {
			fmt.Printf("     job: %.1f h, $%.0f total\n",
				r.StepTime*float64(*steps)/3600, r.PricePerStep*float64(*steps))
		}
	}
	if f := advisor.Fastest(recs); f != nil {
		fmt.Printf("\nfastest: %s (%s)\ncheapest per sample: %s (%s)\n",
			f.Label(), f.System, recs[0].Label(), recs[0].System)
	}
	if *cacheStats {
		ms := svc.Metrics()
		fmt.Printf("\nplansvc: %d requests, %d hits, %d solves, %d warm starts, %d cached plans, breaker %s\n",
			ms.Requests, ms.Hits, ms.Solves, ms.WarmStarts, ms.CacheEntries, svc.BreakerState())
	}
}
