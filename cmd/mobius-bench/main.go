// Command mobius-bench regenerates the paper's evaluation tables and
// figures on the simulated substrate.
//
// Usage:
//
//	mobius-bench                  # run everything, paper order
//	mobius-bench -exp figure5     # one experiment
//	mobius-bench -exp figure9,figure10
//	mobius-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mobius/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	svgDir := flag.String("svg", "", "also render figure SVGs into this directory")
	format := flag.String("format", "text", "output format: text or md")
	parallel := flag.Int("parallel", 0, "worker goroutines prewarming the evaluation grid (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, id := range experiments.Order() {
			fmt.Println(id)
		}
		return
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "svg dir: %v\n", err)
			os.Exit(1)
		}
		for name, render := range experiments.Charts() {
			path := *svgDir + "/" + name + ".svg"
			svg, err := render()
			if err != nil {
				fmt.Fprintf(os.Stderr, "render %s: %v\n", name, err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.Order()
	} else {
		ids = strings.Split(*exp, ",")
	}

	// Fill the run cache concurrently; tables below assemble serially
	// from it, so the output is byte-identical to a cold serial run.
	if *parallel != 1 {
		experiments.Prewarm(*parallel)
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		gen, ok := all[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table, err := gen()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *format == "md" {
			fmt.Println(table.Markdown())
		} else {
			fmt.Println(table.String())
		}
		fmt.Printf("(%s generated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
