GO ?= go

.PHONY: build vet test race check check-faults check-recovery check-chaos bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check-faults is the fault-matrix smoke test: every fault class (link
# degradation, straggler, transient retries, memory pressure), alone and
# combined, replayed end-to-end through core.Run for Mobius and GPipe
# under the race detector.
check-faults:
	$(GO) test -race -run 'TestFaultMatrix' -count=1 ./internal/fault/

# check-recovery is the elastic-recovery smoke test: every recovery
# policy against both permanent-failure classes end-to-end (accounting
# identity included), plus the bitwise checkpoint/resume property of the
# real trainer, under the race detector.
check-recovery:
	$(GO) test -race -run 'TestRecovery' -count=1 ./internal/elastic/
	$(GO) test -race -run 'TestResume|TestCheckpoint' -count=1 ./internal/train/

# check-chaos is the integrity gate: the deterministic chaos matrix
# (randomized corruption scenarios, invariants and replay determinism,
# plus the rollback accounting identity) under the race detector,
# followed by a short native-fuzz smoke of the spec parser and the chaos
# invariants.
check-chaos:
	$(GO) test -race -run 'TestChaos' -count=1 ./internal/chaos/
	$(GO) test -run xxx -fuzz 'FuzzParseJSON' -fuzztime 10s ./internal/fault/
	$(GO) test -run xxx -fuzz 'FuzzChaosInvariants' -fuzztime 10s ./internal/chaos/

# check is the tier-1 gate: everything must compile, vet clean, pass the
# test suite under the race detector (the planning pipeline is
# concurrent, so plain `go test` alone is not enough), and survive the
# fault matrix, the recovery matrix, and the chaos matrix.
check: build vet race check-faults check-recovery check-chaos

bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/sim/ ./internal/mapping/ ./internal/partition/
