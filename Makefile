GO ?= go

.PHONY: build vet test race check check-faults check-recovery check-chaos check-perf bench bench-json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check-faults is the fault-matrix smoke test: every fault class (link
# degradation, straggler, transient retries, memory pressure), alone and
# combined, replayed end-to-end through core.Run for Mobius and GPipe
# under the race detector.
check-faults:
	$(GO) test -race -run 'TestFaultMatrix' -count=1 ./internal/fault/

# check-recovery is the elastic-recovery smoke test: every recovery
# policy against both permanent-failure classes end-to-end (accounting
# identity included), plus the bitwise checkpoint/resume property of the
# real trainer, under the race detector.
check-recovery:
	$(GO) test -race -run 'TestRecovery' -count=1 ./internal/elastic/
	$(GO) test -race -run 'TestResume|TestCheckpoint' -count=1 ./internal/train/

# check-chaos is the integrity gate: the deterministic chaos matrix
# (randomized corruption scenarios, invariants and replay determinism,
# plus the rollback accounting identity) under the race detector,
# followed by a short native-fuzz smoke of the spec parser and the chaos
# invariants.
check-chaos:
	$(GO) test -race -run 'TestChaos' -count=1 ./internal/chaos/
	$(GO) test -run xxx -fuzz 'FuzzParseJSON' -fuzztime 10s ./internal/fault/
	$(GO) test -run xxx -fuzz 'FuzzChaosInvariants' -fuzztime 10s ./internal/chaos/

# check-perf is the performance smoke gate: a short in-process comparison
# asserting the incremental flow scheduler still beats the retained
# global-recompute oracle on the contention workload (relative check, so
# it holds on any machine; see internal/sim/perf_test.go).
check-perf:
	MOBIUS_CHECK_PERF=1 $(GO) test -run 'TestIncrementalBeatsOracle' -count=1 -v ./internal/sim/

# check is the tier-1 gate: everything must compile, vet clean, pass the
# test suite under the race detector (the planning pipeline is
# concurrent, so plain `go test` alone is not enough), and survive the
# fault matrix, the recovery matrix, the chaos matrix, and the
# performance smoke gate.
check: build vet race check-faults check-recovery check-chaos check-perf

bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/sim/ ./internal/mapping/ ./internal/partition/

# bench-json regenerates BENCH_sim.json: the simulator, mapping, and
# partition benchmarks parsed into a diffable JSON document (see
# cmd/bench2json). Run on an idle machine; EXPERIMENTS.md documents the
# methodology and the recorded pre-optimization baselines.
bench-json:
	$(GO) test -run xxx -bench . -benchmem ./internal/sim/ ./internal/mapping/ ./internal/partition/ | $(GO) run ./cmd/bench2json -o BENCH_sim.json
