GO ?= go

.PHONY: build vet test race check check-faults check-recovery check-chaos check-sharded check-scale check-perf check-plansvc check-cluster check-store bench bench-json bench-plan-json bench-cluster-json bench-store-json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The full grid under the race detector sits near go test's default 10m
# per-binary cap on a single-core box; the explicit timeout is headroom,
# not license for slower tests.
race:
	$(GO) test -race -timeout 30m ./...

# check-faults is the fault-matrix smoke test: every fault class (link
# degradation, straggler, transient retries, memory pressure), alone and
# combined, replayed end-to-end through core.Run for Mobius and GPipe
# under the race detector.
check-faults:
	$(GO) test -race -run 'TestFaultMatrix' -count=1 ./internal/fault/

# check-recovery is the elastic-recovery smoke test: every recovery
# policy against both permanent-failure classes end-to-end (accounting
# identity included), plus the bitwise checkpoint/resume property of the
# real trainer, under the race detector.
check-recovery:
	$(GO) test -race -run 'TestRecovery' -count=1 ./internal/elastic/
	$(GO) test -race -run 'TestResume|TestCheckpoint' -count=1 ./internal/train/

# check-chaos is the integrity gate: the deterministic chaos matrix
# (randomized corruption scenarios, invariants and replay determinism,
# plus the rollback accounting identity) under the race detector,
# followed by a short native-fuzz smoke of the spec parser and the chaos
# invariants.
check-chaos:
	$(GO) test -race -run 'TestChaos' -count=1 ./internal/chaos/
	$(GO) test -run xxx -fuzz 'FuzzParseJSON' -fuzztime 10s ./internal/fault/
	$(GO) test -run xxx -fuzz 'FuzzChaosInvariants' -fuzztime 10s ./internal/chaos/

# check-sharded is the sharded-scheduler gate: the full simulator suite —
# including the differential tests that hold the parallel scheduler
# bitwise-identical to the serial incremental one and the oracle across
# the chaos topologies at K ∈ {1,2,3,4,8,16} — uncached, under the race
# detector.
check-sharded:
	$(GO) test -race -count=1 ./internal/sim/

# check-scale is the scale gate: the skewed differential suite (serial
# vs work-stealing parallel at K ∈ {1,2,3,4,8,16}, stealing on and off),
# the streaming-builder bitwise-equivalence test, the Reset slab-shrink
# regression, and the 10k-flow smoke — all uncached under the race
# detector, so steal interleavings are exercised, not just one schedule.
check-scale:
	$(GO) test -race -run 'TestDifferentialParallelSkewed|TestScaleSmoke|TestBuilderMatchesNaive|TestSyntheticShape|TestResetShrinksRetainedSlabs' -count=1 ./internal/sim/

# check-perf is the performance smoke gate: short in-process comparisons
# asserting the incremental flow scheduler still beats the retained
# global-recompute oracle, the sharded scheduler still beats the serial
# incremental one at 1024 flows with allocation-free steady state, work
# stealing is never slower than static shard assignment on a skewed
# partition, and streaming construction stays ≥5x leaner than the
# pre-streaming builder (relative checks, so they hold on any machine;
# see internal/sim/perf_test.go).
check-perf:
	MOBIUS_CHECK_PERF=1 $(GO) test -run 'TestIncrementalBeatsOracle|TestParallelBeatsSerial|TestStealBeatsNoStealOnSkew|TestStreamConstructLean' -count=1 -timeout 30m -v ./internal/sim/

# check-plansvc is the planning-service gate: the deterministic
# concurrency suite (cache keys, single-flight coalescing and
# cancelled-leader handoff, corrupt-entry degradation, the
# retry/backoff/breaker ladder on a virtual clock, HTTP surface) plus
# the seed-derived planner-fault chaos matrix (serial bitwise replay and
# the concurrent fan-out), all under the race detector. -short skips the
# two MIP-heavy tests (warm-start equivalence, zero-solve elastic
# recovery); plain `make race` runs them.
check-plansvc:
	$(GO) test -race -short -count=1 ./internal/plansvc/
	$(GO) test -race -run 'TestPlanning' -count=1 ./internal/chaos/

# check-cluster is the fleet gate: the multi-tenant cluster suite
# (conservation and fairness identities, the admission/backpressure/
# degrade/shed ladder, server-loss recovery with zero-solve re-landing,
# the bitwise differential against single-job core.Run) plus the
# seed-derived cluster chaos matrix (serial bitwise replay, concurrent
# fan-out over a shared step cache) and the overload-sweep shape
# assertions, all under the race detector.
check-cluster:
	$(GO) test -race -run 'TestCluster|TestJain|TestBucket|TestGamma' -count=1 ./internal/cluster/
	$(GO) test -race -run 'TestClusterChaos' -count=1 ./internal/chaos/
	$(GO) test -race -run 'TestOverload' -count=1 ./internal/experiments/

# check-store is the persistence gate: the crash-safe plan store's full
# suite (record grammar, truncate-at-every-byte and bit-flip-at-every-
# byte properties, quarantine semantics, write-behind queue bounds), the
# warm-restart recovery suite in plansvc (zero-solve restart, eviction
# coherence, capacity-capped adoption), the fleet restart suite, and the
# seed-derived store chaos matrix with its decision mirror — all under
# the race detector — then a short native-fuzz smoke of the record
# loader and the store chaos invariants.
check-store:
	$(GO) test -race -count=1 ./internal/planstore/
	$(GO) test -race -run 'TestWarmRestart|TestWarmStart|TestEviction|TestTTLEviction|TestCorruptStore|TestMetricsEndpoint|TestPrewarmDepth' -count=1 ./internal/plansvc/
	$(GO) test -race -run 'TestClusterRestart|TestClusterWarmRestart|TestClusterColdRestart' -count=1 ./internal/cluster/
	$(GO) test -race -run 'TestStoreChaos' -count=1 ./internal/chaos/
	$(GO) test -run xxx -fuzz 'FuzzStoreLoad' -fuzztime 10s ./internal/planstore/
	$(GO) test -run xxx -fuzz 'FuzzStoreChaosInvariants' -fuzztime 10s ./internal/chaos/

# check is the tier-1 gate: everything must compile, vet clean, pass the
# test suite under the race detector (the planning pipeline is
# concurrent, so plain `go test` alone is not enough), and survive the
# fault matrix, the recovery matrix, the chaos matrix, the sharded
# scheduler's race-clean differential suite, the scale gate, the
# performance smoke gate, and the multi-tenant fleet gate.
check: build vet race check-faults check-recovery check-chaos check-sharded check-scale check-perf check-plansvc check-cluster check-store

bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/sim/ ./internal/mapping/ ./internal/partition/

# bench-json regenerates BENCH_sim.json: the simulator, mapping, and
# partition benchmarks parsed into a diffable JSON document (see
# cmd/bench2json). Run on an idle machine; EXPERIMENTS.md documents the
# methodology and the recorded pre-optimization baselines.
bench-json:
	$(GO) test -run xxx -bench . -benchmem ./internal/sim/ ./internal/mapping/ ./internal/partition/ | $(GO) run ./cmd/bench2json -o BENCH_sim.json

# bench-plan-json regenerates BENCH_plan.json: the planning-service
# latency benchmarks (cache hit, key derivation, greedy floor) plus the
# plan-store persistence benchmarks (write-behind round trip, warm-
# restart directory replay) in the same diffable JSON format as
# BENCH_sim.json.
bench-plan-json:
	$(GO) test -run xxx -bench . -benchmem ./internal/plansvc/ ./internal/planstore/ | $(GO) run ./cmd/bench2json -o BENCH_plan.json

# bench-store-json is bench-plan-json restricted to the plan-store
# persistence benchmarks — quick to re-run when only the store changed.
bench-store-json:
	$(GO) test -run xxx -bench . -benchmem ./internal/planstore/ | $(GO) run ./cmd/bench2json -o BENCH_store.json

# bench-cluster-json regenerates BENCH_cluster.json: fleet-simulation
# throughput (jobs/s at a fixed 3-server fleet with a warm step cache)
# and the per-arrival admission-decision latency, in the same diffable
# JSON format as the other BENCH_*.json documents.
bench-cluster-json:
	$(GO) test -run xxx -bench . -benchmem ./internal/cluster/ | $(GO) run ./cmd/bench2json -o BENCH_cluster.json
