GO ?= go

.PHONY: build vet test race check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the tier-1 gate: everything must compile, vet clean, and pass
# the test suite under the race detector (the planning pipeline is
# concurrent, so plain `go test` alone is not enough).
check: build vet race

bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/sim/ ./internal/mapping/ ./internal/partition/
