package mobius

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each benchmark
// prints its experiment table once — the rows mirror the original plot —
// and then times a representative simulation or solve so the numbers are
// meaningful as Go benchmarks too. EXPERIMENTS.md records the
// paper-vs-measured comparison for every experiment.

import (
	"fmt"
	"sync"
	"testing"

	"mobius/internal/core"
	"mobius/internal/experiments"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/nn"
	"mobius/internal/textgen"
	"mobius/internal/train"
)

var (
	printedMu sync.Mutex
	printed   = map[string]bool{}
)

// printOnce renders an experiment table the first time its benchmark
// runs (benchmarks are re-entered with growing b.N).
func printOnce(id string) {
	printedMu.Lock()
	defer printedMu.Unlock()
	if printed[id] {
		return
	}
	printed[id] = true
	tab, err := experiments.All()[id]()
	if err != nil {
		panic(fmt.Sprintf("experiment %s: %v", id, err))
	}
	fmt.Println(tab.String())
}

// stepSim is the repeated unit of measurement for figure benchmarks: one
// full training-step simulation (planning results are cached; the
// discrete-event simulation itself re-runs every iteration).
func stepSim(b *testing.B, sys core.System, m model.Config, topo *hw.Topology) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := core.Run(sys, core.Options{Model: m, Topology: topo})
		if err != nil {
			b.Fatal(err)
		}
		if r.OOM {
			b.Fatal("unexpected OOM")
		}
	}
}

func BenchmarkTable1_GPUSpecs(b *testing.B) {
	printOnce("table1")
	for i := 0; i < b.N; i++ {
		if hw.RTX3090Ti.Effective() <= 0 || hw.A100.Effective() <= 0 {
			b.Fatal("bad spec")
		}
	}
}

func BenchmarkTable3_ModelConfigs(b *testing.B) {
	printOnce("table3")
	for i := 0; i < b.N; i++ {
		for _, m := range model.Table3() {
			if m.TotalParams() <= 0 {
				b.Fatal("bad model")
			}
		}
	}
}

func BenchmarkFigure2_DeepSpeedBandwidthCDF(b *testing.B) {
	printOnce("figure2")
	stepSim(b, core.SystemDSHetero, model.GPT15B, hw.Commodity(hw.RTX3090Ti, 2, 2))
}

func BenchmarkFigure5_PerStepTime(b *testing.B) {
	printOnce("figure5")
	stepSim(b, core.SystemMobius, model.GPT15B, hw.Commodity(hw.RTX3090Ti, 2, 2))
}

func BenchmarkFigure6_CommunicationTraffic(b *testing.B) {
	printOnce("figure6")
	stepSim(b, core.SystemMobius, model.GPT8B, hw.Commodity(hw.RTX3090Ti, 2, 2))
}

func BenchmarkFigure7_BandwidthCDF(b *testing.B) {
	printOnce("figure7")
	stepSim(b, core.SystemMobius, model.GPT51B, hw.Commodity(hw.RTX3090Ti, 2, 2))
}

func BenchmarkFigure8_NonOverlappedComm(b *testing.B) {
	printOnce("figure8")
	stepSim(b, core.SystemDSHetero, model.GPT51B, hw.Commodity(hw.RTX3090Ti, 2, 2))
}

func BenchmarkFigure9_PartitionAblation(b *testing.B) {
	printOnce("figure9")
	// Measure the min-stage variant: most stages, biggest schedule DAG.
	for i := 0; i < b.N; i++ {
		r, err := core.Run(core.SystemMobius, core.Options{
			Model:         model.GPT8B,
			Topology:      hw.Commodity(hw.RTX3090Ti, 2, 2),
			PartitionAlgo: PartitionMinStage,
		})
		if err != nil || r.OOM {
			b.Fatalf("min-stage run failed: %v", err)
		}
	}
}

func BenchmarkFigure10_CrossMapping(b *testing.B) {
	printOnce("figure10")
	for i := 0; i < b.N; i++ {
		r, err := core.Run(core.SystemMobius, core.Options{
			Model:         model.GPT15B,
			Topology:      hw.Commodity(hw.RTX3090Ti, 4, 4),
			MappingScheme: MappingCross,
		})
		if err != nil || r.OOM {
			b.Fatalf("cross-mapping run failed: %v", err)
		}
	}
}

func BenchmarkFigure11_MappingBandwidthCDF(b *testing.B) {
	printOnce("figure11")
	for i := 0; i < b.N; i++ {
		r, err := core.Run(core.SystemMobius, core.Options{
			Model:         model.GPT15B,
			Topology:      hw.Commodity(hw.RTX3090Ti, 4, 4),
			MappingScheme: MappingSequential,
		})
		if err != nil || r.OOM {
			b.Fatalf("sequential-mapping run failed: %v", err)
		}
	}
}

func BenchmarkFigure12_Overhead(b *testing.B) {
	printOnce("figure12")
	// Measure an uncached MIP partition solve for the 8B model — the
	// quantity Figure 12 reports.
	topo := hw.Commodity(hw.RTX3090Ti, 1, 3)
	for i := 0; i < b.N; i++ {
		_, err := core.PlanMobius(core.Options{
			Model:    model.GPT8B,
			Topology: topo,
			MIP:      mipNoCacheOptions(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13_Convergence(b *testing.B) {
	printOnce("figure13")
	// One real Mobius training step on the nn substrate per iteration.
	cfg := nn.Config{Vocab: 64, Seq: 16, Dim: 32, Heads: 4, Layers: 4, Seed: 7}
	corpus, err := textgen.Generate(cfg.Vocab, 30000, 13)
	if err != nil {
		b.Fatal(err)
	}
	m, _ := nn.NewGPT(cfg)
	tr, err := train.New(m, 3, 3e-3, train.ModeMobius)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var batches []nn.Batch
		for k := 0; k < 4; k++ {
			batches = append(batches, corpus.Batch(cfg.Seq, 2, i, k))
		}
		tr.Step(batches)
	}
}

func BenchmarkFigure14_Scalability(b *testing.B) {
	printOnce("figure14")
	stepSim(b, core.SystemMobius, model.GPT15B.WithMicrobatch(1), hw.Commodity(hw.RTX3090Ti, 4, 4))
}

func BenchmarkFigure15_DataCenter(b *testing.B) {
	printOnce("figure15")
	stepSim(b, core.SystemDSHetero, model.GPT8B.WithMicrobatch(2), hw.DataCenter(hw.V100, 4, 300*hw.GB))
}

func BenchmarkFigure16_DataCenterBandwidthCDF(b *testing.B) {
	printOnce("figure16")
	stepSim(b, core.SystemMobius, model.GPT8B.WithMicrobatch(2), hw.DataCenter(hw.V100, 4, 300*hw.GB))
}

// BenchmarkAblationPrefetch prints the prefetch on/off ablation and
// measures the no-prefetch variant (worst case: every upload exposed).
func BenchmarkAblationPrefetch(b *testing.B) {
	printOnce("ablation-prefetch")
	for i := 0; i < b.N; i++ {
		r, err := core.Run(core.SystemMobius, core.Options{
			Model:           model.GPT15B,
			Topology:        hw.Commodity(hw.RTX3090Ti, 2, 2),
			DisablePrefetch: true,
		})
		if err != nil || r.OOM {
			b.Fatalf("no-prefetch run failed: %v", err)
		}
	}
}

// BenchmarkAblationPriority prints the prefetch-priority ablation and
// measures the non-prioritized variant.
func BenchmarkAblationPriority(b *testing.B) {
	printOnce("ablation-priority")
	for i := 0; i < b.N; i++ {
		r, err := core.Run(core.SystemMobius, core.Options{
			Model:                   model.GPT15B,
			Topology:                hw.Commodity(hw.RTX3090Ti, 4),
			DisablePrefetchPriority: true,
		})
		if err != nil || r.OOM {
			b.Fatalf("no-priority run failed: %v", err)
		}
	}
}

// BenchmarkAblationMicrobatches prints the M sweep and measures the
// largest pipeline (M=16).
func BenchmarkAblationMicrobatches(b *testing.B) {
	printOnce("ablation-microbatches")
	for i := 0; i < b.N; i++ {
		r, err := core.Run(core.SystemMobius, core.Options{
			Model:        model.GPT15B,
			Topology:     hw.Commodity(hw.RTX3090Ti, 2, 2),
			Microbatches: 16,
		})
		if err != nil || r.OOM {
			b.Fatalf("M=16 run failed: %v", err)
		}
	}
}
