// What-if: capacity planning with the simulator. Before buying or
// renting hardware, sweep the knobs that matter — root-complex bandwidth
// (PCIe generation), GPU memory, and GPU grouping — and see how Mobius'
// step time responds for your model.
package main

import (
	"fmt"
	"log"

	"mobius"
)

func run(topo *mobius.Topology) float64 {
	r, err := mobius.Run(mobius.SystemMobius, mobius.Options{Model: mobius.GPT15B, Topology: topo})
	if err != nil {
		log.Fatal(err)
	}
	if r.OOM {
		return -1
	}
	return r.StepTime
}

func main() {
	fmt.Println("-- what if the PCIe fabric were faster? (15B, 4 GPUs, 2+2) --")
	for _, bw := range []float64{8, 13.1, 26, 52} { // PCIe 3 x8 .. PCIe 5 x16-ish
		topo := mobius.Commodity(mobius.RTX3090Ti, 2, 2)
		for i := range topo.RootComplexBW {
			topo.RootComplexBW[i] = bw * 1e9
		}
		topo.Name = fmt.Sprintf("2+2 @ %.1f GB/s", bw)
		fmt.Printf("root complex %5.1f GB/s: %6.2f s/step\n", bw, run(topo))
	}

	fmt.Println("\n-- what if the GPUs had more memory? --")
	for _, gb := range []float64{12, 16, 24, 48} {
		spec := mobius.RTX3090Ti
		spec.MemBytes = gb * mobius.GB
		topo := mobius.Commodity(spec, 2, 2)
		topo.Name = fmt.Sprintf("2+2 %gGB", gb)
		t := run(topo)
		if t < 0 {
			fmt.Printf("%4.0f GB GPUs: OOM (a single transformer block no longer fits)\n", gb)
			continue
		}
		fmt.Printf("%4.0f GB GPUs: %6.2f s/step\n", gb, t)
	}

	fmt.Println("\n-- what does the job cost at each design point? --")
	base := mobius.Commodity(mobius.RTX3090Ti, 2, 2)
	t := run(base)
	fmt.Printf("today's server: %.2f s/step, $%.5f/step, $%.0f for a 20k-step fine-tune\n",
		t, mobius.PricePerStep(base, t), mobius.PricePerStep(base, t)*20000)
}
