// Quickstart: plan and simulate one Mobius fine-tuning step of the 15B
// model on a commodity 4x3090-Ti server ("Topo 2+2").
package main

import (
	"fmt"
	"log"

	"mobius"
)

func main() {
	topo := mobius.Commodity(mobius.RTX3090Ti, 2, 2)

	// Plan: profile the model, solve the MIP partition, search the cross
	// mapping.
	plan, err := mobius.PlanMobius(mobius.Options{Model: mobius.GPT15B, Topology: topo})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %d stages over %d GPUs (%s partition, %s mapping)\n",
		plan.Partition.NumStages(), topo.NumGPUs(),
		plan.Partition.Algorithm, plan.Mapping.Scheme)
	fmt.Printf("predicted step time: %.2fs\n\n", plan.PredictedStep)

	// Simulate one training step and report what the paper measures.
	report, err := mobius.Run(mobius.SystemMobius, mobius.Options{Model: mobius.GPT15B, Topology: topo})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	fmt.Printf("median transfer bandwidth: %.1f GB/s\n", report.BandwidthCDF.Median()/1e9)
	fmt.Printf("price: $%.5f per step on this server\n", mobius.PricePerStep(topo, report.StepTime))
}
