// Convergence: train a real (small) GPT under the GPipe execution order
// and the Mobius execution order and watch the loss curves overlap — the
// Figure 13 experiment. The Mobius trainer genuinely swaps stage weights
// through a simulated DRAM, evicting GPU buffers between stages and
// recomputing activations from offloaded checkpoints, so a bug in the
// swap protocol would immediately separate the curves.
//
// The pipeline is end-to-end text: a synthetic corpus is generated, a
// BPE tokenizer is trained on it, the GPT trains on the token stream,
// and at the end the model generates text again.
package main

import (
	"fmt"
	"log"

	"mobius/internal/nn"
	"mobius/internal/textgen"
	"mobius/internal/train"
)

func main() {
	// Text -> tokenizer -> corpus.
	text := textgen.GenerateText(20000, 42)
	tok, err := textgen.TrainBPE(text, 96)
	if err != nil {
		log.Fatal(err)
	}
	corpus := tok.TokenCorpus(text)
	fmt.Printf("corpus: %d words -> %d BPE tokens (vocab %d)\n\n",
		20000, len(corpus.Tokens), tok.VocabSize())

	cfg := nn.Config{Vocab: tok.VocabSize(), Seq: 16, Dim: 32, Heads: 4, Layers: 4, Seed: 7}
	mG, _ := nn.NewGPT(cfg)
	mM, _ := nn.NewGPT(cfg)
	gpipe, err := train.New(mG, 3, 3e-3, train.ModeGPipe)
	if err != nil {
		log.Fatal(err)
	}
	mob, err := train.New(mM, 3, 3e-3, train.ModeMobius)
	if err != nil {
		log.Fatal(err)
	}

	prompt := tok.Encode("mobius pipe")
	fmt.Printf("before training, the model continues %q with: %q\n\n",
		"mobius pipe", tok.Decode(mM.Generate(prompt, 24))[len("mobius pipe"):])

	fmt.Println("step   gpipe    mobius   |diff|")
	const steps = 100
	for step := 0; step < steps; step++ {
		var batches []nn.Batch
		for i := 0; i < 4; i++ {
			batches = append(batches, corpus.Batch(cfg.Seq, 2, step, i))
		}
		lg := gpipe.Step(batches)
		lm := mob.Step(batches)
		if step%10 == 0 || step == steps-1 {
			diff := lg - lm
			if diff < 0 {
				diff = -diff
			}
			fmt.Printf("%4d  %7.4f  %7.4f  %.2e\n", step, lg, lm, diff)
		}
	}

	fmt.Printf("\nafter training, it continues with: %q\n",
		tok.Decode(mM.Generate(prompt, 24))[len("mobius pipe"):])
	fmt.Println("\nThe Mobius execution order is numerically identical to GPipe's:")
	fmt.Println("heterogeneous-memory swapping does not change what the model learns.")
}
