// Finetune: decide how to fine-tune a large model on the hardware you
// have. Compares all four systems of the paper on a commodity server,
// then prices the job.
//
// This is the workload of the paper's introduction: a practitioner with
// a cheap multi-GPU box wants to fine-tune a published 15B checkpoint.
package main

import (
	"fmt"
	"log"

	"mobius"
)

func main() {
	topo := mobius.Commodity(mobius.RTX3090Ti, 2, 2)
	m := mobius.GPT15B
	fmt.Printf("fine-tuning %s on %s\n\n", m, topo)

	const stepsNeeded = 20000 // a typical fine-tuning run

	fmt.Printf("%-22s %10s %14s %12s\n", "system", "s/step", "job duration", "job cost")
	var best *mobius.StepReport
	for _, sys := range mobius.Systems() {
		r, err := mobius.Run(sys, mobius.Options{Model: m, Topology: topo})
		if err != nil {
			log.Fatal(err)
		}
		if r.OOM {
			fmt.Printf("%-22s %10s\n", sys, "OOM")
			continue
		}
		hours := r.StepTime * stepsNeeded / 3600
		cost := mobius.PricePerStep(topo, r.StepTime) * stepsNeeded
		fmt.Printf("%-22s %10.2f %11.1f h  $%10.0f\n", sys, r.StepTime, hours, cost)
		if best == nil || r.StepTime < best.StepTime {
			best = r
		}
	}

	fmt.Printf("\nbest: %s at %.2f s/step\n", best.System, best.StepTime)
	if best.Plan != nil {
		fmt.Printf("plan: %d stages, mapping %v\n", best.Plan.Partition.NumStages(), best.Plan.Mapping.Perm)
	}
	fmt.Printf("communication exposed (not hidden by compute): %.0f%%\n", best.NonOverlapFraction*100)
}
