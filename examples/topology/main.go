// Topology explorer: how do GPU allocation and PCIe layout change
// training performance? Sweeps the paper's topologies plus scaling from
// 2 to 8 GPUs, for Mobius and DeepSpeed-hetero.
//
// This reproduces the situation of §4 "GPU topologies": on a shared
// server your job may be handed GPUs that all sit under one CPU root
// complex (Topo 4) or nicely spread ones (Topo 2+2).
package main

import (
	"fmt"
	"log"

	"mobius"
)

func main() {
	m := mobius.GPT15B

	fmt.Println("-- contention: 4 GPUs under different root-complex layouts --")
	layouts := [][]int{{2, 2}, {1, 3}, {4}}
	for _, groups := range layouts {
		topo := mobius.Commodity(mobius.RTX3090Ti, groups...)
		mob, err := mobius.Run(mobius.SystemMobius, mobius.Options{Model: m, Topology: topo})
		if err != nil {
			log.Fatal(err)
		}
		ds, err := mobius.Run(mobius.SystemDSHetero, mobius.Options{Model: m, Topology: topo})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s Mobius %6.2fs   DeepSpeed %6.2fs   speedup %.1fx\n",
			topo.Name, mob.StepTime, ds.StepTime, ds.StepTime/mob.StepTime)
	}

	fmt.Println("\n-- scaling: 2 to 8 GPUs, half per root complex, batch grows with GPUs --")
	mb1 := m.WithMicrobatch(1)
	var base float64
	for _, n := range []int{2, 4, 6, 8} {
		topo := mobius.Commodity(mobius.RTX3090Ti, n/2, n-n/2)
		r, err := mobius.Run(mobius.SystemMobius, mobius.Options{Model: mb1, Topology: topo})
		if err != nil {
			log.Fatal(err)
		}
		thr := float64(n) / r.StepTime
		if n == 2 {
			base = thr
		}
		fmt.Printf("%d GPUs: %6.2fs/step  throughput %5.2f samples/s  scaling %.2fx (ideal %.1fx)\n",
			n, r.StepTime, thr, thr/base, float64(n)/2)
	}
}
