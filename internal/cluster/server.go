package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"mobius/internal/core"
	"mobius/internal/planstore"
	"mobius/internal/plansvc"
)

// server is one Mobius box of the fleet: a bounded queue, one job in
// flight at a time (the whole machine trains one model), its own plan
// cache (a plansvc.Service — affinity routing asks it svc.Has), and a
// dispatch circuit breaker.
type server struct {
	id  int
	svc *plansvc.Service

	// store/storeDir back the plan cache on disk when Config.StoreRoot
	// is set; a restart closes the store and reopens the directory.
	store    *planstore.Store
	storeDir string

	// retiredSolves/retiredHits accumulate the plan metrics of services
	// discarded by restarts, so the fleet report's totals span every
	// incarnation of the server.
	retiredSolves uint64
	retiredHits   uint64

	queue    []*job
	inflight *job
	parked   []*job // held between failure and detection

	// gen invalidates completion and detection events scheduled before
	// a failure or restart.
	gen      uint64
	dead     bool
	detected bool

	br breaker
}

func newServer(id int, cfg Config) (*server, error) {
	s := &server{
		id: id,
		br: breaker{
			threshold: cfg.BreakerThreshold,
			cooldownS: cfg.BreakerCooldownS,
		},
	}
	if cfg.StoreRoot == "" {
		s.svc = plansvc.New(plansvc.Config{})
		return s, nil
	}
	s.storeDir = filepath.Join(cfg.StoreRoot, fmt.Sprintf("server%d", id))
	st, err := planstore.Open(planstore.Config{Dir: s.storeDir})
	if err != nil {
		return nil, fmt.Errorf("cluster: server %d plan store: %w", id, err)
	}
	s.store = st
	s.svc = plansvc.New(plansvc.Config{Store: st})
	return s, nil
}

// retire folds the current service's plan counters into the retired
// accumulators before the service is replaced.
func (s *server) retire() {
	m := s.svc.Metrics()
	s.retiredSolves += m.Solves
	s.retiredHits += m.Hits
}

// reopen rebuilds the server's planning service across a restart. With
// a real store the dying store is drained and closed, the directory
// wiped when the bounce is cold, and the new service warm-starts from
// whatever the store replays. Without one, a warm restart retains the
// cache (the contents an intact persisted store would reload) and a
// cold restart starts a fresh service.
func (s *server) reopen(cfg Config, cold bool) error {
	if s.store == nil {
		if cold {
			s.retire()
			s.svc = plansvc.New(plansvc.Config{})
		}
		return nil
	}
	s.retire()
	s.store.Close()
	if cold {
		if err := os.RemoveAll(s.storeDir); err != nil {
			return fmt.Errorf("cluster: server %d cold restart: %w", s.id, err)
		}
	}
	st, err := planstore.Open(planstore.Config{Dir: s.storeDir})
	if err != nil {
		return fmt.Errorf("cluster: server %d restart: %w", s.id, err)
	}
	s.store = st
	s.svc = plansvc.New(plansvc.Config{Store: st})
	return nil
}

// closeStore drains and closes the backing store, if any.
func (s *server) closeStore() {
	if s.store != nil {
		s.store.Close()
		s.store = nil
	}
}

// load is the routing pressure metric: queued plus in-flight.
func (s *server) load() int {
	n := len(s.queue)
	if s.inflight != nil {
		n++
	}
	return n
}

// popBest removes and returns the next job to run: lowest SLO number
// first, then FIFO by enqueue time, then id.
func (s *server) popBest(classes []Class) *job {
	best := 0
	for i := 1; i < len(s.queue); i++ {
		a, b := s.queue[i], s.queue[best]
		sa, sb := classes[a.class].SLO, classes[b.class].SLO
		if sa < sb || (sa == sb && (a.enqueuedAt < b.enqueuedAt ||
			(a.enqueuedAt == b.enqueuedAt && a.id < b.id))) {
			best = i
		}
	}
	j := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return j
}

// planLatency charges the virtual planning cost of dispatching j here
// and makes the server's plan cache warm for its key: a greedy-floor
// job pays the greedy latency; a cached plan pays a lookup; anything
// else pays a full solve (and is then cached, so the next job of this
// shape — or this job re-landing — hits).
func (s *server) planLatency(cfg Config, j *job) (float64, error) {
	if j.degraded {
		return cfg.PlanGreedyLatencyS, nil
	}
	if s.svc.Has(j.key) {
		return cfg.PlanHitLatencyS, nil
	}
	if err := s.warm(j.opts); err != nil {
		return 0, err
	}
	return cfg.PlanSolveLatencyS, nil
}

// warm plans opts into this server's cache.
func (s *server) warm(opts core.Options) error {
	_, err := s.svc.PlanMobius(context.Background(), opts)
	return err
}

// breaker is the dispatch circuit breaker in virtual float seconds —
// the same closed/open/half-open machine as plansvc's planning breaker,
// driven by the fleet clock instead of time.Time.
type breaker struct {
	threshold int
	cooldownS float64

	state    breakerState
	fails    int
	openedAt float64
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// routable is the router's non-mutating view: closed, or open past its
// cooldown (choosing it would probe). Half-open means a probe is
// already out.
func (b *breaker) routable(now float64) bool {
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return now-b.openedAt >= b.cooldownS
	default:
		return false
	}
}

// allow consumes the routing decision: an open breaker past cooldown
// transitions to half-open (the dispatch is its probe).
func (b *breaker) allow(now float64) {
	if b.state == breakerOpen && now-b.openedAt >= b.cooldownS {
		b.state = breakerHalfOpen
	}
}

func (b *breaker) success() {
	b.state = breakerClosed
	b.fails = 0
}

func (b *breaker) failure(now float64) (tripped bool) {
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = now
		return true
	}
	b.fails++
	if b.state == breakerClosed && b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
		b.fails = 0
		return true
	}
	return false
}
