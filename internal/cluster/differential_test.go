package cluster

import (
	"testing"

	"mobius/internal/core"
	"mobius/internal/model"
	"mobius/internal/partition"
)

// TestClusterDifferentialSingleJob holds the fleet simulator to the
// single-server truth: a one-server cluster must price a job's
// execution bitwise-identically to direct core.Run pricing of the same
// shape — N plain steps plus the checkpoint surcharge on every k-th.
// Any drift here means the fleet layer is inventing or losing time.
func TestClusterDifferentialSingleJob(t *testing.T) {
	const steps, every = 5, 2
	cl := Class{
		Name:            "solo",
		RatePerS:        0.05,
		Model:           model.GPT3B,
		PartitionAlgo:   partition.AlgoBalanced,
		BalancedStages:  4,
		StepsMin:        steps,
		StepsMax:        steps,
		CheckpointEvery: every,
	}
	cfg := Config{
		Servers:  1,
		Topology: topo22(),
		Classes:  []Class{cl},
		HorizonS: 200,
		Seed:     3,
		Paranoid: true,
		Cache:    NewStepCache(), // cold: pricing happens inside this run
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Conservation(); err != nil {
		t.Fatal(err)
	}
	var done *JobRecord
	for i := range rep.Jobs {
		if rep.Jobs[i].Outcome == "completed" {
			done = &rep.Jobs[i]
			break
		}
	}
	if done == nil {
		t.Fatalf("no completed job in %+v", rep)
	}

	// The ground truth, priced directly through core.Run on the same
	// normalized options the cluster used.
	opts := classOptions(cfg, 0)
	plain, err := core.Run(core.SystemMobius, opts)
	if err != nil || plain.OOM {
		t.Fatalf("direct run: err=%v oom=%v", err, plain.OOM)
	}
	copts := opts
	copts.Checkpoint = checkpointWrite(opts.Model.ModelStatesBytes())
	ckpt, err := core.Run(core.SystemMobius, copts)
	if err != nil || ckpt.OOM {
		t.Fatalf("direct checkpointed run: err=%v oom=%v", err, ckpt.OOM)
	}

	want := float64(steps)*plain.StepTime + float64(steps/every)*(ckpt.StepTime-plain.StepTime)
	if done.ExecSeconds != want { // bitwise: both sides are the same float ops on the same sim output
		t.Fatalf("cluster priced job %d at %.17g s, direct core.Run pricing gives %.17g s",
			done.ID, done.ExecSeconds, want)
	}
	if done.End-done.Start <= want {
		t.Errorf("wall time %.6f does not include the planning latency on top of %.6f of execution",
			done.End-done.Start, want)
	}
}
