package cluster

// bucket is a token bucket refilled continuously in virtual time: one
// token per admitted job, rate tokens per second, at most burst held.
// A zero-rate bucket admits everything (admission control disabled for
// the class).
type bucket struct {
	rate, burst float64
	tokens      float64
	last        float64
}

func newBucket(cl Class) bucket {
	return bucket{rate: cl.TokenRatePerS, burst: cl.TokenBurst, tokens: cl.TokenBurst}
}

// take refills up to now and consumes one token; false means the class
// is over budget and the job is rejected at the door.
func (b *bucket) take(now float64) bool {
	if b.rate <= 0 {
		return true
	}
	b.tokens += (now - b.last) * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
