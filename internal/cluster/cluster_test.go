package cluster

import (
	"math"
	"math/rand"
	"testing"

	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
)

// sharedCache amortizes step pricing across the whole test binary; the
// pricing is a pure function of its key, so sharing never changes a
// result (the determinism test asserts exactly that).
var sharedCache = NewStepCache()

func topo22() *hw.Topology { return hw.Commodity(hw.RTX3090Ti, 2, 2) }

// cheapClass is a solver-free job shape, so fleet tests price steps in
// milliseconds.
func cheapClass(name string, slo int, m model.Config, rate float64) Class {
	return Class{
		Name:           name,
		SLO:            slo,
		RatePerS:       rate,
		Model:          m,
		PartitionAlgo:  partition.AlgoBalanced,
		BalancedStages: 4,
		StepsMin:       2,
		StepsMax:       4,
	}
}

func baseConfig(classes ...Class) Config {
	return Config{
		Servers:  2,
		Topology: topo22(),
		Classes:  classes,
		HorizonS: 300,
		Seed:     7,
		Paranoid: true,
		Cache:    sharedCache,
	}
}

func mustRun(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Conservation(); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestClusterConservationAndFairness: a moderately loaded mixed fleet
// conserves every job and serves the classes fairly.
func TestClusterConservationAndFairness(t *testing.T) {
	cfg := baseConfig(
		cheapClass("prod", 0, model.GPT3B, 0.02),
		cheapClass("batch", 1, model.GPT8B, 0.02),
	)
	rep := mustRun(t, cfg)
	if rep.Submitted == 0 || rep.Completed == 0 {
		t.Fatalf("degenerate run: %+v", rep)
	}
	if rep.Jain <= 0 || rep.Jain > 1+1e-12 {
		t.Errorf("Jain index %g out of (0, 1]", rep.Jain)
	}
	if rep.InFlight != 0 {
		t.Errorf("drained report holds %d in-flight jobs", rep.InFlight)
	}
	if rep.Failed != 0 || rep.ServerFailures != 0 {
		t.Errorf("fault-free run failed jobs: %+v", rep)
	}
}

// TestClusterAdmissionControl: a class over its token budget is
// rejected at the door, bounded by the budget.
func TestClusterAdmissionControl(t *testing.T) {
	greedy := cheapClass("greedy", 1, model.GPT3B, 0.5) // far over fleet capacity
	greedy.TokenRatePerS = 0.01
	greedy.TokenBurst = 2
	cfg := baseConfig(greedy)
	rep := mustRun(t, cfg)
	c := rep.Classes[0]
	if c.RejectedAdmission == 0 {
		t.Fatalf("overloaded class was never rejected: %+v", c)
	}
	budget := int(cfg.HorizonS*greedy.TokenRatePerS + greedy.TokenBurst + 1)
	if c.Admitted > budget {
		t.Errorf("admitted %d jobs past the token budget %d", c.Admitted, budget)
	}
}

// TestClusterBackpressure: with admission disabled and tiny queues, an
// overloaded fleet rejects at the queues instead of buffering without
// bound.
func TestClusterBackpressure(t *testing.T) {
	cfg := baseConfig(cheapClass("flood", 0, model.GPT3B, 0.5))
	cfg.QueueCap = 2
	rep := mustRun(t, cfg)
	c := rep.Classes[0]
	if c.RejectedBackpressure == 0 {
		t.Fatalf("flooded fleet never pushed back: %+v", c)
	}
	if c.Completed == 0 {
		t.Errorf("backpressure starved the fleet entirely: %+v", c)
	}
}

// TestClusterSheddingPrefersLowSLO: under overload with deadlines, the
// high-priority class is served ahead of the low one — the low class
// sheds (and rejects) more, never the other way around.
func TestClusterSheddingPrefersLowSLO(t *testing.T) {
	prod := cheapClass("prod", 0, model.GPT3B, 0.05)
	prod.DeadlineS = 120
	batch := cheapClass("batch", 2, model.GPT3B, 0.05)
	batch.DeadlineS = 120
	cfg := baseConfig(prod, batch)
	cfg.QueueCap = 16
	rep := mustRun(t, cfg)
	p, b := rep.Classes[0], rep.Classes[1]
	if p.Submitted == 0 || b.Submitted == 0 {
		t.Fatalf("degenerate: %+v %+v", p, b)
	}
	pLoss := float64(p.Shed+p.Rejected()) / float64(p.Submitted)
	bLoss := float64(b.Shed+b.Rejected()) / float64(b.Submitted)
	if pLoss > bLoss {
		t.Errorf("high-SLO class lost %.2f of its demand, low-SLO only %.2f", pLoss, bLoss)
	}
	if b.Shed == 0 {
		t.Errorf("overloaded low-SLO class was never shed: %+v", b)
	}
	pGood := float64(p.Completed) / float64(p.Submitted)
	bGood := float64(b.Completed) / float64(b.Submitted)
	if pGood <= bGood {
		t.Errorf("goodput not ordered by SLO: prod %.2f <= batch %.2f", pGood, bGood)
	}
}

// TestClusterDegradeLadder: a patient class degrades to the greedy
// floor before it sheds.
func TestClusterDegradeLadder(t *testing.T) {
	cl := cheapClass("patient", 0, model.GPT3B, 0.2)
	cl.DegradeAfterS = 10
	cfg := baseConfig(cl)
	cfg.Servers = 1
	cfg.QueueCap = 32
	rep := mustRun(t, cfg)
	c := rep.Classes[0]
	if c.Degraded == 0 {
		t.Fatalf("no job degraded under overload with 10s patience: %+v", c)
	}
	if c.Shed != 0 {
		t.Errorf("class without a deadline was shed: %+v", c)
	}
}

// TestClusterServerLossRecovery is the tentpole property: a server
// dies mid-run, its in-flight job resumes from its last checkpoint on
// a survivor found through plan-cache affinity, and — because the
// fleet was prewarmed — the whole recovery performs zero planner
// solves beyond the prewarm itself.
func TestClusterServerLossRecovery(t *testing.T) {
	cl := cheapClass("prod", 0, model.GPT3B, 0.1)
	cl.StepsMin, cl.StepsMax = 6, 6
	cl.CheckpointEvery = 2
	cfg := baseConfig(cl)
	cfg.Servers = 3
	cfg.QueueCap = 16
	cfg.Prewarm = true
	cfg.Faults = &fault.Spec{
		ServerFails: []fault.ServerFailFault{{Server: 0, At: 120}},
	}
	rep := mustRun(t, cfg)
	c := rep.Classes[0]
	if rep.ServerFailures != 1 {
		t.Fatalf("ServerFailures = %d, want 1", rep.ServerFailures)
	}
	if c.Relands == 0 {
		t.Fatalf("server loss at 120s re-landed no jobs: %+v", rep)
	}
	if c.Completed == 0 {
		t.Fatalf("no job completed: %+v", c)
	}
	// Prewarm planned each shape once per server; everything after —
	// including every re-landing — must be cache hits.
	if rep.PlanSolves != uint64(cfg.Servers) {
		t.Errorf("fleet performed %d solves, want %d (prewarm only: re-landing is zero-solve)",
			rep.PlanSolves, cfg.Servers)
	}
	if rep.PlanHits == 0 {
		t.Errorf("no plan-cache hits in a prewarmed fleet")
	}
	// At least one re-landed job resumed from a checkpoint (not from
	// scratch) and completed.
	resumed := false
	for _, j := range rep.Jobs {
		if j.Relands > 0 && j.Outcome == "completed" && j.ResumeStep > 0 {
			resumed = true
			break
		}
	}
	if !resumed {
		t.Errorf("no re-landed job resumed from a checkpointed step")
	}
	if c.MigrationS <= 0 {
		t.Errorf("checkpoint re-landing priced no migration time: %+v", c)
	}
}

// TestClusterAllServersDead: when the whole fleet dies, every admitted
// job fails — accounted, not silently dropped — and the run drains.
func TestClusterAllServersDead(t *testing.T) {
	cfg := baseConfig(cheapClass("prod", 0, model.GPT3B, 0.05))
	cfg.Servers = 1
	cfg.Faults = &fault.Spec{
		ServerFails: []fault.ServerFailFault{{Server: 0, At: 30}},
	}
	rep := mustRun(t, cfg)
	if rep.Failed == 0 {
		t.Fatalf("dead fleet failed no jobs: %+v", rep)
	}
	if rep.InFlight != 0 {
		t.Errorf("dead fleet did not drain: %+v", rep)
	}
}

// TestClusterDispatchFailuresTripBreaker: injected transient dispatch
// failures drive retries and the per-server breaker.
func TestClusterDispatchFailuresTripBreaker(t *testing.T) {
	cfg := baseConfig(cheapClass("prod", 0, model.GPT3B, 0.05))
	cfg.DispatchFailProb = 0.6
	cfg.BreakerThreshold = 2
	cfg.Seed = 11
	rep := mustRun(t, cfg)
	if rep.DispatchFailures == 0 || rep.DispatchRetries == 0 {
		t.Fatalf("no injected dispatch failures at p=0.6: %+v", rep)
	}
	if rep.BreakerTrips == 0 {
		t.Errorf("breaker never tripped under sustained dispatch failures: %+v", rep)
	}
	if rep.Completed == 0 {
		t.Errorf("retries never got a job through: %+v", rep)
	}
}

// TestClusterDeterministicReplay: the same config replays bit for bit,
// whether the step cache is cold or warm.
func TestClusterDeterministicReplay(t *testing.T) {
	mk := func(cache *StepCache) Config {
		prod := cheapClass("prod", 0, model.GPT3B, 0.04)
		prod.TokenRatePerS = 0.03
		batch := cheapClass("batch", 1, model.GPT8B, 0.03)
		batch.Arrival = ArrivalGamma
		batch.DeadlineS = 90
		cfg := baseConfig(prod, batch)
		cfg.Cache = cache
		cfg.DispatchFailProb = 0.1
		cfg.Faults = &fault.Spec{ServerFails: []fault.ServerFailFault{{Server: 1, At: 150}}}
		return cfg
	}
	first := mustRun(t, mk(NewStepCache())) // cold cache
	warm := mustRun(t, mk(sharedCache))     // warm shared cache
	replay := mustRun(t, mk(sharedCache))
	if a, b := first.Fingerprint(), warm.Fingerprint(); a != b {
		t.Errorf("cold vs warm cache diverged: %s vs %s", a, b)
	}
	if a, b := warm.Fingerprint(), replay.Fingerprint(); a != b {
		t.Errorf("replay diverged: %s vs %s", a, b)
	}
}

// TestClusterAffinityRouting: once a shape is cached on one server,
// later jobs of that shape land there (cold fleet, no prewarm).
func TestClusterAffinityRouting(t *testing.T) {
	cl := cheapClass("prod", 0, model.GPT3B, 0.01) // sparse: fleet idle between jobs
	cfg := baseConfig(cl)
	cfg.Servers = 3
	rep := mustRun(t, cfg)
	if rep.Completed < 2 {
		t.Skipf("need at least 2 completions, got %d", rep.Completed)
	}
	server := -1
	for _, j := range rep.Jobs {
		if j.Outcome != "completed" {
			continue
		}
		if server == -1 {
			server = j.Server
		} else if j.Server != server {
			t.Fatalf("idle-fleet jobs of one shape spread across servers %d and %d (affinity ignored)", server, j.Server)
		}
	}
	if rep.PlanSolves != 1 {
		t.Errorf("affinity routing should solve once, got %d solves", rep.PlanSolves)
	}
}

// TestJainIndex: the fairness index on synthetic outcomes.
func TestJainIndex(t *testing.T) {
	eq := []ClassStats{
		{Submitted: 10, Completed: 5},
		{Submitted: 100, Completed: 50},
	}
	if j := jain(eq); math.Abs(j-1) > 1e-12 {
		t.Errorf("equal goodput shares: Jain %g, want 1", j)
	}
	skew := []ClassStats{
		{Submitted: 10, Completed: 10},
		{Submitted: 10, Completed: 0},
	}
	if j := jain(skew); math.Abs(j-0.5) > 1e-12 {
		t.Errorf("one-sided service: Jain %g, want 0.5", j)
	}
}

// TestBucket: token-bucket refill and burst semantics.
func TestBucket(t *testing.T) {
	b := bucket{rate: 1, burst: 2, tokens: 2}
	if !b.take(0) || !b.take(0) {
		t.Fatal("burst tokens rejected")
	}
	if b.take(0.5) {
		t.Fatal("admitted with 0.5 tokens")
	}
	if !b.take(1.2) { // 0.5 + 0.7 refilled > 1
		t.Fatal("refilled bucket rejected")
	}
	b2 := bucket{rate: 0}
	if !b2.take(100) {
		t.Fatal("disabled bucket must admit everything")
	}
}

// TestGammaMean: the gamma arrival process has the configured mean
// rate (statistical, fixed seed).
func TestGammaMean(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cl := Class{Arrival: ArrivalGamma, RatePerS: 2, GammaShape: 0.5}
	n, sum := 20000, 0.0
	for i := 0; i < n; i++ {
		sum += interarrival(rng, cl)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("gamma interarrival mean %g, want ~0.5", mean)
	}
}

// TestClusterConfigValidation: the config rejects what the fleet
// cannot simulate.
func TestClusterConfigValidation(t *testing.T) {
	good := baseConfig(cheapClass("a", 0, model.GPT3B, 0.1))
	for name, mut := range map[string]func(*Config){
		"no servers":  func(c *Config) { c.Servers = 0 },
		"no classes":  func(c *Config) { c.Classes = nil },
		"no horizon":  func(c *Config) { c.HorizonS = 0 },
		"bad rate":    func(c *Config) { c.Classes[0].RatePerS = 0 },
		"bad arrival": func(c *Config) { c.Classes[0].Arrival = "uniform" },
		"gpu fail":    func(c *Config) { c.Faults = &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: 0}}} },
		"fail off-fleet": func(c *Config) {
			c.Faults = &fault.Spec{ServerFails: []fault.ServerFailFault{{Server: 9, At: 1}}}
		},
		"fail past horizon": func(c *Config) {
			c.Faults = &fault.Spec{ServerFails: []fault.ServerFailFault{{Server: 0, At: 1e9}}}
		},
		"dispatch prob": func(c *Config) { c.DispatchFailProb = 1.5 },
	} {
		cfg := good
		cfg.Classes = append([]Class(nil), good.Classes...)
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}
