package cluster

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ClassStats are one class's cumulative outcome counters. Every
// submitted job terminates through exactly one of Completed, Rejected
// (admission or backpressure), Shed or Failed — the per-class
// conservation identity Report.Conservation asserts.
type ClassStats struct {
	Name string
	SLO  int

	Submitted            int
	Admitted             int
	RejectedAdmission    int
	RejectedBackpressure int
	Shed                 int
	Failed               int
	Completed            int

	// Degraded counts jobs run on the greedy floor; Relands counts
	// jobs that lost a server and resumed elsewhere; MigrationS is the
	// total checkpoint-migration time their re-landings paid.
	Degraded   int
	Relands    int
	MigrationS float64

	// Queue-delay distribution over dispatches (shed jobs excluded —
	// this is the delay of work that actually ran).
	WaitMean float64
	WaitP99  float64
	WaitMax  float64

	waitSamples []float64
}

// Rejected is the class's total rejections, both rungs.
func (s *ClassStats) Rejected() int { return s.RejectedAdmission + s.RejectedBackpressure }

// conservation checks the class identity (inFlight is 0 on a drained
// report).
func (s *ClassStats) conservation(inFlight int) error {
	if s.Submitted != s.Completed+s.Rejected()+s.Shed+s.Failed+inFlight {
		return fmt.Errorf("cluster: class %q conservation violated: Submitted %d != Completed %d + Rejected %d + Shed %d + Failed %d + InFlight %d",
			s.Name, s.Submitted, s.Completed, s.Rejected(), s.Shed, s.Failed, inFlight)
	}
	if s.Admitted != s.Submitted-s.RejectedAdmission {
		return fmt.Errorf("cluster: class %q: Admitted %d != Submitted %d - RejectedAdmission %d",
			s.Name, s.Admitted, s.Submitted, s.RejectedAdmission)
	}
	return nil
}

// JobRecord is one job's audited lifecycle, for CLI dumps and the
// differential tests.
type JobRecord struct {
	ID      int
	Class   string
	Arrival float64
	Steps   int
	Outcome string
	Server  int     // last server it ran on (-1 if never dispatched)
	Start   float64 // first dispatch time (-1 if never dispatched)
	End     float64 // completion time (0 unless completed)
	// ExecSeconds is the pure execution time of the final dispatch
	// (plan and migration latency excluded) — the differential test
	// compares it bitwise against single-job core.Run pricing.
	ExecSeconds float64
	Degraded    bool
	Relands     int
	ResumeStep  int
}

// Report is the drained outcome of one fleet run.
type Report struct {
	Servers  int
	HorizonS float64
	Seed     int64

	Classes []ClassStats

	// Fleet aggregates over the classes.
	Submitted int
	Completed int
	Rejected  int
	Shed      int
	Failed    int
	// InFlight is jobs still live at report time; a drained report has
	// 0 — the driver runs every event to quiescence.
	InFlight int

	// Jain is the Jain fairness index over per-class demand-normalized
	// goodput (Completed/Submitted): 1.0 when every class gets the
	// same fraction of its demand served, 1/n when one class takes
	// everything.
	Jain float64

	// DrainedAt is the virtual time the last event fired.
	DrainedAt float64
	Events    int

	DispatchFailures int
	DispatchRetries  int
	BreakerTrips     int
	ServerFailures   int
	// ServerRestarts counts completed server bounces (server_restarts
	// clauses whose rejoin fired).
	ServerRestarts int

	// PlanSolves/PlanHits aggregate the per-server plan caches across
	// every incarnation of every server (a restart retires the old
	// service's counters into the total); a prewarmed fleet re-lands
	// jobs — and re-admits a warm-restarted server — with zero
	// incremental solves.
	PlanSolves uint64
	PlanHits   uint64

	Jobs []JobRecord
}

// finish drains run state into the report: per-class distributions,
// fleet aggregates, the fairness index and the job audit trail.
func (r *run) finish() {
	rep := r.rep
	rep.DrainedAt = r.now
	rep.Events = r.nEvents
	for ci := range r.stats {
		st := &r.stats[ci]
		st.WaitMean, st.WaitP99, st.WaitMax = waitStats(st.waitSamples)
		rep.Classes = append(rep.Classes, *st)
		rep.Submitted += st.Submitted
		rep.Completed += st.Completed
		rep.Rejected += st.Rejected()
		rep.Shed += st.Shed
		rep.Failed += st.Failed
	}
	rep.InFlight = rep.Submitted - rep.Completed - rep.Rejected - rep.Shed - rep.Failed
	rep.Jain = jain(rep.Classes)
	for _, s := range r.servers {
		m := s.svc.Metrics()
		rep.PlanSolves += m.Solves + s.retiredSolves
		rep.PlanHits += m.Hits + s.retiredHits
	}
	for _, j := range r.jobs {
		rec := JobRecord{
			ID:         j.id,
			Class:      r.cfg.Classes[j.class].Name,
			Arrival:    j.arrival,
			Steps:      j.steps,
			Outcome:    outcomeLabel(j.state),
			Server:     j.server,
			Start:      j.startedAt,
			End:        j.endAt,
			Degraded:   j.degraded,
			ResumeStep: j.resumeStep,
		}
		if j.reland {
			rec.Relands = 1
		}
		if j.state == jsCompleted {
			rec.ExecSeconds = execSeconds(j)
		}
		rep.Jobs = append(rep.Jobs, rec)
	}
}

func outcomeLabel(st jobState) string {
	switch st {
	case jsCompleted:
		return "completed"
	case jsRejected:
		return "rejected"
	case jsShed:
		return "shed"
	case jsFailed:
		return "failed"
	case jsPending:
		return "pending"
	default:
		return "in-flight"
	}
}

func waitStats(samples []float64) (mean, p99, max float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	idx := int(math.Ceil(0.99*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sum / float64(len(sorted)), sorted[idx], sorted[len(sorted)-1]
}

// jain computes the Jain fairness index over classes with demand.
func jain(classes []ClassStats) float64 {
	var sum, sumSq float64
	n := 0
	for _, c := range classes {
		if c.Submitted == 0 {
			continue
		}
		x := float64(c.Completed) / float64(c.Submitted)
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// Conservation checks the fleet and per-class job-conservation
// identities; nil means every submitted job is accounted for exactly
// once.
func (r *Report) Conservation() error {
	if r.Submitted != r.Completed+r.Rejected+r.Shed+r.Failed+r.InFlight {
		return fmt.Errorf("cluster: conservation violated: Submitted %d != Completed %d + Rejected %d + Shed %d + Failed %d + InFlight %d",
			r.Submitted, r.Completed, r.Rejected, r.Shed, r.Failed, r.InFlight)
	}
	for i := range r.Classes {
		c := &r.Classes[i]
		if err := c.conservation(c.Submitted - c.Completed - c.Rejected() - c.Shed - c.Failed); err != nil {
			return err
		}
	}
	if r.InFlight != 0 {
		return fmt.Errorf("cluster: %d job(s) still in flight on a drained report", r.InFlight)
	}
	return nil
}

// Fingerprint folds the full deterministic content of the report —
// every class counter, every job record, the drain time — into a short
// digest; replays of a seed must reproduce it bit for bit.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1|%d|%d|%x|%d|", r.Servers, r.Seed, math.Float64bits(r.HorizonS), r.Events)
	fmt.Fprintf(&b, "%d/%d/%d/%d/%d/%d|%x|%x|", r.Submitted, r.Completed, r.Rejected, r.Shed, r.Failed, r.InFlight,
		math.Float64bits(r.Jain), math.Float64bits(r.DrainedAt))
	// PlanHits is deliberately excluded: a warm StepCache skips pricing
	// runs that would otherwise hit the plan service, so the hit count
	// reflects cache warmth, not fleet behavior. PlanSolves is warmth
	// independent (dispatch warms the service before pricing does).
	fmt.Fprintf(&b, "%d/%d/%d/%d/%d|%d|", r.DispatchFailures, r.DispatchRetries, r.BreakerTrips, r.ServerFailures,
		r.ServerRestarts, r.PlanSolves)
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "c:%s/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d/%x/%x/%x/%x|",
			c.Name, c.SLO, c.Submitted, c.Admitted, c.RejectedAdmission, c.RejectedBackpressure,
			c.Shed, c.Failed, c.Completed, c.Degraded, c.Relands,
			math.Float64bits(c.MigrationS), math.Float64bits(c.WaitMean),
			math.Float64bits(c.WaitP99), math.Float64bits(c.WaitMax))
	}
	for _, j := range r.Jobs {
		fmt.Fprintf(&b, "j:%d/%s/%x/%d/%s/%d/%x/%x/%x/%v/%d/%d|",
			j.ID, j.Class, math.Float64bits(j.Arrival), j.Steps, j.Outcome, j.Server,
			math.Float64bits(j.Start), math.Float64bits(j.End), math.Float64bits(j.ExecSeconds),
			j.Degraded, j.Relands, j.ResumeStep)
	}
	return fmt.Sprintf("%016x", foldString(b.String()))
}

// String renders the fleet summary for CLI output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d server(s), %.0fs horizon, seed %d\n", r.Servers, r.HorizonS, r.Seed)
	fmt.Fprintf(&b, "  jobs: %d submitted = %d completed + %d rejected + %d shed + %d failed (+%d in flight)\n",
		r.Submitted, r.Completed, r.Rejected, r.Shed, r.Failed, r.InFlight)
	fmt.Fprintf(&b, "  fairness (Jain over goodput): %.4f; drained at %.1fs after %d events\n", r.Jain, r.DrainedAt, r.Events)
	fmt.Fprintf(&b, "  dispatch: %d failures, %d retries, %d breaker trips; %d server failure(s), %d restart(s)\n",
		r.DispatchFailures, r.DispatchRetries, r.BreakerTrips, r.ServerFailures, r.ServerRestarts)
	fmt.Fprintf(&b, "  planning: %d solves, %d cache hits across the fleet\n", r.PlanSolves, r.PlanHits)
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "  %-12s SLO %d: %4d sub %4d done %4d rej (%d adm, %d bp) %3d shed %3d failed",
			c.Name, c.SLO, c.Submitted, c.Completed, c.Rejected(), c.RejectedAdmission, c.RejectedBackpressure, c.Shed, c.Failed)
		fmt.Fprintf(&b, "; wait mean/p99/max %.2f/%.2f/%.2fs", c.WaitMean, c.WaitP99, c.WaitMax)
		if c.Degraded > 0 || c.Relands > 0 {
			fmt.Fprintf(&b, "; %d degraded, %d re-landed (+%.2fs migration)", c.Degraded, c.Relands, c.MigrationS)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
