package cluster

import (
	"math"
	"math/rand"
	"sort"

	"mobius/internal/core"
	"mobius/internal/plansvc"
)

// jobState is where a job currently is in its lifecycle; the paranoid
// audit recounts these against the class counters.
type jobState int

const (
	jsPending jobState = iota // not yet arrived
	jsQueued
	jsRunning
	jsParked // on a dead server, awaiting detection
	jsRetry  // dispatch failed, backoff pending
	jsCompleted
	jsRejected
	jsShed
	jsFailed
)

// job is one fine-tuning request flowing through the fleet.
type job struct {
	id      int
	class   int
	arrival float64
	steps   int

	// opts is the job's planning request; key is its content address,
	// shared by every server that has the plan cached (affinity).
	opts core.Options
	key  plansvc.Key

	state      jobState
	attempts   int
	enqueuedAt float64
	startedAt  float64 // first dispatch start (-1 until then)
	execStart  float64 // current dispatch: end of plan+migration phase
	endAt      float64
	server     int
	degraded   bool

	// reland marks a job that lost its server; resumeStep is the last
	// checkpointed step it resumes from (0 = from scratch).
	reland     bool
	resumeStep int

	times StepTimes
	every int
}

// classOptions builds the planning options of one class's jobs.
func classOptions(cfg Config, ci int) core.Options {
	cl := cfg.Classes[ci]
	return core.Options{
		Model:          cl.Model,
		Topology:       cfg.Topology,
		Microbatches:   cl.Microbatches,
		PartitionAlgo:  cl.PartitionAlgo,
		BalancedStages: cl.BalancedStages,
	}
}

// generateJobs derives the whole arrival trace from the seed: one
// independent stream per class (interarrivals and step counts
// interleaved, so adding a class never reshuffles another's jobs),
// merged and id-stamped in deterministic (arrival, class, index) order.
func generateJobs(cfg Config) []*job {
	var jobs []*job
	type order struct {
		j     *job
		class int
		idx   int
	}
	var all []order
	for ci, cl := range cfg.Classes {
		rng := rand.New(rand.NewSource(deriveSeed(cfg.Seed, ci)))
		opts := classOptions(cfg, ci)
		key, err := plansvc.KeyOf(opts)
		if err != nil {
			// Surfaced later by the first planning call; an unkeyable
			// class still produces a (failing) trace deterministically.
			key = plansvc.Key{}
		}
		t := 0.0
		for idx := 0; ; idx++ {
			t += interarrival(rng, cl)
			steps := cl.StepsMin
			if cl.StepsMax > cl.StepsMin {
				steps += rng.Intn(cl.StepsMax - cl.StepsMin + 1)
			}
			if t >= cfg.HorizonS {
				break
			}
			all = append(all, order{
				j:     &job{class: ci, arrival: t, steps: steps, opts: opts, key: key, startedAt: -1, server: -1},
				class: ci,
				idx:   idx,
			})
		}
	}
	sort.Slice(all, func(i, k int) bool {
		if all[i].j.arrival != all[k].j.arrival {
			return all[i].j.arrival < all[k].j.arrival
		}
		if all[i].class != all[k].class {
			return all[i].class < all[k].class
		}
		return all[i].idx < all[k].idx
	})
	for i, o := range all {
		o.j.id = i
		jobs = append(jobs, o.j)
	}
	return jobs
}

// interarrival draws one gap from the class's arrival process.
func interarrival(rng *rand.Rand, cl Class) float64 {
	switch cl.Arrival {
	case ArrivalGamma:
		// Gamma with shape k and mean 1/rate: burstier than Poisson
		// for k < 1 (CV = 1/sqrt(k)).
		return gammaSample(rng, cl.GammaShape) / (cl.GammaShape * cl.RatePerS)
	default:
		return rng.ExpFloat64() / cl.RatePerS
	}
}

// gammaSample draws Gamma(shape, 1) via Marsaglia-Tsang, with the
// standard boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// deriveSeed gives each class an independent stream.
func deriveSeed(seed int64, class int) int64 {
	x := uint64(seed) ^ 0x5eed
	x += uint64(class) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x >> 1) // keep it positive for readability in dumps
}
