// Package cluster simulates a multi-tenant fleet of Mobius servers
// under a stream of fine-tuning jobs, on one shared virtual clock. It
// closes the overload → admit → queue → degrade → shed ladder at fleet
// scope, the way internal/plansvc closes it for a single planning
// request:
//
//   - token-bucket admission control with per-SLO-class budgets: a
//     class that exhausts its budget is rejected at the door, so one
//     tenant's burst cannot starve another's steady trickle;
//   - bounded per-server queues with backpressure: when every queue is
//     full the job is rejected rather than buffered without bound;
//   - deadline-based load shedding at dequeue, and degradation to the
//     planner's greedy floor for jobs that waited past their class's
//     patience — reject, queue, degrade, shed, in that order;
//   - dispatch retries with exponential backoff and a per-server
//     circuit breaker, so a dead-but-undetected or flaky server is
//     routed around instead of hammered;
//   - server-loss failure domains: fault.Spec's server_fails clauses
//     drop whole servers mid-run; in-flight work resumes from its last
//     checkpoint on a survivor, priced through the same
//     checkpoint-migration machinery as internal/elastic, and lands on
//     the server whose plan cache already holds its plan (zero-solve
//     when the fleet was prewarmed).
//
// Determinism: the event loop is a single goroutine over a (time, seq)
// ordered heap; arrival processes and step counts come from per-class
// seeded streams, and every tie is broken by construction order — the
// same Config replays the same Report bit for bit. The chaos harness
// (internal/chaos) asserts this, plus the job-conservation identity
//
//	Submitted == Completed + Rejected + Shed + Failed + InFlight
//
// on a seed-driven matrix of overload and server-loss scenarios.
package cluster

import (
	"container/heap"
	"fmt"

	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
)

// Class is one tenant class: an arrival process, a job shape, an
// admission budget and an SLO.
type Class struct {
	// Name labels the class in reports.
	Name string
	// SLO is the service priority; 0 is the highest. Dequeue order is
	// SLO first, then FIFO — under overload the ladder sheds the
	// lowest classes first because they wait longest.
	SLO int

	// Arrival selects the interarrival process: "poisson" (default) or
	// "gamma" (bursty; see GammaShape). RatePerS is the mean arrival
	// rate in jobs per virtual second.
	Arrival  string
	RatePerS float64
	// GammaShape is the gamma shape parameter k (default 0.5); the
	// coefficient of variation is 1/sqrt(k), so k < 1 means burstier
	// than Poisson at the same mean rate.
	GammaShape float64

	// Model and the planning knobs fix the job shape. PartitionAlgo
	// defaults to the core default (the MIP); simulations at fleet
	// scale want a cheap algorithm (partition.AlgoBalanced et al).
	Model          model.Config
	PartitionAlgo  string
	BalancedStages int
	Microbatches   int
	// StepsMin/StepsMax bound the per-job fine-tuning step count,
	// drawn uniformly from the class stream (defaults 1/StepsMin).
	StepsMin, StepsMax int
	// CheckpointEvery writes a consistent snapshot after every k-th
	// step (0 disables); it is what a server loss can resume from.
	CheckpointEvery int

	// TokenRatePerS and TokenBurst are the class's admission budget: a
	// token bucket refilled continuously in virtual time, one token
	// per job. Rate 0 disables admission control for the class (every
	// job is admitted — the overload baseline). Burst defaults to
	// max(1, 2*rate).
	TokenRatePerS float64
	TokenBurst    float64

	// DeadlineS bounds a dispatch's queueing delay: a job that waited
	// longer is shed at dequeue instead of run (0 disables).
	// DegradeAfterS is the softer rung: past it the job still runs,
	// but on the planner's greedy floor instead of a solved plan
	// (0 disables).
	DeadlineS     float64
	DegradeAfterS float64
}

func (c Class) withDefaults(i int) (Class, error) {
	if c.Name == "" {
		c.Name = fmt.Sprintf("class%d", i)
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.Arrival != ArrivalPoisson && c.Arrival != ArrivalGamma {
		return c, fmt.Errorf("cluster: class %q: unknown arrival process %q (want %q or %q)",
			c.Name, c.Arrival, ArrivalPoisson, ArrivalGamma)
	}
	if c.RatePerS <= 0 {
		return c, fmt.Errorf("cluster: class %q: arrival rate %g must be positive", c.Name, c.RatePerS)
	}
	if c.GammaShape <= 0 {
		c.GammaShape = 0.5
	}
	if c.SLO < 0 {
		return c, fmt.Errorf("cluster: class %q: negative SLO %d", c.Name, c.SLO)
	}
	if c.StepsMin <= 0 {
		c.StepsMin = 1
	}
	if c.StepsMax < c.StepsMin {
		c.StepsMax = c.StepsMin
	}
	if c.CheckpointEvery < 0 {
		return c, fmt.Errorf("cluster: class %q: negative checkpoint interval %d", c.Name, c.CheckpointEvery)
	}
	if c.TokenRatePerS < 0 || c.TokenBurst < 0 {
		return c, fmt.Errorf("cluster: class %q: negative admission budget", c.Name)
	}
	if c.TokenRatePerS > 0 && c.TokenBurst == 0 {
		c.TokenBurst = 2 * c.TokenRatePerS
		if c.TokenBurst < 1 {
			c.TokenBurst = 1
		}
	}
	if c.DeadlineS < 0 || c.DegradeAfterS < 0 {
		return c, fmt.Errorf("cluster: class %q: negative deadline", c.Name)
	}
	return c, nil
}

// Arrival process names.
const (
	ArrivalPoisson = "poisson"
	ArrivalGamma   = "gamma"
)

// Config describes one fleet run.
type Config struct {
	// Servers is the fleet size; every server runs Topology (default:
	// the 2+2 commodity box).
	Servers  int
	Topology *hw.Topology
	// Classes are the tenant classes sharing the fleet.
	Classes []Class
	// HorizonS bounds the arrival window in virtual seconds; jobs
	// admitted before the horizon drain to completion after it.
	HorizonS float64
	// Seed drives every stochastic stream (arrivals, step counts,
	// dispatch-failure hashes). Same seed, same Report, bit for bit.
	Seed int64

	// QueueCap bounds each server's queue (default 8); a fleet of full
	// queues pushes back by rejecting. Re-landed jobs are exempt —
	// they already spent their admission token.
	QueueCap int
	// DispatchTimeoutS is the virtual time burned by one failed
	// dispatch before its retry is scheduled (default 0.05).
	// DispatchAttempts bounds attempts per job routing round (default
	// 4); past it the job fails. BackoffBaseS/BackoffMaxS shape the
	// exponential retry backoff (defaults 0.025, 2), jittered
	// deterministically per job.
	DispatchTimeoutS float64
	DispatchAttempts int
	BackoffBaseS     float64
	BackoffMaxS      float64
	// BreakerThreshold consecutive dispatch failures trip a server's
	// circuit breaker open for BreakerCooldownS of virtual time
	// (defaults 3, 30); while open the router skips the server, then
	// probes it half-open.
	BreakerThreshold int
	BreakerCooldownS float64
	// DispatchFailProb injects transient dispatch failures on healthy
	// servers, decided by a deterministic per-(job, server, attempt)
	// hash — the chaos knob that exercises retry and breaker paths
	// without killing anything.
	DispatchFailProb float64
	// DetectLatencyS is the failure-detection window (default 2): a
	// dead server stays in the routing tables that long, so dispatches
	// keep failing into it (and tripping its breaker) until detection
	// reroutes its queue and in-flight job.
	DetectLatencyS float64

	// Virtual planning costs charged to a job at dispatch: a plan-cache
	// hit, a full solve, and the greedy floor (defaults 0.02, 5,
	// 0.005). Affinity routing exists to turn the middle one into the
	// first.
	PlanHitLatencyS    float64
	PlanSolveLatencyS  float64
	PlanGreedyLatencyS float64

	// Faults is the fleet fault scenario. ServerFails clauses are
	// consumed here (whole servers dropping), as are ServerRestarts
	// (servers bouncing: crash, then rejoin after RestartLatencyS);
	// the per-server clauses that survive WithoutCluster (stragglers,
	// unbounded link degradation, transients, memory pressure) hold on
	// every step of every server. Permanent GPU/link failures and
	// corruptions are the single-server elastic/integrity domain and
	// are rejected.
	Faults *fault.Spec

	// StoreRoot, when set, backs every server's plan cache with a real
	// on-disk planstore under StoreRoot/serverN: prewarmed and solved
	// plans persist write-behind, and a server_restarts bounce closes
	// the dying store, reopens the directory and warm-starts the new
	// service from it — the end-to-end crash/restart path. When empty
	// the fleet simulates an always-intact store: a warm restart
	// retains the cache contents (exactly what a faultless persisted
	// store would reload) and a cold restart discards them.
	StoreRoot string

	// RestartLatencyS is the default downtime of a server_restarts
	// bounce whose clause leaves RestartLatencyS 0 (default 5).
	RestartLatencyS float64

	// Prewarm plans every class's shape on every server at t=0, so
	// first dispatches — and re-landings after a server loss — are
	// cache hits: the zero-solve recovery path.
	Prewarm bool

	// Paranoid audits the job-conservation identity against every
	// job's actual state after every event, not just at the end.
	Paranoid bool

	// Cache shares step-time pricing across runs (optional); the chaos
	// matrix reuses one so a thousand scenarios price each distinct
	// (plan, checkpoint, degradation) combination once.
	Cache *StepCache
}

func (c Config) withDefaults() (Config, error) {
	if c.Servers <= 0 {
		return c, fmt.Errorf("cluster: servers must be positive (got %d)", c.Servers)
	}
	if c.Topology == nil {
		c.Topology = hw.Commodity(hw.RTX3090Ti, 2, 2)
	}
	if len(c.Classes) == 0 {
		return c, fmt.Errorf("cluster: at least one class is required")
	}
	cls := make([]Class, len(c.Classes))
	for i := range c.Classes {
		cc, err := c.Classes[i].withDefaults(i)
		if err != nil {
			return c, err
		}
		cls[i] = cc
	}
	c.Classes = cls
	if c.HorizonS <= 0 {
		return c, fmt.Errorf("cluster: horizon must be positive (got %g)", c.HorizonS)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 8
	}
	if c.DispatchTimeoutS <= 0 {
		c.DispatchTimeoutS = 0.05
	}
	if c.DispatchAttempts <= 0 {
		c.DispatchAttempts = 4
	}
	if c.BackoffBaseS <= 0 {
		c.BackoffBaseS = 0.025
	}
	if c.BackoffMaxS <= 0 {
		c.BackoffMaxS = 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldownS <= 0 {
		c.BreakerCooldownS = 30
	}
	if c.DispatchFailProb < 0 || c.DispatchFailProb >= 1 {
		return c, fmt.Errorf("cluster: dispatch failure probability %g out of range [0, 1)", c.DispatchFailProb)
	}
	if c.DetectLatencyS <= 0 {
		c.DetectLatencyS = 2
	}
	if c.PlanHitLatencyS <= 0 {
		c.PlanHitLatencyS = 0.02
	}
	if c.PlanSolveLatencyS <= 0 {
		c.PlanSolveLatencyS = 5
	}
	if c.PlanGreedyLatencyS <= 0 {
		c.PlanGreedyLatencyS = 0.005
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return c, err
		}
		if len(c.Faults.GPUFails) > 0 || len(c.Faults.LinkFails) > 0 {
			return c, fmt.Errorf("cluster: permanent GPU/link failures are the single-server elastic domain; a fleet scenario uses server_fails")
		}
		if len(c.Faults.Corruptions) > 0 {
			return c, fmt.Errorf("cluster: corruption clauses are the single-server integrity domain")
		}
		for i, l := range c.Faults.Links {
			if l.Start > 0 || l.End > 0 {
				return c, fmt.Errorf("cluster: links[%d] (%s): windowed link faults use single-step time; use an unbounded window", i, l.Link)
			}
		}
		for _, sf := range c.Faults.ServerFails {
			if sf.Server >= c.Servers {
				return c, fmt.Errorf("cluster: server_fails names server %d of a %d-server fleet", sf.Server, c.Servers)
			}
			if sf.At >= c.HorizonS {
				return c, fmt.Errorf("cluster: server %d fails at %gs, past the %gs horizon", sf.Server, sf.At, c.HorizonS)
			}
		}
		for _, rf := range c.Faults.ServerRestarts {
			if rf.Server >= c.Servers {
				return c, fmt.Errorf("cluster: server_restarts names server %d of a %d-server fleet", rf.Server, c.Servers)
			}
			if rf.At >= c.HorizonS {
				return c, fmt.Errorf("cluster: server %d restarts at %gs, past the %gs horizon", rf.Server, rf.At, c.HorizonS)
			}
		}
	}
	if c.RestartLatencyS <= 0 {
		c.RestartLatencyS = 5
	}
	if c.Cache == nil {
		c.Cache = NewStepCache()
	}
	return c, nil
}

// Event kinds, in the order they tie-break at equal virtual time (the
// seq counter decides; kinds are only for dispatch).
type eventKind int

const (
	evArrival eventKind = iota
	evRetry
	evComplete
	evServerFail
	evDetect
	evRestartDown
	evRestartUp
)

type event struct {
	at   float64
	seq  uint64
	kind eventKind
	job  *job
	srv  int
	gen  uint64
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// run is the mutable state of one fleet simulation.
type run struct {
	cfg      Config
	now      float64
	seq      uint64
	events   eventHeap
	servers  []*server
	buckets  []bucket
	jobs     []*job
	stats    []ClassStats
	stepSpec *fault.Spec
	restarts map[int]fault.ServerRestartFault
	rep      *Report
	nEvents  int
}

func (r *run) push(e *event) {
	e.seq = r.seq
	r.seq++
	heap.Push(&r.events, e)
}

// Run executes the fleet scenario and returns its report. The returned
// error is a configuration or simulation-infrastructure failure; job
// outcomes — including every job of a fully dead fleet failing — are
// the report's to tell.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &run{cfg: cfg, stepSpec: cfg.Faults.WithoutCluster(), restarts: map[int]fault.ServerRestartFault{}}
	r.rep = &Report{Servers: cfg.Servers, HorizonS: cfg.HorizonS, Seed: cfg.Seed}

	for i := 0; i < cfg.Servers; i++ {
		s, err := newServer(i, cfg)
		if err != nil {
			return nil, err
		}
		r.servers = append(r.servers, s)
	}
	defer func() {
		for _, s := range r.servers {
			s.closeStore()
		}
	}()
	for ci, cl := range cfg.Classes {
		r.buckets = append(r.buckets, newBucket(cl))
		r.stats = append(r.stats, ClassStats{Name: cl.Name, SLO: cl.SLO})
		_ = ci
	}
	if cfg.Prewarm {
		if err := r.prewarm(); err != nil {
			return nil, err
		}
	}

	r.jobs = generateJobs(cfg)
	for _, j := range r.jobs {
		r.push(&event{at: j.arrival, kind: evArrival, job: j})
	}
	if cfg.Faults != nil {
		for _, sf := range cfg.Faults.ServerFailures() {
			r.push(&event{at: sf.At, kind: evServerFail, srv: sf.Server})
		}
		for _, rf := range cfg.Faults.RestartSchedule() {
			r.restarts[rf.Server] = rf
			r.push(&event{at: rf.At, kind: evRestartDown, srv: rf.Server})
		}
	}

	for r.events.Len() > 0 {
		e := heap.Pop(&r.events).(*event)
		r.now = e.at
		r.nEvents++
		if err := r.handle(e); err != nil {
			return nil, err
		}
		if cfg.Paranoid {
			if err := r.audit(); err != nil {
				return nil, fmt.Errorf("cluster: paranoid audit after event %d (t=%.6f): %w", r.nEvents, r.now, err)
			}
		}
	}
	r.finish()
	return r.rep, nil
}

func (r *run) handle(e *event) error {
	switch e.kind {
	case evArrival:
		return r.arrive(e.job)
	case evRetry:
		return r.route(e.job)
	case evComplete:
		r.complete(r.servers[e.srv], e.gen)
		return nil
	case evServerFail:
		r.serverFail(r.servers[e.srv])
		return nil
	case evDetect:
		return r.detect(r.servers[e.srv], e.gen)
	case evRestartDown:
		r.restartDown(r.servers[e.srv])
		return nil
	case evRestartUp:
		return r.restartUp(r.servers[e.srv])
	}
	return fmt.Errorf("cluster: unknown event kind %d", e.kind)
}

// arrive runs the admission gate and routes the job into the fleet.
func (r *run) arrive(j *job) error {
	st := &r.stats[j.class]
	st.Submitted++
	if !r.buckets[j.class].take(r.now) {
		st.RejectedAdmission++
		j.state = jsRejected
		return nil
	}
	st.Admitted++
	return r.route(j)
}

func (r *run) allDead() bool {
	for _, s := range r.servers {
		if !s.dead {
			return false
		}
	}
	return true
}

// route places a job on a server: plan-cache affinity first, then
// least load, skipping known-dead and breaker-open servers and (for
// fresh jobs) full queues. A routed dispatch can still fail — into a
// dead-but-undetected server, or by injected transient failure — which
// burns the timeout, backs off, and feeds the server's breaker.
func (r *run) route(j *job) error {
	best, bestAff, bestLoad := -1, false, 0
	for _, s := range r.servers {
		if s.detected || !s.br.routable(r.now) {
			continue
		}
		if !j.reland && s.load() >= r.cfg.QueueCap {
			continue
		}
		aff := s.svc.Has(j.key)
		load := s.load()
		switch {
		case best == -1, aff && !bestAff:
		case aff == bestAff && load < bestLoad:
		default:
			continue
		}
		best, bestAff, bestLoad = s.id, aff, load
	}
	if best == -1 {
		if r.allDead() {
			r.fail(j)
			return nil
		}
		if !j.reland {
			// Backpressure: every routable queue is full.
			r.stats[j.class].RejectedBackpressure++
			j.state = jsRejected
			return nil
		}
		// A re-landing job with nowhere to go right now (breakers open,
		// detection pending): retry after a backoff.
		return r.retryOrFail(j)
	}

	s := r.servers[best]
	s.br.allow(r.now)
	if s.dead || r.transientFail(j, s) {
		r.rep.DispatchFailures++
		if s.br.failure(r.now) {
			r.rep.BreakerTrips++
		}
		return r.retryOrFail(j)
	}
	s.br.success()
	j.attempts = 0
	j.enqueuedAt = r.now
	j.state = jsQueued
	s.queue = append(s.queue, j)
	return r.kick(s)
}

func (r *run) retryOrFail(j *job) error {
	j.attempts++
	if j.attempts >= r.cfg.DispatchAttempts {
		r.fail(j)
		return nil
	}
	r.rep.DispatchRetries++
	j.state = jsRetry
	r.push(&event{at: r.now + r.cfg.DispatchTimeoutS + r.backoff(j), kind: evRetry, job: j})
	return nil
}

// backoff is exponential in the attempt with a deterministic jitter in
// [1, 1.5) derived from (seed, job, attempt).
func (r *run) backoff(j *job) float64 {
	d := r.cfg.BackoffBaseS
	for a := 1; a < j.attempts; a++ {
		d *= 2
		if d >= r.cfg.BackoffMaxS {
			d = r.cfg.BackoffMaxS
			break
		}
	}
	frac := hash01(r.cfg.Seed, saltBackoff, uint64(j.id), uint64(j.attempts))
	return d * (1 + 0.5*frac)
}

// transientFail decides the injected dispatch failure for this attempt.
func (r *run) transientFail(j *job, s *server) bool {
	p := r.cfg.DispatchFailProb
	return p > 0 && hash01(r.cfg.Seed, saltDispatch, uint64(j.id), uint64(s.id), uint64(j.attempts)) < p
}

func (r *run) fail(j *job) {
	r.stats[j.class].Failed++
	j.state = jsFailed
}

// kick starts the server's next job when it is idle: dequeue best
// (SLO, then FIFO), shed past-deadline work, degrade past-patience
// work to the greedy floor, price the service timeline and schedule
// completion.
func (r *run) kick(s *server) error {
	for s.inflight == nil && !s.dead && len(s.queue) > 0 {
		j := s.popBest(r.cfg.Classes)
		cl := r.cfg.Classes[j.class]
		st := &r.stats[j.class]
		waited := r.now - j.enqueuedAt
		if cl.DeadlineS > 0 && waited > cl.DeadlineS {
			st.Shed++
			j.state = jsShed
			continue
		}
		degraded := cl.DegradeAfterS > 0 && waited > cl.DegradeAfterS
		if degraded && !j.degraded {
			j.degraded = true
			st.Degraded++
		}
		st.waitSamples = append(st.waitSamples, waited)

		planLat, err := s.planLatency(r.cfg, j)
		if err != nil {
			return err
		}
		times, err := r.cfg.Cache.StepTimes(s.svc, j.opts, cl.CheckpointEvery, j.degraded, r.stepSpec)
		if err != nil {
			return err
		}
		mig := 0.0
		if j.reland && j.resumeStep > 0 {
			if mig, err = r.cfg.Cache.Migration(r.cfg.Topology, r.stepSpec, cl.Model.ModelStatesBytes()); err != nil {
				return err
			}
			st.MigrationS += mig
		}
		j.times, j.every = times, cl.CheckpointEvery
		j.execStart = r.now + planLat + mig
		j.server = s.id
		if j.startedAt < 0 {
			j.startedAt = r.now
		}
		j.state = jsRunning
		s.inflight = j
		end := j.execStart + execSeconds(j)
		r.push(&event{at: end, kind: evComplete, srv: s.id, gen: s.gen})
		j.endAt = end
	}
	return nil
}

// execSeconds prices the remaining steps: resumeStep+1..steps, with
// the checkpointed step time on every every-th step.
func execSeconds(j *job) float64 {
	n := j.steps - j.resumeStep
	total := float64(n) * j.times.Plain
	if j.every > 0 {
		ck := j.steps/j.every - j.resumeStep/j.every
		total += float64(ck) * (j.times.Ckpt - j.times.Plain)
	}
	return total
}

func (r *run) complete(s *server, gen uint64) {
	if s.gen != gen || s.inflight == nil {
		return // stale: the server died after this was scheduled
	}
	j := s.inflight
	s.inflight = nil
	j.state = jsCompleted
	j.endAt = r.now
	r.stats[j.class].Completed++
	// Ignoring the error: the queue was already priced when its jobs
	// were enqueued, so kick can only repeat earlier pricing.
	_ = r.kick(s)
}

// serverFail drops a server permanently; restartDown is the same
// takedown for a bouncing server (the crash is indistinguishable until
// the process comes back).
func (r *run) serverFail(s *server) {
	r.rep.ServerFailures++
	r.takeDown(s)
}

func (r *run) restartDown(s *server) {
	r.takeDown(s)
	rf := r.restarts[s.id]
	lat := rf.RestartLatencyS
	if lat <= 0 {
		lat = r.cfg.RestartLatencyS
	}
	r.push(&event{at: r.now + lat, kind: evRestartUp, srv: s.id})
}

// takeDown crashes a server: its generation bumps (stale completions
// and detections), the in-flight job is rewound to its last checkpoint,
// and everything it held parks until detection — or an earlier restart
// — re-routes it.
func (r *run) takeDown(s *server) {
	s.dead = true
	s.gen++
	if j := s.inflight; j != nil {
		s.inflight = nil
		j.resumeStep = checkpointReached(j, r.now)
		j.reland = true
		j.state = jsParked
		r.stats[j.class].Relands++
		s.parked = append(s.parked, j)
	}
	for _, j := range s.queue {
		j.state = jsParked
		s.parked = append(s.parked, j)
	}
	s.queue = s.queue[:0]
	r.push(&event{at: r.now + r.cfg.DetectLatencyS, kind: evDetect, srv: s.id, gen: s.gen})
}

// restartUp rejoins a bounced server: fresh process (fresh breaker,
// bumped generation so the pending detection is stale), plan cache warm
// from the persisted store or cold, and everything it parked re-routes
// immediately — the fleet need not wait out the detection window for a
// server that is already back.
func (r *run) restartUp(s *server) error {
	if !s.dead {
		return nil
	}
	rf := r.restarts[s.id]
	r.rep.ServerRestarts++
	s.gen++
	s.dead = false
	s.detected = false
	s.br = breaker{threshold: r.cfg.BreakerThreshold, cooldownS: r.cfg.BreakerCooldownS}
	if err := s.reopen(r.cfg, rf.Cold); err != nil {
		return err
	}
	parked := s.parked
	s.parked = nil
	for _, j := range parked {
		j.attempts = 0
		if err := r.route(j); err != nil {
			return err
		}
	}
	return nil
}

// checkpointReached walks the in-flight timeline up to the failure
// onset and returns the last checkpointed step — the resume point.
// Work since that checkpoint (and any un-checkpointed run) is lost.
func checkpointReached(j *job, at float64) int {
	if j.every <= 0 || at <= j.execStart {
		return j.resumeStep
	}
	done, t := j.resumeStep, j.execStart
	for i := j.resumeStep + 1; i <= j.steps; i++ {
		d := j.times.Plain
		if i%j.every == 0 {
			d = j.times.Ckpt
		}
		if t+d > at {
			break
		}
		done, t = i, t+d
	}
	return (done / j.every) * j.every
}

// detect marks the server down for the router and re-routes everything
// it was holding, in deterministic park order. A detection scheduled
// before a restart completed is stale (the generation moved on): the
// restart already re-routed the parked work and the server is healthy.
func (r *run) detect(s *server, gen uint64) error {
	if s.gen != gen || !s.dead {
		return nil
	}
	s.detected = true
	parked := s.parked
	s.parked = nil
	for _, j := range parked {
		j.attempts = 0
		if err := r.route(j); err != nil {
			return err
		}
	}
	return nil
}

// prewarm plans every class shape on every server so first dispatches
// and post-loss re-landings are plan-cache hits.
func (r *run) prewarm() error {
	for _, s := range r.servers {
		for ci := range r.cfg.Classes {
			opts := classOptions(r.cfg, ci)
			if err := s.warm(opts); err != nil {
				return fmt.Errorf("cluster: prewarm server %d class %q: %w", s.id, r.cfg.Classes[ci].Name, err)
			}
		}
	}
	return nil
}

// audit recounts every job's state and checks the counters against
// them — the paranoid form of the conservation identity.
func (r *run) audit() error {
	type acc struct{ sub, rej, shed, failed, done, live int }
	per := make([]acc, len(r.stats))
	for _, j := range r.jobs {
		a := &per[j.class]
		switch j.state {
		case jsPending:
			continue
		case jsRejected:
			a.rej++
		case jsShed:
			a.shed++
		case jsFailed:
			a.failed++
		case jsCompleted:
			a.done++
		case jsQueued, jsRunning, jsParked, jsRetry:
			a.live++
		}
		a.sub++
	}
	for ci := range r.stats {
		st, a := &r.stats[ci], per[ci]
		if st.Submitted != a.sub || st.Rejected() != a.rej || st.Shed != a.shed ||
			st.Failed != a.failed || st.Completed != a.done ||
			st.Submitted != a.rej+a.shed+a.failed+a.done+a.live {
			return fmt.Errorf("class %q: counters {sub %d rej %d shed %d failed %d done %d} vs states {%d %d %d %d %d live %d}",
				st.Name, st.Submitted, st.Rejected(), st.Shed, st.Failed, st.Completed,
				a.sub, a.rej, a.shed, a.failed, a.done, a.live)
		}
	}
	return nil
}

// Salts separating the cluster's hash-decision domains.
const (
	saltDispatch = 0xd15b47c8
	saltBackoff  = 0xbac0ff
)

// hash01 maps (seed, vals...) to a uniform [0, 1) float via splitmix64,
// mirroring internal/fault's decision streams.
func hash01(seed int64, vals ...uint64) float64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range vals {
		x += v + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return float64(x>>11) / (1 << 53)
}
