package cluster

import (
	"testing"

	"mobius/internal/fault"
	"mobius/internal/model"
)

// benchConfig is the fixed fleet the throughput benchmark drives: 3
// servers, a token-budgeted gold class plus a deadline-shed best-effort
// class, one mid-run server loss — the full ladder on every iteration.
func benchConfig(cache *StepCache) Config {
	gold := cheapClass("gold", 0, model.GPT3B, 0.06)
	gold.TokenRatePerS, gold.TokenBurst = 0.05, 3
	be := cheapClass("best-effort", 2, model.GPT3B, 0.08)
	be.DeadlineS = 40
	cfg := baseConfig(gold, be)
	cfg.Servers = 3
	cfg.HorizonS = 600
	cfg.Prewarm = true
	cfg.Paranoid = false
	cfg.Cache = cache
	cfg.Faults = &fault.Spec{ServerFails: []fault.ServerFailFault{{Server: 0, At: 200}}}
	return cfg
}

// BenchmarkClusterThroughput measures fleet-simulation throughput in
// processed jobs per wall-clock second at a fixed fleet size, with the
// step cache warm (the steady state of a sweep): admission, routing,
// dispatch, one server loss and its re-landings, drain and report.
func BenchmarkClusterThroughput(b *testing.B) {
	cache := NewStepCache()
	cfg := benchConfig(cache)
	rep, err := Run(cfg) // warm the cache outside the timed region
	if err != nil {
		b.Fatal(err)
	}
	jobs := rep.Submitted
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(jobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkAdmissionDecision measures the per-job admission decision:
// one token-bucket refill-and-take in virtual time. This is the
// fast-path cost every arrival pays before any routing happens.
func BenchmarkAdmissionDecision(b *testing.B) {
	cl := Class{TokenRatePerS: 1e6, TokenBurst: 4}
	bk := newBucket(cl)
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1e-6
		if !bk.take(now) {
			b.Fatal("saturated bucket rejected at its own refill rate")
		}
	}
}
