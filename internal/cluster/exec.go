package cluster

import (
	"context"
	"fmt"
	"sync"

	"mobius/internal/core"
	"mobius/internal/elastic"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/pipeline"
	"mobius/internal/plansvc"
)

// checkpointWrite is the periodic snapshot appended to checkpointed
// steps (DRAM-destination, like the elastic default).
func checkpointWrite(bytes float64) *pipeline.CheckpointWrite {
	return &pipeline.CheckpointWrite{Bytes: bytes}
}

// StepTimes prices one job shape on a server: the plain step and the
// step with the periodic checkpoint write appended.
type StepTimes struct {
	Plain float64
	Ckpt  float64
}

// stepKey addresses one priced combination. Step times are pure
// functions of these inputs, so the cache can be shared across
// servers, runs and goroutines without ever changing a result.
type stepKey struct {
	plan     plansvc.Key
	every    int
	degraded bool
	faults   string
}

// StepCache memoizes step-time and checkpoint-migration pricing. The
// fleet loop calls it synchronously; the real compute behind a miss is
// one or two core.Run simulations per distinct (shape, checkpoint,
// degradation, faults) combination — everything after that is a map
// lookup. Safe for concurrent use (the chaos matrix shares one across
// its -race fan-out).
type StepCache struct {
	mu    sync.Mutex
	steps map[stepKey]StepTimes
	mig   map[string]float64
}

// NewStepCache builds an empty cache.
func NewStepCache() *StepCache {
	return &StepCache{steps: make(map[stepKey]StepTimes), mig: make(map[string]float64)}
}

// StepTimes prices opts under the given checkpoint interval and
// degradation state. A non-degraded shape plans through svc — warming
// that server's cache and its affinity signal — while a degraded one
// uses the deterministic greedy floor directly.
func (c *StepCache) StepTimes(svc *plansvc.Service, opts core.Options, every int, degraded bool, spec *fault.Spec) (StepTimes, error) {
	key, err := plansvc.KeyOf(opts)
	if err != nil {
		return StepTimes{}, err
	}
	sk := stepKey{plan: key, every: every, degraded: degraded, faults: spec.Fingerprint()}
	c.mu.Lock()
	if st, ok := c.steps[sk]; ok {
		c.mu.Unlock()
		return st, nil
	}
	c.mu.Unlock()

	ropts := opts
	ropts.Faults = spec
	if degraded {
		ropts.Planner = core.PlannerFunc(func(ctx context.Context, o core.Options) (*core.Plan, error) {
			return core.GreedyPlan(o, "cluster: queue patience exhausted, degraded to the greedy floor")
		})
	} else {
		ropts.Planner = svc
	}
	st, err := priceStep(ropts, every)
	if err != nil {
		return StepTimes{}, err
	}
	c.mu.Lock()
	c.steps[sk] = st
	c.mu.Unlock()
	return st, nil
}

func priceStep(opts core.Options, every int) (StepTimes, error) {
	rep, err := core.Run(core.SystemMobius, opts)
	if err != nil {
		return StepTimes{}, err
	}
	if rep.OOM {
		return StepTimes{}, fmt.Errorf("cluster: job shape OOMs on %q: %s", opts.Topology.Name, rep.OOMCause)
	}
	st := StepTimes{Plain: rep.StepTime, Ckpt: rep.StepTime}
	if every > 0 {
		copts := opts
		copts.Checkpoint = checkpointWrite(opts.Model.ModelStatesBytes())
		crep, err := core.Run(core.SystemMobius, copts)
		if err != nil {
			return StepTimes{}, err
		}
		if crep.OOM {
			return StepTimes{}, fmt.Errorf("cluster: checkpointed step OOMs on %q: %s", opts.Topology.Name, crep.OOMCause)
		}
		st.Ckpt = crep.StepTime
	}
	return st, nil
}

// Migration prices restoring a job's checkpoint snapshot on the server
// it re-lands on, via the same machinery elastic recovery uses
// (elastic.MigrationSeconds), under the fleet's standing per-server
// fault conditions.
func (c *StepCache) Migration(topo *hw.Topology, spec *fault.Spec, bytes float64) (float64, error) {
	mk := fmt.Sprintf("%s/%x/%x", topo.Name, uint64(bytes), foldString(spec.Fingerprint()))
	c.mu.Lock()
	if m, ok := c.mig[mk]; ok {
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	m, err := elastic.MigrationSeconds(topo, spec, bytes, elastic.DestDRAM)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.mig[mk] = m
	c.mu.Unlock()
	return m, nil
}

// foldString is FNV-1a, for compact cache keys and fingerprints.
func foldString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
