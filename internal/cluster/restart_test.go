package cluster

import (
	"os"
	"path/filepath"
	"testing"

	"mobius/internal/fault"
	"mobius/internal/model"
)

// restartConfig is a prewarmed fleet with one server bouncing mid-run.
func restartConfig(servers int, rf fault.ServerRestartFault) Config {
	cl := cheapClass("prod", 0, model.GPT3B, 0.08)
	cl.StepsMin, cl.StepsMax = 4, 6
	cl.CheckpointEvery = 2
	cfg := baseConfig(cl)
	cfg.Servers = servers
	cfg.QueueCap = 16
	cfg.Prewarm = true
	cfg.Faults = &fault.Spec{ServerRestarts: []fault.ServerRestartFault{rf}}
	return cfg
}

// TestClusterWarmRestartZeroSolves is the fleet-level warm-restart
// contract: a prewarmed fleet re-admits a bounced server with its plan
// cache warm, so the whole run — restart included — performs exactly
// one solve per server (the prewarm) and not one more.
func TestClusterWarmRestartZeroSolves(t *testing.T) {
	cfg := restartConfig(3, fault.ServerRestartFault{Server: 1, At: 100})
	rep := mustRun(t, cfg)
	if rep.ServerRestarts != 1 || rep.ServerFailures != 0 {
		t.Fatalf("restarts/failures = %d/%d, want 1/0", rep.ServerRestarts, rep.ServerFailures)
	}
	if rep.Completed == 0 {
		t.Fatalf("nothing completed: %+v", rep)
	}
	if rep.PlanSolves != uint64(cfg.Servers) {
		t.Errorf("fleet performed %d solves, want exactly %d (prewarm only: the warm restart re-solves nothing)",
			rep.PlanSolves, cfg.Servers)
	}
	// Work the bounced server held re-landed instead of failing.
	if rep.Failed != 0 {
		t.Errorf("warm bounce failed %d job(s): %+v", rep.Failed, rep)
	}
}

// TestClusterColdRestartResolves: the cold-start baseline. On a
// single-server fleet a cold bounce discards the prewarmed cache, so the
// next dispatch pays a fresh solve — strictly more solves than the warm
// bounce of the identical scenario.
func TestClusterColdRestartResolves(t *testing.T) {
	warm := restartConfig(1, fault.ServerRestartFault{Server: 0, At: 100})
	cold := restartConfig(1, fault.ServerRestartFault{Server: 0, At: 100, Cold: true})
	wrep := mustRun(t, warm)
	crep := mustRun(t, cold)
	if wrep.ServerRestarts != 1 || crep.ServerRestarts != 1 {
		t.Fatalf("restarts %d/%d, want 1/1", wrep.ServerRestarts, crep.ServerRestarts)
	}
	if wrep.PlanSolves != 1 {
		t.Errorf("warm bounce solved %d time(s), want the prewarm's 1", wrep.PlanSolves)
	}
	if crep.PlanSolves <= wrep.PlanSolves {
		t.Errorf("cold bounce solved %d time(s), want more than warm's %d", crep.PlanSolves, wrep.PlanSolves)
	}
	if crep.Completed == 0 {
		t.Errorf("cold-restarted fleet completed nothing: %+v", crep)
	}
}

// TestClusterRestartWithRealStore drives the end-to-end crash/restart
// path over a real on-disk planstore: prewarmed plans persist
// write-behind, the bounce closes and reopens the directory, and the
// rejoined server warm-starts from disk — zero incremental solves,
// asserted exactly. The cold variant wipes the directory and must
// re-solve.
func TestClusterRestartWithRealStore(t *testing.T) {
	warm := restartConfig(2, fault.ServerRestartFault{Server: 0, At: 100})
	warm.StoreRoot = t.TempDir()
	wrep := mustRun(t, warm)
	if wrep.PlanSolves != uint64(warm.Servers) {
		t.Errorf("warm disk restart: %d solves, want exactly %d (prewarm only)", wrep.PlanSolves, warm.Servers)
	}
	if wrep.ServerRestarts != 1 {
		t.Fatalf("ServerRestarts = %d, want 1", wrep.ServerRestarts)
	}
	// The persisted records exist per server.
	for i := 0; i < warm.Servers; i++ {
		files, err := filepath.Glob(filepath.Join(warm.StoreRoot, "server"+string(rune('0'+i)), "*.plan"))
		if err != nil || len(files) == 0 {
			t.Errorf("server %d persisted no records (%v)", i, err)
		}
	}

	cold := restartConfig(1, fault.ServerRestartFault{Server: 0, At: 100, Cold: true})
	cold.StoreRoot = t.TempDir()
	crep := mustRun(t, cold)
	if crep.PlanSolves <= 1 {
		t.Errorf("cold disk restart solved %d time(s), want more than the prewarm's 1", crep.PlanSolves)
	}
	// The wiped directory was rebuilt by the new incarnation's
	// write-behind persistence.
	files, err := filepath.Glob(filepath.Join(cold.StoreRoot, "server0", "*.plan"))
	if err != nil || len(files) == 0 {
		t.Errorf("cold-restarted server persisted nothing after rejoining (%v)", err)
	}
}

// TestClusterRestartCountsRetiredSolves: the report's plan totals span
// every incarnation of a server. A cold bounce without prewarm solves
// once before and once after; losing the first incarnation's counter
// would undercount.
func TestClusterRestartCountsRetiredSolves(t *testing.T) {
	cl := cheapClass("prod", 0, model.GPT3B, 0.08)
	cfg := baseConfig(cl)
	cfg.Servers = 1
	cfg.QueueCap = 16
	cfg.StoreRoot = t.TempDir()
	cfg.Faults = &fault.Spec{ServerRestarts: []fault.ServerRestartFault{{Server: 0, At: 150, Cold: true}}}
	rep := mustRun(t, cfg)
	if rep.PlanSolves < 2 {
		t.Errorf("cold bounce mid-run: %d total solves, want >= 2 (one per incarnation) — retired counters lost?",
			rep.PlanSolves)
	}
}

// TestClusterRestartBeforeDetect: a bounce faster than the detection
// window. The restart re-routes the parked work itself and bumps the
// generation, so the stale detection must not mark the healthy rejoined
// server down or double-route anything (the paranoid audit would catch
// it).
func TestClusterRestartBeforeDetect(t *testing.T) {
	cfg := restartConfig(2, fault.ServerRestartFault{Server: 0, At: 100, RestartLatencyS: 0.5})
	cfg.DetectLatencyS = 5
	rep := mustRun(t, cfg)
	if rep.ServerRestarts != 1 {
		t.Fatalf("ServerRestarts = %d, want 1", rep.ServerRestarts)
	}
	if rep.Failed != 0 {
		t.Errorf("sub-detection bounce failed %d job(s)", rep.Failed)
	}
	if rep.PlanSolves != uint64(cfg.Servers) {
		t.Errorf("%d solves, want %d", rep.PlanSolves, cfg.Servers)
	}
	// The rejoined server keeps serving: some job completed after the
	// bounce.
	after := false
	for _, j := range rep.Jobs {
		if j.Outcome == "completed" && j.End > 100 && j.Server == 0 {
			after = true
			break
		}
	}
	if !after {
		t.Errorf("server 0 completed nothing after rejoining")
	}
}

// TestClusterRestartDeterministicReplay: restart scenarios replay bit
// for bit, with and without a real disk store behind the caches.
func TestClusterRestartDeterministicReplay(t *testing.T) {
	mk := func(root string) Config {
		cfg := restartConfig(3, fault.ServerRestartFault{Server: 2, At: 80, Cold: true})
		cfg.Faults.ServerRestarts = append(cfg.Faults.ServerRestarts,
			fault.ServerRestartFault{Server: 0, At: 160})
		cfg.DispatchFailProb = 0.1
		cfg.StoreRoot = root
		return cfg
	}
	a := mustRun(t, mk(t.TempDir()))
	b := mustRun(t, mk(t.TempDir()))
	inmem := mustRun(t, mk(""))
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("disk-backed replay diverged: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() != inmem.Fingerprint() {
		t.Errorf("disk-backed and in-memory stores diverged: %s vs %s — the simulated intact store is not equivalent",
			a.Fingerprint(), inmem.Fingerprint())
	}
	if a.ServerRestarts != 2 {
		t.Errorf("ServerRestarts = %d, want 2", a.ServerRestarts)
	}
}

// TestClusterRestartValidation: the fleet rejects restart clauses it
// cannot honor.
func TestClusterRestartValidation(t *testing.T) {
	good := baseConfig(cheapClass("a", 0, model.GPT3B, 0.1))
	for name, mut := range map[string]func(*Config){
		"restart off-fleet": func(c *Config) {
			c.Faults = &fault.Spec{ServerRestarts: []fault.ServerRestartFault{{Server: 9, At: 1}}}
		},
		"restart past horizon": func(c *Config) {
			c.Faults = &fault.Spec{ServerRestarts: []fault.ServerRestartFault{{Server: 0, At: 1e9}}}
		},
		"restart of permanently failed server": func(c *Config) {
			c.Faults = &fault.Spec{
				ServerFails:    []fault.ServerFailFault{{Server: 0, At: 10}},
				ServerRestarts: []fault.ServerRestartFault{{Server: 0, At: 50}},
			}
		},
	} {
		cfg := good
		cfg.Classes = append([]Class(nil), good.Classes...)
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
	// An unwritable store root is an infrastructure error, not a report.
	bad := baseConfig(cheapClass("a", 0, model.GPT3B, 0.1))
	f, err := os.CreateTemp(t.TempDir(), "file")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	bad.StoreRoot = f.Name() // a file, not a directory
	if _, err := Run(bad); err == nil {
		t.Error("store root colliding with a file accepted")
	}
}
