package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Fatal("accessors broken")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 5 {
		t.Fatal("row view broken")
	}
	c := m.Clone()
	c.Set(1, 2, 9)
	if m.At(1, 2) != 5 {
		t.Fatal("clone aliases")
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.D[i] != v {
			t.Fatalf("matmul[%d]=%g want %g", i, c.D[i], v)
		}
	}
}

func naiveMul(a, b *Mat, ta, tb bool) *Mat {
	get := func(m *Mat, i, j int, tr bool) float64 {
		if tr {
			return m.At(j, i)
		}
		return m.At(i, j)
	}
	ar, ac := a.R, a.C
	if ta {
		ar, ac = a.C, a.R
	}
	br, bc := b.R, b.C
	if tb {
		br, bc = b.C, b.R
	}
	if ac != br {
		panic("shape")
	}
	out := New(ar, bc)
	for i := 0; i < ar; i++ {
		for j := 0; j < bc; j++ {
			var s float64
			for k := 0; k < ac; k++ {
				s += get(a, i, k, ta) * get(b, k, j, tb)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// TestMatMulVariantsAgainstNaive cross-checks the three kernels,
// including sizes above the parallel threshold.
func TestMatMulVariantsAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(40), 1+r.Intn(40), 1+r.Intn(40)
		if seed%5 == 0 {
			m, k, n = 64, 96, 80 // exercise the goroutine fan-out
		}
		fill := func(rows, cols int) *Mat {
			x := New(rows, cols)
			for i := range x.D {
				x.D[i] = r.NormFloat64()
			}
			return x
		}
		a, b := fill(m, k), fill(k, n)
		if !matEq(MatMul(a, b), naiveMul(a, b, false, false)) {
			return false
		}
		at := fill(k, m)
		if !matEq(MatMulTA(at, b), naiveMul(at, b, true, false)) {
			return false
		}
		bt := fill(n, k)
		if !matEq(MatMulTB(a, bt), naiveMul(a, bt, false, true)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func matEq(a, b *Mat) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i := range a.D {
		if math.Abs(a.D[i]-b.D[i]) > 1e-9*math.Max(1, math.Abs(b.D[i])) {
			return false
		}
	}
	return true
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestAddAndAccum(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{10, 20, 30})
	out := New(1, 3)
	AddInto(out, a, b)
	if out.D[2] != 33 {
		t.Fatal("add")
	}
	AccumInto(out, a)
	if out.D[0] != 12 {
		t.Fatal("accum")
	}
	out.Scale(0.5)
	if out.D[0] != 6 {
		t.Fatal("scale")
	}
	out.Zero()
	if out.D[1] != 0 {
		t.Fatal("zero")
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{0, 0, 0, 1000, 1000, 1001})
	SoftmaxRows(m)
	for i := 0; i < 2; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < 0 || math.IsNaN(v) {
				t.Fatal("invalid softmax output")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
	if m.At(0, 0) != m.At(0, 1) {
		t.Fatal("uniform row must stay uniform")
	}
}

func TestGELUGradMatchesFiniteDifference(t *testing.T) {
	f := func(xRaw int8) bool {
		x := float64(xRaw) / 16
		const h = 1e-6
		num := (GELU(x+h) - GELU(x-h)) / (2 * h)
		return math.Abs(num-GELUGrad(x)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
