// Package tensor provides the dense matrix kernels underneath the
// pure-Go neural-network substrate used for the paper's convergence
// experiment (Figure 13): row-major float64 matrices with parallel
// matrix multiplication and the elementwise helpers transformer layers
// need. Layers in internal/nn implement their own backward passes on top
// of these kernels.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	D    []float64
}

// New allocates a zeroed r x c matrix.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dims %dx%d", r, c))
	}
	return &Mat{R: r, C: c, D: make([]float64, r*c)}
}

// FromSlice wraps data (length r*c) as a matrix without copying.
func FromSlice(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), r, c))
	}
	return &Mat{R: r, C: c, D: data}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.D[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.D[i*m.C+j] = v }

// Row returns a view of row i.
func (m *Mat) Row(i int) []float64 { return m.D[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := New(m.R, m.C)
	copy(out.D, m.D)
	return out
}

// Zero clears the matrix in place.
func (m *Mat) Zero() {
	for i := range m.D {
		m.D[i] = 0
	}
}

// sameShape panics unless a and b have identical shapes.
func sameShape(a, b *Mat, op string) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.R, a.C, b.R, b.C))
	}
}

// AddInto sets out = a + b (shapes must match; out may alias a or b).
func AddInto(out, a, b *Mat) {
	sameShape(a, b, "add")
	sameShape(a, out, "add")
	for i := range out.D {
		out.D[i] = a.D[i] + b.D[i]
	}
}

// AccumInto adds src into dst.
func AccumInto(dst, src *Mat) {
	sameShape(dst, src, "accum")
	for i := range dst.D {
		dst.D[i] += src.D[i]
	}
}

// Scale multiplies in place.
func (m *Mat) Scale(s float64) {
	for i := range m.D {
		m.D[i] *= s
	}
}

// matmulParallelThreshold is the FLOP count above which MatMul fans out
// across goroutines.
const matmulParallelThreshold = 1 << 18

// MatMul returns a @ b for (r x k) @ (k x c).
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic(fmt.Sprintf("tensor: matmul %dx%d @ %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, b.C)
	matmulInto(out, a, b, false, false)
	return out
}

// MatMulTA returns aᵀ @ b for (k x r)ᵀ @ (k x c).
func MatMulTA(a, b *Mat) *Mat {
	if a.R != b.R {
		panic(fmt.Sprintf("tensor: matmulTA %dx%d @ %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.C, b.C)
	matmulInto(out, a, b, true, false)
	return out
}

// MatMulTB returns a @ bᵀ for (r x k) @ (c x k)ᵀ.
func MatMulTB(a, b *Mat) *Mat {
	if a.C != b.C {
		panic(fmt.Sprintf("tensor: matmulTB %dx%d @ %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, b.R)
	matmulInto(out, a, b, false, true)
	return out
}

func matmulInto(out, a, b *Mat, ta, tb bool) {
	rows := out.R
	work := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Row(i)
			switch {
			case !ta && !tb:
				arow := a.Row(i)
				for k, av := range arow {
					if av == 0 {
						continue
					}
					brow := b.Row(k)
					for j := range orow {
						orow[j] += av * brow[j]
					}
				}
			case ta && !tb:
				// out[i][j] = sum_k a[k][i] * b[k][j]
				for k := 0; k < a.R; k++ {
					av := a.At(k, i)
					if av == 0 {
						continue
					}
					brow := b.Row(k)
					for j := range orow {
						orow[j] += av * brow[j]
					}
				}
			default: // !ta && tb
				arow := a.Row(i)
				for j := range orow {
					brow := b.Row(j)
					var s float64
					for k, av := range arow {
						s += av * brow[k]
					}
					orow[j] = s
				}
			}
		}
	}

	flops := 2 * out.R * out.C * a.C
	if ta {
		flops = 2 * out.R * out.C * a.R
	}
	workers := runtime.GOMAXPROCS(0)
	if flops < matmulParallelThreshold || workers < 2 || rows < 2 {
		work(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			work(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// SoftmaxRows applies a numerically stable softmax to each row in place.
func SoftmaxRows(m *Mat) {
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			row[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// GELU applies the tanh-approximated Gaussian error linear unit.
func GELU(x float64) float64 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return 0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x)))
}

// GELUGrad returns d GELU(x) / dx.
func GELUGrad(x float64) float64 {
	const c = 0.7978845608028654
	t := math.Tanh(c * (x + 0.044715*x*x*x))
	dt := (1 - t*t) * c * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*dt
}
