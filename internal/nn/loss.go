package nn

import (
	"math"

	"mobius/internal/tensor"
)

// CrossEntropy computes the mean next-token cross-entropy over a batch's
// logits and returns the loss plus dLoss/dLogits (already averaged).
// Logit rows follow the embedding layout: row s*T+t is token t of
// sequence s; the target for that row is batch.Targets[s][t].
func CrossEntropy(logits *tensor.Mat, batch Batch, seqLen int) (float64, *tensor.Mat) {
	dl := tensor.New(logits.R, logits.C)
	total := 0.0
	n := 0
	for s := range batch.Targets {
		for t, target := range batch.Targets[s] {
			row := logits.Row(s*seqLen + t)
			// Log-softmax, numerically stable.
			maxv := math.Inf(-1)
			for _, v := range row {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			for _, v := range row {
				sum += math.Exp(v - maxv)
			}
			logZ := maxv + math.Log(sum)
			total += logZ - row[target]
			n++

			drow := dl.Row(s*seqLen + t)
			for j, v := range row {
				drow[j] = math.Exp(v - logZ) // softmax
			}
			drow[target] -= 1
		}
	}
	if n == 0 {
		return 0, dl
	}
	inv := 1 / float64(n)
	for i := range dl.D {
		dl.D[i] *= inv
	}
	return total / float64(n), dl
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	t     int
	m, v  map[*Param][]float64
}

// NewAdam returns an Adam optimizer with the usual defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     map[*Param][]float64{},
		v:     map[*Param][]float64{},
	}
}

// StepCount returns the number of updates applied so far (the bias
// correction's t).
func (a *Adam) StepCount() int { return a.t }

// SetStepCount restores the update counter from a checkpoint. The bias
// correction depends on t, so resuming with the wrong count changes the
// trajectory.
func (a *Adam) SetStepCount(n int) { a.t = n }

// State returns the first and second moment vectors for p, or nils when
// the parameter has not been updated yet.
func (a *Adam) State(p *Param) (m, v []float64) { return a.m[p], a.v[p] }

// SetState installs moment vectors for p (checkpoint restore). The
// slices are adopted, not copied.
func (a *Adam) SetState(p *Param, m, v []float64) {
	a.m[p] = m
	a.v[p] = v
}

// Step applies one update to every parameter from its accumulated
// gradient, then leaves gradients untouched (callers zero them at the
// start of the next accumulation).
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.W.D))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.W.D))
		}
		v := a.v[p]
		for i, g := range p.G.D {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.W.D[i] -= a.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + a.Eps)
		}
	}
}
