package nn

import (
	"math"
	"math/rand"

	"mobius/internal/tensor"
)

// attention is multi-head causal self-attention over fixed-length
// sequences. Input rows are grouped per sequence: row s*T+t is token t of
// sequence s.
type attention struct {
	cfg Config
	qkv *linear // Dim -> 3*Dim
	out *linear // Dim -> Dim
}

func newAttention(name string, cfg Config, rng *rand.Rand) *attention {
	return &attention{
		cfg: cfg,
		qkv: newLinear(name+".qkv", cfg.Dim, 3*cfg.Dim, rng, 0.02),
		out: newLinear(name+".out", cfg.Dim, cfg.Dim, rng, 0.02/math.Sqrt(2*float64(cfg.Layers))),
	}
}

func (a *attention) params() []*Param { return append(a.qkv.params(), a.out.params()...) }

type attnCache struct {
	x     *tensor.Mat   // input
	qkv   *tensor.Mat   // projected q,k,v concatenated
	probs []*tensor.Mat // per (sequence, head): T x T attention weights
	ctx   *tensor.Mat   // pre-output-projection context
}

func (a *attention) forward(x *tensor.Mat) (*tensor.Mat, *attnCache) {
	T := a.cfg.Seq
	D := a.cfg.Dim
	H := a.cfg.Heads
	hd := D / H
	nSeq := x.R / T
	scale := 1 / math.Sqrt(float64(hd))

	qkv := a.qkv.forward(x) // rows: [q | k | v]
	ctx := tensor.New(x.R, D)
	cache := &attnCache{x: x, qkv: qkv, probs: make([]*tensor.Mat, nSeq*H)}

	for s := 0; s < nSeq; s++ {
		base := s * T
		for h := 0; h < H; h++ {
			off := h * hd
			probs := tensor.New(T, T)
			// Scores with causal mask, softmax per query row.
			for ti := 0; ti < T; ti++ {
				qi := qkv.Row(base + ti)[off : off+hd]
				prow := probs.Row(ti)
				maxv := math.Inf(-1)
				for tj := 0; tj <= ti; tj++ {
					kj := qkv.Row(base + tj)[D+off : D+off+hd]
					var sdot float64
					for u := range qi {
						sdot += qi[u] * kj[u]
					}
					prow[tj] = sdot * scale
					if prow[tj] > maxv {
						maxv = prow[tj]
					}
				}
				var sum float64
				for tj := 0; tj <= ti; tj++ {
					prow[tj] = math.Exp(prow[tj] - maxv)
					sum += prow[tj]
				}
				inv := 1 / sum
				for tj := 0; tj <= ti; tj++ {
					prow[tj] *= inv
				}
				// Context: weighted sum of values.
				crow := ctx.Row(base + ti)[off : off+hd]
				for tj := 0; tj <= ti; tj++ {
					vj := qkv.Row(base + tj)[2*D+off : 2*D+off+hd]
					p := prow[tj]
					for u := range crow {
						crow[u] += p * vj[u]
					}
				}
			}
			cache.probs[s*H+h] = probs
		}
	}
	cache.ctx = ctx
	return a.out.forward(ctx), cache
}

func (a *attention) backward(dy *tensor.Mat, c *attnCache) *tensor.Mat {
	T := a.cfg.Seq
	D := a.cfg.Dim
	H := a.cfg.Heads
	hd := D / H
	nSeq := c.x.R / T
	scale := 1 / math.Sqrt(float64(hd))

	dctx := a.out.backward(c.ctx, dy)
	dqkv := tensor.New(c.x.R, 3*D)

	for s := 0; s < nSeq; s++ {
		base := s * T
		for h := 0; h < H; h++ {
			off := h * hd
			probs := c.probs[s*H+h]
			for ti := 0; ti < T; ti++ {
				dcrow := dctx.Row(base + ti)[off : off+hd]
				prow := probs.Row(ti)
				// dV and dP.
				dp := make([]float64, ti+1)
				for tj := 0; tj <= ti; tj++ {
					vj := c.qkv.Row(base + tj)[2*D+off : 2*D+off+hd]
					dvj := dqkv.Row(base + tj)[2*D+off : 2*D+off+hd]
					p := prow[tj]
					var dpv float64
					for u := range dcrow {
						dvj[u] += p * dcrow[u]
						dpv += dcrow[u] * vj[u]
					}
					dp[tj] = dpv
				}
				// Softmax backward: ds = P * (dp - sum(dp*P)).
				var dot float64
				for tj := 0; tj <= ti; tj++ {
					dot += dp[tj] * prow[tj]
				}
				qi := c.qkv.Row(base + ti)[off : off+hd]
				dqi := dqkv.Row(base + ti)[off : off+hd]
				for tj := 0; tj <= ti; tj++ {
					ds := prow[tj] * (dp[tj] - dot) * scale
					kj := c.qkv.Row(base + tj)[D+off : D+off+hd]
					dkj := dqkv.Row(base + tj)[D+off : D+off+hd]
					for u := range dqi {
						dqi[u] += ds * kj[u]
						dkj[u] += ds * qi[u]
					}
				}
			}
		}
	}
	return a.qkv.backward(c.x, dqkv)
}
