package nn

import (
	"math"
	"testing"
)

func TestClipGradNorm(t *testing.T) {
	p := newParam("p", 1, 3)
	p.G.D[0], p.G.D[1], p.G.D[2] = 3, 4, 0 // norm 5
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %g", norm)
	}
	var sq float64
	for _, g := range p.G.D {
		sq += g * g
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-9 {
		t.Fatalf("post-clip norm %g", math.Sqrt(sq))
	}
	// Below the threshold: untouched.
	p.G.D[0], p.G.D[1], p.G.D[2] = 0.1, 0, 0
	ClipGradNorm([]*Param{p}, 1)
	if p.G.D[0] != 0.1 {
		t.Fatal("small gradient must not be scaled")
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	p := newParam("p", 1, 2)
	p.W.D[0], p.W.D[1] = 2, -4
	WeightDecay([]*Param{p}, 0.1, 0.5)
	if math.Abs(p.W.D[0]-2*(1-0.05)) > 1e-12 || math.Abs(p.W.D[1]-(-4)*(1-0.05)) > 1e-12 {
		t.Fatalf("decayed weights %v", p.W.D)
	}
	before := p.W.D[0]
	WeightDecay([]*Param{p}, 0.1, 0)
	if p.W.D[0] != before {
		t.Fatal("zero decay must be a no-op")
	}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	cfg := tinyCfg()
	m, _ := NewGPT(cfg)
	prompt := []int{1, 2, 3}
	a := m.Generate(prompt, 5)
	b := m.Generate(prompt, 5)
	if len(a) != 8 {
		t.Fatalf("generated length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy decoding must be deterministic")
		}
		if a[i] < 0 || a[i] >= cfg.Vocab {
			t.Fatalf("token %d out of range", a[i])
		}
	}
	for i, tok := range prompt {
		if a[i] != tok {
			t.Fatal("prompt must be preserved")
		}
	}
}

func TestPerplexityUniformBaseline(t *testing.T) {
	cfg := tinyCfg()
	m, _ := NewGPT(cfg)
	batches := []Batch{randomBatch(cfg, 2, 3), randomBatch(cfg, 2, 4)}
	ppl := m.Perplexity(batches)
	// A fresh model sits near the uniform baseline V.
	if ppl < float64(cfg.Vocab)/2 || ppl > float64(cfg.Vocab)*2 {
		t.Fatalf("initial perplexity %g, want near %d", ppl, cfg.Vocab)
	}
	if m.Perplexity(nil) != math.Inf(1) {
		t.Fatal("empty eval must be +Inf")
	}
}
