package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpointFile is the on-disk format of a model checkpoint: the config
// for shape validation plus every parameter by name. Fine-tuning starts
// from such a checkpoint — the premise of the whole paper.
type checkpointFile struct {
	Cfg    Config
	Params map[string][]float64
}

// SaveWeights serializes the model's parameters.
func (m *Model) SaveWeights(w io.Writer) error {
	ck := checkpointFile{Cfg: m.Cfg, Params: map[string][]float64{}}
	for _, p := range m.Params() {
		ck.Params[p.Name] = p.W.D
	}
	return gob.NewEncoder(w).Encode(&ck)
}

// LoadWeights restores parameters from a checkpoint written by
// SaveWeights. The model's architecture must match exactly.
func (m *Model) LoadWeights(r io.Reader) error {
	var ck checkpointFile
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	if ck.Cfg != m.Cfg {
		return fmt.Errorf("nn: checkpoint config %+v does not match model %+v", ck.Cfg, m.Cfg)
	}
	for _, p := range m.Params() {
		data, ok := ck.Params[p.Name]
		if !ok {
			return fmt.Errorf("nn: checkpoint missing parameter %q", p.Name)
		}
		if len(data) != len(p.W.D) {
			return fmt.Errorf("nn: parameter %q has %d values, want %d", p.Name, len(data), len(p.W.D))
		}
		copy(p.W.D, data)
	}
	return nil
}
