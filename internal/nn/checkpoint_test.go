package nn

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := tinyCfg()
	src, _ := NewGPT(cfg)
	batch := randomBatch(cfg, 2, 9)
	want := lossOf(src, batch)

	var buf bytes.Buffer
	if err := src.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}

	// A differently-seeded model restored from the checkpoint must
	// reproduce the source model's loss exactly.
	cfg2 := cfg
	cfg2.Seed = 999
	dst, _ := NewGPT(cfg2)
	dst.Cfg.Seed = cfg.Seed // config identity for validation
	if got := lossOf(dst, batch); got == want {
		t.Fatal("test is vacuous: different seeds gave identical loss")
	}
	// LoadWeights validates the config; align it.
	dst.Cfg = cfg
	if err := dst.LoadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := lossOf(dst, batch); got != want {
		t.Fatalf("restored loss %.17g != source %.17g", got, want)
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	cfg := tinyCfg()
	src, _ := NewGPT(cfg)
	var buf bytes.Buffer
	if err := src.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Dim *= 2
	dst, _ := NewGPT(other)
	if err := dst.LoadWeights(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched architecture must fail")
	}
	if err := dst.LoadWeights(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestFineTuneFromCheckpoint(t *testing.T) {
	// The paper's workflow: pre-train briefly, checkpoint, then fine-tune
	// from the checkpoint and confirm training continues to improve.
	cfg := tinyCfg()
	m, _ := NewGPT(cfg)
	opt := NewAdam(5e-3)
	batch := randomBatch(cfg, 4, 2)
	for i := 0; i < 10; i++ {
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
		backwardAll(m, batch)
		opt.Step(m.Params())
	}
	var buf bytes.Buffer
	if err := m.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}

	ft, _ := NewGPT(cfg)
	if err := ft.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	before := lossOf(ft, batch)
	opt2 := NewAdam(5e-3)
	for i := 0; i < 10; i++ {
		for _, p := range ft.Params() {
			p.ZeroGrad()
		}
		backwardAll(ft, batch)
		opt2.Step(ft.Params())
	}
	if after := lossOf(ft, batch); after >= before {
		t.Fatalf("fine-tuning from checkpoint did not improve: %.4f -> %.4f", before, after)
	}
}
