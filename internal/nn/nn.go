// Package nn is a small, real neural-network substrate: GPT-style layers
// (embedding, transformer blocks, LM head) with hand-written backward
// passes, a cross-entropy loss and an Adam optimizer. It exists to run
// the paper's convergence experiment (Figure 13) for real: the Mobius
// pipeline's stage-swapped execution order must produce the same
// parameter updates as GPipe's, and internal/train demonstrates that on
// an actual model rather than by assertion.
package nn

import (
	"fmt"
	"math/rand"

	"mobius/internal/tensor"
)

// Param is one learnable tensor and its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Mat
	G    *tensor.Mat
}

func newParam(name string, r, c int) *Param {
	return &Param{Name: name, W: tensor.New(r, c), G: tensor.New(r, c)}
}

// initNormal fills a parameter with N(0, std) values from rng.
func (p *Param) initNormal(rng *rand.Rand, std float64) {
	for i := range p.W.D {
		p.W.D[i] = rng.NormFloat64() * std
	}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Batch is one microbatch of token sequences with next-token targets.
type Batch struct {
	Tokens  [][]int
	Targets [][]int
}

// Size returns the number of sequences in the batch.
func (b Batch) Size() int { return len(b.Tokens) }

// Unit is one vertically partitionable slice of the model: the unit of
// pipeline stages. Forward consumes the upstream boundary activation
// (nil for the embedding, which reads the batch) and returns the next
// boundary plus an opaque cache for Backward.
type Unit interface {
	Name() string
	Params() []*Param
	Forward(in *tensor.Mat, batch Batch) (out *tensor.Mat, cache any)
	Backward(dout *tensor.Mat, cache any) (din *tensor.Mat)
}

// Config describes a GPT model for the convergence substrate.
type Config struct {
	Vocab  int
	Seq    int
	Dim    int
	Heads  int
	Layers int
	Seed   int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Vocab <= 0 || c.Seq <= 0 || c.Dim <= 0 || c.Heads <= 0 || c.Layers <= 0 {
		return fmt.Errorf("nn: all dimensions must be positive: %+v", c)
	}
	if c.Dim%c.Heads != 0 {
		return fmt.Errorf("nn: dim %d not divisible by heads %d", c.Dim, c.Heads)
	}
	return nil
}

// Model is a GPT assembled from pipeline units.
type Model struct {
	Cfg   Config
	Units []Unit
}

// NewGPT builds the unit list: embedding, Layers blocks, head. All
// parameters are initialized deterministically from cfg.Seed.
func NewGPT(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg}
	m.Units = append(m.Units, newEmbedding(cfg, rng))
	for i := 0; i < cfg.Layers; i++ {
		m.Units = append(m.Units, newBlock(cfg, i, rng))
	}
	m.Units = append(m.Units, newHead(cfg, rng))
	return m, nil
}

// Params returns every parameter of every unit.
func (m *Model) Params() []*Param {
	var out []*Param
	for _, u := range m.Units {
		out = append(out, u.Params()...)
	}
	return out
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.W.D)
	}
	return n
}
