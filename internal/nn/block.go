package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mobius/internal/tensor"
)

// block is one pre-norm transformer block:
// x + attn(ln1(x)), then + mlp(ln2(.)).
type block struct {
	name string
	cfg  Config
	ln1  *layerNorm
	attn *attention
	ln2  *layerNorm
	fc1  *linear // Dim -> 4*Dim
	fc2  *linear // 4*Dim -> Dim
}

func newBlock(cfg Config, idx int, rng *rand.Rand) *block {
	name := fmt.Sprintf("block%d", idx)
	return &block{
		name: name,
		cfg:  cfg,
		ln1:  newLayerNorm(name+".ln1", cfg.Dim),
		attn: newAttention(name+".attn", cfg, rng),
		ln2:  newLayerNorm(name+".ln2", cfg.Dim),
		fc1:  newLinear(name+".fc1", cfg.Dim, 4*cfg.Dim, rng, 0.02),
		fc2:  newLinear(name+".fc2", 4*cfg.Dim, cfg.Dim, rng, 0.02/math.Sqrt(2*float64(cfg.Layers))),
	}
}

func (b *block) Name() string { return b.name }

func (b *block) Params() []*Param {
	var out []*Param
	out = append(out, b.ln1.params()...)
	out = append(out, b.attn.params()...)
	out = append(out, b.ln2.params()...)
	out = append(out, b.fc1.params()...)
	out = append(out, b.fc2.params()...)
	return out
}

type blockCache struct {
	ln1In   *lnCache
	ln1Out  *tensor.Mat
	attn    *attnCache
	mid     *tensor.Mat // x + attention output
	ln2In   *lnCache
	ln2Out  *tensor.Mat
	preGelu *tensor.Mat
	geluOut *tensor.Mat
}

func (b *block) Forward(x *tensor.Mat, _ Batch) (*tensor.Mat, any) {
	c := &blockCache{}

	normed1, ln1c := b.ln1.forward(x)
	c.ln1In, c.ln1Out = ln1c, normed1
	attnOut, ac := b.attn.forward(normed1)
	c.attn = ac

	mid := tensor.New(x.R, x.C)
	tensor.AddInto(mid, x, attnOut)
	c.mid = mid

	normed2, ln2c := b.ln2.forward(mid)
	c.ln2In, c.ln2Out = ln2c, normed2
	pre := b.fc1.forward(normed2)
	c.preGelu = pre
	act := tensor.New(pre.R, pre.C)
	for i, v := range pre.D {
		act.D[i] = tensor.GELU(v)
	}
	c.geluOut = act
	mlpOut := b.fc2.forward(act)

	y := tensor.New(x.R, x.C)
	tensor.AddInto(y, mid, mlpOut)
	return y, c
}

func (b *block) Backward(dy *tensor.Mat, cache any) *tensor.Mat {
	c := cache.(*blockCache)

	// y = mid + fc2(gelu(fc1(ln2(mid)))).
	dact := b.fc2.backward(c.geluOut, dy)
	for i, v := range c.preGelu.D {
		dact.D[i] *= tensor.GELUGrad(v)
	}
	dnormed2 := b.fc1.backward(c.ln2Out, dact)
	dmid := b.ln2.backward(dnormed2, c.ln2In)
	tensor.AccumInto(dmid, dy) // residual path

	// mid = x + attn(ln1(x)).
	dnormed1 := b.attn.backward(dmid, c.attn)
	dx := b.ln1.backward(dnormed1, c.ln1In)
	tensor.AccumInto(dx, dmid) // residual path
	return dx
}
