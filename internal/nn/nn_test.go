package nn

import (
	"math"
	"math/rand"
	"testing"

	"mobius/internal/tensor"
)

func tinyCfg() Config {
	return Config{Vocab: 11, Seq: 5, Dim: 8, Heads: 2, Layers: 2, Seed: 42}
}

func randomBatch(cfg Config, seqs int, seed int64) Batch {
	rng := rand.New(rand.NewSource(seed))
	b := Batch{}
	for s := 0; s < seqs; s++ {
		toks := make([]int, cfg.Seq)
		tgts := make([]int, cfg.Seq)
		for t := range toks {
			toks[t] = rng.Intn(cfg.Vocab)
			tgts[t] = rng.Intn(cfg.Vocab)
		}
		b.Tokens = append(b.Tokens, toks)
		b.Targets = append(b.Targets, tgts)
	}
	return b
}

// lossOf runs a full forward pass and returns the cross-entropy.
func lossOf(m *Model, batch Batch) float64 {
	var x *tensor.Mat
	for _, u := range m.Units {
		x, _ = u.Forward(x, batch)
	}
	loss, _ := CrossEntropy(x, batch, m.Cfg.Seq)
	return loss
}

// backwardAll runs forward + backward, accumulating gradients.
func backwardAll(m *Model, batch Batch) float64 {
	var x *tensor.Mat
	caches := make([]any, len(m.Units))
	for i, u := range m.Units {
		x, caches[i] = u.Forward(x, batch)
	}
	loss, dx := CrossEntropy(x, batch, m.Cfg.Seq)
	for i := len(m.Units) - 1; i >= 0; i-- {
		dx = m.Units[i].Backward(dx, caches[i])
	}
	return loss
}

func TestModelConstruction(t *testing.T) {
	m, err := NewGPT(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Units) != tinyCfg().Layers+2 {
		t.Fatalf("units: %d", len(m.Units))
	}
	if m.NumParams() == 0 {
		t.Fatal("no parameters")
	}
	if m.Units[0].Name() != "embedding" || m.Units[len(m.Units)-1].Name() != "head" {
		t.Fatal("unit ordering")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := tinyCfg()
	bad.Heads = 3
	if _, err := NewGPT(bad); err == nil {
		t.Fatal("indivisible heads must fail")
	}
	bad2 := tinyCfg()
	bad2.Vocab = 0
	if _, err := NewGPT(bad2); err == nil {
		t.Fatal("zero vocab must fail")
	}
}

func TestForwardShapesAndDeterminism(t *testing.T) {
	cfg := tinyCfg()
	m1, _ := NewGPT(cfg)
	m2, _ := NewGPT(cfg)
	batch := randomBatch(cfg, 3, 7)
	l1 := lossOf(m1, batch)
	l2 := lossOf(m2, batch)
	if l1 != l2 {
		t.Fatalf("same seed must give identical loss: %g vs %g", l1, l2)
	}
	// A fresh random model's loss should be near ln(vocab).
	if math.Abs(l1-math.Log(float64(cfg.Vocab))) > 0.5 {
		t.Fatalf("initial loss %g far from ln(V)=%g", l1, math.Log(float64(cfg.Vocab)))
	}
}

// TestGradientsMatchFiniteDifferences is the keystone check: analytic
// backward of every layer type against central finite differences on a
// sample of parameters.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	cfg := tinyCfg()
	m, _ := NewGPT(cfg)
	batch := randomBatch(cfg, 2, 3)

	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	backwardAll(m, batch)

	rng := rand.New(rand.NewSource(99))
	const h = 1e-6
	checked := 0
	for _, p := range m.Params() {
		// Sample a few entries per parameter.
		for k := 0; k < 3; k++ {
			i := rng.Intn(len(p.W.D))
			orig := p.W.D[i]
			p.W.D[i] = orig + h
			lp := lossOf(m, batch)
			p.W.D[i] = orig - h
			lm := lossOf(m, batch)
			p.W.D[i] = orig
			numeric := (lp - lm) / (2 * h)
			analytic := p.G.D[i]
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if math.Abs(numeric-analytic)/scale > 1e-4 {
				t.Errorf("%s[%d]: analytic %.8g vs numeric %.8g", p.Name, i, analytic, numeric)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
	t.Logf("checked %d parameter entries", checked)
}

func TestCausalMaskRespected(t *testing.T) {
	// Changing a future token must not change earlier positions' logits.
	cfg := tinyCfg()
	m, _ := NewGPT(cfg)
	batch := randomBatch(cfg, 1, 5)

	run := func() *tensor.Mat {
		var x *tensor.Mat
		for _, u := range m.Units {
			x, _ = u.Forward(x, batch)
		}
		return x
	}
	before := run().Clone()
	batch.Tokens[0][cfg.Seq-1] = (batch.Tokens[0][cfg.Seq-1] + 1) % cfg.Vocab
	after := run()
	for t2 := 0; t2 < cfg.Seq-1; t2++ {
		br, ar := before.Row(t2), after.Row(t2)
		for j := range br {
			if br[j] != ar[j] {
				t.Fatalf("position %d affected by future token", t2)
			}
		}
	}
	// The final position must change.
	changed := false
	last := cfg.Seq - 1
	for j, v := range before.Row(last) {
		if v != after.Row(last)[j] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("final position insensitive to its own token")
	}
}

func TestCrossEntropyUniform(t *testing.T) {
	// Uniform logits -> loss = ln(V) and gradient rows sum to 0.
	cfg := tinyCfg()
	batch := randomBatch(cfg, 2, 1)
	logits := tensor.New(2*cfg.Seq, cfg.Vocab)
	loss, dl := CrossEntropy(logits, batch, cfg.Seq)
	if math.Abs(loss-math.Log(float64(cfg.Vocab))) > 1e-12 {
		t.Fatalf("uniform loss %g", loss)
	}
	for i := 0; i < dl.R; i++ {
		var sum float64
		for _, v := range dl.Row(i) {
			sum += v
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("gradient row %d sums to %g", i, sum)
		}
	}
}

func TestAdamReducesLoss(t *testing.T) {
	cfg := tinyCfg()
	m, _ := NewGPT(cfg)
	batch := randomBatch(cfg, 4, 11)
	opt := NewAdam(1e-2)

	first := lossOf(m, batch)
	var last float64
	for step := 0; step < 30; step++ {
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
		last = backwardAll(m, batch)
		opt.Step(m.Params())
	}
	if last >= first*0.7 {
		t.Fatalf("loss did not drop: %g -> %g", first, last)
	}
}

func TestGradAccumulationLinearity(t *testing.T) {
	// Backward on two microbatches accumulated must equal the sum of the
	// separate gradients (the property pipeline accumulation relies on).
	cfg := tinyCfg()
	b1 := randomBatch(cfg, 2, 21)
	b2 := randomBatch(cfg, 2, 22)

	m1, _ := NewGPT(cfg)
	backwardAll(m1, b1)
	backwardAll(m1, b2) // accumulates

	m2, _ := NewGPT(cfg)
	backwardAll(m2, b1)
	g1 := snapshotGrads(m2)
	for _, p := range m2.Params() {
		p.ZeroGrad()
	}
	backwardAll(m2, b2)

	i := 0
	for _, p := range m2.Params() {
		for k, g := range p.G.D {
			want := g1[i] + g
			got := m1.Params()[paramIndex(m1, p.Name)].G.D[k]
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("%s[%d]: accumulated %g vs sum %g", p.Name, k, got, want)
			}
			i++
		}
	}
}

func snapshotGrads(m *Model) []float64 {
	var out []float64
	for _, p := range m.Params() {
		out = append(out, p.G.D...)
	}
	return out
}

func paramIndex(m *Model, name string) int {
	for i, p := range m.Params() {
		if p.Name == name {
			return i
		}
	}
	return -1
}
