package nn

import (
	"math"

	"mobius/internal/tensor"
)

// WeightDecay applies decoupled (AdamW-style) weight decay to every
// parameter: w -= lr * wd * w. Call before Adam.Step to match AdamW.
// Layernorm gains/biases and biases are conventionally excluded; callers
// filter the parameter list if they care.
func WeightDecay(params []*Param, lr, wd float64) {
	if wd == 0 {
		return
	}
	f := lr * wd
	for _, p := range params {
		for i := range p.W.D {
			p.W.D[i] -= f * p.W.D[i]
		}
	}
}

// ClipGradNorm scales gradients so their global L2 norm does not exceed
// maxNorm, returning the pre-clip norm (the PyTorch semantics).
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G.D {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range params {
			for i := range p.G.D {
				p.G.D[i] *= scale
			}
		}
	}
	return norm
}

// Generate produces tokens by greedy decoding from a prompt: the
// convergence demo uses it to show the fine-tuned model actually learned
// the corpus structure. The model must have been built by NewGPT.
func (m *Model) Generate(prompt []int, n int) []int {
	out := append([]int(nil), prompt...)
	for len(out) < len(prompt)+n {
		// Window the last Seq tokens (left-pad with token 0).
		window := make([]int, m.Cfg.Seq)
		start := len(out) - m.Cfg.Seq
		for i := range window {
			j := start + i
			if j >= 0 {
				window[i] = out[j]
			}
		}
		batch := Batch{Tokens: [][]int{window}}
		var x *tensor.Mat
		for _, u := range m.Units {
			x, _ = u.Forward(x, batch)
		}
		// Greedy pick at the last position.
		row := x.Row(m.Cfg.Seq - 1)
		best, bestV := 0, math.Inf(-1)
		for tok, v := range row {
			if v > bestV {
				best, bestV = tok, v
			}
		}
		out = append(out, best)
	}
	return out
}

// Perplexity evaluates exp(mean cross-entropy) over the batches without
// touching gradients — the held-out metric of fine-tuning runs.
func (m *Model) Perplexity(batches []Batch) float64 {
	var total float64
	var n int
	for _, b := range batches {
		var x *tensor.Mat
		for _, u := range m.Units {
			x, _ = u.Forward(x, b)
		}
		loss, _ := CrossEntropy(x, b, m.Cfg.Seq)
		total += loss
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Exp(total / float64(n))
}
