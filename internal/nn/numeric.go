package nn

import (
	"fmt"
	"math"
)

// NonFiniteError reports the first NaN or Inf found in a parameter scan —
// the footprint silent data corruption or numeric divergence leaves in a
// training run.
type NonFiniteError struct {
	// Param is the parameter name ("blk2.attn.wq", ...).
	Param string
	// Kind is "weight" or "gradient".
	Kind string
	// Index is the flat element index within the tensor.
	Index int
	// Value is the offending value (NaN, +Inf or -Inf).
	Value float64
}

func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("nn: non-finite %s in %s[%d]: %v", e.Kind, e.Param, e.Index, e.Value)
}

// CheckFinite scans every parameter's weights and gradients and returns a
// *NonFiniteError for the first NaN/Inf found, or nil when all values are
// finite.
func CheckFinite(params []*Param) error {
	for _, p := range params {
		for i, w := range p.W.D {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return &NonFiniteError{Param: p.Name, Kind: "weight", Index: i, Value: w}
			}
		}
		for i, g := range p.G.D {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				return &NonFiniteError{Param: p.Name, Kind: "gradient", Index: i, Value: g}
			}
		}
	}
	return nil
}

// GradNorm returns the global L2 norm over all gradients without
// modifying them (ClipGradNorm's measurement half).
func GradNorm(params []*Param) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G.D {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}
