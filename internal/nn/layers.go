package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mobius/internal/tensor"
)

// linear is an affine map y = xW + b with cached input for backward.
type linear struct {
	name string
	w, b *Param
}

func newLinear(name string, in, out int, rng *rand.Rand, std float64) *linear {
	l := &linear{
		name: name,
		w:    newParam(name+".w", in, out),
		b:    newParam(name+".b", 1, out),
	}
	l.w.initNormal(rng, std)
	return l
}

func (l *linear) params() []*Param { return []*Param{l.w, l.b} }

func (l *linear) forward(x *tensor.Mat) *tensor.Mat {
	y := tensor.MatMul(x, l.w.W)
	for i := 0; i < y.R; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += l.b.W.D[j]
		}
	}
	return y
}

// backward accumulates dW and db and returns dx. x is the cached input.
func (l *linear) backward(x, dy *tensor.Mat) *tensor.Mat {
	tensor.AccumInto(l.w.G, tensor.MatMulTA(x, dy))
	for i := 0; i < dy.R; i++ {
		row := dy.Row(i)
		for j := range row {
			l.b.G.D[j] += row[j]
		}
	}
	return tensor.MatMulTB(dy, l.w.W)
}

// layerNorm normalizes rows with learnable gain and bias.
type layerNorm struct {
	gamma, beta *Param
	eps         float64
}

func newLayerNorm(name string, dim int) *layerNorm {
	ln := &layerNorm{
		gamma: newParam(name+".gamma", 1, dim),
		beta:  newParam(name+".beta", 1, dim),
		eps:   1e-5,
	}
	for i := range ln.gamma.W.D {
		ln.gamma.W.D[i] = 1
	}
	return ln
}

func (ln *layerNorm) params() []*Param { return []*Param{ln.gamma, ln.beta} }

type lnCache struct {
	xhat   *tensor.Mat
	invStd []float64
}

func (ln *layerNorm) forward(x *tensor.Mat) (*tensor.Mat, *lnCache) {
	y := tensor.New(x.R, x.C)
	cache := &lnCache{xhat: tensor.New(x.R, x.C), invStd: make([]float64, x.R)}
	for i := 0; i < x.R; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(x.C)
		var varsum float64
		for _, v := range row {
			d := v - mean
			varsum += d * d
		}
		inv := 1 / math.Sqrt(varsum/float64(x.C)+ln.eps)
		cache.invStd[i] = inv
		xh := cache.xhat.Row(i)
		out := y.Row(i)
		for j, v := range row {
			xh[j] = (v - mean) * inv
			out[j] = xh[j]*ln.gamma.W.D[j] + ln.beta.W.D[j]
		}
	}
	return y, cache
}

func (ln *layerNorm) backward(dy *tensor.Mat, cache *lnCache) *tensor.Mat {
	dx := tensor.New(dy.R, dy.C)
	n := float64(dy.C)
	for i := 0; i < dy.R; i++ {
		dyr := dy.Row(i)
		xh := cache.xhat.Row(i)
		// Accumulate parameter grads.
		for j := range dyr {
			ln.gamma.G.D[j] += dyr[j] * xh[j]
			ln.beta.G.D[j] += dyr[j]
		}
		// dxhat = dy * gamma; dx via the layernorm Jacobian.
		var sumDxh, sumDxhXh float64
		dxh := make([]float64, dy.C)
		for j := range dyr {
			dxh[j] = dyr[j] * ln.gamma.W.D[j]
			sumDxh += dxh[j]
			sumDxhXh += dxh[j] * xh[j]
		}
		inv := cache.invStd[i]
		out := dx.Row(i)
		for j := range dyr {
			out[j] = inv * (dxh[j] - sumDxh/n - xh[j]*sumDxhXh/n)
		}
	}
	return dx
}

// embedding is the token + position embedding unit.
type embedding struct {
	cfg Config
	tok *Param
	pos *Param
}

func newEmbedding(cfg Config, rng *rand.Rand) *embedding {
	e := &embedding{
		cfg: cfg,
		tok: newParam("embed.tok", cfg.Vocab, cfg.Dim),
		pos: newParam("embed.pos", cfg.Seq, cfg.Dim),
	}
	e.tok.initNormal(rng, 0.02)
	e.pos.initNormal(rng, 0.02)
	return e
}

func (e *embedding) Name() string     { return "embedding" }
func (e *embedding) Params() []*Param { return []*Param{e.tok, e.pos} }

func (e *embedding) Forward(_ *tensor.Mat, batch Batch) (*tensor.Mat, any) {
	b := batch.Size()
	T := e.cfg.Seq
	y := tensor.New(b*T, e.cfg.Dim)
	for s, seq := range batch.Tokens {
		if len(seq) != T {
			panic(fmt.Sprintf("nn: sequence length %d != %d", len(seq), T))
		}
		for t, tokID := range seq {
			row := y.Row(s*T + t)
			tokRow := e.tok.W.Row(tokID)
			posRow := e.pos.W.Row(t)
			for j := range row {
				row[j] = tokRow[j] + posRow[j]
			}
		}
	}
	return y, batch
}

func (e *embedding) Backward(dy *tensor.Mat, cache any) *tensor.Mat {
	batch := cache.(Batch)
	T := e.cfg.Seq
	for s, seq := range batch.Tokens {
		for t, tokID := range seq {
			drow := dy.Row(s*T + t)
			tokG := e.tok.G.Row(tokID)
			posG := e.pos.G.Row(t)
			for j, v := range drow {
				tokG[j] += v
				posG[j] += v
			}
		}
	}
	return nil // nothing upstream of the embedding
}

// head is the final layernorm + vocabulary projection.
type head struct {
	cfg  Config
	ln   *layerNorm
	proj *linear
}

func newHead(cfg Config, rng *rand.Rand) *head {
	return &head{
		cfg:  cfg,
		ln:   newLayerNorm("head.ln", cfg.Dim),
		proj: newLinear("head.proj", cfg.Dim, cfg.Vocab, rng, 0.02),
	}
}

func (h *head) Name() string { return "head" }

func (h *head) Params() []*Param { return append(h.ln.params(), h.proj.params()...) }

type headCache struct {
	lnIn  *lnCache
	lnOut *tensor.Mat
}

func (h *head) Forward(in *tensor.Mat, _ Batch) (*tensor.Mat, any) {
	normed, c := h.ln.forward(in)
	logits := h.proj.forward(normed)
	return logits, &headCache{lnIn: c, lnOut: normed}
}

func (h *head) Backward(dlogits *tensor.Mat, cache any) *tensor.Mat {
	hc := cache.(*headCache)
	dnormed := h.proj.backward(hc.lnOut, dlogits)
	return h.ln.backward(dnormed, hc.lnIn)
}
