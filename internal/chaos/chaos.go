// Package chaos stress-tests the end-to-end integrity layer. From a
// single seed it derives a randomized — but valid-by-construction —
// fault + corruption scenario, executes full Mobius steps under it with
// checksums on and off, and checks the global invariants that must hold
// for every seed:
//
//   - the simulator finishes (or halts) with a sane clock and
//     per-task event times (sim.CheckInvariants);
//   - traffic is conserved per link, retransmits included;
//   - with checksums on, no corruption is ever silent; with checksums
//     off, no retransmit or verification cost is ever charged and every
//     injected corruption taints at least its own delivery;
//   - replaying the same seed reproduces the run bit for bit.
//
// The harness plans once and reuses the plan across seeds, and builds
// the simulated topology and step DAG once, replaying them via sim.Reset
// for every scenario and replay — so a single chaos run is a few
// simulated steps with no construction cost, cheap enough for a fuzz
// target.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/mapping"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/pipeline"
	"mobius/internal/profile"
	"mobius/internal/sim"
)

// Harness executes chaos runs against one cached Mobius plan.
type Harness struct {
	Topo         *hw.Topology
	Partition    *partition.Partition
	Mapping      *mapping.Mapping
	Microbatches int

	// built is the constructed Mobius step, created on first use and
	// replayed via sim.Reset for every subsequent step: one topology and
	// DAG construction serves all seeds, scenarios and replays.
	built *pipeline.MobiusStep
}

// NewHarness plans GPT-3B on the default commodity server (2 root
// complexes x 2 RTX 3090 Ti) with a balanced 8-stage partition and cross
// mapping — the cheapest configuration that still exercises multi-stage
// prefetch, activation offload and gradient flush traffic.
func NewHarness() (*Harness, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	prof, err := profile.Run(model.GPT3B, topo.GPUs[0].Spec, profile.Options{})
	if err != nil {
		return nil, fmt.Errorf("chaos: profile: %w", err)
	}
	part, err := partition.Balanced(partition.Params{
		Profile:   prof,
		NumGPUs:   topo.NumGPUs(),
		GPUMem:    topo.GPUMem(0) * 0.92,
		Bandwidth: 13.1e9,
	}, 8)
	if err != nil {
		return nil, fmt.Errorf("chaos: partition: %w", err)
	}
	m, err := mapping.Cross(topo, part.NumStages())
	if err != nil {
		return nil, fmt.Errorf("chaos: mapping: %w", err)
	}
	return &Harness{Topo: topo, Partition: part, Mapping: m, Microbatches: topo.NumGPUs()}, nil
}

// chaosMatches are the route targets a generated rule may select: every
// bandwidth resource of the harness topology, plus the wildcard.
var chaosMatches = []string{"*", "rc0", "rc1", "gpu0.link", "gpu1.link", "gpu2.link", "gpu3.link", "drambus"}

// Spec derives the fault + corruption scenario for a seed. The generator
// only emits clauses inside their documented ranges, so every generated
// spec passes Validate — asserted again on each run as a harness
// invariant. The spec's own Seed field is the chaos seed, which also
// decorrelates the transient and corruption hash streams per seed.
func (h *Harness) Spec(seed int64) *fault.Spec {
	rng := rand.New(rand.NewSource(seed))
	spec := &fault.Spec{Seed: seed}

	// 1..3 corruption rules; first match wins, so overlap is fine.
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		spec.Corruptions = append(spec.Corruptions, fault.CorruptionFault{
			Match:       chaosMatches[rng.Intn(len(chaosMatches))],
			Probability: 0.3 * rng.Float64(), // [0, 0.3): exhaustion stays rare but reachable
		})
	}
	// Link degradations: an optional whole-run (unbounded) slowdown plus
	// optional bursts of bounded windows, each on a distinct link —
	// Validate rejects overlapping windows on the same link, and an
	// unbounded window overlaps everything after it. Windows on different
	// links overlap freely in time. Every window edge is a mid-transfer
	// capacity event on one link, so bursts churn exactly the
	// component-membership state the incremental flow scheduler maintains
	// (links sharing a root complex with live traffic, links going slow
	// and recovering while other links' windows are still open).
	links := append([]string(nil), chaosMatches[1:]...)
	rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	if rng.Intn(2) == 0 {
		spec.Links = append(spec.Links, fault.LinkFault{
			Link:       links[0],
			Multiplier: 0.25 + 0.75*rng.Float64(),
		})
		links = links[1:]
	}
	for i, n := 0, rng.Intn(3); i < n && len(links) > 0; i++ {
		link := links[0]
		links = links[1:]
		at := 0.3 * rng.Float64()
		for w, m := 0, 1+rng.Intn(2); w < m; w++ {
			end := at + 0.01 + 0.2*rng.Float64()
			spec.Links = append(spec.Links, fault.LinkFault{
				Link:       link,
				Multiplier: 0.25 + 0.75*rng.Float64(),
				Start:      at,
				End:        end,
			})
			at = end + 0.05 + 0.1*rng.Float64()
		}
	}
	// Optional transient retry rule, competing with corruption for the
	// same transfers.
	if rng.Intn(2) == 0 {
		spec.Transient = append(spec.Transient, fault.TransientFault{
			Match:       chaosMatches[rng.Intn(len(chaosMatches))],
			Probability: 0.2 * rng.Float64(),
			BackoffMS:   0.5,
		})
	}
	// Optional straggler GPU.
	if rng.Intn(3) == 0 {
		spec.Stragglers = append(spec.Stragglers, fault.StragglerFault{
			GPU:        rng.Intn(h.Topo.NumGPUs()),
			Throughput: 0.5 + 0.5*rng.Float64(),
		})
	}
	return spec
}

// RunStats summarizes one simulated step of a chaos run.
type RunStats struct {
	// StepTime is the simulated duration (elapsed time to the halt when
	// Halted).
	StepTime float64
	// Halted reports the step died with a structured sim.CorruptionError
	// (exhausted retransmit budget); Attempts is its delivery count.
	Halted   bool
	Attempts int
	// Integrity is the simulator's corruption/checksum accounting.
	Integrity sim.IntegrityStats
}

// Report is the outcome of one chaos seed: the generated scenario and
// the detected (checksums on) and exposed (checksums off) runs.
type Report struct {
	Seed     int64
	Spec     *fault.Spec
	Detected RunStats
	Exposed  RunStats
}

func (r *Report) String() string {
	return fmt.Sprintf("chaos seed %d: detected %.4fs (halted=%v, %d retransmits), exposed %.4fs (%d silent, %d tainted)",
		r.Seed, r.Detected.StepTime, r.Detected.Halted, r.Detected.Integrity.Retransmits,
		r.Exposed.StepTime, r.Exposed.Integrity.SilentCorruptions, r.Exposed.Integrity.TaintedTasks)
}

// Run executes the chaos scenario for a seed — checksums on, checksums
// off, and a bitwise replay of each — and returns a non-nil error when
// any invariant is violated.
func (h *Harness) Run(seed int64) (*Report, error) {
	spec := h.Spec(seed)
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: seed %d generated an invalid spec: %w", seed, err)
	}

	on, err := h.step(spec, true)
	if err != nil {
		return nil, fmt.Errorf("chaos: seed %d (checksums on): %w", seed, err)
	}
	off, err := h.step(spec, false)
	if err != nil {
		return nil, fmt.Errorf("chaos: seed %d (checksums off): %w", seed, err)
	}

	// Detection invariants: with checksums every corruption is caught —
	// retransmitted or halted — never silent, never tainting state.
	if on.Integrity.SilentCorruptions != 0 || on.Integrity.TaintedTasks != 0 {
		return nil, fmt.Errorf("chaos: seed %d: checksums on but %d silent corruptions tainted %d tasks",
			seed, on.Integrity.SilentCorruptions, on.Integrity.TaintedTasks)
	}
	if on.Integrity.Retransmits > on.Integrity.CorruptedAttempts {
		return nil, fmt.Errorf("chaos: seed %d: %d retransmits exceed %d corrupted attempts",
			seed, on.Integrity.Retransmits, on.Integrity.CorruptedAttempts)
	}
	// Exposure invariants: without checksums nothing is verified or
	// retransmitted, and every injected corruption taints at least the
	// delivery it hit.
	if off.Integrity.Retransmits != 0 || off.Integrity.ChecksumCost != 0 || off.Integrity.RetransmitWait != 0 {
		return nil, fmt.Errorf("chaos: seed %d: checksums off yet integrity machinery ran: %+v", seed, off.Integrity)
	}
	if off.Halted {
		return nil, fmt.Errorf("chaos: seed %d: checksums off cannot halt on corruption", seed)
	}
	if off.Integrity.TaintedTasks < off.Integrity.SilentCorruptions {
		return nil, fmt.Errorf("chaos: seed %d: %d corruptions but only %d tainted tasks",
			seed, off.Integrity.SilentCorruptions, off.Integrity.TaintedTasks)
	}

	// Replay determinism: the same seed reproduces both runs bit for bit.
	for _, rerun := range []struct {
		name      string
		checksums bool
		want      RunStats
	}{{"checksums on", true, on}, {"checksums off", false, off}} {
		got, err := h.step(spec, rerun.checksums)
		if err != nil {
			return nil, fmt.Errorf("chaos: seed %d replay (%s): %w", seed, rerun.name, err)
		}
		if got != rerun.want {
			return nil, fmt.Errorf("chaos: seed %d replay (%s) diverged:\n  first  %+v\n  replay %+v",
				seed, rerun.name, rerun.want, got)
		}
	}

	return &Report{Seed: seed, Spec: spec, Detected: on, Exposed: off}, nil
}

// step runs one Mobius step under the scenario and checks the simulator's
// own global invariants (clock sanity, event ordering, per-link traffic
// conservation including retransmit amplification).
func (h *Harness) step(spec *fault.Spec, checksums bool) (RunStats, error) {
	if h.built == nil {
		st, err := pipeline.BuildMobius(h.Topo, pipeline.MobiusConfig{
			Partition:    h.Partition,
			Mapping:      h.Mapping,
			Microbatches: h.Microbatches,
		})
		if err != nil {
			return RunStats{}, err
		}
		h.built = st
	}
	var cs sim.ChecksumConfig
	if checksums {
		cs = sim.ChecksumConfig{Enabled: true}
	}
	res, err := h.built.Run(spec, cs)
	if err != nil {
		return RunStats{}, err
	}
	if res.OOM {
		return RunStats{}, fmt.Errorf("unexpected OOM: %s", res.OOMCause)
	}
	if res.Lost != nil {
		return RunStats{}, fmt.Errorf("unexpected resource loss: %v", res.Lost)
	}
	if errs := res.Server.Sim.CheckInvariants(); len(errs) > 0 {
		return RunStats{}, fmt.Errorf("simulator invariants violated: %w", errors.Join(errs...))
	}
	st := RunStats{StepTime: res.StepTime, Halted: res.Corruption != nil, Integrity: res.Integrity}
	if res.Corruption != nil {
		st.Attempts = res.Corruption.Attempts
	} else if res.StepTime <= 0 {
		return RunStats{}, fmt.Errorf("completed step has non-positive duration %g", res.StepTime)
	}
	return st, nil
}
