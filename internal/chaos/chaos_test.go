package chaos

import (
	"math"
	"sync"
	"testing"

	"mobius/internal/elastic"
	"mobius/internal/hw"
	"mobius/internal/model"
)

var (
	harnessOnce sync.Once
	harness     *Harness
	harnessErr  error
)

// getHarness plans once and shares the harness across tests and fuzz
// iterations — planning dwarfs a chaos run.
func getHarness(t testing.TB) *Harness {
	t.Helper()
	harnessOnce.Do(func() { harness, harnessErr = NewHarness() })
	if harnessErr != nil {
		t.Fatal(harnessErr)
	}
	return harness
}

// TestChaosSpecGenerator pins the generator contract: every seed yields a
// valid spec, and the same seed yields the same spec.
func TestChaosSpecGenerator(t *testing.T) {
	h := getHarness(t)
	for seed := int64(0); seed < 200; seed++ {
		spec := h.Spec(seed)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: generated spec invalid: %v", seed, err)
		}
		if spec.Fingerprint() != h.Spec(seed).Fingerprint() {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
	}
}

// TestChaosMatrix is the deterministic chaos gate: a fixed seed range
// must satisfy every harness invariant, and collectively must actually
// exercise the integrity machinery — at least one seed retransmitting
// under checksums and at least one silently tainting without them.
func TestChaosMatrix(t *testing.T) {
	h := getHarness(t)
	var retransmits, silent, halted int
	for seed := int64(1); seed <= 12; seed++ {
		rep, err := h.Run(seed)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(rep)
		retransmits += rep.Detected.Integrity.Retransmits
		silent += rep.Exposed.Integrity.SilentCorruptions
		if rep.Detected.Halted {
			halted++
		}
	}
	if retransmits == 0 {
		t.Error("no seed in the matrix triggered a retransmit; the corruption rates are too low to test anything")
	}
	if silent == 0 {
		t.Error("no seed in the matrix produced a silent corruption with checksums off")
	}
	t.Logf("matrix totals: %d retransmits, %d silent corruptions, %d halted runs", retransmits, silent, halted)
}

// TestChaosRollbackIdentity folds the elastic accounting identity into
// the chaos surface: seed-derived rollback scenarios must decompose
// TotalTime into the report's overhead terms exactly.
func TestChaosRollbackIdentity(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	for _, seed := range []int64{3, 7} {
		steps := 4 + int(seed%4)
		every := int(seed % 3) // 0 = uncheckpointed rollback
		rep, err := elastic.Run(elastic.Config{
			Model:           model.GPT3B,
			Topology:        topo,
			Steps:           steps,
			CheckpointEvery: every,
			Policy:          elastic.PolicyRollback,
			AnomalyStep:     1 + int(seed)%steps,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if diff := math.Abs(rep.TotalTime - rep.AccountedTotal()); diff > 1e-9*rep.TotalTime {
			t.Fatalf("seed %d: accounting identity broken: total %.12f vs accounted %.12f",
				seed, rep.TotalTime, rep.AccountedTotal())
		}
	}
}

// FuzzChaosInvariants lets the fuzzer search the seed space for a
// scenario that violates any harness invariant.
func FuzzChaosInvariants(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Add(int64(-1))
	f.Add(int64(1 << 40))
	// Seeds whose generated specs churn component membership in the
	// incremental flow scheduler: bounded degradation windows on multiple
	// links overlapping in time (capacity edges landing mid-transfer while
	// other links' windows are still open), several also stacked on a
	// whole-run unbounded degradation. Found by scanning Spec output for
	// cross-link window overlap.
	for _, seed := range []int64{4, 9, 14, 17, 20, 21, 22, 31, 35, 56} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		h := getHarness(t)
		if _, err := h.Run(seed); err != nil {
			t.Fatal(err)
		}
	})
}
