package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/plansvc"
)

// PlanHarness stress-tests the planning service the way the main
// harness stresses the integrity layer: from a single seed it derives a
// planner-fault scenario (injected solver latency and transient
// failures), a retry/breaker configuration and a request sequence,
// drives them through a plansvc.Service on a virtual clock, and checks
// the invariants that must hold for every seed:
//
//   - every request returns a plan that validates on its topology (a
//     degraded request returns the greedy fallback, never an error);
//   - request conservation: every request is accounted as exactly one
//     of hit, led, coalesced or wait-abort;
//   - ladder conservation: every led request either solved or took the
//     greedy floor, and injected failures decompose exactly into
//     retries plus exhausted requests;
//   - the cache never holds a degraded or invalid plan;
//   - replaying the seed reproduces metrics, breaker state and the
//     full returned-plan sequence bit for bit.
type PlanHarness struct {
	// Menu is the request set scenarios draw from; all requests are
	// solver-free partition algorithms so thousands of chaos plans cost
	// milliseconds, leaving the ladder logic — not the MIP — under
	// test.
	Menu []core.Options
}

// NewPlanHarness builds the default menu on the 2+2 commodity box.
func NewPlanHarness() *PlanHarness {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	var menu []core.Options
	for _, m := range []model.Config{model.GPT3B, model.GPT8B} {
		menu = append(menu,
			core.Options{Model: m, Topology: topo, PartitionAlgo: partition.AlgoMinStage},
			core.Options{Model: m, Topology: topo, PartitionAlgo: partition.AlgoMaxStage},
			core.Options{Model: m, Topology: topo, PartitionAlgo: partition.AlgoBalanced, BalancedStages: 4},
			core.Options{Model: m, Topology: topo, PartitionAlgo: partition.AlgoBalanced, BalancedStages: 8},
		)
	}
	return &PlanHarness{Menu: menu}
}

// PlanScenario is the derived configuration for one seed.
type PlanScenario struct {
	Spec             *fault.Spec
	MaxAttempts      int
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Requests indexes the harness menu; Advances[i] is virtual time
	// inserted before request i (letting breaker cooldowns elapse).
	Requests []int
	Advances []time.Duration
}

// PlanScenario derives the scenario for a seed. Everything is inside
// documented ranges, so the spec always validates — asserted again per
// run.
func (h *PlanHarness) PlanScenario(seed int64) *PlanScenario {
	rng := rand.New(rand.NewSource(seed))
	spec := &fault.Spec{Seed: seed}
	matches := []string{"3B", "8B", "*"}
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		spec.Planner = append(spec.Planner, fault.PlannerFault{
			Match:       matches[rng.Intn(len(matches))],
			Probability: 0.95 * rng.Float64(),
			LatencyMS:   20 * rng.Float64(),
			MaxFailures: rng.Intn(9), // 0 means the clause default
		})
	}
	sc := &PlanScenario{
		Spec:             spec,
		MaxAttempts:      1 + rng.Intn(4),
		BreakerThreshold: 1 + rng.Intn(3),
		BreakerCooldown:  time.Duration(5+rng.Intn(25)) * time.Second,
	}
	n := 20 + rng.Intn(21)
	for i := 0; i < n; i++ {
		sc.Requests = append(sc.Requests, rng.Intn(len(h.Menu)))
		var adv time.Duration
		if rng.Intn(4) == 0 {
			adv = time.Duration(rng.Intn(40)) * time.Second
		}
		sc.Advances = append(sc.Advances, adv)
	}
	return sc
}

// PlanRunStats is the deterministic outcome of one scenario execution.
type PlanRunStats struct {
	Metrics plansvc.Metrics
	Breaker string
	// PlanSeq fingerprints the full sequence of returned plans in
	// request order; replays must reproduce it exactly.
	PlanSeq string
}

// PlanReport is the outcome of one planning-chaos seed.
type PlanReport struct {
	Seed     int64
	Scenario *PlanScenario
	Stats    PlanRunStats
}

func (r *PlanReport) String() string {
	m := r.Stats.Metrics
	return fmt.Sprintf("plan chaos seed %d: %d requests, %d solves, %d retries, %d greedy, %d trips (breaker %s)",
		r.Seed, m.Requests, m.Solves, m.Retries, m.GreedyFallbacks, m.BreakerTrips, r.Stats.Breaker)
}

// virtualClock advances only via Sleep and Advance, so backoff and
// breaker cooldowns are deterministic and free.
type virtualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (v *virtualClock) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t
}

func (v *virtualClock) Sleep(_ context.Context, d time.Duration) {
	v.Advance(d)
}

func (v *virtualClock) Advance(d time.Duration) {
	v.mu.Lock()
	v.t = v.t.Add(d)
	v.mu.Unlock()
}

// RunPlanning executes the planning-chaos scenario for a seed — serial
// execution, invariant checks, and a bitwise replay — and returns a
// non-nil error when any invariant is violated.
func (h *PlanHarness) RunPlanning(seed int64) (*PlanReport, error) {
	sc := h.PlanScenario(seed)
	if err := sc.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: seed %d generated an invalid planner spec: %w", seed, err)
	}

	first, err := h.execute(sc)
	if err != nil {
		return nil, fmt.Errorf("chaos: seed %d: %w", seed, err)
	}
	if err := h.checkPlanInvariants(sc, first); err != nil {
		return nil, fmt.Errorf("chaos: seed %d: %w", seed, err)
	}
	replay, err := h.execute(sc)
	if err != nil {
		return nil, fmt.Errorf("chaos: seed %d replay: %w", seed, err)
	}
	if first != replay {
		return nil, fmt.Errorf("chaos: seed %d replay diverged:\n  first  %+v\n  replay %+v", seed, first, replay)
	}
	return &PlanReport{Seed: seed, Scenario: sc, Stats: first}, nil
}

// execute runs the scenario once on a fresh service and virtual clock.
func (h *PlanHarness) execute(sc *PlanScenario) (PlanRunStats, error) {
	vc := &virtualClock{t: time.Unix(1_700_000_000, 0)}
	svc := plansvc.New(plansvc.Config{
		Faults:           sc.Spec,
		MaxAttempts:      sc.MaxAttempts,
		BreakerThreshold: sc.BreakerThreshold,
		BreakerCooldown:  sc.BreakerCooldown,
		Now:              vc.Now,
		Sleep:            vc.Sleep,
	})
	seq := ""
	for i, mi := range sc.Requests {
		if sc.Advances[i] > 0 {
			vc.Advance(sc.Advances[i])
		}
		opts := h.Menu[mi]
		plan, err := svc.PlanMobius(context.Background(), opts)
		if err != nil {
			return PlanRunStats{}, fmt.Errorf("request %d: %w", i, err)
		}
		if verr := plan.Validate(opts.Topology); verr != nil {
			return PlanRunStats{}, fmt.Errorf("request %d returned an invalid plan: %w", i, verr)
		}
		seq += plansvc.Fingerprint(plan)
	}
	if err := svc.CheckInvariants(); err != nil {
		return PlanRunStats{}, err
	}
	return PlanRunStats{Metrics: svc.Metrics(), Breaker: svc.BreakerState(), PlanSeq: foldSeq(seq)}, nil
}

// foldSeq collapses the concatenated fingerprint string to a short
// stable digest.
func foldSeq(s string) string {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

// checkPlanInvariants asserts the ladder conservation identities on a
// quiescent serial run.
func (h *PlanHarness) checkPlanInvariants(sc *PlanScenario, st PlanRunStats) error {
	m := st.Metrics
	if err := m.ConservationError(); err != nil {
		return err
	}
	if m.Requests != uint64(len(sc.Requests)) {
		return fmt.Errorf("accounted %d requests, sent %d", m.Requests, len(sc.Requests))
	}
	// Serial execution never coalesces or aborts a wait.
	if m.Coalesced != 0 || m.WaitAborts != 0 || m.Handoffs != 0 {
		return fmt.Errorf("serial run coalesced=%d waitAborts=%d handoffs=%d, want 0", m.Coalesced, m.WaitAborts, m.Handoffs)
	}
	// Every led request either solved or took the greedy floor; no
	// context deadlines exist on the virtual clock, so the solver never
	// degrades mid-flight.
	if m.Led != m.Solves+m.GreedyFallbacks {
		return fmt.Errorf("ladder conservation violated: Led %d != Solves %d + GreedyFallbacks %d", m.Led, m.Solves, m.GreedyFallbacks)
	}
	if m.DeadlineFallbacks != 0 {
		return fmt.Errorf("deadline fallbacks on a virtual clock: %d", m.DeadlineFallbacks)
	}
	// Injected failures decompose exactly: each retried attempt plus a
	// final failure per exhausted request (breaker shorts never reach
	// injection).
	exhausted := m.GreedyFallbacks - m.BreakerShorted
	if m.InjectedFailures != m.Retries+exhausted {
		return fmt.Errorf("injection accounting violated: InjectedFailures %d != Retries %d + exhausted %d",
			m.InjectedFailures, m.Retries, exhausted)
	}
	// A breaker short implies the breaker tripped at least once.
	if m.BreakerShorted > 0 && m.BreakerTrips == 0 {
		return fmt.Errorf("breaker shorted %d request(s) without ever tripping", m.BreakerShorted)
	}
	return nil
}

// RunPlanningConcurrent re-executes the scenario's request set with
// conc goroutines on a fresh service. Outcome counts are
// schedule-dependent (the breaker is shared global state), but the
// structural invariants are not: conservation, ladder accounting and
// cache validity must hold under any interleaving — this is the -race
// surface for single-flight and breaker state.
func (h *PlanHarness) RunPlanningConcurrent(seed int64, conc int) error {
	sc := h.PlanScenario(seed)
	vc := &virtualClock{t: time.Unix(1_700_000_000, 0)}
	svc := plansvc.New(plansvc.Config{
		Faults:           sc.Spec,
		MaxAttempts:      sc.MaxAttempts,
		BreakerThreshold: sc.BreakerThreshold,
		BreakerCooldown:  sc.BreakerCooldown,
		Now:              vc.Now,
		Sleep:            vc.Sleep,
	})
	var wg sync.WaitGroup
	errs := make([]error, conc)
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, mi := range sc.Requests {
				opts := h.Menu[(mi+g)%len(h.Menu)]
				plan, err := svc.PlanMobius(context.Background(), opts)
				if err != nil {
					errs[g] = fmt.Errorf("goroutine %d request %d: %w", g, i, err)
					return
				}
				if verr := plan.Validate(opts.Topology); verr != nil {
					errs[g] = fmt.Errorf("goroutine %d request %d invalid plan: %w", g, i, verr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("chaos: seed %d concurrent: %w", seed, err)
		}
	}
	if err := svc.CheckInvariants(); err != nil {
		return fmt.Errorf("chaos: seed %d concurrent: %w", seed, err)
	}
	m := svc.Metrics()
	if err := m.ConservationError(); err != nil {
		return fmt.Errorf("chaos: seed %d concurrent: %w", seed, err)
	}
	if m.Led != m.Solves+m.GreedyFallbacks {
		return fmt.Errorf("chaos: seed %d concurrent: Led %d != Solves %d + GreedyFallbacks %d",
			seed, m.Led, m.Solves, m.GreedyFallbacks)
	}
	return nil
}
