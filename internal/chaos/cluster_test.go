package chaos

import (
	"testing"
)

// TestClusterChaosMatrix sweeps seeds through the cluster harness:
// each derives a fleet scenario (2-4 servers, 2-3 tenant classes with
// mixed arrival processes, token budgets, deadlines, degrade patience,
// transient dispatch failures and up to two server losses), runs it
// with the paranoid per-event audit, checks conservation / fairness /
// failure-accounting invariants, and replays it bitwise.
func TestClusterChaosMatrix(t *testing.T) {
	h := NewClusterHarness()
	h.StoreScratch = t.TempDir()
	sawFaults, sawRelands, sawRejections := false, false, false
	sawRestarts, sawWarmRestart := false, false
	for seed := int64(1); seed <= 24; seed++ {
		rep, err := h.RunCluster(seed)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(rep)
		if rep.Report.ServerFailures > 0 {
			sawFaults = true
		}
		if rep.Report.ServerRestarts > 0 {
			sawRestarts = true
			if h.ClusterScenario(seed).Prewarm {
				sawWarmRestart = true
			}
		}
		if rep.Report.Rejected > 0 {
			sawRejections = true
		}
		for _, c := range rep.Report.Classes {
			if c.Relands > 0 {
				sawRelands = true
			}
		}
	}
	// The matrix must actually exercise the interesting paths; a sweep
	// of quiet scenarios proves nothing.
	if !sawFaults {
		t.Error("no seed produced a server failure; widen the scenario space")
	}
	if !sawRelands {
		t.Error("no seed re-landed a job after a server loss; widen the scenario space")
	}
	if !sawRejections {
		t.Error("no seed rejected a job; widen the scenario space")
	}
	if !sawRestarts {
		t.Error("no seed bounced a server; widen the scenario space")
	}
	if !sawWarmRestart {
		t.Error("no seed bounced a prewarmed server, so the fleet zero-solve-through-restart identity went untested")
	}
}

// TestClusterChaosConcurrent runs a block of seeds in parallel against
// one shared StepCache — the data-race surface for the pricing layer
// under `go test -race`. Each seed still checks its own invariants and
// bitwise replay, so a cache corruption shows up as a divergence even
// without the race detector.
func TestClusterChaosConcurrent(t *testing.T) {
	h := NewClusterHarness()
	seeds := make([]int64, 12)
	for i := range seeds {
		seeds[i] = int64(100 + i)
	}
	if err := h.RunClusterConcurrent(seeds, 4); err != nil {
		t.Fatal(err)
	}
}
