package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	"mobius/internal/cluster"
	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/plansvc"
)

// ClusterHarness stress-tests the fleet simulator the way PlanHarness
// stresses the planning service: from a single seed it derives a whole
// cluster scenario — fleet size, tenant classes with arrival processes
// and admission budgets, server losses, transient dispatch failures —
// runs it with the paranoid per-event audit on, and checks the
// invariants that must hold for every seed:
//
//   - job conservation, fleet-wide and per class: every submitted job
//     is accounted as exactly one of completed, rejected, shed or
//     failed on the drained report (no accepted job silently dropped);
//   - the Jain fairness index lies in [1/n, 1];
//   - failure accounting: server-loss counts match the scenario, a
//     loss-free scenario re-lands nothing, and a prewarmed fleet
//     performs exactly one solve per (server, distinct shape) no
//     matter what fails — re-landing is zero-solve;
//   - replaying the seed reproduces the full report fingerprint bit
//     for bit, cold or warm step cache.
//
// The concurrent fan-out runs many seeds in parallel against one
// shared StepCache — the -race surface for the pricing layer.
type ClusterHarness struct {
	// Cache is shared across every scenario the harness runs; pricing
	// is pure, so sharing is invisible to results (asserted by the
	// replay check, which mixes cold and warm executions).
	Cache *cluster.StepCache

	// StoreScratch, when set, backs restart scenarios with real
	// on-disk plan stores: every other restart seed runs with a fresh
	// store root under this directory (one per execution, removed
	// afterwards), so the warm-rejoin path exercises persist, close,
	// reopen and directory replay instead of the in-memory shortcut.
	// Empty keeps every scenario memory-only.
	StoreScratch string

	menu []cluster.Class
	topo *hw.Topology
}

// NewClusterHarness builds the default harness: solver-free job shapes
// on the 2+2 commodity box, so a seed costs milliseconds after the
// first pricing of each shape.
func NewClusterHarness() *ClusterHarness {
	return &ClusterHarness{
		Cache: cluster.NewStepCache(),
		topo:  hw.Commodity(hw.RTX3090Ti, 2, 2),
		menu: []cluster.Class{
			{Model: model.GPT3B, PartitionAlgo: partition.AlgoBalanced, BalancedStages: 4},
			{Model: model.GPT8B, PartitionAlgo: partition.AlgoBalanced, BalancedStages: 4},
			{Model: model.GPT3B, PartitionAlgo: partition.AlgoMinStage},
		},
	}
}

// ClusterScenario derives the fleet configuration for a seed. Every
// parameter stays inside the config's documented ranges, so the
// scenario always validates — asserted again per run.
func (h *ClusterHarness) ClusterScenario(seed int64) cluster.Config {
	rng := rand.New(rand.NewSource(seed))
	cfg := cluster.Config{
		Servers:          2 + rng.Intn(3),
		Topology:         h.topo,
		HorizonS:         float64(200 + rng.Intn(400)),
		Seed:             seed,
		QueueCap:         2 + rng.Intn(7),
		DispatchAttempts: 3 + rng.Intn(3),
		BreakerThreshold: 1 + rng.Intn(3),
		BreakerCooldownS: float64(5 + rng.Intn(16)),
		DetectLatencyS:   0.5 + 3.5*rng.Float64(),
		DispatchFailProb: 0.25 * rng.Float64() * float64(rng.Intn(2)),
		Prewarm:          rng.Intn(2) == 0,
		Paranoid:         true,
		Cache:            h.Cache,
	}
	nClasses := 2 + rng.Intn(2)
	for i := 0; i < nClasses; i++ {
		cl := h.menu[rng.Intn(len(h.menu))]
		cl.Name = fmt.Sprintf("t%d", i)
		cl.SLO = i
		cl.RatePerS = 0.01 + 0.11*rng.Float64()
		if rng.Intn(2) == 0 {
			cl.Arrival = cluster.ArrivalGamma
			cl.GammaShape = 0.3 + 1.2*rng.Float64()
		}
		cl.StepsMin = 1 + rng.Intn(2)
		cl.StepsMax = cl.StepsMin + rng.Intn(3)
		cl.CheckpointEvery = rng.Intn(4)
		if rng.Intn(2) == 0 {
			cl.TokenRatePerS = cl.RatePerS * (0.4 + 0.5*rng.Float64())
		}
		if rng.Intn(2) == 0 {
			cl.DeadlineS = float64(30 + rng.Intn(90))
		}
		if rng.Intn(2) == 0 {
			cl.DegradeAfterS = float64(20 + rng.Intn(60))
		}
		cfg.Classes = append(cfg.Classes, cl)
	}
	spec := &fault.Spec{Seed: seed}
	order := rng.Perm(cfg.Servers)
	if n := rng.Intn(3); n > 0 && n < cfg.Servers {
		for i := 0; i < n; i++ {
			spec.ServerFails = append(spec.ServerFails, fault.ServerFailFault{
				Server: order[i],
				At:     cfg.HorizonS * (0.1 + 0.6*rng.Float64()),
			})
		}
		order = order[n:]
	}
	// Optional bounces on servers that do not fail permanently. A
	// prewarmed fleet only bounces warm, preserving the exact zero-solve
	// invariant through the restart; a cold fleet may bounce cold too.
	if len(order) > 0 && rng.Intn(2) == 0 {
		for i, n := 0, 1+rng.Intn(2); i < n && i < len(order); i++ {
			rf := fault.ServerRestartFault{
				Server:          order[i],
				At:              cfg.HorizonS * (0.1 + 0.6*rng.Float64()),
				RestartLatencyS: 1 + 7*rng.Float64(),
			}
			if !cfg.Prewarm && rng.Intn(2) == 0 {
				rf.Cold = true
			}
			spec.ServerRestarts = append(spec.ServerRestarts, rf)
		}
	}
	if !spec.Empty() {
		cfg.Faults = spec
	}
	return cfg
}

// ClusterReport is the outcome of one cluster-chaos seed.
type ClusterReport struct {
	Seed   int64
	Report *cluster.Report
}

func (r *ClusterReport) String() string {
	rep := r.Report
	return fmt.Sprintf("cluster chaos seed %d: %d servers, %d jobs (%d done, %d rej, %d shed, %d failed), %d server losses, Jain %.3f",
		r.Seed, rep.Servers, rep.Submitted, rep.Completed, rep.Rejected, rep.Shed, rep.Failed, rep.ServerFailures, rep.Jain)
}

// RunCluster executes one seed: serial run, invariant checks, and a
// bitwise replay. A non-nil error means an invariant was violated.
func (h *ClusterHarness) RunCluster(seed int64) (*ClusterReport, error) {
	cfg := h.ClusterScenario(seed)
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("chaos: seed %d generated an invalid fleet spec: %w", seed, err)
		}
	}
	// Every other restart scenario runs over real on-disk stores; each
	// execution gets its own fresh root, so the replay's bitwise match
	// also proves disk persistence is invisible to the simulation.
	useDisk := h.StoreScratch != "" && cfg.Faults.HasServerRestarts() && seed%2 == 0
	runOnce := func() (*cluster.Report, error) {
		if !useDisk {
			return cluster.Run(cfg)
		}
		root, err := os.MkdirTemp(h.StoreScratch, "cluster-store-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(root)
		c := cfg
		c.StoreRoot = root
		return cluster.Run(c)
	}
	first, err := runOnce()
	if err != nil {
		return nil, fmt.Errorf("chaos: seed %d: %w", seed, err)
	}
	if err := h.checkClusterInvariants(cfg, first); err != nil {
		return nil, fmt.Errorf("chaos: seed %d: %w", seed, err)
	}
	replay, err := runOnce()
	if err != nil {
		return nil, fmt.Errorf("chaos: seed %d replay: %w", seed, err)
	}
	if a, b := first.Fingerprint(), replay.Fingerprint(); a != b {
		return nil, fmt.Errorf("chaos: seed %d replay diverged: %s vs %s", seed, a, b)
	}
	return &ClusterReport{Seed: seed, Report: first}, nil
}

// checkClusterInvariants asserts the fleet identities on a drained
// report.
func (h *ClusterHarness) checkClusterInvariants(cfg cluster.Config, rep *cluster.Report) error {
	if err := rep.Conservation(); err != nil {
		return err
	}
	n := 0
	for _, c := range rep.Classes {
		if c.Submitted > 0 {
			n++
		}
	}
	if n > 0 && (rep.Jain < 1/float64(n)-1e-9 || rep.Jain > 1+1e-9) {
		return fmt.Errorf("Jain index %g outside [1/%d, 1]", rep.Jain, n)
	}
	wantFails, wantRestarts := 0, 0
	if cfg.Faults != nil {
		wantFails = len(cfg.Faults.ServerFails)
		wantRestarts = len(cfg.Faults.ServerRestarts)
	}
	if rep.ServerFailures != wantFails {
		return fmt.Errorf("ServerFailures %d, scenario declared %d", rep.ServerFailures, wantFails)
	}
	if rep.ServerRestarts != wantRestarts {
		return fmt.Errorf("ServerRestarts %d, scenario declared %d", rep.ServerRestarts, wantRestarts)
	}
	relands := 0
	for _, c := range rep.Classes {
		relands += c.Relands
	}
	if wantFails == 0 && wantRestarts == 0 && relands != 0 {
		return fmt.Errorf("loss-free scenario re-landed %d job(s)", relands)
	}
	if cfg.Prewarm {
		// Restart scenarios on a prewarmed fleet are warm-only by
		// construction, so the zero-solve identity holds through every
		// bounce: re-admission never re-solves.
		if want := uint64(cfg.Servers) * uint64(h.distinctShapes(cfg)); rep.PlanSolves != want {
			return fmt.Errorf("prewarmed fleet performed %d solves, want exactly %d (servers x distinct shapes)",
				rep.PlanSolves, want)
		}
	}
	if rep.BreakerTrips > 0 && rep.DispatchFailures == 0 {
		return fmt.Errorf("breaker tripped %d time(s) without a dispatch failure", rep.BreakerTrips)
	}
	return nil
}

// distinctShapes counts the distinct plan keys among the scenario's
// classes — what a prewarmed server solves once each.
func (h *ClusterHarness) distinctShapes(cfg cluster.Config) int {
	seen := map[plansvc.Key]bool{}
	for _, cl := range cfg.Classes {
		opts := core.Options{
			Model:          cl.Model,
			Topology:       cfg.Topology,
			Microbatches:   cl.Microbatches,
			PartitionAlgo:  cl.PartitionAlgo,
			BalancedStages: cl.BalancedStages,
		}
		k, err := plansvc.KeyOf(opts)
		if err != nil {
			continue
		}
		seen[k] = true
	}
	return len(seen)
}

// RunClusterConcurrent fans seeds out over goroutines sharing the
// harness cache — the -race surface for the shared pricing layer. Each
// seed's own run stays single-goroutine (that is the simulator's
// contract); the concurrency is across scenarios.
func (h *ClusterHarness) RunClusterConcurrent(seeds []int64, conc int) error {
	if conc <= 0 {
		conc = 4
	}
	sem := make(chan struct{}, conc)
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, seed int64) {
			defer wg.Done()
			defer func() { <-sem }()
			_, errs[i] = h.RunCluster(seed)
		}(i, seed)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
