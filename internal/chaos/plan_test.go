package chaos

import (
	"testing"
)

// TestPlanningChaosSeeds drives seed-derived planner-fault scenarios
// through the planning service: injected transient failures and
// latency, randomized retry budgets and breaker settings, and a
// randomized request sequence with cooldown gaps. Each seed asserts the
// conservation identities, cache validity, and a bitwise replay.
func TestPlanningChaosSeeds(t *testing.T) {
	h := NewPlanHarness()
	var retries, trips, shorted, probes, injected uint64
	for seed := int64(1); seed <= 24; seed++ {
		rep, err := h.RunPlanning(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := rep.Stats.Metrics
		retries += m.Retries
		trips += m.BreakerTrips
		shorted += m.BreakerShorted
		probes += m.BreakerProbes
		injected += m.InjectedFailures
		t.Log(rep)
	}
	// Coverage: across the seed sweep the scenarios must actually have
	// exercised every rung of the ladder, or the harness is testing
	// nothing.
	if injected == 0 {
		t.Error("no seed injected a solver failure; fault derivation is broken")
	}
	if retries == 0 {
		t.Error("no seed retried a transient failure")
	}
	if trips == 0 {
		t.Error("no seed tripped the circuit breaker")
	}
	if shorted == 0 {
		t.Error("no seed short-circuited a request on an open breaker")
	}
	if probes == 0 {
		t.Error("no seed half-opened the breaker with a probe")
	}
}

// TestPlanningChaosConcurrent runs the same scenarios with goroutine
// fan-out. Outcome counts are schedule-dependent, so only structural
// invariants are asserted — this is the -race surface for the
// single-flight table and breaker.
func TestPlanningChaosConcurrent(t *testing.T) {
	h := NewPlanHarness()
	for seed := int64(1); seed <= 8; seed++ {
		if err := h.RunPlanningConcurrent(seed, 8); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
