package chaos

import (
	"sync"
	"testing"
)

var (
	storeHarnessOnce sync.Once
	storeHarness     *StoreHarness
	storeHarnessErr  error
)

// getStoreHarness plans the template entry once and shares it across
// tests and fuzz iterations.
func getStoreHarness(t testing.TB) *StoreHarness {
	t.Helper()
	storeHarnessOnce.Do(func() { storeHarness, storeHarnessErr = NewStoreHarness() })
	if storeHarnessErr != nil {
		t.Fatal(storeHarnessErr)
	}
	return storeHarness
}

// TestStoreChaosMatrix sweeps seeds through the store harness: each
// derives a fault scenario (clean failures, torn writes, latency) and
// an operation sequence, executes it against a real directory, checks
// the recovered state against the decision mirror, and replays it
// bitwise. The matrix must collectively exercise every injection mode —
// a sweep of quiet scenarios proves nothing.
func TestStoreChaosMatrix(t *testing.T) {
	h := getStoreHarness(t)
	scratch := t.TempDir()
	var torn, failed, survivors, quarantined uint64
	for seed := int64(1); seed <= 24; seed++ {
		rep, err := h.RunStore(seed, scratch)
		if err != nil {
			t.Fatal(err)
		}
		t.Log(rep)
		torn += rep.Stats.Metrics.TornWrites
		failed += rep.Stats.Metrics.InjectedFailures
		survivors += uint64(rep.Stats.Report.Entries)
		quarantined += uint64(rep.Stats.Report.Quarantined)
	}
	if torn == 0 {
		t.Error("no seed tore a write; widen the scenario space")
	}
	if failed == 0 {
		t.Error("no seed failed an operation cleanly; widen the scenario space")
	}
	if survivors == 0 {
		t.Error("no seed recovered a single entry; the fault rates drown the signal")
	}
	if quarantined == 0 {
		t.Error("no seed quarantined a record; torn writes are not reaching disk")
	}
}

// TestStoreChaosConcurrent fans seeds out over goroutines, each in its
// own directory — the -race surface for the write-behind queue, worker
// and counters.
func TestStoreChaosConcurrent(t *testing.T) {
	h := getStoreHarness(t)
	seeds := make([]int64, 12)
	for i := range seeds {
		seeds[i] = int64(200 + i)
	}
	if err := h.RunStoreConcurrent(seeds, 4, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

// FuzzStoreChaosInvariants lets the fuzzer search the seed space for a
// scenario where the store's recovery diverges from the mirror.
func FuzzStoreChaosInvariants(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Add(int64(-7))
	f.Add(int64(1 << 33))
	f.Fuzz(func(t *testing.T, seed int64) {
		h := getStoreHarness(t)
		if _, err := h.RunStore(seed, t.TempDir()); err != nil {
			t.Fatal(err)
		}
	})
}
