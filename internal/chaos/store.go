package chaos

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/planstore"
)

// StoreHarness stress-tests the crash-safe plan store the way the main
// harness stresses the integrity layer: from a single seed it derives a
// store-fault scenario — clean write failures, torn writes at derived
// offsets, injected device latency — and an operation sequence over a
// small key population, executes it against a real directory, and
// checks the invariants that must hold for every seed:
//
//   - the harness mirrors the store's fault decisions (same hash
//     inputs: seed, rule, key, operation sequence number) to compute
//     the exact expected final disk state, so Load must recover
//     precisely the entries whose last effective write was clean and
//     quarantine precisely the torn ones — no survivor lost, no
//     corpse resurrected;
//   - the store's own counters (persisted, deletes, injected
//     failures, torn writes, injected latency) match the mirror
//     exactly, with zero drops and zero real I/O errors;
//   - quarantine sticks: a second replay of the damaged directory
//     sees only the survivors;
//   - re-running the scenario in a fresh directory reproduces
//     counters, load report and the recovered key set bit for bit.
type StoreHarness struct {
	plan *core.Plan
	topo *hw.Topology
}

// NewStoreHarness builds the template plan every scenario persists:
// the cheapest real validated plan (balanced 4-stage GPT-3B on the 2+2
// commodity box), shared across all seeds and entries — scenarios vary
// keys and signatures, not plan content.
func NewStoreHarness() (*StoreHarness, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	plan, err := core.PlanMobius(core.Options{
		Model: model.GPT3B, Topology: topo,
		PartitionAlgo: partition.AlgoBalanced, BalancedStages: 4,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: store template plan: %w", err)
	}
	return &StoreHarness{plan: plan, topo: topo}, nil
}

// StoreChaosOp is one step of a scenario's operation sequence.
type StoreChaosOp struct {
	// KeyIdx indexes the scenario's key population.
	KeyIdx int
	// Delete removes the key instead of writing it.
	Delete bool
}

// StoreScenario is the derived configuration for one seed.
type StoreScenario struct {
	Spec *fault.Spec
	Keys []planstore.Key
	Ops  []StoreChaosOp
}

// StoreScenario derives the scenario for a seed. Every clause stays
// inside its documented ranges — torn mode only on put-capable rules,
// torn offsets only alongside torn mode — so the spec always validates,
// asserted again per run.
func (h *StoreHarness) StoreScenario(seed int64) *StoreScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := &StoreScenario{Spec: &fault.Spec{Seed: seed}}
	for i, n := 0, 2+rng.Intn(5); i < n; i++ {
		sc.Keys = append(sc.Keys, planstore.Key(
			sha256.Sum256([]byte(fmt.Sprintf("store-chaos-%d-%d", seed, i)))))
	}
	ops := []string{"put", "delete", "*"}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		f := fault.StoreFault{
			Op:          ops[rng.Intn(len(ops))],
			Mode:        fault.StoreModeFail,
			Probability: 0.7 * rng.Float64(),
			LatencyMS:   2 * rng.Float64(),
		}
		// Torn writes only make sense where a write can happen; Validate
		// rejects a torn delete rule outright.
		if f.Op != "delete" && rng.Intn(2) == 0 {
			f.Mode = fault.StoreModeTorn
			if rng.Intn(2) == 0 {
				f.TornAtByte = 1 + rng.Intn(200)
			}
		}
		sc.Spec.StoreFaults = append(sc.Spec.StoreFaults, f)
	}
	for i, n := 0, 15+rng.Intn(26); i < n; i++ {
		sc.Ops = append(sc.Ops, StoreChaosOp{
			KeyIdx: rng.Intn(len(sc.Keys)),
			Delete: rng.Intn(4) == 0,
		})
	}
	return sc
}

// storeMirror is the expected outcome, computed without touching the
// store: the harness replays the scenario's fault decisions through the
// public fault.Spec.StoreOp with the store's exact hash inputs.
type storeMirror struct {
	intact   map[planstore.Key]bool
	torn     map[planstore.Key]bool
	persisted, deletes,
	failures, tornWrites uint64
	latencyS float64
}

// mirror computes the expected final disk state. Operation i carries
// sequence number i — the store assigns sequence numbers at enqueue, in
// call order — and keys hash with the store's documented FNV-1a fold.
func (h *StoreHarness) mirror(sc *StoreScenario) *storeMirror {
	m := &storeMirror{intact: map[planstore.Key]bool{}, torn: map[planstore.Key]bool{}}
	for i, op := range sc.Ops {
		key := sc.Keys[op.KeyIdx]
		opName := fault.StoreOpPut
		if op.Delete {
			opName = fault.StoreOpDelete
		}
		d := sc.Spec.StoreOp(opName, fnvKey(key), uint64(i))
		m.latencyS += d.LatencyS
		if d.Fail {
			m.failures++
			continue
		}
		switch {
		case op.Delete:
			// Removing an absent file still completes (idempotent).
			delete(m.intact, key)
			delete(m.torn, key)
			m.deletes++
		case d.Torn:
			// The torn prefix lands on the final path, destroying any
			// intact predecessor; a strict prefix can never decode.
			delete(m.intact, key)
			m.torn[key] = true
			m.tornWrites++
		default:
			delete(m.torn, key)
			m.intact[key] = true
			m.persisted++
		}
	}
	return m
}

// fnvKey folds a key exactly like the store salts its fault stream:
// FNV-1a over the raw key bytes.
func fnvKey(k planstore.Key) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range k {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// StoreRunStats is the deterministic outcome of one scenario execution.
type StoreRunStats struct {
	Metrics planstore.Metrics
	Report  planstore.LoadReport
	// KeySet digests the sorted recovered key set; replays must
	// reproduce it exactly.
	KeySet string
}

// StoreReport is the outcome of one store-chaos seed.
type StoreReport struct {
	Seed     int64
	Scenario *StoreScenario
	Stats    StoreRunStats
}

func (r *StoreReport) String() string {
	m := r.Stats.Metrics
	return fmt.Sprintf("store chaos seed %d: %d ops over %d keys, %d persisted, %d deleted, %d failed, %d torn -> %d loaded, %d quarantined",
		r.Seed, len(r.Scenario.Ops), len(r.Scenario.Keys),
		m.Persisted, m.Deletes, m.InjectedFailures, m.TornWrites,
		r.Stats.Report.Entries, r.Stats.Report.Quarantined)
}

// RunStore executes the store-chaos scenario for a seed — one execution
// checked against the mirror, then a bitwise replay in a fresh
// directory. scratch is the parent for the scenario's store
// directories (a test passes t.TempDir()). A non-nil error means an
// invariant was violated.
func (h *StoreHarness) RunStore(seed int64, scratch string) (*StoreReport, error) {
	sc := h.StoreScenario(seed)
	if err := sc.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: seed %d generated an invalid store spec: %w", seed, err)
	}
	first, err := h.executeStore(sc, scratch)
	if err != nil {
		return nil, fmt.Errorf("chaos: seed %d: %w", seed, err)
	}
	if err := h.checkStoreInvariants(sc, first); err != nil {
		return nil, fmt.Errorf("chaos: seed %d: %w", seed, err)
	}
	replay, err := h.executeStore(sc, scratch)
	if err != nil {
		return nil, fmt.Errorf("chaos: seed %d replay: %w", seed, err)
	}
	if first != replay {
		return nil, fmt.Errorf("chaos: seed %d replay diverged:\n  first  %+v\n  replay %+v", seed, first, replay)
	}
	return &StoreReport{Seed: seed, Scenario: sc, Stats: first}, nil
}

// executeStore runs the scenario once in a fresh directory under
// scratch and returns the deterministic outcome.
func (h *StoreHarness) executeStore(sc *StoreScenario, scratch string) (StoreRunStats, error) {
	dir, err := os.MkdirTemp(scratch, "store-chaos-*")
	if err != nil {
		return StoreRunStats{}, err
	}
	defer os.RemoveAll(dir)
	s, err := planstore.Open(planstore.Config{
		Dir:    dir,
		Faults: sc.Spec,
		// Injected latency is accounted in the metrics; burning real
		// wall clock on it would only slow the matrix down.
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		return StoreRunStats{}, err
	}
	defer s.Close()
	for _, op := range sc.Ops {
		key := sc.Keys[op.KeyIdx]
		if op.Delete {
			s.Delete(key)
			continue
		}
		s.Put(planstore.Entry{
			Key:      key,
			ModelSig: uint64(op.KeyIdx + 1),
			Plan:     h.plan,
			Topology: h.topo,
		})
	}
	s.Flush()
	entries, rep, err := s.Load()
	if err != nil {
		return StoreRunStats{}, fmt.Errorf("load aborted: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if verr := e.Plan.Validate(e.Topology); verr != nil {
			return StoreRunStats{}, fmt.Errorf("recovered entry %s fails validation: %w", e.Key, verr)
		}
		names = append(names, e.Key.String())
	}
	sort.Strings(names)
	seq := ""
	for _, n := range names {
		seq += n
	}
	// Quarantine must stick: replaying the damaged directory sees only
	// the survivors, with nothing left to quarantine.
	_, rep2, err := s.Load()
	if err != nil {
		return StoreRunStats{}, fmt.Errorf("second load aborted: %w", err)
	}
	if rep2.Entries != rep.Entries || rep2.Quarantined != 0 {
		return StoreRunStats{}, fmt.Errorf("quarantine did not stick: first %+v, second %+v", rep, rep2)
	}
	m := s.Metrics()
	// The second load overwrote the load-side counters; restore the
	// first replay's so the stats stay comparable.
	m.LoadedEntries = uint64(rep.Entries)
	m.QuarantinedRecords = uint64(rep.Quarantined)
	m.StaleRecords = uint64(rep.Stale)
	m.InvalidRecords = uint64(rep.Invalid)
	return StoreRunStats{Metrics: m, Report: rep, KeySet: foldSeq(seq)}, nil
}

// checkStoreInvariants compares one execution against the mirror.
func (h *StoreHarness) checkStoreInvariants(sc *StoreScenario, st StoreRunStats) error {
	m := h.mirror(sc)
	if st.Report.Entries != len(m.intact) {
		return fmt.Errorf("recovered %d entries, mirror expects %d", st.Report.Entries, len(m.intact))
	}
	if st.Report.Quarantined != len(m.torn) {
		return fmt.Errorf("quarantined %d records, mirror expects %d torn", st.Report.Quarantined, len(m.torn))
	}
	if st.Report.Stale != 0 || st.Report.Invalid != 0 {
		return fmt.Errorf("scenario injects no stale or invalid records, got %+v", st.Report)
	}
	keys := make([]string, 0, len(m.intact))
	for k := range m.intact {
		keys = append(keys, k.String())
	}
	sort.Strings(keys)
	want := ""
	for _, k := range keys {
		want += k
	}
	if st.KeySet != foldSeq(want) {
		return fmt.Errorf("recovered key set diverges from the mirror's survivors")
	}
	got := st.Metrics
	if got.Persisted != m.persisted || got.Deletes != m.deletes ||
		got.InjectedFailures != m.failures || got.TornWrites != m.tornWrites {
		return fmt.Errorf("counters diverge from mirror: store persisted/deletes/failures/torn %d/%d/%d/%d, mirror %d/%d/%d/%d",
			got.Persisted, got.Deletes, got.InjectedFailures, got.TornWrites,
			m.persisted, m.deletes, m.failures, m.tornWrites)
	}
	if diff := got.InjectedLatencyS - m.latencyS; diff > 1e-12 || diff < -1e-12 {
		return fmt.Errorf("injected latency %.9fs, mirror %.9fs", got.InjectedLatencyS, m.latencyS)
	}
	if got.WriteDrops != 0 || got.IOErrors != 0 {
		return fmt.Errorf("serial scenario dropped %d writes, hit %d real I/O errors", got.WriteDrops, got.IOErrors)
	}
	return nil
}

// RunStoreConcurrent fans seeds out over goroutines, each scenario in
// its own directory under scratch — the -race surface for the store's
// queue, worker and counter paths.
func (h *StoreHarness) RunStoreConcurrent(seeds []int64, conc int, scratch string) error {
	if conc <= 0 {
		conc = 4
	}
	sem := make(chan struct{}, conc)
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, seed int64) {
			defer wg.Done()
			defer func() { <-sem }()
			_, errs[i] = h.RunStore(seed, scratch)
		}(i, seed)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
