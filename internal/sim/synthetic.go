package sim

// Synthetic scale topologies: parameterized islands of contending
// transfer chains, built through the streaming Builder. One generator
// serves the scale benchmarks (scale_test.go), the perf gates
// (perf_test.go), and `mobius-sim -synthetic-flows` — so the numbers the
// CLI prints are the numbers the gates hold.
//
// An island is one root-complex resource, a few links, and one engine;
// its streams are chains of transfers (each hop depends on the previous)
// headed by a small compute on the island engine. Islands share nothing,
// so each island is exactly one shard: island count and size directly
// control the partition shape. SkewFrac concentrates a fraction of all
// flows into one giant island — the adversarial partition (one huge
// shard plus many tiny ones) that serializes static shard assignment and
// that work-stealing exists to spread.

// SyntheticSpec sizes a synthetic scale topology. The zero value of every
// field except Flows picks a sensible default.
type SyntheticSpec struct {
	// Flows is the total number of transfer tasks to emit.
	Flows int
	// Streams is the number of concurrent transfer chains per island
	// (default 4).
	Streams int
	// Chain is the number of dependent transfers per stream (default 8).
	Chain int
	// Links is the number of link resources per island (default 4);
	// streams round-robin over them, all contending on the island's root
	// complex.
	Links int
	// SkewFrac, in [0,1), is the fraction of Flows concentrated into one
	// giant island emitted first. Zero builds a uniform topology.
	SkewFrac float64
}

func (sp SyntheticSpec) withDefaults() SyntheticSpec {
	if sp.Streams <= 0 {
		sp.Streams = 4
	}
	if sp.Chain <= 0 {
		sp.Chain = 8
	}
	if sp.Links <= 0 {
		sp.Links = 4
	}
	return sp
}

// synthMix is a splitmix64-style hash over the (island, stream, hop)
// coordinates. Sizes and durations derive from it so they carry full
// mantissa richness: completion instants in different islands then tie
// either exactly (bit-equal, which the canonical event order handles) or
// by more than the scheduler's float-dust slack — never in between,
// where the serial loop's same-instant batching and the sharded loop's
// per-shard batching could disagree.
func synthMix(island, st, k int) uint64 {
	h := uint64(island)*0x9e3779b97f4a7c15 + uint64(st)*0xbf58476d1ce4e5b9 + uint64(k)*0x94d049bb133111eb
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// synthFrac maps the hash to [0,1) with 52 significant bits.
func synthFrac(h uint64) float64 {
	return float64(h>>12) / float64(uint64(1)<<52)
}

func synthBytes(island, st, k int) float64 {
	return 64e6 * (1 + 12*synthFrac(synthMix(island, st, k)))
}

func synthDur(island, st int) Time {
	return Time(1e-5 * (1 + 12*synthFrac(synthMix(island, st, 1<<20))))
}

// BuildSynthetic emits the topology described by spec into s and returns
// the number of transfer flows created (== spec.Flows for positive
// inputs). Generation is purely arithmetic — the same spec always builds
// the identical DAG.
func BuildSynthetic(s *Sim, spec SyntheticSpec) int {
	sp := spec.withDefaults()
	b := s.NewBuilder()
	var linkScratch []*Resource
	total, island := 0, 0

	// emitIsland adds one island with up to streams chains, stopping after
	// flowsCap transfers; returns how many it emitted.
	emitIsland := func(streams, flowsCap int) int {
		rc := s.NewResource("rc", 13.1e9)
		links := linkScratch[:0]
		for i := 0; i < sp.Links; i++ {
			links = append(links, s.NewResource("ln", 26.2e9))
		}
		linkScratch = links
		eng := s.NewEngine("eng")
		emitted := 0
		for st := 0; st < streams && emitted < flowsCap; st++ {
			prev := b.Compute("hd", eng, synthDur(island, st))
			for k := 0; k < sp.Chain && emitted < flowsCap; k++ {
				b.Dep(prev)
				prev = b.Transfer("fl", nil, s.Path(links[st%len(links)], rc), synthBytes(island, st, k), st%4)
				emitted++
			}
		}
		island++
		return emitted
	}

	if sp.SkewFrac > 0 && sp.Flows > 0 {
		giant := int(float64(sp.Flows) * sp.SkewFrac)
		if giant > 0 {
			streams := (giant + sp.Chain - 1) / sp.Chain
			total += emitIsland(streams, giant)
		}
	}
	per := sp.Streams * sp.Chain
	for total < sp.Flows {
		n := sp.Flows - total
		if n > per {
			n = per
		}
		total += emitIsland(sp.Streams, n)
	}
	return total
}
