package sim

import (
	"math"
	"math/rand"

	"testing"
)

// admitForTest arms all dependency-free tasks and drains the cascade so
// their flows are active, mirroring what Run's seeding does. It returns
// the serial shard the event loop runs in, for direct state inspection.
func admitForTest(s *Sim) *shard {
	sh := s.serialShard()
	for _, t := range s.tasks {
		if t.state == statePending && t.waiting == 0 {
			sh.ready = append(sh.ready, t)
		}
	}
	sh.drain()
	return sh
}

func TestComponentsDisjointResourcesStaySeparate(t *testing.T) {
	s := New()
	r1 := s.NewResource("r1", 1e9)
	r2 := s.NewResource("r2", 1e9)
	s.Transfer("a", nil, Path(r1), 1e9, 0)
	s.Transfer("b", nil, Path(r2), 1e9, 0)
	sh := admitForTest(s)
	if sh.findRoot(r1) == sh.findRoot(r2) {
		t.Fatal("flows on disjoint resources must be in separate components")
	}
	ca, cb := sh.findRoot(r1).comp, sh.findRoot(r2).comp
	if ca == nil || cb == nil || len(ca.flows) != 1 || len(cb.flows) != 1 {
		t.Fatalf("each component should hold exactly its own flow: %+v %+v", ca, cb)
	}
}

func TestComponentsBridgeFlowMerges(t *testing.T) {
	s := New()
	r1 := s.NewResource("r1", 1e9)
	r2 := s.NewResource("r2", 1e9)
	s.Transfer("a", nil, Path(r1), 1e9, 0)
	s.Transfer("b", nil, Path(r2), 1e9, 0)
	s.Transfer("bridge", nil, Path(r1, r2), 1e9, 0)
	sh := admitForTest(s)
	root := sh.findRoot(r1)
	if root != sh.findRoot(r2) {
		t.Fatal("bridge flow must union the two resource groups")
	}
	if root.comp == nil || len(root.comp.flows) != 3 {
		t.Fatalf("merged component must hold all three flows, got %+v", root.comp)
	}
	// Every flow's compIdx must agree with its slot after the merge.
	for i, f := range root.comp.flows {
		if f.compIdx != i {
			t.Fatalf("flow %d carries compIdx %d at slot %d", f.task.id, f.compIdx, i)
		}
	}
}

func TestComponentsRebuildSplitsAfterBridgeFinishes(t *testing.T) {
	s := New()
	r1 := s.NewResource("r1", 10e9)
	r2 := s.NewResource("r2", 10e9)
	// Long-lived flows on each side, short bridge that merges them.
	s.Transfer("a", nil, Path(r1), 100e9, 0)
	s.Transfer("b", nil, Path(r2), 100e9, 0)
	s.Transfer("bridge", nil, Path(r1, r2), 1e6, 0)
	sh := admitForTest(s)
	sh.recomputeRates()
	if sh.findRoot(r1) != sh.findRoot(r2) {
		t.Fatal("expected merged component while bridge is active")
	}
	// Force the rebuild (normally amortized over finishes).
	sh.rebuildComponent(sh.findRoot(r1).comp)
	if sh.findRoot(r1) != sh.findRoot(r2) {
		t.Fatal("bridge still active: rebuild must keep the merge")
	}
	// Finish the bridge via the simulator and rebuild: split recovered.
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sh.flows) != 0 {
		t.Fatalf("all flows should have completed, %d active", len(sh.flows))
	}
}

// TestComponentRecomputeIsLocal pins the perf contract the incremental
// scheduler exists for: an event in one component must not re-waterfill
// flows in another. We detect recomputation through the nextRate scratch,
// which waterFill overwrites for every flow it touches.
func TestComponentRecomputeIsLocal(t *testing.T) {
	s := New()
	r1 := s.NewResource("r1", 10e9)
	r2 := s.NewResource("r2", 10e9)
	s.Transfer("a", nil, Path(r1), 100e9, 0)
	s.Transfer("b", nil, Path(r2), 100e9, 0)
	sh := admitForTest(s)
	sh.recomputeRates()

	fa, fb := sh.flows[0], sh.flows[1]
	// Poison the scratch: a recompute of that flow would overwrite it.
	fa.nextRate = -1
	fb.nextRate = -1
	// Perturb only r2's component.
	s.Transfer("b2", nil, Path(r2), 1e9, 0)
	admitForTest(s)
	sh.recomputeRates()
	if fa.nextRate != -1 {
		t.Fatal("admitting a flow on r2 recomputed the r1 component")
	}
	if fb.nextRate == -1 {
		t.Fatal("r2 component was not recomputed after admission")
	}
	almost(t, fb.rate, 5e9, 1, "r2 flows split capacity")
	almost(t, fa.rate, 10e9, 1, "r1 flow keeps full capacity")
}

func TestCapacityEventDirtiesOnlyItsComponent(t *testing.T) {
	s := New()
	r1 := s.NewResource("r1", 10e9)
	r2 := s.NewResource("r2", 10e9)
	s.Transfer("a", nil, Path(r1), 100e9, 0)
	s.Transfer("b", nil, Path(r2), 100e9, 0)
	sh := admitForTest(s)
	sh.recomputeRates()
	fa, fb := sh.flows[0], sh.flows[1]
	fa.nextRate = -1
	fb.nextRate = -1

	r2.capacity = 5e9
	sh.touchResource(r2)
	sh.recomputeRates()
	if fa.nextRate != -1 {
		t.Fatal("capacity change on r2 recomputed the r1 component")
	}
	almost(t, fb.rate, 5e9, 1, "r2 flow tracks new capacity")
	almost(t, fa.rate, 10e9, 1, "r1 flow untouched")
}

func TestFlowHeapOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := New()
	var h flowHeap
	var flows []*flow
	for i := 0; i < 200; i++ {
		f := &flow{task: &Task{id: i}, heapIdx: -1}
		f.pred = Time(r.Float64() * 100)
		if i%17 == 0 {
			f.pred = math.Inf(1) // starved flows sink to the bottom
		}
		flows = append(flows, f)
		h.push(f)
	}
	_ = s
	// Random re-keys with fix, and random removals.
	for i := 0; i < 100; i++ {
		f := flows[r.Intn(len(flows))]
		if f.heapIdx < 0 {
			continue
		}
		if r.Intn(3) == 0 {
			h.remove(f)
			continue
		}
		f.pred = Time(r.Float64() * 100)
		h.fix(f)
	}
	// Drain: predictions must come out non-decreasing, ties by id.
	var last *flow
	for h.Len() > 0 {
		f := h.popTop()
		if f.heapIdx != -1 {
			t.Fatal("popped flow retains heap index")
		}
		if last != nil {
			if f.pred < last.pred {
				t.Fatalf("heap order violated: %g after %g", f.pred, last.pred)
			}
			if f.pred == last.pred && f.task.id < last.task.id {
				t.Fatalf("tie-break violated: id %d after %d", f.task.id, last.task.id)
			}
		}
		last = f
	}
}

// TestLazySettlementExactness: a flow whose rate never changes is settled
// exactly once; its carried accounting must still equal payload bytes.
func TestLazySettlementExactness(t *testing.T) {
	s := New()
	rc := s.NewResource("rc", 10e9)
	e := s.NewEngine("e")
	// Computes create events that previously swept every flow; the flow
	// itself runs at a constant rate through all of them.
	s.Transfer("t", nil, Path(rc), 20e9, 0)
	prev := s.Compute("c0", e, 0.3)
	for i := 0; i < 4; i++ {
		prev = s.Compute("c", e, 0.3, prev)
	}
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 2, 1e-9, "makespan")
	almost(t, rc.Carried(), 20e9, 1, "carried settles exactly despite lazy progress")
	if errs := s.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants: %v", errs)
	}
}

// TestFlowStructPooling: finished flows' structs are recycled into later
// admissions instead of burning the allocator.
func TestFlowStructPooling(t *testing.T) {
	s := New()
	rc := s.NewResource("rc", 10e9)
	var prev *Task
	for i := 0; i < 6; i++ {
		prev = s.Transfer("t", nil, Path(rc), 1e9, 0, prev)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.serial.flowPool) == 0 {
		t.Fatal("flow pool empty after chained transfers; structs are not recycled")
	}
}
