package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// This file is the differential gate of the incremental scheduler: for
// randomized chaos topologies — shared root complexes, isolated links,
// cross-group bridges that force component merges, degradation windows,
// retries, corruption, permanent failures — the incremental
// component-local scheduler must produce BITWISE-identical task
// timelines, per-resource traffic, and invariant-check results to the
// retained global recompute oracle. Any divergence, even one ulp, means
// the component decomposition changed an observable schedule.

// timelineEvent is one observer notification with the timestamp's exact
// bit pattern.
type timelineEvent struct {
	taskID  int
	kind    string
	timeBit uint64
}

type timelineObserver struct {
	events []timelineEvent
}

func (o *timelineObserver) TaskStarted(t *Task, at Time) {
	o.events = append(o.events, timelineEvent{t.ID(), "start", math.Float64bits(at)})
}

func (o *timelineObserver) TaskFinished(t *Task, at Time) {
	o.events = append(o.events, timelineEvent{t.ID(), "finish", math.Float64bits(at)})
}

// runRecord is everything observable about one run, bit-exact.
type runRecord struct {
	makespanBits uint64
	errText      string
	events       []timelineEvent
	taskEnds     []uint64 // per task: endAt bits
	taskStarts   []uint64
	carried      []uint64 // per resource: carried bits
	invariants   []string
}

// diffScenario builds one randomized chaos topology and DAG into s. The
// construction is a pure function of the rng stream so both scheduler
// modes see identical inputs.
func diffScenario(r *rand.Rand, s *Sim) {
	// Groups of resources: a shared root complex plus private links.
	// Fixed "nice" capacities appear alongside random ones so exact
	// cross-component rate ties (symmetric topologies) are exercised.
	nGroups := 2 + r.Intn(4)
	type group struct {
		rc    *Resource
		links []*Resource
	}
	groups := make([]group, nGroups)
	var allRes []*Resource
	for g := range groups {
		cap := 13.1e9
		if r.Intn(2) == 0 {
			cap = 1e9 * (4 + 12*r.Float64())
		}
		rc := s.NewResource(fmt.Sprintf("rc%d", g), cap)
		groups[g].rc = rc
		allRes = append(allRes, rc)
		for l := 0; l < 1+r.Intn(3); l++ {
			lcap := 26.2e9
			if r.Intn(2) == 0 {
				lcap = 1e9 * (8 + 24*r.Float64())
			}
			lr := s.NewResource(fmt.Sprintf("g%d.link%d", g, l), lcap)
			groups[g].links = append(groups[g].links, lr)
			allRes = append(allRes, lr)
		}
	}

	engines := make([]*Engine, 1+r.Intn(4))
	for i := range engines {
		engines[i] = s.NewEngine(fmt.Sprintf("eng%d", i))
	}
	pool := s.NewMemPool("mem", 256)

	if r.Intn(3) == 0 {
		s.TransferLatency = Time(r.Float64() * 5e-4)
	}
	if r.Intn(3) == 0 {
		seed := r.Int63()
		s.RetryPolicy = func(t *Task) (int, Time) {
			h := uint64(seed) ^ uint64(t.ID())*0x9e3779b97f4a7c15
			h ^= h >> 33
			if h%7 == 0 {
				return 1 + int(h%2), Time(1e-4)
			}
			return 0, 0
		}
	}
	if r.Intn(3) == 0 {
		seed := r.Int63()
		s.CorruptionPolicy = func(t *Task, attempt int) bool {
			h := uint64(seed) ^ uint64(t.ID())*0xbf58476d1ce4e5b9 ^ uint64(attempt)<<32
			h ^= h >> 29
			return h%11 == 0
		}
		if r.Intn(2) == 0 {
			s.Checksums = ChecksumConfig{Enabled: true}
		}
	}

	// Streams of chained transfers with interleaved computes and
	// alloc/free pairs. Occasional bridge transfers cross two groups'
	// root complexes, forcing union-find merges mid-run; double-weight
	// crossings exercise weighted paths.
	nStreams := 2 + r.Intn(10)
	for st := 0; st < nStreams; st++ {
		g := st % nGroups
		var prev *Task
		chain := 1 + r.Intn(6)
		for k := 0; k < chain; k++ {
			var deps []*Task
			if prev != nil {
				deps = append(deps, prev)
			}
			switch r.Intn(10) {
			case 0:
				prev = s.Compute("c", engines[r.Intn(len(engines))], r.Float64()*0.2, deps...)
			case 1:
				amt := 1 + r.Float64()*50
				a := s.Alloc("a", pool, amt, deps...)
				prev = s.Free("f", pool, amt, a)
			case 2:
				// Zero-byte transfer (instant completion path).
				prev = s.Transfer("z", nil, Path(groups[g].rc), 0, r.Intn(4), deps...)
			case 3:
				// Bridge: crosses this group's and another group's rc.
				og := (g + 1 + r.Intn(nGroups)) % nGroups
				path := Path(groups[g].rc, groups[og].rc)
				prev = s.Transfer("bridge", nil, path, (0.5+r.Float64())*1e9, r.Intn(4), deps...)
			default:
				link := groups[g].links[r.Intn(len(groups[g].links))]
				var path []PathElem
				if r.Intn(5) == 0 {
					// Staged copy: crosses the root complex twice.
					path = Path(link, groups[g].rc, groups[g].rc)
				} else {
					path = Path(link, groups[g].rc)
				}
				var eng *Engine
				if r.Intn(4) == 0 {
					eng = engines[r.Intn(len(engines))]
				}
				bytes := (0.1 + r.Float64()*2) * 1e9
				prev = s.Transfer("t", eng, path, bytes, r.Intn(4), deps...)
			}
		}
	}

	// Degradation windows: capacity drops with restores, overlapping in
	// time across different resources, churning component rates mid-run.
	for i, n := 0, r.Intn(4); i < n; i++ {
		res := allRes[r.Intn(len(allRes))]
		at := r.Float64() * 0.5
		s.ScheduleCapacity(res, at, res.Capacity()*(0.25+0.5*r.Float64()))
		if r.Intn(2) == 0 {
			s.ScheduleCapacity(res, at+r.Float64()*0.5, res.Capacity())
		}
	}
	// Occasional permanent failure, exercising the halted-run path.
	if r.Intn(5) == 0 {
		s.ScheduleFailure(r.Float64()*0.3, "loss", []*Resource{allRes[r.Intn(len(allRes))]}, nil)
	}
}

// diffScenarioIsolated builds a scenario whose groups share nothing — no
// bridges, per-group engines and pools — so the build-time partition
// splits it into one shard per group. This is the workload that actually
// exercises the sharded scheduler: the shared-state scenario above
// mostly collapses into one shard through its global engines and pool.
func diffScenarioIsolated(r *rand.Rand, s *Sim) {
	if r.Intn(3) == 0 {
		s.TransferLatency = Time(r.Float64() * 5e-4)
	}
	if r.Intn(3) == 0 {
		seed := r.Int63()
		s.RetryPolicy = func(t *Task) (int, Time) {
			h := uint64(seed) ^ uint64(t.ID())*0x9e3779b97f4a7c15
			h ^= h >> 33
			if h%7 == 0 {
				return 1 + int(h%2), Time(1e-4)
			}
			return 0, 0
		}
	}
	if r.Intn(3) == 0 {
		seed := r.Int63()
		s.CorruptionPolicy = func(t *Task, attempt int) bool {
			h := uint64(seed) ^ uint64(t.ID())*0xbf58476d1ce4e5b9 ^ uint64(attempt)<<32
			h ^= h >> 29
			return h%11 == 0
		}
		if r.Intn(2) == 0 {
			s.Checksums = ChecksumConfig{Enabled: true}
		}
	}

	nGroups := 3 + r.Intn(6)
	var allRes []*Resource
	for g := 0; g < nGroups; g++ {
		cap := 13.1e9
		if r.Intn(2) == 0 {
			cap = 1e9 * (4 + 12*r.Float64())
		}
		rc := s.NewResource(fmt.Sprintf("rc%d", g), cap)
		allRes = append(allRes, rc)
		var links []*Resource
		for l := 0; l < 1+r.Intn(3); l++ {
			lcap := 26.2e9
			if r.Intn(2) == 0 {
				lcap = 1e9 * (8 + 24*r.Float64())
			}
			lr := s.NewResource(fmt.Sprintf("g%d.link%d", g, l), lcap)
			links = append(links, lr)
			allRes = append(allRes, lr)
		}
		eng := s.NewEngine(fmt.Sprintf("eng%d", g))
		pool := s.NewMemPool(fmt.Sprintf("mem%d", g), 256)

		nStreams := 1 + r.Intn(4)
		for st := 0; st < nStreams; st++ {
			var prev *Task
			chain := 1 + r.Intn(6)
			for k := 0; k < chain; k++ {
				var deps []*Task
				if prev != nil {
					deps = append(deps, prev)
				}
				switch r.Intn(10) {
				case 0:
					prev = s.Compute("c", eng, r.Float64()*0.2, deps...)
				case 1:
					amt := 1 + r.Float64()*50
					a := s.Alloc("a", pool, amt, deps...)
					prev = s.Free("f", pool, amt, a)
				case 2:
					prev = s.Transfer("z", nil, Path(rc), 0, r.Intn(4), deps...)
				default:
					link := links[r.Intn(len(links))]
					var path []PathElem
					if r.Intn(5) == 0 {
						path = Path(link, rc, rc)
					} else {
						path = Path(link, rc)
					}
					var taskEng *Engine
					if r.Intn(4) == 0 {
						taskEng = eng
					}
					bytes := (0.1 + r.Float64()*2) * 1e9
					prev = s.Transfer("t", taskEng, path, bytes, r.Intn(4), deps...)
				}
			}
		}
	}

	for i, n := 0, r.Intn(4); i < n; i++ {
		res := allRes[r.Intn(len(allRes))]
		at := r.Float64() * 0.5
		s.ScheduleCapacity(res, at, res.Capacity()*(0.25+0.5*r.Float64()))
		if r.Intn(2) == 0 {
			s.ScheduleCapacity(res, at+r.Float64()*0.5, res.Capacity())
		}
	}
}

// diffScenarioSkewed builds an adversarially skewed isolated topology:
// one giant group carrying most of the tasks plus a swarm of tiny
// single-stream groups. The partition becomes one huge shard and many
// small ones — the shape that serializes a static shard assignment and
// that chunked work-stealing exists to spread. Groups share nothing, so
// determinism must hold for every steal interleaving.
func diffScenarioSkewed(r *rand.Rand, s *Sim) {
	if r.Intn(3) == 0 {
		s.TransferLatency = Time(r.Float64() * 5e-4)
	}
	if r.Intn(3) == 0 {
		seed := r.Int63()
		s.RetryPolicy = func(t *Task) (int, Time) {
			h := uint64(seed) ^ uint64(t.ID())*0x9e3779b97f4a7c15
			h ^= h >> 33
			if h%7 == 0 {
				return 1 + int(h%2), Time(1e-4)
			}
			return 0, 0
		}
	}
	if r.Intn(3) == 0 {
		seed := r.Int63()
		s.CorruptionPolicy = func(t *Task, attempt int) bool {
			h := uint64(seed) ^ uint64(t.ID())*0xbf58476d1ce4e5b9 ^ uint64(attempt)<<32
			h ^= h >> 29
			return h%11 == 0
		}
		if r.Intn(2) == 0 {
			s.Checksums = ChecksumConfig{Enabled: true}
		}
	}

	var allRes []*Resource
	emitGroup := func(g, nStreams, maxChain int) {
		rc := s.NewResource(fmt.Sprintf("rc%d", g), 1e9*(4+12*r.Float64()))
		allRes = append(allRes, rc)
		var links []*Resource
		for l := 0; l < 1+r.Intn(3); l++ {
			lr := s.NewResource(fmt.Sprintf("g%d.link%d", g, l), 1e9*(8+24*r.Float64()))
			links = append(links, lr)
			allRes = append(allRes, lr)
		}
		eng := s.NewEngine(fmt.Sprintf("eng%d", g))
		pool := s.NewMemPool(fmt.Sprintf("mem%d", g), 256)
		for st := 0; st < nStreams; st++ {
			var prev *Task
			chain := 1 + r.Intn(maxChain)
			for k := 0; k < chain; k++ {
				var deps []*Task
				if prev != nil {
					deps = append(deps, prev)
				}
				switch r.Intn(10) {
				case 0:
					prev = s.Compute("c", eng, r.Float64()*0.2, deps...)
				case 1:
					amt := 1 + r.Float64()*50
					a := s.Alloc("a", pool, amt, deps...)
					prev = s.Free("f", pool, amt, a)
				case 2:
					prev = s.Transfer("z", nil, Path(rc), 0, r.Intn(4), deps...)
				default:
					link := links[r.Intn(len(links))]
					path := Path(link, rc)
					bytes := (0.1 + r.Float64()*2) * 1e9
					prev = s.Transfer("t", nil, path, bytes, r.Intn(4), deps...)
				}
			}
		}
	}

	// One giant group, then a swarm of tiny ones.
	emitGroup(0, 8+r.Intn(8), 8)
	nTiny := 10 + r.Intn(10)
	for g := 1; g <= nTiny; g++ {
		emitGroup(g, 1, 3)
	}

	for i, n := 0, r.Intn(4); i < n; i++ {
		res := allRes[r.Intn(len(allRes))]
		at := r.Float64() * 0.5
		s.ScheduleCapacity(res, at, res.Capacity()*(0.25+0.5*r.Float64()))
		if r.Intn(2) == 0 {
			s.ScheduleCapacity(res, at+r.Float64()*0.5, res.Capacity())
		}
	}
}

// captureRecord snapshots everything observable about a finished run.
func captureRecord(s *Sim, obs *timelineObserver, makespan Time, err error) runRecord {
	rec := runRecord{
		makespanBits: math.Float64bits(makespan),
		events:       obs.events,
	}
	if err != nil {
		rec.errText = err.Error()
	}
	for _, t := range s.tasks {
		rec.taskStarts = append(rec.taskStarts, math.Float64bits(t.startAt))
		rec.taskEnds = append(rec.taskEnds, math.Float64bits(t.endAt))
	}
	for _, res := range s.resources {
		rec.carried = append(rec.carried, math.Float64bits(res.carried))
	}
	for _, e := range s.CheckInvariants() {
		rec.invariants = append(rec.invariants, e.Error())
	}
	return rec
}

// runScenarioMode executes a seed's scenario under one scheduler mode —
// oracle, serial incremental (parallelism 0), or sharded with a given
// worker bound — and records every observable bit.
func runScenarioMode(seed int64, oracle bool, parallelism int, build func(*rand.Rand, *Sim)) runRecord {
	r := rand.New(rand.NewSource(seed))
	s := New()
	s.rateOracle = oracle
	s.Parallelism = parallelism
	obs := &timelineObserver{}
	s.Observe(obs)
	build(r, s)

	makespan, err := s.Run()
	return captureRecord(s, obs, makespan, err)
}

// runScenario executes the seed's shared-state scenario serially.
func runScenario(seed int64, oracle bool) runRecord {
	return runScenarioMode(seed, oracle, 0, diffScenario)
}

func diffRecords(t *testing.T, seed int64, inc, ora runRecord) {
	t.Helper()
	if inc.makespanBits != ora.makespanBits {
		t.Errorf("seed %d: makespan diverged: %x vs %x (%g vs %g)", seed,
			inc.makespanBits, ora.makespanBits,
			math.Float64frombits(inc.makespanBits), math.Float64frombits(ora.makespanBits))
	}
	if inc.errText != ora.errText {
		t.Errorf("seed %d: error diverged:\n  incremental: %q\n  oracle:      %q", seed, inc.errText, ora.errText)
	}
	if len(inc.events) != len(ora.events) {
		t.Fatalf("seed %d: event count diverged: %d vs %d", seed, len(inc.events), len(ora.events))
	}
	for i := range inc.events {
		if inc.events[i] != ora.events[i] {
			t.Fatalf("seed %d: event %d diverged: %+v vs %+v", seed, i, inc.events[i], ora.events[i])
		}
	}
	for i := range inc.taskEnds {
		if inc.taskStarts[i] != ora.taskStarts[i] || inc.taskEnds[i] != ora.taskEnds[i] {
			t.Errorf("seed %d: task %d times diverged", seed, i)
		}
	}
	for i := range inc.carried {
		if inc.carried[i] != ora.carried[i] {
			t.Errorf("seed %d: resource %d carried diverged: %g vs %g", seed, i,
				math.Float64frombits(inc.carried[i]), math.Float64frombits(ora.carried[i]))
		}
	}
	if len(inc.invariants) != len(ora.invariants) {
		t.Errorf("seed %d: invariant results diverged: %v vs %v", seed, inc.invariants, ora.invariants)
	} else {
		for i := range inc.invariants {
			if inc.invariants[i] != ora.invariants[i] {
				t.Errorf("seed %d: invariant %d diverged: %q vs %q", seed, i, inc.invariants[i], ora.invariants[i])
			}
		}
	}
	// Neither mode may violate the simulator's own invariants on runs
	// that completed or halted on a structured failure.
	if len(inc.invariants) != 0 {
		t.Errorf("seed %d: invariants violated: %v", seed, inc.invariants)
	}
}

// TestDifferentialIncrementalVsOracle runs 64 randomized chaos topologies
// under both schedulers and requires bit-for-bit identical behavior.
func TestDifferentialIncrementalVsOracle(t *testing.T) {
	for seed := int64(1); seed <= 64; seed++ {
		inc := runScenario(seed, false)
		ora := runScenario(seed, true)
		diffRecords(t, seed, inc, ora)
		if t.Failed() {
			t.Fatalf("seed %d: differential divergence (stopping)", seed)
		}
	}
}

// TestDifferentialReplayDeterminism pins that each mode is also
// self-deterministic: the same seed replays bit-identically.
func TestDifferentialReplayDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 17, 42} {
		for _, oracle := range []bool{false, true} {
			a := runScenario(seed, oracle)
			b := runScenario(seed, oracle)
			diffRecords(t, seed, a, b)
		}
	}
}

// TestDifferentialParallelVsSerial is the sharded-scheduler gate: over 64
// isolated chaos topologies (one shard per group), parallel execution at
// K ∈ {1,2,3,4,8,16} workers — non-power-of-two and oversubscribed
// included — must be bitwise-identical to the serial incremental
// scheduler, which in turn must match the oracle.
func TestDifferentialParallelVsSerial(t *testing.T) {
	for seed := int64(1); seed <= 64; seed++ {
		serial := runScenarioMode(seed, false, 0, diffScenarioIsolated)
		oracle := runScenarioMode(seed, true, 0, diffScenarioIsolated)
		diffRecords(t, seed, serial, oracle)
		if t.Failed() {
			t.Fatalf("seed %d: serial vs oracle divergence (stopping)", seed)
		}
		for _, k := range []int{1, 2, 3, 4, 8, 16} {
			par := runScenarioMode(seed, false, k, diffScenarioIsolated)
			diffRecords(t, seed, serial, par)
			if t.Failed() {
				t.Fatalf("seed %d: parallel K=%d vs serial divergence (stopping)", seed, k)
			}
		}
	}
}

// TestDifferentialParallelSkewed pins stealing determinism on the
// partition shape built to break it: one giant shard plus a swarm of tiny
// ones. Every worker count — including K=3 (chunks wrap unevenly) and
// K=16 (more workers than meaningful shards on small seeds) — and both
// steal settings must reproduce the serial schedule bit for bit, which
// must itself match the oracle.
func TestDifferentialParallelSkewed(t *testing.T) {
	for seed := int64(1); seed <= 64; seed++ {
		serial := runScenarioMode(seed, false, 0, diffScenarioSkewed)
		oracle := runScenarioMode(seed, true, 0, diffScenarioSkewed)
		diffRecords(t, seed, serial, oracle)
		if t.Failed() {
			t.Fatalf("seed %d: serial vs oracle divergence (stopping)", seed)
		}
		for _, k := range []int{1, 2, 3, 4, 8, 16} {
			for _, noSteal := range []bool{false, true} {
				build := diffScenarioSkewed
				if noSteal {
					build = func(r *rand.Rand, s *Sim) {
						s.NoSteal = true
						diffScenarioSkewed(r, s)
					}
				}
				par := runScenarioMode(seed, false, k, build)
				diffRecords(t, seed, serial, par)
				if t.Failed() {
					t.Fatalf("seed %d: skewed parallel K=%d noSteal=%v divergence (stopping)", seed, k, noSteal)
				}
			}
		}
	}
}

// TestDifferentialParallelSharedState runs the shared-state scenarios —
// global engines, one pool, bridges, permanent failures — with
// Parallelism set. Most collapse to a single shard or hit the
// serial-fallback gates (failure events, structured errors); either way
// the result must stay bitwise-identical to the serial scheduler.
func TestDifferentialParallelSharedState(t *testing.T) {
	for seed := int64(1); seed <= 64; seed++ {
		serial := runScenario(seed, false)
		for _, k := range []int{2, 8} {
			par := runScenarioMode(seed, false, k, diffScenario)
			diffRecords(t, seed, serial, par)
		}
		if t.Failed() {
			t.Fatalf("seed %d: shared-state parallel divergence (stopping)", seed)
		}
	}
}

// TestRewindReplayBitwise pins topology reuse: rewinding an executed
// simulator and re-running the same DAG — the shape Reset gives the
// chaos harness and experiment grids — must replay every observable bit,
// in both serial and sharded modes, including scheduled faults.
func TestRewindReplayBitwise(t *testing.T) {
	for _, seed := range []int64{3, 17, 42, 58} {
		for _, build := range []func(*rand.Rand, *Sim){diffScenario, diffScenarioIsolated} {
			for _, k := range []int{0, 4} {
				r := rand.New(rand.NewSource(seed))
				s := New()
				s.Parallelism = k
				obs := &timelineObserver{}
				s.Observe(obs)
				build(r, s)

				makespan, err := s.Run()
				first := captureRecord(s, obs, makespan, err)

				s.rewind()
				obs.events = nil
				makespan, err = s.Run()
				second := captureRecord(s, obs, makespan, err)
				diffRecords(t, seed, first, second)
				if t.Failed() {
					t.Fatalf("seed %d K=%d: rewind replay diverged (stopping)", seed, k)
				}
			}
		}
	}
}
