package sim

import (
	"errors"
	"strings"
	"testing"
)

// TestFailureHaltsInFlightFlow schedules a link death mid-transfer: Run
// must stop at the onset with a ResourceLostError naming the transfer.
func TestFailureHaltsInFlightFlow(t *testing.T) {
	s := New()
	link := s.NewResource("link", 100)
	s.Transfer("xfer", nil, Path(link), 1000, 0) // would take 10s
	s.ScheduleFailure(4, "link", []*Resource{link}, nil)

	end, err := s.Run()
	var lost *ResourceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("want ResourceLostError, got %v", err)
	}
	if lost.Resource != "link" || lost.At != 4 || end != 4 {
		t.Fatalf("loss: %+v end=%g", lost, end)
	}
	if len(lost.Victims) != 1 || lost.Victims[0] != "xfer" {
		t.Fatalf("victims: %v", lost.Victims)
	}
	if !strings.Contains(lost.Error(), `resource "link" lost at t=4`) {
		t.Fatalf("message: %s", lost.Error())
	}
}

// TestFailureHaltsEngineOccupant kills an engine mid-compute; the current
// occupant is the victim even though no flow crosses a dead resource.
func TestFailureHaltsEngineOccupant(t *testing.T) {
	s := New()
	e := s.NewEngine("gpu0.compute")
	s.Compute("fwd", e, 10)
	s.ScheduleFailure(3, "gpu0", nil, []*Engine{e})

	_, err := s.Run()
	var lost *ResourceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("want ResourceLostError, got %v", err)
	}
	if len(lost.Victims) != 1 || lost.Victims[0] != "fwd" {
		t.Fatalf("victims: %v", lost.Victims)
	}
}

// TestFailureAfterMakespanNeverFires models a fault landing in a later
// step: the DAG completes normally and the event is simply never reached.
func TestFailureAfterMakespanNeverFires(t *testing.T) {
	s := New()
	e := s.NewEngine("gpu0.compute")
	s.Compute("fwd", e, 2)
	s.ScheduleFailure(100, "gpu0", nil, []*Engine{e})

	end, err := s.Run()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if end != 2 {
		t.Fatalf("makespan: %g", end)
	}
}

// TestFailureSameInstantCompletionWins pins the detection ordering: a task
// finishing exactly at the onset completes before the loss is detected, so
// it is not a victim.
func TestFailureSameInstantCompletionWins(t *testing.T) {
	s := New()
	e := s.NewEngine("gpu0.compute")
	a := s.Compute("done-at-onset", e, 3)
	s.Compute("starts-at-onset", e, 5, a)
	s.ScheduleFailure(3, "gpu0", nil, []*Engine{e})

	_, err := s.Run()
	var lost *ResourceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("want ResourceLostError, got %v", err)
	}
	if !a.Finished() {
		t.Fatalf("task at onset should have completed")
	}
	for _, v := range lost.Victims {
		if v == "done-at-onset" {
			t.Fatalf("completed task listed as victim: %v", lost.Victims)
		}
	}
}

// TestFailureDeduplicatesVictims runs a transfer that both occupies an
// engine and flows over the dying link; it must be reported once.
func TestFailureDeduplicatesVictims(t *testing.T) {
	s := New()
	link := s.NewResource("link", 100)
	e := s.NewEngine("gpu0.upload")
	s.Transfer("xfer", e, Path(link), 1000, 0)
	s.ScheduleFailure(4, "gpu0", []*Resource{link}, []*Engine{e})

	_, err := s.Run()
	var lost *ResourceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("want ResourceLostError, got %v", err)
	}
	if len(lost.Victims) != 1 {
		t.Fatalf("victims not deduplicated: %v", lost.Victims)
	}
}
