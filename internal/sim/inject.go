package sim

import "sort"

// This file is the fault-injection surface of the simulator: scheduled
// capacity changes, straggler throughput, transfer retry policies, and the
// structured errors Run returns instead of panicking. The knobs are
// deliberately low-level and deterministic; the fault package translates
// declarative specs into calls here.

// RetryPolicy decides, per transfer task, how many transient failures to
// inject and the initial backoff between attempts. The sim models the k-th
// retry as a wait of backoff*2^(k-1); the total wait is added to the
// transfer's setup latency and recorded on the task (see Task.Retries and
// Task.RetryLatency). Policies must be deterministic functions of the task
// itself (e.g. a hash of a seed and the task id), never of call order:
// tasks start in simulation order, which shifts when unrelated faults
// change timing.
type RetryPolicy func(t *Task) (retries int, backoff Time)

// capEvent is a scheduled change of a resource's capacity.
type capEvent struct {
	at       Time
	res      *Resource
	capacity float64
	seq      int
}

// ScheduleCapacity changes res's capacity to capacity (bytes/s) at time
// at. Events apply in time order (ties in schedule order) as the clock
// reaches them; rates of in-flight flows are recomputed at the event
// instant, so a degradation window splits an ongoing transfer into a fast
// and a slow phase exactly as real link contention would.
func (s *Sim) ScheduleCapacity(res *Resource, at Time, capacity float64) {
	s.capEvents = append(s.capEvents, capEvent{at: at, res: res, capacity: capacity, seq: len(s.capEvents)})
}

func sortCapEvents(evs []capEvent) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].seq < evs[j].seq
	})
}

// applyCapEvents applies every capacity event due at (or before) the
// shard's clock and marks the affected resource's component dirty when
// anything changed. Parallel runs route each event to the shard owning
// its resource, so two shards never race on a capacity write.
func (sh *shard) applyCapEvents() {
	for sh.nextCap < len(sh.capEvents) && sh.capEvents[sh.nextCap].at <= sh.now+timeEpsilon {
		ev := sh.capEvents[sh.nextCap]
		sh.nextCap++
		if ev.res.capacity != ev.capacity {
			ev.res.capacity = ev.capacity
			sh.touchResource(ev.res)
		}
	}
}

// touchResource marks the component of r dirty, if any active flow
// crosses it. A capacity change on an idle resource perturbs nobody: the
// new capacity is simply what the next admission will water-fill against.
func (sh *shard) touchResource(r *Resource) {
	if r.ufGen != sh.ufGen {
		return
	}
	if root := sh.findRoot(r); root.comp != nil {
		sh.markDirty(root.comp)
	}
}

// Err returns the structured failure recorded during Run, if any.
func (s *Sim) Err() error { return s.err }
