package sim

import (
	"errors"
	"testing"
)

// TestScheduledCapacityDegradationSplitsTransfer checks a mid-flight
// capacity drop: the flow runs at the nominal rate until the event, then
// at the degraded rate.
func TestScheduledCapacityDegradationSplitsTransfer(t *testing.T) {
	s := New()
	link := s.NewResource("link", 10e9)
	s.Transfer("t", nil, Path(link), 20e9, 0)
	// 10 GB move in the first second; the remaining 10 GB crawl at 5 GB/s.
	s.ScheduleCapacity(link, 1, 5e9)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 3, 1e-9, "degraded second phase")
}

// TestCapacityWindowRestores checks a bounded degradation window
// [1s, 2s): the restore event brings the flow back to full rate.
func TestCapacityWindowRestores(t *testing.T) {
	s := New()
	link := s.NewResource("link", 10e9)
	s.Transfer("t", nil, Path(link), 30e9, 0)
	s.ScheduleCapacity(link, 1, 2e9)
	s.ScheduleCapacity(link, 2, 10e9)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 10 GB before the window, 2 GB inside it, 18 GB at 10 GB/s after.
	almost(t, end, 1+1+1.8, 1e-9, "window restore")
}

// TestCapacityEventBeforeFlowStart checks that a degradation scheduled
// at t=0 applies from the first byte.
func TestCapacityEventBeforeFlowStart(t *testing.T) {
	s := New()
	link := s.NewResource("link", 10e9)
	s.Transfer("t", nil, Path(link), 10e9, 0)
	s.ScheduleCapacity(link, 0, 2.5e9)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 4, 1e-9, "quarter bandwidth from t=0")
}

// TestStragglerThroughputScalesCompute checks the engine throughput
// multiplier: a 0.5x straggler takes twice as long per compute task.
func TestStragglerThroughputScalesCompute(t *testing.T) {
	s := New()
	fast := s.NewEngine("gpu0")
	slow := s.NewEngine("gpu1")
	slow.SetThroughput(0.5)
	a := s.Compute("a", fast, 2)
	b := s.Compute("b", slow, 2)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, a.End(), 2, 1e-12, "nominal engine")
	almost(t, b.End(), 4, 1e-12, "straggler at half speed")
	almost(t, end, 4, 1e-12, "makespan")
}

// TestRetryPolicyInjectsExponentialBackoff checks the transient-failure
// model: n failures with initial backoff b delay the payload by
// b*(2^n - 1) and are recorded on the task.
func TestRetryPolicyInjectsExponentialBackoff(t *testing.T) {
	s := New()
	link := s.NewResource("link", 10e9)
	s.RetryPolicy = func(*Task) (int, Time) { return 3, 1e-3 }
	tr := s.Transfer("t", nil, Path(link), 10e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 1+0.007, 1e-9, "1s payload plus 1+2+4 ms backoff")
	if tr.Retries() != 3 {
		t.Fatalf("retries: got %d, want 3", tr.Retries())
	}
	almost(t, tr.RetryLatency(), 0.007, 1e-12, "recorded retry latency")
}

// TestRetryPolicySkipsZeroByteTransfers checks that control-flow edges
// (zero-byte transfers) are never subjected to the retry policy.
func TestRetryPolicySkipsZeroByteTransfers(t *testing.T) {
	s := New()
	link := s.NewResource("link", 10e9)
	called := false
	s.RetryPolicy = func(*Task) (int, Time) { called = true; return 5, 1 }
	s.Transfer("ctl", nil, Path(link), 0, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("retry policy consulted for a zero-byte transfer")
	}
	almost(t, end, 0, 1e-12, "zero-byte transfer is instant")
}

// TestOversizedAllocIsStructuredOOM checks that an allocation larger than
// the pool's total capacity surfaces as *OOMError naming the task, not a
// deadlock.
func TestOversizedAllocIsStructuredOOM(t *testing.T) {
	s := New()
	pool := s.NewMemPool("gpu0.mem", 10)
	s.Alloc("activations", pool, 20)
	_, err := s.Run()
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want *OOMError, got %v", err)
	}
	if oom.Pool != "gpu0.mem" || oom.Task != "activations" || oom.Need != 20 || oom.Capacity != 10 {
		t.Fatalf("OOM fields wrong: %+v", oom)
	}
}

// TestShrunkenPoolTriggersOOM models fault-injected memory pressure: an
// allocation that fit the nominal pool fails after SetCapacity shrinks it.
func TestShrunkenPoolTriggersOOM(t *testing.T) {
	s := New()
	pool := s.NewMemPool("dram", 100)
	pool.SetCapacity(30)
	s.Alloc("states", pool, 50)
	_, err := s.Run()
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want *OOMError after pool squeeze, got %v", err)
	}
}

// TestOverFreeIsStructuredAccountError checks that freeing more than is
// allocated returns *MemAccountError naming the offending task.
func TestOverFreeIsStructuredAccountError(t *testing.T) {
	s := New()
	pool := s.NewMemPool("dram", 100)
	a := s.Alloc("a", pool, 10)
	s.Free("double-free", pool, 25, a)
	_, err := s.Run()
	var acc *MemAccountError
	if !errors.As(err, &acc) {
		t.Fatalf("want *MemAccountError, got %v", err)
	}
	if acc.Task != "double-free" || acc.Pool != "dram" {
		t.Fatalf("account-error fields wrong: %+v", acc)
	}
}

// TestCapacityEventsDeterministic re-runs an identical DAG with faults
// twice and requires bit-identical completion times.
func TestCapacityEventsDeterministic(t *testing.T) {
	build := func() (*Sim, *Task, *Task) {
		s := New()
		link := s.NewResource("link", 8e9)
		e := s.NewEngine("gpu0")
		e.SetThroughput(0.75)
		s.ScheduleCapacity(link, 0.5, 2e9)
		s.ScheduleCapacity(link, 1.5, 8e9)
		s.RetryPolicy = func(task *Task) (int, Time) { return task.ID() % 3, 1e-3 }
		c := s.Compute("c", e, 1)
		tr := s.Transfer("t", nil, Path(link), 12e9, 0, c)
		return s, c, tr
	}
	s1, c1, t1 := build()
	s2, c2, t2 := build()
	end1, err1 := s1.Run()
	end2, err2 := s2.Run()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if end1 != end2 || c1.End() != c2.End() || t1.End() != t2.End() {
		t.Fatalf("faulted replay diverged: %v vs %v", end1, end2)
	}
}
