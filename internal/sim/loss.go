package sim

import (
	"fmt"
	"sort"
	"strings"
)

// This file models permanent resource loss: a GPU dropping off the bus or a
// PCIe link dying mid-run. Unlike capacity events (inject.go), which degrade
// a resource and let the run finish, a failure event halts the simulation at
// its onset with a structured ResourceLostError naming the in-flight victims.
// The elastic package uses the error to price detection, re-planning, and
// resume on the surviving topology.

// ResourceLostError is the structured failure Run returns when a scheduled
// permanent failure fires. At is the detection instant (the onset time, or
// the current clock when the onset lands between events), and Victims lists
// the in-flight tasks that were halted: flows crossing a dead resource and
// tasks occupying a dead engine.
type ResourceLostError struct {
	// Resource is the label passed to ScheduleFailure, e.g. "gpu1" or
	// "rc0".
	Resource string
	// At is the simulated time the loss was detected.
	At Time
	// Victims names the in-flight tasks halted by the loss, in
	// deterministic (task id) order.
	Victims []string
}

func (e *ResourceLostError) Error() string {
	msg := fmt.Sprintf("sim: resource %q lost at t=%.6g", e.Resource, e.At)
	if len(e.Victims) > 0 {
		msg += fmt.Sprintf(" (halted %d in-flight: %s)", len(e.Victims), strings.Join(e.Victims, ", "))
	}
	return msg
}

// failEvent is a scheduled permanent loss of a set of resources and
// engines, detected when the clock reaches at.
type failEvent struct {
	at    Time
	label string
	res   []*Resource
	eng   []*Engine
	seq   int
}

// ScheduleFailure schedules a permanent failure at time at: every resource
// in res and engine in eng is considered dead from that instant. Tasks
// completing exactly at the onset still complete (detection happens after
// same-instant completions); anything still in flight on a dead resource or
// engine becomes a victim in the resulting ResourceLostError. A failure
// scheduled beyond the makespan never fires — the run completes before the
// fault lands.
func (s *Sim) ScheduleFailure(at Time, label string, res []*Resource, eng []*Engine) {
	s.failEvents = append(s.failEvents, failEvent{at: at, label: label, res: res, eng: eng, seq: len(s.failEvents)})
}

func sortFailEvents(evs []failEvent) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].seq < evs[j].seq
	})
}

// applyFailEvents fires every failure event due at (or before) the current
// clock. The first one to fire records the structured error; the run stops
// at the next loop boundary. Scheduled failures force serial execution
// (victim collection needs the global flow set), so only the serial shard
// ever sees a non-empty failEvents list.
func (sh *shard) applyFailEvents() {
	for sh.nextFail < len(sh.failEvents) && sh.failEvents[sh.nextFail].at <= sh.now+timeEpsilon {
		ev := sh.failEvents[sh.nextFail]
		sh.nextFail++
		sh.fail(&ResourceLostError{Resource: ev.label, At: sh.now, Victims: sh.collectVictims(ev)})
	}
}

// collectVictims gathers the in-flight tasks halted by ev: flows whose path
// crosses a dead resource, and the current occupant of each dead engine
// (covering computes and transfers still in their setup phase). A flowing
// transfer on a dead engine appears once.
func (sh *shard) collectVictims(ev failEvent) []string {
	dead := make(map[*Resource]bool, len(ev.res))
	for _, r := range ev.res {
		if r != nil {
			dead[r] = true
		}
	}
	seen := make(map[*Task]bool)
	var victims []*Task
	for _, f := range sh.flows {
		for _, pe := range f.task.path {
			if dead[pe.Res] && !seen[f.task] {
				seen[f.task] = true
				victims = append(victims, f.task)
				break
			}
		}
	}
	for _, e := range ev.eng {
		if e == nil || e.current == nil || seen[e.current] {
			continue
		}
		seen[e.current] = true
		victims = append(victims, e.current)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	names := make([]string, len(victims))
	for i, t := range victims {
		names[i] = t.name
	}
	return names
}
