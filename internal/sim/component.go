package sim

// This file implements the locality layer of the incremental scheduler:
// active flows are grouped into connected components via a union-find
// over the resources their paths touch, and rate recomputation is
// restricted to components actually perturbed by an event (flow admit or
// finish, capacity change). Two flows that never share a resource —
// transfers on isolated NVLinks, traffic under different root complexes —
// never pay for each other's events.
//
// Correctness does not depend on the decomposition being tight: the
// water-filling computation is a pure function of a component's flows and
// capacities, so recomputing an unperturbed component reproduces its
// rates bit for bit and is merely wasted work. Union-find can therefore
// over-merge freely (it cannot split); a per-component rebuild re-derives
// a component's partition from its live flows once enough of its flows
// have finished that stale merges may be holding unrelated flows
// together. The test-only global oracle (flow.go) exploits the same
// purity: it recomputes every live component on every event and must
// produce bitwise-identical schedules.
//
// All state lives on the owning shard. Resources carry the union-find
// links, but a shard only ever touches resources its own tasks use
// (partitioning guarantees disjointness), and the generation marks are
// drawn from globally unique sequences, so links written by another shard
// or a previous run always read as stale.

// component is a connected set of active flows: the union of their paths
// is disjoint from every other component's. flows is unordered (O(1)
// admit and swap-remove) but deterministically maintained; since both
// scheduler modes read the same lists, the list order is by construction
// the canonical iteration order for water-filling in either mode.
type component struct {
	flows []*flow
	// resources caches the distinct resources the member flows' paths
	// touch — a superset, kept current at admit/merge/recycle time — so
	// the water-fill resets per-resource scratch by walking this short
	// list instead of every flow-hop. Extra entries (resources whose
	// flows all finished) are harmless: resetting their scratch is
	// invisible to an allocation that never visits them.
	resources []*Resource
	// dirty marks the component perturbed since the last recompute; it
	// also guards duplicate entries in shard.dirtyComps.
	dirty bool
	// dead marks a component absorbed by a union-find merge or drained of
	// its last flow; the dirty drain recycles it.
	dead bool
	// visit de-duplicates components during the oracle's global sweep
	// (compared against shard.compVisit).
	visit uint64
	// finished counts flow completions charged to this component since it
	// was created (merges carry the absorbed component's count along); it
	// triggers the per-component rebuild that recovers splits.
	finished int
}

// findRoot returns the union-find root of r, lazily (re)initializing r as
// a singleton when it has not been touched in the current generation.
// Per-component rebuilds invalidate a subset of the structure by zeroing
// those resources' generations, which can leave a current-generation
// resource (one whose flows all finished) pointing at an invalidated
// parent; the walk cuts such stale edges instead of following them. Path
// halving keeps chains short.
func (sh *shard) findRoot(r *Resource) *Resource {
	if r.ufGen != sh.ufGen {
		r.ufGen = sh.ufGen
		r.ufParent = r
		r.ufRank = 0
		r.comp = nil
	}
	for r.ufParent != r {
		p := r.ufParent
		if p.ufGen != sh.ufGen {
			// The parent was invalidated out from under r: r's own flows
			// are gone (rebuild re-admits every live flow's resources), so
			// restart it as a bare singleton.
			r.ufParent = r
			r.ufRank = 0
			r.comp = nil
			return r
		}
		if gp := p.ufParent; gp.ufGen == sh.ufGen {
			r.ufParent = gp
		}
		r = r.ufParent
	}
	return r
}

// unionRoots merges two union-find roots (and their components) and
// returns the surviving root.
func (sh *shard) unionRoots(a, b *Resource) *Resource {
	if a == b {
		return a
	}
	if a.ufRank < b.ufRank {
		a, b = b, a
	} else if a.ufRank == b.ufRank {
		a.ufRank++
	}
	b.ufParent = a
	ca, cb := a.comp, b.comp
	switch {
	case cb == nil:
		// nothing to merge
	case ca == nil:
		a.comp = cb
	default:
		sh.mergeComponents(ca, cb)
	}
	b.comp = nil
	return a
}

// mergeComponents folds src into dst: src's members are appended to
// dst's list, dirtiness and the finished-count debt are inherited, and
// src is retired through the dirty drain so its buffer returns to the
// pool.
func (sh *shard) mergeComponents(dst, src *component) {
	for _, f := range src.flows {
		f.compIdx = len(dst.flows)
		dst.flows = append(dst.flows, f)
	}
	for _, r := range src.resources {
		if r.listedGen == sh.ufGen && r.listedComp == src {
			r.listedComp = dst
		}
		dst.resources = append(dst.resources, r)
	}
	src.resources = src.resources[:0]
	dst.finished += src.finished

	if src.dirty && !dst.dirty {
		sh.markDirty(dst)
	}
	src.flows = src.flows[:0]
	src.finished = 0
	src.dead = true
	if !src.dirty {
		// Route the corpse through dirtyComps so the next drain recycles
		// it; dead components are skipped before any rate work.
		sh.markDirty(src)
	}
}

// markDirty queues c for the next rate recompute (once).
func (sh *shard) markDirty(c *component) {
	sh.ratesDirty = true
	if !c.dirty {
		c.dirty = true
		sh.dirtyComps = append(sh.dirtyComps, c)
	}
}

// newComponent takes a component from the pool (or allocates one).
func (sh *shard) newComponent() *component {
	if n := len(sh.compPool); n > 0 {
		c := sh.compPool[n-1]
		sh.compPool[n-1] = nil
		sh.compPool = sh.compPool[:n-1]
		return c
	}
	return &component{}
}

func (sh *shard) recycleComponent(c *component) {
	c.flows = c.flows[:0]
	// Unlist only resources still pointing here: one that has since been
	// re-admitted into a younger component stays on that list.
	for i, r := range c.resources {
		if r.listedGen == sh.ufGen && r.listedComp == c {
			r.listedComp = nil
		}
		c.resources[i] = nil
	}
	c.resources = c.resources[:0]
	c.dirty = false
	c.dead = false
	c.finished = 0
	sh.compPool = append(sh.compPool, c)
}

// componentAdmit links a newly admitted flow into the union-find: its
// path's resources are unioned into one component, the flow joins that
// component's member list, and the component is marked dirty. Empty-path
// flows are unconstrained and never join a component.
func (sh *shard) componentAdmit(f *flow) {
	path := f.task.path
	if len(path) == 0 {
		return
	}
	root := sh.findRoot(path[0].Res)
	for _, pe := range path[1:] {
		root = sh.unionRoots(root, sh.findRoot(pe.Res))
	}
	c := root.comp
	if c == nil {
		c = sh.newComponent()
		root.comp = c
	}
	for _, pe := range path {
		r := pe.Res
		if r.listedGen != sh.ufGen || r.listedComp != c {
			r.listedGen = sh.ufGen
			r.listedComp = c
			c.resources = append(c.resources, r)
		}
	}
	f.compIdx = len(c.flows)
	c.flows = append(c.flows, f)
	sh.markDirty(c)
}

// componentFinish removes a completed flow from its component and marks
// the component dirty (the freed bandwidth redistributes to the
// survivors). Finishes are also what can split a component, which
// union-find cannot express, so they feed the component's rebuild
// counter; a component drained of its last flow is retired on the spot.
func (sh *shard) componentFinish(f *flow) {
	if len(f.task.path) == 0 {
		return
	}
	root := sh.findRoot(f.task.path[0].Res)
	c := root.comp
	last := len(c.flows) - 1
	moved := c.flows[last]
	c.flows[f.compIdx] = moved
	moved.compIdx = f.compIdx
	c.flows[last] = nil
	c.flows = c.flows[:last]
	c.finished++
	sh.markDirty(c)
	if len(c.flows) == 0 {
		root.comp = nil
		c.dead = true
	}
}

// rebuildComponent re-derives c's partition from its live flows: the
// component's union-find subtree is invalidated (generation-zeroed) and
// every member flow re-admitted in list order, which recovers any splits
// finishes have produced. Newly formed components enter the dirty queue,
// so the recompute that triggered the rebuild drains them immediately.
func (sh *shard) rebuildComponent(c *component) {
	fs := append(sh.rebuildScratch[:0], c.flows...)
	// Detach the component from its union-find root before the
	// invalidation orphans the tree: the root can be a resource whose own
	// flows all finished — still current-generation, not on any live
	// flow's path — and a dangling comp pointer there would resurrect the
	// recycled component on a later capacity event.
	if len(fs) > 0 {
		root := sh.findRoot(fs[0].task.path[0].Res)
		root.comp = nil
	}
	for _, f := range fs {
		for _, pe := range f.task.path {
			pe.Res.ufGen = 0
		}
	}
	sh.recycleComponent(c)
	for _, f := range fs {
		sh.componentAdmit(f)
	}
	for i := range fs {
		fs[i] = nil
	}
	sh.rebuildScratch = fs[:0]
}
