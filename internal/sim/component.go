package sim

// This file implements the locality layer of the incremental scheduler:
// active flows are grouped into connected components via a union-find
// over the resources their paths touch, and rate recomputation is
// restricted to components actually perturbed by an event (flow admit or
// finish, capacity change). Two flows that never share a resource —
// transfers on isolated NVLinks, traffic under different root complexes —
// never pay for each other's events.
//
// Correctness does not depend on the decomposition being tight: the
// water-filling computation is a pure function of a component's flows and
// capacities, so recomputing an unperturbed component reproduces its
// rates bit for bit and is merely wasted work. Union-find can therefore
// over-merge freely (it cannot split), and a periodic rebuild re-derives
// the partition from the active flows to recover splits after enough
// flows have finished. The test-only global oracle (flow.go) exploits the
// same property: it recomputes every component on every event and must
// produce bitwise-identical schedules.

// component is a connected set of active flows: the union of their paths
// is disjoint from every other component's. flows is unordered (O(1)
// admit and swap-remove) but deterministically maintained; since both
// scheduler modes read the same lists, the list order is by construction
// the canonical iteration order for water-filling in either mode.
type component struct {
	flows []*flow
	// dirty marks the component perturbed since the last recompute; it
	// also guards duplicate entries in Sim.dirtyComps.
	dirty bool
	// dead marks a component absorbed by a union-find merge; the dirty
	// drain recycles it.
	dead bool
	// visit de-duplicates components during the oracle's global sweep
	// (compared against Sim.compVisit).
	visit uint64
}

// findRoot returns the union-find root of r, lazily (re)initializing r as
// a singleton when it has not been touched in the current generation
// (bumping ufGen is how rebuildComponents resets the whole structure
// without walking every resource). Path halving keeps chains short.
func (s *Sim) findRoot(r *Resource) *Resource {
	if r.ufGen != s.ufGen {
		r.ufGen = s.ufGen
		r.ufParent = r
		r.ufRank = 0
		r.comp = nil
	}
	for r.ufParent != r {
		r.ufParent = r.ufParent.ufParent
		r = r.ufParent
	}
	return r
}

// unionRoots merges two union-find roots (and their components) and
// returns the surviving root.
func (s *Sim) unionRoots(a, b *Resource) *Resource {
	if a == b {
		return a
	}
	if a.ufRank < b.ufRank {
		a, b = b, a
	} else if a.ufRank == b.ufRank {
		a.ufRank++
	}
	b.ufParent = a
	ca, cb := a.comp, b.comp
	switch {
	case cb == nil:
		// nothing to merge
	case ca == nil:
		a.comp = cb
	default:
		s.mergeComponents(ca, cb)
	}
	b.comp = nil
	return a
}

// mergeComponents folds src into dst: src's members are appended to
// dst's list, dirtiness is inherited, and src is retired through the
// dirty drain so its buffer returns to the pool.
func (s *Sim) mergeComponents(dst, src *component) {
	for _, f := range src.flows {
		f.compIdx = len(dst.flows)
		dst.flows = append(dst.flows, f)
	}

	if src.dirty && !dst.dirty {
		s.markDirty(dst)
	}
	src.flows = src.flows[:0]
	src.dead = true
	if !src.dirty {
		// Route the corpse through dirtyComps so the next drain recycles
		// it; dead components are skipped before any rate work.
		s.markDirty(src)
	}
}

// markDirty queues c for the next rate recompute (once).
func (s *Sim) markDirty(c *component) {
	s.ratesDirty = true
	if !c.dirty {
		c.dirty = true
		s.dirtyComps = append(s.dirtyComps, c)
	}
}

// newComponent takes a component from the pool (or allocates one).
func (s *Sim) newComponent() *component {
	if n := len(s.compPool); n > 0 {
		c := s.compPool[n-1]
		s.compPool[n-1] = nil
		s.compPool = s.compPool[:n-1]
		return c
	}
	return &component{}
}

func (s *Sim) recycleComponent(c *component) {
	c.flows = c.flows[:0]
	c.dirty = false
	c.dead = false
	s.compPool = append(s.compPool, c)
}

// componentAdmit links a newly admitted flow into the union-find: its
// path's resources are unioned into one component, the flow joins that
// component's member list, and the component is marked dirty. Empty-path
// flows are unconstrained and never join a component.
func (s *Sim) componentAdmit(f *flow) {
	path := f.task.path
	if len(path) == 0 {
		return
	}
	root := s.findRoot(path[0].Res)
	for _, pe := range path[1:] {
		root = s.unionRoots(root, s.findRoot(pe.Res))
	}
	c := root.comp
	if c == nil {
		c = s.newComponent()
		root.comp = c
	}
	f.compIdx = len(c.flows)
	c.flows = append(c.flows, f)
	s.markDirty(c)
}

// componentFinish removes a completed flow from its component and marks
// the component dirty (the freed bandwidth redistributes to the
// survivors). Finishes are also what can split a component, which
// union-find cannot express, so they feed the rebuild counter.
func (s *Sim) componentFinish(f *flow) {
	if len(f.task.path) == 0 {
		return
	}
	root := s.findRoot(f.task.path[0].Res)
	c := root.comp
	last := len(c.flows) - 1
	moved := c.flows[last]
	c.flows[f.compIdx] = moved
	moved.compIdx = f.compIdx
	c.flows[last] = nil
	c.flows = c.flows[:last]
	s.markDirty(c)
	s.finishedSinceRebuild++
}

// maybeRebuildComponents re-derives the component partition from the
// active flows once enough finishes have accumulated that stale merges
// may be holding unrelated flows together. Rebuilding marks every
// component dirty, which forces a full (but output-identical) recompute —
// the cost is bounded by amortizing against the finishes that paid for
// it.
func (s *Sim) maybeRebuildComponents() {
	if s.finishedSinceRebuild <= len(s.flows)+16 {
		return
	}
	s.rebuildComponents()
}

func (s *Sim) rebuildComponents() {
	s.finishedSinceRebuild = 0
	// Recycle every live component before the generation bump orphans it.
	// dirtyComps is the only registry we keep, so sweep via the flows:
	// each live component appears at exactly one root.
	for _, f := range s.flows {
		if len(f.task.path) == 0 {
			continue
		}
		root := s.findRoot(f.task.path[0].Res)
		if root.comp != nil {
			s.recycleComponent(root.comp)
			root.comp = nil
		}
	}
	for _, c := range s.dirtyComps {
		if c.dead {
			s.recycleComponent(c)
		}
	}
	s.dirtyComps = s.dirtyComps[:0]
	s.ufGen++
	for _, f := range s.flows {
		s.componentAdmit(f)
	}
}

