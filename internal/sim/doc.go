// Package sim implements a deterministic discrete-event simulator used as
// the execution substrate for all training systems in this repository.
//
// The simulator models three kinds of hardware primitives:
//
//   - Resource: a bandwidth-shared link (e.g. a PCIe link or a CPU root
//     complex). Concurrent flows crossing a Resource share its capacity
//     under max-min fairness, with strict priority classes: higher-priority
//     flows are allocated bandwidth first, and equal-priority flows split
//     the residue fairly. This reproduces the contention behaviour of
//     commodity GPU servers where several GPUs hang off one root complex.
//
//   - Engine: an exclusive serial executor (a GPU compute engine, or a DMA
//     copy engine). At most one task occupies an Engine at a time; queued
//     tasks are started in priority order, then FIFO.
//
//   - MemPool: a finite capacity with blocking allocation (GPU memory).
//     Alloc tasks complete only once capacity is available; waiters are
//     served strictly FIFO so schedules remain deterministic.
//
// Work is described as a DAG of Tasks (Compute, Transfer, Alloc, Free and
// virtual join nodes). A Transfer becomes a flow across a path of
// Resources once its dependencies complete and its copy engine is free.
// Run executes the DAG to completion and returns the makespan.
//
// All times are float64 seconds and all sizes float64 bytes. The simulator
// is fully deterministic: ties are broken by task creation order.
//
// The event loop is incremental: flows are grouped into connected
// components by a union-find over the resources their paths touch, and an
// event re-runs the fair-sharing computation only for the components it
// perturbed (component.go). Flow progress is settled lazily when a flow's
// rate changes (flow.go), and the next event is picked from an indexed
// min-heap of predicted completion times (flowheap.go), so per-event cost
// scales with the perturbation, not with the number of active flows. The
// pre-incremental global recompute is retained as a test-only oracle that
// the differential tests hold bitwise-equal to the incremental scheduler.
package sim
