package sim

import "testing"

// benchFlowSim builds a simulator with a contended flow set resembling a
// Mobius step: nFlows transfers spread over shared root complexes and
// per-GPU links, in several priority classes.
func benchFlowSim(nFlows int) *Sim {
	s := New()
	rc := []*Resource{
		s.NewResource("rc0", 13.1e9),
		s.NewResource("rc1", 13.1e9),
	}
	links := make([]*Resource, 8)
	for i := range links {
		links[i] = s.NewResource("link", 26.2e9)
	}
	for f := 0; f < nFlows; f++ {
		path := Path(links[f%len(links)], rc[f%len(rc)])
		t := s.Transfer("t", nil, path, float64(1+f)*1e8, f%4)
		s.beginFlow(t)
	}
	return s
}

// BenchmarkSimRecomputeRates measures one full max-min fair rate
// recomputation over a contended 64-flow set — the per-event hot path of
// the discrete-event simulator.
func BenchmarkSimRecomputeRates(b *testing.B) {
	s := benchFlowSim(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ratesDirty = true
		s.recomputeRates()
	}
}
