package sim

import (
	"fmt"
	"testing"
)

// benchFlowSim builds a simulator with a contended flow set resembling a
// Mobius step: nFlows transfers spread over shared root complexes and
// per-GPU links, in several priority classes. The flows are admitted
// directly into the serial shard so rate computation can be driven
// without running the event loop.
func benchFlowSim(nFlows int) (*Sim, *shard) {
	s := New()
	rc := []*Resource{
		s.NewResource("rc0", 13.1e9),
		s.NewResource("rc1", 13.1e9),
	}
	links := make([]*Resource, 8)
	for i := range links {
		links[i] = s.NewResource("link", 26.2e9)
	}
	var tasks []*Task
	for f := 0; f < nFlows; f++ {
		path := Path(links[f%len(links)], rc[f%len(rc)])
		tasks = append(tasks, s.Transfer("t", nil, path, float64(1+f)*1e8, f%4))
	}
	sh := s.serialShard()
	for _, t := range tasks {
		sh.beginFlow(t)
	}
	return s, sh
}

// BenchmarkSimRecomputeRates measures one full max-min fair rate
// recomputation over a contended 64-flow set — the cost the incremental
// scheduler avoids paying per event. Oracle mode forces the whole flow set
// through water-filling, as the pre-incremental scheduler did on every
// event.
func BenchmarkSimRecomputeRates(b *testing.B) {
	s, sh := benchFlowSim(64)
	s.rateOracle = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.ratesDirty = true
		sh.recomputeRates()
	}
}

// buildChurn constructs the standing churn workload used by the
// contention and sparse benchmarks: `groups` islands of one root complex
// (13.1 GB/s) plus four links (26.2 GB/s), each island carrying `streams`
// chains of `chain` dependent transfers. Every completion admits the next
// transfer in its chain, so the event loop sees constant component churn
// while ~groups×streams flows stay concurrently active. Paths are built
// through the interning constructor, as the hardware layer does.
func buildChurn(s *Sim, groups, streams, chain int) {
	for g := 0; g < groups; g++ {
		rc := s.NewResource("rc", 13.1e9)
		links := make([]*Resource, 4)
		for i := range links {
			links[i] = s.NewResource("link", 26.2e9)
		}
		for st := 0; st < streams; st++ {
			var prev *Task
			for k := 0; k < chain; k++ {
				// The group index staggers the byte pattern so completions
				// across islands land at distinct instants, as they do in
				// any real pipeline; a perfectly symmetric workload would
				// perturb every component at every event and hide the
				// locality the incremental scheduler exploits.
				bytes := float64(1+(g*5+st*7+k)%13) * 64e6
				prev = s.Transfer("t", nil, s.Path(links[st%len(links)], rc), bytes, st%4, prev)
			}
		}
	}
}

// runChurn executes one full churn simulation under the given scheduler
// mode, rebuilding the topology and DAG from scratch (the historical
// whole-run benchmark shape: construction cost included).
func runChurn(b *testing.B, groups, streams, chain int, oracle bool) {
	b.Helper()
	s := New()
	s.rateOracle = oracle
	buildChurn(s, groups, streams, chain)
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchConstruct measures topology and DAG construction alone.
func benchConstruct(b *testing.B, groups, streams, chain int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		buildChurn(s, groups, streams, chain)
		if len(s.tasks) == 0 {
			b.Fatal("no tasks built")
		}
	}
}

// benchSteady measures execution alone: the topology and DAG are built
// once and every iteration replays them through Reset+Run, the shape the
// chaos harness and experiment grids use. parallelism 0 is the serial
// incremental scheduler; K ≥ 1 runs the sharded scheduler on K workers.
func benchSteady(b *testing.B, groups, streams, chain, parallelism int) {
	s := New()
	s.Parallelism = parallelism
	buildChurn(s, groups, streams, chain)
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimContention is the many-flow contention case from the issue:
// shared root complexes with 64..1024 concurrent flows (8 groups ×
// streams/group × 8-deep chains). The incremental scheduler only
// re-waterfills the perturbed island per event, so its per-flow cost stays
// flat while the oracle (global recompute, the pre-incremental behavior)
// grows linearly per event — quadratic in total work. The construct and
// steady sub-benchmarks split the historical build-plus-run shape into
// its construction and execution halves; parallel=4 runs the steady
// shape through the sharded scheduler.
func BenchmarkSimContention(b *testing.B) {
	for _, streams := range []int{8, 32, 128} {
		flows := 8 * streams
		b.Run(fmt.Sprintf("flows=%d/construct", flows), func(b *testing.B) {
			benchConstruct(b, 8, streams, 8)
		})
		for _, mode := range []struct {
			name   string
			oracle bool
		}{{"incremental", false}, {"oracle", true}} {
			b.Run(fmt.Sprintf("flows=%d/%s", flows, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runChurn(b, 8, streams, 8, mode.oracle)
				}
			})
		}
		b.Run(fmt.Sprintf("flows=%d/steady", flows), func(b *testing.B) {
			benchSteady(b, 8, streams, 8, 0)
		})
		b.Run(fmt.Sprintf("flows=%d/parallel=4", flows), func(b *testing.B) {
			benchSteady(b, 8, streams, 8, 4)
		})
	}
}

// BenchmarkSimSparse is the sparse many-NVLink case: hundreds of
// single-stream islands (a point-to-point NVLink mesh), where almost every
// event perturbs a one-flow component. This is the best case for
// component-local recomputation and the worst for a global sweep. With
// only 8 transfers per island the historical whole-run shape is dominated
// by construction; the construct/steady split reports the two costs
// separately.
func BenchmarkSimSparse(b *testing.B) {
	for _, groups := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("links=%d/construct", groups), func(b *testing.B) {
			benchConstruct(b, groups, 1, 8)
		})
		for _, mode := range []struct {
			name   string
			oracle bool
		}{{"incremental", false}, {"oracle", true}} {
			b.Run(fmt.Sprintf("links=%d/%s", groups, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runChurn(b, groups, 1, 8, mode.oracle)
				}
			})
		}
		b.Run(fmt.Sprintf("links=%d/steady", groups), func(b *testing.B) {
			benchSteady(b, groups, 1, 8, 0)
		})
		b.Run(fmt.Sprintf("links=%d/parallel=4", groups), func(b *testing.B) {
			benchSteady(b, groups, 1, 8, 4)
		})
	}
}
