package sim

import (
	"errors"
	"fmt"
	"testing"
)

// TestStructuredErrorsRoundTripWrapping audits every structured error the
// simulator can return: each must survive fmt.Errorf("%w") wrapping (as
// the pipeline, core, and elastic layers do) and come back out through
// errors.As with its fields intact, and an instance must errors.Is-match
// itself through the same chain. A layer that wrapped with %v instead of
// %w would break the elastic package's failure classification.
func TestStructuredErrorsRoundTripWrapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		as   func(error) (error, bool)
	}{
		{
			"OOMError",
			&OOMError{Pool: "gpu0.mem", Task: "act", Need: 2, Capacity: 1},
			func(err error) (error, bool) { var e *OOMError; ok := errors.As(err, &e); return e, ok },
		},
		{
			"MemAccountError",
			&MemAccountError{Pool: "dram", Task: "free", Freed: 2, Below: 1},
			func(err error) (error, bool) { var e *MemAccountError; ok := errors.As(err, &e); return e, ok },
		},
		{
			"ResourceLostError",
			&ResourceLostError{Resource: "gpu1", At: 2.5, Victims: []string{"t1"}},
			func(err error) (error, bool) { var e *ResourceLostError; ok := errors.As(err, &e); return e, ok },
		},
		{
			"CorruptionError",
			&CorruptionError{Task: "CK3", At: 1.25, Attempts: 3},
			func(err error) (error, bool) { var e *CorruptionError; ok := errors.As(err, &e); return e, ok },
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wrapped := fmt.Errorf("core: %w", fmt.Errorf("elastic: step 3: %w", c.err))
			got, ok := c.as(wrapped)
			if !ok {
				t.Fatalf("errors.As failed through double wrap for %v", c.err)
			}
			if got.Error() != c.err.Error() {
				t.Fatalf("fields lost in wrap: got %v, want %v", got, c.err)
			}
			if !errors.Is(wrapped, c.err) {
				t.Fatalf("errors.Is failed through double wrap for %v", c.err)
			}
			if c.err.Error() == "" {
				t.Fatal("empty error message")
			}
		})
	}
}
