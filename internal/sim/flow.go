package sim

import "sort"

// flow is an in-flight transfer task: remaining payload bytes plus the
// rate currently assigned by the fair-sharing computation.
type flow struct {
	task      *Task
	remaining float64
	rate      float64
}

// infiniteRate stands in for an unconstrained transfer (empty path).
const infiniteRate = 1e30

// recomputeRates assigns a rate to every active flow using strict-priority
// max-min fairness (progressive filling / water-filling):
//
//  1. Flows are grouped by priority; higher classes are served first
//     against the residual capacity left by the classes above them.
//  2. Within a class, rates are max-min fair: repeatedly find the most
//     congested resource, freeze every unfixed flow crossing it at that
//     resource's fair share, and subtract their consumption.
//
// A flow with PathElem weight w consumes w bytes of resource capacity per
// payload byte, which models staged transfers that cross a root complex
// twice.
func (s *Sim) recomputeRates() {
	if !s.ratesDirty {
		return
	}
	s.ratesDirty = false
	if len(s.flows) == 0 {
		return
	}

	// Reset residual capacity on every resource touched by an active flow.
	seen := s.scratchRes
	clear(seen)
	for _, f := range s.flows {
		for _, pe := range f.task.path {
			if _, ok := seen[pe.Res]; !ok {
				seen[pe.Res] = struct{}{}
				pe.Res.residual = pe.Res.capacity
				pe.Res.demand = 0
			}
		}
	}

	// Group flows by priority, descending; higher classes fill first.
	byPrio := map[int][]*flow{}
	var prios []int
	for _, f := range s.flows {
		p := f.task.priority
		if _, ok := byPrio[p]; !ok {
			prios = append(prios, p)
		}
		byPrio[p] = append(byPrio[p], f)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(prios)))

	for _, p := range prios {
		class := byPrio[p]
		sort.Slice(class, func(i, j int) bool { return class[i].task.id < class[j].task.id })
		waterFill(class)
	}
}

// waterFill performs one max-min fair allocation round for a single
// priority class, consuming the resources' residual capacities.
func waterFill(class []*flow) {
	fixed := make([]bool, len(class))
	unfixed := len(class)

	for unfixed > 0 {
		// Demand per resource: sum of path weights of unfixed flows.
		for i, f := range class {
			if fixed[i] {
				continue
			}
			for _, pe := range f.task.path {
				pe.Res.demand += pe.Weight
			}
		}

		// The binding share is the smallest residual/demand over resources
		// that carry at least one unfixed flow.
		minShare := -1.0
		for i, f := range class {
			if fixed[i] {
				continue
			}
			for _, pe := range f.task.path {
				if pe.Res.demand <= 0 {
					continue
				}
				share := pe.Res.residual / pe.Res.demand
				if minShare < 0 || share < minShare {
					minShare = share
				}
			}
		}

		if minShare < 0 {
			// Remaining flows have empty paths: unconstrained.
			for i := range class {
				if !fixed[i] {
					class[i].rate = infiniteRate
					fixed[i] = true
					unfixed--
				}
			}
			clearDemand(class)
			return
		}

		// Mark binding resources before any subtraction mutates residuals.
		bindingRes := map[*Resource]bool{}
		for i, f := range class {
			if fixed[i] {
				continue
			}
			for _, pe := range f.task.path {
				if pe.Res.demand <= 0 {
					continue
				}
				if pe.Res.residual/pe.Res.demand <= minShare*(1+1e-12) {
					bindingRes[pe.Res] = true
				}
			}
		}

		// Freeze every unfixed flow that crosses a binding resource.
		progress := false
		for i, f := range class {
			if fixed[i] {
				continue
			}
			binding := false
			for _, pe := range f.task.path {
				if bindingRes[pe.Res] {
					binding = true
					break
				}
			}
			if !binding {
				continue
			}
			f.rate = minShare
			fixed[i] = true
			unfixed--
			progress = true
			for _, pe := range f.task.path {
				pe.Res.residual -= minShare * pe.Weight
				if pe.Res.residual < 0 {
					pe.Res.residual = 0
				}
			}
		}
		clearDemand(class)
		if !progress {
			// Defensive: cannot happen with positive weights, but never
			// spin forever on pathological float input.
			for i := range class {
				if !fixed[i] {
					class[i].rate = minShare
					fixed[i] = true
					unfixed--
				}
			}
		}
	}
}

func clearDemand(class []*flow) {
	for _, f := range class {
		for _, pe := range f.task.path {
			pe.Res.demand = 0
		}
	}
}
