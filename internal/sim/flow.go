package sim

import "math"

// flow is an in-flight transfer task: remaining payload bytes plus the
// rate currently assigned by the fair-sharing computation. Progress is
// lazy (see settleFlow): remaining and per-resource carried accounting
// are settled only when the rate actually changes or the flow completes,
// with lastUpdate recording the instant the stored remaining was exact.
type flow struct {
	task      *Task
	remaining float64
	rate      float64

	// nextRate is scratch written by waterFill; applyRates promotes it to
	// rate (settling first) only when it differs bitwise, so unperturbed
	// flows keep their prediction and heap position untouched.
	nextRate float64

	// lastUpdate is the simulated instant remaining was last settled.
	lastUpdate Time
	// pred is the predicted completion time (lastUpdate+remaining/rate),
	// the flow's key in shard.flowQueue.
	pred Time
	// heapIdx is the flow's position in shard.flowQueue (-1 when absent).
	heapIdx int
	// listIdx is the flow's position in the unordered shard.flows list.
	listIdx int
	// compIdx is the flow's position in its component's member list.
	compIdx int
}

// infiniteRate stands in for an unconstrained transfer (empty path).
const infiniteRate = 1e30

// predSlackFloor is the absolute remaining-bytes tolerance under which a
// flow counts as complete regardless of rate (matching the completion
// slack in shard.advance).
const predSlackFloor = 1e-9

// predict returns the completion-time key for the heap. A starved flow
// (rate 0 in a lower priority class) never completes on its own, unless
// its remaining payload is already within the completion slack.
func (f *flow) predict() Time {
	if f.rate > 0 {
		return f.lastUpdate + f.remaining/f.rate
	}
	if f.remaining <= predSlackFloor {
		return f.lastUpdate
	}
	return math.Inf(1)
}

// settleFlow brings f's lazy accounting up to the current clock: the
// payload transferred since lastUpdate is subtracted from remaining and
// added to each path resource's carried counter. Rates are piecewise
// constant between recomputes, so settling only at rate changes and
// completion is exact.
func (sh *shard) settleFlow(f *flow) {
	dt := sh.now - f.lastUpdate
	if dt > 0 && f.rate != 0 {
		f.remaining -= f.rate * dt
		for _, pe := range f.task.path {
			pe.Res.carried += f.rate * pe.Weight * dt
		}
	}
	f.lastUpdate = sh.now
}

// settleAllFlows settles every active flow; called once when a shard's
// run exits so utilization accounting and invariant checks see fully
// settled state even on halted runs.
func (sh *shard) settleAllFlows() {
	for _, f := range sh.flows {
		sh.settleFlow(f)
	}
}

// recomputeRates reassigns rates after the flow set or capacities
// changed, using strict-priority max-min fairness (progressive filling /
// water-filling):
//
//  1. A component's flows are grouped by priority; higher classes are
//     served first against the residual capacity left by the classes
//     above them.
//  2. Within a class, rates are max-min fair: repeatedly find the most
//     congested resource, freeze every unfixed flow crossing it at that
//     resource's fair share, and subtract their consumption.
//
// A flow with PathElem weight w consumes w bytes of resource capacity per
// payload byte, which models staged transfers that cross a root complex
// twice.
//
// Water-filling runs component by component in every mode. Components
// share no resources, so filling them separately is exact — and it makes
// the result independent of which other components happen to be dirty at
// the same instant, which is what lets the sharded scheduler (one
// component set per shard) reproduce the serial schedule bitwise. The
// incremental path fills only the components marked dirty since the last
// call; the retained test-only oracle (rateOracle) fills every live
// component on every event. Both must produce identical schedules — the
// differential tests assert exactly that.
//
// The computation is allocation-free in steady state: it reuses the
// scratch slices on the shard and the scratch fields on Resource
// (epoch-marked residual/demand, the per-round binding flag) instead of
// building maps per event, and relies on each component's flow list
// providing a deterministic iteration order shared by all scheduler
// modes, so no per-call sort is needed.
func (sh *shard) recomputeRates() {
	if !sh.ratesDirty {
		return
	}
	sh.ratesDirty = false

	if sh.sim.rateOracle {
		// Oracle mode: drain the dirty queue for its side effects only
		// (recycling dead components, recovering splits), then fill every
		// live component, de-duplicated by visit epoch.
		sh.resolveDirty(false)
		sh.compVisit++
		for _, f := range sh.flows {
			if len(f.task.path) == 0 {
				continue
			}
			c := sh.findRoot(f.task.path[0].Res).comp
			if c == nil || c.visit == sh.compVisit {
				continue
			}
			c.visit = sh.compVisit
			sh.fillComponent(c)
		}
		return
	}

	for _, c := range sh.resolveDirty(true) {
		sh.fillComponent(c)
	}
}

// resolveDirty drains the dirty-component queue: dead components are
// recycled, components whose finish count outgrew their live size are
// rebuilt (their replacements re-enter the queue and are drained by this
// same call), and — when collect is set — the surviving components are
// returned for filling.
func (sh *shard) resolveDirty(collect bool) []*component {
	work := sh.compScratch[:0]
	for i := 0; i < len(sh.dirtyComps); i++ {
		c := sh.dirtyComps[i]
		c.dirty = false
		if c.dead {
			sh.recycleComponent(c)
			continue
		}
		if c.finished > len(c.flows)+16 {
			// Enough finishes that stale merges may be holding unrelated
			// flows together: re-derive this component's partition. The
			// rebuild appends its results to dirtyComps, so the loop picks
			// them up.
			sh.rebuildComponent(c)
			continue
		}
		if collect {
			work = append(work, c)
		}
	}
	sh.dirtyComps = sh.dirtyComps[:0]
	sh.compScratch = work
	return work
}

// fillComponent runs the strict-priority water-fill over one component
// and applies the resulting rates.
func (sh *shard) fillComponent(c *component) {
	set := c.flows
	if len(set) == 0 {
		return
	}

	// Reset residual capacity on every resource the component touches,
	// via the component's cached distinct-resource list (component.go) —
	// a handful of entries instead of one visit per flow-hop.
	for _, r := range c.resources {
		r.residual = r.capacity
		r.demand = 0
	}

	// Bucket the set by priority in ONE pass: each flow is appended to
	// its class's reusable scratch slice, preserving the relative order
	// within the component. The distinct class count is tiny, so the
	// per-flow class lookup is a short linear probe, not a map.
	prios := sh.prioScratch[:0]
	buckets := sh.classBuckets
	for _, f := range set {
		p := f.task.priority
		k := -1
		for i, q := range prios {
			if q == p {
				k = i
				break
			}
		}
		if k < 0 {
			k = len(prios)
			prios = append(prios, p)
			if k < len(buckets) {
				buckets[k] = buckets[k][:0]
			} else {
				buckets = append(buckets, nil)
			}
		}
		buckets[k] = append(buckets[k], f)
	}
	// Serve classes highest priority first (insertion sort over the tiny
	// distinct-class list, buckets swapped in tandem).
	for i := 1; i < len(prios); i++ {
		for j := i; j > 0 && prios[j] > prios[j-1]; j-- {
			prios[j], prios[j-1] = prios[j-1], prios[j]
			buckets[j], buckets[j-1] = buckets[j-1], buckets[j]
		}
	}
	sh.prioScratch = prios
	sh.classBuckets = buckets

	for k := range prios {
		sh.waterFill(buckets[k])
	}
	sh.applyRates(set)
}

// applyRates promotes the water-fill results: every flow whose new rate
// differs (bitwise) from its current one is settled at the old rate, then
// re-keyed in the completion heap. Flows whose rate is reproduced exactly
// are untouched, which is what makes a conservative (over-large)
// recompute set behaviorally invisible.
func (sh *shard) applyRates(set []*flow) {
	for _, f := range set {
		if f.nextRate == f.rate {
			continue
		}
		sh.settleFlow(f)
		f.rate = f.nextRate
		f.pred = f.predict()
		sh.flowQueue.fix(f)
	}
}

// waterFill performs one max-min fair allocation round for a single
// priority class, consuming the resources' residual capacities. Results
// are written to flow.nextRate; applyRates decides what actually changed.
//
// Per round, the binding-share search and the scratch clearing run over
// the distinct resources the round's unfixed flows touch — a handful per
// component — instead of re-walking every flow-hop. The set of
// residual/demand quotients examined is unchanged and a float minimum is
// order-independent, so the allocation stays bitwise-identical to the
// per-hop formulation; only the freeze pass, whose flow order decides
// the residual subtraction order, still iterates flows.
func (sh *shard) waterFill(class []*flow) {
	fixed := sh.fixedScratch[:0]
	for range class {
		fixed = append(fixed, false)
	}
	sh.fixedScratch = fixed
	unfixed := len(class)

	for unfixed > 0 {
		// Demand per resource: sum of path weights of unfixed flows. A
		// resource's first contribution this round registers it in the
		// distinct-resource list (demand is zero between rounds).
		res := sh.resScratch[:0]
		for i, f := range class {
			if fixed[i] {
				continue
			}
			for _, pe := range f.task.path {
				if pe.Res.demand == 0 {
					res = append(res, pe.Res)
				}
				pe.Res.demand += pe.Weight
			}
		}
		sh.resScratch = res

		// The binding share is the smallest residual/demand over resources
		// that carry at least one unfixed flow.
		minShare := -1.0
		for _, r := range res {
			share := r.residual / r.demand
			if minShare < 0 || share < minShare {
				minShare = share
			}
		}

		if minShare < 0 {
			// Remaining flows have empty paths: unconstrained. No resource
			// accumulated demand, so there is no scratch to clear.
			for i := range class {
				if !fixed[i] {
					class[i].nextRate = infiniteRate
					fixed[i] = true
					unfixed--
				}
			}
			return
		}

		// Mark binding resources before any subtraction mutates residuals.
		for _, r := range res {
			if r.residual/r.demand <= minShare*(1+1e-12) {
				r.binding = true
			}
		}

		// Freeze every unfixed flow that crosses a binding resource.
		progress := false
		for i, f := range class {
			if fixed[i] {
				continue
			}
			binding := false
			for _, pe := range f.task.path {
				if pe.Res.binding {
					binding = true
					break
				}
			}
			if !binding {
				continue
			}
			f.nextRate = minShare
			fixed[i] = true
			unfixed--
			progress = true
			for _, pe := range f.task.path {
				pe.Res.residual -= minShare * pe.Weight
				if pe.Res.residual < 0 {
					pe.Res.residual = 0
				}
			}
		}
		for _, r := range res {
			r.demand = 0
			r.binding = false
		}
		if !progress {
			// Defensive: cannot happen with positive weights, but never
			// spin forever on pathological float input.
			for i := range class {
				if !fixed[i] {
					class[i].nextRate = minShare
					fixed[i] = true
					unfixed--
				}
			}
		}
	}
}
