package sim

import "math"

// flow is an in-flight transfer task: remaining payload bytes plus the
// rate currently assigned by the fair-sharing computation. Progress is
// lazy (see settleFlow): remaining and per-resource carried accounting
// are settled only when the rate actually changes or the flow completes,
// with lastUpdate recording the instant the stored remaining was exact.
type flow struct {
	task      *Task
	remaining float64
	rate      float64

	// nextRate is scratch written by waterFill; applyRates promotes it to
	// rate (settling first) only when it differs bitwise, so unperturbed
	// flows keep their prediction and heap position untouched.
	nextRate float64

	// lastUpdate is the simulated instant remaining was last settled.
	lastUpdate Time
	// pred is the predicted completion time (lastUpdate+remaining/rate),
	// the flow's key in Sim.flowQueue.
	pred Time
	// heapIdx is the flow's position in Sim.flowQueue (-1 when absent).
	heapIdx int
	// listIdx is the flow's position in the unordered Sim.flows list.
	listIdx int
	// compIdx is the flow's position in its component's member list.
	compIdx int
}

// infiniteRate stands in for an unconstrained transfer (empty path).
const infiniteRate = 1e30

// predSlackFloor is the absolute remaining-bytes tolerance under which a
// flow counts as complete regardless of rate (matching the completion
// slack in Sim.advance).
const predSlackFloor = 1e-9

// predict returns the completion-time key for the heap. A starved flow
// (rate 0 in a lower priority class) never completes on its own, unless
// its remaining payload is already within the completion slack.
func (f *flow) predict() Time {
	if f.rate > 0 {
		return f.lastUpdate + f.remaining/f.rate
	}
	if f.remaining <= predSlackFloor {
		return f.lastUpdate
	}
	return math.Inf(1)
}

// settleFlow brings f's lazy accounting up to the current clock: the
// payload transferred since lastUpdate is subtracted from remaining and
// added to each path resource's carried counter. Rates are piecewise
// constant between recomputes, so settling only at rate changes and
// completion is exact.
func (s *Sim) settleFlow(f *flow) {
	dt := s.now - f.lastUpdate
	if dt > 0 && f.rate != 0 {
		f.remaining -= f.rate * dt
		for _, pe := range f.task.path {
			pe.Res.carried += f.rate * pe.Weight * dt
		}
	}
	f.lastUpdate = s.now
}

// settleAllFlows settles every active flow; called once when Run exits so
// utilization accounting and invariant checks see fully settled state
// even on halted runs.
func (s *Sim) settleAllFlows() {
	for _, f := range s.flows {
		s.settleFlow(f)
	}
}

// recomputeRates reassigns rates after the flow set or capacities
// changed, using strict-priority max-min fairness (progressive filling /
// water-filling):
//
//  1. Flows are grouped by priority; higher classes are served first
//     against the residual capacity left by the classes above them.
//  2. Within a class, rates are max-min fair: repeatedly find the most
//     congested resource, freeze every unfixed flow crossing it at that
//     resource's fair share, and subtract their consumption.
//
// A flow with PathElem weight w consumes w bytes of resource capacity per
// payload byte, which models staged transfers that cross a root complex
// twice.
//
// The incremental scheduler recomputes only the connected components
// marked dirty since the last call (see component.go); flows in
// unperturbed components keep their rates, predictions, and heap
// positions. The retained test-only oracle (rateOracle) instead
// recomputes every active flow, the pre-incremental global behavior:
// because water-filling is a pure per-component function and rates are
// only applied on bitwise change, both modes must produce identical
// schedules — the differential tests assert exactly that.
//
// The computation is allocation-free in steady state: it reuses the
// scratch slices on Sim and the scratch fields on Resource (epoch-marked
// residual/demand, the per-round binding flag) instead of building maps
// per event, and relies on each component's flow list providing a
// deterministic iteration order shared by both scheduler modes, so no
// per-call sort is needed.
func (s *Sim) recomputeRates() {
	if !s.ratesDirty {
		return
	}
	// Recover component splits first so the rebuilt (all-dirty) partition
	// is drained by this very recompute.
	s.maybeRebuildComponents()
	s.ratesDirty = false

	// Drain the dirty-component queue into the recompute set. Dead
	// components (absorbed by merges) are recycled here.
	set := s.recomputeScratch[:0]
	for _, c := range s.dirtyComps {
		c.dirty = false
		if c.dead {
			s.recycleComponent(c)
			continue
		}
		set = append(set, c.flows...)
	}
	s.dirtyComps = s.dirtyComps[:0]
	if s.rateOracle {
		// Oracle mode: global recompute over every active flow, exactly as
		// the pre-incremental scheduler did. The set is assembled component
		// by component so each resource sees its flows in the same order
		// the incremental path would produce. Empty-path flows are omitted:
		// they hold infiniteRate forever, so water-fill and applyRates are
		// both no-ops for them.
		set = set[:0]
		s.compVisit++
		for _, f := range s.flows {
			if len(f.task.path) == 0 {
				continue
			}
			c := s.findRoot(f.task.path[0].Res).comp
			if c == nil || c.visit == s.compVisit {
				continue
			}
			c.visit = s.compVisit
			set = append(set, c.flows...)
		}
	}
	s.recomputeScratch = set
	if len(set) == 0 {
		return
	}

	// Reset residual capacity on every resource touched by the recompute
	// set. The epoch mark replaces a per-call "seen" set.
	s.rateEpoch++
	for _, f := range set {
		for _, pe := range f.task.path {
			if pe.Res.mark != s.rateEpoch {
				pe.Res.mark = s.rateEpoch
				pe.Res.residual = pe.Res.capacity
				pe.Res.demand = 0
			}
		}
	}

	// Bucket the set by priority in ONE pass: each flow is appended to
	// its class's reusable scratch slice, preserving the relative order
	// within each component. The distinct class count is tiny, so the per-flow
	// class lookup is a short linear probe, not a map.
	prios := s.prioScratch[:0]
	buckets := s.classBuckets
	for _, f := range set {
		p := f.task.priority
		k := -1
		for i, q := range prios {
			if q == p {
				k = i
				break
			}
		}
		if k < 0 {
			k = len(prios)
			prios = append(prios, p)
			if k < len(buckets) {
				buckets[k] = buckets[k][:0]
			} else {
				buckets = append(buckets, nil)
			}
		}
		buckets[k] = append(buckets[k], f)
	}
	// Serve classes highest priority first (insertion sort over the tiny
	// distinct-class list, buckets swapped in tandem).
	for i := 1; i < len(prios); i++ {
		for j := i; j > 0 && prios[j] > prios[j-1]; j-- {
			prios[j], prios[j-1] = prios[j-1], prios[j]
			buckets[j], buckets[j-1] = buckets[j-1], buckets[j]
		}
	}
	s.prioScratch = prios
	s.classBuckets = buckets

	for k := range prios {
		s.waterFill(buckets[k])
	}
	s.applyRates(set)
}

// applyRates promotes the water-fill results: every flow whose new rate
// differs (bitwise) from its current one is settled at the old rate, then
// re-keyed in the completion heap. Flows whose rate is reproduced exactly
// are untouched, which is what makes a conservative (over-large)
// recompute set behaviorally invisible.
func (s *Sim) applyRates(set []*flow) {
	for _, f := range set {
		if f.nextRate == f.rate {
			continue
		}
		s.settleFlow(f)
		f.rate = f.nextRate
		f.pred = f.predict()
		s.flowQueue.fix(f)
	}
}

// waterFill performs one max-min fair allocation round for a single
// priority class, consuming the resources' residual capacities. Results
// are written to flow.nextRate; applyRates decides what actually changed.
func (s *Sim) waterFill(class []*flow) {
	fixed := s.fixedScratch[:0]
	for range class {
		fixed = append(fixed, false)
	}
	s.fixedScratch = fixed
	unfixed := len(class)

	for unfixed > 0 {
		// Demand per resource: sum of path weights of unfixed flows.
		for i, f := range class {
			if fixed[i] {
				continue
			}
			for _, pe := range f.task.path {
				pe.Res.demand += pe.Weight
			}
		}

		// The binding share is the smallest residual/demand over resources
		// that carry at least one unfixed flow.
		minShare := -1.0
		for i, f := range class {
			if fixed[i] {
				continue
			}
			for _, pe := range f.task.path {
				if pe.Res.demand <= 0 {
					continue
				}
				share := pe.Res.residual / pe.Res.demand
				if minShare < 0 || share < minShare {
					minShare = share
				}
			}
		}

		if minShare < 0 {
			// Remaining flows have empty paths: unconstrained.
			for i := range class {
				if !fixed[i] {
					class[i].nextRate = infiniteRate
					fixed[i] = true
					unfixed--
				}
			}
			clearRoundScratch(class)
			return
		}

		// Mark binding resources before any subtraction mutates residuals.
		for i, f := range class {
			if fixed[i] {
				continue
			}
			for _, pe := range f.task.path {
				if pe.Res.demand <= 0 {
					continue
				}
				if pe.Res.residual/pe.Res.demand <= minShare*(1+1e-12) {
					pe.Res.binding = true
				}
			}
		}

		// Freeze every unfixed flow that crosses a binding resource.
		progress := false
		for i, f := range class {
			if fixed[i] {
				continue
			}
			binding := false
			for _, pe := range f.task.path {
				if pe.Res.binding {
					binding = true
					break
				}
			}
			if !binding {
				continue
			}
			f.nextRate = minShare
			fixed[i] = true
			unfixed--
			progress = true
			for _, pe := range f.task.path {
				pe.Res.residual -= minShare * pe.Weight
				if pe.Res.residual < 0 {
					pe.Res.residual = 0
				}
			}
		}
		clearRoundScratch(class)
		if !progress {
			// Defensive: cannot happen with positive weights, but never
			// spin forever on pathological float input.
			for i := range class {
				if !fixed[i] {
					class[i].nextRate = minShare
					fixed[i] = true
					unfixed--
				}
			}
		}
	}
}

// clearRoundScratch resets the per-round demand accounting and binding
// marks on every resource the class touches.
func clearRoundScratch(class []*flow) {
	for _, f := range class {
		for _, pe := range f.task.path {
			pe.Res.demand = 0
			pe.Res.binding = false
		}
	}
}
