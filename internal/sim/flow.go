package sim

// flow is an in-flight transfer task: remaining payload bytes plus the
// rate currently assigned by the fair-sharing computation.
type flow struct {
	task      *Task
	remaining float64
	rate      float64
}

// infiniteRate stands in for an unconstrained transfer (empty path).
const infiniteRate = 1e30

// recomputeRates assigns a rate to every active flow using strict-priority
// max-min fairness (progressive filling / water-filling):
//
//  1. Flows are grouped by priority; higher classes are served first
//     against the residual capacity left by the classes above them.
//  2. Within a class, rates are max-min fair: repeatedly find the most
//     congested resource, freeze every unfixed flow crossing it at that
//     resource's fair share, and subtract their consumption.
//
// A flow with PathElem weight w consumes w bytes of resource capacity per
// payload byte, which models staged transfers that cross a root complex
// twice.
//
// The computation is allocation-free in steady state: it reuses the
// scratch slices on Sim and the scratch fields on Resource (epoch-marked
// residual/demand, the per-round binding flag) instead of building maps
// per event, and relies on s.flows being kept id-ordered on insert (see
// beginFlow) so no per-call sort is needed.
func (s *Sim) recomputeRates() {
	if !s.ratesDirty {
		return
	}
	s.ratesDirty = false
	if len(s.flows) == 0 {
		return
	}

	// Reset residual capacity on every resource touched by an active flow.
	// The epoch mark replaces a per-call "seen" set.
	s.rateEpoch++
	for _, f := range s.flows {
		for _, pe := range f.task.path {
			if pe.Res.mark != s.rateEpoch {
				pe.Res.mark = s.rateEpoch
				pe.Res.residual = pe.Res.capacity
				pe.Res.demand = 0
			}
		}
	}

	// Collect the distinct priorities, descending; higher classes fill
	// first. The class count is tiny, so a linear dedup + insertion sort
	// beats building a map.
	prios := s.prioScratch[:0]
	for _, f := range s.flows {
		p := f.task.priority
		known := false
		for _, q := range prios {
			if q == p {
				known = true
				break
			}
		}
		if !known {
			prios = append(prios, p)
		}
	}
	for i := 1; i < len(prios); i++ {
		for j := i; j > 0 && prios[j] > prios[j-1]; j-- {
			prios[j], prios[j-1] = prios[j-1], prios[j]
		}
	}
	s.prioScratch = prios

	for _, p := range prios {
		// s.flows is id-ordered, so the class inherits id order.
		class := s.classScratch[:0]
		for _, f := range s.flows {
			if f.task.priority == p {
				class = append(class, f)
			}
		}
		s.classScratch = class
		s.waterFill(class)
	}
}

// waterFill performs one max-min fair allocation round for a single
// priority class, consuming the resources' residual capacities.
func (s *Sim) waterFill(class []*flow) {
	fixed := s.fixedScratch[:0]
	for range class {
		fixed = append(fixed, false)
	}
	s.fixedScratch = fixed
	unfixed := len(class)

	for unfixed > 0 {
		// Demand per resource: sum of path weights of unfixed flows.
		for i, f := range class {
			if fixed[i] {
				continue
			}
			for _, pe := range f.task.path {
				pe.Res.demand += pe.Weight
			}
		}

		// The binding share is the smallest residual/demand over resources
		// that carry at least one unfixed flow.
		minShare := -1.0
		for i, f := range class {
			if fixed[i] {
				continue
			}
			for _, pe := range f.task.path {
				if pe.Res.demand <= 0 {
					continue
				}
				share := pe.Res.residual / pe.Res.demand
				if minShare < 0 || share < minShare {
					minShare = share
				}
			}
		}

		if minShare < 0 {
			// Remaining flows have empty paths: unconstrained.
			for i := range class {
				if !fixed[i] {
					class[i].rate = infiniteRate
					fixed[i] = true
					unfixed--
				}
			}
			clearRoundScratch(class)
			return
		}

		// Mark binding resources before any subtraction mutates residuals.
		for i, f := range class {
			if fixed[i] {
				continue
			}
			for _, pe := range f.task.path {
				if pe.Res.demand <= 0 {
					continue
				}
				if pe.Res.residual/pe.Res.demand <= minShare*(1+1e-12) {
					pe.Res.binding = true
				}
			}
		}

		// Freeze every unfixed flow that crosses a binding resource.
		progress := false
		for i, f := range class {
			if fixed[i] {
				continue
			}
			binding := false
			for _, pe := range f.task.path {
				if pe.Res.binding {
					binding = true
					break
				}
			}
			if !binding {
				continue
			}
			f.rate = minShare
			fixed[i] = true
			unfixed--
			progress = true
			for _, pe := range f.task.path {
				pe.Res.residual -= minShare * pe.Weight
				if pe.Res.residual < 0 {
					pe.Res.residual = 0
				}
			}
		}
		clearRoundScratch(class)
		if !progress {
			// Defensive: cannot happen with positive weights, but never
			// spin forever on pathological float input.
			for i := range class {
				if !fixed[i] {
					class[i].rate = minShare
					fixed[i] = true
					unfixed--
				}
			}
		}
	}
}

// clearRoundScratch resets the per-round demand accounting and binding
// marks on every resource the class touches.
func clearRoundScratch(class []*flow) {
	for _, f := range class {
		for _, pe := range f.task.path {
			pe.Res.demand = 0
			pe.Res.binding = false
		}
	}
}
