package sim

import "testing"

func TestTransferLatencyDelaysFlow(t *testing.T) {
	s := New()
	s.TransferLatency = 0.5
	link := s.NewResource("link", 1e9)
	tr := s.Transfer("t", nil, Path(link), 1e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 1.5, 1e-9, "latency + transfer time")
	almost(t, tr.End()-tr.Start(), 1.5, 1e-9, "task span includes setup")
}

func TestTransferLatencyOccupiesEngine(t *testing.T) {
	s := New()
	s.TransferLatency = 0.5
	ce := s.NewEngine("copy")
	link := s.NewResource("link", 1e9)
	s.Transfer("a", ce, Path(link), 1e9, 0)
	b := s.Transfer("b", ce, Path(link), 1e9, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Each transfer holds the engine for 1.5s: b starts at 1.5.
	almost(t, b.Start(), 1.5, 1e-9, "second transfer waits for setup+flow")
	almost(t, b.End(), 3.0, 1e-9, "second transfer completion")
}

func TestTransferLatencyZeroBytesIsInstant(t *testing.T) {
	s := New()
	s.TransferLatency = 0.5
	link := s.NewResource("link", 1e9)
	s.Transfer("zero", nil, Path(link), 0, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end > 1e-9 {
		t.Fatalf("zero-byte transfer should skip latency, took %g", end)
	}
}

func TestLatencyDoesNotConsumeBandwidth(t *testing.T) {
	// Two flows with staggered setups still share bandwidth fairly once
	// both are flowing.
	s := New()
	s.TransferLatency = 1.0
	rc := s.NewResource("rc", 10e9)
	a := s.Transfer("a", nil, Path(rc), 10e9, 0)
	b := s.Transfer("b", nil, Path(rc), 10e9, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Both set up concurrently (no engine), then share 5 GB/s each:
	// finish at 1 + 2 = 3.
	almost(t, a.End(), 3, 1e-9, "flow a")
	almost(t, b.End(), 3, 1e-9, "flow b")
}

func TestLatencyWithPriorityClasses(t *testing.T) {
	// Two flows with setup latency; the high-priority one still takes the
	// bandwidth first once both are flowing.
	s := New()
	s.TransferLatency = 0.25
	rc := s.NewResource("rc", 10e9)
	hi := s.Transfer("hi", nil, Path(rc), 10e9, 5)
	lo := s.Transfer("lo", nil, Path(rc), 10e9, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Setup ends at 0.25 for both; hi then runs alone for 1s; lo after.
	almost(t, hi.End(), 1.25, 1e-9, "high priority end")
	almost(t, lo.End(), 2.25, 1e-9, "low priority end")
}

func TestEngineAccessors(t *testing.T) {
	s := New()
	e := s.NewEngine("e")
	if e.Busy() || e.Current() != nil || e.QueueLen() != 0 {
		t.Fatal("fresh engine must be idle")
	}
	if e.Name() != "e" {
		t.Fatal("name")
	}
	s.Compute("a", e, 1)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Busy() {
		t.Fatal("engine busy after run")
	}
}

func TestTaskAccessors(t *testing.T) {
	s := New()
	e := s.NewEngine("e")
	link := s.NewResource("l", 1e9)
	c := s.Compute("c", e, 1)
	tr := s.Transfer("t", e, Path(link), 5e8, 3, c)
	if tr.Kind() != KindTransfer || tr.Bytes() != 5e8 || tr.Priority() != 3 || tr.Engine() != e {
		t.Fatal("transfer accessors")
	}
	if c.Kind() != KindCompute || c.Duration() != 1 {
		t.Fatal("compute accessors")
	}
	if len(tr.Path()) != 1 {
		t.Fatal("path accessor")
	}
	if tr.Finished() {
		t.Fatal("not yet run")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !tr.Finished() || tr.ID() == c.ID() {
		t.Fatal("post-run state")
	}
	if c.String() == "" || KindAlloc.String() != "alloc" || TaskKind(99).String() == "" {
		t.Fatal("strings")
	}
}
