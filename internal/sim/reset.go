package sim

// This file implements topology reuse. Building a large DAG is a real
// fraction of short-run cost (experiment grids, chaos replays), so rewind
// returns an executed simulator to its pre-Run state without rebuilding
// anything: task states, resource/engine/pool state, and the run results
// are cleared, while the DAG, the topology, and registered observers
// survive. The public Reset additionally clears injected faults, making
// the simulator ready for the next experiment cell on the same topology.

// rewind restores every task, resource, engine, and pool to its pre-Run
// state, keeping scheduled fault events and pre-run mutations (pool
// capacity, engine throughput) intact — it is also how a failed parallel
// attempt returns to pristine state before the serial rerun. Dependencies
// that were already finished when a task was created were never counted
// in its waiting count; they replay that way, so DAGs built incrementally
// across runs keep the dependency structure they were created with.
func (s *Sim) rewind() {
	for _, t := range s.tasks {
		t.state = statePending
		t.waiting = t.initWaiting
		t.readyAt = 0
		t.startAt = 0
		t.endAt = 0
		t.flowStarted = false
		t.retries = 0
		t.retryLatency = 0
		t.retransmits = 0
		t.tainted = false
		t.corruptExhausted = false
		t.corruptAttempts = 0
		t.silentCorrupt = false
		t.checksumCharged = false
	}
	for _, r := range s.resources {
		r.capacity = r.baseCapacity
		r.carried = 0
		r.ufGen = 0
		r.ufParent = nil
		r.comp = nil
		r.listedGen = 0
		r.listedComp = nil
	}
	for _, e := range s.engines {
		e.current = nil
		for i := range e.queue {
			e.queue[i] = nil
		}
		e.queue = e.queue[:0]
		e.kicked = false
	}
	for _, p := range s.pools {
		p.used = 0
		p.peak = 0
		p.waiters = p.waiters[:0]
	}
	// Shards re-prepare on next use.
	if s.serial != nil {
		s.serial.used = false
	}
	for _, sh := range s.shards[:s.nShards] {
		sh.used = false
	}
	s.now = 0
	s.pending = len(s.tasks)
	s.err = nil
	s.finalErr = nil
	s.started = false
	s.ran = false
	s.integrity = IntegrityStats{}
}

// Reset returns the simulator to its just-built state so the constructed
// topology and DAG can be executed again: rewind plus removal of every
// injected fault — scheduled capacity and failure events, retry and
// corruption policies, checksum configuration, engine throughput
// overrides, and pool resizes. Observers stay registered; a run after
// Reset replays the fault-free schedule bitwise.
func (s *Sim) Reset() {
	s.rewind()
	s.capEvents = s.capEvents[:0]
	s.failEvents = s.failEvents[:0]
	s.orphanCap = s.orphanCap[:0]
	s.RetryPolicy = nil
	s.CorruptionPolicy = nil
	s.Checksums = ChecksumConfig{}
	for _, e := range s.engines {
		e.throughput = 0
	}
	for _, p := range s.pools {
		p.capacity = p.baseCapacity
	}
}
