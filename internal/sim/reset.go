package sim

// This file implements topology reuse. Building a large DAG is a real
// fraction of short-run cost (experiment grids, chaos replays), so rewind
// returns an executed simulator to its pre-Run state without rebuilding
// anything: task states, resource/engine/pool state, and the run results
// are cleared, while the DAG, the topology, and registered observers
// survive. The public Reset additionally clears injected faults, making
// the simulator ready for the next experiment cell on the same topology.

// rewind restores every task, resource, engine, and pool to its pre-Run
// state, keeping scheduled fault events and pre-run mutations (pool
// capacity, engine throughput) intact — it is also how a failed parallel
// attempt returns to pristine state before the serial rerun. Dependencies
// that were already finished when a task was created were never counted
// in its waiting count; they replay that way, so DAGs built incrementally
// across runs keep the dependency structure they were created with.
func (s *Sim) rewind() {
	for _, t := range s.tasks {
		t.state = statePending
		t.waiting = t.initWaiting
		t.readyAt = 0
		t.startAt = 0
		t.endAt = 0
		t.flowStarted = false
		t.retries = 0
		t.retryLatency = 0
		t.retransmits = 0
		t.tainted = false
		t.corruptExhausted = false
		t.corruptAttempts = 0
		t.silentCorrupt = false
		t.checksumCharged = false
	}
	for _, r := range s.resources {
		r.capacity = r.baseCapacity
		r.carried = 0
		r.ufGen = 0
		r.ufParent = nil
		r.comp = nil
		r.listedGen = 0
		r.listedComp = nil
	}
	for _, e := range s.engines {
		e.current = nil
		for i := range e.queue {
			e.queue[i] = nil
		}
		e.queue = e.queue[:0]
		e.kicked = false
	}
	for _, p := range s.pools {
		p.used = 0
		p.peak = 0
		p.waiters = p.waiters[:0]
	}
	// Shards re-prepare on next use.
	if s.serial != nil {
		s.serial.used = false
	}
	for _, sh := range s.shards[:s.nShards] {
		sh.used = false
	}
	s.now = 0
	s.pending = len(s.tasks)
	s.err = nil
	s.finalErr = nil
	s.started = false
	s.ran = false
	s.integrity = IntegrityStats{}
}

// Reset returns the simulator to its just-built state so the constructed
// topology and DAG can be executed again: rewind plus removal of every
// injected fault — scheduled capacity and failure events, retry and
// corruption policies, checksum configuration, engine throughput
// overrides, and pool resizes. Observers stay registered; a run after
// Reset replays the fault-free schedule bitwise.
//
// Reset also shrinks (not just truncates) pooled run buffers that grew
// past the high-water mark observed since the previous Reset, so one
// 100k-flow run does not pin its peak memory for every later small run
// in a grid. Buffers the last run actually filled keep their capacity —
// steady-state Reset+Run loops stay allocation-free.
func (s *Sim) Reset() {
	s.rewind()
	s.capEvents = s.capEvents[:0]
	s.failEvents = s.failEvents[:0]
	s.orphanCap = s.orphanCap[:0]
	s.RetryPolicy = nil
	s.CorruptionPolicy = nil
	s.Checksums = ChecksumConfig{}
	for _, e := range s.engines {
		e.throughput = 0
	}
	for _, p := range s.pools {
		p.capacity = p.baseCapacity
	}
	s.shrinkRetained()
}

// shrinkMinCap is the retained capacity below which Reset never shrinks:
// small buffers are noise, and reclaiming them would just cause regrow
// churn in steady-state loops.
const shrinkMinCap = 4096

// shrinkSlice reclaims buf's backing array when its capacity dwarfs the
// high-water mark of the last runs (and is big enough to matter),
// returning an empty slice sized to the mark. Otherwise it returns
// buf[:0] with capacity intact.
func shrinkSlice[T any](buf []T, hwm int) []T {
	if cap(buf) <= shrinkMinCap || cap(buf) <= 2*hwm {
		return buf[:0]
	}
	if hwm == 0 {
		return nil
	}
	return make([]T, 0, hwm)
}

// shrinkRetained releases oversized pooled buffers on every shard and the
// observer merge scratch, then rearms the high-water marks for the next
// Reset window.
func (s *Sim) shrinkRetained() {
	shrink := func(sh *shard) {
		sh.events = shrinkSlice(sh.events, sh.eventsHWM)
		sh.ready = shrinkSlice(sh.ready, sh.readyHWM)
		if n := len(sh.flowPool); n > shrinkMinCap && n > 2*sh.flowsHWM {
			// The pool is a stack of recycled flow structs (len == available);
			// drop the excess so the GC can take the slab chunks behind them.
			keep := sh.flowsHWM
			np := make([]*flow, keep)
			copy(np, sh.flowPool[:keep])
			sh.flowPool = np
		}
		sh.eventsHWM, sh.flowsHWM, sh.readyHWM = 0, 0, 0
	}
	if s.serial != nil {
		shrink(s.serial)
	}
	for _, sh := range s.shards[:s.nShards] {
		shrink(sh)
	}
	s.eventScratch = shrinkSlice(s.eventScratch, s.eventScratchHWM)
	s.eventScratchHWM = 0
}
