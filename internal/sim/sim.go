package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Observer receives task lifecycle notifications. The trace package
// implements Observer to collect bandwidth statistics and timelines.
//
// Notifications are buffered during Run and dispatched when it returns,
// sorted by (time, task id, start-before-finish). The order is canonical
// across scheduler modes: serial, sharded-parallel, and the test oracle
// all deliver the same sequence for the same DAG.
type Observer interface {
	// TaskStarted fires when a task begins running (a compute occupies its
	// engine, a transfer's flow is admitted, an alloc succeeds).
	TaskStarted(t *Task, at Time)
	// TaskFinished fires when a task completes.
	TaskFinished(t *Task, at Time)
}

// Sim owns the simulated hardware (resources, engines, pools) and the work
// DAG, and executes the DAG to completion. The event loop itself lives in
// shard (shard.go): the serial scheduler runs the whole DAG in one shard;
// setting Parallelism partitions the DAG into independent shards executed
// on a bounded worker pool with a deterministic merge (parallel.go). Both
// produce bitwise-identical results.
type Sim struct {
	now     Time
	pending int
	tasks   []*Task

	observers []Observer

	resources []*Resource
	engines   []*Engine
	pools     []*MemPool

	// Parallelism bounds the worker pool for sharded execution: 0 (the
	// default) runs the classic serial event loop; K ≥ 1 partitions the
	// DAG into independent shards (parallel.go) and runs up to K of them
	// concurrently. Schedules, observer timelines, carried-byte
	// accounting, and errors are bitwise-identical across all settings.
	Parallelism int

	// TransferLatency is the fixed per-transfer setup time applied to
	// every Transfer task (DMA descriptor setup, host staging
	// synchronization, framework launch overhead). Zero by default; the
	// hardware layer sets a topology-appropriate value.
	TransferLatency Time

	// RetryPolicy, when non-nil, is consulted once per transfer task as
	// it starts; see the RetryPolicy type in inject.go.
	RetryPolicy RetryPolicy

	// CorruptionPolicy, when non-nil, is consulted per delivery attempt
	// of every transfer with payload; see corrupt.go.
	CorruptionPolicy CorruptionPolicy

	// Checksums configures end-to-end transfer checksums (detection and
	// retransmit of injected corruption); the zero value disables them.
	Checksums ChecksumConfig

	// integrity aggregates corruption/detection bookkeeping, derived from
	// per-task counters by finalizeIntegrity when Run returns.
	integrity IntegrityStats

	// rateOracle switches rate computation to the retained global
	// reference implementation (every live component, every event) —
	// test-only; the differential tests assert it is schedule-identical
	// to the incremental path. Oracle runs are always serial.
	rateOracle bool

	// Scheduled capacity changes and permanent failures (fault
	// injection), applied in time order. The serial shard consumes these
	// directly; parallel runs route capacity events to the owning shard
	// (failure events force serial execution).
	capEvents  []capEvent
	failEvents []failEvent

	// serial is the single shard the serial scheduler runs the whole DAG
	// in (created lazily); shards[:nShards] is the partition parallel
	// runs execute, cached while shardsValid. active lists the shards
	// that executed the most recent Run (their buffered observer events
	// are dispatched and drained by finishRun).
	serial      *shard
	shards      []*shard
	nShards     int
	shardsValid bool
	active      []*shard

	// orphanCap holds capacity events for resources no task's path
	// touches; they cannot perturb any shard, so a parallel run applies
	// the due ones at merge time (the serial loop applies them inline).
	orphanCap []capEvent

	// started records that a Run consumed builder-time state: continuing
	// an existing schedule (tasks added after a Run) stays on the serial
	// path, whose shard retains the in-flight event-loop state.
	started bool
	// ran short-circuits repeated Run calls: the DAG is executed once and
	// (now, finalErr) replayed until new tasks arrive or Reset is called.
	ran      bool
	finalErr error

	// err is the first structured failure of the last run (invariant
	// checks distinguish halted from completed runs by it).
	err error

	// Global generation/epoch sequences. Each shard draws fresh ranges
	// per run (prepare), so the per-Resource scratch marks — which
	// persist on the shared Resource structs — can never collide across
	// shards or reruns.
	ufGenSeq uint64
	visitSeq uint64

	// Partition scratch (parallel.go).
	taskUF       []int32
	shardOf      []int32
	engineAnchor []int32
	poolAnchor   []int32
	resAnchor    []int32

	// eventScratch merges the shards' buffered observer notifications.
	eventScratch []obsEvent

	// Work-stealing dispatch state (parallel.go). stealOrder is the
	// size-descending shard schedule cached with the partition;
	// stealDeques are the per-worker chunk deques reused across runs;
	// steals counts the chunks stolen during the last parallel run.
	stealOrder  []int32
	stealDeques []*stealDeque
	steals      int

	// NoSteal disables chunk stealing between workers in parallel runs,
	// leaving the static round-robin chunk assignment in place — an
	// ablation knob for benchmarks and the perf gate. Results are
	// bitwise-identical either way; only wall-clock under skew differs.
	NoSteal bool

	// Arenas DAG construction carves from: Task structs, successor-edge
	// slices, and the hardware registry (resources, engines, pools) all
	// come from chunked slabs instead of one allocation per object;
	// pathCache backs the Path interning method (resource.go).
	taskSlab  []Task
	succSlab  []*Task
	resSlab   []Resource
	engSlab   []Engine
	poolSlab  []MemPool
	pathCache map[pathKey][]PathElem

	// eventScratchHWM tracks the high-water mark of the observer merge
	// buffer since the last Reset; Reset shrinks capacity that a larger
	// earlier run left pinned (reset.go).
	eventScratchHWM int
}

// New creates an empty simulator.
func New() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Observe registers an observer for task lifecycle events.
func (s *Sim) Observe(o Observer) { s.observers = append(s.observers, o) }

// NewResource adds a bandwidth-shared resource with the given capacity in
// bytes per second.
func (s *Sim) NewResource(name string, capacity float64) *Resource {
	if len(s.resSlab) == 0 {
		s.resSlab = make([]Resource, 64)
	}
	r := &s.resSlab[0]
	s.resSlab = s.resSlab[1:]
	r.id, r.name, r.capacity, r.baseCapacity = len(s.resources), name, capacity, capacity
	s.resources = append(s.resources, r)
	s.shardsValid = false
	return r
}

// NewEngine adds an exclusive serial executor.
func (s *Sim) NewEngine(name string) *Engine {
	if len(s.engSlab) == 0 {
		s.engSlab = make([]Engine, 64)
	}
	e := &s.engSlab[0]
	s.engSlab = s.engSlab[1:]
	e.id, e.name = len(s.engines), name
	s.engines = append(s.engines, e)
	s.shardsValid = false
	return e
}

// NewMemPool adds a finite memory pool with the given capacity in bytes.
func (s *Sim) NewMemPool(name string, capacity float64) *MemPool {
	if len(s.poolSlab) == 0 {
		s.poolSlab = make([]MemPool, 64)
	}
	p := &s.poolSlab[0]
	s.poolSlab = s.poolSlab[1:]
	p.id, p.name, p.capacity, p.baseCapacity = len(s.pools), name, capacity, capacity
	s.pools = append(s.pools, p)
	s.shardsValid = false
	return p
}

// NumTasks reports how many tasks the DAG holds.
func (s *Sim) NumTasks() int { return len(s.tasks) }

// ShardCount reports the number of independent shards in the cached
// partition, or 0 when no partition has been computed since the topology
// last changed.
func (s *Sim) ShardCount() int {
	if !s.shardsValid {
		return 0
	}
	return s.nShards
}

// Steals reports how many chunks were stolen between workers during the
// last parallel run. It is a throughput diagnostic only: the schedule is
// bitwise-identical whatever the count.
func (s *Sim) Steals() int { return s.steals }

// allocTask carves a Task from the arena: DAG construction allocates one
// 256-task chunk at a time instead of one object per task.
func (s *Sim) allocTask() *Task {
	if len(s.taskSlab) == 0 {
		s.taskSlab = make([]Task, 256)
	}
	t := &s.taskSlab[0]
	s.taskSlab = s.taskSlab[1:]
	return t
}

// succCarve cuts a zero-length, cap-n successor slice from the shared
// slab; growth beyond succHeapCap falls back to ordinary heap appends
// (rare wide fan-out), keeping slab waste bounded.
const succHeapCap = 16

func (s *Sim) succCarve(n int) []*Task {
	if len(s.succSlab) < n {
		s.succSlab = make([]*Task, 2048)
	}
	out := s.succSlab[:0:n]
	s.succSlab = s.succSlab[n:]
	return out
}

// appendSucc records t as a successor of d. Small successor lists are
// carved from the slab (one allocation per 2048 edges instead of one per
// task with successors); lists past succHeapCap grow on the heap.
func (s *Sim) appendSucc(d, t *Task) {
	if len(d.succs) == cap(d.succs) && cap(d.succs) < succHeapCap {
		nc := cap(d.succs) * 2
		if nc == 0 {
			nc = 2
		}
		ns := s.succCarve(nc)
		ns = append(ns, d.succs...)
		d.succs = ns
	}
	d.succs = append(d.succs, t)
}

func (s *Sim) newTask(name string, kind TaskKind, deps []*Task) *Task {
	t := s.allocTask()
	t.id = len(s.tasks)
	t.name = name
	t.kind = kind
	for _, d := range deps {
		if d == nil {
			continue
		}
		if d.state == stateFinished {
			continue
		}
		s.appendSucc(d, t)
		t.waiting++
	}
	t.initWaiting = t.waiting
	s.tasks = append(s.tasks, t)
	s.pending++
	s.ran = false
	s.shardsValid = false
	return t
}

// Compute adds a task that occupies engine e for duration d once all deps
// have finished.
func (s *Sim) Compute(name string, e *Engine, d Time, deps ...*Task) *Task {
	t := s.newTask(name, KindCompute, deps)
	t.engine = e
	t.duration = d
	return t
}

// Transfer adds a task that moves bytes across path once all deps have
// finished. If engine is non-nil the transfer occupies it exclusively for
// its whole duration (a DMA copy engine). priority selects both the engine
// queue order and the bandwidth class.
func (s *Sim) Transfer(name string, engine *Engine, path []PathElem, bytes float64, priority int, deps ...*Task) *Task {
	t := s.newTask(name, KindTransfer, deps)
	t.engine = engine
	t.path = path
	t.bytes = bytes
	t.priority = priority
	return t
}

// Alloc adds a task that completes once amount bytes can be reserved in
// pool. Waiters are served FIFO.
func (s *Sim) Alloc(name string, pool *MemPool, amount float64, deps ...*Task) *Task {
	t := s.newTask(name, KindAlloc, deps)
	t.pool = pool
	t.amount = amount
	return t
}

// Free adds a task that returns amount bytes to pool once deps finish.
func (s *Sim) Free(name string, pool *MemPool, amount float64, deps ...*Task) *Task {
	t := s.newTask(name, KindFree, deps)
	t.pool = pool
	t.amount = amount
	return t
}

// After adds a zero-duration join node over deps.
func (s *Sim) After(name string, deps ...*Task) *Task {
	return s.newTask(name, KindVirtual, deps)
}

// Run executes the DAG to completion and returns the makespan. It returns
// an error when the DAG deadlocks (tasks remain but no event can fire) or
// when a structured failure occurs: an Alloc larger than its pool's total
// capacity yields an *OOMError, a Free returning more bytes than are
// allocated yields a *MemAccountError.
//
// With Parallelism ≥ 1, fresh runs execute the DAG's independent shards
// on a worker pool (see parallel.go); runs that cannot shard — oracle
// mode, scheduled permanent failures, or continuations of an already
// started schedule — fall back to the serial loop. Either way the result
// is bitwise-identical. Calling Run again without changing the DAG
// replays the recorded result.
func (s *Sim) Run() (Time, error) {
	if s.ran {
		return s.now, s.finalErr
	}
	sortCapEvents(s.capEvents)
	sortFailEvents(s.failEvents)
	parallel := s.Parallelism > 0 && !s.started && !s.rateOracle && len(s.failEvents) == 0
	if !parallel || !s.runParallel() {
		s.runSerial()
	}
	s.finishRun()
	return s.now, s.finalErr
}

// serialShard returns the single shard the serial scheduler runs the
// whole DAG in, creating it on first use. On a fresh (not started, not
// yet prepared since the last rewind) shard it recycles leftover state
// and draws fresh generation ranges; an already-started schedule keeps
// its in-flight flows, heaps, and event cursors intact. Test harnesses
// call this to drive the event loop manually before Run.
func (s *Sim) serialShard() *shard {
	sh := s.serial
	if sh == nil {
		sh = &shard{sim: s}
		s.serial = sh
	}
	sh.tasks = s.tasks
	sh.capEvents = s.capEvents
	sh.failEvents = s.failEvents
	if !s.started && !sh.used {
		sh.prepare()
		sh.used = true
	}
	return sh
}

// runSerial executes the whole DAG in the serial shard.
func (s *Sim) runSerial() {
	sh := s.serialShard()
	sh.now = s.now
	// Test harnesses drain tasks through the shard directly before Run;
	// recount so the shard's pending matches actual task state.
	pending := 0
	for _, t := range s.tasks {
		if t.state != stateFinished {
			pending++
		}
	}
	sh.pending = pending
	sh.run()
	s.now = sh.now
	s.pending = sh.pending
	s.err = sh.err
	s.active = append(s.active[:0], sh)
}

// finishRun derives the run-level results from the merged shard state:
// the error Run reports, the integrity statistics, and the canonical
// observer dispatch.
func (s *Sim) finishRun() {
	s.started = true
	s.ran = true
	switch {
	case s.err != nil:
		s.finalErr = s.err
	case s.pending > 0:
		s.finalErr = s.deadlockError()
	default:
		s.finalErr = nil
	}
	s.finalizeIntegrity()
	s.dispatchEvents()
}

// dispatchEvents delivers the buffered observer notifications of the
// shards that executed this run, in the canonical (time, task id,
// start-before-finish) order. Keys are strictly unique — a task starts
// and finishes at most once — so the comparison is a total order.
func (s *Sim) dispatchEvents() {
	if len(s.observers) == 0 {
		return
	}
	evs := s.eventScratch[:0]
	for _, sh := range s.active {
		if n := len(sh.events); n > sh.eventsHWM {
			sh.eventsHWM = n
		}
		evs = append(evs, sh.events...)
		sh.events = sh.events[:0]
	}
	if len(evs) > s.eventScratchHWM {
		s.eventScratchHWM = len(evs)
	}
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.task.id != b.task.id {
			return a.task.id < b.task.id
		}
		return !a.finish && b.finish
	})
	for _, ev := range evs {
		if ev.finish {
			for _, o := range s.observers {
				o.TaskFinished(ev.task, ev.at)
			}
		} else {
			for _, o := range s.observers {
				o.TaskStarted(ev.task, ev.at)
			}
		}
	}
	for i := range evs {
		evs[i] = obsEvent{}
	}
	s.eventScratch = evs[:0]
}

// timeEpsilon groups events that complete within a femtosecond of each
// other, absorbing floating-point dust in rate arithmetic.
const timeEpsilon = 1e-15

// sortFlowsByID insertion-sorts a (small) completion batch by task id.
func sortFlowsByID(fs []*flow) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].task.id < fs[j-1].task.id; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

func sortEngines(es []*Engine) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].id < es[j-1].id; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// deadlockError reports the first few stuck tasks to aid debugging
// scheduler bugs.
func (s *Sim) deadlockError() error {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock with %d pending tasks at t=%g", s.pending, s.now)
	n := 0
	for _, t := range s.tasks {
		if t.state == stateFinished {
			continue
		}
		if n < 8 {
			fmt.Fprintf(&b, "\n  %v state=%d waiting=%d", t, t.state, t.waiting)
		}
		n++
	}
	if n > 8 {
		fmt.Fprintf(&b, "\n  ... and %d more", n-8)
	}
	return fmt.Errorf("%s", b.String())
}

// computeHeap orders running compute tasks by completion time.
type computeHeap []*Task

func (h computeHeap) Len() int { return len(h) }

func (h computeHeap) Less(i, j int) bool {
	if h[i].endAt != h[j].endAt {
		return h[i].endAt < h[j].endAt
	}
	return h[i].id < h[j].id
}

func (h computeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *computeHeap) Push(x any) { *h = append(*h, x.(*Task)) }

func (h *computeHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
