package sim

import (
	"container/heap"
	"fmt"
	"math"
	"strings"
)

// Observer receives task lifecycle notifications. The trace package
// implements Observer to collect bandwidth statistics and timelines.
type Observer interface {
	// TaskStarted fires when a task begins running (a compute occupies its
	// engine, a transfer's flow is admitted, an alloc succeeds).
	TaskStarted(t *Task, at Time)
	// TaskFinished fires when a task completes.
	TaskFinished(t *Task, at Time)
}

// Sim owns the simulated hardware (resources, engines, pools) and the work
// DAG, and executes the DAG to completion.
type Sim struct {
	now        Time
	tasks      []*Task
	pending    int
	flows      []*flow
	ratesDirty bool
	computes   computeHeap
	observers  []Observer

	resources []*Resource
	engines   []*Engine
	pools     []*MemPool

	// worklist of tasks whose dependencies just completed.
	ready []*Task

	// Incremental scheduler state. flowQueue is the indexed min-heap of
	// active flows keyed by predicted completion (flowheap.go); the
	// union-find over resources groups flows into connected components
	// whose dirty subset is all a recompute touches (component.go).
	flowQueue            flowHeap
	dirtyComps           []*component
	compPool             []*component
	ufGen                uint64
	finishedSinceRebuild int
	// compVisit is the epoch for the oracle's component de-duplication.
	compVisit uint64

	// rateOracle switches recomputeRates to the retained global
	// reference implementation (every flow, every event) — test-only;
	// the differential tests assert it is schedule-identical to the
	// incremental path.
	rateOracle bool

	// Rate-computation scratch, reused across events so the hot path
	// allocates nothing in steady state (see flow.go). rateEpoch versions
	// the per-Resource scratch fields; the slices are recycled buffers.
	rateEpoch        uint64
	prioScratch      []int
	classBuckets     [][]*flow
	fixedScratch     []bool
	recomputeScratch []*flow

	// Completion-batch and flow-struct recycling (steady-state GC
	// relief): doneScratch/doneTasks are the per-event completion
	// buffers, flowPool the freelist flows return to after finishing.
	doneScratch []*flow
	doneTasks   []*Task
	flowPool    []*flow

	// TransferLatency is the fixed per-transfer setup time applied to
	// every Transfer task (DMA descriptor setup, host staging
	// synchronization, framework launch overhead). Zero by default; the
	// hardware layer sets a topology-appropriate value.
	TransferLatency Time

	// RetryPolicy, when non-nil, is consulted once per transfer task as
	// it starts; see the RetryPolicy type in inject.go.
	RetryPolicy RetryPolicy

	// CorruptionPolicy, when non-nil, is consulted per delivery attempt
	// of every transfer with payload; see corrupt.go.
	CorruptionPolicy CorruptionPolicy

	// Checksums configures end-to-end transfer checksums (detection and
	// retransmit of injected corruption); the zero value disables them.
	Checksums ChecksumConfig

	// integrity aggregates corruption/detection bookkeeping; see corrupt.go.
	integrity IntegrityStats

	// Scheduled capacity changes (fault injection), applied in time order.
	capEvents []capEvent
	nextCap   int

	// Scheduled permanent failures (see loss.go), applied in time order.
	failEvents []failEvent
	nextFail   int

	// First structured failure (OOM, memory accounting); Run returns it.
	err error
}

// New creates an empty simulator.
func New() *Sim {
	// ufGen starts at 1 so zero-valued Resources read as "not yet in the
	// union-find" (see findRoot).
	return &Sim{ufGen: 1}
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Observe registers an observer for task lifecycle events.
func (s *Sim) Observe(o Observer) { s.observers = append(s.observers, o) }

// NewResource adds a bandwidth-shared resource with the given capacity in
// bytes per second.
func (s *Sim) NewResource(name string, capacity float64) *Resource {
	r := &Resource{id: len(s.resources), name: name, capacity: capacity}
	s.resources = append(s.resources, r)
	return r
}

// NewEngine adds an exclusive serial executor.
func (s *Sim) NewEngine(name string) *Engine {
	e := &Engine{id: len(s.engines), name: name}
	s.engines = append(s.engines, e)
	return e
}

// NewMemPool adds a finite memory pool with the given capacity in bytes.
func (s *Sim) NewMemPool(name string, capacity float64) *MemPool {
	p := &MemPool{id: len(s.pools), name: name, capacity: capacity}
	s.pools = append(s.pools, p)
	return p
}

func (s *Sim) newTask(name string, kind TaskKind, deps []*Task) *Task {
	t := &Task{id: len(s.tasks), name: name, kind: kind}
	for _, d := range deps {
		if d == nil {
			continue
		}
		if d.state == stateFinished {
			continue
		}
		d.succs = append(d.succs, t)
		t.waiting++
	}
	s.tasks = append(s.tasks, t)
	s.pending++
	return t
}

// Compute adds a task that occupies engine e for duration d once all deps
// have finished.
func (s *Sim) Compute(name string, e *Engine, d Time, deps ...*Task) *Task {
	t := s.newTask(name, KindCompute, deps)
	t.engine = e
	t.duration = d
	return t
}

// Transfer adds a task that moves bytes across path once all deps have
// finished. If engine is non-nil the transfer occupies it exclusively for
// its whole duration (a DMA copy engine). priority selects both the engine
// queue order and the bandwidth class.
func (s *Sim) Transfer(name string, engine *Engine, path []PathElem, bytes float64, priority int, deps ...*Task) *Task {
	t := s.newTask(name, KindTransfer, deps)
	t.engine = engine
	t.path = path
	t.bytes = bytes
	t.priority = priority
	return t
}

// Alloc adds a task that completes once amount bytes can be reserved in
// pool. Waiters are served FIFO.
func (s *Sim) Alloc(name string, pool *MemPool, amount float64, deps ...*Task) *Task {
	t := s.newTask(name, KindAlloc, deps)
	t.pool = pool
	t.amount = amount
	return t
}

// Free adds a task that returns amount bytes to pool once deps finish.
func (s *Sim) Free(name string, pool *MemPool, amount float64, deps ...*Task) *Task {
	t := s.newTask(name, KindFree, deps)
	t.pool = pool
	t.amount = amount
	return t
}

// After adds a zero-duration join node over deps.
func (s *Sim) After(name string, deps ...*Task) *Task {
	return s.newTask(name, KindVirtual, deps)
}

// Run executes the DAG to completion and returns the makespan. It returns
// an error when the DAG deadlocks (tasks remain but no event can fire) or
// when a structured failure occurs: an Alloc larger than its pool's total
// capacity yields an *OOMError, a Free returning more bytes than are
// allocated yields a *MemAccountError.
func (s *Sim) Run() (Time, error) {
	sortCapEvents(s.capEvents)
	s.applyCapEvents()
	sortFailEvents(s.failEvents)
	s.applyFailEvents()

	// Seed the worklist with dependency-free tasks.
	for _, t := range s.tasks {
		if t.state == statePending && t.waiting == 0 {
			s.ready = append(s.ready, t)
		}
	}
	s.drain()

	for s.pending > 0 && s.err == nil {
		s.recomputeRates()

		// Picking the next event is O(log F): the flow with the earliest
		// predicted completion sits at the top of the completion heap,
		// maintained incrementally as rates change.
		next := math.Inf(1)
		if len(s.computes) > 0 {
			next = s.computes[0].endAt
		}
		if s.flowQueue.Len() > 0 {
			if p := s.flowQueue.top().pred; p < next {
				next = p
			}
		}
		if s.nextCap < len(s.capEvents) && s.capEvents[s.nextCap].at < next {
			next = s.capEvents[s.nextCap].at
		}
		if s.nextFail < len(s.failEvents) && s.failEvents[s.nextFail].at < next {
			next = s.failEvents[s.nextFail].at
		}
		if math.IsInf(next, 1) {
			s.settleAllFlows()
			return s.now, s.deadlockError()
		}
		if next < s.now {
			next = s.now
		}
		s.advance(next)
		s.drain()
	}
	// Settle lazy progress so utilization accounting and invariant checks
	// see exact per-resource traffic, including for runs halted by a
	// structured failure with flows still in flight.
	s.settleAllFlows()
	if s.err != nil {
		return s.now, s.err
	}
	return s.now, nil
}

// timeEpsilon groups events that complete within a femtosecond of each
// other, absorbing floating-point dust in rate arithmetic.
const timeEpsilon = 1e-15

// advance moves the clock to t and completes every compute and flow that
// finishes at (or within epsilon of) t. Flow progress is lazy: nothing is
// swept per event — a flow's remaining payload is settled only here (on
// completion) or when its rate changes (applyRates).
func (s *Sim) advance(t Time) {
	s.now = t

	// Complete finished computes; transfer tasks surfacing here have
	// finished their setup latency and now begin flowing.
	for len(s.computes) > 0 && s.computes[0].endAt <= s.now+timeEpsilon {
		task := heap.Pop(&s.computes).(*Task)
		if task.kind == KindTransfer {
			s.beginFlow(task)
			continue
		}
		s.finishEngineTask(task)
	}

	// Complete finished flows: pop the completion heap while the settled
	// remaining payload is within slack of zero. Collect first, then
	// finish, so heap and flow-list mutation stay simple.
	done := s.doneScratch[:0]
	for s.flowQueue.Len() > 0 {
		f := s.flowQueue.top()
		slack := f.rate * timeEpsilon * 1e6 // absolute byte tolerance
		if slack < 1e-9 {
			slack = 1e-9
		}
		if f.remaining-f.rate*(s.now-f.lastUpdate) > slack {
			break
		}
		s.flowQueue.popTop()
		s.settleFlow(f)
		s.removeFromFlowList(f)
		s.componentFinish(f)
		done = append(done, f)
	}
	if len(done) > 0 {
		// Finish the batch in task-id order — the order the eager sweep
		// used to produce — so same-instant completions feed pool FIFO
		// queues and the ready worklist identically.
		sortFlowsByID(done)
		tasks := s.doneTasks[:0]
		for _, f := range done {
			tasks = append(tasks, f.task)
		}
		// Recycle the flow structs before dispatching completions: the
		// batch no longer references them, and a completion may admit new
		// flows that reuse the structs immediately.
		for _, f := range done {
			f.task = nil
			s.flowPool = append(s.flowPool, f)
		}
		for _, task := range tasks {
			s.finishEngineTask(task)
		}
		s.doneTasks = tasks[:0]
	}
	s.doneScratch = done[:0]

	s.applyCapEvents()
	s.applyFailEvents()
}

// sortFlowsByID insertion-sorts a (small) completion batch by task id.
func sortFlowsByID(fs []*flow) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].task.id < fs[j-1].task.id; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// finishEngineTask completes a compute or transfer task, releases its
// engine and dispatches the next queued task on that engine.
func (s *Sim) finishEngineTask(t *Task) {
	s.complete(t)
	if t.engine != nil && t.engine.current == t {
		t.engine.current = nil
		if nxt := t.engine.pop(); nxt != nil {
			s.startOnEngine(nxt)
		}
	}
}

// drain processes the instantaneous cascade: completed tasks release
// successors, virtual/alloc/free tasks execute with zero duration, and
// compute/transfer tasks are dispatched to their engines.
func (s *Sim) drain() {
	kicked := map[*Engine]bool{}
	for {
		for len(s.ready) > 0 {
			if s.err != nil {
				return
			}
			t := s.ready[0]
			s.ready = s.ready[1:]
			s.drainOne(t, kicked)
		}
		if len(kicked) == 0 {
			return
		}
		// Dispatch idle engines only after the instantaneous cascade has
		// settled so that same-instant arrivals compete by priority.
		var order []*Engine
		for e := range kicked {
			order = append(order, e)
		}
		clear(kicked)
		sortEngines(order)
		for _, e := range order {
			for e.current == nil {
				nxt := e.pop()
				if nxt == nil {
					break
				}
				s.startOnEngine(nxt)
			}
		}
	}
}

func (s *Sim) drainOne(t *Task, kicked map[*Engine]bool) {
	if t.state != statePending {
		return
	}
	t.state = stateReady
	t.readyAt = s.now

	switch t.kind {
	case KindVirtual:
		t.startAt = s.now
		s.notifyStart(t)
		s.complete(t)
	case KindAlloc:
		if t.amount > t.pool.capacity+memEpsilon {
			// The request can never be satisfied (e.g. memory pressure
			// shrank the pool): a structured OOM beats an eventual
			// deadlock report.
			s.fail(&OOMError{Pool: t.pool.name, Task: t.name, Need: t.amount, Capacity: t.pool.capacity})
			return
		}
		if t.pool.tryAlloc(t) {
			t.startAt = s.now
			s.notifyStart(t)
			s.complete(t)
		} else {
			t.state = stateRunning
			t.pool.waiters = append(t.pool.waiters, t)
		}
	case KindFree:
		t.startAt = s.now
		s.notifyStart(t)
		woken, below := t.pool.release(t.amount)
		if below > 0 {
			s.fail(&MemAccountError{Pool: t.pool.name, Task: t.name, Freed: t.amount, Below: below})
			return
		}
		s.complete(t)
		for _, w := range woken {
			w.startAt = s.now
			s.notifyStart(w)
			s.complete(w)
		}
	case KindCompute, KindTransfer:
		if t.engine == nil {
			s.startOnEngine(t)
			return
		}
		t.engine.push(t)
		if t.engine.current == nil {
			kicked[t.engine] = true
		}
	}
}

func sortEngines(es []*Engine) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].id < es[j-1].id; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// startOnEngine begins running a compute or transfer task now.
func (s *Sim) startOnEngine(t *Task) {
	t.state = stateRunning
	t.startAt = s.now
	if t.engine != nil {
		t.engine.current = t
	}
	s.notifyStart(t)

	switch t.kind {
	case KindCompute:
		d := t.duration
		if t.engine != nil {
			if f := t.engine.Throughput(); f != 1 {
				d /= f
			}
		}
		t.endAt = s.now + d
		heap.Push(&s.computes, t)
	case KindTransfer:
		lat := t.latency
		if lat <= 0 {
			lat = s.TransferLatency
		}
		if s.RetryPolicy != nil && t.bytes > 0 {
			if n, backoff := s.RetryPolicy(t); n > 0 && backoff > 0 {
				// Failed attempts wait backoff, 2*backoff, ... before the
				// payload is finally admitted.
				extra, step := Time(0), backoff
				for i := 0; i < n; i++ {
					extra += step
					step *= 2
				}
				t.retries = n
				t.retryLatency = extra
				lat += extra
			}
		}
		if t.bytes > 0 {
			if s.Checksums.Enabled {
				// Detection price of the first delivery attempt; retransmitted
				// attempts are charged inside injectCorruption.
				ck := t.bytes * s.Checksums.costPerByte()
				s.integrity.ChecksumCost += ck
				lat += Time(ck)
			}
			if s.CorruptionPolicy != nil {
				lat += s.injectCorruption(t)
			}
		}
		if lat > 0 && t.bytes > 0 {
			// Setup phase: occupy the engine for the latency, then flow.
			t.endAt = s.now + lat
			heap.Push(&s.computes, t)
			return
		}
		s.beginFlow(t)
	}
}

// beginFlow admits a transfer task's payload into the fair-sharing flow
// set (after any setup latency has elapsed): the flow joins the
// active list, the completion heap, and — unless its path is empty — the
// connected component its resources belong to, which is marked dirty for
// the next rate recompute.
func (s *Sim) beginFlow(t *Task) {
	t.flowStarted = true
	f := s.takeFlow()
	f.task = t
	// Retransmitted attempts re-flow the payload, so detected corruption
	// consumes real path bandwidth, not just setup latency.
	f.remaining = t.bytes * float64(1+t.retransmits)
	f.rate = 0
	f.lastUpdate = s.now
	if t.bytes <= 0 || len(t.path) == 0 {
		f.rate = infiniteRate
		if t.bytes <= 0 {
			// Zero-byte transfer: complete in the same instant via the
			// flow set so engine release ordering stays uniform.
			f.remaining = 0
		}
	}
	f.nextRate = f.rate
	f.pred = f.predict()
	// s.flows is unordered (O(1) admit and swap-remove); the canonical
	// iteration order for rate computation lives in the component lists.
	f.listIdx = len(s.flows)
	s.flows = append(s.flows, f)
	s.flowQueue.push(f)
	s.componentAdmit(f)
}

// removeFromFlowList unlinks f from the active-flow list in O(1) by
// swapping the last entry into its slot.
func (s *Sim) removeFromFlowList(f *flow) {
	last := len(s.flows) - 1
	moved := s.flows[last]
	s.flows[f.listIdx] = moved
	moved.listIdx = f.listIdx
	s.flows[last] = nil
	s.flows = s.flows[:last]
}

// takeFlow recycles a flow struct from the pool (or allocates one),
// cutting steady-state GC pressure on DAGs with many transfers.
func (s *Sim) takeFlow() *flow {
	if n := len(s.flowPool); n > 0 {
		f := s.flowPool[n-1]
		s.flowPool[n-1] = nil
		s.flowPool = s.flowPool[:n-1]
		return f
	}
	return &flow{heapIdx: -1}
}

func (s *Sim) complete(t *Task) {
	if t.state == stateFinished {
		return
	}
	t.state = stateFinished
	t.endAt = s.now
	s.pending--
	if t.tainted {
		s.integrity.TaintedTasks++
	}
	s.notifyFinish(t)
	for _, succ := range t.succs {
		if t.tainted {
			// Silent corruption poisons everything downstream.
			succ.tainted = true
		}
		succ.waiting--
		if succ.waiting == 0 && succ.state == statePending {
			s.ready = append(s.ready, succ)
		}
	}
	if t.corruptExhausted {
		s.fail(&CorruptionError{Task: t.name, At: s.now, Attempts: 1 + t.retransmits})
	}
}

func (s *Sim) notifyStart(t *Task) {
	for _, o := range s.observers {
		o.TaskStarted(t, s.now)
	}
}

func (s *Sim) notifyFinish(t *Task) {
	for _, o := range s.observers {
		o.TaskFinished(t, s.now)
	}
}

// deadlockError reports the first few stuck tasks to aid debugging
// scheduler bugs.
func (s *Sim) deadlockError() error {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock with %d pending tasks at t=%g", s.pending, s.now)
	n := 0
	for _, t := range s.tasks {
		if t.state == stateFinished {
			continue
		}
		if n < 8 {
			fmt.Fprintf(&b, "\n  %v state=%d waiting=%d", t, t.state, t.waiting)
		}
		n++
	}
	if n > 8 {
		fmt.Fprintf(&b, "\n  ... and %d more", n-8)
	}
	return fmt.Errorf("%s", b.String())
}

// computeHeap orders running compute tasks by completion time.
type computeHeap []*Task

func (h computeHeap) Len() int { return len(h) }

func (h computeHeap) Less(i, j int) bool {
	if h[i].endAt != h[j].endAt {
		return h[i].endAt < h[j].endAt
	}
	return h[i].id < h[j].id
}

func (h computeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *computeHeap) Push(x any) { *h = append(*h, x.(*Task)) }

func (h *computeHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
