package sim

// Resource is a bandwidth-shared link, such as a PCIe lane bundle or a CPU
// root complex. Capacity is in bytes per second. Flows crossing the
// resource concurrently share the capacity under max-min fairness with
// strict priorities (see flow.go).
type Resource struct {
	id       int
	name     string
	capacity float64

	// residual is scratch state used during rate computation.
	residual float64
	// demand is scratch: sum of weights of unfixed flows on this resource.
	demand float64
	// mark is the rate-computation epoch that last reset this resource's
	// scratch state; it replaces a per-call "seen" set allocation.
	mark uint64
	// binding is per-round scratch: the resource was the bottleneck of the
	// current water-filling round.
	binding bool
	// carried accumulates the bytes that crossed the resource.
	carried float64

	// Union-find state grouping resources into connected components of
	// active flows (see component.go). ufGen lazily invalidates the
	// structure: a resource whose generation trails Sim.ufGen reads as a
	// fresh singleton. comp is only meaningful on a root.
	ufParent *Resource
	ufRank   int
	ufGen    uint64
	comp     *component
}

// Name returns the resource's label.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource's bandwidth in bytes per second.
func (r *Resource) Capacity() float64 { return r.capacity }

// Carried returns the total bytes that crossed the resource (weighted:
// a double-crossing transfer counts twice).
func (r *Resource) Carried() float64 { return r.carried }

// Utilization returns the fraction of the resource's capacity used over
// the given duration (typically the makespan).
func (r *Resource) Utilization(duration float64) float64 {
	if duration <= 0 || r.capacity <= 0 {
		return 0
	}
	return r.carried / (r.capacity * duration)
}

// PathElem is one hop of a transfer path. Weight is the number of bytes
// consumed on the resource per payload byte; a staged GPU-to-GPU copy that
// crosses the same root complex twice uses Weight 2 on that resource.
type PathElem struct {
	Res    *Resource
	Weight float64
}

// Path is a convenience constructor for a unit-weight path, merging
// duplicate resources into a single element with summed weight so the
// fair-share computation accounts for double crossings correctly.
func Path(resources ...*Resource) []PathElem {
	out := make([]PathElem, 0, len(resources))
	for _, r := range resources {
		if r == nil {
			continue
		}
		merged := false
		for i := range out {
			if out[i].Res == r {
				out[i].Weight++
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, PathElem{Res: r, Weight: 1})
		}
	}
	return out
}
