package sim

// Resource is a bandwidth-shared link, such as a PCIe lane bundle or a CPU
// root complex. Capacity is in bytes per second. Flows crossing the
// resource concurrently share the capacity under max-min fairness with
// strict priorities (see flow.go).
type Resource struct {
	id       int
	name     string
	capacity float64

	// baseCapacity is the construction-time capacity; rewind/Reset
	// restore it (scheduled capacity events mutate capacity mid-run).
	baseCapacity float64

	// shardIdx routes this resource's capacity events to the shard whose
	// tasks use it (-1 when no task touches it); see parallel.go. Valid
	// only while Sim.shardsValid.
	shardIdx int32

	// residual is scratch state used during rate computation.
	residual float64
	// demand is scratch: sum of weights of unfixed flows on this resource.
	demand float64
	// binding is per-round scratch: the resource was the bottleneck of the
	// current water-filling round.
	binding bool
	// carried accumulates the bytes that crossed the resource.
	carried float64

	// Union-find state grouping resources into connected components of
	// active flows (see component.go). ufGen lazily invalidates the
	// structure: a resource whose generation differs from its shard's
	// reads as a fresh singleton. comp is only meaningful on a root.
	ufParent *Resource
	ufRank   int
	ufGen    uint64
	comp     *component

	// listedComp/listedGen track which component's cached resource list
	// this resource sits on (see component.resources); the generation
	// guard makes entries written by another shard or a previous run read
	// as absent.
	listedComp *component
	listedGen  uint64
}

// Name returns the resource's label.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource's bandwidth in bytes per second.
func (r *Resource) Capacity() float64 { return r.capacity }

// Carried returns the total bytes that crossed the resource (weighted:
// a double-crossing transfer counts twice).
func (r *Resource) Carried() float64 { return r.carried }

// Utilization returns the fraction of the resource's capacity used over
// the given duration (typically the makespan).
func (r *Resource) Utilization(duration float64) float64 {
	if duration <= 0 || r.capacity <= 0 {
		return 0
	}
	return r.carried / (r.capacity * duration)
}

// PathElem is one hop of a transfer path. Weight is the number of bytes
// consumed on the resource per payload byte; a staged GPU-to-GPU copy that
// crosses the same root complex twice uses Weight 2 on that resource.
type PathElem struct {
	Res    *Resource
	Weight float64
}

// pathKey is the comparable interning key for a merged path of up to
// five hops (a staged cross-root-complex GPU-to-GPU copy: link, RC, DRAM
// bus, RC, link): resource ids and weights, not strings, so interning
// costs a small array compare/hash.
type pathKey struct {
	n    int
	hops [5]struct {
		res    int32
		weight float64
	}
}

// Path is the interning variant of the package-level Path constructor:
// structurally identical paths (same resources, same merged weights)
// return the same shared []PathElem slice. DAG builders that route many
// transfers over the same few hardware paths (every pipeline schedule
// does) construct each distinct path once instead of once per transfer.
// Paths longer than five merged hops are passed through uninterned.
func (s *Sim) Path(resources ...*Resource) []PathElem {
	// Build the interning key straight from the arguments — the merged
	// slice is materialized only on a cache miss, so the hot hit path
	// (every transfer after the first on a route) allocates nothing.
	var k pathKey
	for _, r := range resources {
		if r == nil {
			continue
		}
		merged := false
		for i := 0; i < k.n; i++ {
			if k.hops[i].res == int32(r.id) {
				k.hops[i].weight++
				merged = true
				break
			}
		}
		if !merged {
			if k.n == 5 {
				// More than five merged hops: pass through uninterned.
				return Path(resources...)
			}
			k.hops[k.n].res = int32(r.id)
			k.hops[k.n].weight = 1
			k.n++
		}
	}
	if q, ok := s.pathCache[k]; ok {
		return q
	}
	p := Path(resources...)
	if s.pathCache == nil {
		s.pathCache = make(map[pathKey][]PathElem)
	}
	s.pathCache[k] = p
	return p
}

// Path is a convenience constructor for a unit-weight path, merging
// duplicate resources into a single element with summed weight so the
// fair-share computation accounts for double crossings correctly.
func Path(resources ...*Resource) []PathElem {
	out := make([]PathElem, 0, len(resources))
	for _, r := range resources {
		if r == nil {
			continue
		}
		merged := false
		for i := range out {
			if out[i].Res == r {
				out[i].Weight++
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, PathElem{Res: r, Weight: 1})
		}
	}
	return out
}
