package sim

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file shards the event loop. partition computes, at build time, the
// connected components of the task DAG under "shares state with": two
// tasks land in the same shard when one depends on the other or when they
// use the same engine, memory pool, or path resource. Shards therefore
// share no mutable simulation state at all, which makes the parallel
// composition trivial to reason about: each shard runs the ordinary
// event loop (shard.go) on its own slice of the world, and the merge is
// pure bookkeeping — max of clocks, sum of pending counts, a sweep of
// capacity events whose shard-local clock stopped early, and the
// canonical observer dispatch (sim.go). The differential suite asserts
// the composition is bitwise-identical to the serial scheduler at
// K ∈ {1,2,4,8}.
//
// Runs that need global event order — scheduled permanent failures
// (victim collection spans shards), oracle mode, continuations of an
// already-started schedule — never take this path; Run falls back to the
// serial loop. Likewise, a parallel run that ends in a structured
// failure or a deadlock rewinds and reruns serially: those results
// depend on which event fires first globally, and the pristine serial
// rerun reproduces exactly what the serial scheduler would have
// reported, at the cost of rerunning one (exceptional) schedule.

// partition splits the task DAG into independent shards via a union-find
// over task ids: dependency edges and shared engines/pools/resources are
// unioned, roots are numbered in ascending task-id order (deterministic),
// and every task and resource is labeled with its shard. The result is
// cached until the topology changes (shardsValid).
func (s *Sim) partition() {
	n := len(s.tasks)
	uf := s.taskUF[:0]
	for i := 0; i < n; i++ {
		uf = append(uf, int32(i))
	}
	s.taskUF = uf

	find := func(x int32) int32 {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		// Min-id roots keep shard numbering stable under task insertion
		// order; path halving in find keeps the trees shallow.
		uf[rb] = ra
	}

	anchors := func(anchor []int32, count int) []int32 {
		anchor = anchor[:0]
		for i := 0; i < count; i++ {
			anchor = append(anchor, -1)
		}
		return anchor
	}
	engAnchor := anchors(s.engineAnchor, len(s.engines))
	poolAnchor := anchors(s.poolAnchor, len(s.pools))
	resAnchor := anchors(s.resAnchor, len(s.resources))
	s.engineAnchor, s.poolAnchor, s.resAnchor = engAnchor, poolAnchor, resAnchor

	couple := func(anchor []int32, id int, task int32) {
		if anchor[id] < 0 {
			anchor[id] = task
			return
		}
		union(anchor[id], task)
	}
	for _, t := range s.tasks {
		id := int32(t.id)
		for _, succ := range t.succs {
			union(id, int32(succ.id))
		}
		if t.engine != nil {
			couple(engAnchor, t.engine.id, id)
		}
		if t.pool != nil {
			couple(poolAnchor, t.pool.id, id)
		}
		for _, pe := range t.path {
			couple(resAnchor, pe.Res.id, id)
		}
	}

	// Number the roots in ascending task-id order and label every task.
	shardOf := s.shardOf[:0]
	for i := 0; i < n; i++ {
		shardOf = append(shardOf, -1)
	}
	s.shardOf = shardOf
	count := 0
	for i := 0; i < n; i++ {
		r := find(int32(i))
		if shardOf[r] < 0 {
			shardOf[r] = int32(count)
			count++
		}
		s.tasks[i].shardIdx = shardOf[r]
	}
	for id, a := range resAnchor {
		if a < 0 {
			s.resources[id].shardIdx = -1
			continue
		}
		s.resources[id].shardIdx = shardOf[find(a)]
	}

	for len(s.shards) < count {
		s.shards = append(s.shards, &shard{sim: s})
	}
	s.nShards = count
	for _, sh := range s.shards[:count] {
		sh.tasks = sh.tasks[:0]
	}
	for _, t := range s.tasks {
		sh := s.shards[t.shardIdx]
		sh.tasks = append(sh.tasks, t)
	}
	s.shardsValid = true
}

// runParallel executes a fresh run over the cached partition on a worker
// pool bounded by Parallelism. It reports false — leaving the simulator
// rewound to pristine state — when the DAG has fewer than two shards or
// when the outcome needs global event order (structured failure,
// deadlock); Run then takes the serial path.
func (s *Sim) runParallel() bool {
	if !s.shardsValid {
		s.partition()
	}
	if s.nShards < 2 {
		return false
	}
	shards := s.shards[:s.nShards]
	s.routeCapEvents(shards)
	for _, sh := range shards {
		sh.prepare()
		sh.used = true
	}

	workers := s.Parallelism
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for _, sh := range shards {
			sh.run()
		}
	} else {
		var next atomic.Int32
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(shards) {
						return
					}
					shards[i].run()
				}
			}()
		}
		wg.Wait()
	}

	now, pending, failed := Time(0), 0, false
	for _, sh := range shards {
		if sh.err != nil {
			failed = true
		}
		if sh.now > now {
			now = sh.now
		}
		pending += sh.pending
	}
	if failed || pending > 0 {
		// Structured failures and deadlock reports depend on global event
		// order. Rewind and let Run rerun serially from pristine state:
		// bitwise-identical to a serial run by construction.
		s.rewind()
		return false
	}

	s.now = now
	s.pending = 0
	s.err = nil
	s.sweepLeftoverCaps(shards)
	s.active = append(s.active[:0], shards...)
	return true
}

// routeCapEvents distributes the (sorted) capacity events to the shards
// owning their resources, preserving (at, seq) order within each shard.
// Events on resources no task touches go to orphanCap; they cannot
// perturb any schedule and are applied at merge time.
func (s *Sim) routeCapEvents(shards []*shard) {
	for _, sh := range shards {
		sh.capEvents = sh.capEvents[:0]
	}
	s.orphanCap = s.orphanCap[:0]
	for _, ev := range s.capEvents {
		if idx := ev.res.shardIdx; idx >= 0 {
			sh := shards[idx]
			sh.capEvents = append(sh.capEvents, ev)
		} else {
			s.orphanCap = append(s.orphanCap, ev)
		}
	}
}

// sweepLeftoverCaps applies the capacity events still due at the merged
// clock: a shard's local clock stops at its own last completion, so
// events between that instant and the global makespan — which the serial
// loop applies inline — are applied here. Final resource capacities
// match the serial run exactly; events beyond the makespan stay
// unapplied in both modes.
func (s *Sim) sweepLeftoverCaps(shards []*shard) {
	evs := s.orphanCap
	for _, sh := range shards {
		evs = append(evs, sh.capEvents[sh.nextCap:]...)
		sh.nextCap = len(sh.capEvents)
	}
	due := evs[:0]
	for _, ev := range evs {
		if ev.at <= s.now+timeEpsilon {
			due = append(due, ev)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].at != due[j].at {
			return due[i].at < due[j].at
		}
		return due[i].seq < due[j].seq
	})
	for _, ev := range due {
		ev.res.capacity = ev.capacity
	}
	s.orphanCap = s.orphanCap[:0]
}
