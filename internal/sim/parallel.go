package sim

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file shards the event loop. partition computes, at build time, the
// connected components of the task DAG under "shares state with": two
// tasks land in the same shard when one depends on the other or when they
// use the same engine, memory pool, or path resource. Shards therefore
// share no mutable simulation state at all, which makes the parallel
// composition trivial to reason about: each shard runs the ordinary
// event loop (shard.go) on its own slice of the world, and the merge is
// pure bookkeeping — max of clocks, sum of pending counts, a sweep of
// capacity events whose shard-local clock stopped early, and the
// canonical observer dispatch (sim.go). The differential suite asserts
// the composition is bitwise-identical to the serial scheduler at
// K ∈ {1,2,3,4,8,16}.
//
// Shard dispatch uses deterministic work stealing. The partition caches a
// size-descending shard schedule (stealOrder); runParallel slices it into
// fixed-size chunks dealt round-robin onto per-worker deques. Each worker
// pops chunks from the front of its own deque and, once empty, steals
// whole chunks from the back of other workers' deques (round-robin victim
// scan). Skewed partitions — one giant shard plus many tiny ones — thus
// stop serializing behind whichever worker drew the giant: everyone else
// drains the tail concurrently. Determinism is free: every shard runs
// exactly once, shards share no state, and the merge below is
// order-canonical, so ANY assignment of shards to workers and ANY steal
// interleaving produces bit-identical results. Stealing only moves
// wall-clock time around.
//
// Runs that need global event order — scheduled permanent failures
// (victim collection spans shards), oracle mode, continuations of an
// already-started schedule — never take this path; Run falls back to the
// serial loop. Likewise, a parallel run that ends in a structured
// failure or a deadlock rewinds and reruns serially: those results
// depend on which event fires first globally, and the pristine serial
// rerun reproduces exactly what the serial scheduler would have
// reported, at the cost of rerunning one (exceptional) schedule.

// partition splits the task DAG into independent shards via a union-find
// over task ids: dependency edges and shared engines/pools/resources are
// unioned, roots are numbered in ascending task-id order (deterministic),
// and every task and resource is labeled with its shard. The result is
// cached until the topology changes (shardsValid).
func (s *Sim) partition() {
	n := len(s.tasks)
	uf := s.taskUF[:0]
	for i := 0; i < n; i++ {
		uf = append(uf, int32(i))
	}
	s.taskUF = uf

	find := func(x int32) int32 {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		// Min-id roots keep shard numbering stable under task insertion
		// order; path halving in find keeps the trees shallow.
		uf[rb] = ra
	}

	anchors := func(anchor []int32, count int) []int32 {
		anchor = anchor[:0]
		for i := 0; i < count; i++ {
			anchor = append(anchor, -1)
		}
		return anchor
	}
	engAnchor := anchors(s.engineAnchor, len(s.engines))
	poolAnchor := anchors(s.poolAnchor, len(s.pools))
	resAnchor := anchors(s.resAnchor, len(s.resources))
	s.engineAnchor, s.poolAnchor, s.resAnchor = engAnchor, poolAnchor, resAnchor

	couple := func(anchor []int32, id int, task int32) {
		if anchor[id] < 0 {
			anchor[id] = task
			return
		}
		union(anchor[id], task)
	}
	for _, t := range s.tasks {
		id := int32(t.id)
		for _, succ := range t.succs {
			union(id, int32(succ.id))
		}
		if t.engine != nil {
			couple(engAnchor, t.engine.id, id)
		}
		if t.pool != nil {
			couple(poolAnchor, t.pool.id, id)
		}
		for _, pe := range t.path {
			couple(resAnchor, pe.Res.id, id)
		}
	}

	// Number the roots in ascending task-id order and label every task.
	shardOf := s.shardOf[:0]
	for i := 0; i < n; i++ {
		shardOf = append(shardOf, -1)
	}
	s.shardOf = shardOf
	count := 0
	for i := 0; i < n; i++ {
		r := find(int32(i))
		if shardOf[r] < 0 {
			shardOf[r] = int32(count)
			count++
		}
		s.tasks[i].shardIdx = shardOf[r]
	}
	for id, a := range resAnchor {
		if a < 0 {
			s.resources[id].shardIdx = -1
			continue
		}
		s.resources[id].shardIdx = shardOf[find(a)]
	}

	for len(s.shards) < count {
		s.shards = append(s.shards, &shard{sim: s})
	}
	s.nShards = count
	for _, sh := range s.shards[:count] {
		sh.tasks = sh.tasks[:0]
	}
	for _, t := range s.tasks {
		sh := s.shards[t.shardIdx]
		sh.tasks = append(sh.tasks, t)
	}

	// Cache the dispatch schedule with the partition: shard indices in
	// descending task count (ties by index). Big shards dispatch first so
	// a giant component starts immediately and the tail remains available
	// to steal.
	order := s.stealOrder[:0]
	for i := 0; i < count; i++ {
		order = append(order, int32(i))
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := len(s.shards[order[a]].tasks), len(s.shards[order[b]].tasks)
		if na != nb {
			return na > nb
		}
		return order[a] < order[b]
	})
	s.stealOrder = order
	s.shardsValid = true
}

// runParallel executes a fresh run over the cached partition on a worker
// pool bounded by Parallelism. It reports false — leaving the simulator
// rewound to pristine state — when the DAG has fewer than two shards or
// when the outcome needs global event order (structured failure,
// deadlock); Run then takes the serial path.
func (s *Sim) runParallel() bool {
	if !s.shardsValid {
		s.partition()
	}
	if s.nShards < 2 {
		return false
	}
	shards := s.shards[:s.nShards]
	s.routeCapEvents(shards)
	for _, sh := range shards {
		sh.prepare()
		sh.used = true
	}

	workers := s.Parallelism
	if workers > len(shards) {
		workers = len(shards)
	}
	s.steals = 0
	if workers <= 1 {
		for _, i := range s.stealOrder {
			shards[i].run()
		}
	} else {
		s.runStealing(shards, workers)
	}

	now, pending, failed := Time(0), 0, false
	for _, sh := range shards {
		if sh.err != nil {
			failed = true
		}
		if sh.now > now {
			now = sh.now
		}
		pending += sh.pending
	}
	if failed || pending > 0 {
		// Structured failures and deadlock reports depend on global event
		// order. Rewind and let Run rerun serially from pristine state:
		// bitwise-identical to a serial run by construction.
		s.rewind()
		return false
	}

	s.now = now
	s.pending = 0
	s.err = nil
	s.sweepLeftoverCaps(shards)
	s.active = append(s.active[:0], shards...)
	return true
}

// stealChunk is a half-open [lo, hi) slice of the cached stealOrder
// schedule: the unit of work distribution and of stealing.
type stealChunk struct {
	lo, hi int32
}

// stealDeque is one worker's chunk queue. The owner pops from the front,
// thieves take from the back; a plain mutex per operation is cheap at
// chunk granularity (a chunk amortizes many shard event loops).
type stealDeque struct {
	mu     sync.Mutex
	chunks []stealChunk
	head   int
}

func (d *stealDeque) popFront() (stealChunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.chunks) {
		return stealChunk{}, false
	}
	c := d.chunks[d.head]
	d.head++
	return c, true
}

func (d *stealDeque) stealBack() (stealChunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.chunks)
	if d.head >= n {
		return stealChunk{}, false
	}
	c := d.chunks[n-1]
	d.chunks = d.chunks[:n-1]
	return c, true
}

// stealChunkLen picks the fixed chunk length for a schedule of n shards:
// small enough that every worker holds several chunks (so there is
// something left to steal), clamped so tiny-shard storms don't pay a
// lock per shard and giant-shard schedules still split.
func stealChunkLen(n, workers int) int {
	c := n / (workers * 8)
	if c < 1 {
		c = 1
	}
	if c > 32 {
		c = 32
	}
	return c
}

// runStealing executes the prepared shards on a worker pool with
// chunk-granular work stealing. Chunks of the size-descending schedule
// are dealt round-robin onto per-worker deques; owners pop from the
// front, idle workers steal from the back of the other deques. With
// NoSteal set, each worker drains only its own deque (the static
// assignment the ablation gate compares against).
func (s *Sim) runStealing(shards []*shard, workers int) {
	order := s.stealOrder
	for len(s.stealDeques) < workers {
		s.stealDeques = append(s.stealDeques, &stealDeque{})
	}
	deques := s.stealDeques[:workers]
	for _, d := range deques {
		d.chunks = d.chunks[:0]
		d.head = 0
	}
	chunk := stealChunkLen(len(order), workers)
	w := 0
	for lo := 0; lo < len(order); lo += chunk {
		hi := lo + chunk
		if hi > len(order) {
			hi = len(order)
		}
		d := deques[w]
		d.chunks = append(d.chunks, stealChunk{int32(lo), int32(hi)})
		w = (w + 1) % workers
	}

	var steals atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(self int) {
			defer wg.Done()
			d := deques[self]
			for {
				c, ok := d.popFront()
				if !ok {
					if s.NoSteal {
						return
					}
					// Chunks are only ever removed, so a full scan that
					// finds every deque empty is terminal.
					for off := 1; off < workers; off++ {
						if c, ok = deques[(self+off)%workers].stealBack(); ok {
							steals.Add(1)
							break
						}
					}
					if !ok {
						return
					}
				}
				for i := c.lo; i < c.hi; i++ {
					shards[order[i]].run()
				}
			}
		}(w)
	}
	wg.Wait()
	s.steals = int(steals.Load())
}

// routeCapEvents distributes the (sorted) capacity events to the shards
// owning their resources, preserving (at, seq) order within each shard.
// Events on resources no task touches go to orphanCap; they cannot
// perturb any schedule and are applied at merge time.
func (s *Sim) routeCapEvents(shards []*shard) {
	for _, sh := range shards {
		sh.capEvents = sh.capEvents[:0]
	}
	s.orphanCap = s.orphanCap[:0]
	for _, ev := range s.capEvents {
		if idx := ev.res.shardIdx; idx >= 0 {
			sh := shards[idx]
			sh.capEvents = append(sh.capEvents, ev)
		} else {
			s.orphanCap = append(s.orphanCap, ev)
		}
	}
}

// sweepLeftoverCaps applies the capacity events still due at the merged
// clock: a shard's local clock stops at its own last completion, so
// events between that instant and the global makespan — which the serial
// loop applies inline — are applied here. Final resource capacities
// match the serial run exactly; events beyond the makespan stay
// unapplied in both modes.
func (s *Sim) sweepLeftoverCaps(shards []*shard) {
	evs := s.orphanCap
	for _, sh := range shards {
		evs = append(evs, sh.capEvents[sh.nextCap:]...)
		sh.nextCap = len(sh.capEvents)
	}
	due := evs[:0]
	for _, ev := range evs {
		if ev.at <= s.now+timeEpsilon {
			due = append(due, ev)
		}
	}
	sort.Slice(due, func(i, j int) bool {
		if due[i].at != due[j].at {
			return due[i].at < due[j].at
		}
		return due[i].seq < due[j].seq
	})
	for _, ev := range due {
		ev.res.capacity = ev.capacity
	}
	s.orphanCap = s.orphanCap[:0]
}
