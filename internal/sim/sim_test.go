package sim

import (
	"math"
	"testing"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestSingleCompute(t *testing.T) {
	s := New()
	e := s.NewEngine("gpu0")
	s.Compute("c", e, 2.5)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 2.5, 1e-12, "makespan")
}

func TestComputeChain(t *testing.T) {
	s := New()
	e := s.NewEngine("gpu0")
	a := s.Compute("a", e, 1)
	b := s.Compute("b", e, 2, a)
	s.Compute("c", e, 3, b)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 6, 1e-12, "makespan")
}

func TestEngineSerializesIndependentTasks(t *testing.T) {
	s := New()
	e := s.NewEngine("gpu0")
	s.Compute("a", e, 1)
	s.Compute("b", e, 1)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 2, 1e-12, "two tasks on one engine serialize")
}

func TestParallelEngines(t *testing.T) {
	s := New()
	e1 := s.NewEngine("gpu0")
	e2 := s.NewEngine("gpu1")
	s.Compute("a", e1, 5)
	s.Compute("b", e2, 3)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 5, 1e-12, "parallel engines overlap")
}

func TestEnginePriorityOrder(t *testing.T) {
	s := New()
	e := s.NewEngine("gpu0")
	link := s.NewResource("link", 1)
	// Block the engine so both transfers queue, then check dispatch order.
	gate := s.Compute("gate", e, 1)
	lo := s.Transfer("lo", e, Path(link), 1, 0, gate)
	hi := s.Transfer("hi", e, Path(link), 1, 5, gate)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !(hi.Start() < lo.Start()) {
		t.Fatalf("high priority transfer should dispatch first: hi=%g lo=%g", hi.Start(), lo.Start())
	}
}

func TestSingleTransferBandwidth(t *testing.T) {
	s := New()
	link := s.NewResource("link", 16e9)
	tr := s.Transfer("t", nil, Path(link), 32e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 2, 1e-9, "32GB over 16GB/s")
	almost(t, tr.End()-tr.Start(), 2, 1e-9, "transfer duration")
}

func TestTransferBottleneckedByNarrowestHop(t *testing.T) {
	s := New()
	wide := s.NewResource("wide", 16e9)
	narrow := s.NewResource("narrow", 4e9)
	s.Transfer("t", nil, Path(wide, narrow), 8e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 2, 1e-9, "8GB at 4GB/s bottleneck")
}

func TestTwoFlowsShareFairly(t *testing.T) {
	s := New()
	rc := s.NewResource("rc", 10e9)
	s.Transfer("a", nil, Path(rc), 10e9, 0)
	s.Transfer("b", nil, Path(rc), 10e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Each gets 5 GB/s: both finish at t=2.
	almost(t, end, 2, 1e-9, "fair share halves bandwidth")
}

func TestUnequalFlowsMaxMin(t *testing.T) {
	s := New()
	rc := s.NewResource("rc", 10e9)
	small := s.Transfer("small", nil, Path(rc), 5e9, 0)
	big := s.Transfer("big", nil, Path(rc), 15e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: both at 5 GB/s until small finishes at t=1 (5GB done each).
	// Phase 2: big alone at 10 GB/s for remaining 10GB -> 1s more.
	almost(t, small.End(), 1, 1e-9, "small flow completion")
	almost(t, big.End(), 2, 1e-9, "big flow completion")
	almost(t, end, 2, 1e-9, "makespan")
}

func TestStrictPriorityPreemptsBandwidth(t *testing.T) {
	s := New()
	rc := s.NewResource("rc", 10e9)
	hi := s.Transfer("hi", nil, Path(rc), 10e9, 1)
	lo := s.Transfer("lo", nil, Path(rc), 10e9, 0)
	_, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// High priority takes all 10 GB/s, finishing at t=1; low priority then
	// runs alone, finishing at t=2.
	almost(t, hi.End(), 1, 1e-9, "high priority flow")
	almost(t, lo.End(), 2, 1e-9, "low priority flow starved then runs")
}

func TestWeightedPathDoubleCrossing(t *testing.T) {
	s := New()
	rc := s.NewResource("rc", 10e9)
	// Staged same-root-complex GPU-to-GPU copy crosses rc twice.
	s.Transfer("staged", nil, Path(rc, rc), 10e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Effective bandwidth is capacity/2 = 5 GB/s.
	almost(t, end, 2, 1e-9, "double crossing halves effective bandwidth")
}

func TestPathMergesDuplicates(t *testing.T) {
	r := &Resource{name: "r"}
	p := Path(r, r, nil, r)
	if len(p) != 1 {
		t.Fatalf("want 1 merged element, got %d", len(p))
	}
	if p[0].Weight != 3 {
		t.Fatalf("want weight 3, got %g", p[0].Weight)
	}
}

func TestDisjointResourcesDoNotContend(t *testing.T) {
	s := New()
	r1 := s.NewResource("rc1", 10e9)
	r2 := s.NewResource("rc2", 10e9)
	a := s.Transfer("a", nil, Path(r1), 10e9, 0)
	b := s.Transfer("b", nil, Path(r2), 10e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 1, 1e-9, "disjoint flows run at full speed")
	almost(t, a.End(), 1, 1e-9, "flow a")
	almost(t, b.End(), 1, 1e-9, "flow b")
}

func TestSharedMiddleHop(t *testing.T) {
	s := New()
	l1 := s.NewResource("l1", 16e9)
	l2 := s.NewResource("l2", 16e9)
	rc := s.NewResource("rc", 12e9)
	a := s.Transfer("a", nil, Path(l1, rc), 12e9, 0)
	b := s.Transfer("b", nil, Path(l2, rc), 12e9, 0)
	_, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Both share rc at 6 GB/s each.
	almost(t, a.End(), 2, 1e-9, "flow a halved by shared root complex")
	almost(t, b.End(), 2, 1e-9, "flow b halved by shared root complex")
}

func TestComputeAndTransferOverlap(t *testing.T) {
	s := New()
	e := s.NewEngine("gpu0.compute")
	ce := s.NewEngine("gpu0.upload")
	link := s.NewResource("link", 10e9)
	c := s.Compute("c", e, 2)
	tr := s.Transfer("t", ce, Path(link), 10e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 2, 1e-9, "compute and DMA overlap")
	almost(t, c.End(), 2, 1e-9, "compute")
	almost(t, tr.End(), 1, 1e-9, "transfer")
}

func TestCopyEngineSerializesTransfers(t *testing.T) {
	s := New()
	ce := s.NewEngine("gpu0.upload")
	link := s.NewResource("link", 10e9)
	s.Transfer("a", ce, Path(link), 10e9, 0)
	s.Transfer("b", ce, Path(link), 10e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Serialized on the engine: 1s + 1s, no bandwidth sharing.
	almost(t, end, 2, 1e-9, "copy engine serializes")
}

func TestMemPoolBlocksUntilFree(t *testing.T) {
	s := New()
	e := s.NewEngine("gpu0")
	pool := s.NewMemPool("mem", 10)
	a1 := s.Alloc("a1", pool, 8)
	c1 := s.Compute("c1", e, 3, a1)
	f1 := s.Free("f1", pool, 8, c1)
	a2 := s.Alloc("a2", pool, 8) // must wait for f1
	c2 := s.Compute("c2", e, 1, a2)
	_ = f1
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, a2.End(), 3, 1e-9, "second alloc waits for free")
	almost(t, c2.End(), 4, 1e-9, "second compute after alloc")
	almost(t, end, 4, 1e-9, "makespan")
}

func TestMemPoolFIFOOrder(t *testing.T) {
	s := New()
	pool := s.NewMemPool("mem", 10)
	hold := s.Alloc("hold", pool, 10)
	relTrigger := s.After("trigger", hold)
	// Two waiters; first asks 6, second asks 3. Strict FIFO means the 3
	// cannot jump the queue even when it would fit first.
	w1 := s.Alloc("w1", pool, 6, relTrigger)
	w2 := s.Alloc("w2", pool, 3, relTrigger)
	// Free 5 at t=1 (not enough for w1), then 5 more at t=2.
	e := s.NewEngine("clock")
	t1 := s.Compute("t1", e, 1)
	t2 := s.Compute("t2", e, 1, t1)
	s.Free("f1", pool, 5, t1)
	s.Free("f2", pool, 5, t2)
	_, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, w1.End(), 2, 1e-9, "w1 completes after second free")
	if w2.End() < w1.End() {
		t.Fatalf("FIFO violated: w2 (%g) finished before w1 (%g)", w2.End(), w1.End())
	}
}

func TestMemPoolPeak(t *testing.T) {
	s := New()
	pool := s.NewMemPool("mem", 100)
	a := s.Alloc("a", pool, 60)
	b := s.Alloc("b", pool, 30, a)
	s.Free("fa", pool, 60, b)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	almost(t, pool.Peak(), 90, 1e-9, "peak usage")
	almost(t, pool.Used(), 30, 1e-9, "final usage")
}

func TestDeadlockDetected(t *testing.T) {
	s := New()
	pool := s.NewMemPool("mem", 10)
	s.Alloc("too-big", pool, 20)
	_, err := s.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestZeroByteTransferCompletes(t *testing.T) {
	s := New()
	link := s.NewResource("link", 1)
	a := s.Transfer("zero", nil, Path(link), 0, 0)
	b := s.Compute("after", s.NewEngine("e"), 1, a)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 1, 1e-9, "zero-byte transfer is instant")
	almost(t, b.Start(), 0, 1e-9, "successor starts immediately")
}

func TestEmptyPathTransferIsUnconstrained(t *testing.T) {
	s := New()
	s.Transfer("free", nil, nil, 1e12, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end > 1e-3 {
		t.Fatalf("empty-path transfer should be near-instant, took %g", end)
	}
}

func TestVirtualJoin(t *testing.T) {
	s := New()
	e1 := s.NewEngine("e1")
	e2 := s.NewEngine("e2")
	a := s.Compute("a", e1, 1)
	b := s.Compute("b", e2, 2)
	j := s.After("join", a, b)
	c := s.Compute("c", e1, 1, j)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, j.End(), 2, 1e-9, "join waits for slowest")
	almost(t, c.End(), 3, 1e-9, "post-join compute")
	almost(t, end, 3, 1e-9, "makespan")
}

func TestDependencyOnFinishedTask(t *testing.T) {
	// Dependencies registered on already-finished tasks (possible when a
	// DAG is built incrementally) must not block successors. Here all deps
	// are wired before Run, so this exercises the nil/finished-dep path.
	s := New()
	e := s.NewEngine("e")
	a := s.Compute("a", e, 1)
	b := s.Compute("b", e, 1, a, nil) // nil dep ignored
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, b.End(), 2, 1e-9, "b after a")
	almost(t, end, 2, 1e-9, "makespan")
}

type recordingObserver struct {
	started  []string
	finished []string
}

func (r *recordingObserver) TaskStarted(t *Task, at Time)  { r.started = append(r.started, t.Name()) }
func (r *recordingObserver) TaskFinished(t *Task, at Time) { r.finished = append(r.finished, t.Name()) }

func TestObserverSeesLifecycle(t *testing.T) {
	s := New()
	obs := &recordingObserver{}
	s.Observe(obs)
	e := s.NewEngine("e")
	link := s.NewResource("link", 1e9)
	a := s.Compute("a", e, 1)
	s.Transfer("t", nil, Path(link), 1e9, 0, a)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(obs.started) != 2 || len(obs.finished) != 2 {
		t.Fatalf("observer missed events: started=%v finished=%v", obs.started, obs.finished)
	}
	if obs.finished[0] != "a" || obs.finished[1] != "t" {
		t.Fatalf("unexpected finish order: %v", obs.finished)
	}
}

func TestDeterministicReplay(t *testing.T) {
	build := func() (*Sim, []*Task) {
		s := New()
		rc1 := s.NewResource("rc1", 10e9)
		rc2 := s.NewResource("rc2", 10e9)
		var tasks []*Task
		for i := 0; i < 10; i++ {
			r := rc1
			if i%2 == 1 {
				r = rc2
			}
			tasks = append(tasks, s.Transfer("t", nil, Path(r), float64(1+i)*1e9, i%3))
		}
		return s, tasks
	}
	s1, t1 := build()
	s2, t2 := build()
	if _, err := s1.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range t1 {
		if t1[i].End() != t2[i].End() {
			t.Fatalf("non-deterministic completion for task %d: %g vs %g", i, t1[i].End(), t2[i].End())
		}
	}
}

func TestResourceUtilizationAccounting(t *testing.T) {
	s := New()
	rc := s.NewResource("rc", 10e9)
	s.Transfer("a", nil, Path(rc), 10e9, 0)
	s.Transfer("b", nil, Path(rc), 10e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, rc.Carried(), 20e9, 1, "bytes carried")
	almost(t, rc.Utilization(end), 1, 1e-9, "fully utilized while active")
	// Weighted double-crossing counts twice.
	s2 := New()
	rc2 := s2.NewResource("rc", 10e9)
	s2.Transfer("staged", nil, Path(rc2, rc2), 5e9, 0)
	if _, err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	almost(t, rc2.Carried(), 10e9, 1, "double-crossing carried")
}
