package sim

import "fmt"

// This file is the silent-data-corruption surface of the simulator. A
// CorruptionPolicy (installed by the fault package, like RetryPolicy)
// decides per delivery attempt whether a transfer's payload arrives
// corrupted. What happens next depends on whether end-to-end checksums
// are enabled:
//
//   - Checksums on: the corruption is detected at the receiver and the
//     payload is retransmitted after an exponential backoff, re-paying
//     the per-byte checksum cost and re-flowing the bytes across the
//     path (the retransmit traffic is real traffic). A transfer whose
//     whole retransmit budget delivers corrupted halts the run with a
//     structured *CorruptionError at the instant the last attempt
//     completes.
//   - Checksums off: the corrupted payload is accepted silently. The
//     transfer and, transitively, every task that depends on it are
//     tainted; the run completes with a wrong answer, which is exactly
//     the exposure experiments want to price against the detection cost.
//
// Like every fault knob, the policy must be a deterministic function of
// the task (seed-hash, never call order), so corrupted replays are
// bit-identical.

// CorruptionPolicy decides whether delivery attempt `attempt` (0 is the
// first transmission) of transfer t arrives corrupted. Policies must be
// deterministic functions of (t, attempt) — see RetryPolicy for why.
type CorruptionPolicy func(t *Task, attempt int) bool

// Checksum model defaults.
const (
	// DefaultChecksumCostPerByte prices the end-to-end CRC at ~25 GB/s of
	// host-side throughput — one core's worth of hardware-assisted CRC32C,
	// paid once per delivery attempt.
	DefaultChecksumCostPerByte = 1.0 / 25e9
	// defaultMaxRetransmits bounds detected-corruption retransmits per
	// transfer when the config leaves MaxRetransmits 0.
	defaultMaxRetransmits = 2
	// defaultRetransmitBackoff is the initial wait before a retransmit,
	// in seconds, when the config leaves Backoff 0.
	defaultRetransmitBackoff = 1e-3
)

// ChecksumConfig configures end-to-end transfer checksums. The zero
// value disables them (corruption, if injected, is silent).
type ChecksumConfig struct {
	// Enabled turns on detection: every transfer pays CostPerByte of
	// setup latency per delivery attempt, and corrupted attempts are
	// retransmitted instead of accepted.
	Enabled bool
	// CostPerByte is the checksum compute latency in seconds per payload
	// byte per attempt (0 means DefaultChecksumCostPerByte).
	CostPerByte float64
	// MaxRetransmits bounds retransmits per transfer (0 means
	// defaultMaxRetransmits). A transfer with MaxRetransmits+1 corrupted
	// attempts halts the run with a *CorruptionError.
	MaxRetransmits int
	// Backoff is the wait before the k-th retransmit, doubling per
	// attempt like RetryPolicy's model (0 means defaultRetransmitBackoff).
	Backoff Time
}

func (c ChecksumConfig) costPerByte() float64 {
	if c.CostPerByte > 0 {
		return c.CostPerByte
	}
	return DefaultChecksumCostPerByte
}

func (c ChecksumConfig) maxRetransmits() int {
	if c.MaxRetransmits > 0 {
		return c.MaxRetransmits
	}
	return defaultMaxRetransmits
}

func (c ChecksumConfig) backoff() Time {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return defaultRetransmitBackoff
}

// CorruptionError is the structured failure Run returns when a transfer
// exhausts its retransmit budget with every attempt corrupted. Detection
// happens end-to-end, so At is the completion instant of the final
// attempt, not the onset of the first corruption.
type CorruptionError struct {
	// Task is the name of the transfer whose payload never arrived intact.
	Task string
	// At is the simulated time the final corrupted attempt completed.
	At Time
	// Attempts is the total delivery attempts, all corrupted
	// (1 + MaxRetransmits).
	Attempts int
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("sim: transfer %q corrupted on all %d delivery attempts (retransmit budget exhausted at t=%.6g)",
		e.Task, e.Attempts, e.At)
}

// IntegrityStats aggregates the corruption/detection bookkeeping of one
// run. All counters are deterministic for a fixed spec and schedule.
type IntegrityStats struct {
	// CorruptedAttempts counts delivery attempts that arrived corrupted
	// (detected or not).
	CorruptedAttempts int
	// Retransmits counts retransmissions performed after detection
	// (checksums on). Equal to CorruptedAttempts unless a transfer
	// exhausted its budget and halted the run.
	Retransmits int
	// RetransmitWait is the total backoff wait injected before
	// retransmits, in seconds.
	RetransmitWait Time
	// ChecksumCost is the total checksum compute latency paid, in
	// seconds (every attempt of every transfer while checksums are on).
	ChecksumCost Time
	// SilentCorruptions counts corrupted payloads accepted because
	// checksums were off.
	SilentCorruptions int
	// TaintedTasks counts finished tasks transitively downstream of a
	// silently corrupted transfer (the corrupted transfer included).
	TaintedTasks int
}

// Integrity returns the run's corruption/detection bookkeeping.
func (s *Sim) Integrity() IntegrityStats { return s.integrity }

// injectCorruption consults the corruption policy for a starting transfer
// and returns the extra setup latency (checksum compute for retransmitted
// attempts plus backoff waits). The first attempt's checksum cost is
// charged unconditionally by the caller. Must only be called for
// transfers with payload. All bookkeeping is recorded on the task itself —
// never on shared run-level accumulators — so shards stay write-disjoint;
// finalizeIntegrity derives the aggregate when the run completes.
func (sh *shard) injectCorruption(t *Task) (extra Time) {
	s := sh.sim
	if s.Checksums.Enabled {
		max := s.Checksums.maxRetransmits()
		n := 0
		for a := 0; a <= max && s.CorruptionPolicy(t, a); a++ {
			n++
		}
		if n == 0 {
			return 0
		}
		retr := n
		if retr > max {
			// Every attempt in the budget corrupted: the final completion
			// surfaces the structured error (see complete).
			retr = max
			t.corruptExhausted = true
		}
		t.retransmits = retr
		t.corruptAttempts = n
		wait := s.Checksums.backoff() * Time((uint64(1)<<retr)-1)
		ck := float64(retr) * t.bytes * s.Checksums.costPerByte()
		return wait + Time(ck)
	}
	if s.CorruptionPolicy(t, 0) {
		t.tainted = true
		t.corruptAttempts = 1
		t.silentCorrupt = true
	}
	return 0
}

// finalizeIntegrity derives the run-level IntegrityStats from the
// per-task counters, scanning tasks in id order. Summation order is
// therefore a property of the DAG, not of event interleaving — serial,
// sharded, and oracle runs produce bitwise-identical aggregates.
func (s *Sim) finalizeIntegrity() {
	st := IntegrityStats{}
	if s.Checksums.Enabled || s.CorruptionPolicy != nil {
		bo := s.Checksums.backoff()
		cpb := s.Checksums.costPerByte()
		for _, t := range s.tasks {
			if t.corruptAttempts > 0 {
				st.CorruptedAttempts += t.corruptAttempts
				if t.silentCorrupt {
					st.SilentCorruptions++
				} else {
					st.Retransmits += t.retransmits
					st.RetransmitWait += bo * Time((uint64(1)<<t.retransmits)-1)
				}
			}
			if t.checksumCharged {
				st.ChecksumCost += Time(float64(1+t.retransmits) * t.bytes * cpb)
			}
			if t.tainted && t.state == stateFinished {
				st.TaintedTasks++
			}
		}
	}
	s.integrity = st
}
