package sim

import (
	"fmt"
	"testing"
)

// Scale coverage for the synthetic topology generator, the streaming
// Builder, work-stealing dispatch at 10k+ flows, and Reset's
// high-water-mark shrink. BenchmarkSimScale is the family BENCH_sim.json
// records and the acceptance target (100k-flow construct+run in
// single-digit seconds) is measured against.

// buildSyntheticNaive is the pre-Builder twin of BuildSynthetic: the same
// DAG emitted through the variadic public constructors. It exists so the
// construct-allocation gate (perf_test.go) and the bitwise-equivalence
// test below compare the streaming path against exactly what it replaced.
func buildSyntheticNaive(s *Sim, spec SyntheticSpec) int {
	sp := spec.withDefaults()
	var linkScratch []*Resource
	total, island := 0, 0
	emitIsland := func(streams, flowsCap int) int {
		rc := s.NewResource("rc", 13.1e9)
		links := linkScratch[:0]
		for i := 0; i < sp.Links; i++ {
			links = append(links, s.NewResource("ln", 26.2e9))
		}
		linkScratch = links
		eng := s.NewEngine("eng")
		emitted := 0
		for st := 0; st < streams && emitted < flowsCap; st++ {
			prev := s.Compute("hd", eng, synthDur(island, st))
			for k := 0; k < sp.Chain && emitted < flowsCap; k++ {
				prev = s.Transfer("fl", nil, s.Path(links[st%len(links)], rc), synthBytes(island, st, k), st%4, prev)
				emitted++
			}
		}
		island++
		return emitted
	}
	if sp.SkewFrac > 0 && sp.Flows > 0 {
		giant := int(float64(sp.Flows) * sp.SkewFrac)
		if giant > 0 {
			streams := (giant + sp.Chain - 1) / sp.Chain
			total += emitIsland(streams, giant)
		}
	}
	per := sp.Streams * sp.Chain
	for total < sp.Flows {
		n := sp.Flows - total
		if n > per {
			n = per
		}
		total += emitIsland(sp.Streams, n)
	}
	return total
}

// runSyntheticRecord builds a synthetic topology one way or the other and
// runs it under the given scheduler settings, capturing every observable
// bit.
func runSyntheticRecord(spec SyntheticSpec, naive bool, parallelism int, noSteal bool) runRecord {
	s := New()
	s.Parallelism = parallelism
	s.NoSteal = noSteal
	obs := &timelineObserver{}
	s.Observe(obs)
	if naive {
		buildSyntheticNaive(s, spec)
	} else {
		BuildSynthetic(s, spec)
	}
	makespan, err := s.Run()
	return captureRecord(s, obs, makespan, err)
}

// TestBuilderMatchesNaive pins that the streaming Builder emits the
// identical DAG to the variadic constructors: same task ids, same dep
// order, same schedule, bit for bit.
func TestBuilderMatchesNaive(t *testing.T) {
	spec := SyntheticSpec{Flows: 2000, SkewFrac: 0.3}
	naive := runSyntheticRecord(spec, true, 0, false)
	stream := runSyntheticRecord(spec, false, 0, false)
	diffRecords(t, 0, stream, naive)
}

// TestScaleSmoke is the 10k-flow smoke for `make check-scale`: a skewed
// synthetic topology must produce bitwise-identical schedules across the
// serial scheduler and work-stealing parallel runs at non-power-of-two
// and oversubscribed worker counts, with stealing on and off.
func TestScaleSmoke(t *testing.T) {
	spec := SyntheticSpec{Flows: 10000, SkewFrac: 0.4}
	serial := runSyntheticRecord(spec, false, 0, false)
	for _, k := range []int{3, 8} {
		for _, noSteal := range []bool{false, true} {
			par := runSyntheticRecord(spec, false, k, noSteal)
			diffRecords(t, int64(k), serial, par)
			if t.Failed() {
				t.Fatalf("K=%d noSteal=%v: scale smoke divergence (stopping)", k, noSteal)
			}
		}
	}
}

// TestSyntheticShape sanity-checks the generator's contract: exact flow
// count, one shard per island, and a giant-first partition under skew.
func TestSyntheticShape(t *testing.T) {
	s := New()
	s.Parallelism = 2
	flows := BuildSynthetic(s, SyntheticSpec{Flows: 1000, SkewFrac: 0.5})
	if flows != 1000 {
		t.Fatalf("BuildSynthetic emitted %d flows, want 1000", flows)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	n := s.ShardCount()
	// 500 skewed flows in one island + 500 spread at 32 per island.
	want := 1 + (500+31)/32
	if n != want {
		t.Fatalf("ShardCount = %d, want %d", n, want)
	}
	// The cached schedule leads with the giant shard.
	giant := s.shards[s.stealOrder[0]]
	for _, i := range s.stealOrder[1:] {
		if len(s.shards[i].tasks) > len(giant.tasks) {
			t.Fatalf("steal order not size-descending: shard %d (%d tasks) after head (%d tasks)",
				i, len(s.shards[i].tasks), len(giant.tasks))
		}
	}
}

// TestResetShrinksRetainedSlabs is the regression gate for the Reset
// shrink: after a large run, a Reset whose window only saw a tiny run
// must release the oversized pooled buffers instead of pinning peak
// memory forever — while a Reset straight after the large run (the
// steady-state grid shape) keeps capacity intact.
func TestResetShrinksRetainedSlabs(t *testing.T) {
	s := New()
	obs := &timelineObserver{}
	s.Observe(obs)
	// Wide topology: every stream is one flow, so peak concurrent flows
	// and buffered events both clear the shrink floor by a wide margin.
	BuildSynthetic(s, SyntheticSpec{Flows: 12000, Chain: 1, Streams: 64})
	if _, err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	sh := s.serial
	if len(sh.flowPool) <= shrinkMinCap {
		t.Fatalf("test setup: flow pool only %d entries, need > %d to exercise shrink", len(sh.flowPool), shrinkMinCap)
	}
	if cap(sh.events) <= shrinkMinCap {
		t.Fatalf("test setup: events cap only %d, need > %d", cap(sh.events), shrinkMinCap)
	}

	// Reset right after the big run: the window's high-water marks equal
	// the retained capacity, so nothing may shrink (steady-state reruns
	// of the same DAG must stay allocation-free).
	bigEvents, bigPool := cap(sh.events), len(sh.flowPool)
	s.Reset()
	if cap(sh.events) != bigEvents {
		t.Fatalf("Reset after full run shrank events: cap %d -> %d", bigEvents, cap(sh.events))
	}
	if len(sh.flowPool) != bigPool {
		t.Fatalf("Reset after full run shrank flow pool: %d -> %d", bigPool, len(sh.flowPool))
	}

	// A failure at t=0 halts the next run immediately: the window sees
	// almost nothing, and the following Reset must release the capacity
	// the big run left behind.
	s.ScheduleFailure(0, "loss", []*Resource{s.resources[0]}, nil)
	obs.events = obs.events[:0]
	if _, err := s.Run(); err == nil {
		t.Fatal("expected halted run to report an error")
	}
	s.Reset()
	if c := cap(sh.events); c > shrinkMinCap {
		t.Errorf("events capacity not shrunk: cap %d > %d", c, shrinkMinCap)
	}
	if n := len(sh.flowPool); n > shrinkMinCap {
		t.Errorf("flow pool not shrunk: %d entries > %d", n, shrinkMinCap)
	}
	if c := cap(s.eventScratch); c > shrinkMinCap {
		t.Errorf("event scratch not shrunk: cap %d > %d", c, shrinkMinCap)
	}

	// The shrunk simulator still replays the fault-free schedule.
	obs.events = obs.events[:0]
	if _, err := s.Run(); err != nil {
		t.Fatalf("run after shrink: %v", err)
	}
}

// BenchmarkSimScale is the scale family BENCH_sim.json records: DAG
// construction, serial execution, and work-stealing parallel execution
// at 10k/50k/100k flows. Sub-benchmark names use plain integers so
// bench2json's scaling derivation can parse the flow counts.
func BenchmarkSimScale(b *testing.B) {
	for _, flows := range []int{10000, 50000, 100000} {
		spec := SyntheticSpec{Flows: flows}
		b.Run(fmt.Sprintf("flows=%d/construct", flows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New()
				BuildSynthetic(s, spec)
			}
		})
		b.Run(fmt.Sprintf("flows=%d/run", flows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New()
				BuildSynthetic(s, spec)
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("flows=%d/parallel", flows), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New()
				s.Parallelism = 8
				BuildSynthetic(s, spec)
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
