package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fairnessScenario is a randomized set of flows over a random resource
// graph, used by the property tests below.
type fairnessScenario struct {
	caps   []float64 // resource capacities
	flows  [][]int   // resource indices per flow
	prios  []int
	weight [][]float64
}

func genScenario(r *rand.Rand) fairnessScenario {
	nRes := 1 + r.Intn(5)
	caps := make([]float64, nRes)
	for i := range caps {
		caps[i] = 1e9 * (1 + r.Float64()*15)
	}
	nFlows := 1 + r.Intn(8)
	flows := make([][]int, nFlows)
	prios := make([]int, nFlows)
	weight := make([][]float64, nFlows)
	for i := range flows {
		nHops := 1 + r.Intn(3)
		seen := map[int]bool{}
		for h := 0; h < nHops; h++ {
			ri := r.Intn(nRes)
			if seen[ri] {
				continue
			}
			seen[ri] = true
			flows[i] = append(flows[i], ri)
			weight[i] = append(weight[i], float64(1+r.Intn(2)))
		}
		prios[i] = r.Intn(3)
	}
	return fairnessScenario{caps: caps, flows: flows, prios: prios, weight: weight}
}

// rates runs the water-filling computation on a scenario and returns the
// per-flow rates plus the resources.
func (sc fairnessScenario) rates() ([]float64, []*Resource) {
	s := New()
	res := make([]*Resource, len(sc.caps))
	for i, c := range sc.caps {
		res[i] = s.NewResource("r", c)
	}
	for i, hops := range sc.flows {
		path := make([]PathElem, 0, len(hops))
		for h, ri := range hops {
			path = append(path, PathElem{Res: res[ri], Weight: sc.weight[i][h]})
		}
		s.Transfer("f", nil, path, 1e12, sc.prios[i])
	}
	// Arm the flows without running to completion: seed ready queue.
	sh := s.serialShard()
	for _, t := range s.tasks {
		if t.waiting == 0 {
			sh.ready = append(sh.ready, t)
		}
	}
	sh.drain()
	sh.recomputeRates()
	rates := make([]float64, len(sh.flows))
	for i, f := range sh.flows {
		rates[i] = f.rate
	}
	return rates, res
}

// TestFairnessNeverExceedsCapacity: for random flow sets, the aggregate
// weighted rate on every resource stays within capacity.
func TestFairnessNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sc := genScenario(r)
		rates, _ := sc.rates()
		load := make([]float64, len(sc.caps))
		for i, hops := range sc.flows {
			for h, ri := range hops {
				load[ri] += rates[i] * sc.weight[i][h]
			}
		}
		for i, l := range load {
			if l > sc.caps[i]*(1+1e-9) {
				t.Logf("seed %d: resource %d overloaded: %g > %g", seed, i, l, sc.caps[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFairnessEveryFlowBottlenecked: each flow is bottlenecked on at least
// one of its resources (its rate cannot be raised without overloading one)
// — the defining property of max-min fairness within a priority class.
func TestFairnessEveryFlowBottlenecked(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sc := genScenario(r)
		rates, _ := sc.rates()
		load := make([]float64, len(sc.caps))
		for i, hops := range sc.flows {
			for h, ri := range hops {
				load[ri] += rates[i] * sc.weight[i][h]
			}
		}
		for i, hops := range sc.flows {
			saturated := false
			for _, ri := range hops {
				if load[ri] >= sc.caps[ri]*(1-1e-6) {
					saturated = true
					break
				}
			}
			if !saturated && rates[i] < infiniteRate/2 {
				t.Logf("seed %d: flow %d has slack everywhere (rate %g)", seed, i, rates[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFairnessHigherPriorityNeverSlower: raising a flow to a higher
// priority class must not reduce its rate when everything else is equal.
func TestFairnessHigherPriorityNeverSlower(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sc := genScenario(r)
		if len(sc.flows) < 2 {
			return true
		}
		base, _ := sc.rates()
		boosted := sc
		boosted.prios = append([]int(nil), sc.prios...)
		boosted.prios[0] = 10
		after, _ := boosted.rates()
		return after[0] >= base[0]*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEqualFlowsGetEqualRates: identical flows in the same class receive
// identical rates.
func TestEqualFlowsGetEqualRates(t *testing.T) {
	s := New()
	rc := s.NewResource("rc", 12e9)
	for i := 0; i < 5; i++ {
		s.Transfer("f", nil, Path(rc), 1e12, 0)
	}
	sh := s.serialShard()
	for _, task := range s.tasks {
		if task.waiting == 0 {
			sh.ready = append(sh.ready, task)
		}
	}
	sh.drain()
	sh.recomputeRates()
	want := 12e9 / 5.0
	for _, f := range sh.flows {
		almost(t, f.rate, want, 1, "equal split")
	}
}

// TestRandomDAGsComplete: random DAGs of computes, transfers, allocs and
// frees (with balanced alloc/free pairs) always run to completion.
func TestRandomDAGsComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		nEng := 1 + r.Intn(3)
		engines := make([]*Engine, nEng)
		for i := range engines {
			engines[i] = s.NewEngine("e")
		}
		res := s.NewResource("r", 1e9*(1+r.Float64()*10))
		pool := s.NewMemPool("m", 100)
		var prev *Task
		for i := 0; i < 5+r.Intn(20); i++ {
			var deps []*Task
			if prev != nil && r.Intn(2) == 0 {
				deps = append(deps, prev)
			}
			switch r.Intn(3) {
			case 0:
				prev = s.Compute("c", engines[r.Intn(nEng)], r.Float64(), deps...)
			case 1:
				prev = s.Transfer("t", nil, Path(res), r.Float64()*1e9, r.Intn(2), deps...)
			case 2:
				amt := 1 + r.Float64()*30
				a := s.Alloc("a", pool, amt, deps...)
				prev = s.Free("f", pool, amt, a)
			}
		}
		_, err := s.Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
