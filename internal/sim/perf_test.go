package sim

import (
	"os"
	"testing"
)

// TestIncrementalBeatsOracle is the `make check-perf` smoke gate: a short
// in-process benchmark of the contention workload under both scheduler
// modes, asserting the incremental component-local path is still
// meaningfully faster than (and allocates no more than) the global
// recompute oracle. It guards against regressions that would silently
// turn the incremental scheduler back into a global one — a recompute
// path that marks everything dirty, a heap that degenerates, a dropped
// pool — without depending on absolute machine speed.
//
// Gated behind MOBIUS_CHECK_PERF so the ordinary test run stays fast; the
// threshold (1.5x) is far below the steady-state speedup (see
// BENCH_sim.json) to keep the gate robust on loaded CI machines.
func TestIncrementalBeatsOracle(t *testing.T) {
	if os.Getenv("MOBIUS_CHECK_PERF") == "" {
		t.Skip("set MOBIUS_CHECK_PERF=1 (or run `make check-perf`) to run the performance smoke gate")
	}
	run := func(oracle bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New()
				s.rateOracle = oracle
				buildChurn(s, 8, 32, 8)
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	inc := run(false)
	ora := run(true)
	t.Logf("incremental: %d ns/op, %d allocs/op", inc.NsPerOp(), inc.AllocsPerOp())
	t.Logf("oracle:      %d ns/op, %d allocs/op", ora.NsPerOp(), ora.AllocsPerOp())

	if inc.NsPerOp()*3 > ora.NsPerOp()*2 {
		t.Errorf("incremental scheduler no longer beats the global oracle by 1.5x: %d ns/op vs %d ns/op",
			inc.NsPerOp(), ora.NsPerOp())
	}
	// Constant slack: the incremental path grows a few scratch slices the
	// oracle never touches (dirty-component collection); what the gate
	// rejects is per-event allocation, which scales far past this.
	if inc.AllocsPerOp() > ora.AllocsPerOp()+16 {
		t.Errorf("incremental scheduler allocates more than the oracle: %d vs %d allocs/op",
			inc.AllocsPerOp(), ora.AllocsPerOp())
	}
}

// TestParallelBeatsSerial is the second `make check-perf` gate: the
// 1024-flow contention workload in the steady-state shape (topology built
// once, every iteration replayed through Reset+Run), sharded scheduler on
// 4 workers against the serial incremental scheduler. It guards the two
// properties the sharded path was built for — it must never be slower
// than serial (its per-shard heaps and component sets make it faster even
// on one core; a regression here means the merge or partition got
// expensive), and steady state must stay allocation-free apart from the
// constant per-run worker spawns.
//
// A 10% grace on the time ratio and a small constant alloc slack keep the
// gate robust on loaded single-core CI machines without letting either
// property quietly erode.
func TestParallelBeatsSerial(t *testing.T) {
	if os.Getenv("MOBIUS_CHECK_PERF") == "" {
		t.Skip("set MOBIUS_CHECK_PERF=1 (or run `make check-perf`) to run the performance smoke gate")
	}
	run := func(parallelism int) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			s := New()
			s.Parallelism = parallelism
			buildChurn(s, 8, 128, 8) // 1024 concurrent flows
			if _, err := s.Run(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset()
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	ser := run(0)
	par := run(4)
	t.Logf("serial:     %d ns/op, %d allocs/op", ser.NsPerOp(), ser.AllocsPerOp())
	t.Logf("parallel=4: %d ns/op, %d allocs/op", par.NsPerOp(), par.AllocsPerOp())

	if par.NsPerOp()*10 > ser.NsPerOp()*11 {
		t.Errorf("sharded scheduler slower than serial incremental at 1024 flows: %d ns/op vs %d ns/op",
			par.NsPerOp(), ser.NsPerOp())
	}
	if ser.AllocsPerOp() > 8 {
		t.Errorf("serial steady state is no longer allocation-free: %d allocs/op", ser.AllocsPerOp())
	}
	if par.AllocsPerOp() > ser.AllocsPerOp()+16 {
		t.Errorf("sharded steady state allocates beyond the constant worker spawns: %d vs %d allocs/op",
			par.AllocsPerOp(), ser.AllocsPerOp())
	}
}

// TestStealBeatsNoStealOnSkew is the work-stealing gate in `make
// check-perf`: on the adversarially skewed partition (one giant shard,
// a swarm of tiny ones), stealing must never be slower than the static
// chunk assignment it replaced — the same 10% grace as the serial gate.
// On this single-core box both do identical total work, so the gate pins
// "stealing costs nothing"; on a multi-core machine it additionally pins
// the latency win (the tail drains while the giant runs).
func TestStealBeatsNoStealOnSkew(t *testing.T) {
	if os.Getenv("MOBIUS_CHECK_PERF") == "" {
		t.Skip("set MOBIUS_CHECK_PERF=1 (or run `make check-perf`) to run the performance smoke gate")
	}
	run := func(noSteal bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			s := New()
			s.Parallelism = 4
			s.NoSteal = noSteal
			BuildSynthetic(s, SyntheticSpec{Flows: 4096, SkewFrac: 0.5})
			if _, err := s.Run(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset()
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Min of three trials per side: the box is single-core, so one
	// unlucky GC or page-fault burst lands entirely on whichever side is
	// running; the minimum is the honest cost.
	best := func(noSteal bool) int64 {
		ns := run(noSteal).NsPerOp()
		for i := 0; i < 2; i++ {
			if n := run(noSteal).NsPerOp(); n < ns {
				ns = n
			}
		}
		return ns
	}
	steal := best(false)
	noSteal := best(true)
	t.Logf("steal:    %d ns/op", steal)
	t.Logf("no-steal: %d ns/op", noSteal)

	if steal*10 > noSteal*11 {
		t.Errorf("work stealing slower than static chunk assignment on skewed shards: %d ns/op vs %d ns/op",
			steal, noSteal)
	}
}

// prePRConstructAllocs is the measured allocation cost of building the
// 10k-flow synthetic topology with the pre-streaming construction path
// (seed-commit code: per-call Path slices, append-grown successor lists;
// measured in a worktree at that commit). Allocation counts are
// deterministic, so the constant is portable across machines; it anchors
// the ≥5x reduction the streaming builder must preserve.
const prePRConstructAllocs = 22924

// TestStreamConstructLean is the construction gate in `make check-perf`:
// building the 10k-flow synthetic topology through the streaming Builder
// must allocate at least 5x less than the pre-PR construction path did,
// and must stay under an absolute ceiling so the slab allocators cannot
// quietly erode. (The in-tree variadic constructors now share the slab
// and interning wins — buildSyntheticNaive exists for the bitwise
// equivalence test, not as the baseline here.)
func TestStreamConstructLean(t *testing.T) {
	if os.Getenv("MOBIUS_CHECK_PERF") == "" {
		t.Skip("set MOBIUS_CHECK_PERF=1 (or run `make check-perf`) to run the performance smoke gate")
	}
	spec := SyntheticSpec{Flows: 10000}
	stream := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New()
			BuildSynthetic(s, spec)
		}
	})
	t.Logf("stream builder: %d ns/op, %d allocs/op, %d B/op (pre-PR: %d allocs/op)",
		stream.NsPerOp(), stream.AllocsPerOp(), stream.AllocedBytesPerOp(), int64(prePRConstructAllocs))

	if stream.AllocsPerOp()*5 > prePRConstructAllocs {
		t.Errorf("streaming construction no longer ≥5x leaner than the pre-PR builder: %d vs %d allocs/op",
			stream.AllocsPerOp(), int64(prePRConstructAllocs))
	}
	// Absolute ceiling at 10k flows: ~0.14 allocs/flow of slab chunks,
	// path interning, and registry growth (measured ~1.4k; EXPERIMENTS.md).
	if stream.AllocsPerOp() > 2000 {
		t.Errorf("streaming construction allocates beyond the 10k-flow ceiling: %d allocs/op > 2000",
			stream.AllocsPerOp())
	}
}
