package sim

import (
	"os"
	"testing"
)

// TestIncrementalBeatsOracle is the `make check-perf` smoke gate: a short
// in-process benchmark of the contention workload under both scheduler
// modes, asserting the incremental component-local path is still
// meaningfully faster than (and allocates no more than) the global
// recompute oracle. It guards against regressions that would silently
// turn the incremental scheduler back into a global one — a recompute
// path that marks everything dirty, a heap that degenerates, a dropped
// pool — without depending on absolute machine speed.
//
// Gated behind MOBIUS_CHECK_PERF so the ordinary test run stays fast; the
// threshold (1.5x) is far below the steady-state speedup (see
// BENCH_sim.json) to keep the gate robust on loaded CI machines.
func TestIncrementalBeatsOracle(t *testing.T) {
	if os.Getenv("MOBIUS_CHECK_PERF") == "" {
		t.Skip("set MOBIUS_CHECK_PERF=1 (or run `make check-perf`) to run the performance smoke gate")
	}
	run := func(oracle bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := New()
				s.rateOracle = oracle
				buildChurn(s, 8, 32, 8)
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	inc := run(false)
	ora := run(true)
	t.Logf("incremental: %d ns/op, %d allocs/op", inc.NsPerOp(), inc.AllocsPerOp())
	t.Logf("oracle:      %d ns/op, %d allocs/op", ora.NsPerOp(), ora.AllocsPerOp())

	if inc.NsPerOp()*3 > ora.NsPerOp()*2 {
		t.Errorf("incremental scheduler no longer beats the global oracle by 1.5x: %d ns/op vs %d ns/op",
			inc.NsPerOp(), ora.NsPerOp())
	}
	if inc.AllocsPerOp() > ora.AllocsPerOp() {
		t.Errorf("incremental scheduler allocates more than the oracle: %d vs %d allocs/op",
			inc.AllocsPerOp(), ora.AllocsPerOp())
	}
}
