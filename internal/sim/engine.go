package sim

import "container/heap"

// Engine is an exclusive serial executor: a GPU compute engine or a DMA
// copy engine. At most one task runs on an engine at a time. Ready tasks
// queue and are dispatched highest-priority first, then in ready order.
type Engine struct {
	id      int
	name    string
	current *Task
	queue   engineQueue

	// kicked guards duplicate entries in the drain cascade's idle-engine
	// list (shard.kicked), replacing the per-drain map the serial loop
	// used to allocate. Only ever true inside shard.drain.
	kicked bool

	// throughput scales compute durations (0 means the default of 1).
	throughput float64
}

// Name returns the engine's label.
func (e *Engine) Name() string { return e.name }

// SetThroughput sets the engine's compute-throughput multiplier: compute
// durations are divided by f, so 0 < f < 1 models a straggler running at
// a fraction of nominal speed. The default is 1.
func (e *Engine) SetThroughput(f float64) { e.throughput = f }

// Throughput returns the engine's compute-throughput multiplier.
func (e *Engine) Throughput() float64 {
	if e.throughput == 0 {
		return 1
	}
	return e.throughput
}

// Busy reports whether a task currently occupies the engine.
func (e *Engine) Busy() bool { return e.current != nil }

// Current returns the task occupying the engine, or nil.
func (e *Engine) Current() *Task { return e.current }

// QueueLen returns the number of tasks waiting for the engine.
func (e *Engine) QueueLen() int { return e.queue.Len() }

func (e *Engine) push(t *Task) { heap.Push(&e.queue, t) }

func (e *Engine) pop() *Task {
	if e.queue.Len() == 0 {
		return nil
	}
	return heap.Pop(&e.queue).(*Task)
}

// engineQueue orders tasks by priority (descending), then by the time they
// became ready, then by creation order for determinism.
type engineQueue []*Task

func (q engineQueue) Len() int { return len(q) }

func (q engineQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	if a.readyAt != b.readyAt {
		return a.readyAt < b.readyAt
	}
	return a.id < b.id
}

func (q engineQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *engineQueue) Push(x any) { *q = append(*q, x.(*Task)) }

func (q *engineQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
