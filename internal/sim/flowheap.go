package sim

// flowHeap is an indexed min-heap of active flows ordered by predicted
// completion time (ties broken by task id for determinism). Every active
// flow is in the heap exactly once; flow.heapIdx tracks its position so a
// rate change re-sifts just that entry in O(log F) instead of rebuilding
// or rescanning the flow set. Flows whose prediction is +Inf (starved by
// a higher priority class) sink to the bottom and never surface as the
// next event until their rate changes.
//
// This is a hand-rolled heap rather than container/heap so fix/remove can
// use the stored index directly and pushes stay interface-free (no
// boxing allocation on the per-event path).
type flowHeap struct {
	items []*flow
}

func (h *flowHeap) Len() int { return len(h.items) }

// top returns the flow with the earliest predicted completion.
func (h *flowHeap) top() *flow { return h.items[0] }

func (h *flowHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.pred != b.pred {
		return a.pred < b.pred
	}
	return a.task.id < b.task.id
}

func (h *flowHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

func (h *flowHeap) push(f *flow) {
	f.heapIdx = len(h.items)
	h.items = append(h.items, f)
	h.up(f.heapIdx)
}

// popTop removes and returns the earliest flow.
func (h *flowHeap) popTop() *flow {
	f := h.items[0]
	h.removeAt(0)
	return f
}

// remove deletes an arbitrary flow from the heap.
func (h *flowHeap) remove(f *flow) {
	if f.heapIdx >= 0 {
		h.removeAt(f.heapIdx)
	}
}

func (h *flowHeap) removeAt(i int) {
	n := len(h.items) - 1
	h.swap(i, n)
	out := h.items[n]
	h.items[n] = nil
	h.items = h.items[:n]
	if i < n {
		h.fixAt(i)
	}
	out.heapIdx = -1
}

// fix restores the heap property after f's prediction changed in place.
func (h *flowHeap) fix(f *flow) { h.fixAt(f.heapIdx) }

func (h *flowHeap) fixAt(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h *flowHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

// down sifts i toward the leaves; reports whether it moved.
func (h *flowHeap) down(i int) bool {
	start := i
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			break
		}
		h.swap(i, child)
		i = child
	}
	return i > start
}
