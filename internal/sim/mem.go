package sim

import "fmt"

// MemPool models a finite memory capacity (bytes) with blocking
// allocation. Alloc tasks complete once capacity is available; waiters are
// served strictly FIFO, which keeps schedules deterministic and prevents
// starvation. Free tasks return capacity immediately.
type MemPool struct {
	id       int
	name     string
	capacity float64
	used     float64
	peak     float64
	waiters  []*Task

	// baseCapacity is the construction-time capacity; Sim.Reset restores
	// it (the fault layer shrinks capacity to model memory pressure).
	baseCapacity float64
}

// Name returns the pool's label.
func (p *MemPool) Name() string { return p.name }

// Capacity returns the pool's total capacity in bytes.
func (p *MemPool) Capacity() float64 { return p.capacity }

// Used returns the currently allocated bytes.
func (p *MemPool) Used() float64 { return p.used }

// Peak returns the high-water mark of allocated bytes.
func (p *MemPool) Peak() float64 { return p.peak }

// SetCapacity resizes the pool to capacity bytes. The fault layer uses it
// to model memory pressure; call before Run — shrinking a pool below its
// live allocation mid-run is not re-checked.
func (p *MemPool) SetCapacity(capacity float64) { p.capacity = capacity }

// OOMError reports an allocation that can never succeed because the
// requested amount exceeds the pool's total capacity. Under memory-pool
// pressure this converts what used to be a deadlock (or, for accounting
// bugs, a panic) into a structured out-of-memory event naming the task.
type OOMError struct {
	Pool     string  // pool name
	Task     string  // name of the requesting task
	Need     float64 // bytes requested
	Capacity float64 // pool capacity at the time of the request
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("sim: pool %q out of memory: task %q needs %.3g bytes but capacity is %.3g", e.Pool, e.Task, e.Need, e.Capacity)
}

// MemAccountError reports a Free task returning more bytes to a pool than
// are currently allocated (a double free in the generated DAG).
type MemAccountError struct {
	Pool  string  // pool name
	Task  string  // name of the over-freeing task
	Freed float64 // bytes the free attempted to return
	Below float64 // bytes the pool would have gone below zero
}

func (e *MemAccountError) Error() string {
	return fmt.Sprintf("sim: pool %q freed below zero by task %q (freed %.3g, %.3g below zero)", e.Pool, e.Task, e.Freed, e.Below)
}

// tryAlloc attempts an allocation; it fails if capacity is insufficient or
// earlier waiters are queued (FIFO fairness).
func (p *MemPool) tryAlloc(t *Task) bool {
	if len(p.waiters) > 0 {
		return false
	}
	return p.allocNow(t.amount)
}

func (p *MemPool) allocNow(amount float64) bool {
	if p.used+amount > p.capacity+memEpsilon {
		return false
	}
	p.used += amount
	if p.used > p.peak {
		p.peak = p.used
	}
	return true
}

// release returns amount to the pool and pops every FIFO waiter that now
// fits. It returns the tasks whose allocations succeeded, plus how far
// below zero the free pushed the accounting (0 for a well-formed free);
// the caller turns a positive value into a *MemAccountError naming the
// offending task.
func (p *MemPool) release(amount float64) (woken []*Task, below float64) {
	p.used -= amount
	if p.used < -memEpsilon {
		below = -p.used
		p.used = 0
		return nil, below
	}
	if p.used < 0 {
		p.used = 0
	}
	for len(p.waiters) > 0 {
		head := p.waiters[0]
		if !p.allocNow(head.amount) {
			break
		}
		p.waiters = p.waiters[1:]
		woken = append(woken, head)
	}
	return woken, 0
}

// memEpsilon absorbs floating-point dust in capacity comparisons.
const memEpsilon = 1e-6
