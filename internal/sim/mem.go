package sim

import "fmt"

// MemPool models a finite memory capacity (bytes) with blocking
// allocation. Alloc tasks complete once capacity is available; waiters are
// served strictly FIFO, which keeps schedules deterministic and prevents
// starvation. Free tasks return capacity immediately.
type MemPool struct {
	id       int
	name     string
	capacity float64
	used     float64
	peak     float64
	waiters  []*Task
}

// Name returns the pool's label.
func (p *MemPool) Name() string { return p.name }

// Capacity returns the pool's total capacity in bytes.
func (p *MemPool) Capacity() float64 { return p.capacity }

// Used returns the currently allocated bytes.
func (p *MemPool) Used() float64 { return p.used }

// Peak returns the high-water mark of allocated bytes.
func (p *MemPool) Peak() float64 { return p.peak }

// tryAlloc attempts an allocation; it fails if capacity is insufficient or
// earlier waiters are queued (FIFO fairness).
func (p *MemPool) tryAlloc(t *Task) bool {
	if len(p.waiters) > 0 {
		return false
	}
	return p.allocNow(t.amount)
}

func (p *MemPool) allocNow(amount float64) bool {
	if p.used+amount > p.capacity+memEpsilon {
		return false
	}
	p.used += amount
	if p.used > p.peak {
		p.peak = p.used
	}
	return true
}

// release returns amount to the pool and pops every FIFO waiter that now
// fits. It returns the tasks whose allocations succeeded.
func (p *MemPool) release(amount float64) []*Task {
	p.used -= amount
	if p.used < -memEpsilon {
		panic(fmt.Sprintf("sim: pool %q freed below zero (%g)", p.name, p.used))
	}
	if p.used < 0 {
		p.used = 0
	}
	var woken []*Task
	for len(p.waiters) > 0 {
		head := p.waiters[0]
		if !p.allocNow(head.amount) {
			break
		}
		p.waiters = p.waiters[1:]
		woken = append(woken, head)
	}
	return woken
}

// memEpsilon absorbs floating-point dust in capacity comparisons.
const memEpsilon = 1e-6
