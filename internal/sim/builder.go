package sim

// Builder is the streaming DAG-construction API. The variadic
// constructors on Sim materialize a []*Task per call — at 100k tasks
// those throwaway slices dominate construction allocations. A Builder
// instead stages dependencies one at a time through Dep into a single
// reusable buffer and emits each task straight into the simulator's slab
// allocators (task arena, successor-edge slab, interned paths), so large
// topologies build with a handful of allocations per thousand tasks.
//
// Usage:
//
//	b := s.NewBuilder()
//	b.Dep(up)
//	b.Dep(left)
//	t := b.Compute("fwd", eng, 0.3) // consumes the staged deps
//
// Each emitted task consumes the staged dependency set (in staging
// order, identical to the equivalent variadic call). A Builder is not
// safe for concurrent use; construction is single-threaded by design.
type Builder struct {
	s    *Sim
	deps []*Task
}

// NewBuilder returns a streaming builder emitting into s.
func (s *Sim) NewBuilder() *Builder {
	return &Builder{s: s, deps: make([]*Task, 0, 8)}
}

// Dep stages a dependency for the next emitted task. Nil is ignored, so
// optional predecessors ("previous microbatch, if any") stage cleanly.
// Returns the builder for chaining.
func (b *Builder) Dep(t *Task) *Builder {
	if t != nil {
		b.deps = append(b.deps, t)
	}
	return b
}

// emit creates the task over the staged dependencies and clears the
// staging buffer for the next one.
func (b *Builder) emit(name string, kind TaskKind) *Task {
	t := b.s.newTask(name, kind, b.deps)
	clear(b.deps)
	b.deps = b.deps[:0]
	return t
}

// Compute emits a compute task over the staged deps; see Sim.Compute.
func (b *Builder) Compute(name string, e *Engine, d Time) *Task {
	t := b.emit(name, KindCompute)
	t.engine = e
	t.duration = d
	return t
}

// Transfer emits a transfer task over the staged deps; see Sim.Transfer.
func (b *Builder) Transfer(name string, engine *Engine, path []PathElem, bytes float64, priority int) *Task {
	t := b.emit(name, KindTransfer)
	t.engine = engine
	t.path = path
	t.bytes = bytes
	t.priority = priority
	return t
}

// Alloc emits a pool-reservation task over the staged deps; see Sim.Alloc.
func (b *Builder) Alloc(name string, pool *MemPool, amount float64) *Task {
	t := b.emit(name, KindAlloc)
	t.pool = pool
	t.amount = amount
	return t
}

// Free emits a pool-release task over the staged deps; see Sim.Free.
func (b *Builder) Free(name string, pool *MemPool, amount float64) *Task {
	t := b.emit(name, KindFree)
	t.pool = pool
	t.amount = amount
	return t
}

// After emits a zero-duration join node over the staged deps.
func (b *Builder) After(name string) *Task {
	return b.emit(name, KindVirtual)
}
