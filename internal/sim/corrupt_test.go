package sim

import (
	"errors"
	"testing"
)

// TestChecksumCostAddsLatency checks the detection price: with checksums
// on and no corruption injected, every transfer pays CostPerByte of
// setup latency exactly once.
func TestChecksumCostAddsLatency(t *testing.T) {
	s := New()
	link := s.NewResource("link", 10e9)
	s.Checksums = ChecksumConfig{Enabled: true, CostPerByte: 1e-11}
	s.Transfer("t", nil, Path(link), 10e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 1+0.1, 1e-9, "1s payload plus 0.1s checksum")
	almost(t, s.Integrity().ChecksumCost, 0.1, 1e-12, "checksum cost accounted")
}

// TestDetectedCorruptionRetransmits checks the detect-and-retransmit
// path: one corrupted first attempt re-flows the payload (real link
// traffic), waits the backoff, and re-pays the checksum.
func TestDetectedCorruptionRetransmits(t *testing.T) {
	s := New()
	link := s.NewResource("link", 10e9)
	s.Checksums = ChecksumConfig{Enabled: true, CostPerByte: 1e-11, Backoff: 1e-3, MaxRetransmits: 2}
	s.CorruptionPolicy = func(task *Task, attempt int) bool { return attempt == 0 }
	tr := s.Transfer("t", nil, Path(link), 10e9, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Payload flows twice (2s), plus two checksum passes (0.2s) and the
	// 1ms backoff before the retransmit.
	almost(t, end, 2+0.2+0.001, 1e-9, "retransmitted payload")
	if tr.Retransmits() != 1 {
		t.Fatalf("retransmits: got %d, want 1", tr.Retransmits())
	}
	if tr.Tainted() {
		t.Fatal("detected corruption must not taint")
	}
	st := s.Integrity()
	if st.CorruptedAttempts != 1 || st.Retransmits != 1 || st.SilentCorruptions != 0 {
		t.Fatalf("integrity stats wrong: %+v", st)
	}
	almost(t, float64(link.Carried()), 20e9, 1, "retransmit consumed link bandwidth")
	if errs := s.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants violated: %v", errs)
	}
}

// TestExhaustedRetransmitBudgetIsStructuredError checks that a transfer
// whose every delivery attempt is corrupted halts the run with a
// *CorruptionError naming the task.
func TestExhaustedRetransmitBudgetIsStructuredError(t *testing.T) {
	s := New()
	link := s.NewResource("link", 10e9)
	s.Checksums = ChecksumConfig{Enabled: true, CostPerByte: 1e-11, Backoff: 1e-3, MaxRetransmits: 2}
	s.CorruptionPolicy = func(*Task, int) bool { return true }
	s.Transfer("grad-flush", nil, Path(link), 10e9, 0)
	_, err := s.Run()
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptionError, got %v", err)
	}
	if ce.Task != "grad-flush" || ce.Attempts != 3 {
		t.Fatalf("corruption-error fields wrong: %+v", ce)
	}
	if ce.At <= 0 {
		t.Fatalf("detection instant not set: %+v", ce)
	}
	if errs := s.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants violated on halted run: %v", errs)
	}
}

// TestSilentCorruptionTaintsDownstream checks the checksums-off exposure
// path: the run completes, but the corrupted transfer and everything
// depending on it are tainted.
func TestSilentCorruptionTaintsDownstream(t *testing.T) {
	s := New()
	link := s.NewResource("link", 10e9)
	e := s.NewEngine("gpu0")
	s.CorruptionPolicy = func(task *Task, attempt int) bool { return task.Name() == "up" }
	up := s.Transfer("up", nil, Path(link), 10e9, 0)
	fwd := s.Compute("fwd", e, 1, up)
	down := s.Transfer("down", nil, Path(link), 10e9, 0, fwd)
	clean := s.Compute("unrelated", e, 1)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, end, 3, 1e-9, "silent corruption costs no extra time")
	for _, tk := range []*Task{up, fwd, down} {
		if !tk.Tainted() {
			t.Fatalf("%v should be tainted", tk)
		}
	}
	if clean.Tainted() {
		t.Fatal("independent task must stay clean")
	}
	st := s.Integrity()
	if st.SilentCorruptions != 1 || st.TaintedTasks != 3 || st.Retransmits != 0 {
		t.Fatalf("integrity stats wrong: %+v", st)
	}
	if errs := s.CheckInvariants(); len(errs) > 0 {
		t.Fatalf("invariants violated: %v", errs)
	}
}

// TestCorruptionPolicySkipsZeroByteTransfers mirrors the retry-policy
// guarantee: control-flow edges are never corrupted.
func TestCorruptionPolicySkipsZeroByteTransfers(t *testing.T) {
	s := New()
	link := s.NewResource("link", 10e9)
	called := false
	s.CorruptionPolicy = func(*Task, int) bool { called = true; return true }
	s.Transfer("ctl", nil, Path(link), 0, 0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("corruption policy consulted for a zero-byte transfer")
	}
}

// TestCorruptionDeterministicReplay re-runs an identical corrupted DAG
// and requires bit-identical times and integrity stats.
func TestCorruptionDeterministicReplay(t *testing.T) {
	build := func() *Sim {
		s := New()
		link := s.NewResource("link", 8e9)
		s.Checksums = ChecksumConfig{Enabled: true, CostPerByte: 2e-11, Backoff: 1e-3, MaxRetransmits: 3}
		s.CorruptionPolicy = func(task *Task, attempt int) bool {
			return (task.ID()+attempt)%3 == 0
		}
		prev := (*Task)(nil)
		for i := 0; i < 5; i++ {
			prev = s.Transfer("t", nil, Path(link), 4e9, 0, prev)
		}
		return s
	}
	s1, s2 := build(), build()
	end1, err1 := s1.Run()
	end2, err2 := s2.Run()
	if (err1 == nil) != (err2 == nil) {
		t.Fatal(err1, err2)
	}
	if end1 != end2 || s1.Integrity() != s2.Integrity() {
		t.Fatalf("corrupted replay diverged: %v vs %v (%+v vs %+v)", end1, end2, s1.Integrity(), s2.Integrity())
	}
}
