package sim

import (
	"container/heap"
	"math"
)

// This file is the sharded event loop of the simulator. A shard owns a
// subset of the task DAG closed under dependency edges and under shared
// engines, pools, and path resources (see parallel.go), plus every piece
// of event-loop state the scheduler needs: clock, ready worklist, active
// flows, completion heaps, and the union-find component structure over
// the shard's resources. The serial scheduler is the degenerate case of
// one shard owning every task.
//
// Because two shards share no tasks, resources, engines, or pools, their
// event loops are fully independent: an event in one shard can never
// change the timing, rates, or ordering of events in another. Running
// the shards concurrently and merging the results — max of clocks, sum
// of pending counts, leftover capacity events swept in, buffered
// observer notifications dispatched in one canonical order — therefore
// reproduces the serial schedule bit for bit. The differential tests
// (differential_test.go) assert exactly that at K ∈ {1,2,4,8}.

// obsEvent is one buffered observer notification. Notifications are
// dispatched after the run, sorted by (time, task id, start-before-
// finish): a canonical order shared by the serial, sharded, and oracle
// schedulers, so observed timelines are mode-independent by
// construction rather than by matching cascade orders.
type obsEvent struct {
	task   *Task
	at     Time
	finish bool
}

// shard runs the event loop over one partition of the DAG.
type shard struct {
	sim   *Sim
	tasks []*Task // the shard's slice of the DAG, in creation order

	now     Time
	pending int
	err     error // first structured failure in this shard
	used    bool  // a Run consumed this shard's state (prepare before reuse)

	// ready is the instantaneous-cascade worklist, consumed FIFO through
	// readyHead so the backing array is reused instead of abandoned one
	// pop at a time; drain resets both once the queue empties.
	ready     []*Task
	readyHead int

	flows []*flow

	ratesDirty bool
	computes   computeHeap
	flowQueue  flowHeap

	// Component state (component.go). The generation and epoch counters
	// are drawn from global sequences on Sim so a resource can never
	// carry a stale-but-equal mark from another shard or a previous run.
	dirtyComps []*component
	compPool   []*component
	ufGen      uint64
	compVisit  uint64

	// Scratch reused across events (allocation-free steady state).
	prioScratch    []int
	classBuckets   [][]*flow
	fixedScratch   []bool
	resScratch     []*Resource
	compScratch    []*component
	rebuildScratch []*flow
	doneScratch    []*flow
	doneTasks      []*Task
	kicked         []*Engine
	flowPool       []*flow
	flowSlab       []flow

	// Scheduled events. The serial shard aliases Sim.capEvents and
	// Sim.failEvents; parallel shards hold the subsequences routed to
	// them (failure events force serial execution and never reach a
	// parallel shard).
	capEvents  []capEvent
	nextCap    int
	failEvents []failEvent
	nextFail   int

	events []obsEvent // buffered observer notifications

	// High-water marks since the last public Reset. Reset uses them to
	// shrink pooled buffers a larger earlier run left pinned (reset.go);
	// they cost one comparison at each growth site.
	eventsHWM int
	flowsHWM  int
	readyHWM  int
}

// prepare resets the shard's execution state for a fresh run over its
// current task list, recycling flow and component structs and drawing
// fresh generation/epoch ranges. Task, resource, engine, and pool state
// is NOT touched here — that is rewind's job (reset.go); prepare only
// clears what the shard itself owns.
func (sh *shard) prepare() {
	for _, c := range sh.dirtyComps {
		c.dirty = false
		sh.recycleComponent(c)
	}
	sh.dirtyComps = sh.dirtyComps[:0]
	for _, f := range sh.flows {
		f.task = nil
		sh.flowPool = append(sh.flowPool, f)
	}
	sh.flows = sh.flows[:0]
	for i := range sh.computes {
		sh.computes[i] = nil
	}
	sh.computes = sh.computes[:0]
	for i := range sh.flowQueue.items {
		sh.flowQueue.items[i] = nil
	}
	sh.flowQueue.items = sh.flowQueue.items[:0]
	sh.ready = sh.ready[:0]
	sh.readyHead = 0
	sh.events = sh.events[:0]
	sh.ratesDirty = false
	sh.err = nil
	sh.now = 0
	sh.nextCap, sh.nextFail = 0, 0

	// Fresh, globally unique generation and epoch ranges: stale resource
	// marks from any shard or any previous run can never collide.
	s := sh.sim
	s.ufGenSeq++
	sh.ufGen = s.ufGenSeq
	s.visitSeq += 1 << 32
	sh.compVisit = s.visitSeq

	pending := 0
	for _, t := range sh.tasks {
		if t.state != stateFinished {
			pending++
		}
	}
	sh.pending = pending
}

// run executes the shard's event loop to completion, structured failure,
// or local deadlock (pending tasks left with no event to fire; the
// merge in Run derives the deadlock error from the combined state).
func (sh *shard) run() {
	sh.applyCapEvents()
	sh.applyFailEvents()

	// Seed the worklist with dependency-free tasks.
	for _, t := range sh.tasks {
		if t.state == statePending && t.waiting == 0 {
			sh.ready = append(sh.ready, t)
		}
	}
	if len(sh.ready) > sh.readyHWM {
		sh.readyHWM = len(sh.ready)
	}
	sh.drain()

	for sh.pending > 0 && sh.err == nil {
		sh.recomputeRates()

		// Picking the next event is O(log F): the flow with the earliest
		// predicted completion sits at the top of the completion heap,
		// maintained incrementally as rates change.
		next := math.Inf(1)
		if len(sh.computes) > 0 {
			next = sh.computes[0].endAt
		}
		if sh.flowQueue.Len() > 0 {
			if p := sh.flowQueue.top().pred; p < next {
				next = p
			}
		}
		if sh.nextCap < len(sh.capEvents) && sh.capEvents[sh.nextCap].at < next {
			next = sh.capEvents[sh.nextCap].at
		}
		if sh.nextFail < len(sh.failEvents) && sh.failEvents[sh.nextFail].at < next {
			next = sh.failEvents[sh.nextFail].at
		}
		if math.IsInf(next, 1) {
			// Local deadlock: no event can fire in this shard.
			break
		}
		if next < sh.now {
			next = sh.now
		}
		sh.advance(next)
		sh.drain()
	}
	// Settle lazy progress so utilization accounting and invariant checks
	// see exact per-resource traffic, including for runs halted by a
	// structured failure with flows still in flight.
	sh.settleAllFlows()
}

// advance moves the clock to t and completes every compute and flow that
// finishes at (or within epsilon of) t. Flow progress is lazy: nothing is
// swept per event — a flow's remaining payload is settled only here (on
// completion) or when its rate changes (applyRates).
func (sh *shard) advance(t Time) {
	sh.now = t

	// Complete finished computes; transfer tasks surfacing here have
	// finished their setup latency and now begin flowing.
	for len(sh.computes) > 0 && sh.computes[0].endAt <= sh.now+timeEpsilon {
		task := heap.Pop(&sh.computes).(*Task)
		if task.kind == KindTransfer {
			sh.beginFlow(task)
			continue
		}
		sh.finishEngineTask(task)
	}

	// Complete finished flows: pop the completion heap while the settled
	// remaining payload is within slack of zero. Collect first, then
	// finish, so heap and flow-list mutation stay simple.
	done := sh.doneScratch[:0]
	for sh.flowQueue.Len() > 0 {
		f := sh.flowQueue.top()
		slack := f.rate * timeEpsilon * 1e6 // absolute byte tolerance
		if slack < 1e-9 {
			slack = 1e-9
		}
		if f.remaining-f.rate*(sh.now-f.lastUpdate) > slack {
			break
		}
		sh.flowQueue.popTop()
		sh.settleFlow(f)
		sh.removeFromFlowList(f)
		sh.componentFinish(f)
		done = append(done, f)
	}
	if len(done) > 0 {
		// Finish the batch in task-id order — the order the eager sweep
		// used to produce — so same-instant completions feed pool FIFO
		// queues and the ready worklist identically.
		sortFlowsByID(done)
		tasks := sh.doneTasks[:0]
		for _, f := range done {
			tasks = append(tasks, f.task)
		}
		// Recycle the flow structs before dispatching completions: the
		// batch no longer references them, and a completion may admit new
		// flows that reuse the structs immediately.
		for _, f := range done {
			f.task = nil
			sh.flowPool = append(sh.flowPool, f)
		}
		for _, task := range tasks {
			sh.finishEngineTask(task)
		}
		sh.doneTasks = tasks[:0]
	}
	sh.doneScratch = done[:0]

	sh.applyCapEvents()
	sh.applyFailEvents()
}

// finishEngineTask completes a compute or transfer task, releases its
// engine and dispatches the next queued task on that engine.
func (sh *shard) finishEngineTask(t *Task) {
	sh.complete(t)
	if t.engine != nil && t.engine.current == t {
		t.engine.current = nil
		if nxt := t.engine.pop(); nxt != nil {
			sh.startOnEngine(nxt)
		}
	}
}

// drain processes the instantaneous cascade: completed tasks release
// successors, virtual/alloc/free tasks execute with zero duration, and
// compute/transfer tasks are dispatched to their engines.
func (sh *shard) drain() {
	for {
		for sh.readyHead < len(sh.ready) {
			if sh.err != nil {
				sh.clearKicked()
				return
			}
			t := sh.ready[sh.readyHead]
			sh.readyHead++
			sh.drainOne(t)
		}
		sh.ready = sh.ready[:0]
		sh.readyHead = 0
		if len(sh.kicked) == 0 {
			return
		}
		// Dispatch idle engines only after the instantaneous cascade has
		// settled so that same-instant arrivals compete by priority.
		sortEngines(sh.kicked)
		for _, e := range sh.kicked {
			e.kicked = false
		}
		// No new kicks can happen during dispatch (startOnEngine never
		// feeds the ready worklist), so iterating while resetting after
		// the loop is safe.
		for _, e := range sh.kicked {
			for e.current == nil {
				nxt := e.pop()
				if nxt == nil {
					break
				}
				sh.startOnEngine(nxt)
			}
		}
		sh.kicked = sh.kicked[:0]
	}
}

// clearKicked drops the pending idle-engine list (error bail-out path)
// so the flags never leak into a later drain.
func (sh *shard) clearKicked() {
	for _, e := range sh.kicked {
		e.kicked = false
	}
	sh.kicked = sh.kicked[:0]
}

func (sh *shard) drainOne(t *Task) {
	if t.state != statePending {
		return
	}
	t.state = stateReady
	t.readyAt = sh.now

	switch t.kind {
	case KindVirtual:
		t.startAt = sh.now
		sh.notifyStart(t)
		sh.complete(t)
	case KindAlloc:
		if t.amount > t.pool.capacity+memEpsilon {
			// The request can never be satisfied (e.g. memory pressure
			// shrank the pool): a structured OOM beats an eventual
			// deadlock report.
			sh.fail(&OOMError{Pool: t.pool.name, Task: t.name, Need: t.amount, Capacity: t.pool.capacity})
			return
		}
		if t.pool.tryAlloc(t) {
			t.startAt = sh.now
			sh.notifyStart(t)
			sh.complete(t)
		} else {
			t.state = stateRunning
			t.pool.waiters = append(t.pool.waiters, t)
		}
	case KindFree:
		t.startAt = sh.now
		sh.notifyStart(t)
		woken, below := t.pool.release(t.amount)
		if below > 0 {
			sh.fail(&MemAccountError{Pool: t.pool.name, Task: t.name, Freed: t.amount, Below: below})
			return
		}
		sh.complete(t)
		for _, w := range woken {
			w.startAt = sh.now
			sh.notifyStart(w)
			sh.complete(w)
		}
	case KindCompute, KindTransfer:
		if t.engine == nil {
			sh.startOnEngine(t)
			return
		}
		t.engine.push(t)
		if t.engine.current == nil && !t.engine.kicked {
			t.engine.kicked = true
			sh.kicked = append(sh.kicked, t.engine)
		}
	}
}

// startOnEngine begins running a compute or transfer task now.
func (sh *shard) startOnEngine(t *Task) {
	s := sh.sim
	t.state = stateRunning
	t.startAt = sh.now
	if t.engine != nil {
		t.engine.current = t
	}
	sh.notifyStart(t)

	switch t.kind {
	case KindCompute:
		d := t.duration
		if t.engine != nil {
			if f := t.engine.Throughput(); f != 1 {
				d /= f
			}
		}
		t.endAt = sh.now + d
		heap.Push(&sh.computes, t)
	case KindTransfer:
		lat := t.latency
		if lat <= 0 {
			lat = s.TransferLatency
		}
		if s.RetryPolicy != nil && t.bytes > 0 {
			if n, backoff := s.RetryPolicy(t); n > 0 && backoff > 0 {
				// Failed attempts wait backoff, 2*backoff, ... before the
				// payload is finally admitted.
				extra, step := Time(0), backoff
				for i := 0; i < n; i++ {
					extra += step
					step *= 2
				}
				t.retries = n
				t.retryLatency = extra
				lat += extra
			}
		}
		if t.bytes > 0 {
			if s.Checksums.Enabled {
				// Detection price of the first delivery attempt;
				// retransmitted attempts are charged inside
				// injectCorruption. Recorded on the task; the run-level
				// totals are derived by finalizeIntegrity.
				t.checksumCharged = true
				lat += Time(t.bytes * s.Checksums.costPerByte())
			}
			if s.CorruptionPolicy != nil {
				lat += sh.injectCorruption(t)
			}
		}
		if lat > 0 && t.bytes > 0 {
			// Setup phase: occupy the engine for the latency, then flow.
			t.endAt = sh.now + lat
			heap.Push(&sh.computes, t)
			return
		}
		sh.beginFlow(t)
	}
}

// beginFlow admits a transfer task's payload into the fair-sharing flow
// set (after any setup latency has elapsed): the flow joins the
// active list, the completion heap, and — unless its path is empty — the
// connected component its resources belong to, which is marked dirty for
// the next rate recompute.
func (sh *shard) beginFlow(t *Task) {
	t.flowStarted = true
	f := sh.takeFlow()
	f.task = t
	// Retransmitted attempts re-flow the payload, so detected corruption
	// consumes real path bandwidth, not just setup latency.
	f.remaining = t.bytes * float64(1+t.retransmits)
	f.rate = 0
	f.lastUpdate = sh.now
	if t.bytes <= 0 || len(t.path) == 0 {
		f.rate = infiniteRate
		if t.bytes <= 0 {
			// Zero-byte transfer: complete in the same instant via the
			// flow set so engine release ordering stays uniform.
			f.remaining = 0
		}
	}
	f.nextRate = f.rate
	f.pred = f.predict()
	// sh.flows is unordered (O(1) admit and swap-remove); the canonical
	// iteration order for rate computation lives in the component lists.
	f.listIdx = len(sh.flows)
	sh.flows = append(sh.flows, f)
	if len(sh.flows) > sh.flowsHWM {
		sh.flowsHWM = len(sh.flows)
	}
	sh.flowQueue.push(f)
	sh.componentAdmit(f)
}

// removeFromFlowList unlinks f from the active-flow list in O(1) by
// swapping the last entry into its slot.
func (sh *shard) removeFromFlowList(f *flow) {
	last := len(sh.flows) - 1
	moved := sh.flows[last]
	sh.flows[f.listIdx] = moved
	moved.listIdx = f.listIdx
	sh.flows[last] = nil
	sh.flows = sh.flows[:last]
}

// takeFlow recycles a flow struct from the pool, or carves one from the
// shard's slab, cutting steady-state GC pressure on DAGs with many
// transfers (and construction-time allocation churn on reruns).
func (sh *shard) takeFlow() *flow {
	if n := len(sh.flowPool); n > 0 {
		f := sh.flowPool[n-1]
		sh.flowPool[n-1] = nil
		sh.flowPool = sh.flowPool[:n-1]
		return f
	}
	if len(sh.flowSlab) == 0 {
		sh.flowSlab = make([]flow, 64)
	}
	f := &sh.flowSlab[0]
	sh.flowSlab = sh.flowSlab[1:]
	f.heapIdx = -1
	return f
}

func (sh *shard) complete(t *Task) {
	if t.state == stateFinished {
		return
	}
	t.state = stateFinished
	t.endAt = sh.now
	sh.pending--
	sh.notifyFinish(t)
	for _, succ := range t.succs {
		if t.tainted {
			// Silent corruption poisons everything downstream.
			succ.tainted = true
		}
		succ.waiting--
		if succ.waiting == 0 && succ.state == statePending {
			sh.ready = append(sh.ready, succ)
			if len(sh.ready) > sh.readyHWM {
				sh.readyHWM = len(sh.ready)
			}
		}
	}
	if t.corruptExhausted {
		sh.fail(&CorruptionError{Task: t.name, At: sh.now, Attempts: 1 + t.retransmits})
	}
}

func (sh *shard) notifyStart(t *Task) {
	if len(sh.sim.observers) != 0 {
		sh.events = append(sh.events, obsEvent{task: t, at: sh.now})
	}
}

func (sh *shard) notifyFinish(t *Task) {
	if len(sh.sim.observers) != 0 {
		sh.events = append(sh.events, obsEvent{task: t, at: sh.now, finish: true})
	}
}

// fail records the shard's first structured failure; the loop stops at
// the next event boundary. Under parallel execution any shard failure
// forces a pristine serial rerun (see runParallel), whose own first
// failure — the earliest one in global event order — is what Run
// reports.
func (sh *shard) fail(err error) {
	if sh.err == nil {
		sh.err = err
	}
}
