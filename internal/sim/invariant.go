package sim

import (
	"fmt"
	"math"
)

// CheckInvariants audits a simulator after Run and returns every global
// invariant violation found. It is the backbone of the chaos harness
// (internal/chaos): no matter what faults, corruption, retries, or
// capacity events a spec injects, these properties must hold.
//
// Checked invariants:
//
//   - Event-time sanity: every started task has 0 ≤ ready ≤ start, every
//     finished task has start ≤ end ≤ now, and no time is NaN/Inf.
//   - Traffic conservation per resource: the bytes a resource carried
//     equal the weighted payload (including retransmitted attempts) of
//     the transfers that flowed across it. Exact (within float
//     tolerance) when the run completed; an upper bound when the run
//     halted mid-flight on a structured failure.
//
// A nil return means the run is internally consistent.
func (s *Sim) CheckInvariants() []error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("sim: invariant: "+format, args...))
	}

	if !finite(s.now) || s.now < 0 {
		bad("clock is %v", s.now)
	}

	for _, t := range s.tasks {
		switch t.state {
		case statePending:
			continue
		case stateReady, stateRunning:
			if !finite(t.readyAt) || t.readyAt < 0 {
				bad("%v readyAt=%v", t, t.readyAt)
			}
		case stateFinished:
			if !finite(t.readyAt) || !finite(t.startAt) || !finite(t.endAt) {
				bad("%v has non-finite times ready=%v start=%v end=%v", t, t.readyAt, t.startAt, t.endAt)
				continue
			}
			if t.readyAt < 0 {
				bad("%v readyAt=%v < 0", t, t.readyAt)
			}
			if t.startAt < t.readyAt-timeEpsilon {
				bad("%v started at %v before ready at %v", t, t.startAt, t.readyAt)
			}
			if t.endAt < t.startAt-timeEpsilon {
				bad("%v ended at %v before start at %v", t, t.endAt, t.startAt)
			}
			if t.endAt > s.now+timeEpsilon {
				bad("%v ended at %v after clock %v", t, t.endAt, s.now)
			}
		}
	}

	// Traffic conservation. Expected carried bytes per resource: each
	// transfer whose payload was admitted contributes weight·bytes per
	// delivery attempt that flowed (1 + retransmits). Completed runs must
	// match exactly; halted runs may have flowed only part of it.
	expected := make([]float64, len(s.resources))
	halted := s.err != nil || s.pending > 0
	for _, t := range s.tasks {
		if t.kind != KindTransfer || !t.flowStarted || t.bytes <= 0 {
			continue
		}
		if t.state != stateFinished && !halted {
			bad("%v flow started but never finished in a completed run", t)
		}
		for _, pe := range t.path {
			expected[pe.Res.id] += pe.Weight * t.bytes * float64(1+t.retransmits)
		}
	}
	for _, r := range s.resources {
		if !finite(r.carried) || r.carried < -1e-6 {
			bad("resource %q carried %v bytes", r.name, r.carried)
			continue
		}
		want := expected[r.id]
		tol := 1e-6*want + 1024
		switch {
		case halted:
			if r.carried > want+tol {
				bad("resource %q carried %.6g bytes, more than the %.6g admitted (halted run)", r.name, r.carried, want)
			}
		case math.Abs(r.carried-want) > tol:
			bad("resource %q carried %.6g bytes, want %.6g (Δ=%.6g)", r.name, r.carried, want, r.carried-want)
		}
	}

	return errs
}

func finite(t Time) bool { return !math.IsNaN(t) && !math.IsInf(t, 0) }
