package sim

import "fmt"

// Time is simulated time, in seconds.
type Time = float64

// TaskKind identifies what a task does when it runs.
type TaskKind int

// Task kinds.
const (
	KindVirtual  TaskKind = iota // zero-duration join node
	KindCompute                  // occupies an Engine for a fixed duration
	KindTransfer                 // moves bytes across a Resource path
	KindAlloc                    // blocks until pool capacity is available
	KindFree                     // returns capacity to a pool
)

func (k TaskKind) String() string {
	switch k {
	case KindVirtual:
		return "virtual"
	case KindCompute:
		return "compute"
	case KindTransfer:
		return "transfer"
	case KindAlloc:
		return "alloc"
	case KindFree:
		return "free"
	}
	return fmt.Sprintf("TaskKind(%d)", int(k))
}

type taskState int

const (
	statePending  taskState = iota // waiting on dependencies
	stateReady                     // dependencies met, waiting for engine/pool
	stateRunning                   // occupying an engine / flowing / waiting in pool
	stateFinished                  // done
)

// Task is a node in the simulated work DAG. Tasks are created through the
// Sim builder methods (Compute, Transfer, Alloc, Free, After) and must not
// be constructed directly.
type Task struct {
	id   int
	name string
	kind TaskKind

	// Compute fields.
	engine   *Engine
	duration Time

	// Transfer fields.
	path        []PathElem
	bytes       float64
	latency     Time // fixed setup time before bytes start flowing
	flowStarted bool

	// Alloc/Free fields.
	pool   *MemPool
	amount float64

	// Priority orders engine queues and flow bandwidth classes.
	// Larger values run first.
	priority int

	// Dependency bookkeeping. initWaiting is the dependency count at
	// creation; rewind/Reset restore waiting from it when re-running a
	// reused DAG (deps that were already finished at creation never
	// counted, so the value stays consistent across reruns).
	waiting     int
	initWaiting int
	succs       []*Task

	// shardIdx is the partition this task belongs to, assigned by
	// Sim.partition (see parallel.go). Valid only while Sim.shardsValid.
	shardIdx int32

	state   taskState
	readyAt Time
	startAt Time
	endAt   Time

	// Fault-injection bookkeeping (see Sim.RetryPolicy).
	retries      int
	retryLatency Time

	// Corruption bookkeeping (see corrupt.go). The counters are per-task
	// so shards never touch shared accumulators mid-run; finalizeIntegrity
	// derives the run-level IntegrityStats from them in task-id order,
	// making the aggregate independent of event interleaving.
	retransmits      int  // detected-corruption retransmits performed
	tainted          bool // carries (or consumed) a silently corrupted payload
	corruptExhausted bool // every delivery attempt in the budget corrupted
	corruptAttempts  int  // delivery attempts that arrived corrupted
	silentCorrupt    bool // accepted a corrupted payload (checksums off)
	checksumCharged  bool // paid the per-attempt checksum latency

	// Tag carries caller metadata through to observers.
	Tag any
}

// ID returns the task's creation-order identifier.
func (t *Task) ID() int { return t.id }

// Name returns the task's human-readable label.
func (t *Task) Name() string { return t.name }

// Kind returns what the task does.
func (t *Task) Kind() TaskKind { return t.kind }

// Bytes returns the payload size of a transfer task (0 otherwise).
func (t *Task) Bytes() float64 { return t.bytes }

// Duration returns the fixed duration of a compute task (0 otherwise).
func (t *Task) Duration() Time { return t.duration }

// Priority returns the task's scheduling priority.
func (t *Task) Priority() int { return t.priority }

// Engine returns the engine the task occupies, or nil.
func (t *Task) Engine() *Engine { return t.engine }

// Path returns the resource path of a transfer task.
func (t *Task) Path() []PathElem { return t.path }

// Start returns the time the task started running. Valid after Run.
func (t *Task) Start() Time { return t.startAt }

// End returns the time the task finished. Valid after Run.
func (t *Task) End() Time { return t.endAt }

// Finished reports whether the task completed.
func (t *Task) Finished() bool { return t.state == stateFinished }

// Retries returns the number of injected transient failures this transfer
// survived before its payload was admitted.
func (t *Task) Retries() int { return t.retries }

// RetryLatency returns the total exponential-backoff wait injected before
// the transfer's payload was admitted.
func (t *Task) RetryLatency() Time { return t.retryLatency }

// Retransmits returns the number of detected-corruption retransmissions
// this transfer performed (checksums on).
func (t *Task) Retransmits() int { return t.retransmits }

// Tainted reports whether the task carried — or transitively consumed —
// a silently corrupted payload (checksums off).
func (t *Task) Tainted() bool { return t.tainted }

func (t *Task) String() string {
	return fmt.Sprintf("task %d %q (%s)", t.id, t.name, t.kind)
}
