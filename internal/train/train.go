// Package train runs real training steps on the internal/nn substrate
// under three execution orders — GPipe's, the Mobius pipeline's, and a
// PipeDream-style asynchronous pipeline — to demonstrate the convergence
// claim of §3.1 (Figure 13): Mobius uses the same synchronous gradient
// update as GPipe, so swapping stages through heterogeneous memory does
// not change what the model learns, whereas asynchronous updates do.
//
// The Mobius executor takes the claim seriously: stage parameters live in
// a simulated DRAM store; before a stage executes, its weights are
// uploaded into the unit's buffers; after it finishes, the buffers are
// destroyed (zeroed). Backward re-uploads the stage and recomputes
// activations from the offloaded boundary checkpoints. If any part of the
// swap protocol were wrong, training would diverge visibly.
package train

import (
	"fmt"

	"mobius/internal/nn"
	"mobius/internal/tensor"
)

// Mode selects the execution order.
type Mode int

// Execution orders.
const (
	ModeGPipe Mode = iota
	ModeMobius
)

func (m Mode) String() string {
	switch m {
	case ModeMobius:
		return "mobius"
	case ModeAsync:
		return "async"
	}
	return "gpipe"
}

// Trainer trains a model in pipeline stages.
type Trainer struct {
	Model  *nn.Model
	Mode   Mode
	Opt    *nn.Adam
	stages [][]nn.Unit

	// Simulated DRAM: master weights and accumulated gradients.
	dramW map[*nn.Param][]float64
	dramG map[*nn.Param][]float64

	// asyncRing holds recent weight snapshots for ModeAsync.
	asyncRing [][][]float64
}

// New splits the model's units into `stages` contiguous stages and
// prepares the optimizer.
func New(m *nn.Model, stages int, lr float64, mode Mode) (*Trainer, error) {
	units := m.Units
	if stages < 1 || stages > len(units) {
		return nil, fmt.Errorf("train: cannot split %d units into %d stages", len(units), stages)
	}
	t := &Trainer{
		Model: m,
		Mode:  mode,
		Opt:   nn.NewAdam(lr),
		dramW: map[*nn.Param][]float64{},
		dramG: map[*nn.Param][]float64{},
	}
	base, extra := len(units)/stages, len(units)%stages
	at := 0
	for s := 0; s < stages; s++ {
		n := base
		if s < extra {
			n++
		}
		t.stages = append(t.stages, units[at:at+n])
		at += n
	}
	// Initialize the DRAM master copies.
	for _, p := range m.Params() {
		t.dramW[p] = append([]float64(nil), p.W.D...)
		t.dramG[p] = make([]float64, len(p.W.D))
	}
	return t, nil
}

// NumStages returns the pipeline depth.
func (t *Trainer) NumStages() int { return len(t.stages) }

// Step runs one training step over the microbatches (synchronous
// gradient accumulation + one optimizer update) and returns the mean
// loss.
func (t *Trainer) Step(microbatches []nn.Batch) float64 {
	if len(microbatches) == 0 {
		// An empty step is a no-op, not a 0/0 NaN that would poison the
		// loss curve downstream.
		return 0
	}
	switch t.Mode {
	case ModeMobius:
		return t.mobiusStep(microbatches)
	case ModeAsync:
		return t.asyncStep(microbatches)
	}
	return t.gpipeStep(microbatches)
}

// stageParams lists the parameters of one stage.
func stageParams(units []nn.Unit) []*nn.Param {
	var out []*nn.Param
	for _, u := range units {
		out = append(out, u.Params()...)
	}
	return out
}

// gpipeStep keeps everything resident: forward all microbatches through
// all stages (caching), backward, then update.
func (t *Trainer) gpipeStep(mbs []nn.Batch) float64 {
	for _, p := range t.Model.Params() {
		p.ZeroGrad()
	}
	M := len(mbs)
	S := len(t.stages)
	caches := make([][][]any, S) // [stage][mb][unit]
	bounds := make([][]*tensor.Mat, S+1)
	for j := range caches {
		caches[j] = make([][]any, M)
	}
	for j := range bounds {
		bounds[j] = make([]*tensor.Mat, M)
	}

	var totalLoss float64
	// Forward, stage-major like the pipeline wavefront; per-stage
	// microbatch order ascending.
	for j := 0; j < S; j++ {
		for m := 0; m < M; m++ {
			x := bounds[j][m]
			for _, u := range t.stages[j] {
				var c any
				x, c = u.Forward(x, mbs[m])
				caches[j][m] = append(caches[j][m], c)
			}
			bounds[j+1][m] = x
		}
	}
	// Loss at the head.
	dlogits := make([]*tensor.Mat, M)
	for m := 0; m < M; m++ {
		loss, dl := nn.CrossEntropy(bounds[S][m], mbs[m], t.Model.Cfg.Seq)
		totalLoss += loss
		dl.Scale(1 / float64(M)) // mean over microbatches
		dlogits[m] = dl
	}
	// Backward, stage-major descending.
	douts := dlogits
	for j := S - 1; j >= 0; j-- {
		dins := make([]*tensor.Mat, M)
		for m := 0; m < M; m++ {
			dx := douts[m]
			for k := len(t.stages[j]) - 1; k >= 0; k-- {
				dx = t.stages[j][k].Backward(dx, caches[j][m][k])
			}
			dins[m] = dx
		}
		douts = dins
	}
	t.Opt.Step(t.Model.Params())
	return totalLoss / float64(M)
}

// mobiusStep swaps stages through the simulated DRAM: upload, compute all
// microbatches, offload boundaries, evict; backward re-uploads and
// recomputes from checkpoints, then flushes gradients to DRAM before the
// (CPU-side) optimizer update.
func (t *Trainer) mobiusStep(mbs []nn.Batch) float64 {
	M := len(mbs)
	S := len(t.stages)
	bounds := make([][]*tensor.Mat, S+1) // offloaded checkpoints in "DRAM"
	for j := range bounds {
		bounds[j] = make([]*tensor.Mat, M)
	}

	upload := func(j int) {
		for _, p := range stageParams(t.stages[j]) {
			copy(p.W.D, t.dramW[p])
			p.ZeroGrad()
		}
	}
	evict := func(j int) {
		for _, p := range stageParams(t.stages[j]) {
			p.W.Zero() // destroy the GPU copy: reuse would be a bug
		}
	}
	flush := func(j int) {
		for _, p := range stageParams(t.stages[j]) {
			dst := t.dramG[p]
			for i, g := range p.G.D {
				dst[i] += g
			}
		}
	}

	var totalLoss float64
	// Forward: stage-major; discard per-layer caches (checkpointing),
	// offload only the boundary activations.
	for j := 0; j < S; j++ {
		upload(j)
		for m := 0; m < M; m++ {
			x := bounds[j][m]
			for _, u := range t.stages[j] {
				x, _ = u.Forward(x, mbs[m])
			}
			if j == S-1 {
				loss, _ := nn.CrossEntropy(x, mbs[m], t.Model.Cfg.Seq)
				totalLoss += loss
			} else {
				bounds[j+1][m] = x.Clone() // offload checkpoint to DRAM
			}
		}
		evict(j)
	}

	// Backward: stage-major descending with recomputation.
	douts := make([]*tensor.Mat, M)
	for j := S - 1; j >= 0; j-- {
		upload(j)
		dins := make([]*tensor.Mat, M)
		for m := 0; m < M; m++ {
			// Recompute the stage's forward from the checkpoint.
			x := bounds[j][m]
			caches := make([]any, len(t.stages[j]))
			for k, u := range t.stages[j] {
				x, caches[k] = u.Forward(x, mbs[m])
			}
			var dx *tensor.Mat
			if j == S-1 {
				_, dl := nn.CrossEntropy(x, mbs[m], t.Model.Cfg.Seq)
				dl.Scale(1 / float64(M))
				dx = dl
			} else {
				dx = douts[m]
			}
			for k := len(t.stages[j]) - 1; k >= 0; k-- {
				dx = t.stages[j][k].Backward(dx, caches[k])
			}
			dins[m] = dx
		}
		flush(j)
		evict(j)
		douts = dins
	}

	// CPU optimizer: restore master weights and accumulated gradients,
	// update, write back to DRAM.
	for _, p := range t.Model.Params() {
		copy(p.W.D, t.dramW[p])
		copy(p.G.D, t.dramG[p])
	}
	t.Opt.Step(t.Model.Params())
	for _, p := range t.Model.Params() {
		copy(t.dramW[p], p.W.D)
		for i := range t.dramG[p] {
			t.dramG[p][i] = 0
		}
	}
	return totalLoss / float64(M)
}
