package train

import (
	"fmt"
	"math"

	"mobius/internal/nn"
)

// The numeric guard is the training-side half of the integrity layer:
// silent data corruption that slips past (or runs without) transfer
// checksums eventually surfaces as NaN/Inf weights, an exploding
// gradient norm, or a loss spike. The guard checks each step against an
// exponential moving average of the recent history; a detection aborts
// the step so the caller can roll back to the last good checkpoint (the
// elastic package prices exactly that rollback, see elastic.PolicyRollback).

// AnomalyError is the structured detection a Guard returns. It names the
// step, what tripped, and the observed-vs-threshold values, and unwraps
// to the underlying *nn.NonFiniteError when the trigger was a NaN/Inf
// scan.
type AnomalyError struct {
	// Step is the training step whose result was rejected.
	Step int
	// Kind is "loss-spike", "grad-spike", or "non-finite".
	Kind string
	// Value is the observed loss or gradient norm.
	Value float64
	// Threshold is the EMA-derived limit Value exceeded (0 for
	// non-finite detections — there is no threshold to exceed).
	Threshold float64
	// Cause is the underlying scan error for Kind "non-finite".
	Cause error
}

func (e *AnomalyError) Error() string {
	if e.Kind == "non-finite" {
		return fmt.Sprintf("train: step %d: numeric anomaly (%s): %v", e.Step, e.Kind, e.Cause)
	}
	return fmt.Sprintf("train: step %d: numeric anomaly (%s): %g exceeds %g", e.Step, e.Kind, e.Value, e.Threshold)
}

func (e *AnomalyError) Unwrap() error { return e.Cause }

// Guard detects numeric anomalies in a training run. The zero value is
// not usable; construct with NewGuard.
type Guard struct {
	// SpikeFactor is the multiple of the EMA a loss or gradient norm
	// must exceed to count as an anomaly.
	SpikeFactor float64
	// Decay is the EMA decay (weight on history, in (0, 1)).
	Decay float64
	// Warmup is how many clean steps seed the EMAs before spike
	// detection arms; non-finite detection is active from step one.
	Warmup int

	emaLoss, emaGrad float64
	clean            int
}

// NewGuard returns a guard with conventional settings: 3x spike factor,
// 0.9 EMA decay, 5-step warmup.
func NewGuard() *Guard {
	return &Guard{SpikeFactor: 3, Decay: 0.9, Warmup: 5}
}

// Check inspects one completed step: the reported loss and the model's
// parameters/gradients. It returns a *AnomalyError on detection — the
// step's update should then be discarded via checkpoint rollback — and
// advances the EMA baselines only on clean steps, so a detected anomaly
// never contaminates the threshold that caught it.
func (g *Guard) Check(step int, loss float64, params []*nn.Param) error {
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		return &AnomalyError{Step: step, Kind: "non-finite", Value: loss,
			Cause: fmt.Errorf("loss is %v", loss)}
	}
	if err := nn.CheckFinite(params); err != nil {
		return &AnomalyError{Step: step, Kind: "non-finite", Value: loss, Cause: err}
	}
	norm := nn.GradNorm(params)
	if g.clean >= g.Warmup {
		if lim := g.SpikeFactor * g.emaLoss; loss > lim {
			return &AnomalyError{Step: step, Kind: "loss-spike", Value: loss, Threshold: lim}
		}
		if lim := g.SpikeFactor * g.emaGrad; norm > lim {
			return &AnomalyError{Step: step, Kind: "grad-spike", Value: norm, Threshold: lim}
		}
	}
	if g.clean == 0 {
		g.emaLoss, g.emaGrad = loss, norm
	} else {
		g.emaLoss = g.Decay*g.emaLoss + (1-g.Decay)*loss
		g.emaGrad = g.Decay*g.emaGrad + (1-g.Decay)*norm
	}
	g.clean++
	return nil
}
