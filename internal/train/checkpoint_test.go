package train

import (
	"bytes"
	"strings"
	"testing"

	"mobius/internal/nn"
)

// newTrainer builds a fresh identically-seeded model + trainer.
func newTrainer(t *testing.T, stages int, mode Mode) *Trainer {
	t.Helper()
	cfg := nn.Config{Vocab: 64, Seq: 16, Dim: 32, Heads: 4, Layers: 4, Seed: 7}
	m, err := nn.NewGPT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(m, stages, 3e-3, mode)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// resumeBitwise runs the core elastic-recovery property on the real
// trainer: train n steps straight through; separately train k steps,
// checkpoint, destroy the trainer, restore into a brand-new one (possibly
// with a different stage split), finish steps k..n-1. Every post-resume
// loss and every final weight must be bit-identical to the uninterrupted
// run.
func resumeBitwise(t *testing.T, mode Mode, saveStages, resumeStages int) {
	t.Helper()
	const n, k = 10, 4
	_, mbRef, corpus, cfg := buildPair(t, saveStages)
	ref := mbRef
	if mode == ModeGPipe {
		ref = newTrainer(t, saveStages, ModeGPipe)
	}
	refLoss := make([]float64, n)
	for step := 0; step < n; step++ {
		refLoss[step] = ref.Step(microbatches(corpus, cfg, step, 4, 2))
	}

	// Interrupted run: k steps, save, destroy.
	tr := newTrainer(t, saveStages, mode)
	for step := 0; step < k; step++ {
		if got := tr.Step(microbatches(corpus, cfg, step, 4, 2)); got != refLoss[step] {
			t.Fatalf("pre-checkpoint step %d diverged: %.17g vs %.17g", step, got, refLoss[step])
		}
	}
	var buf bytes.Buffer
	if err := tr.SaveCheckpoint(&buf, k); err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Model.Params() {
		p.W.Zero() // destroy the "failed" trainer's state
	}
	tr = nil

	// Survivor: fresh model, restore, resume — batches are a pure
	// function of the global step, exactly as in the training loop.
	surv := newTrainer(t, resumeStages, mode)
	resume, err := surv.RestoreCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if resume != k {
		t.Fatalf("resume step %d, want %d", resume, k)
	}
	for step := resume; step < n; step++ {
		if got := surv.Step(microbatches(corpus, cfg, step, 4, 2)); got != refLoss[step] {
			t.Fatalf("post-resume step %d diverged: %.17g vs %.17g", step, got, refLoss[step])
		}
	}
	for i, p := range surv.Model.Params() {
		want := ref.Model.Params()[i]
		for j := range p.W.D {
			if p.W.D[j] != want.W.D[j] {
				t.Fatalf("final weight %s[%d] diverged: %.17g vs %.17g", p.Name, j, p.W.D[j], want.W.D[j])
			}
		}
	}
}

func TestResumeBitwiseMobius(t *testing.T) { resumeBitwise(t, ModeMobius, 3, 3) }
func TestResumeBitwiseGPipe(t *testing.T)  { resumeBitwise(t, ModeGPipe, 3, 3) }

// TestResumeBitwiseAcrossSplit restores a 3-stage checkpoint into a
// 4-stage trainer: the elastic re-plan case. Split invariance makes the
// trajectory identical anyway.
func TestResumeBitwiseAcrossSplit(t *testing.T) { resumeBitwise(t, ModeMobius, 3, 4) }

func TestCheckpointRejects(t *testing.T) {
	tr := newTrainer(t, 3, ModeMobius)
	var buf bytes.Buffer
	if err := tr.SaveCheckpoint(&buf, 2); err != nil {
		t.Fatal(err)
	}

	async := newTrainer(t, 3, ModeAsync)
	if err := async.SaveCheckpoint(&bytes.Buffer{}, 1); err == nil || !strings.Contains(err.Error(), "not checkpointable") {
		t.Fatalf("async save: %v", err)
	}
	if _, err := async.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("async restore should fail")
	}

	// Architecture mismatch.
	cfg := nn.Config{Vocab: 64, Seq: 16, Dim: 48, Heads: 4, Layers: 4, Seed: 7}
	m, err := nn.NewGPT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(m, 3, 3e-3, ModeMobius)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("architecture mismatch: %v", err)
	}

	// Learning-rate mismatch.
	m2, _ := nn.NewGPT(nn.Config{Vocab: 64, Seq: 16, Dim: 32, Heads: 4, Layers: 4, Seed: 7})
	lrOther, _ := New(m2, 3, 1e-3, ModeMobius)
	if _, err := lrOther.RestoreCheckpoint(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "learning rate") {
		t.Fatalf("lr mismatch: %v", err)
	}

	if err := tr.SaveCheckpoint(&bytes.Buffer{}, -1); err == nil {
		t.Fatal("negative step should fail")
	}
}

// TestCheckpointCarriesAdamState: resuming without the Adam moments
// would silently reset the optimizer; the format must round-trip them.
func TestCheckpointCarriesAdamState(t *testing.T) {
	_, tr, corpus, cfg := buildPair(t, 3)
	tr.Step(microbatches(corpus, cfg, 0, 4, 2))
	var buf bytes.Buffer
	if err := tr.SaveCheckpoint(&buf, 1); err != nil {
		t.Fatal(err)
	}
	surv := newTrainer(t, 3, ModeMobius)
	if _, err := surv.RestoreCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if surv.Opt.StepCount() != 1 {
		t.Fatalf("optimizer step count %d, want 1", surv.Opt.StepCount())
	}
	for _, p := range surv.Model.Params() {
		m, v := surv.Opt.State(p)
		if m == nil || v == nil {
			t.Fatalf("parameter %q lost its Adam state", p.Name)
		}
	}
}
