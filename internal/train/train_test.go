package train

import (
	"math"
	"testing"

	"mobius/internal/nn"
	"mobius/internal/textgen"
)

func buildPair(t *testing.T, stages int) (*Trainer, *Trainer, *textgen.Corpus, nn.Config) {
	t.Helper()
	cfg := nn.Config{Vocab: 64, Seq: 16, Dim: 32, Heads: 4, Layers: 4, Seed: 7}
	m1, err := nn.NewGPT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := nn.NewGPT(cfg) // identical init (same seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(m1, stages, 3e-3, ModeGPipe)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := New(m2, stages, 3e-3, ModeMobius)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := textgen.Generate(cfg.Vocab, 20000, 13)
	if err != nil {
		t.Fatal(err)
	}
	return g, mb, corpus, cfg
}

func microbatches(c *textgen.Corpus, cfg nn.Config, step, m, bs int) []nn.Batch {
	out := make([]nn.Batch, m)
	for i := range out {
		out[i] = c.Batch(cfg.Seq, bs, step, i)
	}
	return out
}

// TestMobiusMatchesGPipeBitwise is the convergence claim of §3.1 made
// exact: the Mobius execution order (stage swapping, checkpoint
// recomputation, gradient flush, CPU optimizer) must produce the same
// losses as GPipe on every step.
func TestMobiusMatchesGPipeBitwise(t *testing.T) {
	g, mb, corpus, cfg := buildPair(t, 3)
	for step := 0; step < 12; step++ {
		batches := microbatches(corpus, cfg, step, 4, 2)
		lg := g.Step(batches)
		lm := mb.Step(batches)
		if lg != lm {
			t.Fatalf("step %d: GPipe loss %.17g != Mobius loss %.17g", step, lg, lm)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	_, mb, corpus, cfg := buildPair(t, 3)
	var first, last float64
	const steps = 60
	for step := 0; step < steps; step++ {
		loss := mb.Step(microbatches(corpus, cfg, step, 4, 2))
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if first <= 0 {
		t.Fatal("bad first loss")
	}
	if last > first*0.85 {
		t.Fatalf("loss barely moved: %.3f -> %.3f", first, last)
	}
	// It must also beat the unigram entropy floor eventually... at least
	// be clearly below the uniform baseline ln(64) = 4.16.
	if last > math.Log(64)*0.95 {
		t.Fatalf("final loss %.3f not below uniform baseline", last)
	}
}

func TestEvictionIsReal(t *testing.T) {
	// After a Mobius step, unit weight buffers must be evicted (zeroed):
	// the trainer may only rely on the DRAM master copies.
	_, mb, corpus, cfg := buildPair(t, 3)
	mb.Step(microbatches(corpus, cfg, 0, 2, 2))
	zeroed := 0
	for _, p := range mb.Model.Params() {
		allZero := true
		for _, v := range p.W.D {
			if v != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			zeroed++
		}
	}
	// The optimizer writes master weights back into the buffers at step
	// end for Params(), so buffers are non-zero after Step — instead
	// verify the DRAM master moved away from initialization.
	if zeroed == len(mb.Model.Params()) {
		t.Fatal("all buffers zero after optimizer write-back")
	}
	moved := false
	for _, w := range mb.dramW {
		for _, v := range w {
			if v != 0 {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("DRAM master never updated")
	}
}

func TestStageSplitValidation(t *testing.T) {
	cfg := nn.Config{Vocab: 16, Seq: 4, Dim: 8, Heads: 2, Layers: 2, Seed: 1}
	m, _ := nn.NewGPT(cfg)
	if _, err := New(m, 0, 1e-3, ModeGPipe); err == nil {
		t.Fatal("zero stages must fail")
	}
	if _, err := New(m, 99, 1e-3, ModeGPipe); err == nil {
		t.Fatal("too many stages must fail")
	}
	tr, err := New(m, 4, 1e-3, ModeMobius)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumStages() != 4 {
		t.Fatalf("stages: %d", tr.NumStages())
	}
}

func TestDifferentStageCountsSameResult(t *testing.T) {
	// The partition must not affect learning: 2-stage and 4-stage Mobius
	// training produce identical losses.
	cfg := nn.Config{Vocab: 32, Seq: 8, Dim: 16, Heads: 2, Layers: 3, Seed: 5}
	corpus, _ := textgen.Generate(cfg.Vocab, 8000, 3)
	m2, _ := nn.NewGPT(cfg)
	m4, _ := nn.NewGPT(cfg)
	t2, _ := New(m2, 2, 1e-3, ModeMobius)
	t4, _ := New(m4, 4, 1e-3, ModeMobius)
	for step := 0; step < 6; step++ {
		var b []nn.Batch
		for i := 0; i < 3; i++ {
			b = append(b, corpus.Batch(cfg.Seq, 2, step, i))
		}
		l2 := t2.Step(b)
		l4 := t4.Step(b)
		if l2 != l4 {
			t.Fatalf("step %d: 2-stage %.17g != 4-stage %.17g", step, l2, l4)
		}
	}
}

// TestAsyncDivergesFromSync demonstrates the §3.1 contrast: a
// PipeDream-style asynchronous pipeline (per-microbatch updates with
// stale forwards) produces different losses from the synchronous GPipe/
// Mobius update, while still learning.
func TestAsyncDivergesFromSync(t *testing.T) {
	cfg := nn.Config{Vocab: 64, Seq: 16, Dim: 32, Heads: 4, Layers: 4, Seed: 7}
	corpus, _ := textgen.Generate(cfg.Vocab, 20000, 13)
	mSync, _ := nn.NewGPT(cfg)
	mAsync, _ := nn.NewGPT(cfg)
	sync, _ := New(mSync, 3, 1e-3, ModeGPipe)
	async, _ := New(mAsync, 3, 1e-3, ModeAsync)

	var diverged bool
	var firstA, lastA float64
	const steps = 25
	for step := 0; step < steps; step++ {
		var b []nn.Batch
		for i := 0; i < 4; i++ {
			b = append(b, corpus.Batch(cfg.Seq, 2, step, i))
		}
		ls := sync.Step(b)
		la := async.Step(b)
		if step == 0 {
			firstA = la
		}
		lastA = la
		if ls != la {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("async updates must not match synchronous losses exactly")
	}
	if lastA >= firstA {
		t.Fatalf("async training should still learn: %.3f -> %.3f", firstA, lastA)
	}
}
