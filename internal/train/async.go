package train

import (
	"mobius/internal/nn"
	"mobius/internal/tensor"
)

// ModeAsync emulates a PipeDream-style asynchronous pipeline without
// weight stashing (§3.1's contrast case): parameters update immediately
// after every microbatch, so a microbatch's forward pass runs on weights
// that are several updates stale by the time its backward pass executes
// — the staleness equals the number of in-flight microbatches (pipeline
// depth - 1). The paper chooses GPipe-style synchronous updates exactly
// to avoid this; the convergence experiment quantifies the difference.
const ModeAsync Mode = 2

// asyncStep runs one "step" of the asynchronous pipeline: every
// microbatch triggers its own optimizer update; forward passes use
// weights from `staleness` updates ago (ring buffer of snapshots), while
// backward Jacobians use the current weights (no stashing). Returns the
// mean loss across the microbatches.
func (t *Trainer) asyncStep(mbs []nn.Batch) float64 {
	S := len(t.stages)
	staleness := S - 1
	params := t.Model.Params()

	snapshot := func() [][]float64 {
		out := make([][]float64, len(params))
		for i, p := range params {
			out[i] = append([]float64(nil), p.W.D...)
		}
		return out
	}
	restore := func(snap [][]float64) {
		for i, p := range params {
			copy(p.W.D, snap[i])
		}
	}

	if t.asyncRing == nil {
		t.asyncRing = append(t.asyncRing, snapshot())
	}

	var totalLoss float64
	for _, mb := range mbs {
		// Forward on the stalest available snapshot.
		idx := 0
		if len(t.asyncRing) > staleness {
			idx = len(t.asyncRing) - 1 - staleness
		}
		current := snapshot()
		restore(t.asyncRing[idx])
		var x *tensor.Mat
		caches := make([][]any, S)
		for j := 0; j < S; j++ {
			for _, u := range t.stages[j] {
				var c any
				x, c = u.Forward(x, mb)
				caches[j] = append(caches[j], c)
			}
		}
		loss, dx := nn.CrossEntropy(x, mb, t.Model.Cfg.Seq)
		totalLoss += loss

		// Backward with the *current* weights (no stashing) against the
		// stale forward caches.
		restore(current)
		for _, p := range params {
			p.ZeroGrad()
		}
		for j := S - 1; j >= 0; j-- {
			for k := len(t.stages[j]) - 1; k >= 0; k-- {
				dx = t.stages[j][k].Backward(dx, caches[j][k])
			}
		}
		t.Opt.Step(params)

		// Record the new version.
		t.asyncRing = append(t.asyncRing, snapshot())
		if len(t.asyncRing) > staleness+1 {
			t.asyncRing = t.asyncRing[len(t.asyncRing)-staleness-1:]
		}
	}
	return totalLoss / float64(len(mbs))
}
