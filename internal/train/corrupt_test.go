package train

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

// snapshotWeights flattens the trainer's weights for before/after
// comparison: a failed restore must leave the trainer untouched.
func snapshotWeights(tr *Trainer) []float64 {
	var w []float64
	for _, p := range tr.Model.Params() {
		w = append(w, p.W.D...)
	}
	return w
}

// TestRestoreCheckpointMangled runs RestoreCheckpoint over a matrix of
// mangled checkpoint bytes: truncations at every interesting boundary,
// bit flips across the file, wrong magic, wrong version, and non-finite
// payloads. The contract: never panic, never return an unstructured
// error, and never mutate the trainer on failure.
func TestRestoreCheckpointMangled(t *testing.T) {
	src := newTrainer(t, 3, ModeMobius)
	var buf bytes.Buffer
	if err := src.SaveCheckpoint(&buf, 5); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	wrongVersion := func() []byte {
		var b bytes.Buffer
		b.WriteString(checkpointMagic)
		ck := trainCheckpoint{Version: 99, Cfg: src.Model.Cfg, LR: src.Opt.LR}
		if err := gob.NewEncoder(&b).Encode(&ck); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}()

	nanWeights := func() []byte {
		var b bytes.Buffer
		if err := src.SaveCheckpoint(&b, 5); err != nil {
			t.Fatal(err)
		}
		// Re-decode, poison one weight, re-encode — a "corrupted write".
		var ck trainCheckpoint
		if err := gob.NewDecoder(bytes.NewReader(b.Bytes()[len(checkpointMagic):])).Decode(&ck); err != nil {
			t.Fatal(err)
		}
		ck.Params[2].W[3] = math.NaN()
		var out bytes.Buffer
		out.WriteString(checkpointMagic)
		if err := gob.NewEncoder(&out).Encode(&ck); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}()

	type mangle struct {
		name     string
		data     []byte
		wantCorr bool // must fail with ErrCheckpointCorrupt
	}
	cases := []mangle{
		{"empty", nil, true},
		{"truncated-magic", good[:4], true},
		{"magic-only", good[:len(checkpointMagic)], true},
		{"truncated-header", good[:len(checkpointMagic)+8], true},
		{"truncated-half", good[:len(good)/2], true},
		{"truncated-tail", good[:len(good)-1], true},
		{"bad-magic", append([]byte("NOTACKPT"), good[len(checkpointMagic):]...), true},
		{"garbage", []byte(strings.Repeat("\xde\xad\xbe\xef", 64)), true},
		{"wrong-version", wrongVersion, false},
		{"nan-weights", nanWeights, true},
	}
	// Bit flips across the gob stream. Some flips may decode to a spec
	// RestoreCheckpoint legitimately rejects for other reasons (or, for
	// flips deep in float payload bits, restore cleanly); the hard
	// requirements are no panic, structured errors only, and no mutation
	// on failure.
	for _, off := range []int{len(checkpointMagic) + 1, len(checkpointMagic) + 17, len(good) / 3, 2 * len(good) / 3} {
		flipped := append([]byte(nil), good...)
		flipped[off] ^= 0x40
		cases = append(cases, mangle{name: fmt.Sprintf("bit-flip-%d", off), data: flipped})
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := newTrainer(t, 3, ModeMobius)
			before := snapshotWeights(tr)
			step, err := tr.RestoreCheckpoint(bytes.NewReader(c.data))
			if err == nil {
				// Only a flip that left the format intact may land here.
				if strings.HasPrefix(c.name, "bit-flip") {
					return
				}
				t.Fatalf("mangled checkpoint restored cleanly (step %d)", step)
			}
			if !strings.HasPrefix(err.Error(), "train:") {
				t.Fatalf("unstructured error: %v", err)
			}
			if c.wantCorr && !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("want ErrCheckpointCorrupt, got %v", err)
			}
			after := snapshotWeights(tr)
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("failed restore mutated weight %d", i)
				}
			}
		})
	}

	// The wrong-version error must name both versions.
	if _, err := newTrainer(t, 3, ModeMobius).RestoreCheckpoint(bytes.NewReader(wrongVersion)); err == nil ||
		!strings.Contains(err.Error(), "version 99") {
		t.Fatalf("version error not descriptive: %v", err)
	}
}
