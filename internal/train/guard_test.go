package train

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"mobius/internal/nn"
)

// TestGuardDetectsNonFinite injects a NaN weight — the footprint of an
// undetected corrupted transfer — and requires the guard to trip
// immediately, unwrapping to the parameter-level scan error.
func TestGuardDetectsNonFinite(t *testing.T) {
	_, tr, corpus, cfg := buildPair(t, 3)
	g := NewGuard()
	loss := tr.Step(microbatches(corpus, cfg, 0, 4, 2))
	if err := g.Check(0, loss, tr.Model.Params()); err != nil {
		t.Fatalf("clean step flagged: %v", err)
	}
	tr.Model.Params()[3].W.D[7] = math.NaN()
	err := g.Check(1, loss, tr.Model.Params())
	var anom *AnomalyError
	if !errors.As(err, &anom) || anom.Kind != "non-finite" || anom.Step != 1 {
		t.Fatalf("want non-finite *AnomalyError at step 1, got %v", err)
	}
	var nf *nn.NonFiniteError
	if !errors.As(err, &nf) || nf.Kind != "weight" {
		t.Fatalf("anomaly should unwrap to *nn.NonFiniteError, got %v", err)
	}
}

// TestGuardDetectsSpikes feeds the guard a stable history, then a loss
// spike and a gradient-norm spike; both must trip only after warmup and
// must not contaminate the EMA baselines.
func TestGuardDetectsSpikes(t *testing.T) {
	_, tr, _, _ := buildPair(t, 3)
	params := tr.Model.Params()
	g := NewGuard()

	// A spike during warmup is tolerated (the EMA is still seeding) —
	// use a throwaway guard so the spike does not pollute the baseline
	// of the main sequence below.
	if err := NewGuard().Check(0, 100, params); err != nil {
		t.Fatalf("warmup step flagged: %v", err)
	}
	for step := 0; step <= g.Warmup+2; step++ {
		if err := g.Check(step, 1.0, params); err != nil {
			t.Fatalf("stable step %d flagged: %v", step, err)
		}
	}
	err := g.Check(50, 50.0, params)
	var anom *AnomalyError
	if !errors.As(err, &anom) || anom.Kind != "loss-spike" {
		t.Fatalf("want loss-spike, got %v", err)
	}
	// The rejected step must not have moved the baseline: the same spike
	// trips again.
	if err := g.Check(51, 50.0, params); err == nil {
		t.Fatal("spike accepted after a rejected identical spike (EMA contaminated)")
	}

	// Gradient spike: blow up the gradients while the loss stays calm.
	for i := range params[0].G.D {
		params[0].G.D[i] = 1e6
	}
	err = g.Check(52, 1.0, params)
	if !errors.As(err, &anom) || anom.Kind != "grad-spike" {
		t.Fatalf("want grad-spike, got %v", err)
	}
	for i := range params[0].G.D {
		params[0].G.D[i] = 0
	}
}

// TestGuardRollbackBitwise is the end-to-end rollback property: a run
// whose weights are corrupted mid-flight detects the anomaly, restores
// the last good checkpoint, replays — and lands bitwise-identical to a
// run that never saw the corruption. Batches are a pure function of the
// global step, so this is exactly the recovery the elastic rollback
// policy prices.
func TestGuardRollbackBitwise(t *testing.T) {
	const n, ckptAt, corruptAt = 10, 4, 6
	_, ref, corpus, cfg := buildPair(t, 3)
	refLoss := make([]float64, n)
	for step := 0; step < n; step++ {
		refLoss[step] = ref.Step(microbatches(corpus, cfg, step, 4, 2))
	}

	tr := newTrainer(t, 3, ModeMobius)
	g := NewGuard()
	var ckpt bytes.Buffer
	step, corrupted := 0, false
	for step < n {
		loss := tr.Step(microbatches(corpus, cfg, step, 4, 2))
		if step == corruptAt && !corrupted {
			// Silent corruption lands between the step and its guard scan.
			tr.Model.Params()[0].W.D[0] = math.Inf(1)
			corrupted = true
		}
		if err := g.Check(step, loss, tr.Model.Params()); err != nil {
			var anom *AnomalyError
			if !errors.As(err, &anom) {
				t.Fatalf("unstructured guard error: %v", err)
			}
			if step != corruptAt {
				t.Fatalf("guard tripped at step %d, corruption was at %d", step, corruptAt)
			}
			resume, rerr := tr.RestoreCheckpoint(bytes.NewReader(ckpt.Bytes()))
			if rerr != nil {
				t.Fatalf("rollback restore: %v", rerr)
			}
			if resume != ckptAt {
				t.Fatalf("rolled back to step %d, want %d", resume, ckptAt)
			}
			step = resume
			continue
		}
		if loss != refLoss[step] {
			t.Fatalf("step %d loss diverged after rollback: %.17g vs %.17g", step, loss, refLoss[step])
		}
		step++
		if step == ckptAt {
			if err := tr.SaveCheckpoint(&ckpt, step); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, p := range tr.Model.Params() {
		want := ref.Model.Params()[i]
		for j := range p.W.D {
			if p.W.D[j] != want.W.D[j] {
				t.Fatalf("final weight %s[%d] diverged: %.17g vs %.17g", p.Name, j, p.W.D[j], want.W.D[j])
			}
		}
	}
}
