package train

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"mobius/internal/nn"
)

// Checkpoint framing. The magic line makes "not a checkpoint at all"
// (wrong file, zero-length write, garbage) distinguishable from a
// version skew or a mid-file truncation, and the explicit version field
// fails loudly on format evolution instead of letting gob half-decode an
// old layout.
const (
	checkpointMagic   = "MOBCKPT\n"
	checkpointVersion = 1
)

// ErrCheckpointCorrupt is wrapped by every RestoreCheckpoint failure
// caused by the file itself — bad magic, truncation, garbled gob,
// non-finite weights — as opposed to a checkpoint that is intact but
// does not match this trainer. Callers branch with
// errors.Is(err, ErrCheckpointCorrupt) to decide between "fall back to
// an older checkpoint" and "operator error".
var ErrCheckpointCorrupt = errors.New("corrupt or truncated checkpoint")

// trainCheckpoint is the gob on-disk format of a resumable training
// state: the model weights (the DRAM master copy), the Adam moments, and
// the global step. The stage split is deliberately NOT part of the
// format — the Mobius execution order is split-invariant, so a
// checkpoint saved from a 3-stage trainer resumes bitwise-identically in
// a 4-stage one. That property is exactly what makes elastic re-planning
// after a GPU loss safe for convergence.
type trainCheckpoint struct {
	Version int
	Cfg     nn.Config
	Mode    string
	Step    int
	LR      float64
	AdamT   int
	Params  []paramState
}

// paramState is one parameter's persistent state, keyed by name.
type paramState struct {
	Name         string
	W            []float64
	AdamM, AdamV []float64
}

// SaveCheckpoint serializes the trainer's state after `step` completed
// steps. Only the synchronous modes are checkpointable: ModeAsync keeps
// in-flight weight snapshots whose staleness cannot be reconstructed on
// restore.
func (t *Trainer) SaveCheckpoint(w io.Writer, step int) error {
	if t.Mode == ModeAsync {
		return fmt.Errorf("train: %s training is not checkpointable (in-flight staleness ring)", t.Mode)
	}
	if step < 0 {
		return fmt.Errorf("train: negative step %d", step)
	}
	ck := trainCheckpoint{
		Version: checkpointVersion,
		Cfg:     t.Model.Cfg,
		Mode:    t.Mode.String(),
		Step:    step,
		LR:      t.Opt.LR,
		AdamT:   t.Opt.StepCount(),
	}
	for _, p := range t.Model.Params() {
		// Between steps the GPU copy and the DRAM master are identical in
		// ModeMobius and the master is unused in ModeGPipe; the live
		// weights are the canonical state in both.
		st := paramState{Name: p.Name, W: append([]float64(nil), p.W.D...)}
		if m, v := t.Opt.State(p); m != nil {
			st.AdamM = append([]float64(nil), m...)
			st.AdamV = append([]float64(nil), v...)
		}
		ck.Params = append(ck.Params, st)
	}
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return fmt.Errorf("train: write checkpoint: %w", err)
	}
	return gob.NewEncoder(w).Encode(&ck)
}

// RestoreCheckpoint loads state saved by SaveCheckpoint into this
// trainer and returns the step at which training should resume. The
// model architecture and learning rate must match; the stage split and
// the mode may differ (both synchronous orders compute identical
// updates). Weights, DRAM master copies, accumulated gradients and the
// optimizer moments are all overwritten, so the subsequent steps are
// bitwise identical to a run that never stopped.
func (t *Trainer) RestoreCheckpoint(r io.Reader) (int, error) {
	if t.Mode == ModeAsync {
		return 0, fmt.Errorf("train: %s training cannot resume from a checkpoint", t.Mode)
	}
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, fmt.Errorf("train: %w: reading header: %v", ErrCheckpointCorrupt, err)
	}
	if string(magic) != checkpointMagic {
		return 0, fmt.Errorf("train: %w: bad magic %q (not a mobius checkpoint)", ErrCheckpointCorrupt, magic)
	}
	var ck trainCheckpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return 0, fmt.Errorf("train: %w: decode: %v", ErrCheckpointCorrupt, err)
	}
	if ck.Version != checkpointVersion {
		return 0, fmt.Errorf("train: checkpoint format version %d, this build reads version %d", ck.Version, checkpointVersion)
	}
	if ck.Cfg != t.Model.Cfg {
		return 0, fmt.Errorf("train: checkpoint model %+v does not match trainer %+v", ck.Cfg, t.Model.Cfg)
	}
	if ck.LR != t.Opt.LR {
		return 0, fmt.Errorf("train: checkpoint learning rate %g does not match trainer %g", ck.LR, t.Opt.LR)
	}
	states := make(map[string]paramState, len(ck.Params))
	for _, st := range ck.Params {
		states[st.Name] = st
	}
	params := t.Model.Params()
	if len(states) != len(params) {
		return 0, fmt.Errorf("train: checkpoint has %d parameters, model has %d", len(states), len(params))
	}
	// Validate everything before mutating anything.
	for _, p := range params {
		st, ok := states[p.Name]
		if !ok {
			return 0, fmt.Errorf("train: checkpoint missing parameter %q", p.Name)
		}
		if len(st.W) != len(p.W.D) {
			return 0, fmt.Errorf("train: parameter %q has %d values, want %d", p.Name, len(st.W), len(p.W.D))
		}
		if len(st.AdamM) != len(st.AdamV) || (len(st.AdamM) != 0 && len(st.AdamM) != len(st.W)) {
			return 0, fmt.Errorf("train: parameter %q has inconsistent optimizer state", p.Name)
		}
		// A bit-flipped float decodes fine; catch it before it poisons
		// the run (the numeric guard would only trip steps later).
		for i, v := range st.W {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("train: %w: parameter %q weight[%d] is %v", ErrCheckpointCorrupt, p.Name, i, v)
			}
		}
		for i := range st.AdamM {
			if bad(st.AdamM[i]) || bad(st.AdamV[i]) {
				return 0, fmt.Errorf("train: %w: parameter %q optimizer state[%d] is non-finite", ErrCheckpointCorrupt, p.Name, i)
			}
		}
	}
	for _, p := range params {
		st := states[p.Name]
		copy(p.W.D, st.W)
		p.ZeroGrad()
		copy(t.dramW[p], st.W)
		for i := range t.dramG[p] {
			t.dramG[p][i] = 0
		}
		if len(st.AdamM) > 0 {
			t.Opt.SetState(p, append([]float64(nil), st.AdamM...), append([]float64(nil), st.AdamV...))
		}
	}
	t.Opt.SetStepCount(ck.AdamT)
	return ck.Step, nil
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
