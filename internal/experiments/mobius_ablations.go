package experiments

import (
	"fmt"
	"math"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/nn"
	"mobius/internal/textgen"
	"mobius/internal/train"
)

// AblationPrefetch quantifies the value of prefetching into reserved GPU
// memory (§3.1): Mobius with and without prefetch on the paper's
// commodity topologies. Without prefetch every stage upload is exposed
// on the critical path.
func AblationPrefetch() (*Table, error) {
	t := &Table{
		Title:  "Ablation A1: stage prefetching (Mobius, 15B)",
		Header: []string{"topology", "no prefetch (s)", "prefetch (s)", "saving"},
	}
	sr := &stepRunner{}
	for _, topo := range commodityTopologies() {
		off := sr.run(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo, DisablePrefetch: true})
		on := sr.run(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo})
		if sr.err != nil {
			return nil, sr.err
		}
		t.Add(topo.Name, secs(off.StepTime), secs(on.StepTime), pct(1-on.StepTime/off.StepTime))
	}
	t.Note("prefetching overlaps stage swaps with computation (§3.1); on the fully-shared")
	t.Note("Topo 4 eager prefetches can contend with critical-path traffic — the effect the")
	t.Note("MIP's window constraint (6) exists to limit")
	return sr.table(t)
}

// AblationPriority quantifies the prefetch-priority policy (§3.3): when
// several prefetches contend under one root complex, the stage that
// executes earlier gets the bandwidth first.
func AblationPriority() (*Table, error) {
	t := &Table{
		Title:  "Ablation A2: prefetch priority (Mobius, Topo 4 and 4+4)",
		Header: []string{"model", "topology", "no priority (s)", "priority (s)", "saving"},
	}
	cases := []struct {
		m    model.Config
		topo *hw.Topology
	}{
		{model.GPT15B, hw.Commodity(hw.RTX3090Ti, 4)},
		{model.GPT15B, hw.Commodity(hw.RTX3090Ti, 4, 4)},
		{model.GPT51B, hw.Commodity(hw.RTX3090Ti, 4)},
	}
	sr := &stepRunner{}
	for _, c := range cases {
		off := sr.run(core.SystemMobius, core.Options{Model: c.m, Topology: c.topo, DisablePrefetchPriority: true})
		on := sr.run(core.SystemMobius, core.Options{Model: c.m, Topology: c.topo})
		if sr.err != nil {
			return nil, sr.err
		}
		t.Add(c.m.Name, c.topo.Name, secs(off.StepTime), secs(on.StepTime), pct(1-on.StepTime/off.StepTime))
	}
	t.Note("implements cudaStreamCreateWithPriority: earlier stages' prefetches preempt later ones")
	return sr.table(t)
}

// AblationMicrobatches sweeps M (the paper fixes M = N): more
// microbatches shrink pipeline bubbles but enlarge activation traffic
// and checkpoint uploads. The run cache keys on the M override, so
// these cells never collide with the main M = N grid.
func AblationMicrobatches() (*Table, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	t := &Table{
		Title:  "Ablation A3: microbatch count M (Mobius, 15B, Topo 2+2)",
		Header: []string{"M", "step time (s)", "s per sample"},
	}
	sr := &stepRunner{}
	for _, m := range []int{2, 4, 8, 16} {
		r := sr.run(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo, Microbatches: m})
		if sr.err != nil {
			return nil, sr.err
		}
		t.Add(fmt.Sprintf("%d", m), secs(r.StepTime), fmt.Sprintf("%.3f", r.StepTime/float64(m)))
	}
	t.Note("the paper fixes M = N; larger M amortizes fill/drain bubbles until memory pressure bites")
	return sr.table(t)
}

// ConvergenceAsync extends Figure 13 with the §3.1 contrast case: a
// PipeDream-style asynchronous pipeline updates weights per microbatch
// with stale forwards, separating its loss curve from the synchronous
// GPipe/Mobius update that Mobius deliberately keeps.
func ConvergenceAsync() (*Table, error) {
	const steps = 80
	cfg := nn.Config{Vocab: 64, Seq: 16, Dim: 32, Heads: 4, Layers: 4, Seed: 7}
	corpus, err := textgen.Generate(cfg.Vocab, 30000, 13)
	if err != nil {
		return nil, fmt.Errorf("experiments: convergence corpus: %w", err)
	}
	mS, _ := nn.NewGPT(cfg)
	mA, _ := nn.NewGPT(cfg)
	tS, err := train.New(mS, 3, 1e-3, train.ModeGPipe)
	if err != nil {
		return nil, fmt.Errorf("experiments: convergence trainer: %w", err)
	}
	tA, err := train.New(mA, 3, 1e-3, train.ModeAsync)
	if err != nil {
		return nil, fmt.Errorf("experiments: convergence trainer: %w", err)
	}

	t := &Table{
		Title:  "Ablation A4: synchronous (GPipe/Mobius) vs asynchronous pipeline updates",
		Header: []string{"step", "sync loss", "async loss", "gap"},
	}
	var maxGap float64
	for step := 0; step < steps; step++ {
		var b []nn.Batch
		for i := 0; i < 4; i++ {
			b = append(b, corpus.Batch(cfg.Seq, 2, step, i))
		}
		ls := tS.Step(b)
		la := tA.Step(b)
		gap := la - ls
		if g := math.Abs(gap); g > maxGap {
			maxGap = g
		}
		if step%10 == 0 || step == steps-1 {
			t.Add(fmt.Sprintf("%d", step), fmt.Sprintf("%.4f", ls), fmt.Sprintf("%.4f", la), fmt.Sprintf("%+.4f", gap))
		}
	}
	t.Note("max |sync - async| loss gap: %.3g — asynchronous updates change the optimization", maxGap)
	t.Note("trajectory; Mobius keeps GPipe's synchronous update exactly (§3.1)")
	return t, nil
}

// AblationCheckpointing quantifies the activation-checkpointing
// dependency [17] analytically: without recomputation, every microbatch
// retains all intermediate activations until backward, and a Mobius
// stage must hold M microbatches' worth — for the paper's models that
// overwhelms a 24 GB GPU, while the recompute tax is only ~1/3 of
// backward FLOPs.
func AblationCheckpointing() (*Table, error) {
	const M = 4
	G := hw.RTX3090Ti.MemBytes
	t := &Table{
		Title:  "Ablation A5: activation checkpointing (per transformer block, M=4)",
		Header: []string{"model", "ckpt act/blk", "full act/blk", "blocks/GPU ckpt", "blocks/GPU full", "bwd overhead"},
	}
	for _, m := range model.Table3() {
		var blk model.Layer
		for _, l := range m.LayerSeq() {
			if l.Kind == model.KindBlock {
				blk = l
				break
			}
		}
		mbs := m.MicrobatchSize
		ckpt := blk.ActivationOutBytes(mbs)             // boundary only
		full := blk.RetainedActivationBytes(mbs)        // everything
		perBlockCkpt := 2*blk.ParamBytesFP16() + M*ckpt // params+grads+checkpoints
		perBlockFull := 2*blk.ParamBytesFP16() + M*full // params+grads+retained
		fitCkpt := int(G / perBlockCkpt)
		fitFull := int(G / perBlockFull)
		overhead := blk.BwdFLOPs(mbs)/blk.BwdFLOPsNoRecompute(mbs) - 1
		t.Add(m.Name,
			fmt.Sprintf("%.0f MB", M*ckpt/1e6),
			fmt.Sprintf("%.0f MB", M*full/1e6),
			fmt.Sprintf("%d", fitCkpt),
			fmt.Sprintf("%d", fitFull),
			fmt.Sprintf("+%.0f%%", overhead*100))
	}
	t.Note("checkpointing trades ~1/3 more backward FLOPs for an order of magnitude more")
	t.Note("blocks per GPU — without it the Mobius pipeline could barely form stages")
	return t, nil
}
