// Package experiments regenerates every table and figure of the paper's
// evaluation section (§4) on the simulated substrate. Each function
// returns a formatted Table whose rows correspond to the bars, lines or
// cells of the original plot; the root-level benchmark suite and
// cmd/mobius-bench print them.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row built from the given cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Addf appends a row formatted cell-by-cell: each argument is rendered
// with %v.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends an annotation line printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// secs formats seconds.
func secs(v float64) string { return fmt.Sprintf("%.2f", v) }

// gb formats bytes as gigabytes.
func gb(v float64) string { return fmt.Sprintf("%.1f", v/1e9) }

// ratio formats a unitless ratio.
func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }

// Markdown renders the table as GitHub-flavored markdown, for pasting
// experiment results into reports like EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			fmt.Fprintf(&b, " %s |", c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", n)
	}
	return b.String()
}
