package experiments

import (
	"fmt"
	"strings"
	"testing"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/trace"
)

// The experiment tests assert the headline *shape* claims of each paper
// figure on the simulated substrate; EXPERIMENTS.md records the numbers.

// mustRun is the test-side shorthand over the memoized run: production
// code returns errors, tests may panic.
func mustRun(sys core.System, opts core.Options) *core.StepReport {
	r, err := run(sys, opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s on %s/%s: %v", sys, opts.Model.Name, opts.Topology.Name, err))
	}
	return r
}

// mustTable runs a generator and unwraps its result.
func mustTable(t *testing.T, gen func() (*Table, error)) *Table {
	t.Helper()
	tab, err := gen()
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	return tab
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "t", Header: []string{"a", "bbbb"}}
	tab.Add("x", "y")
	tab.Addf("z", 1.5)
	tab.Note("n=%d", 1)
	s := tab.String()
	for _, want := range []string{"== t ==", "bbbb", "1.500", "note: n=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering misses %q:\n%s", want, s)
		}
	}
}

func TestTable1And3Shapes(t *testing.T) {
	if got := len(mustTable(t, Table1).Rows); got != 4 {
		t.Errorf("table1 rows: %d", got)
	}
	if got := len(mustTable(t, Table3Models).Rows); got != 4 {
		t.Errorf("table3 rows: %d", got)
	}
}

func TestFigure2ShowsContention(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	r := mustRun(core.SystemDSHetero, core.Options{Model: model.GPT15B, Topology: topo})
	// The motivating observation: DeepSpeed's median transfer runs at or
	// below ~half the root complex bandwidth.
	if med := r.BandwidthCDF.Median(); med > 7.5e9 {
		t.Errorf("DeepSpeed median bandwidth %.2f GB/s, expected heavy contention", med/1e9)
	}
	if tab := mustTable(t, Figure2); len(tab.Rows) == 0 {
		t.Error("empty figure 2 table")
	}
}

func TestFigure6TrafficRatios(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	for _, m := range []model.Config{model.GPT15B} {
		ds := mustRun(core.SystemDSHetero, core.Options{Model: m, Topology: topo})
		mob := mustRun(core.SystemMobius, core.Options{Model: m, Topology: topo})
		dsRatio := ds.TrafficBytes / m.ParamBytesFP32()
		mobRatio := mob.TrafficBytes / m.ParamBytesFP32()
		if dsRatio < 5 || dsRatio > 9 {
			t.Errorf("%s: DeepSpeed traffic ratio %.2f outside [5,9]", m.Name, dsRatio)
		}
		if mobRatio < 1.1 || mobRatio > 2.3 {
			t.Errorf("%s: Mobius traffic ratio %.2f outside [1.1,2.3]", m.Name, mobRatio)
		}
		if dsRatio/mobRatio < 3 {
			t.Errorf("%s: traffic gap %.2f below ~N", m.Name, dsRatio/mobRatio)
		}
	}
}

func TestFigure5SpeedupBand(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 4) // most contended
	ds := mustRun(core.SystemDSHetero, core.Options{Model: model.GPT15B, Topology: topo})
	mob := mustRun(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo})
	sp := ds.StepTime / mob.StepTime
	if sp < 2.5 {
		t.Errorf("15B/Topo4 speedup %.2f, want >= 2.5 (paper: up to 5.1)", sp)
	}
}

func TestFigure8OverlapGap(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	ds := mustRun(core.SystemDSHetero, core.Options{Model: model.GPT15B, Topology: topo})
	mob := mustRun(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo})
	if ds.NonOverlapFraction < 0.5 {
		t.Errorf("DeepSpeed non-overlap %.2f, paper reports ~0.7-0.8", ds.NonOverlapFraction)
	}
	if mob.NonOverlapFraction >= ds.NonOverlapFraction {
		t.Error("Mobius must hide more communication than DeepSpeed")
	}
}

func TestFigure9MIPNeverWorse(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	m := model.GPT8B
	mip := mustRun(core.SystemMobius, core.Options{Model: m, Topology: topo, PartitionAlgo: "mip"})
	maxS := mustRun(core.SystemMobius, core.Options{Model: m, Topology: topo, PartitionAlgo: "max-stage"})
	minS := mustRun(core.SystemMobius, core.Options{Model: m, Topology: topo, PartitionAlgo: "min-stage"})
	if mip.StepTime > maxS.StepTime*1.02 {
		t.Errorf("MIP %.2f worse than max-stage %.2f", mip.StepTime, maxS.StepTime)
	}
	if mip.StepTime > minS.StepTime*1.02 {
		t.Errorf("MIP %.2f worse than min-stage %.2f", mip.StepTime, minS.StepTime)
	}
	if maxS.StepTime < mip.StepTime*1.2 {
		t.Errorf("max-stage should be clearly worse (no prefetch room): %.2f vs %.2f", maxS.StepTime, mip.StepTime)
	}
}

func TestFigure10CrossHelpsOn8GPUs(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 4, 4)
	m := model.GPT15B.WithMicrobatch(1)
	seq := mustRun(core.SystemMobius, core.Options{Model: m, Topology: topo, MappingScheme: "sequential"})
	cross := mustRun(core.SystemMobius, core.Options{Model: m, Topology: topo, MappingScheme: "cross"})
	if cross.StepTime > seq.StepTime*1.01 {
		t.Errorf("cross %.3f must not lose to sequential %.3f", cross.StepTime, seq.StepTime)
	}
}

func TestFigure14NearLinear(t *testing.T) {
	m := model.GPT15B.WithMicrobatch(1)
	r2 := mustRun(core.SystemMobius, core.Options{Model: m, Topology: hw.Commodity(hw.RTX3090Ti, 1, 1)})
	r8 := mustRun(core.SystemMobius, core.Options{Model: m, Topology: hw.Commodity(hw.RTX3090Ti, 4, 4)})
	thr2 := 2.0 / r2.StepTime
	thr8 := 8.0 / r8.StepTime
	if sc := thr8 / thr2; sc < 3.0 {
		t.Errorf("scaling 2->8 GPUs %.2fx, want near 4x", sc)
	}
}

func TestFigure15ShapeHolds(t *testing.T) {
	commodity := hw.Commodity(hw.RTX3090Ti, 2, 2)
	dc := hw.DataCenter(hw.V100, 4, 300*hw.GB)
	m := model.GPT15B.WithMicrobatch(2)
	mobC := mustRun(core.SystemMobius, core.Options{Model: m, Topology: commodity})
	dsDC := mustRun(core.SystemDSHetero, core.Options{Model: m, Topology: dc})
	mobDC := mustRun(core.SystemMobius, core.Options{Model: m, Topology: dc})
	if mobC.StepTime <= dsDC.StepTime {
		t.Errorf("commodity Mobius (%.2f) should be slower than DC DeepSpeed (%.2f)", mobC.StepTime, dsDC.StepTime)
	}
	if dsDC.StepTime >= mobDC.StepTime {
		t.Errorf("on the DC server DeepSpeed (%.2f) must beat Mobius (%.2f)", dsDC.StepTime, mobDC.StepTime)
	}
	if core.PricePerStep(commodity, mobC.StepTime) >= core.PricePerStep(dc, dsDC.StepTime) {
		t.Error("commodity Mobius must be cheaper per step than DC DeepSpeed")
	}
}

func TestFigure13Converges(t *testing.T) {
	tab := mustTable(t, func() (*Table, error) { return Figure13(20) })
	if len(tab.Rows) == 0 {
		t.Fatal("no convergence rows")
	}
	for _, row := range tab.Rows {
		if row[1] != row[2] {
			t.Fatalf("GPipe and Mobius losses differ at step %s: %s vs %s", row[0], row[1], row[2])
		}
	}
}

func TestTrafficByKindDecomposes(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	r := mustRun(core.SystemMobius, core.Options{Model: model.GPT8B, Topology: topo})
	kinds := TrafficByKind(r)
	var sum float64
	for _, v := range kinds {
		sum += v
	}
	if sum <= 0 {
		t.Fatal("no traffic recorded")
	}
	if kinds[trace.KindParamUpload] <= 0 || kinds[trace.KindGradFlush] <= 0 {
		t.Error("param uploads and gradient flushes must both appear")
	}
	if kinds[trace.KindCollective] != 0 {
		t.Error("Mobius must not use collectives")
	}
}

func TestAllRegistryComplete(t *testing.T) {
	all := All()
	for _, id := range Order() {
		if all[id] == nil {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(all) != len(Order()) {
		t.Errorf("registry size %d != order size %d", len(all), len(Order()))
	}
}

func TestAblationPrefetchHelps(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	off := mustRun(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo, DisablePrefetch: true})
	on := mustRun(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo})
	if on.StepTime > off.StepTime*1.005 {
		t.Errorf("prefetching must not slow the step: %.3f vs %.3f", on.StepTime, off.StepTime)
	}
	if off.StepTime < on.StepTime*1.03 {
		t.Errorf("disabling prefetch should cost noticeably: %.3f vs %.3f", off.StepTime, on.StepTime)
	}
}

func TestAblationPriorityNeverHurts(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 4)
	off := mustRun(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo, DisablePrefetchPriority: true})
	on := mustRun(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo})
	if on.StepTime > off.StepTime*1.02 {
		t.Errorf("priority must not hurt: %.3f vs %.3f", on.StepTime, off.StepTime)
	}
}

func TestAblationMicrobatchAmortization(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	m2 := mustRun(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo, Microbatches: 2})
	m8 := mustRun(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo, Microbatches: 8})
	if m8.StepTime/8 >= m2.StepTime/2 {
		t.Errorf("per-sample time must improve with more microbatches: %.3f vs %.3f",
			m8.StepTime/8, m2.StepTime/2)
	}
}

func TestDRAMCapacityEnforced(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	topo.DRAMBytes = 64e9 // too small for 15B model states
	if _, err := core.Run(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo}); err == nil {
		t.Fatal("model states exceeding DRAM must error")
	}
}

func TestChartsRenderWellFormedSVG(t *testing.T) {
	// The cheap charts (cached runs) must emit parseable SVG documents.
	for _, name := range []string{"figure2-cdf", "figure5-bars", "figure7-cdf", "figure14-scaling"} {
		svg, err := Charts()[name]()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
			t.Errorf("%s: not an SVG document", name)
		}
		if len(svg) < 500 {
			t.Errorf("%s: suspiciously small (%d bytes)", name, len(svg))
		}
	}
}

func TestRelatedWorkShape(t *testing.T) {
	tab := mustTable(t, RelatedWork)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// 15B row: ZeRO-Offload OOM, everything else trains.
	row := tab.Rows[2]
	if row[0] != "15B" || row[1] != "OOM" {
		t.Fatalf("15B row: %v", row)
	}
	for i := 2; i < 5; i++ {
		if row[i] == "OOM" {
			t.Fatalf("column %d must train 15B: %v", i, row)
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "b"}}
	tab.Add("1", "2")
	tab.Note("n")
	md := tab.Markdown()
	for _, want := range []string{"### T", "| a | b |", "| --- | --- |", "| 1 | 2 |", "_n_"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// TestResilienceMobiusDegradesLess is the acceptance check of the fault
// archetype: with one root complex degraded to 25% bandwidth on the
// 8-GPU topology, the run completes with no panics, both systems slow
// down (never speed up), and Mobius' degraded step time stays strictly
// below GPipe's degraded step time — the optimized plan loses part of
// its lead to the fault but never falls behind the baseline it beat.
// (GPipe's relative slowdown is near-zero because its parameters stay
// resident; the absolute ordering is the invariant worth holding.)
func TestResilienceMobiusDegradesLess(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 4, 4)
	spec := resilienceSpec()
	for _, m := range []model.Config{model.GPT3B, model.GPT8B} {
		deg := map[core.System]float64{}
		for _, sys := range []core.System{core.SystemGPipe, core.SystemMobius} {
			nom := mustRun(sys, core.Options{Model: m, Topology: topo})
			flt := mustRun(sys, core.Options{Model: m, Topology: topo, Faults: spec})
			if nom.OOM || flt.OOM {
				t.Fatalf("%s/%s: unexpected OOM (nominal %v, degraded %v)", sys, m.Name, nom.OOM, flt.OOM)
			}
			if flt.StepTime < nom.StepTime {
				t.Errorf("%s/%s: degraded step %.3f faster than nominal %.3f", sys, m.Name, flt.StepTime, nom.StepTime)
			}
			deg[sys] = flt.StepTime
		}
		if deg[core.SystemMobius] >= deg[core.SystemGPipe] {
			t.Errorf("%s: degraded Mobius step %.3fs must stay strictly below degraded GPipe's %.3fs",
				m.Name, deg[core.SystemMobius], deg[core.SystemGPipe])
		}
	}
}

// TestFigure5GridDeterministicAcrossParallelism re-runs the Mobius cells
// of the Figure 5 grid with planning parallelism 1 and 8 (MIP cache off,
// so the parallel run cannot reuse the serial solve) and requires
// bit-identical step times. This is the grid-level form of the
// plan-determinism invariant: concurrency must never change a result.
func TestFigure5GridDeterministicAcrossParallelism(t *testing.T) {
	mip := partition.MIPOptions{DisableCache: true, MaxStages: 8}
	for _, m := range []model.Config{model.GPT8B, model.GPT15B} {
		for _, topo := range commodityTopologies() {
			times := map[int]float64{}
			for _, par := range []int{1, 8} {
				r, err := core.Run(core.SystemMobius, core.Options{
					Model: m, Topology: topo, MIP: mip, Parallelism: par,
				})
				if err != nil {
					t.Fatalf("%s/%s parallelism %d: %v", m.Name, topo.Name, par, err)
				}
				times[par] = r.StepTime
			}
			if times[1] != times[8] {
				t.Errorf("%s/%s: step time %v serial vs %v parallel",
					m.Name, topo.Name, times[1], times[8])
			}
		}
	}
}

// TestPrewarmMatchesSerialAssembly checks that a concurrent Prewarm
// followed by serial table assembly renders the same Figure 5 table as
// assembly alone: the prewarm only fills the memoized cache, it must
// never change what the figures report.
func TestPrewarmMatchesSerialAssembly(t *testing.T) {
	before := mustTable(t, Figure5).String()
	Prewarm(8)
	after := mustTable(t, Figure5).String()
	if before != after {
		t.Errorf("Figure 5 changed after Prewarm:\n--- before ---\n%s\n--- after ---\n%s", before, after)
	}
}
