package experiments

import (
	"fmt"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/sim"
)

// integritySpec corrupts every transfer with the given per-attempt
// probability; the fixed seed keeps the sweep deterministic.
func integritySpec(prob float64) *fault.Spec {
	if prob == 0 {
		return nil
	}
	return &fault.Spec{
		Seed:        7,
		Corruptions: []fault.CorruptionFault{{Match: "*", Probability: prob}},
	}
}

// Integrity prices detection overhead against silent exposure: the same
// Mobius step, swept over corruption rates with checksums off and on.
//
// With checksums off the step time barely moves — corruption is free to
// "deliver" — but every corrupted payload taints its transfer and,
// transitively, the computes consuming it: the run completes with a
// wrong answer. With checksums on, every transfer pays the per-byte
// verification cost and corrupted deliveries retransmit (bounded
// budget), so the step slows down but nothing silent survives; a
// transfer whose whole budget is corrupted halts the run with a
// structured error instead of producing garbage.
func Integrity() (*Table, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	m := model.GPT3B
	t := &Table{
		Title:  "Integrity: detection overhead vs silent exposure (3B, Topo 2+2)",
		Header: []string{"corruption", "checksums", "step (s)", "overhead", "retransmits", "silent", "tainted"},
	}
	// One session serves the whole grid: the plan and the built step are
	// shared, and each cell replays the schedule under its own fault and
	// checksum configuration via sim.Reset.
	ses, err := core.NewMobiusSession(core.Options{Model: m, Topology: topo})
	if err != nil {
		return nil, err
	}
	base, err := ses.Run(nil, sim.ChecksumConfig{})
	if err != nil {
		return nil, err
	}
	baseStep := base.StepTime
	for _, prob := range []float64{0, 0.05, 0.2} {
		spec := integritySpec(prob)
		for _, checksums := range []bool{false, true} {
			var cs sim.ChecksumConfig
			label := "off"
			if checksums {
				cs = sim.ChecksumConfig{Enabled: true}
				label = "on"
			}
			r, err := ses.Run(spec, cs)
			if err != nil {
				return nil, err
			}
			step, overhead := secs(r.StepTime), ratio(r.StepTime/baseStep)
			if r.Corruption != nil {
				step = fmt.Sprintf("halted@%.2f", r.StepTime)
				overhead = "-"
			}
			t.Add(fmt.Sprintf("%.0f%%", prob*100), label, step, overhead,
				fmt.Sprintf("%d", r.Integrity.Retransmits),
				fmt.Sprintf("%d", r.Integrity.SilentCorruptions),
				fmt.Sprintf("%d", r.Integrity.TaintedTasks))
		}
	}
	t.Note("checksums price an end-to-end CRC at ~25 GB/s per delivery attempt; detected")
	t.Note("corruptions retransmit (budget 2), an exhausted budget halts the step instead")
	t.Note("of completing wrong; without checksums, tainted counts finished tasks downstream")
	t.Note("of a silently corrupted transfer — work a real run would have to throw away")
	return t, nil
}
