package experiments

import (
	"fmt"
	"time"

	"mobius/internal/elastic"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
)

// Recovery quantifies the elastic-recovery trade-off: a GPU dies
// mid-run and the three policies — restart from scratch, resume the old
// plan on the survivors, or re-plan for the surviving topology — pay
// different combinations of lost work, state migration and planning
// time, swept over the checkpoint interval.
func Recovery() (*Table, error) {
	return recoveryTable(30 * time.Second)
}

func recoveryTable(deadline time.Duration) (*Table, error) {
	const steps = 8
	m := model.GPT3B
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)

	// Price a fault-free step so the failure onset lands mid-run (during
	// step 6 of 8) at every checkpoint interval.
	clean, err := elastic.Run(elastic.Config{Model: m, Topology: topo, Steps: 1, PlanDeadline: deadline})
	if err != nil {
		return nil, fmt.Errorf("experiments: recovery baseline: %w", err)
	}
	onset := 5.5 * clean.PlainStep

	t := &Table{
		Title: fmt.Sprintf("Elastic recovery: %s on %s, gpu1 fails during step 6 of %d",
			m.Name, topo.Name, steps),
		Header: []string{"policy", "ckpt every", "total (s)", "overhead (s)", "lost work (s)", "migrate (s)", "re-plan (s)"},
	}
	type cell struct {
		policy elastic.Policy
		every  int
	}
	cells := []cell{{elastic.PolicyRestart, 0}}
	for _, p := range []elastic.Policy{elastic.PolicyResume, elastic.PolicyReplan} {
		for _, every := range []int{1, 2, 4} {
			cells = append(cells, cell{p, every})
		}
	}
	for _, c := range cells {
		rep, err := elastic.Run(elastic.Config{
			Model:           m,
			Topology:        topo,
			Steps:           steps,
			CheckpointEvery: c.every,
			Policy:          c.policy,
			PlanDeadline:    deadline,
			Faults:          &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: 1, At: onset}}},
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: recovery %s/%d: %w", c.policy, c.every, err)
		}
		every := fmt.Sprintf("%d", c.every)
		if c.policy == elastic.PolicyRestart {
			every = "-"
		}
		t.Add(string(c.policy), every,
			fmt.Sprintf("%.2f", rep.TotalTime),
			fmt.Sprintf("%.2f", rep.Overhead()),
			fmt.Sprintf("%.2f", rep.LostWork),
			fmt.Sprintf("%.2f", rep.MigrationSeconds),
			fmt.Sprintf("%.2f", rep.ReplanSeconds))
	}
	t.Note("fault-free run: %d x %.2fs = %.2fs; checkpoint = %.1f GB of model states over the simulated topology", steps, clean.PlainStep, float64(steps)*clean.PlainStep, clean.CheckpointBytes/1e9)
	t.Note("restart loses all finished work; resume keeps the old (now degraded) plan; re-plan pays planner time for faster survivor steps")
	t.Note("re-plan column is wall-clock planning time: it varies across machines and collapses to ~0 once the MIP cache is warm (the restart row pays the cold solve here); all other columns are simulated and deterministic")
	return t, nil
}
