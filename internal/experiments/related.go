package experiments

import (
	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/model"
)

// RelatedWork extends the evaluation with the §5 scale-up baselines:
// ZeRO-Offload (parameters replicated per GPU, CPU optimizer) and
// ZeRO-Infinity with NVMe offload. It demonstrates the two design points
// Mobius argues against: bounding the model scale by a single GPU's
// memory, and extending memory with an SSD whose bandwidth bottlenecks
// training (§3.1).
func RelatedWork() (*Table, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	t := &Table{
		Title:  "Related work (§5): scale-up baselines on Topo 2+2",
		Header: []string{"model", "ZeRO-Offload", "ZeRO-Infinity NVMe", "DS-hetero (DRAM)", "Mobius"},
	}
	sr := &stepRunner{}
	for _, m := range []model.Config{model.GPT3B, model.GPT8B, model.GPT15B} {
		cells := []string{m.Name}
		for _, sys := range []core.System{core.SystemZeROOffload, core.SystemZeRONVMe, core.SystemDSHetero, core.SystemMobius} {
			r := sr.run(sys, core.Options{Model: m, Topology: topo})
			if sr.err != nil {
				return nil, sr.err
			}
			if r.OOM {
				cells = append(cells, "OOM")
				continue
			}
			cells = append(cells, secs(r.StepTime))
		}
		t.Rows = append(t.Rows, cells)
	}
	t.Note("ZeRO-Offload's replicated FP16 parameters cap the model at one GPU's memory;")
	t.Note("NVMe offload trains everything but pays the SSD's %.1f GB/s on every gather", hw.CommoditySSDBW/1e9)
	return sr.table(t)
}
