package experiments

import (
	"testing"

	"mobius/internal/cluster"
)

// TestOverloadSweepShape asserts the robustness claims of the overload
// experiment on the raw sweep reports:
//
//  1. every point conserves jobs (checked inside OverloadSweep);
//  2. shedding lands exclusively on the best-effort class, at every
//     load and with admission on or off;
//  3. with admission on, the p99 queueing delay of accepted jobs stays
//     bounded as load quadruples — no class's p99 wait exceeds the
//     best-effort deadline by more than the patience windows allow;
//  4. admission converts overload into rejections rather than delay:
//     at the top multiplier the admission-on fleet rejects more of the
//     paid classes up front and its worst-class p99 wait is no worse
//     than the admission-off fleet's.
func TestOverloadSweepShape(t *testing.T) {
	points, err := OverloadSweep(cluster.NewStepCache())
	if err != nil {
		t.Fatal(err)
	}
	byName := func(r *cluster.Report, name string) cluster.ClassStats {
		for _, c := range r.Classes {
			if c.Name == name {
				return c
			}
		}
		t.Fatalf("class %q missing from report", name)
		return cluster.ClassStats{}
	}
	worstP99 := func(r *cluster.Report) float64 {
		w := 0.0
		for _, c := range r.Classes {
			if c.WaitP99 > w {
				w = c.WaitP99
			}
		}
		return w
	}

	var topOn, topOff *cluster.Report
	for _, p := range points {
		r := p.Report
		// (2) sheds only ever hit the lowest SLO class.
		if g, s := byName(r, "gold"), byName(r, "silver"); g.Shed != 0 || s.Shed != 0 {
			t.Errorf("%gx admission=%v: paid classes shed (gold %d, silver %d)",
				p.Multiplier, p.Admission, g.Shed, s.Shed)
		}
		if p.Multiplier == 4 {
			if p.Admission {
				topOn = r
			} else {
				topOff = r
			}
		}
		// (3) bounded accepted-job delay under admission: even at 4x the
		// longest per-class p99 wait stays under the structural bound of
		// a clipped queue — QueueCap jobs of at most ~10s of execution
		// each — instead of growing with the offered load.
		if p.Admission {
			if w := worstP99(r); w > 60 {
				t.Errorf("%gx admission=on: worst per-class p99 wait %.1fs, want bounded by the clipped queue depth (~60s)",
					p.Multiplier, w)
			}
		}
	}
	if topOn == nil || topOff == nil {
		t.Fatal("sweep missing the 4x points")
	}
	// (4) overload shows up as early rejection, not queue rot.
	onRej := byName(topOn, "gold").RejectedAdmission + byName(topOn, "silver").RejectedAdmission
	if onRej == 0 {
		t.Error("4x admission=on: token buckets admitted everything; budgets are not binding")
	}
	if offAdm := topOff.Classes[0].RejectedAdmission; offAdm != 0 {
		t.Errorf("4x admission=off: %d admission rejections with no budgets configured", offAdm)
	}
	if worstP99(topOn) > worstP99(topOff) {
		t.Errorf("4x: admission-on worst p99 %.1fs exceeds admission-off %.1fs; admission failed to bound delay",
			worstP99(topOn), worstP99(topOff))
	}
	if topOn.Jain < topOff.Jain {
		t.Errorf("4x: admission-on Jain %.3f below admission-off %.3f; budgets should protect per-class goodput",
			topOn.Jain, topOff.Jain)
	}
	// The shock absorber absorbs: best-effort sheds under overload.
	if be := byName(topOn, "best-effort"); be.Shed == 0 {
		t.Error("4x admission=on: best-effort shed nothing; the sweep is not overloaded")
	}
}

func TestOverloadTableRenders(t *testing.T) {
	tab := mustTable(t, Overload)
	if got, want := len(tab.Rows), 8; got != want {
		t.Errorf("overload table rows: %d, want %d (4 loads x 2 admission settings)", got, want)
	}
}
