package experiments

import (
	"fmt"
	"time"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/mapping"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/profile"
)

// Figure9 reproduces the partition-algorithm ablation: per-step time of
// the MIP partition against the maximum-stage and minimum-stage
// baselines, across microbatch sizes, on Topo 2+2 (normalized to MIP).
func Figure9() (*Table, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	t := &Table{
		Title:  "Figure 9: per-step time by partition algorithm (normalized to MIP)",
		Header: []string{"model", "microbatch", "MIP (s)", "max-stage", "min-stage"},
	}
	cases := []struct {
		m   model.Config
		mbs []int
	}{
		{model.GPT8B, []int{2, 4, 8}},
		{model.GPT15B, []int{1, 2, 3}},
	}
	sr := &stepRunner{}
	worst := 1.0
	for _, c := range cases {
		for _, mbs := range c.mbs {
			m := c.m.WithMicrobatch(mbs)
			mip := sr.run(core.SystemMobius, core.Options{Model: m, Topology: topo, PartitionAlgo: partition.AlgoMIP})
			maxS := sr.run(core.SystemMobius, core.Options{Model: m, Topology: topo, PartitionAlgo: partition.AlgoMaxStage})
			minS := sr.run(core.SystemMobius, core.Options{Model: m, Topology: topo, PartitionAlgo: partition.AlgoMinStage})
			if sr.err != nil {
				return nil, sr.err
			}
			t.Add(m.Name, fmt.Sprintf("%d", mbs), secs(mip.StepTime),
				ratio(maxS.StepTime/mip.StepTime), ratio(minS.StepTime/mip.StepTime))
			for _, r := range []float64{maxS.StepTime / mip.StepTime, minS.StepTime / mip.StepTime} {
				if r > worst {
					worst = r
				}
			}
		}
	}
	t.Note("MIP partition saves up to %.0f%% vs the worst baseline (paper: up to 51%%)", (1-1/worst)*100)
	return sr.table(t)
}

// Figure10 reproduces the mapping ablation: cross vs sequential mapping
// on an 8-GPU server where every four GPUs share a root complex.
func Figure10() (*Table, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 4, 4)
	t := &Table{
		Title:  "Figure 10: per-step time, cross vs sequential mapping (8 GPUs, Topo 4+4)",
		Header: []string{"model", "microbatch", "sequential (s)", "cross (s)", "improvement"},
	}
	cases := []struct {
		m   model.Config
		mbs []int
	}{
		{model.GPT8B, []int{2, 4, 8}},
		{model.GPT15B, []int{1, 2, 3}},
	}
	sr := &stepRunner{}
	best := 0.0
	for _, c := range cases {
		for _, mbs := range c.mbs {
			m := c.m.WithMicrobatch(mbs)
			seq := sr.run(core.SystemMobius, core.Options{Model: m, Topology: topo, MappingScheme: mapping.SchemeSequential})
			cross := sr.run(core.SystemMobius, core.Options{Model: m, Topology: topo, MappingScheme: mapping.SchemeCross})
			if sr.err != nil {
				return nil, sr.err
			}
			imp := 1 - cross.StepTime/seq.StepTime
			if imp > best {
				best = imp
			}
			t.Add(m.Name, fmt.Sprintf("%d", mbs), secs(seq.StepTime), secs(cross.StepTime), pct(imp))
		}
	}
	t.Note("paper: cross mapping reduces per-step time by 11.3-18.1%%; best here %.1f%%", best*100)
	return sr.table(t)
}

// Figure11 reproduces the bandwidth CDFs behind Figure 10: cross mapping
// moves more data at high bandwidth.
func Figure11() (*Table, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 4, 4)
	t := &Table{
		Title:  "Figure 11: bandwidth CDF by mapping scheme (8 GPUs, Topo 4+4)",
		Header: []string{"model", "microbatch", "seq median GB/s", "cross median GB/s", "seq >12GB/s", "cross >12GB/s"},
	}
	cases := []struct {
		m   model.Config
		mbs []int
	}{
		{model.GPT8B, []int{2, 4, 8}},
		{model.GPT15B, []int{1, 2, 3}},
	}
	sr := &stepRunner{}
	for _, c := range cases {
		for _, mbs := range c.mbs {
			m := c.m.WithMicrobatch(mbs)
			seq := sr.run(core.SystemMobius, core.Options{Model: m, Topology: topo, MappingScheme: mapping.SchemeSequential})
			cross := sr.run(core.SystemMobius, core.Options{Model: m, Topology: topo, MappingScheme: mapping.SchemeCross})
			t.Add(m.Name, fmt.Sprintf("%d", mbs),
				fmt.Sprintf("%.2f", seq.BandwidthCDF.Median()/1e9),
				fmt.Sprintf("%.2f", cross.BandwidthCDF.Median()/1e9),
				pct(seq.BandwidthCDF.FractionAbove(12e9)),
				pct(cross.BandwidthCDF.FractionAbove(12e9)))
		}
	}
	t.Note("paper: with cross mapping more data transfers at higher bandwidth")
	return sr.table(t)
}

// Figure12 reproduces the Mobius overhead breakdown: profiling time (with
// layer similarity), MIP solving time, and cross-mapping search time, on
// Topo 1+3. Profiling is the simulated GPU time of the compressed
// profile; solver and mapping are real wall-clock times with the cache
// disabled.
func Figure12() (*Table, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 1, 3)
	t := &Table{
		Title:  "Figure 12: Mobius planning overhead (Topo 1+3)",
		Header: []string{"model", "profiling (s)", "MIP solve (s)", "cross map (s)", "stages", "B&B nodes"},
	}
	for _, m := range []model.Config{model.GPT8B, model.GPT15B, model.GPT51B} {
		prof, err := profile.Run(m, hw.RTX3090Ti, profile.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 12 profile %s: %w", m.Name, err)
		}
		params := partition.Params{
			Profile:   prof,
			NumGPUs:   topo.NumGPUs(),
			GPUMem:    topo.GPUMem(0) * core.UsableMemFraction,
			Bandwidth: core.PlanBandwidth(topo),
		}
		part, stats, err := partition.MIP(params, partition.MIPOptions{DisableCache: true})
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 12 partition %s: %w", m.Name, err)
		}
		start := time.Now()
		if _, err := mapping.Cross(topo, part.NumStages()); err != nil {
			return nil, fmt.Errorf("experiments: figure 12 mapping %s: %w", m.Name, err)
		}
		mapTime := time.Since(start)
		t.Add(m.Name,
			fmt.Sprintf("%.2f", prof.Cost),
			fmt.Sprintf("%.2f", stats.SolveTime.Seconds()),
			fmt.Sprintf("%.4f", mapTime.Seconds()),
			fmt.Sprintf("%d", part.NumStages()),
			fmt.Sprintf("%d", stats.Nodes))
	}
	t.Note("paper: overheads are negligible against fine-tuning runs of hours to days;")
	t.Note("8B and 15B profile in similar time thanks to layer similarity")
	return t, nil
}
