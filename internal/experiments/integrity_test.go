package experiments

import (
	"testing"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/sim"
)

// TestIntegrityDetectionVsExposure is the acceptance check of the
// integrity experiment: corruption without checksums silently taints
// downstream work at no time cost, while checksums convert every
// corruption into visible overhead (or a halt) and leave nothing silent.
func TestIntegrityDetectionVsExposure(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	m := model.GPT3B
	base := mustRun(core.SystemMobius, core.Options{Model: m, Topology: topo})
	spec := integritySpec(0.05)

	off := mustRun(core.SystemMobius, core.Options{Model: m, Topology: topo, Faults: spec})
	if off.Corruption != nil {
		t.Fatal("checksums off must never halt on corruption")
	}
	if off.Integrity.SilentCorruptions == 0 {
		t.Fatal("5% corruption produced no silent corruptions; the experiment shows nothing")
	}
	if off.Integrity.TaintedTasks < off.Integrity.SilentCorruptions {
		t.Fatalf("taint must at least cover the corrupted transfers: %d tainted, %d corrupted",
			off.Integrity.TaintedTasks, off.Integrity.SilentCorruptions)
	}
	if off.Integrity.Retransmits != 0 || off.Integrity.ChecksumCost != 0 {
		t.Fatalf("checksums off must not pay detection costs: %+v", off.Integrity)
	}

	on := mustRun(core.SystemMobius, core.Options{Model: m, Topology: topo, Faults: spec,
		Checksums: sim.ChecksumConfig{Enabled: true}})
	if on.Integrity.SilentCorruptions != 0 || on.Integrity.TaintedTasks != 0 {
		t.Fatalf("checksums on let corruption through silently: %+v", on.Integrity)
	}
	if on.Corruption == nil {
		if on.Integrity.Retransmits == 0 {
			t.Fatal("checksums on with 5% corruption should retransmit")
		}
		if on.StepTime <= base.StepTime {
			t.Fatalf("detection must cost time: %.4fs vs nominal %.4fs", on.StepTime, base.StepTime)
		}
	}

	tab := mustTable(t, Integrity)
	if len(tab.Rows) != 6 {
		t.Fatalf("integrity table rows: %d, want 6 (3 rates x on/off)", len(tab.Rows))
	}
}
