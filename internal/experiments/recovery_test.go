package experiments

import (
	"strconv"
	"testing"
	"time"
)

// TestRecoveryTableShape runs the recovery experiment with a short
// planning deadline (the re-plans degrade to the greedy fallback, which
// is fine — the table's structure and orderings are what's pinned):
// restart plus {resume, replan} x three checkpoint intervals, recovery
// is never free, and a denser checkpoint cadence never loses more work.
func TestRecoveryTableShape(t *testing.T) {
	tab, err := recoveryTable(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("want 7 rows (restart + 2 policies x 3 intervals), got %d", len(tab.Rows))
	}
	col := func(row []string, i int) float64 {
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			t.Fatalf("row %v col %d: %v", row, i, err)
		}
		return v
	}
	lostAt := map[string]float64{} // "policy/every" -> lost work
	for _, row := range tab.Rows {
		if over := col(row, 3); over <= 0 {
			t.Errorf("%s/%s: recovery overhead %.2f should be positive", row[0], row[1], over)
		}
		lostAt[row[0]+"/"+row[1]] = col(row, 4)
	}
	for _, policy := range []string{"resume", "replan"} {
		if lostAt[policy+"/1"] > lostAt[policy+"/4"] {
			t.Errorf("%s: checkpointing every step loses more work (%.2fs) than every 4 (%.2fs)",
				policy, lostAt[policy+"/1"], lostAt[policy+"/4"])
		}
	}
	// Restart discards every finished step; with checkpoints the failure
	// costs at most the interval since the last snapshot.
	if lostAt["restart/-"] <= lostAt["replan/1"] {
		t.Errorf("restart should lose more work (%.2fs) than replan with per-step checkpoints (%.2fs)",
			lostAt["restart/-"], lostAt["replan/1"])
	}
}
