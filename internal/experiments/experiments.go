package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/plansvc"
	"mobius/internal/sim"
	"mobius/internal/trace"
)

// planService is the shared planner for every experiment cell. The
// memoized runCache dedups identical (system, model, topology) cells,
// but ablation, fault and checksum variants of the same cell still
// re-plan the same inputs; routing them through one plan service turns
// those repeat solves into validated cache hits. Options.Planner is not
// part of runKey for the same reason it is excluded from plan cache
// keys: a correct planner never changes what is planned. Warm starting
// is off here: every distinct problem in the grids is solved exactly
// once (then cached), and a cross-topology incumbent that prunes a
// candidate to non-optimality forces the outcome-preserving cold
// re-solve — all cost, no reuse.
var planService = plansvc.New(plansvc.Config{DisableWarm: true})

// PlanMetrics exposes the shared plan service's counters so drivers can
// report how much planning work the grids actually deduplicated.
func PlanMetrics() plansvc.Metrics { return planService.Metrics() }

// Topologies of the main evaluation (§4 "GPU topologies"), ordered from
// least to most communication contention.
func commodityTopologies() []*hw.Topology {
	return []*hw.Topology{
		hw.Commodity(hw.RTX3090Ti, 2, 2),
		hw.Commodity(hw.RTX3090Ti, 1, 3),
		hw.Commodity(hw.RTX3090Ti, 4),
	}
}

// runKey caches simulation results across experiments: many figures
// reuse the same (system, model, topology) run. The microbatch override
// and fault fingerprint keep ablation and degraded runs from colliding
// with the nominal cells.
type runKey struct {
	sys    core.System
	model  string
	mbs    int
	M      int
	topo   string
	algo   string
	mapS   string
	noPri  bool
	noPre  bool
	faults string
	checks sim.ChecksumConfig
}

var (
	runMu    sync.Mutex
	runCache = map[runKey]*core.StepReport{}
)

// run executes (with memoization) one training-step simulation.
func run(sys core.System, opts core.Options) (*core.StepReport, error) {
	key := runKey{
		sys:    sys,
		model:  opts.Model.Name,
		mbs:    opts.Model.MicrobatchSize,
		M:      opts.Microbatches,
		topo:   opts.Topology.Name,
		algo:   opts.PartitionAlgo,
		mapS:   opts.MappingScheme,
		noPri:  opts.DisablePrefetchPriority,
		noPre:  opts.DisablePrefetch,
		faults: opts.Faults.Fingerprint(),
		checks: opts.Checksums,
	}
	runMu.Lock()
	if r, ok := runCache[key]; ok {
		runMu.Unlock()
		return r, nil
	}
	runMu.Unlock()
	if opts.Planner == nil {
		opts.Planner = planService
	}
	r, err := core.Run(sys, opts)
	if err != nil {
		return nil, err
	}
	runMu.Lock()
	runCache[key] = r
	runMu.Unlock()
	return r, nil
}

// stepRunner collects the first simulation error so the figure builders
// keep their straight-line shape. After an error every subsequent run
// returns an empty report (whose accessors are all zero-safe) and the
// builder's final Err check discards the half-built table.
type stepRunner struct{ err error }

func (sr *stepRunner) run(sys core.System, opts core.Options) *core.StepReport {
	if sr.err != nil {
		return &core.StepReport{}
	}
	r, err := run(sys, opts)
	if err != nil {
		sr.err = fmt.Errorf("experiments: %s on %s/%s: %w", sys, opts.Model.Name, opts.Topology.Name, err)
		return &core.StepReport{}
	}
	return r
}

// table returns (t, nil) or (nil, err) depending on whether any run
// failed; builders end with `return sr.table(t)`.
func (sr *stepRunner) table(t *Table) (*Table, error) {
	if sr.err != nil {
		return nil, sr.err
	}
	return t, nil
}

// Prewarm fills the memoized run cache for the main evaluation grid —
// every (system, model, topology) cell behind Figures 2 and 5-8 —
// using a bounded worker pool. parallelism caps the concurrent
// simulations (0 means GOMAXPROCS). The figure tables are still
// assembled serially from the cache afterwards, so their output (and
// the order any failure surfaces in) is identical with or without a
// prewarm; errors are deliberately dropped here because the assembly
// re-executes the failing cell and reports the error itself.
func Prewarm(parallelism int) {
	type cell struct {
		sys  core.System
		opts core.Options
	}
	var cells []cell
	for _, m := range model.Table3() {
		for _, topo := range commodityTopologies() {
			for _, sys := range core.Systems() {
				cells = append(cells, cell{sys, core.Options{Model: m, Topology: topo}})
			}
		}
	}

	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	work := make(chan cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				run(c.sys, c.opts) //nolint:errcheck // see doc comment
			}
		}()
	}
	for _, c := range cells {
		work <- c
	}
	close(work)
	wg.Wait()
}

// Figure2 reproduces the motivation plot: the GPU communication
// bandwidth CDF of DeepSpeed fine-tuning the 15B model on a 4x3090-Ti
// server where every two GPUs share a root complex.
func Figure2() (*Table, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	sr := &stepRunner{}
	r := sr.run(core.SystemDSHetero, core.Options{Model: model.GPT15B, Topology: topo})
	t := &Table{
		Title:  "Figure 2: DeepSpeed bandwidth CDF (15B, 4x3090-Ti, 2+2)",
		Header: []string{"quantile", "bandwidth GB/s"},
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		t.Add(fmt.Sprintf("p%02.0f", q*100), fmt.Sprintf("%.2f", r.BandwidthCDF.Quantile(q)/1e9))
	}
	t.Note("max observed bandwidth %.1f GB/s (root complex capacity 13.1)", r.BandwidthCDF.Max()/1e9)
	t.Note("paper: most data below ~6 GB/s, half the root complex bandwidth")
	return sr.table(t)
}

// Figure5 reproduces the headline comparison: per-step training time of
// GPipe, DeepSpeed (both modes) and Mobius across all four models and
// three topologies.
func Figure5() (*Table, error) {
	t := &Table{
		Title:  "Figure 5: per-step time (s) by system, model, topology",
		Header: []string{"model", "topology", "GPipe", "DS-pipeline", "DS-hetero", "Mobius", "Mobius speedup"},
	}
	sr := &stepRunner{}
	var minSp, maxSp float64
	for _, m := range model.Table3() {
		for _, topo := range commodityTopologies() {
			cells := []string{m.Name, topo.Name}
			var ds, mob float64
			for _, sys := range core.Systems() {
				r := sr.run(sys, core.Options{Model: m, Topology: topo})
				if r.OOM {
					cells = append(cells, "OOM")
					continue
				}
				cells = append(cells, secs(r.StepTime))
				switch sys {
				case core.SystemDSHetero:
					ds = r.StepTime
				case core.SystemMobius:
					mob = r.StepTime
				}
			}
			if sr.err != nil {
				return nil, sr.err
			}
			sp := ds / mob
			cells = append(cells, ratio(sp))
			t.Rows = append(t.Rows, cells)
			if minSp == 0 || sp < minSp {
				minSp = sp
			}
			if sp > maxSp {
				maxSp = sp
			}
		}
	}
	t.Note("Mobius speedup over DeepSpeed-hetero: %.1f-%.1fx (paper: 3.8-5.1x)", minSp, maxSp)
	return sr.table(t)
}

// Figure6 reproduces the communication-traffic comparison: bytes moved
// per step relative to the model size.
func Figure6() (*Table, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	t := &Table{
		Title:  "Figure 6: communication traffic per step (GB)",
		Header: []string{"model", "model size", "DeepSpeed", "Mobius", "DS ratio", "Mobius ratio"},
	}
	sr := &stepRunner{}
	for _, m := range []model.Config{model.GPT8B, model.GPT15B, model.GPT51B} {
		ds := sr.run(core.SystemDSHetero, core.Options{Model: m, Topology: topo})
		mob := sr.run(core.SystemMobius, core.Options{Model: m, Topology: topo})
		size := m.ParamBytesFP32()
		t.Add(m.Name, gb(size), gb(ds.TrafficBytes), gb(mob.TrafficBytes),
			ratio(ds.TrafficBytes/size), ratio(mob.TrafficBytes/size))
	}
	t.Note("paper: DeepSpeed ~7.3x model size, Mobius ~1.8x; the red line is the FP32 model size")
	return sr.table(t)
}

// Figure7 reproduces the bandwidth CDF grid: DeepSpeed vs Mobius across
// three models and three topologies (median and fraction of data above
// 12 GB/s).
func Figure7() (*Table, error) {
	t := &Table{
		Title:  "Figure 7: bandwidth CDF summary (DeepSpeed vs Mobius)",
		Header: []string{"model", "topology", "DS median GB/s", "Mobius median GB/s", "DS >12GB/s", "Mobius >12GB/s"},
	}
	sr := &stepRunner{}
	for _, m := range []model.Config{model.GPT8B, model.GPT15B, model.GPT51B} {
		for _, topo := range commodityTopologies() {
			ds := sr.run(core.SystemDSHetero, core.Options{Model: m, Topology: topo})
			mob := sr.run(core.SystemMobius, core.Options{Model: m, Topology: topo})
			t.Add(m.Name, topo.Name,
				fmt.Sprintf("%.2f", ds.BandwidthCDF.Median()/1e9),
				fmt.Sprintf("%.2f", mob.BandwidthCDF.Median()/1e9),
				pct(ds.BandwidthCDF.FractionAbove(12e9)),
				pct(mob.BandwidthCDF.FractionAbove(12e9)))
		}
	}
	t.Note("paper: Mobius moves >half its data above 12 GB/s; DeepSpeed mostly below 6 GB/s")
	return sr.table(t)
}

// Figure8 reproduces the non-overlapped communication proportion for the
// 15B and 51B models across topologies.
func Figure8() (*Table, error) {
	t := &Table{
		Title:  "Figure 8: proportion of non-overlapped communication time",
		Header: []string{"model", "topology", "DeepSpeed", "Mobius", "reduction"},
	}
	sr := &stepRunner{}
	for _, m := range []model.Config{model.GPT15B, model.GPT51B} {
		for _, topo := range commodityTopologies() {
			ds := sr.run(core.SystemDSHetero, core.Options{Model: m, Topology: topo})
			mob := sr.run(core.SystemMobius, core.Options{Model: m, Topology: topo})
			t.Add(m.Name, topo.Name, pct(ds.NonOverlapFraction), pct(mob.NonOverlapFraction),
				pct((ds.NonOverlapFraction-mob.NonOverlapFraction)/ds.NonOverlapFraction))
		}
	}
	t.Note("paper: Mobius reduces the non-overlapped proportion by up to 46%%")
	return sr.table(t)
}

// TrafficByKind decomposes one system's step traffic, an auxiliary view
// used by the examples and tests.
func TrafficByKind(r *core.StepReport) map[trace.Kind]float64 {
	out := map[trace.Kind]float64{}
	if r.Recorder == nil {
		return out
	}
	for _, k := range []trace.Kind{
		trace.KindParamUpload, trace.KindActOffload, trace.KindActUpload,
		trace.KindActTransfer, trace.KindGradFlush, trace.KindCollective,
	} {
		kind := k
		out[k] = r.Recorder.TotalBytes(func(tag trace.Tag) bool { return tag.Kind == kind })
	}
	return out
}
