package experiments

import (
	"fmt"
	"math"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/nn"
	"mobius/internal/textgen"
	"mobius/internal/train"
)

// Table1 prints the GPU spec and price comparison motivating the paper.
func Table1() (*Table, error) {
	t := &Table{
		Title:  "Table 1: commodity vs data-center GPU",
		Header: []string{"", "3090-Ti", "A100"},
	}
	g, a := hw.RTX3090Ti, hw.A100
	t.Add("Price", fmt.Sprintf("$%.0f", g.PriceUSD), fmt.Sprintf("$%.0f", a.PriceUSD))
	t.Add("FP16 tensor TFLOPS", fmt.Sprintf("%.0f", g.FP16TFLOPS), fmt.Sprintf("%.0f", a.FP16TFLOPS))
	t.Add("Memory (GB)", fmt.Sprintf("%.0f", g.MemBytes/1e9), fmt.Sprintf("%.0f", a.MemBytes/1e9))
	t.Add("GPUDirect P2P", fmt.Sprintf("%v", g.P2P), fmt.Sprintf("%v", a.P2P))
	t.Note("a 3090-Ti delivers comparable tensor throughput at ~1/7 the price")
	return t, nil
}

// Table3Models prints the evaluation model configurations with derived
// parameter counts.
func Table3Models() (*Table, error) {
	t := &Table{
		Title:  "Table 3: model configurations",
		Header: []string{"name", "params (B)", "heads", "hidden", "layers", "microbatch"},
	}
	for _, m := range model.Table3() {
		t.Add(m.Name,
			fmt.Sprintf("%.1f", float64(m.TotalParams())/1e9),
			fmt.Sprintf("%d", m.Heads),
			fmt.Sprintf("%d", m.Hidden),
			fmt.Sprintf("%d", m.Layers),
			fmt.Sprintf("%d", m.MicrobatchSize))
	}
	t.Note("parameter counts are derived from the architecture (12h^2 per block + untied embeddings);")
	t.Note("the \"15B\" architecture of Table 3 derives to ~13B — see EXPERIMENTS.md")
	return t, nil
}

// Figure13 reproduces the convergence experiment on the real training
// substrate: GPipe and the Mobius execution order fine-tune the same
// small GPT on the synthetic corpus; their loss curves must overlap.
func Figure13(steps int) (*Table, error) {
	if steps <= 0 {
		steps = 120
	}
	cfg := nn.Config{Vocab: 64, Seq: 16, Dim: 32, Heads: 4, Layers: 4, Seed: 7}
	corpus, err := textgen.Generate(cfg.Vocab, 30000, 13)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 13 corpus: %w", err)
	}
	mG, _ := nn.NewGPT(cfg)
	mM, _ := nn.NewGPT(cfg)
	tG, err := train.New(mG, 3, 3e-3, train.ModeGPipe)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 13 trainer: %w", err)
	}
	tM, err := train.New(mM, 3, 3e-3, train.ModeMobius)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 13 trainer: %w", err)
	}

	t := &Table{
		Title:  fmt.Sprintf("Figure 13: training loss, GPipe vs Mobius (%d steps)", steps),
		Header: []string{"step", "GPipe loss", "Mobius loss", "abs diff"},
	}
	var maxDiff float64
	every := steps / 10
	if every == 0 {
		every = 1
	}
	for step := 0; step < steps; step++ {
		var batches []nn.Batch
		for i := 0; i < 4; i++ {
			batches = append(batches, corpus.Batch(cfg.Seq, 2, step, i))
		}
		lg := tG.Step(batches)
		lm := tM.Step(batches)
		d := math.Abs(lg - lm)
		if d > maxDiff {
			maxDiff = d
		}
		if step%every == 0 || step == steps-1 {
			t.Add(fmt.Sprintf("%d", step), fmt.Sprintf("%.4f", lg), fmt.Sprintf("%.4f", lm), fmt.Sprintf("%.2e", d))
		}
	}
	t.Note("max |GPipe - Mobius| loss difference over %d steps: %.3g", steps, maxDiff)
	t.Note("paper: the curves almost overlap; here the execution orders are numerically identical")
	return t, nil
}

// Figure14 reproduces the scalability sweep: 15B model, microbatch 1,
// 2-8 GPUs with each half under a separate root complex; the batch grows
// with the GPU count.
func Figure14() (*Table, error) {
	t := &Table{
		Title:  "Figure 14: Mobius scalability (15B, microbatch 1)",
		Header: []string{"GPUs", "step time (s)", "samples/s", "speedup", "perfect"},
	}
	m := model.GPT15B.WithMicrobatch(1)
	sr := &stepRunner{}
	var base float64
	for _, n := range []int{2, 4, 6, 8} {
		topo := hw.Commodity(hw.RTX3090Ti, n/2, n-n/2)
		r := sr.run(core.SystemMobius, core.Options{Model: m, Topology: topo})
		if sr.err != nil {
			return nil, sr.err
		}
		thr := float64(n) * float64(m.MicrobatchSize) / r.StepTime // M = n microbatches
		if n == 2 {
			base = thr
		}
		t.Add(fmt.Sprintf("%d", n), secs(r.StepTime),
			fmt.Sprintf("%.2f", thr), ratio(thr/base), ratio(float64(n)/2))
	}
	t.Note("paper: Mobius meets or exceeds linear scaling; odd splits degrade slightly")
	return sr.table(t)
}

// Figure15 reproduces the data-center comparison: per-step time and
// price for DeepSpeed and Mobius on the commodity 4x3090-Ti server vs
// the 4xV100 NVLink server.
func Figure15() (*Table, error) {
	commodity := hw.Commodity(hw.RTX3090Ti, 2, 2)
	dc := hw.DataCenter(hw.V100, 4, 300*hw.GB)
	t := &Table{
		Title:  "Figure 15: time and price per step, commodity vs data center (mbs 2)",
		Header: []string{"model", "system", "server", "step (s)", "price ($/step)"},
	}
	sr := &stepRunner{}
	var mobC, dsDC float64
	for _, m := range []model.Config{model.GPT8B.WithMicrobatch(2), model.GPT15B.WithMicrobatch(2)} {
		for _, sys := range []core.System{core.SystemDSHetero, core.SystemMobius} {
			for _, topo := range []*hw.Topology{dc, commodity} {
				r := sr.run(sys, core.Options{Model: m, Topology: topo})
				server := "commodity"
				if topo.HasP2P() {
					server = "data center"
				}
				t.Add(m.Name, string(sys), server, secs(r.StepTime),
					fmt.Sprintf("$%.5f", core.PricePerStep(topo, r.StepTime)))
				if m.Name == "15B" && sys == core.SystemMobius && !topo.HasP2P() {
					mobC = r.StepTime
				}
				if m.Name == "15B" && sys == core.SystemDSHetero && topo.HasP2P() {
					dsDC = r.StepTime
				}
			}
		}
	}
	if sr.err != nil {
		return nil, sr.err
	}
	slow := mobC/dsDC - 1
	priceCut := 1 - core.PricePerStep(commodity, mobC)/core.PricePerStep(dc, dsDC)
	t.Note("Mobius on commodity vs DeepSpeed on DC (15B): %.0f%% slower, %.0f%% cheaper per step", slow*100, priceCut*100)
	t.Note("paper: +42%% time, -43%% price")
	return t, nil
}

// Figure16 reproduces the GPU-CPU bandwidth CDFs on the data-center
// server.
func Figure16() (*Table, error) {
	dc := hw.DataCenter(hw.V100, 4, 300*hw.GB)
	t := &Table{
		Title:  "Figure 16: GPU-CPU bandwidth CDF on the data-center server (mbs 2)",
		Header: []string{"model", "system", "median GB/s", "p90 GB/s"},
	}
	sr := &stepRunner{}
	for _, m := range []model.Config{model.GPT8B.WithMicrobatch(2), model.GPT15B.WithMicrobatch(2)} {
		for _, sys := range []core.System{core.SystemDSHetero, core.SystemMobius} {
			r := sr.run(sys, core.Options{Model: m, Topology: dc})
			t.Add(m.Name, string(sys),
				fmt.Sprintf("%.2f", r.HostLinkCDF.Median()/1e9),
				fmt.Sprintf("%.2f", r.HostLinkCDF.Quantile(0.9)/1e9))
		}
	}
	t.Note("paper: on the DC server the contention gap between the systems narrows,")
	t.Note("but Mobius' host traffic still sees less simultaneous transfer")
	return sr.table(t)
}

// All returns every experiment generator keyed by its paper id, for the
// CLI. Generators return an error instead of panicking; the CLI converts
// it into a non-zero exit code.
func All() map[string]func() (*Table, error) {
	return map[string]func() (*Table, error){
		"table1":   Table1,
		"table3":   Table3Models,
		"figure2":  Figure2,
		"figure5":  Figure5,
		"figure6":  Figure6,
		"figure7":  Figure7,
		"figure8":  Figure8,
		"figure9":  Figure9,
		"figure10": Figure10,
		"figure11": Figure11,
		"figure12": Figure12,
		"figure13": func() (*Table, error) { return Figure13(120) },
		"figure14": Figure14,
		"figure15": Figure15,
		"figure16": Figure16,
		// Ablations beyond the paper's own figures.
		"ablation-prefetch":      AblationPrefetch,
		"ablation-priority":      AblationPriority,
		"ablation-microbatches":  AblationMicrobatches,
		"related-work":           RelatedWork,
		"convergence-async":      ConvergenceAsync,
		"ablation-checkpointing": AblationCheckpointing,
		"resilience":             Resilience,
		"recovery":               Recovery,
		"integrity":              Integrity,
		"overload":               Overload,
		"restart":                Restart,
	}
}

// Order lists experiment ids in paper order.
func Order() []string {
	return []string{
		"table1", "table3", "figure2", "figure5", "figure6", "figure7",
		"figure8", "figure9", "figure10", "figure11", "figure12",
		"figure13", "figure14", "figure15", "figure16",
		"ablation-prefetch", "ablation-priority", "ablation-microbatches",
		"related-work", "convergence-async", "ablation-checkpointing",
		"resilience", "recovery", "integrity", "overload", "restart",
	}
}
