package experiments

import (
	"testing"

	"mobius/internal/cluster"
)

// TestRestartSweepShape asserts the warm-restart claims on the raw
// sweep reports:
//
//  1. every point conserves jobs (checked inside RestartSweep);
//  2. the baseline and every warm point perform exactly one solve per
//     server — the bounce itself costs zero incremental solves;
//  3. every cold point solves strictly more than its warm counterpart;
//  4. restart accounting matches the schedule: one completed bounce
//     per bounced point, none in the baseline.
func TestRestartSweepShape(t *testing.T) {
	points, err := RestartSweep(cluster.NewStepCache())
	if err != nil {
		t.Fatal(err)
	}
	warmSolves := map[float64]uint64{}
	coldSolves := map[float64]uint64{}
	for _, p := range points {
		r := p.Report
		wantRestarts := 1
		if p.Mode == "none" {
			wantRestarts = 0
		}
		if r.ServerRestarts != wantRestarts {
			t.Errorf("%s/%gs: %d restarts, want %d", p.Mode, p.DowntimeS, r.ServerRestarts, wantRestarts)
		}
		switch p.Mode {
		case "none", "warm":
			if r.PlanSolves != uint64(r.Servers) {
				t.Errorf("%s/%gs: %d solves, want exactly %d (prewarm only; a warm bounce re-solves nothing)",
					p.Mode, p.DowntimeS, r.PlanSolves, r.Servers)
			}
			if p.Mode == "warm" {
				warmSolves[p.DowntimeS] = r.PlanSolves
			}
		case "cold":
			coldSolves[p.DowntimeS] = r.PlanSolves
		}
		if r.Completed == 0 {
			t.Errorf("%s/%gs: nothing completed", p.Mode, p.DowntimeS)
		}
	}
	for dt, cold := range coldSolves {
		if warm, ok := warmSolves[dt]; !ok || cold <= warm {
			t.Errorf("downtime %gs: cold bounce solved %d time(s), want more than warm's %d",
				dt, cold, warmSolves[dt])
		}
	}
}

func TestRestartTableRenders(t *testing.T) {
	tab := mustTable(t, Restart)
	if got, want := len(tab.Rows), 5; got != want {
		t.Errorf("restart table rows: %d, want %d (baseline + 2 downtimes x 2 modes)", got, want)
	}
}
