package experiments

import (
	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/sim"
)

// resilienceSpec is the degradation scenario of the resilience
// experiment: the first root complex — the PCIe switch carrying all
// host and cross-complex traffic for half the GPUs — drops to 25% of
// the bandwidth the planner assumed, for the whole step.
func resilienceSpec() *fault.Spec {
	return &fault.Spec{
		Links: []fault.LinkFault{{Link: "rc0", Multiplier: 0.25, Start: 0}},
	}
}

// Resilience compares how Mobius and GPipe tolerate an unplanned
// bandwidth degradation on the 8-GPU topology: the same plans, replayed
// on a machine whose first root complex runs at a quarter of its nominal
// bandwidth.
//
// The two systems fail differently. GPipe keeps parameters resident, so
// a PCIe fault barely touches it — but its one-stage-per-GPU pipeline is
// bubble-bound and slow to begin with. Mobius' stage swaps ride the
// degraded link, so it gives back part of its advantage in exposed
// upload time; the resilience claim is that even then its absolute step
// time stays strictly below GPipe's — the optimized plan degrades, but
// never below the baseline it beat.
func Resilience() (*Table, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 4, 4)
	spec := resilienceSpec()
	t := &Table{
		Title:  "Resilience: rc0 at 25% bandwidth (Topo 4+4)",
		Header: []string{"model", "system", "nominal (s)", "degraded (s)", "slowdown"},
	}
	sr := &stepRunner{}
	for _, m := range []model.Config{model.GPT3B, model.GPT8B} {
		deg := map[core.System]float64{}
		for _, sys := range []core.System{core.SystemGPipe, core.SystemMobius} {
			var nom, faulted *core.StepReport
			if sys == core.SystemMobius {
				// Nominal and degraded are the same built schedule; one
				// session replays it via sim.Reset instead of re-planning.
				ses, err := core.NewMobiusSession(core.Options{Model: m, Topology: topo})
				if err != nil {
					return nil, err
				}
				if nom, err = ses.Run(nil, sim.ChecksumConfig{}); err != nil {
					return nil, err
				}
				if faulted, err = ses.Run(spec, sim.ChecksumConfig{}); err != nil {
					return nil, err
				}
			} else {
				nom = sr.run(sys, core.Options{Model: m, Topology: topo})
				faulted = sr.run(sys, core.Options{Model: m, Topology: topo, Faults: spec})
				if sr.err != nil {
					return nil, sr.err
				}
			}
			if nom.OOM || faulted.OOM {
				t.Add(m.Name, string(sys), "OOM", "OOM", "-")
				continue
			}
			deg[sys] = faulted.StepTime
			t.Add(m.Name, string(sys), secs(nom.StepTime), secs(faulted.StepTime), ratio(faulted.StepTime/nom.StepTime))
		}
		if gp, mob := deg[core.SystemGPipe], deg[core.SystemMobius]; gp > 0 && mob > 0 && mob >= gp {
			t.Note("unexpected: degraded Mobius (%.2fs) lost its lead over degraded GPipe (%.2fs) on %s",
				mob, gp, m.Name)
		}
	}
	t.Note("faults are injected at replay time; both plans still assume nominal bandwidth")
	t.Note("resident parameters make GPipe nearly immune to PCIe faults, but bubble-bound;")
	t.Note("Mobius pays in exposed swap time yet keeps a strictly faster step")
	return sr.table(t)
}
