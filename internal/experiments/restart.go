package experiments

import (
	"fmt"

	"mobius/internal/cluster"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
)

// The restart sweep reads off the warm-restart claim of the persistent
// plan store: when a prewarmed server bounces and rejoins with its plan
// cache intact (reloaded from the crash-safe store), the fleet performs
// zero incremental MIP/partition solves — the entire run, bounce
// included, costs exactly one solve per server. A cold rejoin discards
// the cache and pays fresh solves for every shape the rejoined server
// serves afterwards, on top of the same downtime. The sweep holds the
// workload, seed and bounce schedule fixed and varies only the rejoin
// mode and the downtime, so every difference between rows is the
// recovery mode itself.

// RestartPoint is one cell of the sweep: a full fleet report at one
// (mode, downtime) setting.
type RestartPoint struct {
	// Mode is "none" (no bounce baseline), "warm" or "cold".
	Mode string
	// DowntimeS is the bounce's configured downtime (0 for the baseline).
	DowntimeS float64
	Report    *cluster.Report
}

// restartConfig builds the fleet for one sweep point.
func restartConfig(cache *cluster.StepCache, mode string, downtime float64) cluster.Config {
	mk := func(name string, slo int, rate float64) cluster.Class {
		return cluster.Class{
			Name:            name,
			SLO:             slo,
			RatePerS:        rate,
			Model:           model.GPT3B,
			PartitionAlgo:   partition.AlgoBalanced,
			BalancedStages:  4,
			StepsMin:        2,
			StepsMax:        4,
			CheckpointEvery: 2,
		}
	}
	cfg := cluster.Config{
		Servers:  2,
		Topology: hw.Commodity(hw.RTX3090Ti, 2, 2),
		Classes:  []cluster.Class{mk("gold", 0, 0.030), mk("best-effort", 1, 0.040)},
		HorizonS: 600,
		Seed:     42,
		QueueCap: 6,
		Prewarm:  true,
		Cache:    cache,
	}
	if mode != "none" {
		cfg.Faults = &fault.Spec{ServerRestarts: []fault.ServerRestartFault{{
			Server:          0,
			At:              300,
			RestartLatencyS: downtime,
			Cold:            mode == "cold",
		}}}
	}
	return cfg
}

// RestartSweep runs the sweep and returns every point; the test layer
// asserts the zero-solve claims on the raw reports.
func RestartSweep(cache *cluster.StepCache) ([]RestartPoint, error) {
	if cache == nil {
		cache = cluster.NewStepCache()
	}
	points := []RestartPoint{{Mode: "none"}}
	for _, downtime := range []float64{5, 20} {
		for _, mode := range []string{"warm", "cold"} {
			points = append(points, RestartPoint{Mode: mode, DowntimeS: downtime})
		}
	}
	for i := range points {
		p := &points[i]
		rep, err := cluster.Run(restartConfig(cache, p.Mode, p.DowntimeS))
		if err != nil {
			return nil, fmt.Errorf("restart sweep %s/%gs: %w", p.Mode, p.DowntimeS, err)
		}
		if err := rep.Conservation(); err != nil {
			return nil, fmt.Errorf("restart sweep %s/%gs: %w", p.Mode, p.DowntimeS, err)
		}
		p.Report = rep
	}
	return points, nil
}

// Restart renders the sweep as an experiment table.
func Restart() (*Table, error) {
	points, err := RestartSweep(nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Warm vs cold restart: 2 prewarmed servers, one mid-run bounce",
		Header: []string{"rejoin", "downtime (s)", "solves", "hits", "restarts",
			"re-landed", "done", "failed"},
	}
	for _, p := range points {
		r := p.Report
		relands := 0
		for _, c := range r.Classes {
			relands += c.Relands
		}
		dt := "-"
		if p.Mode != "none" {
			dt = fmt.Sprintf("%.0f", p.DowntimeS)
		}
		t.Add(p.Mode, dt,
			fmt.Sprintf("%d", r.PlanSolves), fmt.Sprintf("%d", r.PlanHits),
			fmt.Sprintf("%d", r.ServerRestarts), fmt.Sprintf("%d", relands),
			fmt.Sprintf("%d", r.Completed), fmt.Sprintf("%d", r.Failed))
	}
	t.Note("a warm rejoin reloads the persisted plan cache: solves stay at the prewarm's one per server")
	t.Note("a cold rejoin discards it: every shape the bounced server serves afterwards re-solves")
	t.Note("downtime only moves the re-landed and completion columns; the solve count depends on the rejoin mode alone")
	return t, nil
}
