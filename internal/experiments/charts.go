package experiments

import (
	"fmt"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/nn"
	"mobius/internal/textgen"
	"mobius/internal/train"
	"mobius/internal/viz"
)

// Charts returns SVG renderers for the figures that benefit from a
// visual (bars, CDFs, loss curves); cmd/mobius-bench -svg writes them to
// disk. Keys carry the .svg-less file name. Renderers return an error
// instead of panicking; the CLI converts it into a non-zero exit code.
func Charts() map[string]func() (string, error) {
	return map[string]func() (string, error){
		"figure2-cdf":      ChartFigure2,
		"figure5-bars":     ChartFigure5,
		"figure7-cdf":      ChartFigure7,
		"figure13-loss":    ChartFigure13,
		"figure14-scaling": ChartFigure14,
	}
}

// cdfPoints samples a trace CDF into (GB/s, fraction) pairs.
func cdfPoints(r *core.StepReport, n int) [][2]float64 {
	pts := r.BandwidthCDF.Points(n)
	out := make([][2]float64, 0, len(pts))
	for _, p := range pts {
		out = append(out, [2]float64{p[0] / 1e9, p[1]})
	}
	return out
}

// ChartFigure2 renders the DeepSpeed bandwidth CDF of the motivation
// experiment.
func ChartFigure2() (string, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	ds, err := run(core.SystemDSHetero, core.Options{Model: model.GPT15B, Topology: topo})
	if err != nil {
		return "", err
	}
	return viz.CDFs("Figure 2: DeepSpeed bandwidth CDF (15B, Topo 2+2, GB/s)", 13.1,
		[]viz.Points{{Name: "DeepSpeed", XY: cdfPoints(ds, 64)}}), nil
}

// ChartFigure5 renders the per-step-time bars for Topo 2+2 (OOM bars
// are drawn as "x").
func ChartFigure5() (string, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	labels := []string{}
	series := make([]viz.Series, len(core.Systems()))
	for i, sys := range core.Systems() {
		series[i].Name = string(sys)
	}
	for _, m := range model.Table3() {
		labels = append(labels, m.Name)
		for i, sys := range core.Systems() {
			r, err := run(sys, core.Options{Model: m, Topology: topo})
			if err != nil {
				return "", err
			}
			v := r.StepTime
			if r.OOM {
				v = 0
			}
			series[i].Values = append(series[i].Values, v)
		}
	}
	return viz.GroupedBars("Figure 5: per-step time on Topo 2+2 (s, x = OOM)", "s/step", labels, series), nil
}

// ChartFigure7 renders the DeepSpeed-vs-Mobius bandwidth CDFs for the
// 15B model on Topo 2+2.
func ChartFigure7() (string, error) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	ds, err := run(core.SystemDSHetero, core.Options{Model: model.GPT15B, Topology: topo})
	if err != nil {
		return "", err
	}
	mob, err := run(core.SystemMobius, core.Options{Model: model.GPT15B, Topology: topo})
	if err != nil {
		return "", err
	}
	return viz.CDFs("Figure 7: bandwidth CDF, 15B on Topo 2+2 (GB/s)", 13.5, []viz.Points{
		{Name: "DeepSpeed", XY: cdfPoints(ds, 64)},
		{Name: "Mobius", XY: cdfPoints(mob, 64)},
	}), nil
}

// ChartFigure13 renders the GPipe / Mobius / async loss curves.
func ChartFigure13() (string, error) {
	const steps = 100
	cfg := nn.Config{Vocab: 64, Seq: 16, Dim: 32, Heads: 4, Layers: 4, Seed: 7}
	corpus, err := textgen.Generate(cfg.Vocab, 30000, 13)
	if err != nil {
		return "", fmt.Errorf("experiments: chart 13 corpus: %w", err)
	}
	var trainers []*train.Trainer
	for _, mode := range []train.Mode{train.ModeGPipe, train.ModeMobius, train.ModeAsync} {
		m, _ := nn.NewGPT(cfg)
		tr, err := train.New(m, 3, 3e-3, mode)
		if err != nil {
			return "", fmt.Errorf("experiments: chart 13 trainer: %w", err)
		}
		trainers = append(trainers, tr)
	}
	series := []viz.Points{{Name: "GPipe"}, {Name: "Mobius"}, {Name: "Async (PipeDream-style)"}}
	for step := 0; step < steps; step++ {
		var b []nn.Batch
		for i := 0; i < 4; i++ {
			b = append(b, corpus.Batch(cfg.Seq, 2, step, i))
		}
		for i, tr := range trainers {
			loss := tr.Step(b)
			series[i].XY = append(series[i].XY, [2]float64{float64(step), loss})
		}
	}
	return viz.Lines(fmt.Sprintf("Figure 13: training loss over %d steps", steps), "loss", series), nil
}

// ChartFigure14 renders measured vs perfect scaling.
func ChartFigure14() (string, error) {
	m := model.GPT15B.WithMicrobatch(1)
	measured := viz.Points{Name: "measured"}
	perfect := viz.Points{Name: "perfect linear"}
	var base float64
	for _, n := range []int{2, 4, 6, 8} {
		topo := hw.Commodity(hw.RTX3090Ti, n/2, n-n/2)
		r, err := run(core.SystemMobius, core.Options{Model: m, Topology: topo})
		if err != nil {
			return "", err
		}
		thr := float64(n) / r.StepTime
		if n == 2 {
			base = thr
		}
		measured.XY = append(measured.XY, [2]float64{float64(n), thr / base})
		perfect.XY = append(perfect.XY, [2]float64{float64(n), float64(n) / 2})
	}
	return viz.Lines("Figure 14: Mobius scaling, 15B (speedup vs 2 GPUs)", "speedup",
		[]viz.Points{measured, perfect}), nil
}
