package experiments

import (
	"fmt"

	"mobius/internal/cluster"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
)

// The overload sweep drives a fixed two-server fleet through rising
// offered load, with and without admission control, and reads off the
// robustness claim: token-bucket admission keeps the queueing delay of
// accepted jobs bounded as load grows, and the deadline shedder only
// ever sheds the best-effort class — the paid SLO classes lose work to
// explicit admission rejections (cheap, immediate) rather than to
// queue rot (expensive, late).
//
// Workload: three tenant classes on the 2+2 commodity box.
//
//   - gold (SLO 0): token budget at its base rate, no deadline;
//   - silver (SLO 1): token budget, degrades to the greedy floor when
//     its queue patience runs out;
//   - best-effort (SLO 2): no budget, tight deadline — the shock
//     absorber.
//
// The multiplier scales every class's arrival rate; token budgets stay
// fixed at the 1x rates, which is what makes them admission *control*
// rather than accounting.

// OverloadPoint is one cell of the sweep: a full fleet report at one
// (multiplier, admission) setting.
type OverloadPoint struct {
	Multiplier float64
	Admission  bool
	Report     *cluster.Report
}

// overloadConfig builds the fleet for one sweep point.
func overloadConfig(cache *cluster.StepCache, mult float64, admission bool) cluster.Config {
	const (
		baseGold = 0.030 // jobs/s at 1x, per class
		baseSilv = 0.030
		baseBE   = 0.040
	)
	mk := func(name string, slo int, rate float64) cluster.Class {
		return cluster.Class{
			Name:           name,
			SLO:            slo,
			RatePerS:       rate * mult,
			Model:          model.GPT3B,
			PartitionAlgo:  partition.AlgoBalanced,
			BalancedStages: 4,
			StepsMin:       2,
			StepsMax:       3,
		}
	}
	gold := mk("gold", 0, baseGold)
	silver := mk("silver", 1, baseSilv)
	be := mk("best-effort", 2, baseBE)
	if admission {
		// Budgets are pinned to the 1x rates (with a little headroom),
		// independent of the multiplier: past 1x the buckets clip.
		gold.TokenRatePerS, gold.TokenBurst = baseGold*1.2, 3
		silver.TokenRatePerS, silver.TokenBurst = baseSilv*1.2, 3
	}
	silver.DegradeAfterS = 45
	be.DeadlineS = 40
	return cluster.Config{
		Servers:  2,
		Topology: hw.Commodity(hw.RTX3090Ti, 2, 2),
		Classes:  []cluster.Class{gold, silver, be},
		HorizonS: 600,
		Seed:     42,
		QueueCap: 6,
		Prewarm:  true,
		Cache:    cache,
	}
}

// OverloadSweep runs the sweep and returns every point; the test layer
// asserts the shape claims on the raw reports.
func OverloadSweep(cache *cluster.StepCache) ([]OverloadPoint, error) {
	if cache == nil {
		cache = cluster.NewStepCache()
	}
	var points []OverloadPoint
	for _, mult := range []float64{0.5, 1, 2, 4} {
		for _, admission := range []bool{true, false} {
			rep, err := cluster.Run(overloadConfig(cache, mult, admission))
			if err != nil {
				return nil, fmt.Errorf("overload sweep %gx (admission=%v): %w", mult, admission, err)
			}
			if err := rep.Conservation(); err != nil {
				return nil, fmt.Errorf("overload sweep %gx (admission=%v): %w", mult, admission, err)
			}
			points = append(points, OverloadPoint{Multiplier: mult, Admission: admission, Report: rep})
		}
	}
	return points, nil
}

// Overload renders the sweep as an experiment table.
func Overload() (*Table, error) {
	points, err := OverloadSweep(nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Overload sweep: 2 servers, 3 SLO classes, rising offered load",
		Header: []string{"load", "admission", "offered", "done", "rejected", "shed",
			"gold p99 (s)", "silver p99 (s)", "BE p99 (s)", "Jain"},
	}
	for _, p := range points {
		r := p.Report
		adm := "off"
		if p.Admission {
			adm = "on"
		}
		byName := map[string]cluster.ClassStats{}
		for _, c := range r.Classes {
			byName[c.Name] = c
		}
		t.Add(fmt.Sprintf("%.1fx", p.Multiplier), adm,
			fmt.Sprintf("%d", r.Submitted), fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Rejected), fmt.Sprintf("%d", r.Shed),
			secs(byName["gold"].WaitP99), secs(byName["silver"].WaitP99),
			secs(byName["best-effort"].WaitP99), fmt.Sprintf("%.3f", r.Jain))
	}
	t.Note("token budgets stay at the 1x rates: past 1x, admission clips paid classes immediately")
	t.Note("only best-effort carries a deadline, so sheds land exclusively on the lowest SLO class")
	t.Note("with admission off, paid classes keep their queue-jump (SLO-ordered dequeue) but queue delay grows with load")
	return t, nil
}
