package partition

import "fmt"

// Algorithm names reported in Partition.Algorithm.
const (
	AlgoMIP      = "mip"
	AlgoMaxStage = "max-stage"
	AlgoMinStage = "min-stage"
	AlgoBalanced = "balanced"
	AlgoGreedy   = "greedy-fallback"
)

// MinStage builds the minimum-stage baseline of the Figure 9 ablation:
// every transformer block is its own stage; the embedding joins the first
// stage and the head the last.
func MinStage(params Params) (*Partition, error) {
	params = params.withDefaults()
	if err := params.validate(); err != nil {
		return nil, err
	}
	L := params.Profile.NumLayers() // embedding + blocks + head
	blocks := L - 2
	if blocks < 1 {
		return nil, fmt.Errorf("partition: model too small for min-stage (%d layers)", L)
	}
	sizes := make([]int, blocks)
	for i := range sizes {
		sizes[i] = 1
	}
	sizes[0] = 2      // embedding + first block
	sizes[blocks-1]++ // head joins the last stage
	if blocks == 1 {
		sizes = []int{L}
	}
	return FromBoundaries(params.Profile, sizes, AlgoMinStage)
}

// MaxStage builds the maximum-stage baseline of the Figure 9 ablation:
// each stage packs as many layers as fit in GPU memory, leaving no room
// to prefetch the next stage.
func MaxStage(params Params) (*Partition, error) {
	params = params.withDefaults()
	if err := params.validate(); err != nil {
		return nil, err
	}
	prof := params.Profile
	L := prof.NumLayers()
	var sizes []int
	at := 0
	for at < L {
		n := 1
		for at+n < L {
			cand := buildStage(prof, at, at+n)
			if cand.MemBwd() > params.GPUMem || cand.MemFwd() > params.GPUMem {
				break
			}
			n++
		}
		// Even a single layer may exceed memory; FromBoundaries still
		// builds the partition and Evaluate reports it infeasible.
		sizes = append(sizes, n)
		at += n
	}
	return FromBoundaries(prof, sizes, AlgoMaxStage)
}

// Balanced builds an S-stage partition distributing the blocks as evenly
// as possible; it is the incumbent heuristic seeding the MIP search.
func Balanced(params Params, stages int) (*Partition, error) {
	params = params.withDefaults()
	if err := params.validate(); err != nil {
		return nil, err
	}
	L := params.Profile.NumLayers()
	if stages < 1 || stages > L {
		return nil, fmt.Errorf("partition: cannot split %d layers into %d stages", L, stages)
	}
	sizes := make([]int, stages)
	base, extra := L/stages, L%stages
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return FromBoundaries(params.Profile, sizes, AlgoBalanced)
}

// Greedy builds the guaranteed-feasible fallback partition used when a
// planning deadline expires before the MIP sweep finishes: the smallest
// stage count that is a multiple of the GPU count whose balanced
// decomposition fits per-stage GPU memory, degrading to the min-stage
// decomposition when no balanced split fits. It runs no solver and is a
// pure function of the profile, so every caller — at any parallelism
// level — derives the identical plan. It errors only when even one block
// per stage exceeds GPU memory, i.e. when no valid partition exists at
// all.
func Greedy(params Params) (*Partition, error) {
	params = params.withDefaults()
	if err := params.validate(); err != nil {
		return nil, err
	}
	L := params.Profile.NumLayers()
	for s := params.NumGPUs; s <= L; s += params.NumGPUs {
		p, err := Balanced(params, s)
		if err != nil {
			continue
		}
		if fitsMemory(p, params.GPUMem) {
			p.Algorithm = AlgoGreedy
			return p, nil
		}
	}
	p, err := MinStage(params)
	if err != nil {
		return nil, err
	}
	if !fitsMemory(p, params.GPUMem) {
		return nil, fmt.Errorf("partition: no feasible fallback: even the min-stage decomposition exceeds GPU memory (%g GB)", params.GPUMem/1e9)
	}
	p.Algorithm = AlgoGreedy
	return p, nil
}

// fitsMemory reports whether every stage's forward and backward footprint
// fits the per-GPU memory budget.
func fitsMemory(p *Partition, gpuMem float64) bool {
	for _, st := range p.Stages {
		if st.MemFwd() > gpuMem || st.MemBwd() > gpuMem {
			return false
		}
	}
	return true
}
