package partition

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mobius/internal/lp"
	"mobius/internal/milp"
	"mobius/internal/model"
)

// ErrCancelled reports a planning context cancelled or past its deadline.
// The sweep never returns a partial best-effort partition in that case —
// whether a candidate solve happened to finish is timing-dependent, and a
// deadline hit must yield the same outcome at every parallelism level.
// Callers degrade to the deterministic Greedy fallback instead.
var ErrCancelled = errors.New("partition: planning cancelled")

// MIPOptions bound the MIP partition search.
type MIPOptions struct {
	// MaxStages caps the candidate stage count S (default: min(blocks,
	// 24)). Partitions with more stages than the cap are still covered by
	// the min-stage comparison below.
	MaxStages int
	// Patience stops the sweep over S after this many consecutive
	// non-improving candidates (default 2).
	Patience int
	// NodeLimit and TimeLimit bound each MILP solve.
	NodeLimit int
	TimeLimit time.Duration
	// Parallelism is the number of candidate stage counts solved
	// concurrently (0 means GOMAXPROCS, 1 means serial). The sweep result
	// is identical at every level: candidate solves are independent, the
	// shared incumbent bound is sealed before the fan-out, and results are
	// replayed in candidate order.
	Parallelism int
	// DisableCache forces a fresh solve. MIP results are otherwise
	// memoized per (model, GPU, N, M, G, B, options) for the lifetime of
	// the process, since the same planning problem recurs across
	// experiments. The overhead benchmark (Figure 12) disables the cache
	// to measure true solve time.
	DisableCache bool
	// Warm, when non-nil, warm-starts the sweep from a previously solved
	// partition of a nearby problem: its stage boundaries are re-evaluated
	// under the current params and, when feasible, seal the shared
	// branch-and-bound incumbent bound before the fan-out and compete as
	// an explicit candidate. A candidate solve that exhausts its limits
	// under the warm-tightened bound is re-solved cold, so warm starting
	// changes solve effort, never the sweep outcome. The warm partition is
	// never mutated.
	Warm *Partition
}

// Normalized returns the options with every solver default applied for a
// model with the given transformer-block count, exactly as the sweep
// itself applies them. The planning service canonicalizes MIP options
// through it so a zero-valued field and its explicit default hash to the
// same cache key.
func (o MIPOptions) Normalized(blocks int) MIPOptions { return o.withDefaults(blocks) }

func (o MIPOptions) withDefaults(blocks int) MIPOptions {
	if o.MaxStages <= 0 {
		o.MaxStages = 24
	}
	// The stage count can reach blocks+2: every block its own stage plus
	// the embedding and the head as standalone edge stages.
	if o.MaxStages > blocks+2 {
		o.MaxStages = blocks + 2
	}
	if o.Patience <= 0 {
		o.Patience = 2
	}
	if o.NodeLimit <= 0 {
		o.NodeLimit = 150
	}
	if o.TimeLimit <= 0 {
		o.TimeLimit = 3 * time.Second
	}
	return o
}

// mipGapTol is the relative optimality gap for each MILP solve: schedule
// estimates are only accurate to a few percent, so proving the last 0.5%
// of optimality is wasted effort.
const mipGapTol = 0.005

// MIPStats reports the solver effort, feeding the Figure 12 overhead
// experiment.
type MIPStats struct {
	// TriedStageCounts lists the candidate S values formulated and solved.
	TriedStageCounts []int
	// Nodes is the total branch-and-bound node count across candidates.
	Nodes int
	// SolveTime is the cumulative time spent in the MILP solver, summed
	// over candidate solves (equals wall-clock when Parallelism is 1).
	SolveTime time.Duration
	// BestStageCount is the S of the returned partition.
	BestStageCount int
	// StepTime is the modelled step duration of the returned partition.
	StepTime float64
	// Proven is true when every explored candidate was solved to
	// certified optimality.
	Proven bool
	// UsedMinStageFallback is true when the min-stage partition (beyond
	// MaxStages) beat every MIP candidate — the regime of Figure 9's
	// second observation.
	UsedMinStageFallback bool
	// WarmStart is true when a feasible warm partition sealed the shared
	// incumbent bound before the fan-out.
	WarmStart bool
	// WarmWon is true when the warm partition itself beat every sweep
	// candidate and is the returned partition.
	WarmWon bool
}

// blockStats extracts the compressed per-group statistics the MILP is
// formulated over (layer similarity, §3.2).
type blockStats struct {
	blocks            int
	tfBlk, tbBlk      float64
	pBlk              float64 // GB
	act               float64 // GB, boundary activation per microbatch
	wBlk, wEmb, wHead float64 // GB
	pEmb, pHead       float64 // GB
	tfEmb, tbEmb      float64
	tfHead, tbHead    float64
}

func gatherBlockStats(params Params) (*blockStats, error) {
	const toGB = 1e-9
	bs := &blockStats{}
	seenBlk := false
	for _, l := range params.Profile.Layers {
		switch l.Layer.Kind {
		case model.KindEmbedding:
			bs.pEmb = l.ParamBytes * toGB
			bs.wEmb = l.WorkingBytes * toGB
			bs.tfEmb, bs.tbEmb = l.FwdTime, l.BwdTime
		case model.KindHead:
			bs.pHead = l.ParamBytes * toGB
			bs.wHead = l.WorkingBytes * toGB
			bs.tfHead, bs.tbHead = l.FwdTime, l.BwdTime
		case model.KindBlock:
			bs.blocks++
			if !seenBlk {
				seenBlk = true
				bs.pBlk = l.ParamBytes * toGB
				bs.wBlk = l.WorkingBytes * toGB
				bs.act = l.ActOutBytes * toGB
				bs.tfBlk, bs.tbBlk = l.FwdTime, l.BwdTime
			}
		}
	}
	if !seenBlk {
		return nil, fmt.Errorf("partition: model has no transformer blocks")
	}
	return bs, nil
}

// MIP runs the paper's MIP partition algorithm: for each candidate stage
// count S (a multiple of the GPU count), it formulates the mixed-integer
// program of §3.2 — boolean layer placement compressed to per-stage block
// counts via layer similarity, continuous start times t^e_{j,m}, prefetch
// sizes P^e_j, memory constraints (4)-(6) and pipeline-order constraints
// (8)-(11) — solves it with the branch-and-bound solver, and returns the
// best partition found.
func MIP(params Params, opts MIPOptions) (*Partition, *MIPStats, error) {
	return MIPCtx(context.Background(), params, opts)
}

// MIPCtx is MIP honoring a context: candidate solves poll ctx between
// branch-and-bound nodes and the sweep returns ErrCancelled once ctx is
// done. Cancelled sweeps are never cached, so a later call with a live
// context re-solves from scratch.
func MIPCtx(ctx context.Context, params Params, opts MIPOptions) (*Partition, *MIPStats, error) {
	params = params.withDefaults()
	if err := params.validate(); err != nil {
		return nil, nil, err
	}
	// An already-done context short-circuits before the cache: the caller
	// asked for a deadline-bounded answer and must get the deterministic
	// cancellation outcome whether or not a previous run warmed the cache.
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCancelled, err)
	}
	if !opts.DisableCache {
		// Parallelism does not change the result, so it is stripped from
		// the cache key: runs at different worker counts share entries.
		// The warm pointer is replaced by a fingerprint of its stage
		// boundaries: identical warm shapes share an entry regardless of
		// which allocation supplied them.
		kopts := opts
		kopts.Parallelism = 0
		kopts.Warm = nil
		key := mipKey{
			warm: warmFingerprint(opts.Warm),
			model:     params.Profile.Model,
			gpu:       params.Profile.GPU.Name,
			n:         params.NumGPUs,
			m:         params.Microbatches,
			mem:       params.GPUMem,
			bandwidth: params.Bandwidth,
			latency:   params.Latency,
			opts:      kopts,
		}
		mipCacheMu.Lock()
		if e, ok := mipCache[key]; ok {
			mipCacheMu.Unlock()
			return e.part, e.stats, e.err
		}
		mipCacheMu.Unlock()
		part, stats, err := mipSolve(ctx, params, opts)
		if errors.Is(err, ErrCancelled) {
			return part, stats, err // a timed-out sweep is not a reusable result
		}
		mipCacheMu.Lock()
		mipCache[key] = mipCacheEntry{part, stats, err}
		mipCacheMu.Unlock()
		return part, stats, err
	}
	return mipSolve(ctx, params, opts)
}

type mipKey struct {
	model     model.Config
	gpu       string
	n, m      int
	mem       float64
	bandwidth float64
	latency   float64
	warm      string
	opts      MIPOptions
}

// warmFingerprint canonicalizes a warm partition to its stage boundary
// shape for cache keying.
func warmFingerprint(p *Partition) string {
	if p == nil {
		return ""
	}
	var b []byte
	for _, st := range p.Stages {
		b = append(b, fmt.Sprintf("%d-%d;", st.First, st.Last)...)
	}
	return string(b)
}

type mipCacheEntry struct {
	part  *Partition
	stats *MIPStats
	err   error
}

var (
	mipCacheMu sync.Mutex
	mipCache   = map[mipKey]mipCacheEntry{}
)

// atomicBound is a lock-free monotonically decreasing float64, used to
// share the best known incumbent objective across concurrent solves.
type atomicBound struct{ bits atomic.Uint64 }

func (b *atomicBound) store(v float64) { b.bits.Store(math.Float64bits(v)) }

func (b *atomicBound) load() float64 { return math.Float64frombits(b.bits.Load()) }

// min lowers the bound to v if v is smaller.
func (b *atomicBound) min(v float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func mipSolve(ctx context.Context, params Params, opts MIPOptions) (*Partition, *MIPStats, error) {
	bs, err := gatherBlockStats(params)
	if err != nil {
		return nil, nil, err
	}
	opts = opts.withDefaults(bs.blocks)

	stats := &MIPStats{Proven: true, StepTime: Infeasible}
	var best *Partition

	consider := func(p *Partition, s int, fromMIP bool) error {
		t, err := StepTime(params, p)
		if err != nil {
			return err
		}
		if t < stats.StepTime {
			stats.StepTime = t
			stats.BestStageCount = s
			stats.UsedMinStageFallback = !fromMIP
			best = p
			best.Algorithm = AlgoMIP
		}
		return nil
	}

	maxB := maxLayersPerStage(params)
	var cands []int
	for s := params.NumGPUs; s <= opts.MaxStages; s += params.NumGPUs {
		if s*maxB < bs.blocks {
			continue // cannot fit the model into s stages
		}
		cands = append(cands, s)
	}

	// Balanced-heuristic incumbent seeds for every candidate, computed
	// before the fan-out. The shared bound is sealed at the minimum over
	// all seeds: every solve prunes against the same value no matter when
	// it starts, so the sweep result is identical at every parallelism
	// level (mid-flight tightening would make pruning timing-dependent).
	type seeded struct {
		balanced *Partition
		inc      float64
	}
	seeds := make([]seeded, len(cands))
	var coldBound atomicBound
	coldBound.store(math.Inf(1))
	for i, s := range cands {
		balanced, balErr := Balanced(params, s)
		if balErr != nil {
			seeds[i].inc = math.Inf(1)
			continue
		}
		seeds[i] = seeded{balanced: balanced, inc: math.Inf(1)}
		if t, err := StepTime(params, balanced); err == nil && !math.IsInf(t, 1) {
			// Seed with slack: the analytic evaluator and the LP agree on
			// the model, but the seed must never over-prune the optimum.
			seeds[i].inc = (t - bs.tbEmb) * 1.001
			coldBound.min(seeds[i].inc)
		}
	}

	// Warm start: re-evaluate the warm partition's stage boundaries under
	// the current profile; when feasible, its (slacked) objective value
	// joins the sealed bound and the shape competes as an explicit
	// candidate after the sweep. Rebuilding from boundaries recomputes all
	// per-stage statistics, so a warm shape solved on a different topology
	// or GPU spec cannot smuggle stale costs in.
	warmBound := coldBound.load()
	var warmPart *Partition
	if opts.Warm != nil {
		sizes := make([]int, len(opts.Warm.Stages))
		for i, st := range opts.Warm.Stages {
			sizes[i] = st.NumLayers()
		}
		if wc, wErr := FromBoundaries(params.Profile, sizes, AlgoMIP); wErr == nil {
			if t, tErr := StepTime(params, wc); tErr == nil && !math.IsInf(t, 1) {
				warmPart = wc
				stats.WarmStart = true
				warmBound = math.Min(warmBound, (t-bs.tbEmb)*1.001)
			}
		}
	}

	type solveRes struct {
		part  *Partition
		nodes int
		dur   time.Duration
		err   error
	}
	results := make([]chan solveRes, len(cands))
	for i := range results {
		results[i] = make(chan solveRes, 1)
	}

	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(cands) {
		par = len(cands)
	}
	if par < 1 {
		par = 1
	}

	var cancelled atomic.Bool
	abort := func() bool { return cancelled.Load() || ctx.Err() != nil }
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Solver scratch is pooled per worker: every candidate this
			// worker solves reuses one tableau and one LP clone.
			sc := milp.NewScratch()
			for i := range work {
				if abort() {
					results[i] <- solveRes{} // discarded by the replay
					continue
				}
				start := time.Now()
				incCold := math.Min(seeds[i].inc, coldBound.load())
				inc := math.Min(incCold, warmBound)
				part, nodes, optimal, err := solveOne(params, bs, cands[i], opts, inc, seeds[i].balanced, abort, sc)
				if err == nil && !optimal && inc < incCold && !abort() {
					// The warm-tightened bound may have pruned this
					// candidate's whole search; re-solve with the cold seed
					// so warm starting never changes the sweep outcome.
					var n2 int
					part, n2, _, err = solveOne(params, bs, cands[i], opts, incCold, seeds[i].balanced, abort, sc)
					nodes += n2
				}
				results[i] <- solveRes{part: part, nodes: nodes, dur: time.Since(start), err: err}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range cands {
			work <- i
		}
		close(work)
	}()
	// All exit paths join the pool: workers poll abort between nodes, so a
	// cancelled sweep shuts down promptly and leaks nothing (the replay
	// below sets cancelled before every early return).
	defer wg.Wait()

	// Replay completed solves in candidate order, applying the serial
	// patience rule, so both the chosen partition and the reported stats
	// are independent of completion timing. Once the sweep outcome is
	// sealed, in-flight and unstarted solves are cancelled; their results
	// would be discarded anyway.
	sinceImprove := 0
	for i := range cands {
		r := <-results[i]
		if r.err != nil {
			cancelled.Store(true)
			return nil, nil, r.err
		}
		stats.SolveTime += r.dur
		stats.Nodes += r.nodes
		stats.TriedStageCounts = append(stats.TriedStageCounts, cands[i])
		if r.part == nil {
			continue // infeasible for this S
		}
		before := stats.StepTime
		if err := consider(r.part, cands[i], true); err != nil {
			cancelled.Store(true)
			return nil, nil, err
		}
		if stats.StepTime < before {
			sinceImprove = 0
		} else {
			sinceImprove++
			if sinceImprove >= opts.Patience {
				cancelled.Store(true)
				break
			}
		}
	}

	// The min-stage decomposition can exceed MaxStages (one block per
	// stage); the paper observes the MIP solution degenerates to it when
	// blocks barely fit in GPU memory. Compare explicitly.
	if ms, err := MinStage(params); err == nil && len(ms.Stages) > opts.MaxStages {
		if err := consider(ms, len(ms.Stages), false); err != nil {
			return nil, nil, err
		}
	}

	// The warm shape competes last and loses ties, so a warm start can
	// only win where the sweep found nothing at least as good — adding a
	// warm hint never worsens and (on ties) never alters the result.
	if warmPart != nil {
		if err := consider(warmPart, len(warmPart.Stages), true); err != nil {
			return nil, nil, err
		}
		stats.WarmWon = best == warmPart
	}

	// A deadline that expired mid-sweep invalidates the whole result, even
	// if some candidates finished: which ones did is timing-dependent, and
	// the contract is all-or-nothing (see ErrCancelled).
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCancelled, err)
	}

	if best == nil {
		return nil, nil, fmt.Errorf("partition: no feasible partition found (GPU memory %g GB too small?)", params.GPUMem/1e9)
	}
	return best, stats, nil
}

// solveOne formulates and solves the MILP for a fixed stage count S.
// It returns a nil partition when the instance is infeasible. The
// incumbent objective (already in the MILP's objective space) and the
// balanced-heuristic fallback partition are computed by the caller so
// they can be shared across concurrent solves; cancel is polled by
// the solver to abandon work whose result the sweep will discard; sc is
// the calling worker's pooled solver scratch. The optimal result
// reports whether the MILP itself produced the partition (false means
// limits were hit and the balanced fallback — possibly nil — stands in,
// which the caller may retry with a looser incumbent).
func solveOne(params Params, bs *blockStats, S int, opts MIPOptions, incumbent float64, balanced *Partition, cancel func() bool, sc *milp.Scratch) (part *Partition, nodes int, optimal bool, err error) {
	N := params.NumGPUs
	M := params.Microbatches
	G := params.GPUMem * 1e-9    // GB
	B := params.Bandwidth * 1e-9 // GB/s
	lat := params.Latency        // per-transfer setup seconds

	// Variable layout.
	nVarAt := func(j int) int { return j }
	tfAt := func(j, m int) int { return S + j*M + m }
	tbAt := func(j, m int) int { return S + S*M + j*M + m }
	nPf := S - N
	if nPf < 0 {
		nPf = 0
	}
	pfAt := func(j int) int { return S + 2*S*M + (j - N) } // j in [N, S)
	pbAt := func(j int) int { return S + 2*S*M + nPf + j } // j in [0, S-N)
	totalVars := S + 2*S*M + 2*nPf

	p := lp.NewProblem(totalVars)

	// Per-stage constants (embedding on stage 0, head on stage S-1).
	cF := make([]float64, S)
	cB := make([]float64, S)
	cP := make([]float64, S) // constant parameter GB beyond blocks
	w := make([]float64, S)
	actIn := make([]float64, S)
	actOut := make([]float64, S)
	for j := 0; j < S; j++ {
		w[j] = bs.wBlk
		actIn[j] = bs.act
		actOut[j] = bs.act
	}
	cF[0] += bs.tfEmb
	cB[0] += bs.tbEmb
	cP[0] += bs.pEmb
	w[0] = math.Max(w[0], bs.wEmb)
	cF[S-1] += bs.tfHead
	cB[S-1] += bs.tbHead
	cP[S-1] += bs.pHead
	w[S-1] = math.Max(w[S-1], bs.wHead)
	actIn[0] = 0    // stage 0 receives raw token ids (negligible)
	actOut[S-1] = 0 // the head emits only the loss

	// Integer block-count bounds from the memory constraint (4):
	// MemFwd_j = pBlk*n + cP + w + 2*actOut <= G
	// MemBwd_j = 2*(pBlk*n + cP) + w + 2*actIn <= G.
	for j := 0; j < S; j++ {
		capFwd := (G - cP[j] - w[j] - 2*actOut[j]) / bs.pBlk
		capBwd := (G - 2*cP[j] - w[j] - 2*actIn[j]) / (2 * bs.pBlk)
		hi := math.Floor(math.Min(capFwd, capBwd) + 1e-9)
		lo := 1.0
		if j == 0 || j == S-1 {
			lo = 0 // embedding/head alone is a valid stage
		}
		if hi < lo {
			// A single block cannot fit: infeasible S, independent of any
			// incumbent, so the caller must not retry.
			return nil, 0, true, nil
		}
		p.SetBounds(nVarAt(j), lo, hi)
	}

	// Total blocks.
	sum := make([]lp.Term, S)
	for j := 0; j < S; j++ {
		sum[j] = lp.Term{Var: nVarAt(j), Coeff: 1}
	}
	p.AddConstraint(sum, lp.EQ, float64(bs.blocks))

	// Forward pipeline-order constraints.
	for j := 0; j < S; j++ {
		for m := 0; m < M; m++ {
			if m > 0 { // (10): serial microbatches per stage
				p.AddConstraint([]lp.Term{
					{Var: tfAt(j, m), Coeff: 1},
					{Var: tfAt(j, m-1), Coeff: -1},
					{Var: nVarAt(j), Coeff: -bs.tfBlk},
				}, lp.GE, cF[j])
			}
			if j > 0 { // (8): activation arrival from upstream
				p.AddConstraint([]lp.Term{
					{Var: tfAt(j, m), Coeff: 1},
					{Var: tfAt(j-1, m), Coeff: -1},
					{Var: nVarAt(j - 1), Coeff: -bs.tfBlk},
				}, lp.GE, cF[j-1]+lat+actIn[j]/B)
			}
		}
		if j < N { // initial upload before the first microbatch
			p.AddConstraint([]lp.Term{
				{Var: tfAt(j, 0), Coeff: 1},
				{Var: nVarAt(j), Coeff: -bs.pBlk / B},
			}, lp.GE, lat+cP[j]/B)
		} else {
			// (9): swap-in after the previous stage on this GPU, minus
			// whatever was prefetched.
			p.AddConstraint([]lp.Term{
				{Var: tfAt(j, 0), Coeff: 1},
				{Var: tfAt(j-N, M-1), Coeff: -1},
				{Var: nVarAt(j - N), Coeff: -bs.tfBlk},
				{Var: nVarAt(j), Coeff: -bs.pBlk / B},
				{Var: pfAt(j), Coeff: 1 / B},
			}, lp.GE, cF[j-N]+lat+cP[j]/B)
			// (5): prefetch fits in reserved memory.
			p.AddConstraint([]lp.Term{
				{Var: pfAt(j), Coeff: 1},
				{Var: nVarAt(j - N), Coeff: bs.pBlk},
			}, lp.LE, G-cP[j-N]-w[j-N]-2*actOut[j-N])
			// (6): prefetch bounded by the overlap window and stage size.
			p.AddConstraint([]lp.Term{
				{Var: pfAt(j), Coeff: 1},
				{Var: nVarAt(j - N), Coeff: -B * bs.tfBlk},
				{Var: tfAt(j-N, M-1), Coeff: -B},
				{Var: tfAt(j-N, 0), Coeff: B},
			}, lp.LE, B*cF[j-N])
			p.AddConstraint([]lp.Term{
				{Var: pfAt(j), Coeff: 1},
				{Var: nVarAt(j), Coeff: -bs.pBlk},
			}, lp.LE, cP[j])
		}
	}

	// (11): backward begins after the last stage's forward drains.
	p.AddConstraint([]lp.Term{
		{Var: tbAt(S-1, 0), Coeff: 1},
		{Var: tfAt(S-1, M-1), Coeff: -1},
		{Var: nVarAt(S - 1), Coeff: -bs.tfBlk},
	}, lp.GE, cF[S-1])

	// Backward pipeline-order constraints.
	for j := S - 1; j >= 0; j-- {
		for m := 0; m < M; m++ {
			if m > 0 { // (10b)
				p.AddConstraint([]lp.Term{
					{Var: tbAt(j, m), Coeff: 1},
					{Var: tbAt(j, m-1), Coeff: -1},
					{Var: nVarAt(j), Coeff: -bs.tbBlk},
				}, lp.GE, cB[j])
			}
			if j < S-1 { // (8b): activation-gradient arrival
				p.AddConstraint([]lp.Term{
					{Var: tbAt(j, m), Coeff: 1},
					{Var: tbAt(j+1, m), Coeff: -1},
					{Var: nVarAt(j + 1), Coeff: -bs.tbBlk},
				}, lp.GE, cB[j+1]+lat+actOut[j]/B)
			}
		}
		if j < S-N {
			// (9b): swap-in for backward. UploadBwd = params + M*actIn.
			p.AddConstraint([]lp.Term{
				{Var: tbAt(j, 0), Coeff: 1},
				{Var: tbAt(j+N, M-1), Coeff: -1},
				{Var: nVarAt(j + N), Coeff: -bs.tbBlk},
				{Var: nVarAt(j), Coeff: -bs.pBlk / B},
				{Var: pbAt(j), Coeff: 1 / B},
			}, lp.GE, cB[j+N]+lat+(cP[j]+float64(M)*actIn[j])/B)
			// (5b): prefetch fits beside the currently executing stage.
			p.AddConstraint([]lp.Term{
				{Var: pbAt(j), Coeff: 1},
				{Var: nVarAt(j + N), Coeff: 2 * bs.pBlk},
			}, lp.LE, G-2*cP[j+N]-w[j+N]-2*actIn[j+N])
			// (6b): overlap window and stage size.
			p.AddConstraint([]lp.Term{
				{Var: pbAt(j), Coeff: 1},
				{Var: nVarAt(j + N), Coeff: -B * bs.tbBlk},
				{Var: tbAt(j+N, M-1), Coeff: -B},
				{Var: tbAt(j+N, 0), Coeff: B},
			}, lp.LE, B*cB[j+N])
			p.AddConstraint([]lp.Term{
				{Var: pbAt(j), Coeff: 1},
				{Var: nVarAt(j), Coeff: -bs.pBlk},
			}, lp.LE, cP[j]+float64(M)*actIn[j])
		}
	}

	// Objective (3): minimize tb_{0,M-1} + Tb_0.
	p.SetObjectiveCoeff(tbAt(0, M-1), 1)
	p.SetObjectiveCoeff(nVarAt(0), bs.tbBlk)

	intVars := make([]int, S)
	for j := 0; j < S; j++ {
		intVars[j] = j
	}
	mopts := milp.Options{MaxNodes: opts.NodeLimit, TimeLimit: opts.TimeLimit, GapTol: mipGapTol, Scratch: sc}
	if !math.IsInf(incumbent, 1) {
		mopts.Incumbent = incumbent
		mopts.IncumbentSet = true
	}
	if cancel != nil {
		mopts.Cancel = cancel
	}

	res, err := milp.Solve(p, intVars, mopts)
	if err != nil {
		return nil, 0, false, err
	}
	if res.Status != lp.Optimal {
		// Limits hit with no MILP incumbent: fall back to the balanced
		// heuristic so the sweep still has a candidate for this S.
		if balanced != nil {
			return balanced, res.Nodes, false, nil
		}
		return nil, res.Nodes, false, nil
	}

	sizes := make([]int, S)
	for j := 0; j < S; j++ {
		sizes[j] = int(math.Round(res.X[nVarAt(j)]))
	}
	sizes[0]++   // embedding layer
	sizes[S-1]++ // head layer
	part, err = FromBoundaries(params.Profile, sizes, AlgoMIP)
	if err != nil {
		return nil, res.Nodes, false, err
	}
	return part, res.Nodes, true, nil
}
