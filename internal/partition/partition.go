// Package partition implements Mobius' model partition algorithms (§3.2):
// the MIP partition algorithm built on internal/milp (the paper solves the
// same program with Gurobi), plus the maximum-stage and minimum-stage
// baselines used in the Figure 9 ablation, and an exact schedule evaluator
// that computes the pipeline step time of any candidate partition.
package partition

import (
	"fmt"
	"math"

	"mobius/internal/model"
	"mobius/internal/profile"
)

// Stage is a contiguous range of model layers executed as one pipeline
// stage, with its aggregate cost-model statistics.
type Stage struct {
	// First and Last are inclusive layer indices into the profile.
	First, Last int

	// FwdTime and BwdTime are per-microbatch compute durations.
	FwdTime, BwdTime float64
	// ParamBytes and GradBytes are the FP16 footprints swapped between
	// DRAM and GPU memory.
	ParamBytes, GradBytes float64
	// ActInBytes and ActOutBytes are the boundary activations received
	// and emitted per microbatch.
	ActInBytes, ActOutBytes float64
	// WorkingBytes is the peak transient compute footprint.
	WorkingBytes float64
	// Blocks counts the transformer blocks in the stage.
	Blocks int
}

// NumLayers returns the number of model layers in the stage.
func (s Stage) NumLayers() int { return s.Last - s.First + 1 }

// MemFwd returns the GPU memory the stage occupies during forward:
// parameters, working set, and a double-buffered boundary activation
// awaiting offload.
func (s Stage) MemFwd() float64 {
	return s.ParamBytes + s.WorkingBytes + 2*s.ActOutBytes
}

// MemBwd returns the GPU memory during backward: parameters, accumulated
// gradients, working set, and the double-buffered incoming checkpoint.
func (s Stage) MemBwd() float64 {
	return s.ParamBytes + s.GradBytes + s.WorkingBytes + 2*s.ActInBytes
}

// UploadFwd returns the bytes uploaded from DRAM before forward use.
func (s Stage) UploadFwd() float64 { return s.ParamBytes }

// UploadBwd returns the bytes uploaded before backward use: parameters
// plus the M checkpointed boundary activations.
func (s Stage) UploadBwd(microbatches int) float64 {
	return s.ParamBytes + float64(microbatches)*s.ActInBytes
}

// Partition is a complete stage decomposition of a model.
type Partition struct {
	Stages    []Stage
	Algorithm string
}

// NumStages returns the stage count.
func (p *Partition) NumStages() int { return len(p.Stages) }

// Validate checks that the partition covers the profiled model exactly
// once, in order.
func (p *Partition) Validate(prof *profile.Profile) error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("partition: no stages")
	}
	next := 0
	for i, s := range p.Stages {
		if s.First != next {
			return fmt.Errorf("partition: stage %d starts at layer %d, want %d", i, s.First, next)
		}
		if s.Last < s.First {
			return fmt.Errorf("partition: stage %d empty range [%d,%d]", i, s.First, s.Last)
		}
		next = s.Last + 1
	}
	if next != prof.NumLayers() {
		return fmt.Errorf("partition: covers %d of %d layers", next, prof.NumLayers())
	}
	return nil
}

// Params describes the execution environment the partition targets.
type Params struct {
	// Profile supplies per-layer statistics.
	Profile *profile.Profile
	// NumGPUs is N in the paper's formulation.
	NumGPUs int
	// Microbatches is M; the paper sets M = N.
	Microbatches int
	// GPUMem is the usable per-GPU memory G in bytes.
	GPUMem float64
	// Bandwidth is the average effective GPU transfer bandwidth B in B/s.
	Bandwidth float64
	// Latency is the fixed per-transfer setup overhead in seconds; it
	// charges every stage upload and boundary-activation hop, penalizing
	// partitions with many small stages.
	Latency float64
}

func (p Params) withDefaults() Params {
	if p.Microbatches <= 0 {
		p.Microbatches = p.NumGPUs
	}
	return p
}

func (p Params) validate() error {
	if p.Profile == nil || p.Profile.NumLayers() == 0 {
		return fmt.Errorf("partition: missing profile")
	}
	if p.NumGPUs <= 0 {
		return fmt.Errorf("partition: NumGPUs must be positive")
	}
	if p.GPUMem <= 0 || p.Bandwidth <= 0 {
		return fmt.Errorf("partition: GPUMem and Bandwidth must be positive")
	}
	return nil
}

// buildStage aggregates layers [first,last] of the profile into a Stage.
func buildStage(prof *profile.Profile, first, last int) Stage {
	s := Stage{First: first, Last: last}
	for i := first; i <= last; i++ {
		l := prof.Layers[i]
		s.FwdTime += l.FwdTime
		s.BwdTime += l.BwdTime
		s.ParamBytes += l.ParamBytes
		s.GradBytes += l.GradBytes
		if l.WorkingBytes > s.WorkingBytes {
			s.WorkingBytes = l.WorkingBytes
		}
		if l.Layer.Kind == model.KindBlock {
			s.Blocks++
		}
	}
	s.ActOutBytes = prof.Layers[last].ActOutBytes
	if first > 0 {
		s.ActInBytes = prof.Layers[first-1].ActOutBytes
	}
	return s
}

// FromBoundaries builds a partition from stage sizes (layers per stage).
func FromBoundaries(prof *profile.Profile, sizes []int, algorithm string) (*Partition, error) {
	p := &Partition{Algorithm: algorithm}
	at := 0
	for _, n := range sizes {
		if n <= 0 {
			return nil, fmt.Errorf("partition: non-positive stage size %d", n)
		}
		p.Stages = append(p.Stages, buildStage(prof, at, at+n-1))
		at += n
	}
	if err := p.Validate(prof); err != nil {
		return nil, err
	}
	return p, nil
}

// maxLayersPerStage returns the largest contiguous block count whose
// backward footprint fits in GPU memory, given the uniform block size of
// the profiled model. Overheads of the (small) embedding and head layers
// are absorbed into the first/last stage checks by Evaluate.
func maxLayersPerStage(p Params) int {
	prof := p.Profile
	var blk *profile.LayerStats
	for i := range prof.Layers {
		if prof.Layers[i].Layer.Kind == model.KindBlock {
			blk = &prof.Layers[i]
			break
		}
	}
	if blk == nil {
		return 1
	}
	perBlock := blk.ParamBytes + blk.GradBytes
	overhead := blk.WorkingBytes + 4*blk.ActOutBytes
	n := int((p.GPUMem - overhead) / perBlock)
	if n < 1 {
		n = 1
	}
	return n
}

// Infeasible marks an unschedulable partition in Evaluate results.
var Infeasible = math.Inf(1)
