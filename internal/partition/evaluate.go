package partition

import "fmt"

// Schedule holds the analytic pipeline timing of a partition: the
// earliest-start solution of the MIP's pipeline-order constraints for a
// fixed stage decomposition.
type Schedule struct {
	// StepTime is the modelled duration of one training step.
	StepTime float64
	// TF and TB hold forward/backward start times, indexed [stage][mb].
	TF, TB [][]float64
	// PrefetchF and PrefetchB are the achievable prefetch bytes per stage.
	PrefetchF, PrefetchB []float64
}

// Evaluate computes the analytic pipeline step time of a partition under
// the Mobius execution model: stages are swapped from DRAM, the next
// stage on a GPU is prefetched into reserved memory while the current one
// computes, and boundary activations hop between adjacent stages. It is
// the earliest-start solution of constraints (8)-(11) of the paper and is
// exact for a fixed partition.
//
// Evaluate returns Schedule.StepTime == Infeasible (with a nil error)
// when a stage exceeds GPU memory.
func Evaluate(params Params, part *Partition) (*Schedule, error) {
	params = params.withDefaults()
	if err := params.validate(); err != nil {
		return nil, err
	}
	if err := part.Validate(params.Profile); err != nil {
		return nil, err
	}

	S := len(part.Stages)
	N := params.NumGPUs
	M := params.Microbatches
	G := params.GPUMem
	B := params.Bandwidth
	L := params.Latency

	sch := &Schedule{
		TF:        make([][]float64, S),
		TB:        make([][]float64, S),
		PrefetchF: make([]float64, S),
		PrefetchB: make([]float64, S),
	}
	for j := 0; j < S; j++ {
		sch.TF[j] = make([]float64, M)
		sch.TB[j] = make([]float64, M)
	}

	// Memory constraint (4): every stage must fit on its GPU in both
	// passes.
	for _, st := range part.Stages {
		if st.MemFwd() > G || st.MemBwd() > G {
			sch.StepTime = Infeasible
			return sch, nil
		}
	}

	stg := part.Stages

	// Forward pass: stages ascending.
	for j := 0; j < S; j++ {
		// When the stage's data become available on the GPU.
		var ready float64
		if j < N {
			// First-round stages upload at step start.
			ready = L + stg[j].UploadFwd()/B
		} else {
			prev := stg[j-N] // previous stage on the same GPU
			dPrev := prev.FwdTime + sch.TF[j-N][M-1] - sch.TF[j-N][0]
			pf := minf(stg[j].UploadFwd(), maxf(0, G-prev.MemFwd()), B*dPrev)
			sch.PrefetchF[j] = pf
			ready = sch.TF[j-N][M-1] + prev.FwdTime + L + (stg[j].UploadFwd()-pf)/B
		}
		for m := 0; m < M; m++ {
			t := ready
			if m > 0 {
				t = maxf(t, sch.TF[j][m-1]+stg[j].FwdTime) // constraint (10)
			}
			if j > 0 {
				// Constraint (8): upstream activation arrival, charged a
				// per-hop setup latency.
				t = maxf(t, sch.TF[j-1][m]+stg[j-1].FwdTime+L+stg[j].ActInBytes/B)
			}
			sch.TF[j][m] = t
		}
	}

	// Backward pass: stages descending. Constraint (11) seeds the last
	// stage; stages in the final round remain resident from forward.
	for j := S - 1; j >= 0; j-- {
		var ready float64
		if j < S-N {
			nxt := stg[j+N] // stage executed before this one on the same GPU
			dNxt := nxt.BwdTime + sch.TB[j+N][M-1] - sch.TB[j+N][0]
			pb := minf(stg[j].UploadBwd(M), maxf(0, G-nxt.MemBwd()), B*dNxt)
			sch.PrefetchB[j] = pb
			ready = sch.TB[j+N][M-1] + nxt.BwdTime + L + (stg[j].UploadBwd(M)-pb)/B
		}
		for m := 0; m < M; m++ {
			t := ready
			if j == S-1 && m == 0 {
				t = maxf(t, sch.TF[S-1][M-1]+stg[S-1].FwdTime) // constraint (11)
			}
			if m > 0 {
				t = maxf(t, sch.TB[j][m-1]+stg[j].BwdTime)
			}
			if j < S-1 {
				// Activation-gradient arrival from the downstream stage.
				t = maxf(t, sch.TB[j+1][m]+stg[j+1].BwdTime+L+stg[j].ActOutBytes/B)
			}
			sch.TB[j][m] = t
		}
	}

	sch.StepTime = sch.TB[0][M-1] + stg[0].BwdTime
	return sch, nil
}

func minf(vals ...float64) float64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// StepTime is a convenience wrapper returning only the step duration.
func StepTime(params Params, part *Partition) (float64, error) {
	sch, err := Evaluate(params, part)
	if err != nil {
		return 0, err
	}
	return sch.StepTime, nil
}

func (s *Schedule) String() string {
	return fmt.Sprintf("schedule: step=%.3fs stages=%d", s.StepTime, len(s.TF))
}
