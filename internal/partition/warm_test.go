package partition

import (
	"math"
	"reflect"
	"testing"
)

import (
	"mobius/internal/model"
)

// TestWarmStartMatchesColdSweep solves the same planning problem cold
// and warm-started (seeded from a neighboring problem's solution) and
// requires identical outcomes: same stage boundaries, same modelled step
// time, same min-stage flag. Warm starting may only change solver
// effort — the plansvc degradation ladder depends on this equivalence to
// stay deterministic at any cache state.
func TestWarmStartMatchesColdSweep(t *testing.T) {
	for _, m := range []model.Config{model.GPT8B, model.GPT15B} {
		// Neighbor problem: the same model on one fewer GPU (the elastic
		// single-GPU-loss shape).
		neighbor := testParams(t, m, 4)
		opts := MIPOptions{Parallelism: 2}
		warmSrc, _, err := MIP(neighbor, opts)
		if err != nil {
			t.Fatalf("%s neighbor solve: %v", m.Name, err)
		}

		target := testParams(t, m, 3)
		cold, coldStats, err := MIP(target, opts)
		if err != nil {
			t.Fatalf("%s cold solve: %v", m.Name, err)
		}

		wopts := opts
		wopts.Warm = warmSrc
		warm, warmStats, err := MIP(target, wopts)
		if err != nil {
			t.Fatalf("%s warm solve: %v", m.Name, err)
		}

		if !warmStats.WarmStart {
			t.Errorf("%s: warm solve did not register the warm seed", m.Name)
		}
		if !reflect.DeepEqual(cold.Stages, warm.Stages) {
			t.Errorf("%s: warm-started sweep chose different stages\ncold: %+v\nwarm: %+v", m.Name, cold.Stages, warm.Stages)
		}
		if cold.Algorithm != warm.Algorithm {
			t.Errorf("%s: algorithm differs: cold %q warm %q", m.Name, cold.Algorithm, warm.Algorithm)
		}
		if coldStats.StepTime != warmStats.StepTime {
			t.Errorf("%s: objective differs: cold %v warm %v", m.Name, coldStats.StepTime, warmStats.StepTime)
		}
		if coldStats.UsedMinStageFallback != warmStats.UsedMinStageFallback {
			t.Errorf("%s: min-stage flag differs", m.Name)
		}
	}
}

// TestWarmStartIgnoresIncompatibleShape feeds a warm partition whose
// boundaries cannot cover the target profile; the sweep must ignore it
// and still return the cold result.
func TestWarmStartIgnoresIncompatibleShape(t *testing.T) {
	target := testParams(t, model.GPT8B, 4)
	opts := MIPOptions{}
	cold, coldStats, err := MIP(target, opts)
	if err != nil {
		t.Fatal(err)
	}

	bogus := &Partition{Stages: []Stage{{First: 0, Last: 3}}, Algorithm: AlgoMIP}
	wopts := opts
	wopts.Warm = bogus
	warm, warmStats, err := MIP(target, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.WarmStart {
		t.Errorf("incompatible warm shape was accepted as a seed")
	}
	if !reflect.DeepEqual(cold.Stages, warm.Stages) || coldStats.StepTime != warmStats.StepTime {
		t.Errorf("bogus warm hint changed the sweep result")
	}
	if math.IsInf(warmStats.StepTime, 1) {
		t.Errorf("sweep found no partition")
	}
}

// TestWarmStartDoesNotMutateSeed verifies the caller's warm partition is
// left untouched — it is typically a live cache entry.
func TestWarmStartDoesNotMutateSeed(t *testing.T) {
	neighbor := testParams(t, model.GPT8B, 4)
	opts := MIPOptions{}
	warmSrc, _, err := MIP(neighbor, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := &Partition{Stages: append([]Stage(nil), warmSrc.Stages...), Algorithm: warmSrc.Algorithm}

	target := testParams(t, model.GPT8B, 3)
	wopts := opts
	wopts.Warm = warmSrc
	if _, _, err := MIP(target, wopts); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.Stages, warmSrc.Stages) || before.Algorithm != warmSrc.Algorithm {
		t.Errorf("warm start mutated the seed partition")
	}
}
