package partition

import (
	"testing"

	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/profile"
)

// BenchmarkMIPPartitionSweep measures an uncached sweep of MILP partition
// solves over candidate stage counts for the 8B model on 4 GPUs.
func BenchmarkMIPPartitionSweep(b *testing.B) {
	prof, err := profile.Run(model.GPT8B, hw.RTX3090Ti, profile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	params := Params{
		Profile:   prof,
		NumGPUs:   4,
		GPUMem:    hw.RTX3090Ti.MemBytes * 0.92,
		Bandwidth: 13.1e9,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MIP(params, MIPOptions{DisableCache: true, MaxStages: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
