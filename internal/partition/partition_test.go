package partition

import (
	"math"
	"testing"
	"testing/quick"

	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/profile"
)

func testParams(t *testing.T, cfg model.Config, gpus int) Params {
	t.Helper()
	prof, err := profile.Run(cfg, hw.RTX3090Ti, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Params{
		Profile:   prof,
		NumGPUs:   gpus,
		GPUMem:    hw.RTX3090Ti.MemBytes * 0.92, // usable after CUDA ctx/frag
		Bandwidth: 13.1e9,
	}
}

func TestMinStageStructure(t *testing.T) {
	p := testParams(t, model.GPT8B, 4)
	part, err := MinStage(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(p.Profile); err != nil {
		t.Fatal(err)
	}
	if got, want := part.NumStages(), model.GPT8B.Layers; got != want {
		t.Fatalf("min-stage count: got %d want %d", got, want)
	}
	for i, s := range part.Stages[1 : len(part.Stages)-1] {
		if s.Blocks != 1 {
			t.Fatalf("interior stage %d has %d blocks", i+1, s.Blocks)
		}
	}
}

func TestMaxStagePacksMemory(t *testing.T) {
	p := testParams(t, model.GPT15B, 4)
	part, err := MaxStage(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(p.Profile); err != nil {
		t.Fatal(err)
	}
	// Every stage must fit; every stage except the last must not admit
	// one more layer.
	for i, s := range part.Stages {
		if s.MemBwd() > p.GPUMem {
			t.Fatalf("stage %d overflows memory", i)
		}
		if i < len(part.Stages)-1 {
			grown := buildStage(p.Profile, s.First, s.Last+1)
			if grown.MemBwd() <= p.GPUMem && grown.MemFwd() <= p.GPUMem {
				t.Fatalf("stage %d could pack one more layer", i)
			}
		}
	}
	// Max-stage should produce far fewer stages than min-stage.
	if part.NumStages() >= model.GPT15B.Layers {
		t.Fatalf("max-stage produced %d stages", part.NumStages())
	}
}

func TestBalancedSplitsEvenly(t *testing.T) {
	p := testParams(t, model.GPT8B, 4)
	part, err := Balanced(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.MaxInt, 0
	for _, s := range part.Stages {
		n := s.NumLayers()
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("unbalanced: min %d max %d", min, max)
	}
}

func TestEvaluateBasicProperties(t *testing.T) {
	p := testParams(t, model.GPT8B, 4)
	part, err := Balanced(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := Evaluate(p, part)
	if err != nil {
		t.Fatal(err)
	}
	if sch.StepTime <= 0 || math.IsInf(sch.StepTime, 1) {
		t.Fatalf("step time %g", sch.StepTime)
	}
	// Forward start times are monotone in both stage and microbatch.
	for j := range sch.TF {
		for m := 1; m < len(sch.TF[j]); m++ {
			if sch.TF[j][m] < sch.TF[j][m-1] {
				t.Fatalf("TF not monotone in m at stage %d", j)
			}
		}
		if j > 0 && sch.TF[j][0] < sch.TF[j-1][0] {
			t.Fatalf("TF not monotone in stage at %d", j)
		}
	}
	// Backward of stage 0 finishes last.
	last := sch.TB[0][len(sch.TB[0])-1]
	for j := range sch.TB {
		for m := range sch.TB[j] {
			if sch.TB[j][m] > last {
				t.Fatalf("stage %d mb %d backward after final", j, m)
			}
		}
	}
}

func TestEvaluateInfeasibleWhenStageTooBig(t *testing.T) {
	p := testParams(t, model.GPT51B, 4)
	// One giant stage cannot fit 51B on a 24GB GPU.
	part, err := FromBoundaries(p.Profile, []int{p.Profile.NumLayers()}, "giant")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := Evaluate(p, part)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(sch.StepTime, 1) {
		t.Fatalf("expected infeasible, got %g", sch.StepTime)
	}
}

func TestPrefetchReducesStepTime(t *testing.T) {
	// With prefetching (the real evaluator) the step must be no slower
	// than a variant with zero reserved memory (simulated by a tiny GPU
	// mem that still fits stages but leaves no prefetch room)... instead
	// compare: more GPU memory (more prefetch headroom) never hurts.
	p := testParams(t, model.GPT15B, 4)
	part, err := Balanced(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	small := p
	small.GPUMem = p.GPUMem * 0.55
	tBig, err := StepTime(p, part)
	if err != nil {
		t.Fatal(err)
	}
	tSmall, err := StepTime(small, part)
	if err != nil {
		t.Fatal(err)
	}
	if tBig > tSmall+1e-9 {
		t.Fatalf("more memory must not slow the pipeline: %g > %g", tBig, tSmall)
	}
}

func TestMIPPartitionBeatsBaselines(t *testing.T) {
	for _, cfg := range []model.Config{model.GPT8B, model.GPT15B} {
		p := testParams(t, cfg, 4)
		mip, stats, err := MIP(p, MIPOptions{})
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := mip.Validate(p.Profile); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		tMIP := stats.StepTime
		for _, mk := range []func(Params) (*Partition, error){MinStage, MaxStage} {
			base, err := mk(p)
			if err != nil {
				t.Fatal(err)
			}
			tBase, err := StepTime(p, base)
			if err != nil {
				t.Fatal(err)
			}
			if tMIP > tBase*1.001 {
				t.Errorf("%s: MIP (%g) slower than %s (%g)", cfg.Name, tMIP, base.Algorithm, tBase)
			}
		}
		if len(stats.TriedStageCounts) == 0 {
			t.Errorf("%s: no candidates tried", cfg.Name)
		}
		if stats.SolveTime <= 0 {
			t.Errorf("%s: zero solve time", cfg.Name)
		}
	}
}

func TestMIPObjectiveMatchesEvaluator(t *testing.T) {
	// The MILP's objective and the analytic evaluator implement the same
	// execution model; on the returned partition they must agree.
	p := testParams(t, model.GPT8B, 4)
	mip, stats, err := MIP(p, MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tEval, err := StepTime(p, mip)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tEval-stats.StepTime) > 1e-6*math.Max(1, tEval) {
		t.Fatalf("evaluator %g vs stats %g", tEval, stats.StepTime)
	}
}

func TestMIPStageCountMultipleOfGPUs(t *testing.T) {
	p := testParams(t, model.GPT8B, 4)
	mip, stats, err := MIP(p, MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.UsedMinStageFallback && mip.NumStages()%4 != 0 {
		t.Fatalf("MIP stage count %d not a multiple of 4", mip.NumStages())
	}
}

func TestFromBoundariesRejectsBadSizes(t *testing.T) {
	p := testParams(t, model.GPT8B, 4)
	if _, err := FromBoundaries(p.Profile, []int{0, 42}, "bad"); err == nil {
		t.Fatal("zero stage size must fail")
	}
	if _, err := FromBoundaries(p.Profile, []int{3, 3}, "bad"); err == nil {
		t.Fatal("non-covering sizes must fail")
	}
}

func TestStageAggregation(t *testing.T) {
	p := testParams(t, model.GPT8B, 4)
	s := buildStage(p.Profile, 0, 4) // embedding + 4 blocks
	if s.Blocks != 4 {
		t.Fatalf("blocks: got %d", s.Blocks)
	}
	var wantParams float64
	for i := 0; i <= 4; i++ {
		wantParams += p.Profile.Layers[i].ParamBytes
	}
	if math.Abs(s.ParamBytes-wantParams) > 1 {
		t.Fatalf("param bytes: got %g want %g", s.ParamBytes, wantParams)
	}
	if s.ActInBytes != 0 {
		t.Fatal("first stage must have no incoming activation")
	}
	if s.ActOutBytes <= 0 {
		t.Fatal("stage must emit a boundary activation")
	}
}

// TestEvaluateMonotoneInBandwidth: higher bandwidth never slows a
// partition down.
func TestEvaluateMonotoneInBandwidth(t *testing.T) {
	p := testParams(t, model.GPT15B, 4)
	part, err := Balanced(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(bwRaw uint8) bool {
		bw := 2e9 + float64(bwRaw)*0.1e9
		p1, p2 := p, p
		p1.Bandwidth = bw
		p2.Bandwidth = bw * 1.5
		t1, err1 := StepTime(p1, part)
		t2, err2 := StepTime(p2, part)
		return err1 == nil && err2 == nil && t2 <= t1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomPartitionsAreSchedulable: any legal partition of a model that
// fits stage-wise must produce a finite, positive schedule.
func TestRandomPartitionsAreSchedulable(t *testing.T) {
	p := testParams(t, model.GPT8B, 4)
	L := p.Profile.NumLayers()
	f := func(seedRaw uint16) bool {
		// Derive stage sizes from the seed deterministically.
		seed := int(seedRaw)
		var sizes []int
		remaining := L
		for remaining > 0 {
			n := 1 + (seed % 7)
			seed = seed/7 + 13
			if n > remaining {
				n = remaining
			}
			sizes = append(sizes, n)
			remaining -= n
		}
		part, err := FromBoundaries(p.Profile, sizes, "random")
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		sch, err := Evaluate(p, part)
		if err != nil {
			t.Logf("eval: %v", err)
			return false
		}
		if math.IsInf(sch.StepTime, 1) {
			return true // infeasible is a legal outcome for fat stages
		}
		return sch.StepTime > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMIPNearExhaustiveOptimum validates the MILP against brute force:
// on a small model, enumerate every contiguous partition whose stage
// count is a multiple of the GPU count (the MIP's search space) and
// check the MIP result is within the solver's gap tolerance of the best.
func TestMIPNearExhaustiveOptimum(t *testing.T) {
	cfg := model.GPT8B
	cfg.Layers = 6 // tiny: embedding + 6 blocks + head = 8 layers
	prof, err := profile.Run(cfg, hw.RTX3090Ti, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := Params{
		Profile:   prof,
		NumGPUs:   2,
		GPUMem:    hw.RTX3090Ti.MemBytes * 0.92,
		Bandwidth: 13.1e9,
		Latency:   5e-3,
	}
	mip, stats, err := MIP(p, MIPOptions{DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = mip

	// Brute force over compositions of 8 layers.
	L := prof.NumLayers()
	best := math.Inf(1)
	var rec func(sizes []int, remaining int)
	rec = func(sizes []int, remaining int) {
		if remaining == 0 {
			if len(sizes)%p.NumGPUs != 0 {
				return
			}
			part, err := FromBoundaries(prof, append([]int(nil), sizes...), "bf")
			if err != nil {
				return
			}
			if tm, err := StepTime(p, part); err == nil && tm < best {
				best = tm
			}
			return
		}
		for n := 1; n <= remaining; n++ {
			rec(append(sizes, n), remaining-n)
		}
	}
	rec(nil, L)
	if math.IsInf(best, 1) {
		t.Fatal("brute force found nothing feasible")
	}
	if stats.StepTime > best*(1+2*mipGapTol)+1e-9 {
		t.Fatalf("MIP %.6f worse than exhaustive optimum %.6f beyond gap", stats.StepTime, best)
	}
	t.Logf("MIP %.4fs vs exhaustive %.4fs over compositions of %d layers", stats.StepTime, best, L)
}

// TestGreedyFallbackFeasibleAndDeterministic checks the deadline
// fallback's contract: Greedy always returns a valid partition whose
// stages fit GPU memory, its stage count is a multiple of the GPU count,
// and two calls with the same params produce identical boundaries — the
// property the plan-determinism guarantee under cancellation rests on.
func TestGreedyFallbackFeasibleAndDeterministic(t *testing.T) {
	for _, cfg := range []model.Config{model.GPT3B, model.GPT8B, model.GPT15B, model.GPT51B} {
		p := testParams(t, cfg, 4)
		part, err := Greedy(p)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if part.Algorithm != AlgoGreedy {
			t.Fatalf("%s: algorithm %q", cfg.Name, part.Algorithm)
		}
		if err := part.Validate(p.Profile); err != nil {
			t.Fatalf("%s: invalid partition: %v", cfg.Name, err)
		}
		if part.NumStages()%p.NumGPUs != 0 {
			t.Errorf("%s: %d stages not a multiple of %d GPUs", cfg.Name, part.NumStages(), p.NumGPUs)
		}
		for j, st := range part.Stages {
			if st.MemFwd() > p.GPUMem || st.MemBwd() > p.GPUMem {
				t.Errorf("%s: stage %d exceeds GPU memory", cfg.Name, j)
			}
		}
		again, err := Greedy(p)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(again.Stages) != len(part.Stages) {
			t.Fatalf("%s: nondeterministic stage count", cfg.Name)
		}
		for j := range part.Stages {
			if part.Stages[j].First != again.Stages[j].First || part.Stages[j].Last != again.Stages[j].Last {
				t.Fatalf("%s: nondeterministic boundaries at stage %d", cfg.Name, j)
			}
		}
	}
}

// TestGreedyPrefersFewestStagesThatFit checks the search order: Greedy
// walks stage counts upward in multiples of the GPU count and stops at
// the first memory-feasible decomposition, so a model that fits at one
// stage per GPU gets exactly that.
func TestGreedyPrefersFewestStagesThatFit(t *testing.T) {
	p := testParams(t, model.GPT3B, 4)
	part, err := Greedy(p)
	if err != nil {
		t.Fatal(err)
	}
	if part.NumStages() != 4 {
		t.Fatalf("3B fits one stage per GPU; greedy chose %d stages", part.NumStages())
	}
}
