package viz

import (
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed parses the SVG as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("svg is not well-formed XML: %v", err)
		}
	}
}

func TestGroupedBarsWellFormed(t *testing.T) {
	svg := GroupedBars("Figure 5", "s/step", []string{"3B", "8B"}, []Series{
		{Name: "DeepSpeed", Values: []float64{7.9, 15.1}},
		{Name: "Mobius", Values: []float64{4.4, 10.6}},
	})
	wellFormed(t, svg)
	for _, want := range []string{"Figure 5", "DeepSpeed", "Mobius", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestGroupedBarsOOMMarker(t *testing.T) {
	svg := GroupedBars("t", "y", []string{"15B"}, []Series{{Name: "GPipe", Values: []float64{0}}})
	wellFormed(t, svg)
	if !strings.Contains(svg, ">x</text>") {
		t.Error("OOM marker missing")
	}
}

func TestLinesWellFormed(t *testing.T) {
	svg := Lines("loss", "loss", []Points{
		{Name: "gpipe", XY: [][2]float64{{0, 4.2}, {10, 3.1}, {20, 2.5}}},
		{Name: "mobius", XY: [][2]float64{{0, 4.2}, {10, 3.1}, {20, 2.5}}},
	})
	wellFormed(t, svg)
	if strings.Count(svg, "<polyline") != 2 {
		t.Error("want two polylines")
	}
}

func TestCDFsWellFormed(t *testing.T) {
	svg := CDFs("bw", 13.1, []Points{
		{Name: "ds", XY: [][2]float64{{2, 0.5}, {6, 1}}},
	})
	wellFormed(t, svg)
	if !strings.Contains(svg, "CDF") {
		t.Error("missing y label")
	}
}

func TestEscaping(t *testing.T) {
	svg := GroupedBars(`a<b>&"c"`, "y", []string{"l"}, []Series{{Name: "s", Values: []float64{1}}})
	wellFormed(t, svg)
	if strings.Contains(svg, "a<b>") {
		t.Error("unescaped title")
	}
}

func TestEmptyInputsAreSafe(t *testing.T) {
	wellFormed(t, GroupedBars("t", "y", nil, nil))
	wellFormed(t, Lines("t", "y", nil))
	wellFormed(t, CDFs("t", 1, nil))
}

func TestNiceMax(t *testing.T) {
	cases := map[float64]float64{0: 1, 0.7: 1, 1.3: 2, 3: 5, 7: 10, 23: 25, 80: 100}
	for in, want := range cases {
		if got := niceMax(in); got != want {
			t.Errorf("niceMax(%g)=%g want %g", in, got, want)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	gen := func() string {
		return Lines("t", "y", []Points{{Name: "a", XY: [][2]float64{{0, 1}, {1, 2}}}})
	}
	if gen() != gen() {
		t.Error("non-deterministic SVG")
	}
}

func TestManySeriesUsePaletteCycling(t *testing.T) {
	var series []Series
	for i := 0; i < 9; i++ { // more series than palette entries
		series = append(series, Series{Name: string(rune('a' + i)), Values: []float64{float64(i + 1)}})
	}
	svg := GroupedBars("many", "y", []string{"g"}, series)
	wellFormed(t, svg)
	if strings.Count(svg, "<rect") < 9 {
		t.Error("missing bars")
	}
}

func TestLinesSinglePoint(t *testing.T) {
	wellFormed(t, Lines("t", "y", []Points{{Name: "p", XY: [][2]float64{{1, 1}}}}))
}
