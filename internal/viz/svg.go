// Package viz renders the reproduction's figures as standalone SVG
// documents using only the standard library. cmd/mobius-bench -svg
// writes one file per supported figure so the paper's plots can be
// compared visually, not just numerically.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// canvas accumulates SVG elements.
type canvas struct {
	w, h int
	b    strings.Builder
}

func newCanvas(w, h int) *canvas {
	c := &canvas{w: w, h: h}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	c.b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	return c
}

func (c *canvas) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`, x, y, w, h, fill)
}

func (c *canvas) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`, x1, y1, x2, y2, stroke, width)
}

func (c *canvas) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="%s">%s</text>`,
		x, y, size, anchor, escape(s))
}

func (c *canvas) polyline(pts [][2]float64, stroke string, width float64) {
	var sb strings.Builder
	for i, p := range pts {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.1f,%.1f", p[0], p[1])
	}
	fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`, sb.String(), stroke, width)
}

func (c *canvas) String() string { return c.b.String() + "</svg>" }

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// palette holds the series colors, in order.
var palette = []string{"#4363d8", "#e6194b", "#3cb44b", "#f58231", "#911eb4", "#46f0f0"}

// Series is one named data series.
type Series struct {
	Name   string
	Values []float64 // bar heights or y-values
}

// Points is one named (x, y) series for line plots.
type Points struct {
	Name string
	XY   [][2]float64
}

const (
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 55
)

// niceMax rounds v up to a pleasant axis maximum.
func niceMax(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// frame draws the axes, title and y-axis ticks, returning the plot
// area and the y scale.
func frame(c *canvas, title, yLabel string, yMax float64) (x0, y0, pw, ph float64, yOf func(float64) float64) {
	x0, y0 = float64(marginL), float64(marginT)
	pw = float64(c.w - marginL - marginR)
	ph = float64(c.h - marginT - marginB)
	c.text(float64(c.w)/2, 22, 15, "middle", title)
	c.line(x0, y0, x0, y0+ph, "#333", 1.2)
	c.line(x0, y0+ph, x0+pw, y0+ph, "#333", 1.2)
	yOf = func(v float64) float64 { return y0 + ph - v/yMax*ph }
	for i := 0; i <= 4; i++ {
		v := yMax * float64(i) / 4
		y := yOf(v)
		c.line(x0-4, y, x0, y, "#333", 1)
		c.text(x0-8, y+4, 11, "end", trimFloat(v))
		if i > 0 {
			c.line(x0, y, x0+pw, y, "#eee", 1)
		}
	}
	c.text(16, y0+ph/2, 12, "middle",
		"") // reserved
	c.text(float64(marginL)/2, float64(marginT)-8, 11, "middle", yLabel)
	return
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// legend draws a color legend under the plot.
func legend(c *canvas, names []string) {
	x := float64(marginL)
	y := float64(c.h) - 14
	for i, n := range names {
		c.rect(x, y-9, 10, 10, palette[i%len(palette)])
		c.text(x+14, y, 11, "start", n)
		x += 18 + float64(8*len(n))
	}
}

// GroupedBars renders a grouped bar chart: one group per label, one bar
// per series. Zero or negative values render as "x" marks (OOM).
func GroupedBars(title, yLabel string, labels []string, series []Series) string {
	c := newCanvas(760, 420)
	yMax := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if v > yMax {
				yMax = v
			}
		}
	}
	yMax = niceMax(yMax)
	x0, _, pw, _, yOf := frame(c, title, yLabel, yMax)

	groups := len(labels)
	if groups == 0 || len(series) == 0 {
		return c.String()
	}
	groupW := pw / float64(groups)
	barW := groupW * 0.8 / float64(len(series))
	for gi, lab := range labels {
		gx := x0 + float64(gi)*groupW
		for si, s := range series {
			if gi >= len(s.Values) {
				continue
			}
			v := s.Values[gi]
			bx := gx + groupW*0.1 + float64(si)*barW
			if v <= 0 {
				c.text(bx+barW/2, yOf(0)-6, 11, "middle", "x")
				continue
			}
			c.rect(bx, yOf(v), barW*0.92, yOf(0)-yOf(v), palette[si%len(palette)])
		}
		c.text(gx+groupW/2, yOf(0)+18, 11, "middle", lab)
	}
	legend(c, names(series))
	return c.String()
}

// Lines renders an XY line chart (loss curves, scaling curves).
func Lines(title, yLabel string, series []Points) string {
	c := newCanvas(760, 420)
	yMax, xMax := 0.0, 0.0
	for _, s := range series {
		for _, p := range s.XY {
			if p[1] > yMax {
				yMax = p[1]
			}
			if p[0] > xMax {
				xMax = p[0]
			}
		}
	}
	yMax = niceMax(yMax)
	if xMax <= 0 {
		xMax = 1
	}
	x0, _, pw, _, yOf := frame(c, title, yLabel, yMax)
	xOf := func(v float64) float64 { return x0 + v/xMax*pw }

	for si, s := range series {
		pts := make([][2]float64, len(s.XY))
		for i, p := range s.XY {
			pts[i] = [2]float64{xOf(p[0]), yOf(p[1])}
		}
		c.polyline(pts, palette[si%len(palette)], 2)
	}
	var ns []Series
	for _, s := range series {
		ns = append(ns, Series{Name: s.Name})
	}
	legend(c, names(ns))
	return c.String()
}

// CDFs renders cumulative distribution curves over [0, xMax].
// Each series' XY must already be (value, cumulative fraction) pairs.
func CDFs(title string, xMax float64, series []Points) string {
	c := newCanvas(760, 420)
	x0, _, pw, _, yOf := frame(c, title, "CDF", 1)
	xOf := func(v float64) float64 {
		if v > xMax {
			v = xMax
		}
		return x0 + v/xMax*pw
	}
	for si, s := range series {
		pts := [][2]float64{{xOf(0), yOf(0)}}
		for _, p := range s.XY {
			pts = append(pts, [2]float64{xOf(p[0]), yOf(p[1])})
		}
		c.polyline(pts, palette[si%len(palette)], 2)
	}
	var ns []Series
	for _, s := range series {
		ns = append(ns, Series{Name: s.Name})
	}
	legend(c, names(ns))
	return c.String()
}

func names(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}
