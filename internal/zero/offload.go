package zero

import (
	"fmt"

	"mobius/internal/hw"
	"mobius/internal/pipeline"
	"mobius/internal/sim"
	"mobius/internal/trace"
)

// RunOffload simulates ZeRO-Offload [37] (§5): FP16 parameters stay
// replicated in every GPU's memory; gradients are reduced across GPUs
// and offloaded to DRAM, where the CPU optimizer updates the FP32 master
// copy, and the refreshed FP16 parameters are gathered back. Because
// every GPU holds a full parameter copy, the trainable model scale is
// bounded by a single GPU's memory — the limitation ZeRO-Infinity (and
// Mobius) remove.
func RunOffload(topo *hw.Topology, cfg Config) (*pipeline.Result, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("zero: profile is required")
	}
	N := topo.NumGPUs()

	srv, err := hw.Build(topo)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	srv.Sim.Observe(rec)
	res := &pipeline.Result{System: "ZeRO-Offload", Recorder: rec, Server: srv}

	layers := cfg.Profile.Layers
	L := len(layers)

	// OOM check: the full FP16 model plus working set must fit on one GPU.
	var paramBytes, maxWorking, maxAct float64
	for _, l := range layers {
		paramBytes += l.ParamBytes
		if l.WorkingBytes > maxWorking {
			maxWorking = l.WorkingBytes
		}
		if l.ActOutBytes > maxAct {
			maxAct = l.ActOutBytes
		}
	}
	if paramBytes+maxWorking+2*maxAct > topo.GPUMem(0) {
		res.OOM = true
		return res, nil
	}

	s := srv.Sim
	tag := func(kind trace.Kind, gpu, peer, layer int) trace.Tag {
		return trace.Tag{Kind: kind, GPU: gpu, PeerGPU: peer, Stage: layer, Microbatch: -1}
	}

	// Forward: parameters are resident, so only compute + checkpoints.
	fwdDone := make([][]*sim.Task, L)
	for l := 0; l < L; l++ {
		fwdDone[l] = make([]*sim.Task, N)
		for g := 0; g < N; g++ {
			var deps []*sim.Task
			if l > 0 {
				deps = append(deps, fwdDone[l-1][g])
			}
			c := s.Compute(fmt.Sprintf("F%d.g%d", l, g), srv.ComputeEngines[g], layers[l].FwdTime, deps...)
			c.Tag = tag(trace.KindCompute, g, -1, l)
			fwdDone[l][g] = c
			if layers[l].ActOutBytes > 0 {
				off := s.Transfer(fmt.Sprintf("O%d.g%d", l, g), srv.DownloadEngine[g],
					srv.Route(hw.GPUEnd(g), hw.DRAMEnd), layers[l].ActOutBytes, 0, c)
				off.Tag = tag(trace.KindActOffload, g, -1, l)
			}
		}
	}

	// Backward per layer: compute, reduce-scatter gradients across GPUs
	// (staged through the host on commodity topologies), flush each
	// reduced shard to DRAM for the CPU optimizer, then gather the
	// refreshed FP16 parameters back.
	bwdDone := make([][]*sim.Task, L)
	for l := L - 1; l >= 0; l-- {
		bwdDone[l] = make([]*sim.Task, N)
		shard := layers[l].ParamBytes / float64(N)
		for g := 0; g < N; g++ {
			var deps []*sim.Task
			if l < L-1 {
				deps = append(deps, bwdDone[l+1][g])
			} else {
				deps = append(deps, fwdDone[L-1]...)
			}
			if l > 0 && layers[l-1].ActOutBytes > 0 {
				au := s.Transfer(fmt.Sprintf("AU%d.g%d", l, g), srv.UploadEngines[g],
					srv.Route(hw.DRAMEnd, hw.GPUEnd(g)), layers[l-1].ActOutBytes, 0, deps...)
				au.Tag = tag(trace.KindActUpload, g, -1, l)
				deps = append(deps, au)
			}
			c := s.Compute(fmt.Sprintf("B%d.g%d", l, g), srv.ComputeEngines[g], layers[l].BwdTime, deps...)
			c.Tag = tag(trace.KindCompute, g, -1, l)
			bwdDone[l][g] = c

			// Reduce-scatter: this GPU sends the other GPUs' shards.
			var rs []*sim.Task
			for h := 0; h < N; h++ {
				if h == g {
					continue
				}
				ex := s.Transfer(fmt.Sprintf("RS%d.g%d-%d", l, g, h), srv.DownloadEngine[g],
					srv.Route(hw.GPUEnd(g), hw.GPUEnd(h)), shard, 0, c)
				ex.Tag = tag(trace.KindCollective, g, h, l)
				rs = append(rs, ex)
			}
			// Flush the reduced shard, then pull the refreshed shard and
			// exchange it with the peers (the parameter refresh path).
			gf := s.Transfer(fmt.Sprintf("GF%d.g%d", l, g), srv.DownloadEngine[g],
				srv.Route(hw.GPUEnd(g), hw.DRAMEnd), shard, 0, append(rs, c)...)
			gf.Tag = tag(trace.KindGradFlush, g, -1, l)
			pu := s.Transfer(fmt.Sprintf("PU%d.g%d", l, g), srv.UploadEngines[g],
				srv.Route(hw.DRAMEnd, hw.GPUEnd(g)), shard, 0, gf)
			pu.Tag = tag(trace.KindParamUpload, g, -1, l)
			for h := 0; h < N; h++ {
				if h == g {
					continue
				}
				ex := s.Transfer(fmt.Sprintf("PX%d.g%d-%d", l, g, h), srv.DownloadEngine[g],
					srv.Route(hw.GPUEnd(g), hw.GPUEnd(h)), shard, 0, pu)
				ex.Tag = tag(trace.KindCollective, g, h, l)
			}
		}
	}

	if err := srv.RouteErr(); err != nil {
		return nil, fmt.Errorf("zero: offload schedule: %w", err)
	}
	end, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("zero: offload schedule: %w", err)
	}
	res.StepTime = end
	return res, nil
}

// RunInfinityNVMe simulates ZeRO-Infinity with NVMe offload [36] (§5):
// the same communication pattern as ZeRO-3 with heterogeneous memory,
// but parameter shards and gradients live on the SSD tier, whose few
// GB/s of bandwidth bottleneck every gather — the reason Mobius extends
// GPU memory with DRAM only (§3.1).
func RunInfinityNVMe(topo *hw.Topology, cfg Config) (*pipeline.Result, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("zero: profile is required")
	}
	if !topo.HasSSD() {
		return nil, fmt.Errorf("zero: topology %q has no NVMe tier (use WithSSD)", topo.Name)
	}
	look := cfg.Lookahead
	if look <= 0 {
		look = 2
	}
	N := topo.NumGPUs()

	srv, err := hw.Build(topo)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	srv.Sim.Observe(rec)
	res := &pipeline.Result{System: "ZeRO-Infinity (NVMe)", Recorder: rec, Server: srv}

	s := srv.Sim
	layers := cfg.Profile.Layers
	L := len(layers)
	tag := func(kind trace.Kind, gpu, peer, layer int) trace.Tag {
		return trace.Tag{Kind: kind, GPU: gpu, PeerGPU: peer, Stage: layer, Microbatch: -1}
	}

	gather := func(name string, l int, trigger *sim.Task) *sim.Task {
		shard := layers[l].ParamBytes / float64(N)
		var done []*sim.Task
		for g := 0; g < N; g++ {
			up := s.Transfer(fmt.Sprintf("%s.shard%d", name, g), srv.UploadEngines[g],
				srv.Route(hw.SSDEnd, hw.GPUEnd(g)), shard, 0, trigger)
			up.Tag = tag(trace.KindParamUpload, g, -1, l)
			done = append(done, up)
			for h := 0; h < N; h++ {
				if h == g {
					continue
				}
				ex := s.Transfer(fmt.Sprintf("%s.ag%d-%d", name, g, h), srv.DownloadEngine[g],
					srv.Route(hw.GPUEnd(g), hw.GPUEnd(h)), shard, 0, up)
				ex.Tag = tag(trace.KindCollective, g, h, l)
				done = append(done, ex)
			}
		}
		return s.After(name+".done", done...)
	}

	fwdDone := make([][]*sim.Task, L)
	for l := 0; l < L; l++ {
		var trigger *sim.Task
		if l >= look {
			trigger = fwdDone[l-look][0]
		}
		g := gather(fmt.Sprintf("gf%d", l), l, trigger)
		fwdDone[l] = make([]*sim.Task, N)
		for gi := 0; gi < N; gi++ {
			deps := []*sim.Task{g}
			if l > 0 {
				deps = append(deps, fwdDone[l-1][gi])
			}
			c := s.Compute(fmt.Sprintf("F%d.g%d", l, gi), srv.ComputeEngines[gi], layers[l].FwdTime, deps...)
			c.Tag = tag(trace.KindCompute, gi, -1, l)
			fwdDone[l][gi] = c
			if layers[l].ActOutBytes > 0 {
				off := s.Transfer(fmt.Sprintf("O%d.g%d", l, gi), srv.DownloadEngine[gi],
					srv.Route(hw.GPUEnd(gi), hw.DRAMEnd), layers[l].ActOutBytes, 0, c)
				off.Tag = tag(trace.KindActOffload, gi, -1, l)
			}
		}
	}

	bwdDone := make([][]*sim.Task, L)
	for l := L - 1; l >= 0; l-- {
		var trigger *sim.Task
		if l+look < L {
			trigger = bwdDone[l+look][0]
		} else {
			trigger = s.After(fmt.Sprintf("fwdDrain%d", l), fwdDone[L-1]...)
		}
		g := gather(fmt.Sprintf("gb%d", l), l, trigger)
		bwdDone[l] = make([]*sim.Task, N)
		for gi := 0; gi < N; gi++ {
			deps := []*sim.Task{g}
			if l < L-1 {
				deps = append(deps, bwdDone[l+1][gi])
			}
			if l > 0 && layers[l-1].ActOutBytes > 0 {
				au := s.Transfer(fmt.Sprintf("AU%d.g%d", l, gi), srv.UploadEngines[gi],
					srv.Route(hw.DRAMEnd, hw.GPUEnd(gi)), layers[l-1].ActOutBytes, 0, g)
				au.Tag = tag(trace.KindActUpload, gi, -1, l)
				deps = append(deps, au)
			}
			c := s.Compute(fmt.Sprintf("B%d.g%d", l, gi), srv.ComputeEngines[gi], layers[l].BwdTime, deps...)
			c.Tag = tag(trace.KindCompute, gi, -1, l)
			bwdDone[l][gi] = c
			gf := s.Transfer(fmt.Sprintf("GF%d.g%d", l, gi), srv.DownloadEngine[gi],
				srv.Route(hw.GPUEnd(gi), hw.SSDEnd), layers[l].GradBytes, 0, c)
			gf.Tag = tag(trace.KindGradFlush, gi, -1, l)
		}
	}

	if err := srv.RouteErr(); err != nil {
		return nil, fmt.Errorf("zero: nvme schedule: %w", err)
	}
	end, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("zero: nvme schedule: %w", err)
	}
	res.StepTime = end
	return res, nil
}
