package zero

import (
	"math"
	"testing"

	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/profile"
	"mobius/internal/trace"
)

func prof(t *testing.T, cfg model.Config) *profile.Profile {
	t.Helper()
	p, err := profile.Run(cfg, hw.RTX3090Ti, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestZeroRunsToCompletion(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	res, err := Run(topo, Config{Profile: prof(t, model.GPT8B)})
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatal("ZeRO with heterogeneous memory must never OOM")
	}
	if res.StepTime <= 0 || math.IsInf(res.StepTime, 1) {
		t.Fatalf("step time %g", res.StepTime)
	}
	// Every GPU computes every layer twice (fwd + bwd).
	L := model.GPT8B.Layers + 2
	if got, want := len(res.Recorder.Computes), 2*4*L; got != want {
		t.Fatalf("computes: got %d want %d", got, want)
	}
}

func TestZeroTrafficNearPaperAnalysis(t *testing.T) {
	// §2.3 / Eq. 2: DeepSpeed moves ~1.5N x the FP32 parameter bytes; the
	// paper measures 7.3x the model size with N=4 GPUs (Figure 6).
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	for _, mc := range []model.Config{model.GPT8B, model.GPT15B} {
		res, err := Run(topo, Config{Profile: prof(t, mc)})
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.TotalTraffic() / mc.ParamBytesFP32()
		if ratio < 4.5 || ratio > 9 {
			t.Errorf("%s: traffic ratio %.2fx, want ~6-7.3x for N=4", mc.Name, ratio)
		}
	}
}

func TestZeroCollectiveTrafficDominates(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	res, err := Run(topo, Config{Profile: prof(t, model.GPT8B)})
	if err != nil {
		t.Fatal(err)
	}
	coll := res.Recorder.TotalBytes(func(tag trace.Tag) bool { return tag.Kind == trace.KindCollective })
	if coll <= 0 {
		t.Fatal("no collective traffic recorded")
	}
	// All-gather moves (N-1)/N of params per pass; with N=4 that is 1.5x
	// params fp16 = 0.75x fp32 per step across both passes... compare
	// against shard uploads: exchanges must be 3x the shard uploads.
	shards := res.Recorder.TotalBytes(func(tag trace.Tag) bool { return tag.Kind == trace.KindParamUpload })
	if math.Abs(coll/shards-3) > 0.2 {
		t.Errorf("all-gather/shard ratio %.2f, want ~3 for N=4", coll/shards)
	}
}

func TestZeroBandwidthCollapsesUnderContention(t *testing.T) {
	// Figure 2: most DeepSpeed data moves at <= half the root complex
	// bandwidth because of all-to-all contention.
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	res, err := Run(topo, Config{Profile: prof(t, model.GPT15B)})
	if err != nil {
		t.Fatal(err)
	}
	cdf := res.Recorder.BandwidthCDF(nil)
	if cdf.Empty() {
		t.Fatal("empty bandwidth CDF")
	}
	if med := cdf.Median(); med > 7e9 {
		t.Errorf("median bandwidth %.2f GB/s, want <= ~6.5 (half of 13.1) under contention", med/1e9)
	}
}

func TestZeroPipelineModeOOMsOnLargeModels(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	res, err := RunPipelineMode(topo, prof(t, model.GPT15B), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Fatal("DeepSpeed pipeline mode must OOM on 15B")
	}
	if res.System != "DeepSpeed (pipeline)" {
		t.Fatalf("system label %q", res.System)
	}
}

func TestZeroFasterOnNVLinkServer(t *testing.T) {
	// Figures 15/16: with NVLink + P2P the all-gather no longer fights
	// the root complex, so DeepSpeed improves dramatically on the data
	// center server.
	commodity := hw.Commodity(hw.V100, 2, 2)
	dc := hw.DataCenter(hw.V100, 4, 300*hw.GB)
	p := prof(t, model.GPT8B)
	resC, err := Run(commodity, Config{Profile: p})
	if err != nil {
		t.Fatal(err)
	}
	resDC, err := Run(dc, Config{Profile: p})
	if err != nil {
		t.Fatal(err)
	}
	if resDC.StepTime >= resC.StepTime {
		t.Errorf("DC (%g) must beat commodity (%g) for DeepSpeed", resDC.StepTime, resC.StepTime)
	}
}

func TestZeroDeterministic(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 1, 3)
	p := prof(t, model.GPT8B)
	a, _ := Run(topo, Config{Profile: p})
	b, _ := Run(topo, Config{Profile: p})
	if a.StepTime != b.StepTime {
		t.Fatalf("non-deterministic: %g vs %g", a.StepTime, b.StepTime)
	}
}

func TestZeroRequiresProfile(t *testing.T) {
	if _, err := Run(hw.Commodity(hw.RTX3090Ti, 2), Config{}); err == nil {
		t.Fatal("missing profile must error")
	}
}

func TestZeROOffloadBoundedBySingleGPU(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	// 8B fp16 params (~17 GB) fit on a 24 GB GPU; 15B (~26 GB) do not.
	small, err := RunOffload(topo, Config{Profile: prof(t, model.GPT8B)})
	if err != nil {
		t.Fatal(err)
	}
	if small.OOM {
		t.Fatal("ZeRO-Offload must train 8B")
	}
	if small.StepTime <= 0 {
		t.Fatal("bad step time")
	}
	big, err := RunOffload(topo, Config{Profile: prof(t, model.GPT15B)})
	if err != nil {
		t.Fatal(err)
	}
	if !big.OOM {
		t.Fatal("ZeRO-Offload must OOM on 15B (replicated parameters)")
	}
}

func TestZeROOffloadLighterCommsThanZeRO3(t *testing.T) {
	// With parameters resident, ZeRO-Offload moves much less data than
	// ZeRO-3 hetero (no per-layer parameter gathers).
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	p := prof(t, model.GPT8B)
	off, err := RunOffload(topo, Config{Profile: p})
	if err != nil {
		t.Fatal(err)
	}
	z3, err := Run(topo, Config{Profile: p})
	if err != nil {
		t.Fatal(err)
	}
	if off.TotalTraffic() >= z3.TotalTraffic() {
		t.Errorf("offload traffic %.1f GB must be below ZeRO-3 %.1f GB",
			off.TotalTraffic()/1e9, z3.TotalTraffic()/1e9)
	}
}

func TestZeROInfinityNVMeSlower(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2).WithSSD(hw.CommoditySSDBW, hw.CommoditySSDBytes)
	p := prof(t, model.GPT8B)
	nvme, err := RunInfinityNVMe(topo, Config{Profile: p})
	if err != nil {
		t.Fatal(err)
	}
	dram, err := Run(topo, Config{Profile: p})
	if err != nil {
		t.Fatal(err)
	}
	if nvme.StepTime <= dram.StepTime {
		t.Errorf("NVMe offload (%.2f) must be slower than DRAM offload (%.2f)", nvme.StepTime, dram.StepTime)
	}
}

func TestZeROInfinityNVMeRequiresSSD(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	if _, err := RunInfinityNVMe(topo, Config{Profile: prof(t, model.GPT8B)}); err == nil {
		t.Fatal("missing SSD tier must error")
	}
}
