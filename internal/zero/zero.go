// Package zero models DeepSpeed's ZeRO-3 data parallelism with
// heterogeneous memory (ZeRO-Infinity style offload), the paper's main
// baseline (§2.3). Model states live in DRAM; every GPU processes its own
// microbatch of every layer, so each layer's FP16 parameters must be
// gathered onto all GPUs for forward and again for backward, and every
// GPU's gradients travel back to DRAM — the ~7.3x-model-size traffic and
// all-to-all contention the paper measures.
//
// The emitted communication pattern per layer and pass:
//
//   - shard upload: every GPU pulls its 1/N parameter shard from DRAM;
//   - all-gather: every GPU sends its shard to the other N-1 GPUs
//     (staged through DRAM on commodity servers without GPUDirect P2P);
//   - backward additionally flushes each GPU's full layer gradient to
//     DRAM for the CPU optimizer (the all-reduce-through-host path).
//
// DeepSpeed overlaps the next layer's gather with the current layer's
// compute (a bounded lookahead window), which the schedule reproduces.
package zero

import (
	"fmt"

	"mobius/internal/hw"
	"mobius/internal/pipeline"
	"mobius/internal/profile"
	"mobius/internal/sim"
	"mobius/internal/trace"
)

// Config describes one ZeRO-3 heterogeneous-memory training step.
type Config struct {
	Profile *profile.Profile
	// Lookahead is how many layers ahead parameter gathers may run
	// (default 2, mirroring DeepSpeed's prefetch window).
	Lookahead int
}

// Run simulates one DeepSpeed-ZeRO-3-with-heterogeneous-memory training
// step on the topology.
func Run(topo *hw.Topology, cfg Config) (*pipeline.Result, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("zero: profile is required")
	}
	look := cfg.Lookahead
	if look <= 0 {
		look = 2
	}
	N := topo.NumGPUs()

	srv, err := hw.Build(topo)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	srv.Sim.Observe(rec)
	res := &pipeline.Result{System: "DeepSpeed (hetero)", Recorder: rec, Server: srv}

	s := srv.Sim
	layers := cfg.Profile.Layers
	L := len(layers)

	tag := func(kind trace.Kind, gpu, peer, layer int) trace.Tag {
		return trace.Tag{Kind: kind, GPU: gpu, PeerGPU: peer, Stage: layer, Microbatch: -1}
	}

	// gather emits the parameter-gather flows for one layer: N shard
	// uploads plus N*(N-1) shard exchanges, gated on the trigger task.
	gather := func(name string, l int, trigger *sim.Task) *sim.Task {
		shard := layers[l].ParamBytes / float64(N)
		var done []*sim.Task
		for g := 0; g < N; g++ {
			up := s.Transfer(fmt.Sprintf("%s.shard%d", name, g), srv.UploadEngines[g],
				srv.Route(hw.DRAMEnd, hw.GPUEnd(g)), shard, 0, trigger)
			up.Tag = tag(trace.KindParamUpload, g, -1, l)
			done = append(done, up)
			for h := 0; h < N; h++ {
				if h == g {
					continue
				}
				ex := s.Transfer(fmt.Sprintf("%s.ag%d-%d", name, g, h), srv.DownloadEngine[g],
					srv.Route(hw.GPUEnd(g), hw.GPUEnd(h)), shard, 0, up)
				ex.Tag = tag(trace.KindCollective, g, h, l)
				done = append(done, ex)
			}
		}
		return s.After(name+".done", done...)
	}

	// Forward.
	fwdDone := make([][]*sim.Task, L) // per layer, per GPU
	gatherF := make([]*sim.Task, L)
	for l := 0; l < L; l++ {
		var trigger *sim.Task
		if l >= look {
			// The gather window: layer l's gather may start once layer
			// l-look finished computing on GPU 0 (all GPUs advance in
			// lockstep in data parallelism).
			trigger = fwdDone[l-look][0]
		}
		gatherF[l] = gather(fmt.Sprintf("gf%d", l), l, trigger)
		fwdDone[l] = make([]*sim.Task, N)
		for g := 0; g < N; g++ {
			var deps []*sim.Task
			deps = append(deps, gatherF[l])
			if l > 0 {
				deps = append(deps, fwdDone[l-1][g])
			}
			c := s.Compute(fmt.Sprintf("F%d.g%d", l, g), srv.ComputeEngines[g], layers[l].FwdTime, deps...)
			c.Tag = tag(trace.KindCompute, g, -1, l)
			fwdDone[l][g] = c
			if layers[l].ActOutBytes > 0 {
				off := s.Transfer(fmt.Sprintf("O%d.g%d", l, g), srv.DownloadEngine[g],
					srv.Route(hw.GPUEnd(g), hw.DRAMEnd), layers[l].ActOutBytes, 0, c)
				off.Tag = tag(trace.KindActOffload, g, -1, l)
			}
		}
	}

	// Backward.
	bwdDone := make([][]*sim.Task, L)
	for l := L - 1; l >= 0; l-- {
		var trigger *sim.Task
		if l+look < L {
			trigger = bwdDone[l+look][0]
		} else {
			// The first backward gathers wait for the forward to drain.
			trigger = s.After(fmt.Sprintf("fwdDrain%d", l), fwdDone[L-1]...)
		}
		g := gather(fmt.Sprintf("gb%d", l), l, trigger)
		bwdDone[l] = make([]*sim.Task, N)
		for gi := 0; gi < N; gi++ {
			deps := []*sim.Task{g}
			if l < L-1 {
				deps = append(deps, bwdDone[l+1][gi])
			}
			// Re-upload the checkpointed input activation.
			if l > 0 && layers[l-1].ActOutBytes > 0 {
				au := s.Transfer(fmt.Sprintf("AU%d.g%d", l, gi), srv.UploadEngines[gi],
					srv.Route(hw.DRAMEnd, hw.GPUEnd(gi)), layers[l-1].ActOutBytes, 0, g)
				au.Tag = tag(trace.KindActUpload, gi, -1, l)
				deps = append(deps, au)
			}
			c := s.Compute(fmt.Sprintf("B%d.g%d", l, gi), srv.ComputeEngines[gi], layers[l].BwdTime, deps...)
			c.Tag = tag(trace.KindCompute, gi, -1, l)
			bwdDone[l][gi] = c
			if topo.HasP2P() {
				// With GPUDirect P2P the gradients reduce-scatter over
				// NVLink, and only each GPU's reduced shard travels to
				// DRAM.
				shard := layers[l].GradBytes / float64(N)
				var rs []*sim.Task
				for h := 0; h < N; h++ {
					if h == gi {
						continue
					}
					ex := s.Transfer(fmt.Sprintf("RS%d.g%d-%d", l, gi, h), srv.DownloadEngine[gi],
						srv.Route(hw.GPUEnd(gi), hw.GPUEnd(h)), shard, 0, c)
					ex.Tag = tag(trace.KindCollective, gi, h, l)
					rs = append(rs, ex)
				}
				gf := s.Transfer(fmt.Sprintf("GF%d.g%d", l, gi), srv.DownloadEngine[gi],
					srv.Route(hw.GPUEnd(gi), hw.DRAMEnd), shard, 0, append(rs, c)...)
				gf.Tag = tag(trace.KindGradFlush, gi, -1, l)
				continue
			}
			// Without P2P every GPU's gradients travel to DRAM (the
			// all-reduce-through-host path of Eq. 2: N copies of the
			// layer gradient).
			gf := s.Transfer(fmt.Sprintf("GF%d.g%d", l, gi), srv.DownloadEngine[gi],
				srv.Route(hw.GPUEnd(gi), hw.DRAMEnd), layers[l].GradBytes, 0, c)
			gf.Tag = tag(trace.KindGradFlush, gi, -1, l)
		}
	}

	if err := srv.RouteErr(); err != nil {
		return nil, fmt.Errorf("zero: schedule: %w", err)
	}
	end, err := s.Run()
	if err != nil {
		return nil, fmt.Errorf("zero: schedule: %w", err)
	}
	res.StepTime = end
	return res, nil
}

// RunPipelineMode simulates DeepSpeed's pipeline-parallel mode, which
// keeps all model states in GPU memory; it shares GPipe's execution model
// and OOM behaviour (§4, "Baselines").
func RunPipelineMode(topo *hw.Topology, prof *profile.Profile, microbatches int) (*pipeline.Result, error) {
	return pipeline.RunGPipe(topo, pipeline.GPipeConfig{
		Profile:      prof,
		Microbatches: microbatches,
		SystemName:   "DeepSpeed (pipeline)",
	})
}
