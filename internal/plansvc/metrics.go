package plansvc

import "fmt"

// Metrics counts what the service did. Every counter is cumulative; a
// Snapshot is taken under the service lock, so the conservation identity
//
//	Requests == Hits + Led + Coalesced + WaitAborts
//
// holds exactly on any snapshot taken while no request is in flight
// (each request terminates through exactly one of the four).
type Metrics struct {
	// Requests counts planning requests that passed canonicalization.
	Requests uint64
	// Hits served a validated cached plan directly.
	Hits uint64
	// Led counts requests that performed the solve for their key.
	Led uint64
	// Coalesced counts requests served by another request's in-flight
	// solve (single-flight waiters).
	Coalesced uint64
	// WaitAborts counts waiters whose own context died before the
	// leader finished.
	WaitAborts uint64
	// Handoffs counts leaders whose context died mid-solve and who
	// handed the key to a waiter instead of publishing a degraded
	// result.
	Handoffs uint64

	// ValidateDrops counts cached entries dropped because Plan.Validate
	// failed on a hit (corrupt or stale entry degraded to a recompute).
	ValidateDrops uint64
	// EvictionsTTL counts entries evicted past Config.CacheTTL (on
	// lookup or by the capacity sweep); EvictionsLRU counts live entries
	// evicted by the Config.CacheMaxEntries capacity bound, least
	// recently used first.
	EvictionsTTL uint64
	EvictionsLRU uint64

	// Solves counts inner planner invocations (full MIP + mapping).
	Solves uint64
	// WarmStarts counts solves seeded with a nearest-cached incumbent.
	WarmStarts uint64
	// Retries counts injected-transient-failure retries (backoff slept).
	Retries uint64
	// InjectedFailures counts injected transient solver failures.
	InjectedFailures uint64
	// DeadlineFallbacks counts solves that came back deadline-degraded
	// (Plan.Fallback set by the planner).
	DeadlineFallbacks uint64
	// GreedyFallbacks counts requests answered by the ladder's greedy
	// floor without attempting a solve (breaker open, retries
	// exhausted, or deadline already expired).
	GreedyFallbacks uint64

	// BreakerTrips counts closed->open transitions; BreakerProbes
	// counts half-open probe solves; BreakerShorted counts requests
	// short-circuited to greedy while the breaker was open.
	BreakerTrips   uint64
	BreakerProbes  uint64
	BreakerShorted uint64

	// PrewarmPlans counts distinct keys planned by Prewarm calls.
	PrewarmPlans uint64
	// CacheEntries is the live entry count at snapshot time.
	CacheEntries uint64

	// WarmStartEntries counts cache entries adopted from the persistent
	// store when the service started; WarmHits counts cache hits served
	// by such an entry (a subset of Hits) — the restarts-for-free
	// signal. Both are 0 without a configured store.
	WarmStartEntries uint64
	WarmHits         uint64
}

// ConservationError checks the request conservation identity on a
// quiescent snapshot; nil means every request is accounted for exactly
// once.
func (m Metrics) ConservationError() error {
	if m.Requests != m.Hits+m.Led+m.Coalesced+m.WaitAborts {
		return fmt.Errorf("plansvc: conservation violated: Requests %d != Hits %d + Led %d + Coalesced %d + WaitAborts %d",
			m.Requests, m.Hits, m.Led, m.Coalesced, m.WaitAborts)
	}
	return nil
}

// Metrics returns a consistent snapshot of the counters.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.m
	m.CacheEntries = uint64(len(s.cache))
	return m
}
