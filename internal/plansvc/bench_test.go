package plansvc

import (
	"context"
	"testing"

	"mobius/internal/core"
	"mobius/internal/model"
)

// BenchmarkPlanCacheHit is the steady-state planning latency of a
// warmed service: canonicalization + validated cache lookup. This is
// the cost an elastic recovery pays for its re-plan once prewarmed.
func BenchmarkPlanCacheHit(b *testing.B) {
	svc := New(Config{})
	opts := balancedOpts(model.GPT3B)
	if _, err := svc.PlanMobius(context.Background(), opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.PlanMobius(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanKey is the canonicalization cost alone.
func BenchmarkPlanKey(b *testing.B) {
	opts := balancedOpts(model.GPT15B)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KeyOf(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanGreedyFloor is the ladder floor: a full greedy plan
// (profile + greedy partition + sequential mapping), the latency served
// while the breaker is open.
func BenchmarkPlanGreedyFloor(b *testing.B) {
	opts := balancedOpts(model.GPT8B)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyPlan(opts, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}
