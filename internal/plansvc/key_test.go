package plansvc

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/profile"
)

var update = flag.Bool("update", false, "regenerate golden files")

// TestKeyGolden pins the canonical key of a representative request set
// to a golden file: any change to the encoding — field order, float
// handling, a forgotten field — shows up as a diff, because a silent
// key change would orphan every persisted cache observation.
func TestKeyGolden(t *testing.T) {
	reqs := []struct {
		name string
		opts core.Options
	}{
		{"8B-2+2", core.Options{Model: model.GPT8B, Topology: hw.Commodity(hw.RTX3090Ti, 2, 2)}},
		{"15B-2+2", core.Options{Model: model.GPT15B, Topology: hw.Commodity(hw.RTX3090Ti, 2, 2)}},
		{"15B-4", core.Options{Model: model.GPT15B, Topology: hw.Commodity(hw.RTX3090Ti, 4)}},
		{"15B-2+2-a6000", core.Options{Model: model.GPT15B, Topology: hw.Commodity(hw.A6000, 2, 2)}},
		{"15B-2+2-minstage", core.Options{Model: model.GPT15B, Topology: hw.Commodity(hw.RTX3090Ti, 2, 2), PartitionAlgo: partition.AlgoMinStage}},
		{"15B-2+2-m8", core.Options{Model: model.GPT15B, Topology: hw.Commodity(hw.RTX3090Ti, 2, 2), Microbatches: 8}},
		{"15B-2+2-nodes500", core.Options{Model: model.GPT15B, Topology: hw.Commodity(hw.RTX3090Ti, 2, 2), MIP: partition.MIPOptions{NodeLimit: 500}}},
	}

	var b strings.Builder
	seen := map[Key]string{}
	for _, r := range reqs {
		key, err := KeyOf(r.opts)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("requests %s and %s collide on %s", prev, r.name, key)
		}
		seen[key] = r.name
		fmt.Fprintf(&b, "%-18s %s\n", r.name, key)
	}

	golden := filepath.Join("testdata", "keys.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	if string(want) != b.String() {
		t.Errorf("canonical keys changed:\n--- golden\n%s--- got\n%s", want, b.String())
	}
}

// TestKeyCanonicalization checks the properties the golden file cannot:
// a zero-valued option and its explicit default address the same entry,
// float spelling is irrelevant, labels are irrelevant, and genuinely
// different content is distinct.
func TestKeyCanonicalization(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	base := core.Options{Model: model.GPT15B, Topology: topo}
	k0, err := KeyOf(base)
	if err != nil {
		t.Fatal(err)
	}

	// Explicit defaults == zero values: microbatches (= GPU count),
	// partition algorithm, mapping scheme, MIP bounds, profile repeats.
	explicit := core.Options{
		Model:          model.GPT15B,
		Topology:       topo,
		Microbatches:   4,
		PartitionAlgo:  partition.AlgoMIP,
		MappingScheme:  "cross",
		MIP:            partition.MIPOptions{MaxStages: 24, Patience: 2, NodeLimit: 150, TimeLimit: 3 * time.Second},
		ProfileOptions: profile.Options{Repeats: 3},
	}
	if k, _ := KeyOf(explicit); k != k0 {
		t.Errorf("explicit defaults hash differently:\n zero     %s\n explicit %s", k0, k)
	}

	// Fields that provably do not change the plan are excluded.
	irrelevant := base
	irrelevant.Parallelism = 7
	irrelevant.MIP.DisableCache = true
	irrelevant.MIP.Parallelism = 3
	irrelevant.DisablePrefetch = true
	irrelevant.DisablePrefetchPriority = true
	if k, _ := KeyOf(irrelevant); k != k0 {
		t.Errorf("execution-time options leaked into the key")
	}

	// Labels are not content: renaming the model or topology changes
	// nothing...
	renamed := base
	renamed.Model.Name = "15B-renamed"
	clone := *topo
	clone.Name = "other box"
	renamed.Topology = &clone
	if k, _ := KeyOf(renamed); k != k0 {
		t.Errorf("names leaked into the key")
	}

	// ...and float spelling is not content either.
	respelled := base
	clone2 := *topo
	clone2.RootComplexBW = append([]float64(nil), topo.RootComplexBW...)
	clone2.RootComplexBW[0] = topo.RootComplexBW[0] * 1e3 / 1000.0 * 10 / 10
	respelled.Topology = &clone2
	if k, _ := KeyOf(respelled); k != k0 {
		t.Errorf("float round-trip changed the key")
	}

	// Genuinely different content is distinct.
	for name, mutate := range map[string]func(*core.Options){
		"model":        func(o *core.Options) { o.Model = model.GPT8B },
		"microbatches": func(o *core.Options) { o.Microbatches = 8 },
		"algo":         func(o *core.Options) { o.PartitionAlgo = partition.AlgoMinStage },
		"node-limit":   func(o *core.Options) { o.MIP.NodeLimit = 500 },
		"topology": func(o *core.Options) {
			c := *topo
			c.TransferLatency = topo.TransferLatency + 1e-6
			o.Topology = &c
		},
		"gpu-mem": func(o *core.Options) {
			c := *topo
			c.GPUs = append([]hw.GPU(nil), topo.GPUs...)
			spec := c.GPUs[0].Spec
			spec.MemBytes *= 2
			c.GPUs[0].Spec = spec
			o.Topology = &c
		},
	} {
		o := base
		mutate(&o)
		if k, _ := KeyOf(o); k == k0 {
			t.Errorf("%s change did not change the key", name)
		}
	}
}

// TestFingerprintCoversSemanticFields: fingerprints ignore wall-clock
// measurements but track every semantic field.
func TestFingerprintCoversSemanticFields(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	plan, err := core.PlanMobius(core.Options{Model: model.GPT8B, Topology: topo, PartitionAlgo: partition.AlgoBalanced, BalancedStages: 4})
	if err != nil {
		t.Fatal(err)
	}
	f0 := Fingerprint(plan)
	clock := *plan
	clock.CrossMapTime = plan.CrossMapTime + time.Hour
	if Fingerprint(&clock) != f0 {
		t.Errorf("wall-clock field changed the fingerprint")
	}
	moved := *plan
	moved.Mapping = &(*plan.Mapping)
	perm := append([]int(nil), plan.Mapping.Perm...)
	perm[0], perm[1] = perm[1], perm[0]
	m2 := *plan.Mapping
	m2.Perm = perm
	moved.Mapping = &m2
	if Fingerprint(&moved) == f0 {
		t.Errorf("mapping change kept the fingerprint")
	}
}
