package plansvc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/partition"
	"mobius/internal/planstore"
)

// Config tunes a Service. The zero value is usable: direct planner,
// no fault injection, default retry/backoff/breaker parameters, real
// clock.
type Config struct {
	// Inner computes plans on cache misses (default: the direct
	// core.PlanMobiusCtx planner).
	Inner core.Planner
	// Faults injects planner-side latency and transient failures via
	// its planner clauses (fault.Spec.PlannerAttempt); nil injects
	// nothing.
	Faults *fault.Spec
	// MaxAttempts bounds solve attempts per request, injected transient
	// failures included (default 4: one try, three retries).
	MaxAttempts int
	// BackoffBase is the first retry backoff; attempt k sleeps
	// base·2^k stretched by a deterministic jitter in [1, 1.5), capped
	// at BackoffMax (defaults 25ms, 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that trips the
	// circuit breaker (default 3); BreakerCooldown is how long it stays
	// open before admitting a half-open probe (default 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DisableWarm turns off warm-starting MIP solves from the nearest
	// cached incumbent (the solve outcome is identical either way; only
	// effort changes).
	DisableWarm bool
	// CacheTTL bounds a cached plan's lifetime: an entry older than the
	// TTL is evicted on its next lookup (and by the capacity sweep) and
	// the request recomputes. Zero means entries never expire. Plans are
	// pure functions of their inputs, so a TTL is about bounding memory
	// in long-lived fleets, not staleness of content.
	CacheTTL time.Duration
	// CacheMaxEntries caps the plan cache size; inserting past the cap
	// evicts expired entries first, then the least-recently-used live
	// entry. Zero means unbounded.
	CacheMaxEntries int
	// Store, when non-nil, persists the plan cache: New warm-starts
	// from it (replaying, re-validating and adopting every intact
	// record), cacheable plans are written behind it, and every
	// eviction path deletes the on-disk record too, so a restart can
	// never resurrect an entry the ladder aged out. A damaged or empty
	// store degrades to a cold start — persistence never fails a
	// request. The Service does not own the store; the caller closes it
	// (after the Service is quiescent) to drain the write-behind queue.
	Store *planstore.Store
	// Now and Sleep are the service's clock; tests and the chaos
	// harness substitute a virtual clock to drive backoff and breaker
	// cooldowns deterministically. Sleep must return early when ctx
	// dies. Defaults: time.Now and a timer-based sleep.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration)
}

func (c Config) withDefaults() Config {
	if c.Inner == nil {
		c.Inner = core.DefaultPlanner()
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = realSleep
	}
	return c
}

func realSleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Service is the hardened planning front end; see the package comment
// for the contract. It implements core.Planner, so core.Options.Planner
// and elastic.Config.Planner can route everything through one shared
// instance. All methods are safe for concurrent use, and the plans a
// Service returns must be treated as immutable — they are shared across
// requests.
type Service struct {
	cfg Config

	mu      sync.Mutex
	cache   map[Key]*entry
	useSeq  uint64 // logical recency clock; bumped on every cache use
	flights map[Key]*flight
	breaker breaker
	m       Metrics
}

var _ core.Planner = (*Service)(nil)

// New builds a Service. With a persistent store configured it starts
// warm: the store directory is replayed and every intact, validated
// record adopted into the cache before the first request.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		cache:   make(map[Key]*entry),
		flights: make(map[Key]*flight),
		breaker: breaker{threshold: cfg.BreakerThreshold, cooldown: cfg.BreakerCooldown, now: cfg.Now},
	}
	s.warmStart()
	return s
}

// warmStart replays the persistent store into the cache. Load failures
// and quarantined records degrade toward a cold start entry by entry —
// warm restart is an optimization, never a correctness dependency.
func (s *Service) warmStart() {
	if s.cfg.Store == nil {
		return
	}
	entries, _, err := s.cfg.Store.Load()
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.cfg.Now()
	for _, e := range entries {
		s.useSeq++
		s.cache[Key(e.Key)] = &entry{
			plan:      e.Plan,
			topo:      e.Topology,
			modelSig:  e.ModelSig,
			numGPUs:   e.Topology.NumGPUs(),
			key:       Key(e.Key),
			storedAt:  now,
			lastUsed:  s.useSeq,
			fromStore: true,
		}
		s.m.WarmStartEntries++
	}
	// The capacity bound holds across restarts too; over-cap adoptees
	// are evicted (and their records deleted) like any live entry.
	s.evictOverCap()
}

// StoreMetrics snapshots the persistent store's counters; nil when the
// service runs without persistence.
func (s *Service) StoreMetrics() *planstore.Metrics {
	if s.cfg.Store == nil {
		return nil
	}
	m := s.cfg.Store.Metrics()
	return &m
}

// flight is one in-progress solve; waiters block on done. When handoff
// is set the leader's context died before it produced a cacheable
// result: nothing is published and waiters re-enter the cache/lead
// loop.
type flight struct {
	done    chan struct{}
	plan    *core.Plan
	err     error
	handoff bool
}

// PlanMobius serves one planning request through the ladder:
// validated cache hit, single-flight coalescing, warm-started solve
// with retries, greedy floor.
func (s *Service) PlanMobius(ctx context.Context, opts core.Options) (*core.Plan, error) {
	req, err := NewRequest(opts)
	if err != nil {
		return nil, err
	}
	return s.plan(ctx, req)
}

func (s *Service) plan(ctx context.Context, req *Request) (*core.Plan, error) {
	s.mu.Lock()
	s.m.Requests++
	for {
		if p, ok := s.cacheGet(req); ok {
			s.m.Hits++
			s.mu.Unlock()
			return p, nil
		}
		f, inflight := s.flights[req.Key]
		if !inflight {
			break
		}
		s.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			s.mu.Lock()
			s.m.WaitAborts++
			s.mu.Unlock()
			return nil, ctx.Err()
		}
		s.mu.Lock()
		if f.handoff {
			continue // leader's context died; re-check the cache, maybe lead
		}
		s.m.Coalesced++
		s.mu.Unlock()
		return f.plan, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[req.Key] = f
	s.m.Led++
	s.mu.Unlock()

	plan, err := s.solve(ctx, req)

	s.mu.Lock()
	delete(s.flights, req.Key)
	switch {
	case err == nil && plan != nil && !plan.Fallback:
		s.cachePut(req, plan)
		f.plan = plan
	case ctx.Err() != nil:
		// Degraded or failed because our own deadline died; waiters may
		// hold live deadlines, so hand the key off instead of poisoning
		// it with this result.
		f.handoff = true
		s.m.Handoffs++
	default:
		f.plan, f.err = plan, err
	}
	s.mu.Unlock()
	close(f.done)
	return plan, err
}

// solve runs the degradation ladder below the cache: breaker gate,
// bounded retries over injected transient failures, warm-started solve,
// greedy floor. It never holds s.mu across a solve or a sleep.
func (s *Service) solve(ctx context.Context, req *Request) (*core.Plan, error) {
	s.mu.Lock()
	ok, probe := s.breaker.allow()
	if !ok {
		s.m.BreakerShorted++
		s.m.GreedyFallbacks++
		s.mu.Unlock()
		return s.greedy(req, "plansvc: circuit breaker open: planning degraded to greedy")
	}
	if probe {
		s.m.BreakerProbes++
	}
	s.mu.Unlock()

	for attempt := 0; ; attempt++ {
		lat, failInj := s.cfg.Faults.PlannerAttempt(req.Opts.Model.Name, req.Key.Uint64(), attempt)
		if lat > 0 {
			s.cfg.Sleep(ctx, time.Duration(lat*float64(time.Second)))
		}
		if failInj {
			s.count(func(m *Metrics) { m.InjectedFailures++ })
			if attempt+1 >= s.cfg.MaxAttempts {
				s.breakerFailure()
				s.count(func(m *Metrics) { m.GreedyFallbacks++ })
				return s.greedy(req, fmt.Sprintf("plansvc: %d transient solver failures, retries exhausted", attempt+1))
			}
			s.count(func(m *Metrics) { m.Retries++ })
			s.cfg.Sleep(ctx, s.backoff(req.Key, attempt))
			continue
		}
		if ctx.Err() != nil {
			// The deadline burned down before the solver even started
			// (injected latency, backoff, or a tiny deadline): take the
			// greedy floor rather than a solve that is certain to degrade.
			s.breakerFailure()
			s.count(func(m *Metrics) { m.GreedyFallbacks++ })
			return s.greedy(req, "plansvc: deadline expired before solve ("+ctx.Err().Error()+")")
		}

		opts := req.Opts
		if !s.cfg.DisableWarm && opts.PartitionAlgo == partition.AlgoMIP {
			s.mu.Lock()
			if w := s.nearestWarm(req); w != nil {
				opts.MIP.Warm = w
				s.m.WarmStarts++
			}
			s.mu.Unlock()
		}
		s.count(func(m *Metrics) { m.Solves++ })
		plan, err := s.cfg.Inner.PlanMobius(ctx, opts)
		if err != nil {
			// A structural planner error (invalid model, infeasible
			// problem) is the caller's to see; the breaker watches
			// planning health, not input validity.
			return nil, err
		}
		if plan.Fallback {
			// The solver itself hit the deadline and degraded: a blowup
			// for breaker purposes, but already the ladder's floor.
			s.breakerFailure()
			s.count(func(m *Metrics) { m.DeadlineFallbacks++ })
			return plan, nil
		}
		s.mu.Lock()
		s.breaker.success()
		s.mu.Unlock()
		return plan, nil
	}
}

// greedy is the ladder floor: the deterministic greedy partition with a
// sequential mapping, no solver involved. Its plans carry Fallback and
// are never cached.
func (s *Service) greedy(req *Request, reason string) (*core.Plan, error) {
	return core.GreedyPlan(req.Opts, reason)
}

// backoff is the sleep before retry attempt+1: exponential in the
// attempt with a deterministic jitter derived from the request key, so
// replays of a scenario back off identically while distinct keys
// desynchronize.
func (s *Service) backoff(key Key, attempt int) time.Duration {
	d := s.cfg.BackoffBase << uint(attempt)
	if d > s.cfg.BackoffMax || d <= 0 {
		d = s.cfg.BackoffMax
	}
	h := splitmix64(key.Uint64() ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15)
	frac := float64(h>>11) / (1 << 53) // [0, 1)
	return time.Duration(float64(d) * (1 + 0.5*frac))
}

func (s *Service) breakerFailure() {
	s.mu.Lock()
	if s.breaker.failure() {
		s.m.BreakerTrips++
	}
	s.mu.Unlock()
}

func (s *Service) count(f func(*Metrics)) {
	s.mu.Lock()
	f(&s.m)
	s.mu.Unlock()
}

// BreakerState reports the breaker's current position (for tests,
// metrics endpoints and operator introspection).
func (s *Service) BreakerState() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.breaker.state.String()
}

// splitmix64 is the standard 64-bit finalizer used for every derived
// decision stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
