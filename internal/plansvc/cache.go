package plansvc

import (
	"fmt"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/partition"
)

// entry is one cached plan. Cached plans are treated as immutable by
// the service and must be by callers; the MIP warm-start path rebuilds
// partitions from stage boundaries, so borrowing an incumbent never
// mutates the entry either.
type entry struct {
	plan *core.Plan
	// topo is the topology the plan was computed for; hits re-validate
	// against the requester's topology, which keys guarantee is
	// content-identical.
	topo *hw.Topology
	// modelSig / numGPUs index the entry for the nearest-incumbent
	// search; key breaks ties deterministically.
	modelSig uint64
	numGPUs  int
	key      Key
}

// cacheGet returns the cached plan for key after re-validating it
// against the request's topology. A plan that fails validation —
// corrupt in place, or stale relative to the topology it is asked to
// serve — is dropped so the request degrades to a recompute. Caller
// holds s.mu.
func (s *Service) cacheGet(req *Request) (*core.Plan, bool) {
	e, ok := s.cache[req.Key]
	if !ok {
		return nil, false
	}
	if err := e.plan.Validate(req.Opts.Topology); err != nil {
		delete(s.cache, req.Key)
		s.m.ValidateDrops++
		return nil, false
	}
	return e.plan, true
}

// cachePut stores a non-degraded plan. Caller holds s.mu.
func (s *Service) cachePut(req *Request, plan *core.Plan) {
	s.cache[req.Key] = &entry{
		plan:     plan,
		topo:     req.Opts.Topology,
		modelSig: req.ModelSig,
		numGPUs:  req.Opts.Topology.NumGPUs(),
		key:      req.Key,
	}
}

// CheckInvariants verifies the structural invariants of the service's
// state: every cached plan is complete, non-degraded (fallback plans
// are never cached) and valid for its topology. The chaos harness calls
// it after every scenario.
func (s *Service) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, e := range s.cache {
		if e.plan == nil {
			return fmt.Errorf("plansvc: cache entry %s holds a nil plan", k)
		}
		if e.plan.Fallback {
			return fmt.Errorf("plansvc: degraded plan cached under %s (%s)", k, e.plan.FallbackReason)
		}
		if err := e.plan.Validate(e.topo); err != nil {
			return fmt.Errorf("plansvc: cache entry %s invalid: %w", k, err)
		}
	}
	return nil
}

// nearestWarm picks the cached incumbent nearest to the request: same
// model content, minimal GPU-count distance, ties broken toward the
// smaller machine and then by key — a total order, so the choice is
// deterministic whatever the map iteration order. Only MIP-planned
// partitions are borrowed (a greedy or balanced shape would still be
// outcome-preserving, but it is a uselessly loose incumbent). Caller
// holds s.mu.
func (s *Service) nearestWarm(req *Request) *partition.Partition {
	var best *entry
	for _, e := range s.cache {
		if e.modelSig != req.ModelSig || e.key == req.Key {
			continue
		}
		if e.plan.Partition == nil || e.plan.Partition.Algorithm != partition.AlgoMIP {
			continue
		}
		if best == nil || closerWarm(e, best, req.Opts.Topology.NumGPUs()) {
			best = e
		}
	}
	if best == nil {
		return nil
	}
	return best.plan.Partition
}

// closerWarm reports whether a beats b as a warm incumbent for an
// n-GPU request.
func closerWarm(a, b *entry, n int) bool {
	da, db := absInt(a.numGPUs-n), absInt(b.numGPUs-n)
	if da != db {
		return da < db
	}
	if a.numGPUs != b.numGPUs {
		return a.numGPUs < b.numGPUs
	}
	return lessKey(a.key, b.key)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func lessKey(a, b Key) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
