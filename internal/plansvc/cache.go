package plansvc

import (
	"fmt"
	"time"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/partition"
	"mobius/internal/planstore"
)

// entry is one cached plan. Cached plans are treated as immutable by
// the service and must be by callers; the MIP warm-start path rebuilds
// partitions from stage boundaries, so borrowing an incumbent never
// mutates the entry either.
type entry struct {
	plan *core.Plan
	// topo is the topology the plan was computed for; hits re-validate
	// against the requester's topology, which keys guarantee is
	// content-identical.
	topo *hw.Topology
	// modelSig / numGPUs index the entry for the nearest-incumbent
	// search; key breaks ties deterministically.
	modelSig uint64
	numGPUs  int
	key      Key
	// storedAt dates the entry for TTL expiry; lastUsed is the logical
	// recency stamp (service useSeq) the LRU sweep orders by.
	storedAt time.Time
	lastUsed uint64
	// fromStore marks an entry adopted from the persistent store at
	// warm start; hits on it count as warm-start hits.
	fromStore bool
}

// expired reports whether the entry has outlived the configured TTL at
// time now. A zero TTL never expires.
func (s *Service) expired(e *entry, now time.Time) bool {
	return s.cfg.CacheTTL > 0 && now.Sub(e.storedAt) >= s.cfg.CacheTTL
}

// cacheGet returns the cached plan for key after re-validating it
// against the request's topology. An entry past its TTL is evicted and
// the request recomputes; a plan that fails validation — corrupt in
// place, or stale relative to the topology it is asked to serve — is
// dropped so the request degrades to a recompute. Caller holds s.mu.
func (s *Service) cacheGet(req *Request) (*core.Plan, bool) {
	e, ok := s.cache[req.Key]
	if !ok {
		return nil, false
	}
	if s.expired(e, s.cfg.Now()) {
		delete(s.cache, req.Key)
		s.storeDelete(req.Key)
		s.m.EvictionsTTL++
		return nil, false
	}
	if err := e.plan.Validate(req.Opts.Topology); err != nil {
		delete(s.cache, req.Key)
		s.storeDelete(req.Key)
		s.m.ValidateDrops++
		return nil, false
	}
	s.useSeq++
	e.lastUsed = s.useSeq
	if e.fromStore {
		s.m.WarmHits++
	}
	return e.plan, true
}

// cachePut stores a non-degraded plan, then enforces the capacity bound:
// expired entries go first, then least-recently-used live entries (ties
// broken by key, so eviction order is deterministic under any map
// iteration order). Caller holds s.mu.
func (s *Service) cachePut(req *Request, plan *core.Plan) {
	s.useSeq++
	s.cache[req.Key] = &entry{
		plan:     plan,
		topo:     req.Opts.Topology,
		modelSig: req.ModelSig,
		numGPUs:  req.Opts.Topology.NumGPUs(),
		key:      req.Key,
		storedAt: s.cfg.Now(),
		lastUsed: s.useSeq,
	}
	if s.cfg.Store != nil {
		// Write-behind: the record is queued here (under the service
		// lock, so enqueue order follows cache order) and lands on disk
		// asynchronously; a full queue drops the write, never the
		// request.
		s.cfg.Store.Put(planstore.Entry{
			Key:      planstore.Key(req.Key),
			ModelSig: req.ModelSig,
			Plan:     plan,
			Topology: req.Opts.Topology,
		})
	}
	s.evictOverCap()
}

// storeDelete propagates an eviction to the persistent store, keeping
// disk and memory coherent: an entry the ladder aged out must not be
// resurrected by a restart. Caller holds s.mu.
func (s *Service) storeDelete(k Key) {
	if s.cfg.Store != nil {
		s.cfg.Store.Delete(planstore.Key(k))
	}
}

// evictOverCap shrinks the cache back under CacheMaxEntries. Caller
// holds s.mu.
func (s *Service) evictOverCap() {
	max := s.cfg.CacheMaxEntries
	if max <= 0 || len(s.cache) <= max {
		return
	}
	now := s.cfg.Now()
	for k, e := range s.cache {
		if len(s.cache) <= max {
			return
		}
		if s.expired(e, now) {
			delete(s.cache, k)
			s.storeDelete(k)
			s.m.EvictionsTTL++
		}
	}
	for len(s.cache) > max {
		var victim *entry
		for _, e := range s.cache {
			if victim == nil || e.lastUsed < victim.lastUsed ||
				(e.lastUsed == victim.lastUsed && lessKey(e.key, victim.key)) {
				victim = e
			}
		}
		delete(s.cache, victim.key)
		s.storeDelete(victim.key)
		s.m.EvictionsLRU++
	}
}

// Has reports whether a validated plan for key is cached and unexpired
// right now — a peek: it bumps no recency and counts no metric. The
// cluster's plan-cache-affinity routing asks it before dispatching.
func (s *Service) Has(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache[key]
	return ok && !s.expired(e, s.cfg.Now())
}

// CheckInvariants verifies the structural invariants of the service's
// state: every cached plan is complete, non-degraded (fallback plans
// are never cached) and valid for its topology, and the cache respects
// its capacity bound. The chaos harness calls it after every scenario.
func (s *Service) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if max := s.cfg.CacheMaxEntries; max > 0 && len(s.cache) > max {
		return fmt.Errorf("plansvc: cache holds %d entries over its %d-entry cap", len(s.cache), max)
	}
	for k, e := range s.cache {
		if e.plan == nil {
			return fmt.Errorf("plansvc: cache entry %s holds a nil plan", k)
		}
		if e.plan.Fallback {
			return fmt.Errorf("plansvc: degraded plan cached under %s (%s)", k, e.plan.FallbackReason)
		}
		if err := e.plan.Validate(e.topo); err != nil {
			return fmt.Errorf("plansvc: cache entry %s invalid: %w", k, err)
		}
	}
	return nil
}

// nearestWarm picks the cached incumbent nearest to the request: same
// model content, minimal GPU-count distance, ties broken toward the
// smaller machine and then by key — a total order, so the choice is
// deterministic whatever the map iteration order. Only MIP-planned
// partitions are borrowed (a greedy or balanced shape would still be
// outcome-preserving, but it is a uselessly loose incumbent). Caller
// holds s.mu.
func (s *Service) nearestWarm(req *Request) *partition.Partition {
	var best *entry
	for _, e := range s.cache {
		if e.modelSig != req.ModelSig || e.key == req.Key {
			continue
		}
		if e.plan.Partition == nil || e.plan.Partition.Algorithm != partition.AlgoMIP {
			continue
		}
		if best == nil || closerWarm(e, best, req.Opts.Topology.NumGPUs()) {
			best = e
		}
	}
	if best == nil {
		return nil
	}
	return best.plan.Partition
}

// closerWarm reports whether a beats b as a warm incumbent for an
// n-GPU request.
func closerWarm(a, b *entry, n int) bool {
	da, db := absInt(a.numGPUs-n), absInt(b.numGPUs-n)
	if da != db {
		return da < db
	}
	if a.numGPUs != b.numGPUs {
		return a.numGPUs < b.numGPUs
	}
	return lessKey(a.key, b.key)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func lessKey(a, b Key) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
