package plansvc

import "time"

// breakerState is the circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (st breakerState) String() string {
	switch st {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker trips the ladder to its greedy floor after repeated planning
// failures (deadline blowups, exhausted transient retries). While open,
// requests short-circuit to greedy; once the cooldown elapses the next
// request becomes a half-open probe — its solve going through closes
// the breaker, another failure reopens it for a fresh cooldown. Time
// comes from the service's injectable clock, so tests and the chaos
// harness drive the state machine deterministically. Caller holds s.mu
// for every method.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
}

// allow reports whether this request may attempt a real solve, and
// whether that attempt is the half-open probe. An open breaker past its
// cooldown transitions to half-open and admits exactly one probe;
// requests arriving while the probe is out take the greedy floor.
func (b *breaker) allow() (ok, probe bool) {
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true, true
		}
		return false, false
	default: // half-open: probe already in flight
		return false, false
	}
}

// success records a non-degraded solve; any probe success closes the
// breaker.
func (b *breaker) success() {
	b.state = breakerClosed
	b.fails = 0
}

// failure records a planning failure and reports whether it tripped the
// breaker open (including a failed probe re-opening it).
func (b *breaker) failure() (tripped bool) {
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = b.now()
		return true
	}
	b.fails++
	if b.state == breakerClosed && b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.fails = 0
		return true
	}
	return false
}
