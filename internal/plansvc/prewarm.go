package plansvc

import (
	"context"
	"fmt"

	"mobius/internal/core"
	"mobius/internal/elastic"
	"mobius/internal/fault"
)

// PrewarmReport summarizes one speculative pre-planning pass.
type PrewarmReport struct {
	// Full is the key of the intact-topology plan.
	Full Key
	// Survivors counts distinct surviving topologies planned (after
	// key deduplication).
	Survivors int
	// Deduped counts single-GPU-loss scenarios whose surviving machine
	// keyed to an already-planned entry (symmetric losses collapse).
	Deduped int
	// Unsurvivable counts GPU losses that leave no usable machine.
	Unsurvivable int
}

func (r *PrewarmReport) String() string {
	return fmt.Sprintf("prewarm: full plan + %d survivor plan(s) (%d deduplicated, %d unsurvivable)",
		r.Survivors, r.Deduped, r.Unsurvivable)
}

// Prewarm speculatively plans the request and every topology that
// survives the loss of a single GPU, so a later elastic recovery's
// re-plan is a cache lookup instead of a MIP solve. Survivor scenarios
// are deduplicated by content key — on a symmetric machine, losing any
// of the four GPUs leaves the same surviving topology, which is planned
// once. Survivor plans keep the full request's microbatch count,
// matching elastic recovery semantics (the global batch size is
// preserved across a recovery). Each survivor solve is warm-started
// from the already-cached full plan via the nearest-incumbent index.
func (s *Service) Prewarm(ctx context.Context, opts core.Options) (*PrewarmReport, error) {
	req, err := NewRequest(opts)
	if err != nil {
		return nil, err
	}
	rep := &PrewarmReport{Full: req.Key}
	if _, err := s.plan(ctx, req); err != nil {
		return nil, err
	}
	seen := map[Key]bool{req.Key: true}
	topo := req.Opts.Topology
	for g := 0; g < topo.NumGPUs(); g++ {
		spec := &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: g}}}
		surv, _, err := elastic.SurvivingTopology(topo, spec)
		if err != nil {
			rep.Unsurvivable++
			continue
		}
		sopts := req.Opts
		sopts.Topology = surv
		sreq, err := NewRequest(sopts)
		if err != nil {
			return rep, fmt.Errorf("plansvc: prewarm survivor (lost gpu %d): %w", g, err)
		}
		if seen[sreq.Key] {
			rep.Deduped++
			continue
		}
		seen[sreq.Key] = true
		if _, err := s.plan(ctx, sreq); err != nil {
			return rep, fmt.Errorf("plansvc: prewarm survivor (lost gpu %d): %w", g, err)
		}
		rep.Survivors++
		s.count(func(m *Metrics) { m.PrewarmPlans++ })
	}
	return rep, nil
}
