package plansvc

import (
	"context"
	"fmt"

	"mobius/internal/core"
	"mobius/internal/elastic"
	"mobius/internal/fault"
)

// PrewarmReport summarizes one speculative pre-planning pass.
type PrewarmReport struct {
	// Full is the key of the intact-topology plan.
	Full Key
	// Survivors counts distinct surviving topologies planned (after
	// key deduplication), across GPU-loss and link-loss scenarios.
	Survivors int
	// GPULosses and LinkLosses count the loss scenarios enumerated:
	// every single GPU, and every PCIe/NVLink/root-complex bandwidth
	// resource whose death strands at least its own GPU. GPUPairLosses
	// counts the depth-2 scenarios — every unordered pair of GPU losses
	// — enumerated by PrewarmDepth(..., 2).
	GPULosses     int
	LinkLosses    int
	GPUPairLosses int
	// Deduped counts loss scenarios whose surviving machine keyed to an
	// already-planned entry (symmetric losses collapse, and a gpuN.link
	// loss strands the same machine as losing gpuN outright).
	Deduped int
	// Unsurvivable counts losses that leave no usable machine.
	Unsurvivable int
}

func (r *PrewarmReport) String() string {
	s := fmt.Sprintf("prewarm: full plan + %d survivor plan(s) over %d GPU-loss and %d link-loss scenarios",
		r.Survivors, r.GPULosses, r.LinkLosses)
	if r.GPUPairLosses > 0 {
		s += fmt.Sprintf(" and %d GPU-pair losses", r.GPUPairLosses)
	}
	return s + fmt.Sprintf(" (%d deduplicated, %d unsurvivable)", r.Deduped, r.Unsurvivable)
}

// Prewarm speculatively plans the request and every topology that
// survives the loss of a single GPU or of a single interconnect
// resource (a GPU's PCIe or NVLink port, a whole root complex), so a
// later elastic recovery's re-plan is a cache lookup instead of a MIP
// solve whichever way the hardware fails. Survivor scenarios are
// deduplicated by content key — on a symmetric machine, losing any of
// the four GPUs leaves the same surviving topology, and losing gpu2's
// PCIe port strands the same machine as losing gpu2 — so the distinct
// plans are far fewer than the scenarios. Survivor plans keep the full
// request's microbatch count, matching elastic recovery semantics (the
// global batch size is preserved across a recovery). Each survivor
// solve is warm-started from the already-cached full plan via the
// nearest-incumbent index.
func (s *Service) Prewarm(ctx context.Context, opts core.Options) (*PrewarmReport, error) {
	return s.PrewarmDepth(ctx, opts, 1)
}

// PrewarmDepth is Prewarm with a fault-depth knob: depth 1 covers every
// single GPU or interconnect loss; depth 2 additionally plans the
// survivor of every unordered pair of GPU losses, so even a double
// fault recovers with a cache lookup. Pair scenarios deduplicate
// aggressively by canonical key — on a symmetric machine most pairs
// strand the same surviving shape — so the marginal solve count stays
// far below the O(n²) scenario count.
func (s *Service) PrewarmDepth(ctx context.Context, opts core.Options, depth int) (*PrewarmReport, error) {
	req, err := NewRequest(opts)
	if err != nil {
		return nil, err
	}
	rep := &PrewarmReport{Full: req.Key}
	if _, err := s.plan(ctx, req); err != nil {
		return nil, err
	}
	seen := map[Key]bool{req.Key: true}
	topo := req.Opts.Topology

	for g := 0; g < topo.NumGPUs(); g++ {
		rep.GPULosses++
		spec := &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: g}}}
		if err := s.prewarmSurvivor(ctx, req, spec, rep, seen, fmt.Sprintf("lost gpu %d", g)); err != nil {
			return rep, err
		}
	}

	var links []string
	for g := 0; g < topo.NumGPUs(); g++ {
		links = append(links, fmt.Sprintf("gpu%d.link", g))
		if topo.NVLinkBW > 0 {
			links = append(links, fmt.Sprintf("gpu%d.nvlink", g))
		}
	}
	for rc := range topo.RootComplexBW {
		links = append(links, fmt.Sprintf("rc%d", rc))
	}
	for _, link := range links {
		rep.LinkLosses++
		spec := &fault.Spec{LinkFails: []fault.LinkFailFault{{Link: link}}}
		if err := s.prewarmSurvivor(ctx, req, spec, rep, seen, fmt.Sprintf("lost link %s", link)); err != nil {
			return rep, err
		}
	}

	if depth >= 2 {
		n := topo.NumGPUs()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				rep.GPUPairLosses++
				spec := &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: i}, {GPU: j}}}
				if err := s.prewarmSurvivor(ctx, req, spec, rep, seen, fmt.Sprintf("lost gpus %d and %d", i, j)); err != nil {
					return rep, err
				}
			}
		}
	}
	return rep, nil
}

// prewarmSurvivor derives the surviving topology of one loss scenario
// and plans it unless an identically-keyed survivor was already planned.
func (s *Service) prewarmSurvivor(ctx context.Context, req *Request, spec *fault.Spec, rep *PrewarmReport, seen map[Key]bool, label string) error {
	surv, _, err := elastic.SurvivingTopology(req.Opts.Topology, spec)
	if err != nil {
		rep.Unsurvivable++
		return nil
	}
	sopts := req.Opts
	sopts.Topology = surv
	sreq, err := NewRequest(sopts)
	if err != nil {
		return fmt.Errorf("plansvc: prewarm survivor (%s): %w", label, err)
	}
	if seen[sreq.Key] {
		rep.Deduped++
		return nil
	}
	seen[sreq.Key] = true
	if _, err := s.plan(ctx, sreq); err != nil {
		return fmt.Errorf("plansvc: prewarm survivor (%s): %w", label, err)
	}
	rep.Survivors++
	s.count(func(m *Metrics) { m.PrewarmPlans++ })
	return nil
}
