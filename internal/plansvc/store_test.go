package plansvc

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mobius/internal/core"
	"mobius/internal/elastic"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/planstore"
)

// storeAt opens a planstore on dir and registers its drain on cleanup.
func storeAt(t *testing.T, dir string) *planstore.Store {
	t.Helper()
	st, err := planstore.Open(planstore.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestWarmRestartZeroSolves is the headline restart contract: a service
// restarted over its persisted store serves every previously-solved
// shape from the warm cache — the incremental solve count is exactly
// zero, asserted per request and in total.
func TestWarmRestartZeroSolves(t *testing.T) {
	dir := t.TempDir()
	shapes := []core.Options{
		balancedOpts(model.GPT3B),
		balancedOpts(model.GPT8B),
		{Model: model.GPT3B, Topology: hw.Commodity(hw.RTX3090Ti, 4),
			PartitionAlgo: partition.AlgoBalanced, BalancedStages: 4},
	}

	st1 := storeAt(t, dir)
	svc1 := New(Config{Store: st1})
	for _, o := range shapes {
		if _, err := svc1.PlanMobius(context.Background(), o); err != nil {
			t.Fatal(err)
		}
	}
	if m := svc1.Metrics(); m.Solves != uint64(len(shapes)) {
		t.Fatalf("first life solved %d, want %d", m.Solves, len(shapes))
	}
	if err := st1.Close(); err != nil { // drain the write-behind queue
		t.Fatal(err)
	}

	st2 := storeAt(t, dir)
	svc2 := New(Config{Store: st2})
	m := svc2.Metrics()
	if m.WarmStartEntries != uint64(len(shapes)) || m.CacheEntries != uint64(len(shapes)) {
		t.Fatalf("restart adopted %d entries (%d live), want %d", m.WarmStartEntries, m.CacheEntries, len(shapes))
	}
	for _, o := range shapes {
		key, err := KeyOf(o)
		if err != nil {
			t.Fatal(err)
		}
		if !svc2.Has(key) {
			t.Fatalf("restarted service does not hold %s", key)
		}
		before := svc2.Metrics().Solves
		p, err := svc2.PlanMobius(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(o.Topology); err != nil {
			t.Fatalf("warm-served plan invalid: %v", err)
		}
		if after := svc2.Metrics().Solves; after != before {
			t.Fatalf("warm restart re-solved a persisted shape (%d -> %d)", before, after)
		}
	}
	m = svc2.Metrics()
	if m.Solves != 0 {
		t.Fatalf("restarted service solved %d time(s), want exactly 0", m.Solves)
	}
	if m.Hits != uint64(len(shapes)) || m.WarmHits != uint64(len(shapes)) {
		t.Fatalf("Hits/WarmHits = %d/%d, want %d/%d", m.Hits, m.WarmHits, len(shapes), len(shapes))
	}
	checkConservation(t, m)
	if err := svc2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmRestartCoversPrewarmedSurvivors: a depth-2 prewarm persisted
// before the crash means the restarted service replans every single- and
// double-GPU-loss survivor — and every link-loss survivor — with zero
// solves. The paper's recovery-latency argument survives a process
// restart.
func TestWarmRestartCoversPrewarmedSurvivors(t *testing.T) {
	dir := t.TempDir()
	opts := balancedOpts(model.GPT3B)

	st1 := storeAt(t, dir)
	svc1 := New(Config{Store: st1})
	rep, err := svc1.PrewarmDepth(context.Background(), opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPUPairLosses != 6 { // C(4,2) on the 2+2 box
		t.Fatalf("enumerated %d GPU-pair losses, want 6", rep.GPUPairLosses)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := storeAt(t, dir)
	svc2 := New(Config{Store: st2})
	if m := svc2.Metrics(); m.WarmStartEntries == 0 {
		t.Fatal("restart adopted nothing")
	}

	var specs []*fault.Spec
	n := opts.Topology.NumGPUs()
	for g := 0; g < n; g++ {
		specs = append(specs, &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: g}}})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			specs = append(specs, &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: i}, {GPU: j}}})
		}
	}
	for _, link := range []string{"gpu0.link", "gpu3.link", "rc0", "rc1"} {
		specs = append(specs, &fault.Spec{LinkFails: []fault.LinkFailFault{{Link: link}}})
	}
	for _, spec := range specs {
		surv, _, err := elastic.SurvivingTopology(opts.Topology, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Fingerprint(), err)
		}
		sopts := opts
		sopts.Topology = surv
		sopts.Microbatches = opts.Topology.NumGPUs()
		key, err := KeyOf(sopts)
		if err != nil {
			t.Fatal(err)
		}
		if !svc2.Has(key) {
			t.Fatalf("survivor %s not warm after restart", key)
		}
		if _, err := svc2.PlanMobius(context.Background(), sopts); err != nil {
			t.Fatal(err)
		}
	}
	if m := svc2.Metrics(); m.Solves != 0 {
		t.Fatalf("restarted service solved %d time(s) for prewarmed survivors, want exactly 0", m.Solves)
	}
}

// TestEvictionCoherence: entries aged out by the LRU capacity bound are
// deleted from the disk store too — a restart serves exactly the
// surviving cache, never a resurrected entry.
func TestEvictionCoherence(t *testing.T) {
	dir := t.TempDir()
	st1 := storeAt(t, dir)
	svc1 := New(Config{Store: st1, CacheMaxEntries: 2})
	victim := balancedOpts(model.GPT3B)
	keep1 := balancedOpts(model.GPT8B)
	keep2 := core.Options{Model: model.GPT3B, Topology: hw.Commodity(hw.RTX3090Ti, 4),
		PartitionAlgo: partition.AlgoBalanced, BalancedStages: 4}
	for _, o := range []core.Options{victim, keep1, keep2} {
		if _, err := svc1.PlanMobius(context.Background(), o); err != nil {
			t.Fatal(err)
		}
	}
	if m := svc1.Metrics(); m.EvictionsLRU != 1 {
		t.Fatalf("EvictionsLRU = %d, want 1", m.EvictionsLRU)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	// Exactly two records on disk: the eviction's delete went through.
	files, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil || len(files) != 2 {
		t.Fatalf("%d record(s) on disk, want 2 (%v)", len(files), err)
	}

	st2 := storeAt(t, dir)
	svc2 := New(Config{Store: st2, CacheMaxEntries: 2})
	if m := svc2.Metrics(); m.WarmStartEntries != 2 {
		t.Fatalf("restart adopted %d entries, want 2", m.WarmStartEntries)
	}
	vkey, err := KeyOf(victim)
	if err != nil {
		t.Fatal(err)
	}
	if svc2.Has(vkey) {
		t.Fatal("the LRU-evicted entry came back from the dead")
	}
	for _, o := range []core.Options{keep1, keep2} {
		k, err := KeyOf(o)
		if err != nil {
			t.Fatal(err)
		}
		if !svc2.Has(k) {
			t.Fatalf("survivor %s lost across restart", k)
		}
	}
}

// TestTTLEvictionCoherence: the TTL sweep's evictions propagate to disk
// the same way — an expired entry does not outlive the restart.
func TestTTLEvictionCoherence(t *testing.T) {
	dir := t.TempDir()
	vt := newVirtualTime()
	st1 := storeAt(t, dir)
	svc1 := New(Config{Store: st1, CacheTTL: time.Hour, CacheMaxEntries: 1, Now: vt.Now})
	old := balancedOpts(model.GPT3B)
	if _, err := svc1.PlanMobius(context.Background(), old); err != nil {
		t.Fatal(err)
	}
	vt.Advance(2 * time.Hour)
	fresh := balancedOpts(model.GPT8B)
	// Inserting over the cap sweeps the expired entry out — and deletes
	// its record.
	if _, err := svc1.PlanMobius(context.Background(), fresh); err != nil {
		t.Fatal(err)
	}
	if m := svc1.Metrics(); m.EvictionsTTL != 1 {
		t.Fatalf("EvictionsTTL = %d, want 1", m.EvictionsTTL)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := storeAt(t, dir)
	svc2 := New(Config{Store: st2})
	oldKey, err := KeyOf(old)
	if err != nil {
		t.Fatal(err)
	}
	freshKey, err := KeyOf(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if svc2.Has(oldKey) {
		t.Fatal("the TTL-expired entry survived the restart")
	}
	if !svc2.Has(freshKey) {
		t.Fatal("the live entry was lost across the restart")
	}
}

// TestWarmStartRespectsCapacity: adopting a store larger than the cache
// cap evicts back down — and shrinks the store to match.
func TestWarmStartRespectsCapacity(t *testing.T) {
	dir := t.TempDir()
	st1 := storeAt(t, dir)
	svc1 := New(Config{Store: st1})
	shapes := []core.Options{
		balancedOpts(model.GPT3B),
		balancedOpts(model.GPT8B),
		{Model: model.GPT3B, Topology: hw.Commodity(hw.RTX3090Ti, 4),
			PartitionAlgo: partition.AlgoBalanced, BalancedStages: 4},
	}
	for _, o := range shapes {
		if _, err := svc1.PlanMobius(context.Background(), o); err != nil {
			t.Fatal(err)
		}
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := storeAt(t, dir)
	svc2 := New(Config{Store: st2, CacheMaxEntries: 2})
	m := svc2.Metrics()
	if m.WarmStartEntries != 3 || m.CacheEntries != 2 {
		t.Fatalf("adopted %d, holds %d: want 3 adopted, 2 after the cap", m.WarmStartEntries, m.CacheEntries)
	}
	if err := svc2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.plan"))
	if err != nil || len(files) != 2 {
		t.Fatalf("%d record(s) on disk after capped warm start, want 2 (%v)", len(files), err)
	}
}

// TestCorruptStoreDegradesGracefully: damage in the directory costs only
// the damaged records — the service starts, adopts the intact ones, and
// reports the quarantine through its store metrics.
func TestCorruptStoreDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	st1 := storeAt(t, dir)
	svc1 := New(Config{Store: st1})
	opts := balancedOpts(model.GPT3B)
	if _, err := svc1.PlanMobius(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 64)
	for i := range junk {
		junk[i] = 'c'
	}
	if err := os.WriteFile(filepath.Join(dir, string(junk)+".plan"), []byte("not a record"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := storeAt(t, dir)
	svc2 := New(Config{Store: st2})
	m := svc2.Metrics()
	if m.WarmStartEntries != 1 {
		t.Fatalf("adopted %d entries, want the 1 intact record", m.WarmStartEntries)
	}
	sm := svc2.StoreMetrics()
	if sm == nil || sm.QuarantinedRecords != 1 || sm.LoadedEntries != 1 {
		t.Fatalf("store metrics %+v, want 1 loaded / 1 quarantined", sm)
	}
	key, err := KeyOf(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !svc2.Has(key) {
		t.Fatal("intact entry not adopted")
	}
}

// TestMetricsEndpointExposesStore: /v1/metrics carries the store health
// block when persistence is configured, and omits it when not.
func TestMetricsEndpointExposesStore(t *testing.T) {
	dir := t.TempDir()
	st := storeAt(t, dir)
	svc := New(Config{Store: st})
	if _, err := svc.PlanMobius(context.Background(), balancedOpts(model.GPT3B)); err != nil {
		t.Fatal(err)
	}
	st.Flush()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Solves uint64 `json:"Solves"`
		Store  *struct {
			Persisted     uint64 `json:"persisted"`
			QueueDepth    int    `json:"queue_depth"`
			LoadedEntries uint64 `json:"loaded_entries"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Store == nil {
		t.Fatal("metrics response has no store block")
	}
	if body.Store.Persisted != 1 {
		t.Fatalf("store.persisted = %d, want 1", body.Store.Persisted)
	}

	// Without a store the block is omitted entirely.
	srv2 := httptest.NewServer(New(Config{}).Handler())
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["store"]; ok {
		t.Fatal("store block present without a configured store")
	}
}

// TestPrewarmDepth2DoubleFaultZeroSolve is the in-memory double-fault
// contract (no store involved): after a depth-2 prewarm, the re-plan for
// any two simultaneous GPU losses is a cache hit.
func TestPrewarmDepth2DoubleFaultZeroSolve(t *testing.T) {
	svc := New(Config{})
	opts := balancedOpts(model.GPT3B)
	rep, err := svc.PrewarmDepth(context.Background(), opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPUPairLosses != 6 {
		t.Fatalf("enumerated %d pair losses, want 6", rep.GPUPairLosses)
	}
	before := svc.Metrics().Solves
	n := opts.Topology.NumGPUs()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			spec := &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: i}, {GPU: j}}}
			surv, _, err := elastic.SurvivingTopology(opts.Topology, spec)
			if err != nil {
				t.Fatalf("gpus %d+%d: %v", i, j, err)
			}
			sopts := opts
			sopts.Topology = surv
			sopts.Microbatches = opts.Topology.NumGPUs()
			key, err := KeyOf(sopts)
			if err != nil {
				t.Fatal(err)
			}
			if !svc.Has(key) {
				t.Errorf("pair (%d,%d) survivor not prewarmed", i, j)
			}
			if _, err := svc.PlanMobius(context.Background(), sopts); err != nil {
				t.Fatal(err)
			}
		}
	}
	if after := svc.Metrics().Solves; after != before {
		t.Fatalf("double-fault re-plans performed %d solve(s); want 0", after-before)
	}
	checkConservation(t, svc.Metrics())
}
