package plansvc

import (
	"context"
	"testing"
	"time"

	"mobius/internal/core"
	"mobius/internal/model"
	"mobius/internal/partition"
)

// evictMenu returns n cheap, key-distinct planning requests.
func evictMenu(t *testing.T, n int) []core.Options {
	t.Helper()
	var menu []core.Options
	for _, m := range []model.Config{model.GPT3B, model.GPT8B} {
		for _, stages := range []int{4, 8, 2} {
			menu = append(menu, core.Options{
				Model: m, Topology: topo22(),
				PartitionAlgo: partition.AlgoBalanced, BalancedStages: stages,
			})
		}
	}
	if n > len(menu) {
		t.Fatalf("menu holds %d requests, need %d", len(menu), n)
	}
	return menu[:n]
}

// TestCacheTTLEviction: an entry past its TTL is evicted on lookup and
// the request recomputes.
func TestCacheTTLEviction(t *testing.T) {
	vt := newVirtualTime()
	svc := New(Config{CacheTTL: time.Minute, Now: vt.Now, Sleep: vt.Sleep})
	opts := balancedOpts(model.GPT3B)
	ctx := context.Background()

	if _, err := svc.PlanMobius(ctx, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PlanMobius(ctx, opts); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.Solves != 1 || m.Hits != 1 {
		t.Fatalf("warmup: solves=%d hits=%d, want 1/1", m.Solves, m.Hits)
	}

	key, err := KeyOf(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !svc.Has(key) {
		t.Fatal("fresh entry should be present")
	}
	vt.Advance(2 * time.Minute)
	if svc.Has(key) {
		t.Fatal("expired entry still reported by Has")
	}
	if _, err := svc.PlanMobius(ctx, opts); err != nil {
		t.Fatal(err)
	}
	m = svc.Metrics()
	if m.EvictionsTTL != 1 {
		t.Errorf("EvictionsTTL = %d, want 1", m.EvictionsTTL)
	}
	if m.Solves != 2 {
		t.Errorf("Solves = %d, want 2 (expiry forces a recompute)", m.Solves)
	}
	if m.CacheEntries != 1 {
		t.Errorf("CacheEntries = %d, want 1", m.CacheEntries)
	}
	checkConservation(t, m)
	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheLRUEviction: inserting past CacheMaxEntries evicts the least
// recently used entry; a hit refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	svc := New(Config{CacheMaxEntries: 2})
	menu := evictMenu(t, 4)
	a, b, c, d := menu[0], menu[1], menu[2], menu[3]
	ctx := context.Background()

	keys := make([]Key, 4)
	for i, o := range []core.Options{a, b, c, d} {
		var err error
		if keys[i], err = KeyOf(o); err != nil {
			t.Fatal(err)
		}
	}

	for _, o := range []core.Options{a, b, c} {
		if _, err := svc.PlanMobius(ctx, o); err != nil {
			t.Fatal(err)
		}
	}
	m := svc.Metrics()
	if m.EvictionsLRU != 1 || m.CacheEntries != 2 {
		t.Fatalf("after a,b,c: EvictionsLRU=%d entries=%d, want 1/2", m.EvictionsLRU, m.CacheEntries)
	}
	if svc.Has(keys[0]) {
		t.Error("a should be the LRU victim")
	}
	if !svc.Has(keys[1]) || !svc.Has(keys[2]) {
		t.Error("b and c should survive")
	}

	// Touch b, then insert d: c is now the least recently used.
	if _, err := svc.PlanMobius(ctx, b); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PlanMobius(ctx, d); err != nil {
		t.Fatal(err)
	}
	if svc.Has(keys[2]) {
		t.Error("c should be evicted after b was refreshed")
	}
	if !svc.Has(keys[1]) || !svc.Has(keys[3]) {
		t.Error("b and d should be cached")
	}
	m = svc.Metrics()
	if m.EvictionsLRU != 2 {
		t.Errorf("EvictionsLRU = %d, want 2", m.EvictionsLRU)
	}
	checkConservation(t, m)
	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCapacitySweepPrefersExpired: when the cache is over capacity,
// expired entries are evicted before any live entry is sacrificed.
func TestCapacitySweepPrefersExpired(t *testing.T) {
	vt := newVirtualTime()
	svc := New(Config{CacheMaxEntries: 2, CacheTTL: time.Minute, Now: vt.Now, Sleep: vt.Sleep})
	menu := evictMenu(t, 3)
	ctx := context.Background()

	if _, err := svc.PlanMobius(ctx, menu[0]); err != nil {
		t.Fatal(err)
	}
	vt.Advance(2 * time.Minute) // menu[0] expires
	if _, err := svc.PlanMobius(ctx, menu[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.PlanMobius(ctx, menu[2]); err != nil {
		t.Fatal(err)
	}
	m := svc.Metrics()
	if m.EvictionsTTL != 1 || m.EvictionsLRU != 0 {
		t.Errorf("EvictionsTTL=%d EvictionsLRU=%d, want 1/0 (sweep takes the expired entry)",
			m.EvictionsTTL, m.EvictionsLRU)
	}
	k1, _ := KeyOf(menu[1])
	k2, _ := KeyOf(menu[2])
	if !svc.Has(k1) || !svc.Has(k2) {
		t.Error("live entries evicted while an expired one existed")
	}
	if err := svc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
