package plansvc

import (
	"context"
	"testing"

	"mobius/internal/model"
)

// TestPrewarmDeduplicatesSymmetricSurvivors: on the symmetric 2+2 box,
// losing either GPU of a root complex leaves the same surviving
// machine, so four loss scenarios cost two survivor plans.
func TestPrewarmDeduplicatesSymmetricSurvivors(t *testing.T) {
	svc := New(Config{})
	opts := balancedOpts(model.GPT3B)

	rep, err := svc.Prewarm(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Survivors != 2 || rep.Deduped != 2 || rep.Unsurvivable != 0 {
		t.Errorf("report %+v, want 2 survivors / 2 deduped / 0 unsurvivable", rep)
	}
	m := svc.Metrics()
	checkConservation(t, m)
	if m.CacheEntries != 3 { // full + two distinct survivors
		t.Errorf("CacheEntries = %d, want 3", m.CacheEntries)
	}
	if m.PrewarmPlans != 2 {
		t.Errorf("PrewarmPlans = %d, want 2", m.PrewarmPlans)
	}

	// A repeated prewarm is all cache hits: zero extra solves.
	before := m.Solves
	if _, err := svc.Prewarm(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if after := svc.Metrics().Solves; after != before {
		t.Errorf("repeat prewarm solved %d more times", after-before)
	}
}
