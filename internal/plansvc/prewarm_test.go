package plansvc

import (
	"context"
	"testing"

	"mobius/internal/elastic"
	"mobius/internal/fault"
	"mobius/internal/model"
)

// TestPrewarmDeduplicatesSymmetricSurvivors: on the symmetric 2+2 box,
// losing either GPU of a root complex leaves the same surviving
// machine, every gpuN.link loss strands the machine its GPU loss
// strands, and the two root-complex losses mirror each other — so
// 4 GPU-loss and 6 link-loss scenarios cost three survivor plans
// (1+2, 2+1, and the single-complex pair left by an rc loss).
func TestPrewarmDeduplicatesSymmetricSurvivors(t *testing.T) {
	svc := New(Config{})
	opts := balancedOpts(model.GPT3B)

	rep, err := svc.Prewarm(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPULosses != 4 || rep.LinkLosses != 6 {
		t.Errorf("enumerated %d GPU losses and %d link losses, want 4 and 6", rep.GPULosses, rep.LinkLosses)
	}
	if rep.Survivors != 3 || rep.Deduped != 7 || rep.Unsurvivable != 0 {
		t.Errorf("report %+v, want 3 survivors / 7 deduped / 0 unsurvivable", rep)
	}
	m := svc.Metrics()
	checkConservation(t, m)
	if m.CacheEntries != 4 { // full + three distinct survivors
		t.Errorf("CacheEntries = %d, want 4", m.CacheEntries)
	}
	if m.PrewarmPlans != 3 {
		t.Errorf("PrewarmPlans = %d, want 3", m.PrewarmPlans)
	}

	// A repeated prewarm is all cache hits: zero extra solves.
	before := m.Solves
	if _, err := svc.Prewarm(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if after := svc.Metrics().Solves; after != before {
		t.Errorf("repeat prewarm solved %d more times", after-before)
	}
}

// TestPrewarmCoversLinkLossSurvivors: after a Prewarm, the re-plan for
// any single link-loss survivor topology — including a whole root
// complex — is a cache hit, no solver involved.
func TestPrewarmCoversLinkLossSurvivors(t *testing.T) {
	svc := New(Config{})
	opts := balancedOpts(model.GPT8B)
	if _, err := svc.Prewarm(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	before := svc.Metrics().Solves

	for _, link := range []string{"gpu0.link", "gpu3.link", "rc0", "rc1"} {
		spec := &fault.Spec{LinkFails: []fault.LinkFailFault{{Link: link}}}
		surv, _, err := elastic.SurvivingTopology(opts.Topology, spec)
		if err != nil {
			t.Fatalf("%s: %v", link, err)
		}
		sopts := opts
		sopts.Topology = surv
		// Survivor plans keep the full machine's microbatch count
		// (elastic recovery preserves the global batch size).
		sopts.Microbatches = opts.Topology.NumGPUs()
		key, err := KeyOf(sopts)
		if err != nil {
			t.Fatal(err)
		}
		if !svc.Has(key) {
			t.Errorf("%s: survivor plan not prewarmed", link)
		}
		if _, err := svc.PlanMobius(context.Background(), sopts); err != nil {
			t.Fatal(err)
		}
	}
	if after := svc.Metrics().Solves; after != before {
		t.Errorf("link-loss re-plans performed %d solve(s); want 0 (all cache hits)", after-before)
	}
	// An unsurvivable loss is not in the cache and not an error here:
	// drambus death has no survivor topology at all.
	if _, _, err := elastic.SurvivingTopology(opts.Topology, &fault.Spec{
		LinkFails: []fault.LinkFailFault{{Link: "drambus"}},
	}); err == nil {
		t.Error("drambus loss should be unsurvivable")
	}
}
