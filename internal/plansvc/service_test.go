package plansvc

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
)

func topo22() *hw.Topology { return hw.Commodity(hw.RTX3090Ti, 2, 2) }

// balancedOpts is the cheapest real planning request: no MIP, no
// mapping search explosion.
func balancedOpts(m model.Config) core.Options {
	return core.Options{Model: m, Topology: topo22(), PartitionAlgo: partition.AlgoBalanced, BalancedStages: 4}
}

// virtualTime is the injectable clock + sleep used by the deterministic
// tests: Sleep advances Now, so backoff and breaker cooldowns take no
// wall time and every replay sees the same timeline.
type virtualTime struct {
	mu     sync.Mutex
	t      time.Time
	sleeps []time.Duration
}

func newVirtualTime() *virtualTime {
	return &virtualTime{t: time.Unix(1_700_000_000, 0)}
}

func (v *virtualTime) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t
}

func (v *virtualTime) Sleep(_ context.Context, d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.t = v.t.Add(d)
	v.sleeps = append(v.sleeps, d)
}

func (v *virtualTime) Advance(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.t = v.t.Add(d)
}

// blockingPlanner is a stub inner planner: it serves a prebuilt plan,
// counts invocations, and can hold solves until released. A solve whose
// context dies while blocked degrades to the greedy fallback, like the
// real planner.
type blockingPlanner struct {
	plan    *core.Plan
	mu      sync.Mutex
	calls   int
	gate    chan struct{} // nil: never block
	started chan struct{} // signaled once per solve that reaches the gate
}

func (p *blockingPlanner) PlanMobius(ctx context.Context, opts core.Options) (*core.Plan, error) {
	p.mu.Lock()
	p.calls++
	gate := p.gate
	p.mu.Unlock()
	if gate != nil {
		if p.started != nil {
			p.started <- struct{}{}
		}
		select {
		case <-gate:
		case <-ctx.Done():
			return core.GreedyPlan(opts, "stub: context expired mid-solve")
		}
	}
	return p.plan, nil
}

func (p *blockingPlanner) callCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

func stubPlan(t *testing.T) *core.Plan {
	t.Helper()
	plan, err := core.PlanMobius(balancedOpts(model.GPT3B))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// checkConservation asserts the metrics identity every quiescent
// snapshot must satisfy.
func checkConservation(t *testing.T, m Metrics) {
	t.Helper()
	if m.Requests != m.Hits+m.Led+m.Coalesced+m.WaitAborts {
		t.Errorf("conservation violated: Requests %d != Hits %d + Led %d + Coalesced %d + WaitAborts %d",
			m.Requests, m.Hits, m.Led, m.Coalesced, m.WaitAborts)
	}
}

// TestServiceDeterministicAcrossConcurrency drives the same request set
// through fresh services at concurrency 1, 4 and 8 and requires every
// returned plan to be fingerprint-identical per key, across goroutines,
// services and concurrency levels.
func TestServiceDeterministicAcrossConcurrency(t *testing.T) {
	requests := []core.Options{
		balancedOpts(model.GPT3B),
		balancedOpts(model.GPT8B),
		{Model: model.GPT8B, Topology: topo22(), PartitionAlgo: partition.AlgoMinStage},
		{Model: model.GPT8B, Topology: topo22()}, // full MIP
		{Model: model.GPT15B, Topology: topo22(), PartitionAlgo: partition.AlgoMaxStage},
	}
	keys := make([]Key, len(requests))
	for i, r := range requests {
		k, err := KeyOf(r)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}

	want := map[Key]string{} // fingerprint per key, fixed by the first run
	for _, conc := range []int{1, 4, 8} {
		svc := New(Config{})
		var (
			mu   sync.Mutex
			got  = map[Key]map[string]bool{}
			wg   sync.WaitGroup
			errs []error
		)
		for g := 0; g < conc; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i, r := range requests {
					plan, err := svc.PlanMobius(context.Background(), r)
					if err != nil {
						mu.Lock()
						errs = append(errs, fmt.Errorf("goroutine %d request %d: %w", g, i, err))
						mu.Unlock()
						return
					}
					mu.Lock()
					if got[keys[i]] == nil {
						got[keys[i]] = map[string]bool{}
					}
					got[keys[i]][Fingerprint(plan)] = true
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		if len(errs) > 0 {
			t.Fatalf("conc %d: %v", conc, errs[0])
		}
		for i, k := range keys {
			fps := got[k]
			if len(fps) != 1 {
				t.Fatalf("conc %d: request %d produced %d distinct fingerprints", conc, i, len(fps))
			}
			var fp string
			for f := range fps {
				fp = f
			}
			if prev, ok := want[k]; ok && prev != fp {
				t.Errorf("conc %d: request %d fingerprint diverged across concurrency levels", conc, i)
			}
			want[k] = fp
		}
		m := svc.Metrics()
		checkConservation(t, m)
		if wantReq := uint64(conc * len(requests)); m.Requests != wantReq {
			t.Errorf("conc %d: %d requests counted, want %d", conc, m.Requests, wantReq)
		}
		if m.CacheEntries != uint64(len(requests)) {
			t.Errorf("conc %d: %d cache entries, want %d", conc, m.CacheEntries, len(requests))
		}
	}
}

// TestSingleFlightCoalesces: N concurrent requests for one key cost one
// inner solve; the waiters observe the leader's plan.
func TestSingleFlightCoalesces(t *testing.T) {
	stub := &blockingPlanner{
		plan:    stubPlan(t),
		gate:    make(chan struct{}),
		started: make(chan struct{}, 1),
	}
	svc := New(Config{Inner: stub})
	opts := balancedOpts(model.GPT3B)

	const N = 8
	var wg sync.WaitGroup
	plans := make([]*core.Plan, N)
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans[i], errs[i] = svc.PlanMobius(context.Background(), opts)
		}(i)
	}
	<-stub.started // the leader is inside the solve
	// Give the waiters time to pile onto the flight, then release.
	for {
		if m := svc.Metrics(); m.Requests == N {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stub.gate)
	wg.Wait()

	for i := 0; i < N; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if plans[i] != stub.plan {
			t.Fatalf("request %d did not observe the leader's plan", i)
		}
	}
	if got := stub.callCount(); got != 1 {
		t.Errorf("%d inner solves for %d concurrent requests, want 1", got, N)
	}
	m := svc.Metrics()
	checkConservation(t, m)
	if m.Led != 1 {
		t.Errorf("Led = %d, want 1", m.Led)
	}
	// Requests that arrived after the leader published hit the cache;
	// the rest coalesced. Either way nobody solved twice.
	if m.Coalesced+m.Hits != N-1 {
		t.Errorf("Coalesced %d + Hits %d != %d", m.Coalesced, m.Hits, N-1)
	}
}

// TestCancelledLeaderHandsOff: a leader whose context dies mid-solve
// must not poison the key — a waiter re-leads and gets the real plan.
func TestCancelledLeaderHandsOff(t *testing.T) {
	stub := &blockingPlanner{
		plan:    stubPlan(t),
		gate:    make(chan struct{}),
		started: make(chan struct{}, 2),
	}
	svc := New(Config{Inner: stub})
	opts := balancedOpts(model.GPT3B)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	type result struct {
		plan *core.Plan
		err  error
	}
	leaderDone := make(chan result, 1)
	go func() {
		p, err := svc.PlanMobius(leaderCtx, opts)
		leaderDone <- result{p, err}
	}()
	<-stub.started // leader is blocked in the solve

	waiterDone := make(chan result, 1)
	go func() {
		p, err := svc.PlanMobius(context.Background(), opts)
		waiterDone <- result{p, err}
	}()
	for {
		if m := svc.Metrics(); m.Requests == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the leader. Its stub solve degrades to greedy; the service
	// must hand off instead of publishing that degraded plan.
	cancelLeader()
	lr := <-leaderDone
	if lr.err != nil {
		t.Fatalf("leader: %v", lr.err)
	}
	if !lr.plan.Fallback {
		t.Fatalf("cancelled leader got a non-degraded plan")
	}

	// The waiter re-leads; release its solve.
	<-stub.started
	close(stub.gate)
	wr := <-waiterDone
	if wr.err != nil {
		t.Fatalf("waiter: %v", wr.err)
	}
	if wr.plan != stub.plan {
		t.Errorf("waiter got %v, want the real solved plan", wr.plan)
	}

	m := svc.Metrics()
	checkConservation(t, m)
	if m.Handoffs != 1 {
		t.Errorf("Handoffs = %d, want 1", m.Handoffs)
	}
	if m.Led != 2 {
		t.Errorf("Led = %d, want 2 (original leader + re-led waiter)", m.Led)
	}
	if stub.callCount() != 2 {
		t.Errorf("inner solves = %d, want 2", stub.callCount())
	}
}

// TestCorruptCacheEntryDegradesToRecompute: a cache hit is re-validated;
// an entry corrupted in place is dropped and the request recomputes.
func TestCorruptCacheEntryDegradesToRecompute(t *testing.T) {
	stub := &blockingPlanner{plan: stubPlan(t)}
	svc := New(Config{Inner: stub})
	opts := balancedOpts(model.GPT3B)

	if _, err := svc.PlanMobius(context.Background(), opts); err != nil {
		t.Fatal(err)
	}

	// Corrupt the cached entry: break the layer coverage invariant.
	req, err := NewRequest(opts)
	if err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	e := svc.cache[req.Key]
	corrupt := *e.plan
	part := *corrupt.Partition
	part.Stages = part.Stages[:len(part.Stages)-1]
	corrupt.Partition = &part
	e.plan = &corrupt
	svc.mu.Unlock()

	plan, err := svc.PlanMobius(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(opts.Topology); err != nil {
		t.Fatalf("recomputed plan invalid: %v", err)
	}
	m := svc.Metrics()
	checkConservation(t, m)
	if m.ValidateDrops != 1 {
		t.Errorf("ValidateDrops = %d, want 1", m.ValidateDrops)
	}
	if stub.callCount() != 2 {
		t.Errorf("inner solves = %d, want 2 (original + recompute)", stub.callCount())
	}
	if m.Hits != 0 {
		t.Errorf("corrupt entry served as a hit")
	}
}

// TestRetryBackoffBreakerLadder drives injected transient solver
// failures through the full chain — retry, deterministic backoff,
// breaker trip, greedy-only, half-open probe, close — on a virtual
// clock, and replays the scenario to prove it is bitwise deterministic.
func TestRetryBackoffBreakerLadder(t *testing.T) {
	spec := &fault.Spec{
		Seed: 42,
		Planner: []fault.PlannerFault{
			// 3B requests always fail (well, with probability 1-1e-9)
			// until the per-request attempt cap; everything else is
			// clean.
			{Match: "3B", Probability: 0.999999999, LatencyMS: 2, MaxFailures: 16},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	run := func() (Metrics, []time.Duration, []string, *virtualTime) {
		vt := newVirtualTime()
		svc := New(Config{
			Faults:           spec,
			MaxAttempts:      2,
			BreakerThreshold: 2,
			BreakerCooldown:  10 * time.Second,
			Now:              vt.Now,
			Sleep:            vt.Sleep,
		})
		var states []string
		ctx := context.Background()

		// Two distinct failing requests: each exhausts its attempts and
		// degrades to greedy; the second trips the breaker.
		a := balancedOpts(model.GPT3B)
		b := balancedOpts(model.GPT3B)
		b.BalancedStages = 6
		for _, o := range []core.Options{a, b} {
			plan, err := svc.PlanMobius(ctx, o)
			if err != nil {
				t.Fatal(err)
			}
			if !plan.Fallback {
				t.Fatalf("injected failures did not degrade the plan")
			}
			states = append(states, svc.BreakerState())
		}

		// Open: requests short to greedy without touching the solver.
		c := balancedOpts(model.GPT3B)
		c.BalancedStages = 8
		plan, err := svc.PlanMobius(ctx, c)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Fallback {
			t.Fatalf("open breaker served a non-degraded plan")
		}
		states = append(states, svc.BreakerState())

		// Past the cooldown, a clean request becomes the probe and
		// closes the breaker.
		vt.Advance(11 * time.Second)
		d := balancedOpts(model.GPT8B)
		plan, err = svc.PlanMobius(ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Fallback {
			t.Fatalf("probe solve degraded unexpectedly")
		}
		states = append(states, svc.BreakerState())

		return svc.Metrics(), append([]time.Duration(nil), vt.sleeps...), states, vt
	}

	m, sleeps, states, _ := run()
	checkConservation(t, m)
	if m.InjectedFailures != 4 { // 2 failing requests x MaxAttempts 2
		t.Errorf("InjectedFailures = %d, want 4", m.InjectedFailures)
	}
	if m.Retries != 2 {
		t.Errorf("Retries = %d, want 2", m.Retries)
	}
	if m.GreedyFallbacks != 3 { // 2 exhaustions + 1 breaker short
		t.Errorf("GreedyFallbacks = %d, want 3", m.GreedyFallbacks)
	}
	if m.BreakerTrips != 1 || m.BreakerShorted != 1 || m.BreakerProbes != 1 {
		t.Errorf("breaker counters trips=%d shorted=%d probes=%d, want 1/1/1",
			m.BreakerTrips, m.BreakerShorted, m.BreakerProbes)
	}
	if m.Solves != 1 { // only the probe reached the solver
		t.Errorf("Solves = %d, want 1", m.Solves)
	}
	wantStates := []string{"closed", "open", "open", "closed"}
	for i, w := range wantStates {
		if states[i] != w {
			t.Errorf("breaker state after step %d = %s, want %s", i, states[i], w)
		}
	}

	// Backoff sleeps are exponential with deterministic jitter, and the
	// whole scenario replays bitwise.
	m2, sleeps2, states2, _ := run()
	if m != m2 {
		t.Errorf("metrics diverged across replays:\n first  %+v\n replay %+v", m, m2)
	}
	if len(sleeps) != len(sleeps2) {
		t.Fatalf("sleep counts diverged: %d vs %d", len(sleeps), len(sleeps2))
	}
	for i := range sleeps {
		if sleeps[i] != sleeps2[i] {
			t.Errorf("sleep %d diverged: %v vs %v", i, sleeps[i], sleeps2[i])
		}
	}
	for i := range states {
		if states[i] != states2[i] {
			t.Errorf("breaker state %d diverged: %s vs %s", i, states[i], states2[i])
		}
	}
}

// TestWarmStartUsesNearestIncumbent: with a 4-GPU MIP plan cached, a
// 3-GPU solve of the same model is warm-started — and the result is
// identical to a cold service's.
func TestWarmStartUsesNearestIncumbent(t *testing.T) {
	if testing.Short() {
		t.Skip("MIP solves in -short mode")
	}
	full := core.Options{Model: model.GPT8B, Topology: topo22()}
	lossy := core.Options{Model: model.GPT8B, Topology: hw.Commodity(hw.RTX3090Ti, 2, 1)}

	warm := New(Config{})
	if _, err := warm.PlanMobius(context.Background(), full); err != nil {
		t.Fatal(err)
	}
	warmPlan, err := warm.PlanMobius(context.Background(), lossy)
	if err != nil {
		t.Fatal(err)
	}
	if m := warm.Metrics(); m.WarmStarts != 1 {
		t.Errorf("WarmStarts = %d, want 1", m.WarmStarts)
	}

	cold := New(Config{DisableWarm: true})
	coldPlan, err := cold.PlanMobius(context.Background(), lossy)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(warmPlan) != Fingerprint(coldPlan) {
		t.Errorf("warm-started plan differs from cold plan")
	}
	if warmPlan.PredictedStep != coldPlan.PredictedStep {
		t.Errorf("objective diverged: warm %v cold %v", warmPlan.PredictedStep, coldPlan.PredictedStep)
	}
}
