// Package plansvc is a hardened planning service in front of the Mobius
// planner (core.PlanMobiusCtx). Plans are pure functions of (model,
// topology, planning options), so the service can be aggressive about
// reuse without ever changing a result:
//
//   - a content-addressed plan cache keyed by a canonical hash of the
//     planning inputs, with Plan.Validate re-checked on every hit so a
//     corrupt or stale entry degrades to a recompute instead of serving
//     garbage;
//   - single-flight deduplication: N concurrent requests for the same
//     key cost one solve, and a leader whose own context dies hands the
//     key off to a waiter instead of poisoning it;
//   - a deadline-aware degradation ladder — exact cache hit, then a
//     warm-started MIP seeded from the nearest cached incumbent, then
//     the deterministic greedy fallback — with bounded retries,
//     exponential backoff and deterministic jitter for transient solver
//     failures, and a circuit breaker that trips to greedy-only after
//     repeated deadline blowups and half-opens on a probe;
//   - speculative pre-planning of every surviving single-GPU-loss
//     topology, so an elastic recovery's re-plan is a cache lookup.
//
// Planner-side failures are part of the fault-injection surface: a
// fault.Spec planner clause injects solver latency and transient errors
// (fault.Spec.PlannerAttempt), which the chaos suite drives through the
// ladder under -race.
package plansvc

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"math"

	"mobius/internal/core"
)

// Key is the content address of a planning request: a SHA-256 over the
// canonical encoding of every input the plan is a function of.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Uint64 folds the key to 64 bits for hash-streamed decisions (fault
// injection, backoff jitter).
func (k Key) Uint64() uint64 { return binary.BigEndian.Uint64(k[:8]) }

// Request is a canonicalized planning request: options with every
// planning default applied, plus the content key derived from them.
type Request struct {
	// Opts are the normalized options; two requests with equal keys have
	// semantically identical Opts.
	Opts core.Options
	// Key is the content address.
	Key Key
	// ModelSig hashes the model content alone; the warm-start index
	// groups cache entries by it so an incumbent is only ever borrowed
	// across topologies of the same model.
	ModelSig uint64
}

// NewRequest canonicalizes opts and computes its content key.
//
// The encoding is by construction independent of how the caller spelled
// the inputs: fields are hashed in a fixed order, defaults are applied
// first (core.Options.Normalized, partition.MIPOptions.Normalized), and
// floats are hashed as their IEEE-754 bits, so 13.1e9 and 13100000000.0
// address the same entry. Labels (model and topology names, GPU product
// names, prices) are excluded — content, not naming, addresses the
// cache. Also excluded is everything a plan provably does not depend
// on: Parallelism (plans are identical at every level), fault and
// integrity scenarios, checkpoint policy, the prefetch ablation flags
// (execution-time, not plan-time), the Planner itself, and the MIP
// cache/warm-start controls (warm starting is outcome-preserving by
// construction).
func NewRequest(opts core.Options) (*Request, error) {
	norm, err := opts.Normalized()
	if err != nil {
		return nil, err
	}
	norm.MIP = norm.MIP.Normalized(norm.Model.Layers)
	if norm.ProfileOptions.Repeats <= 0 {
		norm.ProfileOptions.Repeats = 3
	}

	w := newHasher()
	w.str("plansvc/v1")

	w.str("model")
	mw := newHasher()
	for _, h := range []*hasher{w, mw} {
		h.ints(norm.Model.Layers, norm.Model.Hidden, norm.Model.Heads,
			norm.Model.VocabSize, norm.Model.SeqLen, norm.Model.MicrobatchSize)
	}

	topo := norm.Topology
	w.str("topo")
	w.ints(len(topo.GPUs))
	for _, g := range topo.GPUs {
		w.ints(g.RootComplex)
		w.f64s(g.Spec.MemBytes, g.Spec.FP16TFLOPS, g.Spec.Efficiency, g.Spec.LinkBW)
		w.bools(g.Spec.P2P)
	}
	w.ints(len(topo.RootComplexBW))
	w.f64s(topo.RootComplexBW...)
	w.f64s(topo.DRAMBW, topo.DRAMBytes, topo.NVLinkBW, topo.TransferLatency, topo.SSDBW, topo.SSDBytes)

	w.str("opts")
	w.ints(norm.Microbatches, norm.BalancedStages)
	w.str(norm.PartitionAlgo)
	w.str(norm.MappingScheme)

	w.str("mip")
	w.ints(norm.MIP.MaxStages, norm.MIP.Patience, norm.MIP.NodeLimit, int(norm.MIP.TimeLimit))

	w.str("profile")
	w.ints(norm.ProfileOptions.Repeats)
	w.bools(norm.ProfileOptions.DisableSimilarity)

	return &Request{Opts: norm, Key: w.sum(), ModelSig: mw.sumLow()}, nil
}

// KeyOf is NewRequest reduced to the key.
func KeyOf(opts core.Options) (Key, error) {
	req, err := NewRequest(opts)
	if err != nil {
		return Key{}, err
	}
	return req.Key, nil
}

// hasher is an incremental canonical encoder over SHA-256.
type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: sha256.New()} }

func (w *hasher) u64(v uint64) {
	binary.BigEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *hasher) ints(vs ...int) {
	for _, v := range vs {
		w.u64(uint64(int64(v)))
	}
}

func (w *hasher) f64s(vs ...float64) {
	for _, v := range vs {
		w.u64(math.Float64bits(v))
	}
}

func (w *hasher) bools(vs ...bool) {
	for _, v := range vs {
		if v {
			w.u64(1)
		} else {
			w.u64(0)
		}
	}
}

func (w *hasher) str(s string) {
	w.u64(uint64(len(s)))
	io.WriteString(w.h, s)
}

func (w *hasher) sum() Key {
	var k Key
	w.h.Sum(k[:0])
	return k
}

// sumLow is the first 64 bits of the current digest.
func (w *hasher) sumLow() uint64 {
	var k Key
	w.h.Sum(k[:0])
	return binary.BigEndian.Uint64(k[:8])
}

// Fingerprint hashes the deterministic content of a plan — partition
// stages, mapping, predicted step, fallback state — excluding the
// wall-clock measurements (CrossMapTime, MIPStats.SolveTime). Two plans
// with equal fingerprints are the same plan for every consumer of the
// service; determinism and chaos tests compare fingerprints across
// replays and concurrency levels.
func Fingerprint(p *core.Plan) string {
	w := newHasher()
	if p == nil {
		w.str("nil")
		k := w.sum()
		return k.String()
	}
	w.str(p.Partition.Algorithm)
	w.ints(len(p.Partition.Stages))
	for _, st := range p.Partition.Stages {
		w.ints(st.First, st.Last, st.Blocks)
		w.f64s(st.FwdTime, st.BwdTime, st.ParamBytes, st.GradBytes,
			st.ActInBytes, st.ActOutBytes, st.WorkingBytes)
	}
	w.ints(p.Mapping.NumStages)
	w.ints(p.Mapping.Perm...)
	w.f64s(p.PredictedStep)
	w.bools(p.Fallback)
	w.str(p.FallbackReason)
	k := w.sum()
	return k.String()
}
