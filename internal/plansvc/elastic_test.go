package plansvc

import (
	"context"
	"math"
	"testing"

	"mobius/internal/core"
	"mobius/internal/elastic"
	"mobius/internal/fault"
	"mobius/internal/model"
)

// TestElasticRecoveryIsZeroSolveWithPrewarm is the tentpole acceptance
// test for speculative pre-planning: after Prewarm, an elastic run that
// loses a GPU recovers without a single planner solve — both the full
// plan and the recovery re-plan are validated cache hits — the re-plan
// term collapses to lookup latency, and the recovery accounting
// identity still balances exactly.
func TestElasticRecoveryIsZeroSolveWithPrewarm(t *testing.T) {
	if testing.Short() {
		t.Skip("MIP solves in -short mode")
	}
	topo := topo22()
	svc := New(Config{})
	opts := core.Options{Model: model.GPT3B, Topology: topo}

	rep, err := svc.Prewarm(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Survivors != 3 {
		t.Fatalf("prewarm: %+v, want 3 survivor plans on the symmetric box (two GPU-loss shapes + the rc-loss pair)", rep)
	}

	// Nominal step (planned through the service: a cache hit) to place
	// the failure onset.
	nominal, err := core.Run(core.SystemMobius, core.Options{Model: model.GPT3B, Topology: topo, Planner: svc})
	if err != nil || nominal.OOM {
		t.Fatalf("nominal run: err=%v oom=%v", err, nominal.OOM)
	}
	step := nominal.StepTime

	before := svc.Metrics()

	rec, err := elastic.Run(elastic.Config{
		Model:           model.GPT3B,
		Topology:        topo,
		Steps:           8,
		CheckpointEvery: 2,
		Policy:          elastic.PolicyReplan,
		Planner:         svc,
		Faults: &fault.Spec{
			GPUFails: []fault.GPUFailFault{{GPU: 1, At: 4.6 * step}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Lost == nil || rec.FailedStep == 0 {
		t.Fatalf("failure did not fire: %+v", rec)
	}

	after := svc.Metrics()
	checkConservation(t, after)
	if after.Solves != before.Solves {
		t.Errorf("recovery path performed %d planner solve(s); want 0 (all cache hits)",
			after.Solves-before.Solves)
	}
	if hits := after.Hits - before.Hits; hits < 2 {
		t.Errorf("recovery path recorded %d cache hits, want >= 2 (full plan + re-plan)", hits)
	}
	if rec.ReplanFallback {
		t.Errorf("prewarmed re-plan degraded to fallback: %+v", rec)
	}
	// The re-plan term is now lookup latency. Anything near a solver
	// timescale means the cache was missed.
	if rec.ReplanSeconds > 0.05 {
		t.Errorf("ReplanSeconds = %gs; a warmed re-plan should be a cache lookup", rec.ReplanSeconds)
	}

	// The accounting identity holds with the collapsed re-plan term.
	if diff := math.Abs(rec.TotalTime - rec.AccountedTotal()); diff > 1e-9*rec.TotalTime {
		t.Errorf("accounting identity broken: total %.12f vs accounted %.12f (diff %g)",
			rec.TotalTime, rec.AccountedTotal(), diff)
	}
	if rec.SurvivorStep < rec.PlainStep {
		t.Errorf("survivor step %g faster than full-machine step %g", rec.SurvivorStep, rec.PlainStep)
	}
}
