package plansvc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/planstore"
)

// PlanRequest is the wire form of a planning request. The model is
// named (a Table 3 configuration) or given in full; the topology is a
// compact spec ("2+2", "4", "dc") or a full structure. DeadlineMS
// bounds the solve — past it the ladder degrades, exactly as an
// in-process caller with a context deadline.
type PlanRequest struct {
	ModelName string       `json:"model,omitempty"`
	Model     model.Config `json:"model_config,omitempty"`
	Topo      string       `json:"topo,omitempty"`
	Topology  *hw.Topology `json:"topology,omitempty"`

	Microbatches   int     `json:"microbatches,omitempty"`
	PartitionAlgo  string  `json:"partition_algo,omitempty"`
	BalancedStages int     `json:"balanced_stages,omitempty"`
	MappingScheme  string  `json:"mapping_scheme,omitempty"`
	DeadlineMS     float64 `json:"deadline_ms,omitempty"`
}

// PlanResponse is the wire form of a served plan.
type PlanResponse struct {
	Key            string          `json:"key"`
	Fingerprint    string          `json:"fingerprint"`
	Algorithm      string          `json:"algorithm"`
	Stages         []StageSummary  `json:"stages"`
	MappingPerm    []int           `json:"mapping_perm"`
	PredictedStep  float64         `json:"predicted_step_s"`
	Fallback       bool            `json:"fallback,omitempty"`
	FallbackReason string          `json:"fallback_reason,omitempty"`
}

// StageSummary is one pipeline stage of a served plan.
type StageSummary struct {
	First      int     `json:"first"`
	Last       int     `json:"last"`
	GPU        int     `json:"gpu"`
	ParamBytes float64 `json:"param_bytes"`
}

// Handler serves the planning service over HTTP:
//
//	POST /v1/plan     — plan a PlanRequest, JSON in and out
//	GET  /v1/metrics  — the service Metrics snapshot
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	return mux
}

func (s *Service) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var preq PlanRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&preq); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	opts, err := preq.options()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if preq.DeadlineMS > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, time.Duration(preq.DeadlineMS*float64(time.Millisecond)))
		defer cancel()
	}
	req, err := NewRequest(opts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	plan, err := s.plan(ctx, req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	resp := PlanResponse{
		Key:            req.Key.String(),
		Fingerprint:    Fingerprint(plan),
		Algorithm:      plan.Partition.Algorithm,
		MappingPerm:    plan.Mapping.Perm,
		PredictedStep:  plan.PredictedStep,
		Fallback:       plan.Fallback,
		FallbackReason: plan.FallbackReason,
	}
	for j, st := range plan.Partition.Stages {
		resp.Stages = append(resp.Stages, StageSummary{
			First: st.First, Last: st.Last, GPU: plan.Mapping.GPUOf(j), ParamBytes: st.ParamBytes,
		})
	}
	writeJSON(w, resp)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, struct {
		Metrics
		Breaker string             `json:"breaker"`
		Store   *planstore.Metrics `json:"store,omitempty"`
	}{s.Metrics(), s.BreakerState(), s.StoreMetrics()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// options resolves the wire request to planning options.
func (p *PlanRequest) options() (core.Options, error) {
	opts := core.Options{
		Model:          p.Model,
		Topology:       p.Topology,
		Microbatches:   p.Microbatches,
		PartitionAlgo:  p.PartitionAlgo,
		BalancedStages: p.BalancedStages,
		MappingScheme:  p.MappingScheme,
	}
	if p.ModelName != "" {
		found := false
		for _, m := range model.Table3() {
			if m.Name == p.ModelName {
				opts.Model, found = m, true
				break
			}
		}
		if !found {
			return opts, fmt.Errorf("plansvc: unknown model %q (want a Table 3 name or a full model_config)", p.ModelName)
		}
	}
	if opts.Topology == nil {
		if p.Topo == "" {
			return opts, fmt.Errorf("plansvc: request needs a topo spec or a full topology")
		}
		topo, err := hw.ParseSpec(p.Topo)
		if err != nil {
			return opts, err
		}
		opts.Topology = topo
	}
	return opts, nil
}
