package plansvc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServePlanAndMetrics drives the HTTP surface end to end: a plan
// request solves, an identical one hits the cache with the same
// fingerprint, and the metrics endpoint reports both.
func TestServePlanAndMetrics(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body := `{"model": "8B", "topo": "2+2", "partition_algo": "min-stage"}`
	post := func() PlanResponse {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var pr PlanResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	first := post()
	if len(first.Stages) == 0 || len(first.MappingPerm) != 4 {
		t.Fatalf("implausible plan response: %+v", first)
	}
	if first.Fallback {
		t.Fatalf("unexpected fallback: %s", first.FallbackReason)
	}
	second := post()
	if second.Fingerprint != first.Fingerprint || second.Key != first.Key {
		t.Errorf("identical request produced a different plan")
	}

	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m struct {
		Metrics
		Breaker string `json:"breaker"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests != 2 || m.Hits != 1 || m.Led != 1 {
		t.Errorf("metrics = %+v, want 2 requests / 1 hit / 1 led", m.Metrics)
	}
	if m.Breaker != "closed" {
		t.Errorf("breaker = %q, want closed", m.Breaker)
	}
}

// TestServeBalancedStages: the balanced algorithm's stage-count knob is
// reachable over the wire, and an unplannable request (balanced with no
// stage count) is a 422, not a crash.
func TestServeBalancedStages(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/plan", "application/json",
		strings.NewReader(`{"model": "8B", "topo": "2+2", "partition_algo": "balanced", "balanced_stages": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var pr PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Stages) != 4 {
		t.Errorf("got %d stages, want 4", len(pr.Stages))
	}

	bad, err := http.Post(srv.URL+"/v1/plan", "application/json",
		strings.NewReader(`{"model": "8B", "topo": "2+2", "partition_algo": "balanced"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("balanced with no stage count: status %d, want 422", bad.StatusCode)
	}
}

// TestServeRejectsBadRequests: malformed JSON, unknown fields, unknown
// models and missing topologies are 400s, and GET /v1/plan is 405.
func TestServeRejectsBadRequests(t *testing.T) {
	svc := New(Config{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	for name, body := range map[string]string{
		"malformed":     `{"model": `,
		"unknown-field": `{"model": "8B", "topo": "2+2", "bogus": 1}`,
		"unknown-model": `{"model": "9000B", "topo": "2+2"}`,
		"no-topology":   `{"model": "8B"}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}
}
