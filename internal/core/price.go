package core

import "mobius/internal/hw"

// Hourly rental prices used by the Figure 15b cost analysis, following
// the paper's sources: Amazon EC2 P3.8xlarge for the data center server
// [1] and immers.cloud-style commodity GPU rental [8].
const (
	// DCPricePerGPUHour is the per-GPU hourly price of a P3.8xlarge
	// ($12.24/h for 4 V100s).
	DCPricePerGPUHour = 12.24 / 4
	// CommodityPricePerGPUHour is the hourly rental of one 3090-class
	// GPU on a commodity cloud (immers.cloud-style pricing).
	CommodityPricePerGPUHour = 1.05
)

// HourlyPrice returns the topology's rental price per hour.
func HourlyPrice(topo *hw.Topology) float64 {
	per := CommodityPricePerGPUHour
	if topo.HasP2P() {
		per = DCPricePerGPUHour
	}
	return per * float64(topo.NumGPUs())
}

// PricePerStep converts a measured step time into dollars per training
// step on the given topology (Figure 15b).
func PricePerStep(topo *hw.Topology, stepTime float64) float64 {
	return HourlyPrice(topo) * stepTime / 3600
}
