// Package core is the top-level orchestration API of the Mobius
// reproduction: it profiles a model, plans a Mobius execution (MIP
// partition + cross mapping, §3.2-3.3), runs any of the four evaluated
// systems on a simulated topology, and returns a StepReport with the
// metrics every figure of the paper's evaluation is built from.
package core

import (
	"fmt"
	"time"

	"mobius/internal/hw"
	"mobius/internal/mapping"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/pipeline"
	"mobius/internal/profile"
	"mobius/internal/trace"
	"mobius/internal/zero"
)

// System identifies one of the evaluated training systems.
type System string

// The four systems of the paper's evaluation (§4, Figure 5).
const (
	SystemMobius     System = "Mobius"
	SystemGPipe      System = "GPipe"
	SystemDSPipeline System = "DeepSpeed (pipeline)"
	SystemDSHetero   System = "DeepSpeed (hetero)"
)

// Related-work systems from §5, for the extended comparison.
const (
	// SystemZeROOffload replicates FP16 parameters on every GPU and
	// offloads gradients/optimizer to the CPU; model scale is bounded by
	// one GPU's memory.
	SystemZeROOffload System = "ZeRO-Offload"
	// SystemZeRONVMe is ZeRO-Infinity with parameter shards and
	// gradients on the NVMe tier.
	SystemZeRONVMe System = "ZeRO-Infinity (NVMe)"
)

// Systems lists all four in the paper's presentation order.
func Systems() []System {
	return []System{SystemGPipe, SystemDSPipeline, SystemDSHetero, SystemMobius}
}

// UsableMemFraction is the share of device memory available to the
// scheduler after CUDA context and allocator fragmentation overheads.
const UsableMemFraction = 0.92

// Options configure a planning + simulation run.
type Options struct {
	// Model is the workload (Table 3).
	Model model.Config
	// Topology is the simulated server.
	Topology *hw.Topology
	// Microbatches is M per training step; defaults to the GPU count,
	// as in the paper.
	Microbatches int
	// PartitionAlgo selects partition.AlgoMIP (default), AlgoMaxStage,
	// AlgoMinStage or AlgoBalanced (with BalancedStages).
	PartitionAlgo string
	// BalancedStages is the stage count for AlgoBalanced.
	BalancedStages int
	// MappingScheme selects mapping.SchemeCross (default) or
	// mapping.SchemeSequential.
	MappingScheme string
	// DisablePrefetchPriority turns off the paper's prefetch priority
	// policy (ablation).
	DisablePrefetchPriority bool
	// DisablePrefetch turns off stage prefetching entirely (ablation):
	// no communication/computation overlap.
	DisablePrefetch bool
	// MIP bounds the partition solver.
	MIP partition.MIPOptions
	// ProfileOptions control layer profiling.
	ProfileOptions profile.Options
	// Parallelism bounds the worker goroutines of the planning pipeline —
	// the MIP stage-count sweep and the cross-mapping search (0 means
	// GOMAXPROCS, 1 means serial). Plans are identical at every level.
	Parallelism int
}

func (o Options) withDefaults() (Options, error) {
	if o.Topology == nil {
		return o, fmt.Errorf("core: topology is required")
	}
	if err := o.Model.Validate(); err != nil {
		return o, fmt.Errorf("core: %w", err)
	}
	if o.Microbatches <= 0 {
		o.Microbatches = o.Topology.NumGPUs()
	}
	if o.PartitionAlgo == "" {
		o.PartitionAlgo = partition.AlgoMIP
	}
	if o.MappingScheme == "" {
		o.MappingScheme = mapping.SchemeCross
	}
	return o, nil
}

// PlanBandwidth returns the average effective transfer bandwidth B used
// by the partition MIP: the narrower of a GPU link and its root complex.
func PlanBandwidth(topo *hw.Topology) float64 {
	b := topo.GPUs[0].Spec.LinkBW
	for _, rc := range topo.RootComplexBW {
		if rc < b {
			b = rc
		}
	}
	return b
}

// Plan is a complete Mobius execution plan for a model on a topology.
type Plan struct {
	Profile   *profile.Profile
	Partition *partition.Partition
	Mapping   *mapping.Mapping
	// MIPStats is non-nil when the MIP partition algorithm ran.
	MIPStats *partition.MIPStats
	// CrossMapTime is the wall-clock time of the mapping search
	// (Figure 12's "cross mapping" overhead bar).
	CrossMapTime time.Duration
	// PredictedStep is the analytic step-time estimate of the partition
	// evaluator.
	PredictedStep float64
}

// PlanMobius profiles the model and computes partition and mapping.
func PlanMobius(opts Options) (*Plan, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
	if err != nil {
		return nil, err
	}
	params := partition.Params{
		Profile:      prof,
		NumGPUs:      opts.Topology.NumGPUs(),
		Microbatches: opts.Microbatches,
		GPUMem:       opts.Topology.GPUMem(0) * UsableMemFraction,
		Bandwidth:    PlanBandwidth(opts.Topology),
		Latency:      opts.Topology.TransferLatency,
	}

	plan := &Plan{Profile: prof}
	switch opts.PartitionAlgo {
	case partition.AlgoMIP:
		mipOpts := opts.MIP
		if mipOpts.Parallelism == 0 {
			mipOpts.Parallelism = opts.Parallelism
		}
		part, stats, err := partition.MIP(params, mipOpts)
		if err != nil {
			return nil, err
		}
		plan.Partition, plan.MIPStats = part, stats
	case partition.AlgoMaxStage:
		plan.Partition, err = partition.MaxStage(params)
	case partition.AlgoMinStage:
		plan.Partition, err = partition.MinStage(params)
	case partition.AlgoBalanced:
		plan.Partition, err = partition.Balanced(params, opts.BalancedStages)
	default:
		return nil, fmt.Errorf("core: unknown partition algorithm %q", opts.PartitionAlgo)
	}
	if err != nil {
		return nil, err
	}

	start := time.Now()
	switch opts.MappingScheme {
	case mapping.SchemeCross:
		plan.Mapping, err = mapping.CrossN(opts.Topology, plan.Partition.NumStages(), opts.Parallelism)
	case mapping.SchemeSequential:
		plan.Mapping, err = mapping.Sequential(opts.Topology, plan.Partition.NumStages())
	default:
		return nil, fmt.Errorf("core: unknown mapping scheme %q", opts.MappingScheme)
	}
	plan.CrossMapTime = time.Since(start)
	if err != nil {
		return nil, err
	}

	if t, err := partition.StepTime(params, plan.Partition); err == nil {
		plan.PredictedStep = t
	}
	return plan, nil
}

// StepReport is the measured outcome of simulating one training step.
type StepReport struct {
	System   System
	Model    model.Config
	Topology *hw.Topology

	// StepTime is the simulated step duration; meaningless when OOM.
	StepTime float64
	// OOM reports the schedule did not fit in GPU memory.
	OOM bool
	// TrafficBytes is the total data moved during the step (Figure 6).
	TrafficBytes float64
	// BandwidthCDF is the byte-weighted achieved-bandwidth distribution
	// over all transfers (Figures 2, 7, 11).
	BandwidthCDF trace.CDF
	// HostLinkCDF restricts the CDF to GPU<->DRAM transfers (Figure 16).
	HostLinkCDF trace.CDF
	// NonOverlapFraction is the share of step time spent on
	// communication not hidden by compute, averaged over GPUs (Figure 8).
	NonOverlapFraction float64
	// Plan holds the Mobius plan when System == SystemMobius.
	Plan *Plan
	// Recorder exposes the raw trace.
	Recorder *trace.Recorder
	// Server exposes the simulated hardware (resource utilization,
	// memory peaks) after the run.
	Server *hw.Server
}

// Run plans (when needed) and simulates one training step of the given
// system.
func Run(system System, opts Options) (*StepReport, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	report := &StepReport{System: system, Model: opts.Model, Topology: opts.Topology}

	// Heterogeneous-memory systems keep the full model states in DRAM;
	// the paper assumes pretrained models fit there (§3.1).
	if states := opts.Model.ModelStatesBytes(); states > opts.Topology.DRAMBytes {
		return nil, fmt.Errorf("core: model states (%.0f GB) exceed DRAM capacity (%.0f GB)",
			states/1e9, opts.Topology.DRAMBytes/1e9)
	}

	var res *pipeline.Result
	switch system {
	case SystemMobius:
		plan, err := PlanMobius(opts)
		if err != nil {
			return nil, err
		}
		report.Plan = plan
		res, err = pipeline.RunMobius(opts.Topology, pipeline.MobiusConfig{
			Partition:               plan.Partition,
			Mapping:                 plan.Mapping,
			Microbatches:            opts.Microbatches,
			DisablePrefetchPriority: opts.DisablePrefetchPriority,
			DisablePrefetch:         opts.DisablePrefetch,
		})
		if err != nil {
			return nil, err
		}
	case SystemGPipe:
		prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
		if err != nil {
			return nil, err
		}
		res, err = pipeline.RunGPipe(opts.Topology, pipeline.GPipeConfig{Profile: prof, Microbatches: opts.Microbatches})
		if err != nil {
			return nil, err
		}
	case SystemDSPipeline:
		prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
		if err != nil {
			return nil, err
		}
		res, err = zero.RunPipelineMode(opts.Topology, prof, opts.Microbatches)
		if err != nil {
			return nil, err
		}
	case SystemDSHetero:
		prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
		if err != nil {
			return nil, err
		}
		res, err = zero.Run(opts.Topology, zero.Config{Profile: prof})
		if err != nil {
			return nil, err
		}
	case SystemZeROOffload:
		prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
		if err != nil {
			return nil, err
		}
		res, err = zero.RunOffload(opts.Topology, zero.Config{Profile: prof})
		if err != nil {
			return nil, err
		}
	case SystemZeRONVMe:
		prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
		if err != nil {
			return nil, err
		}
		topo := opts.Topology
		if !topo.HasSSD() {
			// Attach the default commodity NVMe tier; ZeRO-Infinity's
			// defining trait is offloading to it.
			clone := *topo
			topo = (&clone).WithSSD(hw.CommoditySSDBW, hw.CommoditySSDBytes)
		}
		res, err = zero.RunInfinityNVMe(topo, zero.Config{Profile: prof})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown system %q", system)
	}

	report.StepTime = res.StepTime
	report.OOM = res.OOM
	report.Recorder = res.Recorder
	report.Server = res.Server
	if !res.OOM && res.Recorder != nil {
		report.TrafficBytes = res.Recorder.TotalBytes(nil)
		report.BandwidthCDF = res.Recorder.BandwidthCDF(nil)
		report.HostLinkCDF = res.Recorder.BandwidthCDF(func(tag trace.Tag) bool { return tag.PeerGPU < 0 })
		report.NonOverlapFraction = res.Recorder.NonOverlappedCommFraction(opts.Topology.NumGPUs(), res.StepTime)
	}
	return report, nil
}

func (r *StepReport) String() string {
	if r.OOM {
		return fmt.Sprintf("%-22s %-4s %-10s OOM", r.System, r.Model.Name, r.Topology.Name)
	}
	return fmt.Sprintf("%-22s %-4s %-10s %8.2fs/step  %7.1f GB moved  %4.0f%% comm exposed",
		r.System, r.Model.Name, r.Topology.Name, r.StepTime, r.TrafficBytes/1e9, r.NonOverlapFraction*100)
}
