// Package core is the top-level orchestration API of the Mobius
// reproduction: it profiles a model, plans a Mobius execution (MIP
// partition + cross mapping, §3.2-3.3), runs any of the four evaluated
// systems on a simulated topology, and returns a StepReport with the
// metrics every figure of the paper's evaluation is built from.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/mapping"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/pipeline"
	"mobius/internal/profile"
	"mobius/internal/sim"
	"mobius/internal/trace"
	"mobius/internal/zero"
)

// System identifies one of the evaluated training systems.
type System string

// The four systems of the paper's evaluation (§4, Figure 5).
const (
	SystemMobius     System = "Mobius"
	SystemGPipe      System = "GPipe"
	SystemDSPipeline System = "DeepSpeed (pipeline)"
	SystemDSHetero   System = "DeepSpeed (hetero)"
)

// Related-work systems from §5, for the extended comparison.
const (
	// SystemZeROOffload replicates FP16 parameters on every GPU and
	// offloads gradients/optimizer to the CPU; model scale is bounded by
	// one GPU's memory.
	SystemZeROOffload System = "ZeRO-Offload"
	// SystemZeRONVMe is ZeRO-Infinity with parameter shards and
	// gradients on the NVMe tier.
	SystemZeRONVMe System = "ZeRO-Infinity (NVMe)"
)

// Systems lists all four in the paper's presentation order.
func Systems() []System {
	return []System{SystemGPipe, SystemDSPipeline, SystemDSHetero, SystemMobius}
}

// UsableMemFraction is the share of device memory available to the
// scheduler after CUDA context and allocator fragmentation overheads.
const UsableMemFraction = 0.92

// Options configure a planning + simulation run.
type Options struct {
	// Model is the workload (Table 3).
	Model model.Config
	// Topology is the simulated server.
	Topology *hw.Topology
	// Microbatches is M per training step; defaults to the GPU count,
	// as in the paper.
	Microbatches int
	// PartitionAlgo selects partition.AlgoMIP (default), AlgoMaxStage,
	// AlgoMinStage or AlgoBalanced (with BalancedStages).
	PartitionAlgo string
	// BalancedStages is the stage count for AlgoBalanced.
	BalancedStages int
	// MappingScheme selects mapping.SchemeCross (default) or
	// mapping.SchemeSequential.
	MappingScheme string
	// DisablePrefetchPriority turns off the paper's prefetch priority
	// policy (ablation).
	DisablePrefetchPriority bool
	// DisablePrefetch turns off stage prefetching entirely (ablation):
	// no communication/computation overlap.
	DisablePrefetch bool
	// MIP bounds the partition solver.
	MIP partition.MIPOptions
	// ProfileOptions control layer profiling.
	ProfileOptions profile.Options
	// Parallelism bounds the worker goroutines of the planning pipeline —
	// the MIP stage-count sweep and the cross-mapping search (0 means
	// GOMAXPROCS, 1 means serial). Plans are identical at every level.
	Parallelism int
	// Faults injects a degraded-hardware scenario into the simulated
	// server (Mobius and GPipe only; nil means nominal hardware). The
	// plan is still computed against the nominal topology — faults model
	// unplanned degradation, not a different machine.
	Faults *fault.Spec
	// Checkpoint, when non-nil, appends a periodic state snapshot to the
	// Mobius step (see pipeline.CheckpointWrite); ignored by the other
	// systems.
	Checkpoint *pipeline.CheckpointWrite
	// Checksums enables end-to-end transfer integrity for Mobius and
	// GPipe steps (see sim.ChecksumConfig): per-byte verification cost,
	// bounded retransmits for detected corruption, and a structured
	// sim.CorruptionError when the budget is exhausted.
	Checksums sim.ChecksumConfig
	// Planner, when non-nil, computes the Mobius plan in place of a
	// direct PlanMobiusCtx call: RunCtx and NewMobiusSession route
	// planning through it, so an experiment grid or an elastic run can
	// share one caching plansvc.Service. Plans are pure functions of the
	// planning inputs, so a correct Planner never changes results — only
	// cost and failure behavior.
	Planner Planner `json:"-"`
}

// Planner computes Mobius execution plans. The default is the direct,
// uncached PlanMobiusCtx; internal/plansvc implements Planner with a
// content-addressed cache, single-flight deduplication, a degradation
// ladder and a circuit breaker.
type Planner interface {
	PlanMobius(ctx context.Context, opts Options) (*Plan, error)
}

// PlannerFunc adapts a plain function to the Planner interface.
type PlannerFunc func(ctx context.Context, opts Options) (*Plan, error)

// PlanMobius implements Planner.
func (f PlannerFunc) PlanMobius(ctx context.Context, opts Options) (*Plan, error) {
	return f(ctx, opts)
}

// DefaultPlanner returns the direct planner backed by PlanMobiusCtx.
func DefaultPlanner() Planner { return PlannerFunc(PlanMobiusCtx) }

// planMobius routes planning through the configured Planner when set.
func planMobius(ctx context.Context, opts Options) (*Plan, error) {
	if opts.Planner != nil {
		return opts.Planner.PlanMobius(ctx, opts)
	}
	return PlanMobiusCtx(ctx, opts)
}

func (o Options) withDefaults() (Options, error) {
	if o.Topology == nil {
		return o, fmt.Errorf("core: topology is required")
	}
	if err := o.Model.Validate(); err != nil {
		return o, fmt.Errorf("core: %w", err)
	}
	if o.Microbatches <= 0 {
		o.Microbatches = o.Topology.NumGPUs()
	}
	if o.PartitionAlgo == "" {
		o.PartitionAlgo = partition.AlgoMIP
	}
	if o.MappingScheme == "" {
		o.MappingScheme = mapping.SchemeCross
	}
	return o, nil
}

// Normalized returns the options with every planning default applied
// (microbatches, partition algorithm, mapping scheme). The planning
// service canonicalizes requests through it, so a zero-valued field and
// its explicit default address the same cache entry.
func (o Options) Normalized() (Options, error) { return o.withDefaults() }

// PlanBandwidth returns the average effective transfer bandwidth B used
// by the partition MIP: the narrower of a GPU link and its root complex.
func PlanBandwidth(topo *hw.Topology) float64 {
	b := topo.GPUs[0].Spec.LinkBW
	for _, rc := range topo.RootComplexBW {
		if rc < b {
			b = rc
		}
	}
	return b
}

// Plan is a complete Mobius execution plan for a model on a topology.
type Plan struct {
	Profile   *profile.Profile
	Partition *partition.Partition
	Mapping   *mapping.Mapping
	// MIPStats is non-nil when the MIP partition algorithm ran.
	MIPStats *partition.MIPStats
	// CrossMapTime is the wall-clock time of the mapping search
	// (Figure 12's "cross mapping" overhead bar).
	CrossMapTime time.Duration
	// PredictedStep is the analytic step-time estimate of the partition
	// evaluator.
	PredictedStep float64
	// Fallback is true when a planning deadline expired and the plan is
	// the deterministic greedy fallback rather than the MIP optimum.
	Fallback bool
	// FallbackReason describes why the fallback engaged.
	FallbackReason string
}

// Validate checks the plan is internally consistent and executable on the
// topology: the partition covers the profile's layers exactly, the
// mapping is a permutation of the GPUs sized for the stage count, and
// every stage's forward and backward footprint fits its GPU's usable
// memory. A nil error means the pipeline runner can execute the plan.
func (p *Plan) Validate(topo *hw.Topology) error {
	if p == nil {
		return fmt.Errorf("core: nil plan")
	}
	if p.Profile == nil || p.Partition == nil || p.Mapping == nil {
		return fmt.Errorf("core: incomplete plan (profile/partition/mapping missing)")
	}
	if topo == nil {
		return fmt.Errorf("core: topology is required")
	}
	if err := p.Partition.Validate(p.Profile); err != nil {
		return err
	}
	n := topo.NumGPUs()
	if len(p.Mapping.Perm) != n {
		return fmt.Errorf("core: mapping permutes %d GPUs, topology has %d", len(p.Mapping.Perm), n)
	}
	seen := make([]bool, n)
	for _, g := range p.Mapping.Perm {
		if g < 0 || g >= n || seen[g] {
			return fmt.Errorf("core: mapping %v is not a permutation of %d GPUs", p.Mapping.Perm, n)
		}
		seen[g] = true
	}
	if p.Mapping.NumStages != p.Partition.NumStages() {
		return fmt.Errorf("core: mapping scored for %d stages, partition has %d", p.Mapping.NumStages, p.Partition.NumStages())
	}
	for j, st := range p.Partition.Stages {
		gpu := p.Mapping.GPUOf(j)
		usable := topo.GPUMem(gpu) * UsableMemFraction
		if st.MemFwd() > usable || st.MemBwd() > usable {
			return fmt.Errorf("core: stage %d (fwd %.1f GB, bwd %.1f GB) exceeds usable memory %.1f GB on gpu %d",
				j, st.MemFwd()/1e9, st.MemBwd()/1e9, usable/1e9, gpu)
		}
	}
	return nil
}

// PlanMobius profiles the model and computes partition and mapping.
func PlanMobius(opts Options) (*Plan, error) {
	return PlanMobiusCtx(context.Background(), opts)
}

// PlanMobiusCtx is PlanMobius honoring a context deadline: when ctx
// expires before the MIP sweep completes, the plan degrades to the
// guaranteed-feasible greedy partition with a sequential mapping instead
// of failing. The fallback is a pure function of the profile — no solver,
// no timing dependence — so every caller at every parallelism level
// derives the identical degraded plan (Plan.Fallback reports it).
func PlanMobiusCtx(ctx context.Context, opts Options) (*Plan, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
	if err != nil {
		return nil, err
	}
	params := planParams(prof, opts)

	plan := &Plan{Profile: prof}
	switch opts.PartitionAlgo {
	case partition.AlgoMIP:
		mipOpts := opts.MIP
		if mipOpts.Parallelism == 0 {
			mipOpts.Parallelism = opts.Parallelism
		}
		part, stats, err := partition.MIPCtx(ctx, params, mipOpts)
		if errors.Is(err, partition.ErrCancelled) {
			return fallbackPlan(plan, params, opts, err)
		}
		if err != nil {
			return nil, err
		}
		plan.Partition, plan.MIPStats = part, stats
	case partition.AlgoMaxStage:
		plan.Partition, err = partition.MaxStage(params)
	case partition.AlgoMinStage:
		plan.Partition, err = partition.MinStage(params)
	case partition.AlgoBalanced:
		plan.Partition, err = partition.Balanced(params, opts.BalancedStages)
	default:
		return nil, fmt.Errorf("core: unknown partition algorithm %q", opts.PartitionAlgo)
	}
	if err != nil {
		return nil, err
	}

	// The mapping search is branch-and-bound too; a deadline that expired
	// after partitioning degrades the whole plan, not just the mapping —
	// mixing an optimal partition with a fallback mapping would make the
	// result depend on where exactly the deadline hit.
	if cerr := ctx.Err(); cerr != nil {
		return fallbackPlan(plan, params, opts, cerr)
	}

	start := time.Now()
	switch opts.MappingScheme {
	case mapping.SchemeCross:
		plan.Mapping, err = mapping.CrossN(opts.Topology, plan.Partition.NumStages(), opts.Parallelism)
	case mapping.SchemeSequential:
		plan.Mapping, err = mapping.Sequential(opts.Topology, plan.Partition.NumStages())
	default:
		return nil, fmt.Errorf("core: unknown mapping scheme %q", opts.MappingScheme)
	}
	plan.CrossMapTime = time.Since(start)
	if err != nil {
		return nil, err
	}

	if t, err := partition.StepTime(params, plan.Partition); err == nil {
		plan.PredictedStep = t
	}
	return plan, nil
}

// planParams derives the partition search parameters from a profiled
// model and normalized options.
func planParams(prof *profile.Profile, opts Options) partition.Params {
	return partition.Params{
		Profile:      prof,
		NumGPUs:      opts.Topology.NumGPUs(),
		Microbatches: opts.Microbatches,
		GPUMem:       opts.Topology.GPUMem(0) * UsableMemFraction,
		Bandwidth:    PlanBandwidth(opts.Topology),
		Latency:      opts.Topology.TransferLatency,
	}
}

// GreedyPlan computes the deterministic degraded plan directly: greedy
// partition + sequential mapping, no solver involved. It is the plan
// PlanMobiusCtx degrades to on an expired deadline and the floor of the
// planning service's degradation ladder (internal/plansvc); reason is
// recorded as the plan's FallbackReason.
func GreedyPlan(opts Options, reason string) (*Plan, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
	if err != nil {
		return nil, err
	}
	return fallbackPlan(&Plan{Profile: prof}, planParams(prof, opts), opts, errors.New(reason))
}

// fallbackPlan replaces whatever planning had produced so far with the
// deterministic degraded plan: greedy partition + sequential mapping.
func fallbackPlan(plan *Plan, params partition.Params, opts Options, cause error) (*Plan, error) {
	part, err := partition.Greedy(params)
	if err != nil {
		return nil, fmt.Errorf("core: planning cancelled (%v) and no feasible fallback exists: %w", cause, err)
	}
	mp, err := mapping.Sequential(opts.Topology, part.NumStages())
	if err != nil {
		return nil, err
	}
	plan.Partition = part
	plan.Mapping = mp
	plan.MIPStats = nil
	plan.CrossMapTime = 0
	plan.Fallback = true
	plan.FallbackReason = cause.Error()
	if t, err := partition.StepTime(params, part); err == nil {
		plan.PredictedStep = t
	}
	return plan, nil
}

// StepReport is the measured outcome of simulating one training step.
type StepReport struct {
	System   System
	Model    model.Config
	Topology *hw.Topology

	// StepTime is the simulated step duration; meaningless when OOM.
	StepTime float64
	// OOM reports the schedule did not fit in GPU memory.
	OOM bool
	// TrafficBytes is the total data moved during the step (Figure 6).
	TrafficBytes float64
	// BandwidthCDF is the byte-weighted achieved-bandwidth distribution
	// over all transfers (Figures 2, 7, 11).
	BandwidthCDF trace.CDF
	// HostLinkCDF restricts the CDF to GPU<->DRAM transfers (Figure 16).
	HostLinkCDF trace.CDF
	// NonOverlapFraction is the share of step time spent on
	// communication not hidden by compute, averaged over GPUs (Figure 8).
	NonOverlapFraction float64
	// Plan holds the Mobius plan when System == SystemMobius.
	Plan *Plan
	// Recorder exposes the raw trace.
	Recorder *trace.Recorder
	// Server exposes the simulated hardware (resource utilization,
	// memory peaks) after the run.
	Server *hw.Server
	// FaultInjection records the applied fault scenario and the retry
	// traffic it induced; nil for nominal runs.
	FaultInjection *fault.Injection
	// OOMCause describes the structured OOM event when OOM is true and
	// the failure surfaced during simulation (fault-injected memory
	// pressure) rather than in the pre-run memory check.
	OOMCause string
	// ResourceLost is set when a scheduled permanent failure halted the
	// step mid-flight; StepTime then holds the elapsed time up to
	// detection. The elastic package turns this into a recovery.
	ResourceLost *sim.ResourceLostError
	// Corruption is set when a transfer exhausted its retransmit budget
	// under end-to-end checksums; StepTime holds the elapsed time up to
	// the failed delivery.
	Corruption *sim.CorruptionError
	// Integrity aggregates checksum costs, retransmits and silent
	// corruption exposure for the step.
	Integrity sim.IntegrityStats
}

// Run plans (when needed) and simulates one training step of the given
// system.
func Run(system System, opts Options) (*StepReport, error) {
	return RunCtx(context.Background(), system, opts)
}

// RunCtx is Run honoring a context for the planning phase: a deadline
// that expires mid-planning degrades the Mobius plan to the greedy
// fallback (see PlanMobiusCtx) instead of failing the run.
func RunCtx(ctx context.Context, system System, opts Options) (*StepReport, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	report := &StepReport{System: system, Model: opts.Model, Topology: opts.Topology}

	if !opts.Faults.Empty() && system != SystemMobius && system != SystemGPipe {
		return nil, fmt.Errorf("core: fault injection is only supported for %s and %s (got %s)", SystemMobius, SystemGPipe, system)
	}
	if opts.Checksums.Enabled && system != SystemMobius && system != SystemGPipe {
		return nil, fmt.Errorf("core: end-to-end checksums are only supported for %s and %s (got %s)", SystemMobius, SystemGPipe, system)
	}

	// Heterogeneous-memory systems keep the full model states in DRAM;
	// the paper assumes pretrained models fit there (§3.1).
	if states := opts.Model.ModelStatesBytes(); states > opts.Topology.DRAMBytes {
		return nil, fmt.Errorf("core: model states (%.0f GB) exceed DRAM capacity (%.0f GB)",
			states/1e9, opts.Topology.DRAMBytes/1e9)
	}

	var res *pipeline.Result
	switch system {
	case SystemMobius:
		plan, err := planMobius(ctx, opts)
		if err != nil {
			return nil, err
		}
		report.Plan = plan
		res, err = pipeline.RunMobius(opts.Topology, pipeline.MobiusConfig{
			Partition:               plan.Partition,
			Mapping:                 plan.Mapping,
			Microbatches:            opts.Microbatches,
			DisablePrefetchPriority: opts.DisablePrefetchPriority,
			DisablePrefetch:         opts.DisablePrefetch,
			Faults:                  opts.Faults,
			Checkpoint:              opts.Checkpoint,
			Checksums:               opts.Checksums,
		})
		if err != nil {
			return nil, err
		}
	case SystemGPipe:
		prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
		if err != nil {
			return nil, err
		}
		res, err = pipeline.RunGPipe(opts.Topology, pipeline.GPipeConfig{Profile: prof, Microbatches: opts.Microbatches, Faults: opts.Faults, Checksums: opts.Checksums})
		if err != nil {
			return nil, err
		}
	case SystemDSPipeline:
		prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
		if err != nil {
			return nil, err
		}
		res, err = zero.RunPipelineMode(opts.Topology, prof, opts.Microbatches)
		if err != nil {
			return nil, err
		}
	case SystemDSHetero:
		prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
		if err != nil {
			return nil, err
		}
		res, err = zero.Run(opts.Topology, zero.Config{Profile: prof})
		if err != nil {
			return nil, err
		}
	case SystemZeROOffload:
		prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
		if err != nil {
			return nil, err
		}
		res, err = zero.RunOffload(opts.Topology, zero.Config{Profile: prof})
		if err != nil {
			return nil, err
		}
	case SystemZeRONVMe:
		prof, err := profile.Run(opts.Model, opts.Topology.GPUs[0].Spec, opts.ProfileOptions)
		if err != nil {
			return nil, err
		}
		topo := opts.Topology
		if !topo.HasSSD() {
			// Attach the default commodity NVMe tier; ZeRO-Infinity's
			// defining trait is offloading to it.
			clone := *topo
			topo = (&clone).WithSSD(hw.CommoditySSDBW, hw.CommoditySSDBytes)
		}
		res, err = zero.RunInfinityNVMe(topo, zero.Config{Profile: prof})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown system %q", system)
	}

	fillReport(report, res, opts.Topology)
	return report, nil
}

// fillReport copies a pipeline result into a step report and derives the
// trace-based aggregates (traffic, bandwidth CDFs, overlap fraction).
func fillReport(report *StepReport, res *pipeline.Result, topo *hw.Topology) {
	report.StepTime = res.StepTime
	report.OOM = res.OOM
	report.OOMCause = res.OOMCause
	report.ResourceLost = res.Lost
	report.Corruption = res.Corruption
	report.Integrity = res.Integrity
	report.Recorder = res.Recorder
	report.Server = res.Server
	report.FaultInjection = res.Faults
	if !res.OOM && res.Recorder != nil {
		report.TrafficBytes = res.Recorder.TotalBytes(nil)
		report.BandwidthCDF = res.Recorder.BandwidthCDF(nil)
		report.HostLinkCDF = res.Recorder.BandwidthCDF(func(tag trace.Tag) bool { return tag.PeerGPU < 0 })
		report.NonOverlapFraction = res.Recorder.NonOverlappedCommFraction(topo.NumGPUs(), res.StepTime)
	}
}

func (r *StepReport) String() string {
	if r.OOM {
		return fmt.Sprintf("%-22s %-4s %-10s OOM", r.System, r.Model.Name, r.Topology.Name)
	}
	return fmt.Sprintf("%-22s %-4s %-10s %8.2fs/step  %7.1f GB moved  %4.0f%% comm exposed",
		r.System, r.Model.Name, r.Topology.Name, r.StepTime, r.TrafficBytes/1e9, r.NonOverlapFraction*100)
}
