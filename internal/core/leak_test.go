package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
)

// TestPlanCancellationLeaksNoGoroutines audits PlanMobiusCtx's worker
// shutdown: planning with contexts that are cancelled before, during and
// after the MIP sweep must leave no worker or feeder goroutines behind.
// The sweep joins its pool on every exit path (including the patience
// break and the all-or-nothing cancellation return), so the goroutine
// count must return to its pre-planning baseline.
func TestPlanCancellationLeaksNoGoroutines(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	// Warm the profiler/caches once so the baseline is not polluted by
	// lazily started runtime helpers.
	if _, err := PlanMobius(Options{Model: model.GPT8B, Topology: topo}); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	baseline := runtime.NumGoroutine()

	run := func(ctx context.Context, m model.Config, par int) {
		opts := Options{
			Model:    m,
			Topology: topo,
			// Uncached so every iteration re-runs the pool; a small node
			// budget keeps the unbounded solves short — the test is about
			// shutdown, not solution quality.
			MIP:         partition.MIPOptions{DisableCache: true, NodeLimit: 25, MaxStages: 12},
			Parallelism: par,
		}
		plan, err := PlanMobiusCtx(ctx, opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if err := plan.Validate(topo); err != nil {
			t.Fatalf("parallelism %d: invalid plan: %v", par, err)
		}
	}

	for _, par := range []int{1, 4, 8} {
		// Already-cancelled context: degrades to greedy before the pool
		// even starts.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		run(ctx, model.GPT15B, par)

		// Deadline that expires mid-sweep: workers must be joined before
		// the degraded plan is returned.
		ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
		run(ctx2, model.GPT15B, par)
		cancel2()

		// Unbounded run: the patience break cancels in-flight candidates;
		// they too must be joined.
		run(context.Background(), model.GPT8B, par)
	}

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("planning leaked goroutines: %d running, baseline %d\n%s", g, baseline, buf[:n])
	}
}
