package core

import (
	"bytes"
	"testing"

	"mobius/internal/model"
	"mobius/internal/partition"
)

// TestPlanDeterministicAcrossParallelism verifies the tentpole invariant
// of the parallel planning pipeline: the plan — down to its serialized
// bytes — is identical whether the MIP sweep and cross-mapping search
// run serially or across 8 workers. The MIP cache is disabled so the
// parallel run cannot trivially reuse the serial run's result; the only
// field excluded is the wall-clock SolveTime, which no scheduler can
// make reproducible.
func TestPlanDeterministicAcrossParallelism(t *testing.T) {
	for _, m := range []model.Config{model.GPT8B, model.GPT15B} {
		baseline := map[int][]byte{}
		for _, par := range []int{1, 8} {
			opts := Options{
				Model:       m,
				Topology:    topo22(),
				MIP:         partition.MIPOptions{DisableCache: true, MaxStages: 12},
				Parallelism: par,
			}
			plan, err := PlanMobius(opts)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", m.Name, par, err)
			}
			plan.MIPStats.SolveTime = 0 // wall-clock, never reproducible
			data, err := MarshalPlan(plan, opts)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", m.Name, par, err)
			}
			baseline[par] = data
		}
		if !bytes.Equal(baseline[1], baseline[8]) {
			t.Errorf("%s: serialized plan differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				m.Name, baseline[1], baseline[8])
		}
	}
}

// TestRunDeterministicAcrossParallelism checks that the simulated step
// time downstream of the plan is bit-identical at both parallelism
// levels too: an undetected plan divergence would surface here even if
// serialization masked it.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	times := map[int]float64{}
	for _, par := range []int{1, 8} {
		r, err := Run(SystemMobius, Options{
			Model:       model.GPT15B,
			Topology:    topo22(),
			MIP:         partition.MIPOptions{DisableCache: true, MaxStages: 8},
			Parallelism: par,
		})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		times[par] = r.StepTime
	}
	if times[1] != times[8] {
		t.Errorf("step time differs: serial %v vs parallel %v", times[1], times[8])
	}
}
