package core

import (
	"context"
	"fmt"

	"mobius/internal/fault"
	"mobius/internal/pipeline"
	"mobius/internal/sim"
)

// MobiusSession plans and builds one Mobius step, then executes it
// repeatedly under varying fault and checksum configurations — the
// experiment-grid shape. Profiling, the partition search, the mapping
// search and the topology/DAG construction are paid once at session
// creation; each Run replays the built schedule through sim.Reset, so a
// sweep over fault scenarios costs one construction plus one simulation
// per cell.
type MobiusSession struct {
	opts Options
	plan *Plan
	step *pipeline.MobiusStep
}

// NewMobiusSession plans the model on the topology and builds the step.
// The Faults and Checksums fields of opts are ignored — they vary per
// Run. Options that shape the plan or the DAG (partition algorithm,
// microbatches, prefetch knobs, checkpoint clause) are fixed for the
// session's lifetime.
func NewMobiusSession(opts Options) (*MobiusSession, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	opts.Faults = nil
	opts.Checksums = sim.ChecksumConfig{}
	if states := opts.Model.ModelStatesBytes(); states > opts.Topology.DRAMBytes {
		return nil, fmt.Errorf("core: model states (%.0f GB) exceed DRAM capacity (%.0f GB)",
			states/1e9, opts.Topology.DRAMBytes/1e9)
	}
	plan, err := planMobius(context.Background(), opts)
	if err != nil {
		return nil, err
	}
	step, err := pipeline.BuildMobius(opts.Topology, pipeline.MobiusConfig{
		Partition:               plan.Partition,
		Mapping:                 plan.Mapping,
		Microbatches:            opts.Microbatches,
		DisablePrefetchPriority: opts.DisablePrefetchPriority,
		DisablePrefetch:         opts.DisablePrefetch,
		Checkpoint:              opts.Checkpoint,
	})
	if err != nil {
		return nil, err
	}
	return &MobiusSession{opts: opts, plan: plan, step: step}, nil
}

// Plan returns the session's Mobius execution plan.
func (ms *MobiusSession) Plan() *Plan { return ms.plan }

// Run executes the built step under the given fault spec and checksum
// configuration. A nil spec with zero checksums replays the nominal
// schedule. Reports from earlier Runs keep their scalar fields and
// derived aggregates, but share the session's recorder and server —
// read raw trace data from a report before the next Run.
func (ms *MobiusSession) Run(faults *fault.Spec, checksums sim.ChecksumConfig) (*StepReport, error) {
	report := &StepReport{System: SystemMobius, Model: ms.opts.Model, Topology: ms.opts.Topology, Plan: ms.plan}
	res, err := ms.step.Run(faults, checksums)
	if err != nil {
		return nil, err
	}
	fillReport(report, res, ms.opts.Topology)
	return report, nil
}
