package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
)

// TestCancelledPlanFallbackDeterministicAcrossParallelism plans with an
// already-cancelled context at parallelism 1 and 8: both must degrade to
// the greedy fallback and serialize to byte-identical plans — the
// fallback is a pure function of the profile, untouched by how many
// workers the doomed solve briefly employed.
func TestCancelledPlanFallbackDeterministicAcrossParallelism(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []model.Config{model.GPT8B, model.GPT15B} {
		baseline := map[int][]byte{}
		for _, par := range []int{1, 8} {
			opts := Options{
				Model:       m,
				Topology:    topo22(),
				MIP:         partition.MIPOptions{DisableCache: true},
				Parallelism: par,
			}
			plan, err := PlanMobiusCtx(ctx, opts)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", m.Name, par, err)
			}
			if !plan.Fallback {
				t.Fatalf("%s parallelism %d: cancelled plan did not fall back", m.Name, par)
			}
			if plan.FallbackReason == "" {
				t.Fatalf("%s parallelism %d: fallback without a reason", m.Name, par)
			}
			if err := plan.Validate(opts.Topology); err != nil {
				t.Fatalf("%s parallelism %d: fallback plan invalid: %v", m.Name, par, err)
			}
			data, err := MarshalPlan(plan, opts)
			if err != nil {
				t.Fatal(err)
			}
			baseline[par] = data
		}
		if !bytes.Equal(baseline[1], baseline[8]) {
			t.Errorf("%s: fallback plan differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				m.Name, baseline[1], baseline[8])
		}
	}
}

// TestGenerousDeadlineReproducesSeedPlan checks that a deadline with
// plenty of headroom changes nothing: the deadline-bearing plan is
// byte-identical to the unbounded one and never marked as a fallback.
func TestGenerousDeadlineReproducesSeedPlan(t *testing.T) {
	opts := Options{
		Model:    model.GPT8B,
		Topology: topo22(),
		MIP:      partition.MIPOptions{DisableCache: true, MaxStages: 12},
	}
	seed, err := PlanMobius(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	bounded, err := PlanMobiusCtx(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Fallback {
		t.Fatalf("generous deadline triggered the fallback: %s", bounded.FallbackReason)
	}
	seed.MIPStats.SolveTime = 0
	bounded.MIPStats.SolveTime = 0
	a, err := MarshalPlan(seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalPlan(bounded, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("deadline-bearing plan differs from the seed plan:\n--- seed ---\n%s\n--- bounded ---\n%s", a, b)
	}
}

// TestTightDeadline51BFallsBackToValidPlan is the planner-deadline
// acceptance check: a 1ms deadline on the 51B model must yield a valid
// fallback plan (Validate passes) instead of an error.
func TestTightDeadline51BFallsBackToValidPlan(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 4, 4)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	opts := Options{
		Model:    model.GPT51B,
		Topology: topo,
		MIP:      partition.MIPOptions{DisableCache: true},
	}
	plan, err := PlanMobiusCtx(ctx, opts)
	if err != nil {
		t.Fatalf("tight deadline must degrade, not fail: %v", err)
	}
	if !plan.Fallback {
		t.Skip("solver beat the 1ms deadline; nothing to degrade")
	}
	if err := plan.Validate(topo); err != nil {
		t.Fatalf("fallback plan failed validation: %v", err)
	}
	if plan.Partition.Algorithm != partition.AlgoGreedy {
		t.Errorf("fallback algorithm: got %q, want %q", plan.Partition.Algorithm, partition.AlgoGreedy)
	}
	if plan.PredictedStep <= 0 {
		t.Errorf("fallback plan has no predicted step time")
	}
}

// TestRunWithExpiredContextStillSimulates checks the end-to-end path: an
// expired planning context degrades the plan but the simulation itself
// still runs to completion and reports a step time.
func TestRunWithExpiredContextStillSimulates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := RunCtx(ctx, SystemMobius, Options{
		Model:    model.GPT8B,
		Topology: topo22(),
		MIP:      partition.MIPOptions{DisableCache: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan == nil || !r.Plan.Fallback {
		t.Fatal("expired context did not produce a fallback plan")
	}
	if r.OOM || r.StepTime <= 0 {
		t.Fatalf("fallback run did not simulate: oom=%v step=%v", r.OOM, r.StepTime)
	}
}
