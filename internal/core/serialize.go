package core

import (
	"encoding/json"
	"fmt"
)

// PlanSummary is the JSON-serializable form of a Mobius execution plan,
// for handing a computed partition + mapping to external tooling (the
// real system would feed this to its runtime).
type PlanSummary struct {
	Model         string         `json:"model"`
	Topology      string         `json:"topology"`
	NumGPUs       int            `json:"num_gpus"`
	Microbatches  int            `json:"microbatches"`
	Algorithm     string         `json:"partition_algorithm"`
	MappingScheme string         `json:"mapping_scheme"`
	MappingPerm   []int          `json:"mapping_perm"`
	PredictedStep float64        `json:"predicted_step_seconds"`
	Stages        []StageSummary `json:"stages"`
	MIP           *MIPSummary    `json:"mip,omitempty"`
}

// StageSummary is one pipeline stage of a serialized plan.
type StageSummary struct {
	Index      int     `json:"index"`
	GPU        int     `json:"gpu"`
	FirstLayer int     `json:"first_layer"`
	LastLayer  int     `json:"last_layer"`
	ParamBytes float64 `json:"param_bytes"`
	FwdSeconds float64 `json:"fwd_seconds"`
	BwdSeconds float64 `json:"bwd_seconds"`
}

// MIPSummary records the solver effort of a serialized plan.
type MIPSummary struct {
	TriedStageCounts []int   `json:"tried_stage_counts"`
	Nodes            int     `json:"nodes"`
	SolveSeconds     float64 `json:"solve_seconds"`
	BestStageCount   int     `json:"best_stage_count"`
}

// Summarize converts a plan into its serializable summary.
func (p *Plan) Summarize(opts Options) (*PlanSummary, error) {
	if p.Partition == nil || p.Mapping == nil {
		return nil, fmt.Errorf("core: incomplete plan")
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	out := &PlanSummary{
		Model:         opts.Model.Name,
		Topology:      opts.Topology.Name,
		NumGPUs:       opts.Topology.NumGPUs(),
		Microbatches:  opts.Microbatches,
		Algorithm:     p.Partition.Algorithm,
		MappingScheme: p.Mapping.Scheme,
		MappingPerm:   append([]int(nil), p.Mapping.Perm...),
		PredictedStep: p.PredictedStep,
	}
	for j, s := range p.Partition.Stages {
		out.Stages = append(out.Stages, StageSummary{
			Index:      j,
			GPU:        p.Mapping.GPUOf(j),
			FirstLayer: s.First,
			LastLayer:  s.Last,
			ParamBytes: s.ParamBytes,
			FwdSeconds: s.FwdTime,
			BwdSeconds: s.BwdTime,
		})
	}
	if p.MIPStats != nil {
		out.MIP = &MIPSummary{
			TriedStageCounts: append([]int(nil), p.MIPStats.TriedStageCounts...),
			Nodes:            p.MIPStats.Nodes,
			SolveSeconds:     p.MIPStats.SolveTime.Seconds(),
			BestStageCount:   p.MIPStats.BestStageCount,
		}
	}
	return out, nil
}

// MarshalPlan renders the plan summary as indented JSON.
func MarshalPlan(p *Plan, opts Options) ([]byte, error) {
	sum, err := p.Summarize(opts)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(sum, "", "  ")
}

// UnmarshalPlan parses a serialized plan summary.
func UnmarshalPlan(data []byte) (*PlanSummary, error) {
	var out PlanSummary
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("core: bad plan JSON: %w", err)
	}
	if len(out.Stages) == 0 {
		return nil, fmt.Errorf("core: plan JSON has no stages")
	}
	return &out, nil
}
