package core

import (
	"math"
	"testing"

	"mobius/internal/hw"
	"mobius/internal/mapping"
	"mobius/internal/model"
	"mobius/internal/partition"
)

func topo22() *hw.Topology { return hw.Commodity(hw.RTX3090Ti, 2, 2) }

func fastMIP() partition.MIPOptions {
	// Keep test-time MIP sweeps small; benches use the defaults.
	return partition.MIPOptions{MaxStages: 8}
}

func TestPlanMobiusProducesCompletePlan(t *testing.T) {
	plan, err := PlanMobius(Options{Model: model.GPT15B, Topology: topo22(), MIP: fastMIP()})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Partition == nil || plan.Mapping == nil || plan.Profile == nil {
		t.Fatal("incomplete plan")
	}
	if plan.MIPStats == nil {
		t.Fatal("MIP stats missing")
	}
	if plan.PredictedStep <= 0 {
		t.Fatal("no predicted step time")
	}
	if plan.Mapping.Scheme != mapping.SchemeCross {
		t.Fatalf("default mapping scheme %q", plan.Mapping.Scheme)
	}
}

func TestRunAllSystems15B(t *testing.T) {
	// The headline sanity: on a commodity topology, Mobius trains 15B
	// while GPipe/DS-pipeline OOM, and beats DeepSpeed-hetero by a wide
	// margin (Figure 5 reports 3.8-5.1x).
	reports := map[System]*StepReport{}
	for _, sys := range Systems() {
		r, err := Run(sys, Options{Model: model.GPT15B, Topology: topo22(), MIP: fastMIP()})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		reports[sys] = r
	}
	if !reports[SystemGPipe].OOM || !reports[SystemDSPipeline].OOM {
		t.Error("GPipe and DeepSpeed-pipeline must OOM on 15B")
	}
	if reports[SystemMobius].OOM || reports[SystemDSHetero].OOM {
		t.Fatal("heterogeneous-memory systems must not OOM")
	}
	speedup := reports[SystemDSHetero].StepTime / reports[SystemMobius].StepTime
	if speedup < 2 {
		t.Errorf("Mobius speedup over DeepSpeed-hetero %.2fx, want >= 2x", speedup)
	}
	t.Logf("Mobius speedup over DeepSpeed (hetero): %.2fx", speedup)
}

func TestMobiusTrafficMuchLowerThanDeepSpeed(t *testing.T) {
	mob, err := Run(SystemMobius, Options{Model: model.GPT8B, Topology: topo22(), MIP: fastMIP()})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Run(SystemDSHetero, Options{Model: model.GPT8B, Topology: topo22()})
	if err != nil {
		t.Fatal(err)
	}
	ratio := ds.TrafficBytes / mob.TrafficBytes
	if ratio < 3 {
		t.Errorf("DeepSpeed/Mobius traffic ratio %.2f, want ~N (=4)", ratio)
	}
}

func TestMobiusStablePerformanceAcrossTopologies(t *testing.T) {
	// Figure 5 observation 4: Mobius' step time is almost topology-
	// independent thanks to cross mapping; DeepSpeed degrades with more
	// sharing.
	topos := []*hw.Topology{
		hw.Commodity(hw.RTX3090Ti, 2, 2),
		hw.Commodity(hw.RTX3090Ti, 1, 3),
		hw.Commodity(hw.RTX3090Ti, 4),
	}
	var mob []float64
	for _, tp := range topos {
		r, err := Run(SystemMobius, Options{Model: model.GPT15B, Topology: tp, MIP: fastMIP()})
		if err != nil {
			t.Fatal(err)
		}
		mob = append(mob, r.StepTime)
	}
	lo, hi := mob[0], mob[0]
	for _, v := range mob {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi/lo > 1.5 {
		t.Errorf("Mobius step time varies %.2fx across topologies (%v), want stable", hi/lo, mob)
	}
}

func TestNonOverlapLowerForMobius(t *testing.T) {
	// Figure 8: Mobius hides more communication under compute than
	// DeepSpeed.
	mob, err := Run(SystemMobius, Options{Model: model.GPT15B, Topology: topo22(), MIP: fastMIP()})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Run(SystemDSHetero, Options{Model: model.GPT15B, Topology: topo22()})
	if err != nil {
		t.Fatal(err)
	}
	if mob.NonOverlapFraction >= ds.NonOverlapFraction {
		t.Errorf("Mobius non-overlap %.2f must be below DeepSpeed %.2f",
			mob.NonOverlapFraction, ds.NonOverlapFraction)
	}
}

func TestDeepSpeedWinsOnDataCenterServer(t *testing.T) {
	// Figure 15a observation 3: with NVLink + P2P, DeepSpeed beats
	// Mobius because it exploits the full all-to-all fabric.
	dc := hw.DataCenter(hw.V100, 4, 300*hw.GB)
	mob, err := Run(SystemMobius, Options{Model: model.GPT8B.WithMicrobatch(2), Topology: dc, MIP: fastMIP()})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Run(SystemDSHetero, Options{Model: model.GPT8B.WithMicrobatch(2), Topology: dc})
	if err != nil {
		t.Fatal(err)
	}
	if mob.OOM || ds.OOM {
		t.Fatal("unexpected OOM on DC server")
	}
	if ds.StepTime >= mob.StepTime {
		t.Errorf("DeepSpeed (%.2fs) must beat Mobius (%.2fs) on the NVLink server", ds.StepTime, mob.StepTime)
	}
}

func TestPriceModel(t *testing.T) {
	commodity := topo22()
	dc := hw.DataCenter(hw.V100, 4, 300*hw.GB)
	if HourlyPrice(dc) <= HourlyPrice(commodity) {
		t.Fatal("data center rental must cost more per hour")
	}
	if p := PricePerStep(commodity, 3600); math.Abs(p-HourlyPrice(commodity)) > 1e-9 {
		t.Fatalf("one hour step must cost the hourly price, got %g", p)
	}
	// Figure 15b: commodity Mobius can be slower yet cheaper per step
	// than DC DeepSpeed when the slowdown is below the price gap.
	tMobC, tDSDC := 10.0, 7.0 // 42% slower
	if PricePerStep(commodity, tMobC) >= PricePerStep(dc, tDSDC) {
		t.Error("commodity training must be cheaper per step at a 1.4x slowdown")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(SystemMobius, Options{Model: model.GPT8B}); err == nil {
		t.Fatal("missing topology must error")
	}
	if _, err := Run(System("nope"), Options{Model: model.GPT8B, Topology: topo22()}); err == nil {
		t.Fatal("unknown system must error")
	}
	bad := model.GPT8B
	bad.Layers = 0
	if _, err := Run(SystemMobius, Options{Model: bad, Topology: topo22()}); err == nil {
		t.Fatal("invalid model must error")
	}
	if _, err := PlanMobius(Options{Model: model.GPT8B, Topology: topo22(), PartitionAlgo: "bogus"}); err == nil {
		t.Fatal("unknown partition algorithm must error")
	}
	if _, err := PlanMobius(Options{Model: model.GPT8B, Topology: topo22(), MappingScheme: "bogus", MIP: fastMIP()}); err == nil {
		t.Fatal("unknown mapping scheme must error")
	}
}

func TestPartitionAblationOrdering(t *testing.T) {
	// Figure 9: the MIP partition is never slower than max-stage or
	// min-stage under the same everything-else.
	base := Options{Model: model.GPT8B, Topology: topo22(), MIP: fastMIP()}
	run := func(algo string) float64 {
		o := base
		o.PartitionAlgo = algo
		r, err := Run(SystemMobius, o)
		if err != nil {
			t.Fatal(err)
		}
		if r.OOM {
			t.Fatalf("%s: OOM", algo)
		}
		return r.StepTime
	}
	mip := run(partition.AlgoMIP)
	maxS := run(partition.AlgoMaxStage)
	minS := run(partition.AlgoMinStage)
	if mip > maxS*1.02 || mip > minS*1.02 {
		t.Errorf("MIP %.3fs must beat max-stage %.3fs and min-stage %.3fs", mip, maxS, minS)
	}
	t.Logf("MIP %.3fs, max-stage %.3fs, min-stage %.3fs", mip, maxS, minS)
}

func TestPlanSerializationRoundTrip(t *testing.T) {
	opts := Options{Model: model.GPT8B, Topology: topo22(), MIP: fastMIP()}
	plan, err := PlanMobius(opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalPlan(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Model != "8B" || sum.NumGPUs != 4 {
		t.Fatalf("summary: %+v", sum)
	}
	if len(sum.Stages) != plan.Partition.NumStages() {
		t.Fatalf("stages: %d vs %d", len(sum.Stages), plan.Partition.NumStages())
	}
	if sum.MIP == nil || sum.MIP.BestStageCount == 0 {
		t.Fatal("missing MIP summary")
	}
	// Stage ranges must tile the model.
	next := 0
	for _, s := range sum.Stages {
		if s.FirstLayer != next {
			t.Fatalf("stage %d starts at %d, want %d", s.Index, s.FirstLayer, next)
		}
		next = s.LastLayer + 1
	}
	if next != plan.Profile.NumLayers() {
		t.Fatalf("stages cover %d layers", next)
	}
}

func TestUnmarshalPlanRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPlan([]byte("{")); err == nil {
		t.Fatal("bad JSON must fail")
	}
	if _, err := UnmarshalPlan([]byte(`{"model":"x"}`)); err == nil {
		t.Fatal("stage-less plan must fail")
	}
}
