package advisor

import (
	"testing"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/model"
)

func TestAdviseRanksAndFiltersOOM(t *testing.T) {
	options := []*hw.Topology{
		hw.Commodity(hw.RTX3090Ti, 2, 2),
		hw.DataCenter(hw.V100, 4, 300*hw.GB),
	}
	recs, err := Advise(model.GPT15B, options)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recommendations: %d", len(recs))
	}
	for _, r := range recs {
		if r.OOM {
			t.Fatalf("%s: both options must train 15B", r.Topology.Name)
		}
		if r.StepTime <= 0 || r.PricePerStep <= 0 || r.SamplesPerDollar <= 0 {
			t.Fatalf("bad recommendation: %+v", r)
		}
		if r.String() == "" {
			t.Fatal("empty render")
		}
	}
	// Ranked by samples per dollar, descending.
	if recs[0].SamplesPerDollar < recs[1].SamplesPerDollar {
		t.Fatalf("ranking broken: %v", recs)
	}
	// On commodity, Mobius must be the chosen system; on the NVLink
	// server, DeepSpeed.
	for _, r := range recs {
		if r.Topology.HasP2P() && r.System != core.SystemDSHetero {
			t.Errorf("DC option should pick DeepSpeed, got %s", r.System)
		}
		if !r.Topology.HasP2P() && r.System != core.SystemMobius {
			t.Errorf("commodity option should pick Mobius, got %s", r.System)
		}
	}
}

func TestFastestSkipsOOM(t *testing.T) {
	recs := []Recommendation{
		{OOM: true},
		{StepTime: 5},
		{StepTime: 3},
	}
	f := Fastest(recs)
	if f == nil || f.StepTime != 3 {
		t.Fatalf("fastest: %+v", f)
	}
	if Fastest([]Recommendation{{OOM: true}}) != nil {
		t.Fatal("all-OOM must return nil")
	}
}

func TestAdviseDefaultMenu(t *testing.T) {
	if len(DefaultOptions()) < 4 {
		t.Fatal("menu too small")
	}
}
