// Package advisor answers the practitioner question the paper's
// introduction opens with: given a model to fine-tune and a set of
// hardware options (commodity servers of various shapes, a data-center
// instance), which one finishes the job fastest — and which one is
// cheapest? It simulates the best system per option (Mobius on
// commodity, the better of Mobius/DeepSpeed elsewhere) and ranks the
// results.
package advisor

import (
	"fmt"
	"sort"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/model"
)

// Recommendation is one evaluated hardware option.
type Recommendation struct {
	// Topology is the evaluated server.
	Topology *hw.Topology
	// System is the fastest feasible training system on it.
	System core.System
	// StepTime is the simulated seconds per training step.
	StepTime float64
	// PricePerStep is dollars per step at the rental price model.
	PricePerStep float64
	// SamplesPerDollar is throughput per dollar, the ranking key.
	SamplesPerDollar float64
	// OOM marks options that cannot train the model at all.
	OOM bool
}

// Label names the option unambiguously (topology plus GPU model).
func (r Recommendation) Label() string {
	return fmt.Sprintf("%s %s", r.Topology.Name, r.Topology.GPUs[0].Spec.Name)
}

func (r Recommendation) String() string {
	if r.OOM {
		return fmt.Sprintf("%-28s cannot train the model (OOM)", r.Label())
	}
	return fmt.Sprintf("%-28s %-20s %7.2fs/step  $%.5f/step  %6.1f samples/$",
		r.Label(), r.System, r.StepTime, r.PricePerStep, r.SamplesPerDollar)
}

// DefaultOptions returns a representative hardware menu: the paper's
// commodity shapes, bigger commodity boxes, and the data-center
// instance.
func DefaultOptions() []*hw.Topology {
	return []*hw.Topology{
		hw.Commodity(hw.RTX3090Ti, 2, 2),
		hw.Commodity(hw.RTX3090Ti, 4),
		hw.Commodity(hw.RTX3090Ti, 4, 4),
		hw.Commodity(hw.A6000, 2, 2),
		hw.DataCenter(hw.V100, 4, 300*hw.GB),
	}
}

// systemsFor lists the candidate systems per topology: Mobius always;
// DeepSpeed-hetero as the alternative (it wins on NVLink fabrics).
func systemsFor() []core.System {
	return []core.System{core.SystemMobius, core.SystemDSHetero}
}

// Advise evaluates every option for the model and returns feasible
// recommendations sorted by samples-per-dollar (descending), followed by
// the infeasible ones.
func Advise(m model.Config, options []*hw.Topology) ([]Recommendation, error) {
	return AdviseWith(m, options, nil)
}

// AdviseWith is Advise with an explicit planner. Passing a
// plansvc.Service dedups the Mobius plan solves across the menu's
// repeated shapes and keeps them for later requests (the -serve mode of
// cmd/mobius-advisor); nil plans directly. A correct planner never
// changes the ranking, only how fast it is produced.
func AdviseWith(m model.Config, options []*hw.Topology, planner core.Planner) ([]Recommendation, error) {
	if len(options) == 0 {
		options = DefaultOptions()
	}
	var out []Recommendation
	for _, topo := range options {
		rec := Recommendation{Topology: topo, OOM: true}
		for _, sys := range systemsFor() {
			r, err := core.Run(sys, core.Options{Model: m, Topology: topo, Planner: planner})
			if err != nil {
				return nil, fmt.Errorf("advisor: %s on %s: %w", sys, topo.Name, err)
			}
			if r.OOM {
				continue
			}
			if rec.OOM || r.StepTime < rec.StepTime {
				rec.OOM = false
				rec.System = sys
				rec.StepTime = r.StepTime
			}
		}
		if !rec.OOM {
			rec.PricePerStep = core.PricePerStep(topo, rec.StepTime)
			samplesPerStep := float64(topo.NumGPUs() * m.MicrobatchSize) // M = N
			rec.SamplesPerDollar = samplesPerStep / rec.PricePerStep
		}
		out = append(out, rec)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].OOM != out[j].OOM {
			return !out[i].OOM
		}
		return out[i].SamplesPerDollar > out[j].SamplesPerDollar
	})
	return out, nil
}

// Fastest returns the feasible recommendation with the lowest step time,
// or nil when nothing can train the model.
func Fastest(recs []Recommendation) *Recommendation {
	var best *Recommendation
	for i := range recs {
		if recs[i].OOM {
			continue
		}
		if best == nil || recs[i].StepTime < best.StepTime {
			best = &recs[i]
		}
	}
	return best
}
