package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Sample is one weighted observation for a CDF.
type Sample struct {
	Value  float64
	Weight float64
}

// CDF is a weighted cumulative distribution over float64 values. For
// bandwidth CDFs the weight is the transferred byte count, matching the
// paper's "fraction of data transferred at bandwidth <= x" plots.
type CDF struct {
	values []float64
	cumul  []float64 // cumulative weight up to and including values[i]
	totalW float64
}

// NewCDF builds a CDF from samples; zero- or negative-weight samples are
// dropped.
func NewCDF(samples []Sample) CDF {
	kept := samples[:0:0]
	for _, s := range samples {
		if s.Weight > 0 {
			kept = append(kept, s)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Value < kept[j].Value })
	c := CDF{}
	for _, s := range kept {
		c.totalW += s.Weight
		c.values = append(c.values, s.Value)
		c.cumul = append(c.cumul, c.totalW)
	}
	return c
}

// Empty reports whether the CDF has no mass.
func (c CDF) Empty() bool { return c.totalW <= 0 }

// FractionAtOrBelow returns P[X <= x].
func (c CDF) FractionAtOrBelow(x float64) float64 {
	if c.Empty() {
		return 0
	}
	i := sort.SearchFloat64s(c.values, x)
	// Include equal values.
	for i < len(c.values) && c.values[i] <= x {
		i++
	}
	if i == 0 {
		return 0
	}
	return c.cumul[i-1] / c.totalW
}

// FractionAbove returns P[X > x].
func (c CDF) FractionAbove(x float64) float64 { return 1 - c.FractionAtOrBelow(x) }

// Quantile returns the smallest value v with P[X <= v] >= q.
func (c CDF) Quantile(q float64) float64 {
	if c.Empty() {
		return 0
	}
	target := q * c.totalW
	i := sort.SearchFloat64s(c.cumul, target)
	if i >= len(c.values) {
		i = len(c.values) - 1
	}
	return c.values[i]
}

// Median returns the 0.5 quantile.
func (c CDF) Median() float64 { return c.Quantile(0.5) }

// Max returns the largest observed value.
func (c CDF) Max() float64 {
	if c.Empty() {
		return 0
	}
	return c.values[len(c.values)-1]
}

// Points returns up to n evenly spaced (value, fraction) pairs for
// plotting.
func (c CDF) Points(n int) [][2]float64 {
	if c.Empty() || n <= 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i+1) / float64(n)
		v := c.Quantile(q)
		out = append(out, [2]float64{v, q})
	}
	return out
}

// Render draws an ASCII CDF over [0, xMax] with the given width, one row
// per quartile marker, for terminal reports.
func (c CDF) Render(xMax float64, width int) string {
	if c.Empty() || xMax <= 0 || width <= 0 {
		return "(no data)"
	}
	var b strings.Builder
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
		v := c.Quantile(q)
		pos := int(v / xMax * float64(width))
		if pos > width {
			pos = width
		}
		fmt.Fprintf(&b, "p%02.0f |%s%s| %6.2f\n", q*100, strings.Repeat("=", pos), strings.Repeat(" ", width-pos), v)
	}
	return b.String()
}
