package trace

import (
	"fmt"
	"strings"
)

// RenderGantt draws an ASCII timeline of the recorded step: two lanes
// per GPU (compute and communication), width characters wide. Compute is
// drawn with '#', forward/backward distinguished only by position; the
// communication lane shows 'U' for uploads from DRAM, 'D' for offload /
// flush, and '>' for GPU-to-GPU hops.
func (r *Recorder) RenderGantt(numGPUs int, stepTime float64, width int) string {
	if stepTime <= 0 || width <= 0 {
		return "(no timeline)"
	}
	pos := func(t float64) int {
		p := int(t / stepTime * float64(width))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	paint := func(lane []byte, a, b float64, ch byte) {
		for i := pos(a); i <= pos(b); i++ {
			if lane[i] == ' ' || ch == '#' {
				lane[i] = ch
			}
		}
	}

	var b strings.Builder
	for g := 0; g < numGPUs; g++ {
		comp := []byte(strings.Repeat(" ", width))
		comm := []byte(strings.Repeat(" ", width))
		for _, c := range r.Computes {
			if c.Tag.GPU == g {
				paint(comp, c.Start, c.End, '#')
			}
		}
		for _, f := range r.Flows {
			if !flowTouches(f.Tag, g) {
				continue
			}
			ch := byte('>')
			switch f.Tag.Kind {
			case KindParamUpload, KindActUpload:
				ch = 'U'
			case KindActOffload, KindGradFlush:
				ch = 'D'
			}
			paint(comm, f.Start, f.End, ch)
		}
		fmt.Fprintf(&b, "gpu%d compute |%s|\n", g, comp)
		fmt.Fprintf(&b, "     comm    |%s|\n", comm)
	}
	fmt.Fprintf(&b, "time: 0 .. %.3fs ('#' compute, 'U' upload, 'D' offload/flush, '>' GPU-GPU)\n", stepTime)
	return b.String()
}
