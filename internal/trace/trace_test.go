package trace

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mobius/internal/sim"
)

func TestRecorderCapturesTaggedTasks(t *testing.T) {
	s := sim.New()
	rec := NewRecorder()
	s.Observe(rec)
	e := s.NewEngine("gpu0")
	link := s.NewResource("link", 10e9)

	c := s.Compute("fwd", e, 1)
	c.Tag = Tag{Kind: KindCompute, GPU: 0, PeerGPU: -1}
	tr := s.Transfer("up", nil, sim.Path(link), 10e9, 0)
	tr.Tag = Tag{Kind: KindParamUpload, GPU: 0, PeerGPU: -1}
	s.Compute("untagged", e, 1, c)

	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Computes) != 1 {
		t.Fatalf("computes: %d", len(rec.Computes))
	}
	if len(rec.Flows) != 1 {
		t.Fatalf("flows: %d", len(rec.Flows))
	}
	if bw := rec.Flows[0].Bandwidth(); math.Abs(bw-10e9) > 1 {
		t.Fatalf("bandwidth %g", bw)
	}
}

func TestTotalBytesFilters(t *testing.T) {
	r := NewRecorder()
	r.Flows = []FlowRecord{
		{Tag: Tag{Kind: KindParamUpload}, Bytes: 100},
		{Tag: Tag{Kind: KindActTransfer}, Bytes: 30},
		{Tag: Tag{Kind: KindParamUpload}, Bytes: 50},
	}
	if got := r.TotalBytes(nil); got != 180 {
		t.Fatalf("total: %g", got)
	}
	got := r.TotalBytes(func(tag Tag) bool { return tag.Kind == KindParamUpload })
	if got != 150 {
		t.Fatalf("filtered: %g", got)
	}
}

func TestCDFQuantiles(t *testing.T) {
	c := NewCDF([]Sample{
		{Value: 1, Weight: 1},
		{Value: 2, Weight: 1},
		{Value: 3, Weight: 1},
		{Value: 4, Weight: 1},
	})
	if got := c.Median(); got != 2 {
		t.Fatalf("median %g", got)
	}
	if got := c.Quantile(1.0); got != 4 {
		t.Fatalf("q100 %g", got)
	}
	if got := c.FractionAtOrBelow(2.5); got != 0.5 {
		t.Fatalf("F(2.5)=%g", got)
	}
	if got := c.FractionAbove(3); got != 0.25 {
		t.Fatalf("P[>3]=%g", got)
	}
	if c.Max() != 4 {
		t.Fatalf("max %g", c.Max())
	}
}

func TestCDFWeighted(t *testing.T) {
	// 90% of bytes at 12 GB/s, 10% at 6 GB/s.
	c := NewCDF([]Sample{
		{Value: 6e9, Weight: 1e9},
		{Value: 12e9, Weight: 9e9},
	})
	if got := c.FractionAtOrBelow(6e9); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("F(6GB/s)=%g", got)
	}
	if got := c.Median(); got != 12e9 {
		t.Fatalf("median %g", got)
	}
}

func TestCDFEmptyAndRender(t *testing.T) {
	var c CDF
	if !c.Empty() || c.Median() != 0 || c.FractionAtOrBelow(1) != 0 {
		t.Fatal("empty CDF misbehaves")
	}
	if c.Render(10, 20) != "(no data)" {
		t.Fatal("empty render")
	}
	full := NewCDF([]Sample{{Value: 5, Weight: 1}})
	if full.Render(10, 20) == "" {
		t.Fatal("render empty string")
	}
	if pts := full.Points(4); len(pts) != 4 {
		t.Fatalf("points: %d", len(pts))
	}
}

func TestUnionLength(t *testing.T) {
	iv := []interval{{0, 2}, {1, 3}, {5, 6}}
	if got := unionLength(iv); got != 4 {
		t.Fatalf("union: %g", got)
	}
	if got := unionLength(nil); got != 0 {
		t.Fatalf("empty union: %g", got)
	}
}

func TestSubtractLength(t *testing.T) {
	a := []interval{{0, 10}}
	b := []interval{{2, 4}, {6, 7}}
	if got := subtractLength(a, b); got != 7 {
		t.Fatalf("subtract: %g", got)
	}
	if got := subtractLength(a, nil); got != 10 {
		t.Fatalf("subtract none: %g", got)
	}
	if got := subtractLength(nil, b); got != 0 {
		t.Fatalf("empty minus: %g", got)
	}
	// B fully covers A.
	if got := subtractLength([]interval{{1, 2}}, []interval{{0, 5}}); got != 0 {
		t.Fatalf("covered: %g", got)
	}
}

// TestSubtractLengthProperty cross-checks the sweep implementation
// against a discretized measure on random interval sets.
func TestSubtractLengthProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := func(n int) []interval {
			out := make([]interval, n)
			for i := range out {
				a := float64(r.Intn(50))
				out[i] = interval{a, a + float64(1+r.Intn(10))}
			}
			return out
		}
		a := gen(1 + r.Intn(5))
		b := gen(r.Intn(5))
		got := subtractLength(append([]interval(nil), a...), append([]interval(nil), b...))
		// Discretized ground truth on a fine grid.
		const step = 0.5
		var want float64
		for x := 0.0; x < 70; x += step {
			mid := x + step/2
			inA, inB := false, false
			for _, iv := range a {
				if mid >= iv.a && mid < iv.b {
					inA = true
				}
			}
			for _, iv := range b {
				if mid >= iv.a && mid < iv.b {
					inB = true
				}
			}
			if inA && !inB {
				want += step
			}
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNonOverlappedComm(t *testing.T) {
	r := NewRecorder()
	// GPU 0: compute [0,4], comm [2,6] -> non-overlap [4,6] = 2.
	r.Computes = []ComputeRecord{{Tag: Tag{GPU: 0}, Start: 0, End: 4}}
	r.Flows = []FlowRecord{{Tag: Tag{GPU: 0, PeerGPU: -1}, Start: 2, End: 6, Bytes: 1}}
	if got := r.NonOverlappedComm(0); got != 2 {
		t.Fatalf("non-overlap: %g", got)
	}
	// Peer GPU also sees the flow.
	r.Flows[0].Tag.PeerGPU = 1
	if got := r.NonOverlappedComm(1); got != 4 {
		t.Fatalf("peer non-overlap: %g", got)
	}
	frac := r.NonOverlappedCommFraction(2, 10)
	if math.Abs(frac-(2+4)/20.0) > 1e-12 {
		t.Fatalf("fraction: %g", frac)
	}
}

func TestComputeBusy(t *testing.T) {
	r := NewRecorder()
	r.Computes = []ComputeRecord{
		{Tag: Tag{GPU: 0}, Start: 0, End: 2},
		{Tag: Tag{GPU: 0}, Start: 1, End: 3},
		{Tag: Tag{GPU: 1}, Start: 0, End: 9},
	}
	if got := r.ComputeBusy(0); got != 3 {
		t.Fatalf("busy: %g", got)
	}
}

// TestCDFMonotone: F is non-decreasing on random data.
func TestCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		samples := make([]Sample, n)
		for i := range samples {
			samples[i] = Sample{Value: r.Float64() * 100, Weight: r.Float64() * 10}
		}
		c := NewCDF(samples)
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = r.Float64() * 120
		}
		sort.Float64s(xs)
		prev := -1.0
		for _, x := range xs {
			v := c.FractionAtOrBelow(x)
			if v < prev-1e-12 || v < 0 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Flows = []FlowRecord{
		{Tag: Tag{Kind: KindParamUpload, GPU: 0, PeerGPU: -1, Stage: 3, Microbatch: -1}, Start: 1, End: 2, Bytes: 1e9},
	}
	r.Computes = []ComputeRecord{
		{Tag: Tag{Kind: KindCompute, GPU: 0, PeerGPU: -1, Stage: 3, Microbatch: 0}, Start: 0.5, End: 0.9},
	}
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "event,kind,gpu") {
		t.Fatalf("header: %s", lines[0])
	}
	// Sorted by start: compute (0.5) before flow (1).
	if !strings.HasPrefix(lines[1], "compute,") || !strings.HasPrefix(lines[2], "flow,param-upload") {
		t.Fatalf("ordering:\n%s", out)
	}
	if !strings.Contains(lines[2], "1.000") {
		t.Fatalf("bandwidth column missing: %s", lines[2])
	}
}

func TestGanttRenders(t *testing.T) {
	r := NewRecorder()
	r.Computes = []ComputeRecord{{Tag: Tag{GPU: 0}, Start: 0, End: 1}}
	r.Flows = []FlowRecord{{Tag: Tag{Kind: KindParamUpload, GPU: 0, PeerGPU: -1}, Start: 0, End: 0.5, Bytes: 1}}
	out := r.RenderGantt(1, 1, 40)
	if !strings.Contains(out, "gpu0 compute") || !strings.Contains(out, "U") || !strings.Contains(out, "#") {
		t.Fatalf("gantt:\n%s", out)
	}
	if got := r.RenderGantt(1, 0, 40); got != "(no timeline)" {
		t.Fatalf("degenerate gantt: %q", got)
	}
}
