package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteCSV dumps the recorded events as CSV for external analysis
// (spreadsheets, pandas): one row per flow or compute, ordered by start
// time. Columns: kind, gpu, peer, stage, microbatch, start, end, bytes,
// bandwidth.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"event", "kind", "gpu", "peer", "stage", "microbatch", "start", "end", "bytes", "bandwidth_gbps"}); err != nil {
		return err
	}

	type row struct {
		start float64
		rec   []string
	}
	var rows []row
	for _, f := range r.Flows {
		rows = append(rows, row{f.Start, []string{
			"flow", f.Tag.Kind.String(),
			fmt.Sprintf("%d", f.Tag.GPU), fmt.Sprintf("%d", f.Tag.PeerGPU),
			fmt.Sprintf("%d", f.Tag.Stage), fmt.Sprintf("%d", f.Tag.Microbatch),
			fmt.Sprintf("%.6f", f.Start), fmt.Sprintf("%.6f", f.End),
			fmt.Sprintf("%.0f", f.Bytes), fmt.Sprintf("%.3f", f.Bandwidth()/1e9),
		}})
	}
	for _, c := range r.Computes {
		rows = append(rows, row{c.Start, []string{
			"compute", c.Tag.Kind.String(),
			fmt.Sprintf("%d", c.Tag.GPU), fmt.Sprintf("%d", c.Tag.PeerGPU),
			fmt.Sprintf("%d", c.Tag.Stage), fmt.Sprintf("%d", c.Tag.Microbatch),
			fmt.Sprintf("%.6f", c.Start), fmt.Sprintf("%.6f", c.End),
			"0", "0",
		}})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].start < rows[j].start })
	for _, rw := range rows {
		if err := cw.Write(rw.rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
