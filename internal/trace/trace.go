// Package trace collects execution metrics from simulator runs: per-flow
// achieved bandwidth (the CDFs of Figures 2, 7, 11 and 16), communication
// traffic accounting (Figure 6), and compute/communication overlap
// analysis (the non-overlapped communication time of Figure 8).
package trace

import (
	"sort"

	"mobius/internal/sim"
)

// Kind classifies a traced task for traffic accounting.
type Kind int

// Task kinds attached via Tag.
const (
	KindCompute     Kind = iota
	KindParamUpload      // DRAM -> GPU stage parameters
	KindActOffload       // GPU -> DRAM checkpointed activations
	KindActUpload        // DRAM -> GPU activations for backward
	KindActTransfer      // GPU -> GPU boundary activations / act gradients
	KindGradFlush        // GPU -> DRAM gradients
	KindCollective       // ZeRO all-gather / all-reduce traffic
	KindCheckpoint       // DRAM -> DRAM/SSD periodic state snapshot
)

func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindParamUpload:
		return "param-upload"
	case KindActOffload:
		return "act-offload"
	case KindActUpload:
		return "act-upload"
	case KindActTransfer:
		return "act-transfer"
	case KindGradFlush:
		return "grad-flush"
	case KindCollective:
		return "collective"
	case KindCheckpoint:
		return "checkpoint"
	}
	return "unknown"
}

// Tag is the metadata schedulers attach to simulator tasks (Task.Tag).
type Tag struct {
	Kind Kind
	// GPU owns the work: the computing GPU, or the GPU side of a
	// DRAM transfer. For GPU-to-GPU transfers it is the source.
	GPU int
	// PeerGPU is the destination of a GPU-to-GPU transfer, else -1.
	PeerGPU int
	// Stage and Microbatch locate the work in the pipeline (-1 when not
	// applicable).
	Stage, Microbatch int
}

// FlowRecord is one completed transfer.
type FlowRecord struct {
	Tag        Tag
	Start, End float64
	Bytes      float64
}

// Bandwidth returns the flow's achieved bandwidth in bytes/second.
func (f FlowRecord) Bandwidth() float64 {
	d := f.End - f.Start
	if d <= 0 {
		return 0
	}
	return f.Bytes / d
}

// ComputeRecord is one completed compute task.
type ComputeRecord struct {
	Tag        Tag
	Start, End float64
}

// Recorder implements sim.Observer, collecting flow and compute records
// for tasks tagged with a trace.Tag. Untagged tasks are ignored.
type Recorder struct {
	Flows    []FlowRecord
	Computes []ComputeRecord
}

// NewRecorder returns an empty recorder; register it with sim.Observe.
func NewRecorder() *Recorder { return &Recorder{} }

// Reset clears the collected records, keeping the backing arrays, so a
// recorder can stay registered across sim.Reset replays of the same
// schedule without accumulating stale records.
func (r *Recorder) Reset() {
	r.Flows = r.Flows[:0]
	r.Computes = r.Computes[:0]
}

// TaskStarted implements sim.Observer.
func (r *Recorder) TaskStarted(t *sim.Task, at float64) {}

// TaskFinished implements sim.Observer.
func (r *Recorder) TaskFinished(t *sim.Task, at float64) {
	tag, ok := t.Tag.(Tag)
	if !ok {
		return
	}
	switch t.Kind() {
	case sim.KindTransfer:
		if t.Bytes() > 0 {
			r.Flows = append(r.Flows, FlowRecord{Tag: tag, Start: t.Start(), End: t.End(), Bytes: t.Bytes()})
		}
	case sim.KindCompute:
		r.Computes = append(r.Computes, ComputeRecord{Tag: tag, Start: t.Start(), End: t.End()})
	}
}

// TotalBytes sums transferred bytes over flows matching the filter (nil
// matches everything).
func (r *Recorder) TotalBytes(match func(Tag) bool) float64 {
	var total float64
	for _, f := range r.Flows {
		if match == nil || match(f.Tag) {
			total += f.Bytes
		}
	}
	return total
}

// BandwidthCDF builds the byte-weighted CDF of achieved flow bandwidth
// over flows matching the filter, reproducing the methodology of
// Figures 2 and 7: "fraction of data transferred at bandwidth <= x".
func (r *Recorder) BandwidthCDF(match func(Tag) bool) CDF {
	var samples []Sample
	for _, f := range r.Flows {
		if match == nil || match(f.Tag) {
			samples = append(samples, Sample{Value: f.Bandwidth(), Weight: f.Bytes})
		}
	}
	return NewCDF(samples)
}

// interval is a half-open time span.
type interval struct{ a, b float64 }

// normalize sorts and merges intervals into a disjoint ascending set.
func normalize(iv []interval) []interval {
	if len(iv) == 0 {
		return nil
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i].a < iv[j].a })
	out := iv[:1]
	for _, x := range iv[1:] {
		last := &out[len(out)-1]
		if x.a <= last.b {
			if x.b > last.b {
				last.b = x.b
			}
			continue
		}
		out = append(out, x)
	}
	return out
}

// unionLength returns the total measure of the union of intervals.
func unionLength(iv []interval) float64 {
	var total float64
	for _, x := range normalize(iv) {
		total += x.b - x.a
	}
	return total
}

// subtractLength returns the measure of union(A) \ union(B).
func subtractLength(a, b []interval) float64 {
	a = normalize(a)
	b = normalize(b)
	var total float64
	bi := 0
	for _, x := range a {
		lo := x.a
		for bi < len(b) && b[bi].b <= lo {
			bi++
		}
		bj := bi
		for lo < x.b {
			if bj >= len(b) || b[bj].a >= x.b {
				total += x.b - lo
				break
			}
			if b[bj].a > lo {
				total += b[bj].a - lo
			}
			if b[bj].b >= x.b {
				break
			}
			lo = b[bj].b
			bj++
		}
	}
	return total
}

// flowTouches reports whether the flow involves the given GPU.
func flowTouches(tag Tag, gpu int) bool {
	return tag.GPU == gpu || tag.PeerGPU == gpu
}

// NonOverlappedComm returns, for one GPU, the communication time not
// hidden by that GPU's computation, i.e. |union(comm) \ union(compute)|.
func (r *Recorder) NonOverlappedComm(gpu int) float64 {
	var comm, comp []interval
	for _, f := range r.Flows {
		if flowTouches(f.Tag, gpu) {
			comm = append(comm, interval{f.Start, f.End})
		}
	}
	for _, c := range r.Computes {
		if c.Tag.GPU == gpu {
			comp = append(comp, interval{c.Start, c.End})
		}
	}
	return subtractLength(comm, comp)
}

// NonOverlappedCommFraction averages NonOverlappedComm over GPUs and
// normalizes by the step time — the y-axis of Figure 8.
func (r *Recorder) NonOverlappedCommFraction(numGPUs int, stepTime float64) float64 {
	if stepTime <= 0 || numGPUs <= 0 {
		return 0
	}
	var total float64
	for g := 0; g < numGPUs; g++ {
		total += r.NonOverlappedComm(g)
	}
	return total / (float64(numGPUs) * stepTime)
}

// ComputeBusy returns the total compute-busy time of a GPU.
func (r *Recorder) ComputeBusy(gpu int) float64 {
	var iv []interval
	for _, c := range r.Computes {
		if c.Tag.GPU == gpu {
			iv = append(iv, interval{c.Start, c.End})
		}
	}
	return unionLength(iv)
}
