package planstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"mobius/internal/core"
	"mobius/internal/hw"
	"mobius/internal/mapping"
	"mobius/internal/partition"
	"mobius/internal/profile"
)

// Key is the content-addressed record key: the canonical SHA-256 plan
// key derived by internal/plansvc. The store never recomputes it — it
// only verifies that a record on disk carries the key its filename
// claims.
type Key [sha256.Size]byte

// String renders the key as lowercase hex, the on-disk file basename.
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// Entry is one persisted plan: the key it is cached under, the plan
// itself, the topology it was planned for (hits re-validate against
// it), and the model signature the nearest-incumbent index uses.
type Entry struct {
	Key      Key
	ModelSig uint64
	Plan     *core.Plan
	Topology *hw.Topology
}

// Record layout, version 1:
//
//	offset  size  field
//	0       8     magic "MOBPLAN1"
//	8       4     version (big-endian uint32)
//	12      32    key (raw SHA-256 plan key)
//	44      8     payload length (big-endian uint64)
//	52      32    SHA-256 of the payload
//	84      n     payload (JSON, see payload below)
//
// The payload checksum covers every byte after the header; the header
// itself is validated structurally (magic, version, key == filename
// key, length == remaining file size), so any single corrupted byte —
// header or payload — fails decoding and the record quarantines instead
// of loading.
const (
	recordVersion = 1
	headerLen     = 8 + 4 + sha256.Size + 8 + sha256.Size
	// maxRecordBytes bounds a record file; anything larger is corrupt by
	// definition (a real plan payload is tens of kilobytes).
	maxRecordBytes = 64 << 20
)

var recordMagic = [8]byte{'M', 'O', 'B', 'P', 'L', 'A', 'N', '1'}

// payload is the JSON body of a record. It carries the full plan —
// profile, partition, mapping, solver stats — not the summary wire
// form: a loaded entry must serve exactly like the entry that was
// persisted (warm hits, nearest-incumbent warm starts, step pricing).
type payload struct {
	ModelSig      uint64               `json:"model_sig"`
	Topology      *hw.Topology         `json:"topology"`
	Profile       *profile.Profile     `json:"profile"`
	Partition     *partition.Partition `json:"partition"`
	Mapping       *mapping.Mapping     `json:"mapping"`
	MIPStats      *partition.MIPStats  `json:"mip_stats,omitempty"`
	PredictedStep float64              `json:"predicted_step_s"`
}

// encodeRecord serializes an entry into the versioned, checksummed
// record format. Fallback plans are the caller's to reject — the store
// persists only cacheable plans, mirroring the in-memory cache.
func encodeRecord(e Entry) ([]byte, error) {
	if e.Plan == nil || e.Plan.Profile == nil || e.Plan.Partition == nil || e.Plan.Mapping == nil {
		return nil, fmt.Errorf("planstore: incomplete plan for %s", e.Key)
	}
	body, err := json.Marshal(payload{
		ModelSig:      e.ModelSig,
		Topology:      e.Topology,
		Profile:       e.Plan.Profile,
		Partition:     e.Plan.Partition,
		Mapping:       e.Plan.Mapping,
		MIPStats:      e.Plan.MIPStats,
		PredictedStep: e.Plan.PredictedStep,
	})
	if err != nil {
		return nil, fmt.Errorf("planstore: encode %s: %w", e.Key, err)
	}
	rec := make([]byte, headerLen+len(body))
	copy(rec[0:8], recordMagic[:])
	binary.BigEndian.PutUint32(rec[8:12], recordVersion)
	copy(rec[12:44], e.Key[:])
	binary.BigEndian.PutUint64(rec[44:52], uint64(len(body)))
	sum := sha256.Sum256(body)
	copy(rec[52:84], sum[:])
	copy(rec[headerLen:], body)
	return rec, nil
}

// errStale marks a structurally-sound record written by a different
// format version; Load counts these separately from corruption.
type errStale struct{ version uint32 }

func (e errStale) Error() string {
	return fmt.Sprintf("planstore: record version %d, want %d", e.version, recordVersion)
}

// decodeRecord parses and verifies one record. wantKey is the key the
// filename claims; a mismatch (bit-flipped header, misnamed file) is
// corruption. The returned entry's plan has been rebuilt — including
// the profile's layer handles, which JSON cannot carry — but not yet
// validated against its topology; Load runs Plan.Validate on top.
func decodeRecord(data []byte, wantKey Key) (Entry, error) {
	var e Entry
	if len(data) < headerLen {
		return e, fmt.Errorf("planstore: truncated record: %d bytes, header needs %d", len(data), headerLen)
	}
	if !bytes.Equal(data[0:8], recordMagic[:]) {
		return e, fmt.Errorf("planstore: bad magic %q", data[0:8])
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != recordVersion {
		return e, errStale{version: v}
	}
	copy(e.Key[:], data[12:44])
	if e.Key != wantKey {
		return e, fmt.Errorf("planstore: record key %s does not match filename key %s", e.Key, wantKey)
	}
	n := binary.BigEndian.Uint64(data[44:52])
	if n != uint64(len(data)-headerLen) {
		return e, fmt.Errorf("planstore: payload length %d, file holds %d", n, len(data)-headerLen)
	}
	sum := sha256.Sum256(data[headerLen:])
	if !bytes.Equal(sum[:], data[52:84]) {
		return e, fmt.Errorf("planstore: payload checksum mismatch")
	}
	var p payload
	if err := json.Unmarshal(data[headerLen:], &p); err != nil {
		return e, fmt.Errorf("planstore: decode payload: %w", err)
	}
	if p.Topology == nil || p.Profile == nil || p.Partition == nil || p.Mapping == nil {
		return e, fmt.Errorf("planstore: payload missing plan components")
	}
	// model.Layer carries an unexported model handle JSON cannot round-
	// trip; rebuild the layer sequence from the profiled model config.
	seq := p.Profile.Model.LayerSeq()
	if len(seq) != len(p.Profile.Layers) {
		return e, fmt.Errorf("planstore: profile holds %d layers, model %q has %d", len(p.Profile.Layers), p.Profile.Model.Name, len(seq))
	}
	for i := range seq {
		p.Profile.Layers[i].Layer = seq[i]
	}
	e.ModelSig = p.ModelSig
	e.Topology = p.Topology
	e.Plan = &core.Plan{
		Profile:       p.Profile,
		Partition:     p.Partition,
		Mapping:       p.Mapping,
		MIPStats:      p.MIPStats,
		PredictedStep: p.PredictedStep,
	}
	return e, nil
}
