package planstore

import (
	"os"
	"path/filepath"
	"testing"

	"mobius/internal/model"
)

// FuzzStoreLoad throws arbitrary bytes at the directory replay as a
// record file: Load must never panic, never abort the replay, and only
// ever produce entries that carry the filename's key and pass plan
// validation. Seeds are the real record grammar — an intact record, its
// truncations, single-byte corruptions and version skews — plus the
// checked-in corpus under testdata/fuzz/FuzzStoreLoad.
func FuzzStoreLoad(f *testing.F) {
	e := testEntry(f, model.GPT3B, "fuzz-seed")
	rec, err := encodeRecord(e)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(rec)
	f.Add(rec[:headerLen])
	f.Add(rec[:len(rec)-1])
	f.Add(rec[:len(rec)/2])
	flipped := append([]byte(nil), rec...)
	flipped[headerLen+10] ^= 0x40
	f.Add(flipped)
	skewed := append([]byte(nil), rec...)
	skewed[11] = recordVersion + 1
	f.Add(skewed)

	key := e.Key
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > maxRecordBytes {
			t.Skip()
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, key.String()+recordExt), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		entries, rep, err := s.Load()
		if err != nil {
			t.Fatalf("Load aborted on arbitrary input: %v", err)
		}
		if rep.Entries+rep.Quarantined != 1 {
			t.Fatalf("one record in, %d entries + %d quarantined out", rep.Entries, rep.Quarantined)
		}
		for _, got := range entries {
			if got.Key != key {
				t.Fatalf("loaded entry carries key %s, filename says %s", got.Key, key)
			}
			if err := got.Plan.Validate(got.Topology); err != nil {
				t.Fatalf("loaded entry fails validation: %v", err)
			}
		}
	})
}
