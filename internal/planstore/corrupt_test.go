package planstore

import (
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"mobius/internal/model"
)

// loadDir replays dir through a throwaway store and returns the result.
func loadDir(t testing.TB, dir string) ([]Entry, LoadReport) {
	t.Helper()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	entries, rep, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	return entries, rep
}

// writeRecord lands raw bytes under key's canonical filename.
func writeRecord(t testing.TB, dir string, key Key, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, key.String()+recordExt), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadTruncatedAtEveryByte truncates a record at every byte offset:
// the replay must never panic, never load the truncated record, and
// always quarantine exactly it. Failing fast is part of the contract —
// the header's length field disagrees with the file size long before a
// checksum is computed.
func TestLoadTruncatedAtEveryByte(t *testing.T) {
	e := testEntry(t, model.GPT3B, "truncate-sweep")
	rec, err := encodeRecord(e)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if testing.Short() {
		step = 97
	}
	root := t.TempDir()
	for cut := 0; cut < len(rec); cut += step {
		dir, err := os.MkdirTemp(root, "cut")
		if err != nil {
			t.Fatal(err)
		}
		writeRecord(t, dir, e.Key, rec[:cut])
		entries, rep := loadDir(t, dir)
		if len(entries) != 0 || rep.Entries != 0 {
			t.Fatalf("cut at %d: a truncated record loaded", cut)
		}
		if rep.Quarantined != 1 {
			t.Fatalf("cut at %d: quarantined %d, want 1", cut, rep.Quarantined)
		}
		os.RemoveAll(dir)
	}
	// The full record, untouched, loads.
	dir := t.TempDir()
	writeRecord(t, dir, e.Key, rec)
	entries, rep := loadDir(t, dir)
	if len(entries) != 1 || rep.Quarantined != 0 {
		t.Fatalf("intact record: %+v", rep)
	}
}

// TestLoadBitFlipAtEveryByte flips one bit in every byte of a record:
// magic, version, key, length, checksum or payload — any single flipped
// bit must quarantine the record, never load it, never panic. (A version
// flip counts as stale; everything else as corruption.)
func TestLoadBitFlipAtEveryByte(t *testing.T) {
	e := testEntry(t, model.GPT3B, "bitflip-sweep")
	rec, err := encodeRecord(e)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if testing.Short() {
		step = 131
	}
	root := t.TempDir()
	flipped := make([]byte, len(rec))
	for pos := 0; pos < len(rec); pos += step {
		dir, err := os.MkdirTemp(root, "flip")
		if err != nil {
			t.Fatal(err)
		}
		copy(flipped, rec)
		flipped[pos] ^= 1 << (pos % 8)
		writeRecord(t, dir, e.Key, flipped)
		entries, rep := loadDir(t, dir)
		if len(entries) != 0 {
			t.Fatalf("flip at %d: a corrupted record loaded", pos)
		}
		if rep.Quarantined != 1 {
			t.Fatalf("flip at %d: quarantined %d, want 1", pos, rep.Quarantined)
		}
		os.RemoveAll(dir)
	}
}

// TestLoadKeepsValidatedSiblings: corruption destroys only its own
// record — every intact entry written before the damage still loads.
func TestLoadKeepsValidatedSiblings(t *testing.T) {
	dir := t.TempDir()
	var want []Key
	for _, l := range []string{"s1", "s2", "s3"} {
		e := testEntry(t, model.GPT3B, l)
		rec, err := encodeRecord(e)
		if err != nil {
			t.Fatal(err)
		}
		writeRecord(t, dir, e.Key, rec)
		want = append(want, e.Key)
	}
	bad := testEntry(t, model.GPT3B, "victim")
	rec, err := encodeRecord(bad)
	if err != nil {
		t.Fatal(err)
	}
	writeRecord(t, dir, bad.Key, rec[:len(rec)/2])

	entries, rep := loadDir(t, dir)
	if rep.Entries != 3 || rep.Quarantined != 1 {
		t.Fatalf("load %+v, want 3 intact entries and 1 quarantine", rep)
	}
	got := map[Key]bool{}
	for _, e := range entries {
		got[e.Key] = true
	}
	for _, k := range want {
		if !got[k] {
			t.Errorf("intact entry %s lost to a sibling's corruption", k)
		}
	}
}

// TestLoadQuarantineZoo walks the failure taxonomy in one directory:
// truncation, stale version, key mismatch, garbage JSON behind a valid
// checksum, a semantically invalid plan, and an empty file — each
// quarantined under the right counter, alongside one intact survivor.
func TestLoadQuarantineZoo(t *testing.T) {
	dir := t.TempDir()
	good := testEntry(t, model.GPT3B, "zoo-good")
	goodRec, err := encodeRecord(good)
	if err != nil {
		t.Fatal(err)
	}
	writeRecord(t, dir, good.Key, goodRec)

	// Empty file.
	writeRecord(t, dir, testKey("zoo-empty"), nil)

	// Header-only truncation.
	writeRecord(t, dir, testKey("zoo-header"), goodRec[:headerLen])

	// Stale version: rewrite the version field and patch nothing else —
	// structurally sound, just from another era.
	stale := testEntry(t, model.GPT3B, "zoo-stale")
	staleRec, err := encodeRecord(stale)
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(staleRec[8:12], recordVersion+1)
	writeRecord(t, dir, stale.Key, staleRec)

	// Key mismatch: an intact record filed under the wrong name.
	writeRecord(t, dir, testKey("zoo-misnamed"), goodRec)

	// Garbage JSON with a correct checksum: the header lies about
	// nothing, the payload is just not a plan.
	junk := []byte(`{"model_sig": "not a number"}`)
	k := testKey("zoo-json")
	rec := make([]byte, headerLen+len(junk))
	copy(rec[0:8], recordMagic[:])
	binary.BigEndian.PutUint32(rec[8:12], recordVersion)
	copy(rec[12:44], k[:])
	binary.BigEndian.PutUint64(rec[44:52], uint64(len(junk)))
	sum := sha256.Sum256(junk)
	copy(rec[52:84], sum[:])
	copy(rec[headerLen:], junk)
	writeRecord(t, dir, k, rec)

	// Semantically invalid: a well-formed record whose plan does not
	// validate against its persisted topology (wrong machine size).
	invalid := testEntry(t, model.GPT3B, "zoo-invalid")
	smaller := *invalid.Topology
	smaller.GPUs = invalid.Topology.GPUs[:1]
	invalid.Topology = &smaller
	invalidRec, err := encodeRecord(invalid)
	if err != nil {
		t.Fatal(err)
	}
	writeRecord(t, dir, invalid.Key, invalidRec)

	entries, rep := loadDir(t, dir)
	if rep.Entries != 1 || len(entries) != 1 || entries[0].Key != good.Key {
		t.Fatalf("load %+v: only the intact record should survive", rep)
	}
	if rep.Quarantined != 6 {
		t.Errorf("quarantined %d, want 6", rep.Quarantined)
	}
	if rep.Stale != 1 {
		t.Errorf("stale %d, want 1", rep.Stale)
	}
	if rep.Invalid != 1 {
		t.Errorf("invalid %d, want 1", rep.Invalid)
	}
	// Every quarantined file was renamed aside; a second replay is clean.
	_, rep2 := loadDir(t, dir)
	if rep2.Entries != 1 || rep2.Quarantined != 0 {
		t.Fatalf("second load %+v: quarantine must stick", rep2)
	}
}

// TestQuarantineNameCollisions: repeated damage to the same key gets
// numbered quarantine files, never an overwrite of earlier evidence.
func TestQuarantineNameCollisions(t *testing.T) {
	dir := t.TempDir()
	k := testKey("collide")
	for i := 0; i < 3; i++ {
		writeRecord(t, dir, k, []byte("junk"))
		_, rep := loadDir(t, dir)
		if rep.Quarantined != 1 {
			t.Fatalf("round %d: quarantined %d, want 1", i, rep.Quarantined)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 {
		t.Fatalf("%d quarantine file(s), want 3 distinct", len(ents))
	}
}
