package planstore

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
	"mobius/internal/partition"
)

// testPlan builds the cheapest real, validated plan: balanced partition
// on the 2+2 commodity box, no MIP.
func testPlan(t testing.TB, m model.Config) (*core.Plan, *hw.Topology) {
	t.Helper()
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	plan, err := core.PlanMobius(core.Options{
		Model: m, Topology: topo,
		PartitionAlgo: partition.AlgoBalanced, BalancedStages: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan, topo
}

// testKey derives a distinct, stable key from a label. The store never
// recomputes content keys, so any key is as good as the canonical one.
func testKey(label string) Key {
	return Key(sha256.Sum256([]byte(label)))
}

func testEntry(t testing.TB, m model.Config, label string) Entry {
	t.Helper()
	plan, topo := testPlan(t, m)
	return Entry{Key: testKey(label), ModelSig: 42, Plan: plan, Topology: topo}
}

func openStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRecordRoundTrip(t *testing.T) {
	e := testEntry(t, model.GPT3B, "roundtrip")
	rec, err := encodeRecord(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRecord(rec, e.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != e.Key || got.ModelSig != e.ModelSig {
		t.Fatalf("identity fields did not round-trip: %+v", got)
	}
	if err := got.Plan.Validate(got.Topology); err != nil {
		t.Fatalf("decoded plan fails validation: %v", err)
	}
	if got.Plan.PredictedStep != e.Plan.PredictedStep {
		t.Errorf("PredictedStep %g, want %g", got.Plan.PredictedStep, e.Plan.PredictedStep)
	}
	if len(got.Plan.Partition.Stages) != len(e.Plan.Partition.Stages) {
		t.Fatalf("%d stages, want %d", len(got.Plan.Partition.Stages), len(e.Plan.Partition.Stages))
	}
	for i, st := range e.Plan.Partition.Stages {
		if got.Plan.Partition.Stages[i].First != st.First || got.Plan.Partition.Stages[i].Last != st.Last {
			t.Errorf("stage %d boundaries [%d,%d], want [%d,%d]",
				i, got.Plan.Partition.Stages[i].First, got.Plan.Partition.Stages[i].Last, st.First, st.Last)
		}
	}
	for i, g := range e.Plan.Mapping.Perm {
		if got.Plan.Mapping.Perm[i] != g {
			t.Errorf("mapping perm[%d] = %d, want %d", i, got.Plan.Mapping.Perm[i], g)
		}
	}
	// The profile's layer handles carry an unexported model config JSON
	// cannot round-trip; decode must rebuild them from the model, so
	// per-layer pricing still works on the loaded plan.
	for i, ls := range got.Plan.Profile.Layers {
		if want := e.Plan.Profile.Layers[i].Layer.Params(); ls.Layer.Params() != want {
			t.Fatalf("rebuilt layer %d prices %d params, want %d", i, ls.Layer.Params(), want)
		}
	}
}

func TestEncodeRejectsIncompletePlan(t *testing.T) {
	if _, err := encodeRecord(Entry{Key: testKey("nil")}); err == nil {
		t.Fatal("encoding a nil plan should fail")
	}
	e := testEntry(t, model.GPT3B, "incomplete")
	e.Plan = &core.Plan{Profile: e.Plan.Profile} // no partition, no mapping
	if _, err := encodeRecord(e); err == nil {
		t.Fatal("encoding an incomplete plan should fail")
	}
}

func TestStorePersistAndLoad(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	labels := []string{"alpha", "beta", "gamma"}
	for _, l := range labels {
		s.Put(testEntry(t, model.GPT3B, l))
	}
	s.Flush()
	if m := s.Metrics(); m.Persisted != 3 || m.WriteDrops != 0 || m.QueueDepth != 0 {
		t.Fatalf("after flush: %+v", m)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory replays every record.
	s2 := openStore(t, Config{Dir: dir})
	entries, rep, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 3 || rep.Quarantined != 0 {
		t.Fatalf("load report %+v, want 3 entries, 0 quarantined", rep)
	}
	want := map[Key]bool{}
	for _, l := range labels {
		want[testKey(l)] = true
	}
	for _, e := range entries {
		if !want[e.Key] {
			t.Errorf("loaded unexpected key %s", e.Key)
		}
		delete(want, e.Key)
		if err := e.Plan.Validate(e.Topology); err != nil {
			t.Errorf("loaded plan %s invalid: %v", e.Key, err)
		}
	}
	if len(want) != 0 {
		t.Errorf("%d entr(ies) missing after load", len(want))
	}
	if m := s2.Metrics(); m.LoadedEntries != 3 || m.QuarantinedRecords != 0 {
		t.Errorf("load metrics %+v", m)
	}
}

// TestStoreLoadIsDeterministic: two replays of the same directory yield
// the same entries in the same order (sorted filenames).
func TestStoreLoadIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	for _, l := range []string{"d1", "d2", "d3", "d4"} {
		s.Put(testEntry(t, model.GPT3B, l))
	}
	s.Flush()
	a, _, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 4 {
		t.Fatalf("replays loaded %d and %d entries, want 4", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("replay order diverged at %d: %s vs %s", i, a[i].Key, b[i].Key)
		}
		if i > 0 && !lessHex(a[i-1].Key, a[i].Key) {
			t.Fatalf("entries not in sorted key order at %d", i)
		}
	}
}

func lessHex(a, b Key) bool { return strings.Compare(a.String(), b.String()) < 0 }

// TestStoreDeleteCoherence: a delete enqueued after a put removes the
// record; a later load cannot resurrect it.
func TestStoreDeleteCoherence(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	keep := testEntry(t, model.GPT3B, "keep")
	drop := testEntry(t, model.GPT3B, "drop")
	s.Put(keep)
	s.Put(drop)
	s.Delete(drop.Key)
	s.Flush()
	if m := s.Metrics(); m.Persisted != 2 || m.Deletes != 1 {
		t.Fatalf("metrics %+v, want 2 persisted / 1 delete", m)
	}
	entries, rep, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 1 || len(entries) != 1 || entries[0].Key != keep.Key {
		t.Fatalf("load %+v: the deleted entry must not come back", rep)
	}
	// Deleting an absent key is not an error (idempotent).
	s.Delete(testKey("never-existed"))
	s.Flush()
	if m := s.Metrics(); m.IOErrors != 0 {
		t.Fatalf("deleting an absent key counted an I/O error: %+v", m)
	}
}

// TestStoreQueueBound: puts drop at a full queue (counted, never
// blocking); deletes are exempt so eviction coherence always holds.
func TestStoreQueueBound(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	spec := &fault.Spec{StoreFaults: []fault.StoreFault{{Op: "put", LatencyMS: 1}}}
	s := openStore(t, Config{
		Dir:        t.TempDir(),
		QueueDepth: 2,
		Faults:     spec,
		Sleep:      func(time.Duration) { <-release },
	})
	e := testEntry(t, model.GPT3B, "q0")
	s.Put(e) // worker picks this up and parks in Sleep
	for {
		s.mu.Lock()
		busy := !s.idle && len(s.queue) == 0
		s.mu.Unlock()
		if busy {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Put(testEntry(t, model.GPT3B, "q1"))
	s.Put(testEntry(t, model.GPT3B, "q2"))
	s.Put(testEntry(t, model.GPT3B, "q3")) // queue full: dropped
	s.Delete(testKey("q9"))                // exempt from the bound
	m := s.Metrics()
	if m.WriteDrops != 1 {
		t.Errorf("WriteDrops = %d, want 1", m.WriteDrops)
	}
	if m.QueueDepth != 3 { // q1, q2 and the delete
		t.Errorf("QueueDepth = %d, want 3", m.QueueDepth)
	}
	once.Do(func() { close(release) })
	s.Flush()
	if m := s.Metrics(); m.Persisted != 3 || m.InjectedLatencyS <= 0 {
		t.Errorf("after drain: %+v", m)
	}
}

// TestStoreInjectedFailures: probability-1 clean failures mean nothing
// reaches the directory — and the store survives a fully broken disk.
func TestStoreInjectedFailures(t *testing.T) {
	spec := &fault.Spec{StoreFaults: []fault.StoreFault{{Op: "*", Mode: "fail", Probability: 1}}}
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir, Faults: spec})
	s.Put(testEntry(t, model.GPT3B, "f1"))
	s.Put(testEntry(t, model.GPT3B, "f2"))
	s.Delete(testKey("f1"))
	s.Flush()
	m := s.Metrics()
	if m.InjectedFailures != 3 || m.Persisted != 0 || m.Deletes != 0 {
		t.Fatalf("metrics %+v, want 3 injected failures and nothing persisted", m)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("%d file(s) reached a fully failed store", len(ents))
	}
}

// TestStoreTornWrite: a torn put lands a partial record on the final
// path; a replay quarantines it and keeps every intact sibling.
func TestStoreTornWrite(t *testing.T) {
	spec := &fault.Spec{StoreFaults: []fault.StoreFault{
		{Op: "put", Mode: "torn", Probability: 1, TornAtByte: 100},
	}}
	dir := t.TempDir()
	intact := testEntry(t, model.GPT3B, "intact")
	// First store writes one intact record, fault-free.
	s0 := openStore(t, Config{Dir: dir})
	s0.Put(intact)
	s0.Flush()
	s0.Close()
	// Second store tears every put.
	s := openStore(t, Config{Dir: dir, Faults: spec})
	torn := testEntry(t, model.GPT3B, "torn")
	s.Put(torn)
	s.Flush()
	if m := s.Metrics(); m.TornWrites != 1 || m.Persisted != 0 {
		t.Fatalf("metrics %+v, want exactly one torn write", m)
	}
	data, err := os.ReadFile(filepath.Join(dir, torn.Key.String()+recordExt))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 100 {
		t.Fatalf("torn record holds %d bytes, want the 100-byte prefix", len(data))
	}
	entries, rep, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 1 || rep.Quarantined != 1 || entries[0].Key != intact.Key {
		t.Fatalf("load %+v: want the intact entry kept and the torn record quarantined", rep)
	}
	// The torn record was renamed aside, so the next replay is clean.
	_, rep2, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Entries != 1 || rep2.Quarantined != 0 {
		t.Fatalf("second load %+v: quarantine must stick", rep2)
	}
}

// TestStoreOverwriteSettlesLast: re-putting a key leaves exactly one
// record, decodable, with the last write's content.
func TestStoreOverwriteSettlesLast(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	e1 := testEntry(t, model.GPT3B, "samekey")
	e2 := testEntry(t, model.GPT8B, "otherplan")
	e2.Key = e1.Key
	e2.ModelSig = 77
	s.Put(e1)
	s.Put(e2)
	s.Flush()
	entries, rep, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 1 || entries[0].ModelSig != 77 {
		t.Fatalf("load %+v (sig %d): want the second write to win", rep, entries[0].ModelSig)
	}
}

// TestStoreClosedRejectsOps: operations after Close are silent no-ops.
func TestStoreClosedRejectsOps(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	s.Close()
	s.Close() // idempotent
	s.Put(testEntry(t, model.GPT3B, "late"))
	s.Delete(testKey("late"))
	if m := s.Metrics(); m.Persisted != 0 || m.Deletes != 0 || m.QueueDepth != 0 {
		t.Fatalf("a closed store performed work: %+v", m)
	}
}

// TestStoreConcurrentOps drives puts, deletes, flushes and metric
// snapshots from many goroutines; the race detector is the assertion.
func TestStoreConcurrentOps(t *testing.T) {
	s := openStore(t, Config{Dir: t.TempDir(), QueueDepth: 8})
	e := testEntry(t, model.GPT3B, "base")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				ent := e
				ent.Key[0] = byte(g)
				ent.Key[1] = byte(i)
				s.Put(ent)
				if i%3 == 0 {
					s.Delete(ent.Key)
				}
				s.Metrics()
				if i%7 == 0 {
					s.Flush()
				}
			}
		}(g)
	}
	wg.Wait()
	s.Flush()
	if _, _, err := s.Load(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without a directory should fail")
	}
	if _, err := Open(Config{Dir: t.TempDir(), Faults: &fault.Spec{
		StoreFaults: []fault.StoreFault{{Op: "bogus"}},
	}}); err == nil {
		t.Fatal("Open with an invalid fault spec should fail")
	}
}

func TestKeyFromName(t *testing.T) {
	k := testKey("name")
	got, ok := keyFromName(k.String() + recordExt)
	if !ok || got != k {
		t.Fatalf("keyFromName round-trip failed: %v %v", got, ok)
	}
	for _, bad := range []string{
		"short" + recordExt,
		strings.Repeat("z", 64) + recordExt,
		strings.Repeat("A", 64) + recordExt, // uppercase is not canonical
	} {
		if _, ok := keyFromName(bad); ok {
			t.Errorf("keyFromName(%q) accepted", bad)
		}
	}
}
