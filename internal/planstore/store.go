// Package planstore is the crash-safe, content-addressed on-disk plan
// store behind the internal/plansvc cache. One entry is one file,
// `<keyhex>.plan`, holding a checksummed, versioned record (see
// record.go). Writes go through a bounded write-behind queue drained by
// one worker goroutine: the hot planning path never blocks on the disk,
// and a full queue drops the put (counted) rather than stalling —
// persistence is an optimization, the in-memory cache stays the source
// of truth. Completed writes are atomic (temp file + rename into
// place), so a crash leaves either the old record or the new one, never
// a hybrid.
//
// Loading replays the directory: every record is structurally verified
// (magic, version, key, length, payload SHA-256), decoded, and its plan
// re-validated against its topology. Anything that fails — truncated,
// torn, bit-flipped, stale-version, or semantically invalid records —
// is quarantined (renamed aside and counted), never fatal: a damaged
// store degrades toward a cold start one entry at a time.
//
// Fault injection: a fault.Spec's store_faults clauses inject clean
// write failures, torn writes at a byte offset, and device latency into
// the worker, decided by the same seed-driven splitmix hash as every
// other clause — per (seed, rule, key, operation sequence), so a
// scenario replays bitwise.
package planstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mobius/internal/fault"
)

// Config tunes a Store.
type Config struct {
	// Dir is the store directory; Open creates it.
	Dir string
	// QueueDepth bounds the write-behind queue (default 256). Puts
	// arriving at a full queue are dropped and counted (WriteDrops);
	// deletes always enqueue — dropping one would let a restart
	// resurrect an entry the cache already evicted.
	QueueDepth int
	// Faults injects store I/O faults via its store_faults clauses
	// (fault.Spec.StoreOp); nil injects nothing.
	Faults *fault.Spec
	// Sleep absorbs injected device latency (default time.Sleep); the
	// chaos harness substitutes a recorder so latency clauses stay
	// deterministic in wall-clock-free tests.
	Sleep func(d time.Duration)
}

// Metrics counts what the store did. Counters are cumulative since
// Open; a snapshot is taken under the store lock.
type Metrics struct {
	// Persisted counts records written all the way through temp+rename;
	// Deletes counts completed removals.
	Persisted uint64 `json:"persisted"`
	Deletes   uint64 `json:"deletes"`
	// WriteDrops counts puts dropped at a full queue.
	WriteDrops uint64 `json:"write_drops"`
	// InjectedFailures counts operations failed cleanly by store_faults;
	// TornWrites counts injected torn writes (a partial record reached
	// the final path).
	InjectedFailures uint64 `json:"injected_failures"`
	TornWrites       uint64 `json:"torn_writes"`
	// IOErrors counts real filesystem errors the worker survived.
	IOErrors uint64 `json:"io_errors"`
	// InjectedLatencyS is the total injected device latency.
	InjectedLatencyS float64 `json:"injected_latency_s"`
	// QueueDepth is the write-behind backlog at snapshot time.
	QueueDepth int `json:"queue_depth"`

	// Load-side counters, from the last Load call: entries recovered,
	// records quarantined (with the stale-version and failed-validation
	// breakdowns counted inside the total).
	LoadedEntries      uint64 `json:"loaded_entries"`
	QuarantinedRecords uint64 `json:"quarantined_records"`
	StaleRecords       uint64 `json:"stale_records"`
	InvalidRecords     uint64 `json:"invalid_records"`
}

// LoadReport summarizes one directory replay.
type LoadReport struct {
	// Entries is the count of records recovered and validated.
	Entries int
	// Quarantined counts records moved aside: corrupt, truncated, torn,
	// stale-version (Stale) or failing Plan.Validate (Invalid). Stale
	// and Invalid are included in Quarantined.
	Quarantined int
	Stale       int
	Invalid     int
}

func (r LoadReport) String() string {
	return fmt.Sprintf("planstore: %d entr(ies) loaded, %d quarantined (%d stale, %d invalid)",
		r.Entries, r.Quarantined, r.Stale, r.Invalid)
}

type opKind int

const (
	opPut opKind = iota
	opDelete
)

type storeOp struct {
	kind opKind
	e    Entry
	seq  uint64
}

// Store is the crash-safe plan store. All methods are safe for
// concurrent use; Put and Delete are non-blocking (queue semantics
// above), Flush and Close drain.
type Store struct {
	cfg Config

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []storeOp
	seq    uint64
	closed bool
	idle   bool
	m      Metrics

	workerDone chan struct{}
}

// Open creates the directory if needed and starts the write-behind
// worker.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("planstore: a directory is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	s := &Store{cfg: cfg, workerDone: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.worker()
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// Put enqueues a record write. It never blocks: at a full queue the put
// is dropped and counted, and the entry simply is not persisted (the
// in-memory cache still holds it).
func (s *Store) Put(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.m.WriteDrops++
		return
	}
	s.queue = append(s.queue, storeOp{kind: opPut, e: e, seq: s.seq})
	s.seq++
	s.cond.Broadcast()
}

// Delete enqueues a record removal. Deletes are exempt from the queue
// bound — eviction coherence must hold, or a restart would resurrect an
// entry the cache aged out.
func (s *Store) Delete(k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.queue = append(s.queue, storeOp{kind: opDelete, e: Entry{Key: k}, seq: s.seq})
	s.seq++
	s.cond.Broadcast()
}

// Flush blocks until the write-behind queue has drained and the worker
// is idle.
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) > 0 || !s.idle {
		s.cond.Wait()
	}
}

// Close drains the queue and stops the worker. The store rejects
// operations afterwards; Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.workerDone
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.workerDone
	return nil
}

// Metrics returns a consistent snapshot of the counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.m
	m.QueueDepth = len(s.queue)
	return m
}

// worker drains the queue one operation at a time, in enqueue order —
// FIFO per key, so a put followed by a delete (or an overwrite) settles
// in cache order.
func (s *Store) worker() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.idle = true
			s.cond.Broadcast()
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.idle = true
			s.cond.Broadcast()
			s.mu.Unlock()
			close(s.workerDone)
			return
		}
		op := s.queue[0]
		s.queue = s.queue[1:]
		s.idle = false
		s.mu.Unlock()
		s.process(op)
	}
}

// process executes one drained operation, injected faults first.
func (s *Store) process(op storeOp) {
	opName := fault.StoreOpPut
	if op.kind == opDelete {
		opName = fault.StoreOpDelete
	}
	d := s.cfg.Faults.StoreOp(opName, keyHash(op.e.Key), op.seq)
	if d.LatencyS > 0 {
		s.count(func(m *Metrics) { m.InjectedLatencyS += d.LatencyS })
		s.cfg.Sleep(time.Duration(d.LatencyS * float64(time.Second)))
	}
	if d.Fail {
		s.count(func(m *Metrics) { m.InjectedFailures++ })
		return
	}
	path := filepath.Join(s.cfg.Dir, op.e.Key.String()+recordExt)
	switch op.kind {
	case opDelete:
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			s.count(func(m *Metrics) { m.IOErrors++ })
			return
		}
		s.count(func(m *Metrics) { m.Deletes++ })
	case opPut:
		rec, err := encodeRecord(op.e)
		if err != nil {
			s.count(func(m *Metrics) { m.IOErrors++ })
			return
		}
		if d.Torn {
			// A torn write bypasses the temp+rename protocol — it models
			// the crash that protocol cannot save you from (overwrite in
			// place, partial page flush): a prefix of the record lands on
			// the final path, destroying any intact predecessor.
			tear := d.TornAtByte
			if tear <= 0 || tear >= len(rec) {
				tear = 1 + int(d.TornHash*float64(len(rec)-1))
			}
			if err := os.WriteFile(path, rec[:tear], 0o644); err != nil {
				s.count(func(m *Metrics) { m.IOErrors++ })
				return
			}
			s.count(func(m *Metrics) { m.TornWrites++ })
			return
		}
		if err := atomicWrite(path, rec); err != nil {
			s.count(func(m *Metrics) { m.IOErrors++ })
			return
		}
		s.count(func(m *Metrics) { m.Persisted++ })
	}
}

func (s *Store) count(f func(*Metrics)) {
	s.mu.Lock()
	f(&s.m)
	s.mu.Unlock()
}

// atomicWrite lands data on path via a temp file in the same directory
// and a rename — the atomicity protocol: readers (and a future Load)
// see either the old complete record or the new one.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

const (
	recordExt     = ".plan"
	quarantineExt = ".quarantined"
)

// Load replays the store directory in sorted filename order: every
// record is verified, decoded and its plan re-validated; records that
// fail anywhere are quarantined in place (renamed aside) and counted,
// never fatal. The returned error covers directory-level failures only
// — an unreadable record never aborts the replay.
func (s *Store) Load() ([]Entry, LoadReport, error) {
	var rep LoadReport
	dirents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return nil, rep, fmt.Errorf("planstore: %w", err)
	}
	names := make([]string, 0, len(dirents))
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), recordExt) {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)

	var entries []Entry
	for _, name := range names {
		path := filepath.Join(s.cfg.Dir, name)
		key, ok := keyFromName(name)
		if !ok {
			s.quarantine(path, &rep, nil)
			continue
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() > maxRecordBytes {
			s.quarantine(path, &rep, nil)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			s.quarantine(path, &rep, nil)
			continue
		}
		e, err := decodeRecord(data, key)
		if err != nil {
			s.quarantine(path, &rep, err)
			continue
		}
		if err := e.Plan.Validate(e.Topology); err != nil {
			rep.Invalid++
			s.quarantine(path, &rep, nil)
			continue
		}
		entries = append(entries, e)
		rep.Entries++
	}
	s.mu.Lock()
	s.m.LoadedEntries = uint64(rep.Entries)
	s.m.QuarantinedRecords = uint64(rep.Quarantined)
	s.m.StaleRecords = uint64(rep.Stale)
	s.m.InvalidRecords = uint64(rep.Invalid)
	s.mu.Unlock()
	return entries, rep, nil
}

// quarantine moves a damaged record aside so subsequent loads skip it;
// when even the rename fails the file is left where it is and only
// counted — quarantining is best-effort, never fatal.
func (s *Store) quarantine(path string, rep *LoadReport, cause error) {
	rep.Quarantined++
	if _, ok := cause.(errStale); ok {
		rep.Stale++
	}
	dst := path + quarantineExt
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = fmt.Sprintf("%s%s.%d", path, quarantineExt, i)
	}
	_ = os.Rename(path, dst)
}

// keyFromName parses `<64 hex chars>.plan` back into a Key.
func keyFromName(name string) (Key, bool) {
	var k Key
	base := strings.TrimSuffix(name, recordExt)
	if len(base) != 2*len(k) {
		return k, false
	}
	for i := 0; i < len(k); i++ {
		hi, ok1 := hexVal(base[2*i])
		lo, ok2 := hexVal(base[2*i+1])
		if !ok1 || !ok2 {
			return k, false
		}
		k[i] = hi<<4 | lo
	}
	return k, true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// keyHash folds a key into the 64-bit hash the fault-decision stream is
// salted with (FNV-1a over the raw key bytes).
func keyHash(k Key) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range k {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
