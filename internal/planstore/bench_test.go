package planstore

import (
	"fmt"
	"testing"

	"mobius/internal/model"
)

// BenchmarkStorePersist prices one entry's full write-behind round trip:
// enqueue, encode, temp-file write, rename, fsync-free settle.
func BenchmarkStorePersist(b *testing.B) {
	e := testEntry(b, model.GPT3B, "bench-persist")
	s := openStore(b, Config{Dir: b.TempDir()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Key[0], e.Key[1] = byte(i), byte(i>>8)
		s.Put(e)
		s.Flush()
	}
}

// BenchmarkStoreLoad prices the warm-restart replay of a populated
// directory (decode, checksum, re-validate) at a few store sizes.
func BenchmarkStoreLoad(b *testing.B) {
	for _, n := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			w := openStore(b, Config{Dir: dir})
			e := testEntry(b, model.GPT3B, "bench-load")
			for i := 0; i < n; i++ {
				e.Key[0], e.Key[1] = byte(i), byte(i>>8)
				w.Put(e)
			}
			w.Flush()
			s := openStore(b, Config{Dir: dir})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				entries, rep, err := s.Load()
				if err != nil || rep.Entries != n {
					b.Fatalf("load: %v (%+v)", err, rep)
				}
				_ = entries
			}
		})
	}
}
