package mapping

import (
	"testing"

	"mobius/internal/hw"
)

// BenchmarkCrossMapping8 measures the cross-mapping search at the largest
// evaluated scale: 8 GPUs under two root complexes (Topo 4+4), 32 stages.
func BenchmarkCrossMapping8(b *testing.B) {
	topo := hw.Commodity(hw.RTX3090Ti, 4, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cross(topo, 32); err != nil {
			b.Fatal(err)
		}
	}
}
