package mapping

import (
	"testing"
	"testing/quick"

	"mobius/internal/hw"
)

func TestSequentialIdentity(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	m, err := Sequential(topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range m.Perm {
		if g != i {
			t.Fatalf("sequential perm %v", m.Perm)
		}
	}
	// Round-robin wrap.
	if m.GPUOf(5) != 1 || m.GPUOf(4) != 0 {
		t.Fatalf("GPUOf wrap: %d %d", m.GPUOf(5), m.GPUOf(4))
	}
}

func TestCrossNeverWorseThanSequential(t *testing.T) {
	topos := []*hw.Topology{
		hw.Commodity(hw.RTX3090Ti, 4),
		hw.Commodity(hw.RTX3090Ti, 2, 2),
		hw.Commodity(hw.RTX3090Ti, 1, 3),
		hw.Commodity(hw.RTX3090Ti, 4, 4),
		hw.Commodity(hw.RTX3090Ti, 2, 2, 2, 2),
	}
	for _, topo := range topos {
		for _, stages := range []int{4, 8, 12, 16} {
			seq, err := Sequential(topo, stages)
			if err != nil {
				t.Fatal(err)
			}
			cross, err := Cross(topo, stages)
			if err != nil {
				t.Fatal(err)
			}
			if cross.Contention > seq.Contention+1e-12 {
				t.Errorf("%s stages=%d: cross %g > sequential %g", topo.Name, stages, cross.Contention, seq.Contention)
			}
		}
	}
}

func TestCrossAlternatesRootComplexes(t *testing.T) {
	// Topo 2+2: cross mapping must put adjacent stages under different
	// root complexes (the Figure 4b illustration).
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	m, err := Cross(topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j+1 < 8; j++ {
		a, b := m.GPUOf(j), m.GPUOf(j+1)
		if j%4 == 3 {
			continue // round boundary wraps; adjacency across rounds is
			// unavoidable on 4 GPUs when S > N
		}
		if topo.SameRootComplex(a, b) {
			t.Errorf("adjacent stages %d,%d share a root complex (gpus %d,%d, perm %v)", j, j+1, a, b, m.Perm)
		}
	}
}

func TestCrossOnSingleRootComplexIsNeutral(t *testing.T) {
	// Topo 4: every permutation has the same contention; cross must not
	// crash and must return the identity (first in enumeration order).
	topo := hw.Commodity(hw.RTX3090Ti, 4)
	seq, _ := Sequential(topo, 8)
	cross, err := Cross(topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cross.Contention != seq.Contention {
		t.Fatalf("contention must be permutation-invariant on Topo 4: %g vs %g", cross.Contention, seq.Contention)
	}
}

func TestContentionDegreeFormula(t *testing.T) {
	// Two GPUs under one RC, stages 0 and 1 on them: shared=2, |i-j|=1.
	topo := hw.Commodity(hw.RTX3090Ti, 2)
	got := ContentionDegree(topo, []int{0, 1}, 2)
	if got != 2 {
		t.Fatalf("contention: got %g want 2", got)
	}
	// Distance 2 halves the contribution: stages 0,1,2 on 2 GPUs:
	// pairs (0,1): 2/1, (0,2): same GPU -> same RC -> 2/2, (1,2): 2/1.
	got = ContentionDegree(topo, []int{0, 1}, 3)
	if got != 2+1+2 {
		t.Fatalf("contention: got %g want 5", got)
	}
}

func TestContentionZeroAcrossRootComplexes(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 1, 1)
	if got := ContentionDegree(topo, []int{0, 1}, 2); got != 0 {
		t.Fatalf("cross-RC contention must be 0, got %g", got)
	}
}

func TestUploadPriorityOrdering(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	m, _ := Cross(topo, 8)
	for j := 1; j < 8; j++ {
		if m.UploadPriority(j) >= m.UploadPriority(j-1) {
			t.Fatalf("earlier stages must have higher priority: p(%d)=%d p(%d)=%d",
				j-1, m.UploadPriority(j-1), j, m.UploadPriority(j))
		}
	}
}

func TestStagesPerGPU(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	m, _ := Sequential(topo, 8)
	for g := 0; g < 4; g++ {
		st := m.Stages(g)
		if len(st) != 2 {
			t.Fatalf("gpu %d: %v", g, st)
		}
		if st[1]-st[0] != 4 {
			t.Fatalf("stages on one GPU must be N apart: %v", st)
		}
	}
}

func TestDeterminism(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 1, 3)
	a, _ := Cross(topo, 12)
	b, _ := Cross(topo, 12)
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			t.Fatalf("non-deterministic cross mapping: %v vs %v", a.Perm, b.Perm)
		}
	}
}

func TestArgValidation(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2)
	if _, err := Cross(topo, 0); err == nil {
		t.Fatal("zero stages must fail")
	}
	if _, err := Sequential(nil, 4); err == nil {
		t.Fatal("nil topology must fail")
	}
}

// TestCrossOptimalByBruteForce re-verifies the search result against an
// independent brute force over permutations for random group layouts.
func TestCrossOptimalByBruteForce(t *testing.T) {
	f := func(g1Raw, g2Raw uint8, stagesRaw uint8) bool {
		g1 := int(g1Raw%3) + 1
		g2 := int(g2Raw%3) + 1
		stages := (int(stagesRaw%3) + 1) * (g1 + g2)
		topo := hw.Commodity(hw.RTX3090Ti, g1, g2)
		m, err := Cross(topo, stages)
		if err != nil {
			return false
		}
		// Brute force.
		n := topo.NumGPUs()
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		best := ContentionDegree(topo, perm, stages)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				if s := ContentionDegree(topo, perm, stages); s < best {
					best = s
				}
				return
			}
			for k := i; k < n; k++ {
				perm[i], perm[k] = perm[k], perm[i]
				rec(i + 1)
				perm[i], perm[k] = perm[k], perm[i]
			}
		}
		rec(0)
		return m.Contention <= best+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossMappingEightGPUScale(t *testing.T) {
	// The permutation search must stay fast at the maximum evaluated
	// scale: 8 GPUs (40320 permutations) and 32 stages.
	topo := hw.Commodity(hw.RTX3090Ti, 4, 4)
	m, err := Cross(topo, 32)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := Sequential(topo, 32)
	if m.Contention > seq.Contention {
		t.Fatalf("cross %g > sequential %g", m.Contention, seq.Contention)
	}
	// Every GPU must appear exactly once in the permutation.
	seen := map[int]bool{}
	for _, g := range m.Perm {
		if seen[g] {
			t.Fatalf("duplicate GPU in perm %v", m.Perm)
		}
		seen[g] = true
	}
}

// TestCrossNDeterministicAcrossParallelism checks that the branch-order
// merge makes the search result independent of the worker count,
// including the first-minimum tie-break.
func TestCrossNDeterministicAcrossParallelism(t *testing.T) {
	cases := []struct {
		topo   *hw.Topology
		stages int
	}{
		{hw.Commodity(hw.RTX3090Ti, 2, 2), 8},
		{hw.Commodity(hw.RTX3090Ti, 1, 3), 12},
		{hw.Commodity(hw.RTX3090Ti, 4, 4), 16},
		{hw.Commodity(hw.RTX3090Ti, 2, 3, 3), 24},
	}
	for _, c := range cases {
		serial, err := CrossN(c.topo, c.stages, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.topo.Name, err)
		}
		for _, par := range []int{2, 8} {
			got, err := CrossN(c.topo, c.stages, par)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", c.topo.Name, par, err)
			}
			if got.Contention != serial.Contention {
				t.Errorf("%s: contention %v at parallelism %d vs %v serial",
					c.topo.Name, got.Contention, par, serial.Contention)
			}
			for i := range serial.Perm {
				if got.Perm[i] != serial.Perm[i] {
					t.Errorf("%s: perm %v at parallelism %d vs %v serial",
						c.topo.Name, got.Perm, par, serial.Perm)
					break
				}
			}
		}
	}
}
