// Package mapping implements Mobius' stage-to-GPU mapping (§3.3): the
// PCIe-topology-aware cross mapping that minimizes communication
// contention at shared CPU root complexes, and the sequential mapping
// baseline of the Figure 10 ablation.
//
// A mapping is a permutation of the GPUs applied round-robin: stage j
// (0-based) runs on Perm[j mod N], so stages j and j+N always share a GPU
// as the Mobius pipeline requires. Cross mapping searches all
// permutations for the one minimizing the paper's contention degree
//
//	contention(i, j) = shared(i, j) / |i - j|        (Eq. 12)
//
// summed over all stage pairs (Eq. 13), where shared(i, j) is the number
// of GPUs under the root complex both stages' GPUs hang off (zero when
// they use different root complexes).
package mapping

import (
	"fmt"
	"runtime"
	"sync"

	"mobius/internal/hw"
)

// Scheme names.
const (
	SchemeSequential = "sequential"
	SchemeCross      = "cross"
)

// Mapping assigns pipeline stages to GPUs round-robin through Perm.
type Mapping struct {
	// Perm is the GPU visit order within each round of stages.
	Perm []int
	// NumStages is the pipeline stage count the mapping was scored for.
	NumStages int
	// Scheme records how the mapping was constructed.
	Scheme string
	// Contention is the scheme's contention degree (Eq. 13).
	Contention float64
}

// GPUOf returns the GPU executing stage (0-based).
func (m *Mapping) GPUOf(stage int) int { return m.Perm[stage%len(m.Perm)] }

// UploadPriority returns the DMA priority for prefetching a stage's data:
// stages that execute earlier get strictly higher priority, implementing
// the paper's cudaStreamCreateWithPriority policy for concurrent
// prefetches under one root complex.
func (m *Mapping) UploadPriority(stage int) int { return m.NumStages - stage }

// Stages returns the stage indices mapped to the given GPU, ascending.
func (m *Mapping) Stages(gpu int) []int {
	var out []int
	for j := 0; j < m.NumStages; j++ {
		if m.GPUOf(j) == gpu {
			out = append(out, j)
		}
	}
	return out
}

func (m *Mapping) String() string {
	return fmt.Sprintf("%s mapping perm=%v contention=%.3f", m.Scheme, m.Perm, m.Contention)
}

// ContentionDegree evaluates Eq. 13 for a GPU permutation on a topology.
func ContentionDegree(topo *hw.Topology, perm []int, numStages int) float64 {
	n := len(perm)
	var total float64
	for i := 0; i < numStages; i++ {
		gi := perm[i%n]
		for j := i + 1; j < numStages; j++ {
			gj := perm[j%n]
			if topo.SameRootComplex(gi, gj) {
				total += float64(topo.GroupSize(gi)) / float64(j-i)
			}
		}
	}
	return total
}

// Sequential maps stages to GPUs in id order, ignoring the PCIe topology
// — the baseline the paper ablates against in §4.4.
func Sequential(topo *hw.Topology, numStages int) (*Mapping, error) {
	if err := checkArgs(topo, numStages); err != nil {
		return nil, err
	}
	perm := make([]int, topo.NumGPUs())
	for i := range perm {
		perm[i] = i
	}
	return &Mapping{
		Perm:       perm,
		NumStages:  numStages,
		Scheme:     SchemeSequential,
		Contention: ContentionDegree(topo, perm, numStages),
	}, nil
}

// Cross returns the permutation with minimal contention degree, searching
// with all available cores. Ties keep the first minimum in enumeration
// order, starting from the identity, so the result is deterministic.
func Cross(topo *hw.Topology, numStages int) (*Mapping, error) {
	return CrossN(topo, numStages, 0)
}

// CrossN is Cross with an explicit parallelism bound: the number of
// goroutines exploring top-level search branches (0 means GOMAXPROCS).
// The result is identical for every parallelism level.
//
// The search is an incremental branch and bound over partial permutations
// rather than a brute-force scan of all N! orders: filling position k adds
// only the contention of stage pairs whose positions are both decided, and
// since every pair contributes a nonnegative term, the accumulated prefix
// contention is a lower bound on every completion of the prefix. A branch
// whose prefix cost cannot beat the best known score (within the float
// tie tolerance) is pruned whole.
//
// The N top-level branches (the choice of GPU for position 0, in the same
// swap order as the brute-force enumeration) are explored by a worker
// pool. Each branch runs independently and reports the best permutation
// of its subtree; the results are then merged in branch order with the
// same first-strict-improvement rule the serial scan applies, which keeps
// the deterministic first-minimum tie-break independent of goroutine
// scheduling.
func CrossN(topo *hw.Topology, numStages, parallelism int) (*Mapping, error) {
	if err := checkArgs(topo, numStages); err != nil {
		return nil, err
	}
	n := topo.NumGPUs()
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	identityScore := ContentionDegree(topo, identity, numStages)

	w := pairWeights(n, numStages)
	rcOf := make([]int, n)
	szOf := make([]float64, n)
	for g := 0; g < n; g++ {
		rcOf[g] = topo.GPUs[g].RootComplex
		szOf[g] = float64(topo.GroupSize(g))
	}

	results := make([]branchResult, n)

	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	branches := make(chan int)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range branches {
				results[k] = exploreBranch(identity, k, identityScore, w, rcOf, szOf)
			}
		}()
	}
	for k := 0; k < n; k++ {
		branches <- k
	}
	close(branches)
	wg.Wait()

	// Merge in branch order with the serial acceptance rule.
	best := identity
	bestScore := identityScore
	for k := 0; k < n; k++ {
		if results[k].found && results[k].score < bestScore-1e-12 {
			bestScore = results[k].score
			best = results[k].perm
		}
	}
	return &Mapping{
		Perm:       best,
		NumStages:  numStages,
		Scheme:     SchemeCross,
		Contention: bestScore,
	}, nil
}

// branchResult is the best permutation found in one top-level subtree.
type branchResult struct {
	found bool
	score float64
	perm  []int
}

// exploreBranch runs the branch-and-bound DFS over the subtree rooted at
// the top-level swap of positions 0 and k, seeded with the identity score
// so the exploration is independent of every other branch.
func exploreBranch(identity []int, k int, seedScore float64, w [][]float64, rcOf []int, szOf []float64) (res branchResult) {
	n := len(identity)
	p := append([]int(nil), identity...)
	p[0], p[k] = p[k], p[0]
	res.score = seedScore
	res.perm = make([]int, n)

	var dfs func(i int, cost float64)
	dfs = func(i int, cost float64) {
		if cost >= res.score-1e-12 {
			return // lower bound cannot beat the incumbent
		}
		if i == n {
			res.found = true
			res.score = cost
			copy(res.perm, p)
			return
		}
		for j := i; j < n; j++ {
			p[i], p[j] = p[j], p[i]
			dfs(i+1, cost+placementCost(p, i, w, rcOf, szOf))
			p[i], p[j] = p[j], p[i]
		}
	}
	dfs(1, placementCost(p, 0, w, rcOf, szOf))
	return res
}

// placementCost returns the contention added by deciding position i of
// the permutation: the Eq. 13 terms of all stage pairs whose two
// positions are now both fixed (including same-position pairs, i.e.
// stages N apart on one GPU).
func placementCost(p []int, i int, w [][]float64, rcOf []int, szOf []float64) float64 {
	g := p[i]
	var c float64
	for a := 0; a <= i; a++ {
		if rcOf[p[a]] == rcOf[g] {
			c += szOf[g] * w[a][i]
		}
	}
	return c
}

// pairWeights precomputes, for every unordered pair of permutation
// positions (a, b), the sum of 1/|i-j| over the stage pairs i < j with
// {i mod N, j mod N} == {a, b}. Contention for a concrete GPU assignment
// is then shared(ga, gb) * w[a][b], with shared constant per root-complex
// group.
func pairWeights(n, numStages int) [][]float64 {
	w := make([][]float64, n)
	for a := range w {
		w[a] = make([]float64, n)
	}
	for i := 0; i < numStages; i++ {
		for j := i + 1; j < numStages; j++ {
			a, b := i%n, j%n
			if a > b {
				a, b = b, a
			}
			w[a][b] += 1 / float64(j-i)
		}
	}
	return w
}

func checkArgs(topo *hw.Topology, numStages int) error {
	if topo == nil || topo.NumGPUs() == 0 {
		return fmt.Errorf("mapping: empty topology")
	}
	if numStages <= 0 {
		return fmt.Errorf("mapping: numStages must be positive, got %d", numStages)
	}
	return nil
}
