// Package mapping implements Mobius' stage-to-GPU mapping (§3.3): the
// PCIe-topology-aware cross mapping that minimizes communication
// contention at shared CPU root complexes, and the sequential mapping
// baseline of the Figure 10 ablation.
//
// A mapping is a permutation of the GPUs applied round-robin: stage j
// (0-based) runs on Perm[j mod N], so stages j and j+N always share a GPU
// as the Mobius pipeline requires. Cross mapping searches all
// permutations for the one minimizing the paper's contention degree
//
//	contention(i, j) = shared(i, j) / |i - j|        (Eq. 12)
//
// summed over all stage pairs (Eq. 13), where shared(i, j) is the number
// of GPUs under the root complex both stages' GPUs hang off (zero when
// they use different root complexes).
package mapping

import (
	"fmt"

	"mobius/internal/hw"
)

// Scheme names.
const (
	SchemeSequential = "sequential"
	SchemeCross      = "cross"
)

// Mapping assigns pipeline stages to GPUs round-robin through Perm.
type Mapping struct {
	// Perm is the GPU visit order within each round of stages.
	Perm []int
	// NumStages is the pipeline stage count the mapping was scored for.
	NumStages int
	// Scheme records how the mapping was constructed.
	Scheme string
	// Contention is the scheme's contention degree (Eq. 13).
	Contention float64
}

// GPUOf returns the GPU executing stage (0-based).
func (m *Mapping) GPUOf(stage int) int { return m.Perm[stage%len(m.Perm)] }

// UploadPriority returns the DMA priority for prefetching a stage's data:
// stages that execute earlier get strictly higher priority, implementing
// the paper's cudaStreamCreateWithPriority policy for concurrent
// prefetches under one root complex.
func (m *Mapping) UploadPriority(stage int) int { return m.NumStages - stage }

// Stages returns the stage indices mapped to the given GPU, ascending.
func (m *Mapping) Stages(gpu int) []int {
	var out []int
	for j := 0; j < m.NumStages; j++ {
		if m.GPUOf(j) == gpu {
			out = append(out, j)
		}
	}
	return out
}

func (m *Mapping) String() string {
	return fmt.Sprintf("%s mapping perm=%v contention=%.3f", m.Scheme, m.Perm, m.Contention)
}

// ContentionDegree evaluates Eq. 13 for a GPU permutation on a topology.
func ContentionDegree(topo *hw.Topology, perm []int, numStages int) float64 {
	n := len(perm)
	var total float64
	for i := 0; i < numStages; i++ {
		gi := perm[i%n]
		for j := i + 1; j < numStages; j++ {
			gj := perm[j%n]
			if topo.SameRootComplex(gi, gj) {
				total += float64(topo.GroupSize(gi)) / float64(j-i)
			}
		}
	}
	return total
}

// Sequential maps stages to GPUs in id order, ignoring the PCIe topology
// — the baseline the paper ablates against in §4.4.
func Sequential(topo *hw.Topology, numStages int) (*Mapping, error) {
	if err := checkArgs(topo, numStages); err != nil {
		return nil, err
	}
	perm := make([]int, topo.NumGPUs())
	for i := range perm {
		perm[i] = i
	}
	return &Mapping{
		Perm:       perm,
		NumStages:  numStages,
		Scheme:     SchemeSequential,
		Contention: ContentionDegree(topo, perm, numStages),
	}, nil
}

// Cross searches every GPU permutation and returns the one with minimal
// contention degree. Ties keep the first minimum in enumeration order,
// starting from the identity, so the result is deterministic.
func Cross(topo *hw.Topology, numStages int) (*Mapping, error) {
	if err := checkArgs(topo, numStages); err != nil {
		return nil, err
	}
	n := topo.NumGPUs()
	best := make([]int, n)
	for i := range best {
		best[i] = i
	}
	bestScore := ContentionDegree(topo, best, numStages)

	perm := append([]int(nil), best...)
	permute(perm, 0, func(p []int) {
		score := ContentionDegree(topo, p, numStages)
		if score < bestScore-1e-12 {
			bestScore = score
			copy(best, p)
		}
	})
	return &Mapping{
		Perm:       best,
		NumStages:  numStages,
		Scheme:     SchemeCross,
		Contention: bestScore,
	}, nil
}

func checkArgs(topo *hw.Topology, numStages int) error {
	if topo == nil || topo.NumGPUs() == 0 {
		return fmt.Errorf("mapping: empty topology")
	}
	if numStages <= 0 {
		return fmt.Errorf("mapping: numStages must be positive, got %d", numStages)
	}
	return nil
}

// permute enumerates all permutations of p by recursive swapping and
// calls visit for each. The enumeration order is deterministic.
func permute(p []int, i int, visit func([]int)) {
	if i == len(p) {
		visit(p)
		return
	}
	for k := i; k < len(p); k++ {
		p[i], p[k] = p[k], p[i]
		permute(p, i+1, visit)
		p[i], p[k] = p[k], p[i]
	}
}
