// Package lp implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    c·x
//	subject to  A·x {<=,=,>=} b
//	            lo <= x <= hi   (lo >= 0)
//
// It is the linear-programming core underneath internal/milp, which
// together replace the Gurobi Optimizer the paper uses to solve the MIP
// partition problem (§3.2).
//
// The implementation is a textbook tableau simplex with Dantzig pricing,
// a Bland's-rule fallback to escape degenerate cycling, and a two-phase
// start (artificial variables) for infeasible initial bases.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // ==
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var   int
	Coeff float64
}

type constraint struct {
	terms []Term
	rel   Rel
	rhs   float64
}

// Problem is a linear program under construction. All variables are
// non-negative by default with infinite upper bound.
type Problem struct {
	n           int
	objective   []float64
	constraints []constraint
	lower       []float64
	upper       []float64

	// buildErr records the first invalid builder call (e.g. a negative
	// lower bound); Solve returns it instead of panicking mid-build.
	buildErr error
}

// NewProblem creates a problem with n non-negative variables.
func NewProblem(n int) *Problem {
	p := &Problem{
		n:         n,
		objective: make([]float64, n),
		lower:     make([]float64, n),
		upper:     make([]float64, n),
	}
	for i := range p.upper {
		p.upper[i] = math.Inf(1)
	}
	return p
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.n }

// SetObjectiveCoeff sets the cost of variable i (minimization).
func (p *Problem) SetObjectiveCoeff(i int, c float64) { p.objective[i] = c }

// AddConstraint appends Σ terms rel rhs. Terms with duplicate variables
// are summed.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) {
	own := make([]Term, len(terms))
	copy(own, terms)
	p.constraints = append(p.constraints, constraint{terms: own, rel: rel, rhs: rhs})
}

// SetBounds sets lo <= x_i <= hi. lo must be >= 0; a negative lower bound
// is recorded as a build error that Solve returns.
func (p *Problem) SetBounds(i int, lo, hi float64) {
	if lo < 0 {
		if p.buildErr == nil {
			p.buildErr = fmt.Errorf("%w: negative lower bound %g on variable %d", ErrBadProblem, lo, i)
		}
		return
	}
	p.lower[i] = lo
	p.upper[i] = hi
}

// Bounds returns the bounds of variable i.
func (p *Problem) Bounds(i int) (lo, hi float64) { return p.lower[i], p.upper[i] }

// NumConstraints returns the number of explicit constraints.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// Clone returns an independent copy of the problem (constraint rows are
// shared: they are immutable after AddConstraint).
func (p *Problem) Clone() *Problem {
	q := &Problem{
		n:           p.n,
		objective:   append([]float64(nil), p.objective...),
		constraints: append([]constraint(nil), p.constraints...),
		lower:       append([]float64(nil), p.lower...),
		upper:       append([]float64(nil), p.upper...),
		buildErr:    p.buildErr,
	}
	return q
}

// CloneInto copies p into dst, reusing dst's backing slices where their
// capacity allows (constraint rows are shared, as in Clone). It returns
// dst. Callers that clone once per branch-and-bound node use this with a
// per-worker scratch Problem to avoid four allocations per node.
func (p *Problem) CloneInto(dst *Problem) *Problem {
	dst.n = p.n
	dst.objective = append(dst.objective[:0], p.objective...)
	dst.constraints = append(dst.constraints[:0], p.constraints...)
	dst.lower = append(dst.lower[:0], p.lower...)
	dst.upper = append(dst.upper[:0], p.upper...)
	dst.buildErr = p.buildErr
	return dst
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const (
	eps      = 1e-9
	pivotEps = 1e-8
)

// ErrBadProblem reports a structurally invalid problem.
var ErrBadProblem = errors.New("lp: invalid problem")

// Scratch is reusable solver working memory: the dense tableau, the row
// workspace, and the sign-flip term arena. A Scratch may serve any
// number of sequential SolveWith calls (it grows to the largest problem
// seen) but must not be shared by concurrent solves — pool one per
// worker goroutine.
type Scratch struct {
	a      []float64
	obj    []float64
	basis  []int
	banned []bool
	rows   []rowSpec
	terms  []Term
}

// Solve runs the two-phase simplex and returns a solution. The Status
// field distinguishes optimal, infeasible and unbounded outcomes; Solve
// returns a non-nil error only for structurally invalid input.
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWith(nil)
}

// SolveWith is Solve with caller-owned scratch memory: the tableau and
// row workspace come from sc (grown as needed) instead of fresh
// allocations, removing the dominant allocation from hot
// branch-and-bound loops. A nil sc behaves exactly like Solve.
func (p *Problem) SolveWith(sc *Scratch) (*Solution, error) {
	if p.buildErr != nil {
		return nil, p.buildErr
	}
	for _, c := range p.constraints {
		for _, t := range c.terms {
			if t.Var < 0 || t.Var >= p.n {
				return nil, fmt.Errorf("%w: term references variable %d of %d", ErrBadProblem, t.Var, p.n)
			}
		}
	}
	for i := 0; i < p.n; i++ {
		if p.lower[i] > p.upper[i]+eps {
			return &Solution{Status: Infeasible}, nil
		}
	}

	if sc == nil {
		sc = &Scratch{}
	}
	t := newTableau(p, sc)
	st := t.phase1()
	if st != Optimal {
		return &Solution{Status: st}, nil
	}
	st = t.phase2()
	sol := &Solution{Status: st}
	if st == Optimal || st == IterLimit {
		sol.X = t.extract()
		sol.Objective = dot(p.objective, sol.X)
	}
	return sol, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
