package lp

import "math"

// tableau is the dense simplex working state. Structural variables are
// shifted by their lower bounds (y = x - lo >= 0); finite upper bounds
// become explicit rows. Column layout: [0,n) structural, [n, n+slacks)
// slack/surplus, [n+slacks, total) artificial; the last column is the RHS.
type tableau struct {
	p *Problem

	m     int // rows
	total int // columns excluding RHS
	nArt  int
	artAt int // first artificial column

	a     []float64 // m x (total+1), row-major
	obj   []float64 // total+1: reduced costs, last = -objValue
	basis []int     // basic variable per row

	banned []bool // artificial columns banned in phase 2

	iter    int
	maxIter int
}

func (t *tableau) at(r, c int) float64     { return t.a[r*(t.total+1)+c] }
func (t *tableau) set(r, c int, v float64) { t.a[r*(t.total+1)+c] = v }

type rowSpec struct {
	terms []Term
	rel   Rel
	rhs   float64
}

// growFloats returns a zeroed float slice of length n, reusing s's
// backing array when its capacity allows.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func newTableau(p *Problem, sc *Scratch) *tableau {
	// Gather rows: explicit constraints plus upper-bound rows, with lower
	// bounds substituted out.
	rows := sc.rows[:0]
	for _, c := range p.constraints {
		rhs := c.rhs
		for _, tm := range c.terms {
			rhs -= tm.Coeff * p.lower[tm.Var]
		}
		rows = append(rows, rowSpec{terms: c.terms, rel: c.rel, rhs: rhs})
	}
	// Size the term arena before taking subslices: a later append must not
	// move earlier rows' term storage. Negative-rhs constraint rows need a
	// sign-flipped copy; each finite upper bound needs a one-term row.
	need := 0
	for i := range rows {
		if rows[i].rhs < 0 {
			need += len(rows[i].terms)
		}
	}
	for i := 0; i < p.n; i++ {
		if !math.IsInf(p.upper[i], 1) {
			need++
		}
	}
	arena := sc.terms[:0]
	if cap(arena) < need {
		arena = make([]Term, 0, need)
	}
	for i := 0; i < p.n; i++ {
		if !math.IsInf(p.upper[i], 1) {
			arena = append(arena, Term{Var: i, Coeff: 1})
			rows = append(rows, rowSpec{
				terms: arena[len(arena)-1 : len(arena) : len(arena)],
				rel:   LE,
				rhs:   p.upper[i] - p.lower[i],
			})
		}
	}

	m := len(rows)
	// Count columns: one slack per inequality; artificials per GE/EQ row
	// after sign normalization.
	nSlack, nArt := 0, 0
	for i := range rows {
		if rows[i].rhs < 0 {
			// Flip the row so RHS >= 0.
			start := len(arena)
			for _, tm := range rows[i].terms {
				arena = append(arena, Term{Var: tm.Var, Coeff: -tm.Coeff})
			}
			rows[i].terms = arena[start:len(arena):len(arena)]
			rows[i].rhs = -rows[i].rhs
			switch rows[i].rel {
			case LE:
				rows[i].rel = GE
			case GE:
				rows[i].rel = LE
			}
		}
		switch rows[i].rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	sc.rows = rows
	sc.terms = arena

	total := p.n + nSlack + nArt
	sc.a = growFloats(sc.a, m*(total+1))
	sc.obj = growFloats(sc.obj, total+1)
	sc.basis = growInts(sc.basis, m)
	sc.banned = growBools(sc.banned, total)
	t := &tableau{
		p:       p,
		m:       m,
		total:   total,
		nArt:    nArt,
		artAt:   p.n + nSlack,
		a:       sc.a,
		obj:     sc.obj,
		basis:   sc.basis,
		banned:  sc.banned,
		maxIter: 200 * (m + p.n + 10),
	}

	slack := p.n
	art := t.artAt
	for r, row := range rows {
		for _, tm := range row.terms {
			t.set(r, tm.Var, t.at(r, tm.Var)+tm.Coeff)
		}
		t.set(r, total, row.rhs)
		switch row.rel {
		case LE:
			t.set(r, slack, 1)
			t.basis[r] = slack
			slack++
		case GE:
			t.set(r, slack, -1)
			slack++
			t.set(r, art, 1)
			t.basis[r] = art
			art++
		case EQ:
			t.set(r, art, 1)
			t.basis[r] = art
			art++
		}
	}
	return t
}

// phase1 minimizes the sum of artificial variables to find a feasible
// basis.
func (t *tableau) phase1() Status {
	if t.nArt == 0 {
		return Optimal
	}
	// Objective: sum of artificials. Price out the artificial basics.
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j := t.artAt; j < t.total; j++ {
		t.obj[j] = 1
	}
	for r := 0; r < t.m; r++ {
		if t.basis[r] >= t.artAt {
			t.subtractRow(r, 1)
		}
	}
	st := t.iterate()
	if st == Unbounded {
		// Phase-1 objective is bounded below by zero; treat as numeric
		// trouble and report infeasible.
		return Infeasible
	}
	if st != Optimal {
		return st
	}
	if -t.obj[t.total] > 1e-6 {
		return Infeasible
	}
	// Drive any zero-level artificial out of the basis if possible, then
	// ban artificial columns from re-entering.
	for r := 0; r < t.m; r++ {
		if t.basis[r] < t.artAt {
			continue
		}
		pivoted := false
		for j := 0; j < t.artAt; j++ {
			if math.Abs(t.at(r, j)) > pivotEps {
				t.pivot(r, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: leave the artificial basic at zero.
			t.set(r, t.total, 0)
		}
	}
	for j := t.artAt; j < t.total; j++ {
		t.banned[j] = true
	}
	return Optimal
}

// phase2 optimizes the real objective from the feasible basis.
func (t *tableau) phase2() Status {
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j := 0; j < t.p.n; j++ {
		t.obj[j] = t.p.objective[j]
	}
	for r := 0; r < t.m; r++ {
		b := t.basis[r]
		if b < t.p.n && t.p.objective[b] != 0 {
			t.subtractRow(r, t.p.objective[b])
		}
	}
	return t.iterate()
}

// subtractRow does obj -= factor * row r (pricing out a basic column).
func (t *tableau) subtractRow(r int, factor float64) {
	row := t.a[r*(t.total+1) : (r+1)*(t.total+1)]
	for j := range t.obj {
		t.obj[j] -= factor * row[j]
	}
}

// iterate runs simplex pivots until optimality, unboundedness or the
// iteration limit. Dantzig pricing with a Bland fallback under prolonged
// degeneracy guards against cycling.
func (t *tableau) iterate() Status {
	degenerate := 0
	for ; t.iter < t.maxIter; t.iter++ {
		bland := degenerate > 2*(t.m+1)

		enter := -1
		best := -eps
		for j := 0; j < t.total; j++ {
			if t.banned[j] {
				continue
			}
			rc := t.obj[j]
			if rc < -eps {
				if bland {
					enter = j
					break
				}
				if rc < best {
					best = rc
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal
		}

		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < t.m; r++ {
			arj := t.at(r, enter)
			if arj <= pivotEps {
				continue
			}
			ratio := t.at(r, t.total) / arj
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave < 0 || t.basis[r] < t.basis[leave])) {
				bestRatio = ratio
				leave = r
			}
		}
		if leave < 0 {
			return Unbounded
		}
		if bestRatio < eps {
			degenerate++
		} else {
			degenerate = 0
		}
		t.pivot(leave, enter)
	}
	return IterLimit
}

// pivot makes column c basic in row r.
func (t *tableau) pivot(r, c int) {
	w := t.total + 1
	prow := t.a[r*w : (r+1)*w]
	pv := prow[c]
	inv := 1 / pv
	for j := range prow {
		prow[j] *= inv
	}
	prow[c] = 1 // exact

	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		row := t.a[i*w : (i+1)*w]
		f := row[c]
		if f == 0 {
			continue
		}
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[c] = 0
	}
	f := t.obj[c]
	if f != 0 {
		for j := range t.obj {
			t.obj[j] -= f * prow[j]
		}
		t.obj[c] = 0
	}
	t.basis[r] = c
}

// extract reads the structural solution, undoing the lower-bound shift.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.p.n)
	copy(x, t.p.lower)
	for r := 0; r < t.m; r++ {
		b := t.basis[r]
		if b < t.p.n {
			x[b] += t.at(r, t.total)
		}
	}
	return x
}
