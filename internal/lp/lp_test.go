package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	return sol
}

func wantObj(t *testing.T, sol *Solution, v float64) {
	t.Helper()
	if math.Abs(sol.Objective-v) > 1e-6 {
		t.Fatalf("objective %g, want %g (x=%v)", sol.Objective, v, sol.X)
	}
}

func TestTrivialMinimum(t *testing.T) {
	// min x subject to x >= 3.
	p := NewProblem(1)
	p.SetObjectiveCoeff(0, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 3)
	sol := solveOK(t, p)
	wantObj(t, sol, 3)
}

func TestClassicTwoVar(t *testing.T) {
	// max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 (Dantzig's example) ->
	// min -3x-5y, optimum x=2, y=6, obj -36.
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, -3)
	p.SetObjectiveCoeff(1, -5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	sol := solveOK(t, p)
	wantObj(t, sol, -36)
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-6) > 1e-6 {
		t.Fatalf("x=%v, want [2 6]", sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x+y=5, x<=2 -> obj 5 with x<=2.
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 5)
	p.SetBounds(0, 0, 2)
	sol := solveOK(t, p)
	wantObj(t, sol, 5)
	if sol.X[0] > 2+1e-6 {
		t.Fatalf("bound violated: %v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleBounds(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 3, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjectiveCoeff(0, -1) // min -x, x unbounded above
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

func TestLowerBoundShift(t *testing.T) {
	// min x+y s.t. x+y >= 10, x >= 4, y in [3, 5].
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 10)
	p.SetBounds(0, 4, math.Inf(1))
	p.SetBounds(1, 3, 5)
	sol := solveOK(t, p)
	wantObj(t, sol, 10)
	if sol.X[0] < 4-1e-9 || sol.X[1] < 3-1e-9 || sol.X[1] > 5+1e-9 {
		t.Fatalf("bounds violated: %v", sol.X)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 with min x -> x=0, y>=2.
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, LE, -2)
	sol := solveOK(t, p)
	wantObj(t, sol, 2)
	if math.Abs(sol.X[1]-2) > 1e-6 {
		t.Fatalf("x=%v", sol.X)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// A classic degenerate LP; must terminate and find optimum 0.
	p := NewProblem(3)
	p.SetObjectiveCoeff(0, -0.75)
	p.SetObjectiveCoeff(1, 150)
	p.SetObjectiveCoeff(2, -0.02)
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v (Beale cycling?)", sol.Status)
	}
	wantObj(t, sol, -0.05)
}

func TestDuplicateTermsSummed(t *testing.T) {
	// (1+1)x >= 4 -> x >= 2.
	p := NewProblem(1)
	p.SetObjectiveCoeff(0, 1)
	p.AddConstraint([]Term{{0, 1}, {0, 1}}, GE, 4)
	sol := solveOK(t, p)
	wantObj(t, sol, 2)
}

func TestBadVariableIndex(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{5, 1}}, LE, 1)
	if _, err := p.Solve(); err == nil {
		t.Fatal("expected error for out-of-range variable")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, GE, 2)
	q := p.Clone()
	q.SetBounds(0, 1, 1)
	if lo, _ := p.Bounds(0); lo != 0 {
		t.Fatal("clone mutated the original")
	}
	solP := solveOK(t, p)
	solQ := solveOK(t, q)
	wantObj(t, solP, 0)
	wantObj(t, solQ, 1)
}

// TestRandomFeasibilityProperty: for random LPs built from a known
// feasible point, the solver must (a) report optimal or unbounded, and
// (b) when optimal, return a point satisfying every constraint, with an
// objective no worse than the known point's.
func TestRandomFeasibilityProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		// Known feasible point.
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = r.Float64() * 10
		}
		p := NewProblem(n)
		for i := 0; i < n; i++ {
			p.SetObjectiveCoeff(i, r.Float64()*2) // non-negative costs: bounded
		}
		m := 1 + r.Intn(6)
		type row struct {
			terms []Term
			rel   Rel
			rhs   float64
		}
		var rows []row
		for k := 0; k < m; k++ {
			var terms []Term
			lhs := 0.0
			for i := 0; i < n; i++ {
				if r.Intn(2) == 0 {
					c := r.Float64()*4 - 2
					terms = append(terms, Term{i, c})
					lhs += c * x0[i]
				}
			}
			if len(terms) == 0 {
				continue
			}
			rel := Rel(r.Intn(2)) // LE or GE; skip EQ to keep x0 feasible
			slackAmt := r.Float64() * 3
			rhs := lhs + slackAmt
			if rel == GE {
				rhs = lhs - slackAmt
			}
			p.AddConstraint(terms, rel, rhs)
			rows = append(rows, row{terms, rel, rhs})
		}
		sol, err := p.Solve()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if sol.Status != Optimal {
			t.Logf("seed %d: status %v for feasible bounded problem", seed, sol.Status)
			return false
		}
		for _, rw := range rows {
			lhs := 0.0
			for _, tm := range rw.terms {
				lhs += tm.Coeff * sol.X[tm.Var]
			}
			switch rw.rel {
			case LE:
				if lhs > rw.rhs+1e-5 {
					t.Logf("seed %d: LE violated: %g > %g", seed, lhs, rw.rhs)
					return false
				}
			case GE:
				if lhs < rw.rhs-1e-5 {
					t.Logf("seed %d: GE violated: %g < %g", seed, lhs, rw.rhs)
					return false
				}
			}
		}
		// Optimality sanity: no worse than the known feasible point.
		obj0 := 0.0
		for i := range x0 {
			obj0 += p.objective[i] * x0[i]
		}
		if sol.Objective > obj0+1e-5 {
			t.Logf("seed %d: objective %g worse than feasible point %g", seed, sol.Objective, obj0)
			return false
		}
		for i, v := range sol.X {
			if v < -1e-7 {
				t.Logf("seed %d: negative variable %d = %g", seed, i, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMediumScheduleLikeLP(t *testing.T) {
	// A chain of start-time variables with precedence gaps, mimicking the
	// pipeline-order constraints of the partition MIP: t_i >= t_{i-1}+d.
	const n = 120
	p := NewProblem(n)
	p.SetObjectiveCoeff(n-1, 1)
	for i := 1; i < n; i++ {
		p.AddConstraint([]Term{{i, 1}, {i - 1, -1}}, GE, 0.5)
	}
	sol := solveOK(t, p)
	wantObj(t, sol, 0.5*(n-1))
}

func TestLargeChainPerformance(t *testing.T) {
	// A partition-MIP-sized LP must solve in well under a second.
	const n = 300
	p := NewProblem(n)
	p.SetObjectiveCoeff(n-1, 1)
	for i := 1; i < n; i++ {
		p.AddConstraint([]Term{{i, 1}, {i - 1, -1}}, GE, 0.1)
		if i%7 == 0 {
			p.AddConstraint([]Term{{i, 1}}, LE, float64(i))
		}
	}
	sol := solveOK(t, p)
	wantObj(t, sol, 0.1*(n-1))
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if st.String() != want {
			t.Errorf("%d: %q", st, st.String())
		}
	}
	for r, want := range map[Rel]string{LE: "<=", GE: ">=", EQ: "=="} {
		if r.String() != want {
			t.Errorf("rel %q", r.String())
		}
	}
}

func TestEqualityWithNegativeRHS(t *testing.T) {
	// x - y == -3 with min x+y -> x=0, y=3.
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, EQ, -3)
	sol := solveOK(t, p)
	wantObj(t, sol, 3)
}
